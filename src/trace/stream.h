// Streaming workload engine: an O(1)-memory event source for the
// large-population replays (tools/vlease_scale). Events are produced one
// at a time -- the trace is never materialized, so a hundred-million-event
// run costs no event memory -- and the stream is bit-for-bit deterministic
// from the seed.
//
// The base stream reproduces the original fixed-cadence replay exactly
// (uniform object pick, uniform client pick, one write every writeEvery
// events). On top of it, independently composable:
//
//   - Zipfian popularity (zipfSkew > 0): objects are picked by rank
//     through the O(1) rejection-inversion sampler (util::ZipfianRng),
//     so a configurable head of hot objects dominates while the tail
//     stays cold. Rank r maps to the caller's objects[r], making
//     objects.back() the coldest object in the catalog.
//
//   - Flash crowd (flashClients > 0): at flashAt, flashClients distinct
//     clients read one cold object, evenly spread over flashDuration --
//     the paper's load-spike scenario, a renewal storm the server must
//     absorb. Flash events consume no randomness, so enabling a flash
//     crowd perturbs none of the base stream's draws.
//
//   - Diurnal rate curve (diurnalAmplitude > 0): the event cadence is
//     modulated by 1 + A*sin(2*pi*t/period), compressing interarrivals
//     at the peak and stretching them in the trough.
//
//   - Client churn (churnEvery > 0): every churnEvery base events the
//     oldest active client departs (EventKind::kDepart -- a graceful
//     retire, distinct from a FaultPlan crash) and a fresh one arrives
//     cold (kArrive). The active population is a sliding window over the
//     client id space, so churn state is O(1); reads draw only from the
//     active window. Departed ids eventually re-arrive once the window
//     wraps, exercising lazy re-growth of reclaimed client storage.
//
// next() performs no heap allocation (asserted by a tier-1 test), so the
// generator itself never shows up in the replay's RSS or its hot path.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/catalog.h"
#include "trace/events.h"
#include "util/rng.h"
#include "util/time.h"

namespace vlease::trace {

struct StreamOptions {
  std::uint64_t seed = 1;
  /// Base read/write events to emit (churn markers and flash-crowd reads
  /// are extra, interleaved by timestamp).
  std::int64_t events = 0;
  std::uint32_t numClients = 0;
  SimDuration interarrival = usec(100);
  /// One write per this many base events (0 = reads only).
  std::int64_t writeEvery = 0;

  /// Zipf skew for object popularity; 0 = uniform (the legacy stream).
  double zipfSkew = 0;

  /// Flash crowd: this many distinct clients read `flashObject` (an
  /// index into the objects vector) evenly over flashDuration starting
  /// at flashAt. 0 = off.
  std::int64_t flashClients = 0;
  SimTime flashAt = 0;
  SimDuration flashDuration = sec(2);
  /// Default UINT64_MAX = the last object, coldest under Zipf ranking.
  std::uint64_t flashObject = UINT64_MAX;

  /// Every churnEvery base events, one kDepart + one kArrive. 0 = off.
  std::int64_t churnEvery = 0;
  /// Active fraction of the client population when churn is on; the
  /// remainder is the headroom arrivals draw from before ids recycle.
  double churnActiveFraction = 0.5;

  /// Diurnal modulation amplitude in [0, 1); 0 = fixed cadence.
  double diurnalAmplitude = 0;
  SimDuration diurnalPeriod = hours(24);
};

class EventStream {
 public:
  /// `objects` maps popularity rank -> ObjectId (rank 0 hottest under
  /// Zipf); held by reference, must outlive the stream.
  EventStream(const StreamOptions& options, const Catalog& catalog,
              const std::vector<ObjectId>& objects);

  /// Produce the next event; false when the stream is exhausted. Never
  /// allocates.
  bool next(TraceEvent& out);

  /// Total events handed out so far (base + flash + churn markers).
  std::int64_t emitted() const { return emitted_; }
  /// Base read/write events handed out so far.
  std::int64_t baseEmitted() const { return baseEmitted_; }

 private:
  void nextBase(TraceEvent& out);
  void advanceClock();
  std::uint32_t activeClient(std::uint64_t pick) const;

  StreamOptions opt_;
  const Catalog& catalog_;
  const std::vector<ObjectId>& objects_;
  Rng rng_;
  ZipfianRng zipf_;

  SimTime at_ = 0;      // timestamp of the next base event
  SimTime lastAt_ = 0;  // timestamp of the last emitted event
  std::int64_t baseEmitted_ = 0;
  std::int64_t emitted_ = 0;

  // Flash-crowd sub-stream cursor.
  std::int64_t flashNext_ = 0;

  // Churn window [churnLo_, churnLo_ + active_) over the id space,
  // reduced mod numClients when picking; pendingDepart_/pendingArrive_
  // sequence the two markers of one churn tick.
  std::uint64_t churnLo_ = 0;
  std::uint64_t active_ = 0;
  std::int64_t sinceChurn_ = 0;
  bool pendingDepart_ = false;
  bool pendingArrive_ = false;
};

}  // namespace vlease::trace
