#include "trace/trace_io.h"

#include <fstream>
#include <sstream>

namespace vlease::trace {

void writeTrace(std::ostream& os, const Catalog& catalog,
                const std::vector<TraceEvent>& events) {
  os << "VLTRACE 1\n";
  os << "nodes " << catalog.numServers() << " " << catalog.numClients()
     << "\n";
  for (const VolumeInfo& v : catalog.volumes()) {
    os << "volume " << raw(v.server) << "\n";
  }
  for (const ObjectInfo& o : catalog.objects()) {
    os << "object " << raw(o.volume) << " " << o.sizeBytes << "\n";
  }
  for (const TraceEvent& e : events) {
    if (e.kind == EventKind::kRead) {
      os << "read " << e.at << " " << (raw(e.client) - catalog.numServers())
         << " " << raw(e.obj) << "\n";
    } else {
      os << "write " << e.at << " " << raw(e.obj) << "\n";
    }
  }
  os << "end\n";
}

bool writeTraceToFile(const std::string& path, const Catalog& catalog,
                      const std::vector<TraceEvent>& events) {
  std::ofstream os(path);
  if (!os) return false;
  writeTrace(os, catalog, events);
  return static_cast<bool>(os);
}

namespace {
std::optional<TraceFile> fail(std::string* error, const std::string& msg,
                              int line) {
  if (error) {
    std::ostringstream os;
    os << "trace parse error at line " << line << ": " << msg;
    *error = os.str();
  }
  return std::nullopt;
}
}  // namespace

std::optional<TraceFile> readTrace(std::istream& is, std::string* error) {
  std::string line;
  int lineNo = 0;

  auto nextLine = [&](std::string& out) -> bool {
    while (std::getline(is, line)) {
      ++lineNo;
      if (line.empty() || line[0] == '#') continue;
      out = line;
      return true;
    }
    return false;
  };

  std::string cur;
  if (!nextLine(cur) || cur != "VLTRACE 1")
    return fail(error, "missing 'VLTRACE 1' header", lineNo);
  if (!nextLine(cur)) return fail(error, "missing 'nodes' line", lineNo);

  std::uint32_t numServers = 0, numClients = 0;
  {
    std::istringstream ss(cur);
    std::string tag;
    if (!(ss >> tag >> numServers >> numClients) || tag != "nodes" ||
        numServers == 0 || numClients == 0)
      return fail(error, "bad 'nodes' line", lineNo);
  }

  TraceFile out{Catalog(numServers, numClients), {}};
  bool sawEnd = false;

  while (nextLine(cur)) {
    std::istringstream ss(cur);
    std::string tag;
    ss >> tag;
    if (tag == "volume") {
      std::uint32_t server;
      if (!(ss >> server) || server >= numServers)
        return fail(error, "bad 'volume' line", lineNo);
      out.catalog.addVolume(makeNodeId(server));
    } else if (tag == "object") {
      std::uint64_t vol;
      std::int64_t size;
      if (!(ss >> vol >> size) || vol >= out.catalog.numVolumes())
        return fail(error, "bad 'object' line", lineNo);
      out.catalog.addObject(makeVolumeId(vol), size);
    } else if (tag == "read") {
      std::int64_t t;
      std::uint32_t client;
      std::uint64_t obj;
      if (!(ss >> t >> client >> obj) || client >= numClients ||
          obj >= out.catalog.numObjects())
        return fail(error, "bad 'read' line", lineNo);
      out.events.push_back(TraceEvent{t, EventKind::kRead,
                                      out.catalog.clientNode(client),
                                      makeObjectId(obj)});
    } else if (tag == "write") {
      std::int64_t t;
      std::uint64_t obj;
      if (!(ss >> t >> obj) || obj >= out.catalog.numObjects())
        return fail(error, "bad 'write' line", lineNo);
      out.events.push_back(
          TraceEvent{t, EventKind::kWrite, makeNodeId(0), makeObjectId(obj)});
    } else if (tag == "end") {
      sawEnd = true;
      break;
    } else {
      return fail(error, "unknown record '" + tag + "'", lineNo);
    }
  }
  if (!sawEnd) return fail(error, "missing 'end'", lineNo);
  if (!isSorted(out.events))
    return fail(error, "events are not time-sorted", lineNo);
  return out;
}

std::optional<TraceFile> readTraceFromFile(const std::string& path,
                                           std::string* error) {
  std::ifstream is(path);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return readTrace(is, error);
}

}  // namespace vlease::trace
