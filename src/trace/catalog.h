// The object universe a trace runs against: which objects exist, their
// sizes, and how they group into volumes and home servers.
//
// The paper groups files into 1000 volumes corresponding to the 1000
// most-accessed servers (one volume per server). The catalog supports
// several volumes per server, but the generators follow the paper and
// create exactly one.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/ids.h"

namespace vlease::trace {

struct ObjectInfo {
  ObjectId id;
  VolumeId volume;
  NodeId server;
  std::int64_t sizeBytes;
  /// Dense index of this object among its server's objects, assigned in
  /// registration order: servers size their per-object state tables to
  /// the objects they actually own instead of the global id space.
  std::uint32_t localIndex = 0;
};

struct VolumeInfo {
  VolumeId id;
  NodeId server;
  /// Dense index of this volume among its server's volumes.
  std::uint32_t localIndex = 0;
};

/// Node-id layout: servers occupy [0, numServers), clients occupy
/// [numServers, numServers + numClients).
class Catalog {
 public:
  Catalog(std::uint32_t numServers, std::uint32_t numClients)
      : numServers_(numServers),
        numClients_(numClients),
        objectsOnServer_(numServers, 0),
        volumesOnServer_(numServers, 0) {}

  std::uint32_t numServers() const { return numServers_; }
  std::uint32_t numClients() const { return numClients_; }
  std::uint32_t numNodes() const { return numServers_ + numClients_; }

  NodeId serverNode(std::uint32_t serverIndex) const {
    VL_DCHECK(serverIndex < numServers_);
    return makeNodeId(serverIndex);
  }
  NodeId clientNode(std::uint32_t clientIndex) const {
    VL_DCHECK(clientIndex < numClients_);
    return makeNodeId(numServers_ + clientIndex);
  }
  bool isServer(NodeId node) const { return raw(node) < numServers_; }
  bool isClient(NodeId node) const {
    return raw(node) >= numServers_ && raw(node) < numNodes();
  }

  /// Register a volume hosted by `server`; returns its id.
  VolumeId addVolume(NodeId server) {
    VL_CHECK(isServer(server));
    VolumeId id = makeVolumeId(volumes_.size());
    volumes_.push_back(
        VolumeInfo{id, server, volumesOnServer_[raw(server)]++});
    return id;
  }

  /// Register an object in `volume`; returns its id.
  ObjectId addObject(VolumeId volume, std::int64_t sizeBytes) {
    VL_CHECK(raw(volume) < volumes_.size());
    ObjectId id = makeObjectId(objects_.size());
    const NodeId server = volumes_[raw(volume)].server;
    objects_.push_back(ObjectInfo{id, volume, server, sizeBytes,
                                  objectsOnServer_[raw(server)]++});
    return id;
  }

  std::size_t numObjects() const { return objects_.size(); }
  std::size_t numVolumes() const { return volumes_.size(); }

  const ObjectInfo& object(ObjectId id) const {
    VL_DCHECK(raw(id) < objects_.size());
    return objects_[raw(id)];
  }
  const VolumeInfo& volume(VolumeId id) const {
    VL_DCHECK(raw(id) < volumes_.size());
    return volumes_[raw(id)];
  }
  const std::vector<ObjectInfo>& objects() const { return objects_; }
  const std::vector<VolumeInfo>& volumes() const { return volumes_; }

  /// How many objects / volumes live on `server` (sizes the server's
  /// dense localIndex-addressed state tables).
  std::uint32_t objectsOnServer(NodeId server) const {
    VL_DCHECK(isServer(server));
    return objectsOnServer_[raw(server)];
  }
  std::uint32_t volumesOnServer(NodeId server) const {
    VL_DCHECK(isServer(server));
    return volumesOnServer_[raw(server)];
  }

 private:
  std::uint32_t numServers_;
  std::uint32_t numClients_;
  std::vector<ObjectInfo> objects_;
  std::vector<VolumeInfo> volumes_;
  std::vector<std::uint32_t> objectsOnServer_;
  std::vector<std::uint32_t> volumesOnServer_;
};

}  // namespace vlease::trace
