#include "trace/write_synth.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/check.h"

namespace vlease::trace {

namespace {

double writesPerDay(MutabilityClass klass, const WriteModelConfig& config) {
  switch (klass) {
    case MutabilityClass::kPopular:
      return config.popularWritesPerDay;
    case MutabilityClass::kVeryMutable:
      return config.veryMutableWritesPerDay;
    case MutabilityClass::kMutable:
      return config.mutableWritesPerDay;
    case MutabilityClass::kNormal:
      return config.normalWritesPerDay;
  }
  return 0;
}

}  // namespace

WriteWorkload synthesizeWrites(const Catalog& catalog,
                               const std::vector<std::int64_t>& readsPerObject,
                               const WriteModelConfig& config) {
  const std::size_t n = catalog.numObjects();
  VL_CHECK(readsPerObject.size() == n);
  Rng rng(config.seed);

  WriteWorkload out;
  out.classOf.assign(n, MutabilityClass::kNormal);
  out.writesPerObject.assign(n, 0);

  // Rank objects by read count (descending; id breaks ties) and mark the
  // top popularFraction as kPopular.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (readsPerObject[a] != readsPerObject[b])
      return readsPerObject[a] > readsPerObject[b];
    return a < b;
  });
  const auto numPopular =
      static_cast<std::size_t>(config.popularFraction * static_cast<double>(n));
  for (std::size_t i = 0; i < numPopular && i < n; ++i) {
    out.classOf[order[i]] = MutabilityClass::kPopular;
  }

  // Split the remaining files. The paper's fractions are of ALL files, so
  // conditioned on not-popular the probabilities are f / (1 - popular).
  const double rest = std::max(1e-9, 1.0 - config.popularFraction);
  const double pVery = config.veryMutableFraction / rest;
  const double pMut = config.mutableFraction / rest;
  for (std::size_t i = 0; i < n; ++i) {
    if (out.classOf[i] == MutabilityClass::kPopular) continue;
    double u = rng.nextDouble();
    if (u < pVery) {
      out.classOf[i] = MutabilityClass::kVeryMutable;
    } else if (u < pVery + pMut) {
      out.classOf[i] = MutabilityClass::kMutable;
    }  // else stays kNormal
  }

  // Poisson writes per object; conditioned on the count, event times of a
  // homogeneous Poisson process are iid uniform over the window.
  const double traceDays = toSeconds(config.duration) / 86400.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double mean = writesPerDay(out.classOf[i], config) * traceDays;
    const std::int64_t k = rng.nextPoisson(mean);
    out.writesPerObject[i] = k;
    for (std::int64_t j = 0; j < k; ++j) {
      auto t = static_cast<SimTime>(rng.nextDouble() *
                                    static_cast<double>(config.duration));
      out.writes.push_back(TraceEvent{t, EventKind::kWrite,
                                      makeNodeId(0) /* unused for writes */,
                                      makeObjectId(i)});
    }
  }
  sortEvents(out.writes);
  return out;
}

std::vector<TraceEvent> makeWritesBursty(const Catalog& catalog,
                                         const std::vector<TraceEvent>& writes,
                                         const BurstyWriteConfig& config) {
  Rng rng(config.seed);

  // Volume -> member objects, for picking burst companions.
  std::vector<std::vector<ObjectId>> members(catalog.numVolumes());
  for (const ObjectInfo& info : catalog.objects()) {
    members[raw(info.volume)].push_back(info.id);
  }

  std::vector<TraceEvent> out;
  out.reserve(writes.size() * 2);
  for (const TraceEvent& w : writes) {
    VL_DCHECK(w.kind == EventKind::kWrite);
    out.push_back(w);
    const auto& pool = members[raw(catalog.object(w.obj).volume)];
    if (pool.size() <= 1) continue;
    auto k = static_cast<std::int64_t>(
        rng.nextExponential(config.meanBurstSize));
    k = std::min<std::int64_t>(k, static_cast<std::int64_t>(pool.size()) - 1);
    std::unordered_set<std::uint64_t> used{raw(w.obj)};
    for (std::int64_t i = 0; i < k; ++i) {
      // Rejection-sample a distinct companion; pool is always larger
      // than `used` because k < pool.size().
      ObjectId other;
      do {
        other = pool[rng.nextBelow(pool.size())];
      } while (!used.insert(raw(other)).second);
      out.push_back(TraceEvent{w.at, EventKind::kWrite, w.client, other});
    }
  }
  sortEvents(out);
  return out;
}

}  // namespace vlease::trace
