#include "trace/regroup.h"

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace vlease::trace {

Catalog regroupVolumes(const Catalog& catalog, std::uint32_t volumesPerServer,
                       GroupingStrategy strategy, std::uint64_t seed) {
  VL_CHECK(volumesPerServer >= 1);
  Rng rng(seed);

  Catalog out(catalog.numServers(), catalog.numClients());

  // Create k volumes per server; volumeOf[s][j] is the new id.
  std::vector<std::vector<VolumeId>> volumeOf(catalog.numServers());
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    for (std::uint32_t j = 0; j < volumesPerServer; ++j) {
      volumeOf[s].push_back(out.addVolume(out.serverNode(s)));
    }
  }

  // Per-server object counts, for the contiguous split.
  std::vector<std::size_t> objectsOnServer(catalog.numServers(), 0);
  for (const ObjectInfo& info : catalog.objects()) {
    objectsOnServer[raw(info.server)] += 1;
  }
  std::vector<std::size_t> seenOnServer(catalog.numServers(), 0);

  // Objects must be re-added in id order so ids are preserved.
  for (const ObjectInfo& info : catalog.objects()) {
    const auto s = raw(info.server);
    std::uint32_t j = 0;
    if (strategy == GroupingStrategy::kRandom) {
      j = static_cast<std::uint32_t>(rng.nextBelow(volumesPerServer));
    } else {
      // Contiguous runs of ceil(n/k) objects per volume.
      const std::size_t n = objectsOnServer[s];
      const std::size_t run = (n + volumesPerServer - 1) / volumesPerServer;
      j = static_cast<std::uint32_t>(seenOnServer[s] / std::max<std::size_t>(
                                                           1, run));
      j = std::min(j, volumesPerServer - 1);
      seenOnServer[s] += 1;
    }
    ObjectId id = out.addObject(volumeOf[s][j], info.sizeBytes);
    VL_CHECK(id == info.id);  // replayability depends on stable ids
  }
  return out;
}

}  // namespace vlease::trace
