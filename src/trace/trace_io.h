// Plain-text trace format, so generated workloads can be saved, diffed,
// and re-run (and external traces converted in).
//
//   VLTRACE 1
//   nodes <numServers> <numClients>
//   volume <serverIndex>                 # volume ids assigned in order
//   object <volumeId> <sizeBytes>        # object ids assigned in order
//   read <timeUs> <clientIndex> <objectId>
//   write <timeUs> <objectId>
//   end
//
// Lines starting with '#' are comments. Events must be time-sorted (the
// writer guarantees it; the loader verifies).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "trace/catalog.h"
#include "trace/events.h"

namespace vlease::trace {

struct TraceFile {
  Catalog catalog;
  std::vector<TraceEvent> events;  // merged, time-sorted
};

void writeTrace(std::ostream& os, const Catalog& catalog,
                const std::vector<TraceEvent>& events);
bool writeTraceToFile(const std::string& path, const Catalog& catalog,
                      const std::vector<TraceEvent>& events);

/// Returns nullopt and sets `error` on malformed input.
std::optional<TraceFile> readTrace(std::istream& is, std::string* error);
std::optional<TraceFile> readTraceFromFile(const std::string& path,
                                           std::string* error);

}  // namespace vlease::trace
