// Synthetic write workload, exactly the paper's model (§4.2):
//
//   * the 10% most-referenced files get Poisson writes at 0.005/day
//     (popular files rarely change -- Bestavros '96, Gwertzman-Seltzer
//     '96);
//   * the remaining 90% are split randomly: 3% of ALL files are "very
//     mutable" (0.2 writes/day), 10% "mutable" (0.05/day), the remaining
//     77% get 0.02/day.
//
// Also provides the Fig. 9 "bursty write" transformer: each base write
// drags k ~ Exp(mean 10) additional same-instant writes to other objects
// of the same volume.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/catalog.h"
#include "trace/events.h"
#include "util/rng.h"
#include "util/time.h"

namespace vlease::trace {

enum class MutabilityClass : std::uint8_t {
  kPopular,      // top 10% by reads: 0.005 writes/day
  kVeryMutable,  // 3% of all files: 0.2 writes/day
  kMutable,      // 10% of all files: 0.05 writes/day
  kNormal,       // remaining 77%: 0.02 writes/day
};

struct WriteModelConfig {
  std::uint64_t seed = 2024;
  SimDuration duration = days(120);

  double popularFraction = 0.10;
  double popularWritesPerDay = 0.005;
  double veryMutableFraction = 0.03;  // fraction of ALL files
  double veryMutableWritesPerDay = 0.2;
  double mutableFraction = 0.10;  // fraction of ALL files
  double mutableWritesPerDay = 0.05;
  double normalWritesPerDay = 0.02;
};

struct WriteWorkload {
  std::vector<TraceEvent> writes;                 // time-sorted
  std::vector<MutabilityClass> classOf;           // per object
  std::vector<std::int64_t> writesPerObject;      // per object
};

/// `readsPerObject` ranks objects for the popular class (ties broken by
/// object id for determinism).
WriteWorkload synthesizeWrites(const Catalog& catalog,
                               const std::vector<std::int64_t>& readsPerObject,
                               const WriteModelConfig& config);

struct BurstyWriteConfig {
  std::uint64_t seed = 777;
  /// Mean of the exponential burst size k (paper: 10).
  double meanBurstSize = 10.0;
};

/// Fig. 9 transformer: for every base write, add k ~ Exp(meanBurstSize)
/// same-instant writes to other (distinct, randomly chosen) objects of
/// the same volume.
std::vector<TraceEvent> makeWritesBursty(const Catalog& catalog,
                                         const std::vector<TraceEvent>& writes,
                                         const BurstyWriteConfig& config);

}  // namespace vlease::trace
