// Volume grouping strategies (the paper's explicit future work: "We
// leave more sophisticated grouping as future work", §4.2).
//
// The paper uses exactly one volume per server. These transformers
// rebuild a catalog with the same servers, clients, and objects (object
// ids preserved, so existing traces replay unchanged) but a different
// object -> volume assignment, enabling ablations over volume
// granularity:
//   * kRandom: objects spread uniformly over k volumes per server --
//     destroys intra-volume locality; the adversarial case;
//   * kContiguous: objects split into k runs in catalog order -- since
//     the generator lays out each site's pages/embeds contiguously,
//     this roughly keeps co-accessed objects together; the friendly
//     case.
#pragma once

#include <cstdint>

#include "trace/catalog.h"

namespace vlease::trace {

enum class GroupingStrategy { kRandom, kContiguous };

/// Rebuild `catalog` with `volumesPerServer` volumes on each server.
/// Object ids, sizes, and home servers are unchanged.
Catalog regroupVolumes(const Catalog& catalog, std::uint32_t volumesPerServer,
                       GroupingStrategy strategy, std::uint64_t seed = 7);

}  // namespace vlease::trace
