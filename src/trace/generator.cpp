#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>

#include "util/check.h"

namespace vlease::trace {

namespace {

/// Geometric with support {1, 2, ...} and the given mean (>= 1).
std::int64_t geometricAtLeastOne(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;  // success probability
  double u;
  do {
    u = rng.nextDouble();
  } while (u <= 0.0);
  auto n = static_cast<std::int64_t>(std::floor(std::log(u) / std::log1p(-p)));
  return 1 + std::max<std::int64_t>(0, n);
}

/// Geometric with support {0, 1, ...} and the given mean (>= 0).
std::int64_t geometricAtLeastZero(Rng& rng, double mean) {
  if (mean <= 0.0) return 0;
  return geometricAtLeastOne(rng, mean + 1.0) - 1;
}

/// Per-server page structure: which objects are container pages, and
/// which embedded objects each page pulls in.
struct ServerSite {
  std::vector<ObjectId> pages;
  std::vector<std::vector<ObjectId>> embedsOfPage;  // parallel to pages
};

}  // namespace

BuLikeTrace generateBuLikeTrace(const BuLikeConfig& config) {
  VL_CHECK(config.numClients > 0);
  VL_CHECK(config.numServers > 0);
  VL_CHECK(config.scale > 0);
  VL_CHECK(config.duration > 0);

  const auto totalObjects = std::max<std::size_t>(
      config.numServers * 2,
      static_cast<std::size_t>(config.totalObjects * config.scale));
  const auto totalReads = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(config.totalReads * config.scale));

  Rng rootRng(config.seed);
  Rng catalogRng = rootRng.fork();
  Rng clientSeeder = rootRng.fork();

  BuLikeTrace out{Catalog(config.numServers, config.numClients), {}, {}, {}};
  Catalog& catalog = out.catalog;

  // ---- catalog: one volume per server; object counts follow server
  // popularity so popular servers also host more files ----
  ZipfSampler serverPop(config.numServers, config.serverZipf);
  std::vector<std::size_t> objectsPerServer(config.numServers, 2);
  std::size_t assigned = 2 * config.numServers;  // page + embed minimum
  for (std::uint32_t s = 0; s < config.numServers; ++s) {
    auto extra = static_cast<std::size_t>(
        serverPop.pmf(s) * static_cast<double>(totalObjects));
    objectsPerServer[s] += extra;
    assigned += extra;
  }
  for (std::uint32_t s = 0; assigned < totalObjects; ++s) {
    objectsPerServer[s % config.numServers] += 1;
    ++assigned;
  }

  const double sizeMu = std::log(config.medianObjectBytes);
  std::vector<ServerSite> sites(config.numServers);
  for (std::uint32_t s = 0; s < config.numServers; ++s) {
    VolumeId vol = catalog.addVolume(catalog.serverNode(s));
    const std::size_t n = objectsPerServer[s];
    auto numPages = std::max<std::size_t>(
        1, static_cast<std::size_t>(config.pageFraction *
                                    static_cast<double>(n)));
    numPages = std::min(numPages, n - 1);  // keep at least one embeddable

    std::vector<ObjectId> all;
    all.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      auto size = static_cast<std::int64_t>(std::max(
          64.0, catalogRng.nextLogNormal(sizeMu, config.objectSizeSigma)));
      all.push_back(catalog.addObject(vol, size));
    }

    ServerSite& site = sites[s];
    site.pages.assign(all.begin(),
                      all.begin() + static_cast<std::ptrdiff_t>(numPages));
    const std::size_t numEmbeddable = n - numPages;
    // Embedded-object popularity is Zipf: a site's logo/stylesheet is on
    // every page, obscure images on few.
    ZipfSampler embedPop(numEmbeddable, config.objectZipf);
    site.embedsOfPage.resize(numPages);
    for (std::size_t p = 0; p < numPages; ++p) {
      const std::int64_t k =
          geometricAtLeastZero(catalogRng, config.meanEmbedsPerPage);
      std::unordered_set<std::uint64_t> used;
      for (std::int64_t e = 0; e < k && used.size() < numEmbeddable; ++e) {
        ObjectId obj = all[numPages + embedPop(catalogRng)];
        if (used.insert(raw(obj)).second) {
          site.embedsOfPage[p].push_back(obj);
        }
      }
    }
  }

  // Per-server page-popularity samplers.
  std::vector<ZipfSampler> pagePop;
  pagePop.reserve(config.numServers);
  for (std::uint32_t s = 0; s < config.numServers; ++s) {
    pagePop.emplace_back(sites[s].pages.size(), config.objectZipf);
  }

  // ---- client read generation ----
  out.readsPerObject.assign(catalog.numObjects(), 0);
  out.readsPerServer.assign(config.numServers, 0);

  const double readsPerVisit = 1.0 + config.meanEmbedsPerPage * 0.8;
  const double readsPerClient =
      static_cast<double>(totalReads) / config.numClients;
  const double sessionsPerClient = std::max(
      1.0, readsPerClient / (config.meanPagesPerSession * readsPerVisit));

  std::vector<TraceEvent> reads;
  reads.reserve(static_cast<std::size_t>(totalReads) + 1024);

  for (std::uint32_t c = 0; c < config.numClients; ++c) {
    Rng rng(clientSeeder.next());
    const NodeId client = catalog.clientNode(c);

    // Favorite servers: popularity-biased, deduplicated.
    std::vector<std::uint32_t> favorites;
    {
      std::unordered_set<std::uint32_t> seen;
      std::size_t want =
          std::min<std::size_t>(config.affinityServers, config.numServers);
      while (favorites.size() < want) {
        auto s = static_cast<std::uint32_t>(serverPop(rng));
        if (seen.insert(s).second) favorites.push_back(s);
      }
    }

    // Recently visited pages, per server (page index), kept across
    // sessions: revisiting them yields hours-to-days re-read gaps.
    std::vector<std::deque<std::size_t>> history(config.numServers);

    auto numSessions =
        std::max<std::int64_t>(1, rng.nextPoisson(sessionsPerClient));
    for (std::int64_t sess = 0; sess < numSessions; ++sess) {
      // Session start: uniform over the trace (a homogeneous Poisson
      // process conditioned on its count has iid-uniform event times).
      SimTime t = static_cast<SimTime>(
          rng.nextDouble() * static_cast<double>(config.duration));

      std::uint32_t server;
      if (!favorites.empty() && rng.nextBool(config.affinityProb)) {
        server = favorites[rng.nextBelow(favorites.size())];
      } else {
        server = static_cast<std::uint32_t>(serverPop(rng));
      }
      const ServerSite& site = sites[server];
      auto& hist = history[server];

      const std::int64_t pages =
          geometricAtLeastOne(rng, config.meanPagesPerSession);
      for (std::int64_t p = 0; p < pages && t < config.duration; ++p) {
        std::size_t pageIdx;
        if (!hist.empty() && rng.nextBool(config.revisitProb)) {
          pageIdx = hist[rng.nextBelow(hist.size())];
        } else {
          pageIdx = pagePop[server](rng);
        }
        hist.push_back(pageIdx);
        if (hist.size() > config.historyCapacity) hist.pop_front();

        auto emit = [&](ObjectId obj) {
          reads.push_back(TraceEvent{t, EventKind::kRead, client, obj});
          out.readsPerObject[raw(obj)] += 1;
          out.readsPerServer[server] += 1;
        };
        // Container page, then its embedded objects in a sub-second
        // burst -- the paper's "client accesses multiple objects from
        // the same volume in a short amount of time".
        emit(site.pages[pageIdx]);
        for (ObjectId embed : site.embedsOfPage[pageIdx]) {
          t = addSat(t, static_cast<SimDuration>(rng.nextExponential(
                            static_cast<double>(config.meanEmbedGap))));
          if (t >= config.duration) break;
          emit(embed);
        }
        t = addSat(t, static_cast<SimDuration>(rng.nextExponential(
                          static_cast<double>(config.meanThinkTime))));
      }
    }
  }

  sortEvents(reads);
  out.reads = std::move(reads);
  return out;
}

}  // namespace vlease::trace
