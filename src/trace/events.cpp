#include "trace/events.h"

#include <algorithm>

namespace vlease::trace {

bool eventBefore(const TraceEvent& a, const TraceEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  // Reads sort before writes at the same instant; this mirrors the
  // paper's sequential model where a read concurrent with a write sees
  // the pre-write value.
  return a.kind == EventKind::kRead && b.kind == EventKind::kWrite;
}

std::vector<TraceEvent> mergeEvents(std::vector<TraceEvent> reads,
                                    std::vector<TraceEvent> writes) {
  std::vector<TraceEvent> out;
  out.reserve(reads.size() + writes.size());
  std::merge(reads.begin(), reads.end(), writes.begin(), writes.end(),
             std::back_inserter(out), eventBefore);
  return out;
}

void sortEvents(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(), eventBefore);
}

bool isSorted(const std::vector<TraceEvent>& events) {
  return std::is_sorted(events.begin(), events.end(),
                        [](const TraceEvent& a, const TraceEvent& b) {
                          return eventBefore(a, b);
                        });
}

}  // namespace vlease::trace
