#include "trace/stream.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vlease::trace {

EventStream::EventStream(const StreamOptions& options, const Catalog& catalog,
                         const std::vector<ObjectId>& objects)
    : opt_(options),
      catalog_(catalog),
      objects_(objects),
      rng_(options.seed),
      zipf_(std::max<std::uint64_t>(1, objects.size()), options.zipfSkew) {
  VL_CHECK(opt_.numClients > 0 && opt_.numClients <= catalog_.numClients());
  VL_CHECK(!objects_.empty());
  VL_CHECK(opt_.events >= 0 && opt_.interarrival > 0);
  VL_CHECK(opt_.zipfSkew >= 0);
  VL_CHECK(opt_.diurnalAmplitude >= 0 && opt_.diurnalAmplitude < 1);
  VL_CHECK(opt_.diurnalPeriod > 0);
  VL_CHECK(opt_.churnActiveFraction > 0 && opt_.churnActiveFraction <= 1);
  if (opt_.flashObject == UINT64_MAX) {
    opt_.flashObject = objects_.size() - 1;
  }
  VL_CHECK(opt_.flashObject < objects_.size());
  VL_CHECK(opt_.flashClients <= opt_.numClients);
  active_ = opt_.numClients;
  if (opt_.churnEvery > 0) {
    // Keep headroom between the active window and the id space, so an
    // arrival is a genuinely fresh client rather than the one that just
    // departed; ids recycle only once the window wraps all the way.
    active_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               static_cast<double>(opt_.numClients) *
               opt_.churnActiveFraction));
  }
  at_ = opt_.interarrival;  // first base event, matching the legacy loop
}

std::uint32_t EventStream::activeClient(std::uint64_t pick) const {
  return static_cast<std::uint32_t>((churnLo_ + pick) % opt_.numClients);
}

void EventStream::advanceClock() {
  if (opt_.diurnalAmplitude == 0) {
    at_ += opt_.interarrival;  // exact integer cadence (legacy stream)
    return;
  }
  // Rate multiplier 1 + A*sin(2*pi*t/period): interarrivals compress at
  // the diurnal peak, stretch in the trough. The step is recomputed from
  // the current instant, so the curve is phase-exact regardless of rate.
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double phase = kTwoPi * static_cast<double>(at_) /
                       static_cast<double>(opt_.diurnalPeriod);
  const double rate = 1.0 + opt_.diurnalAmplitude * std::sin(phase);
  const auto step = static_cast<SimDuration>(
      std::llround(static_cast<double>(opt_.interarrival) / rate));
  at_ += std::max<SimDuration>(1, step);
}

void EventStream::nextBase(TraceEvent& out) {
  out.at = at_;
  // Draw order matches the legacy replay exactly: object first, then --
  // only for reads -- the client. Zipf off means the raw uniform pick, so
  // the default stream is bit-identical to the pre-engine loop.
  const std::uint64_t rank = opt_.zipfSkew > 0
                                 ? zipf_(rng_)
                                 : rng_.nextBelow(objects_.size());
  out.obj = objects_[rank];
  if (opt_.writeEvery > 0 && (baseEmitted_ + 1) % opt_.writeEvery == 0) {
    out.kind = EventKind::kWrite;
    out.client = catalog_.serverNode(0);  // ignored for writes
  } else {
    out.kind = EventKind::kRead;
    out.client = catalog_.clientNode(
        activeClient(rng_.nextBelow(active_)));
  }
  ++baseEmitted_;
  advanceClock();
  if (opt_.churnEvery > 0 && ++sinceChurn_ >= opt_.churnEvery) {
    sinceChurn_ = 0;
    pendingDepart_ = true;
  }
}

bool EventStream::next(TraceEvent& out) {
  // Churn markers are stamped at the time of the event that triggered
  // them (lastAt_), so the merged stream stays time-sorted even when a
  // flash-crowd event is due in between.
  if (pendingDepart_) {
    pendingDepart_ = false;
    pendingArrive_ = true;
    out = TraceEvent{lastAt_, EventKind::kDepart,
                     catalog_.clientNode(activeClient(0)), objects_[0]};
    ++emitted_;
    return true;
  }
  if (pendingArrive_) {
    pendingArrive_ = false;
    out = TraceEvent{lastAt_, EventKind::kArrive,
                     catalog_.clientNode(activeClient(active_)), objects_[0]};
    ++churnLo_;  // slide the window: the departed id is now outside it
    ++emitted_;
    return true;
  }
  if (flashNext_ < opt_.flashClients) {
    const SimDuration spacing =
        opt_.flashDuration / std::max<std::int64_t>(1, opt_.flashClients);
    const SimTime flashTime = opt_.flashAt + flashNext_ * spacing;
    if (flashTime <= at_ || baseEmitted_ >= opt_.events) {
      // Distinct clients storm the cold object: consecutive window
      // offsets, no randomness consumed, base draws unperturbed.
      out = TraceEvent{
          std::max(flashTime, lastAt_), EventKind::kRead,
          catalog_.clientNode(activeClient(
              static_cast<std::uint64_t>(flashNext_) % active_)),
          objects_[opt_.flashObject]};
      ++flashNext_;
      lastAt_ = out.at;
      ++emitted_;
      return true;
    }
  }
  if (baseEmitted_ >= opt_.events) return false;
  nextBase(out);
  lastAt_ = out.at;
  ++emitted_;
  return true;
}

}  // namespace vlease::trace
