// Trace events: timestamped client reads and server writes, plus the
// merge step that produces the single time-ordered stream the simulator
// consumes (the paper's simulator "accepts timestamped read and modify
// events from input files").
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace vlease::trace {

/// kArrive/kDepart are client-churn markers (first-class generator
/// events, distinct from FaultPlan crashes): a departing client
/// gracefully forgets its leases and returns its lazily grown storage
/// (ClientNode::retire()); an arriving client simply starts cold. The
/// values extend the original {kRead, kWrite} pair so existing kind
/// comparisons (reads sort before writes) are untouched.
enum class EventKind : std::uint8_t { kRead, kWrite, kArrive, kDepart };

struct TraceEvent {
  SimTime at;
  EventKind kind;
  /// Reader for kRead, the churning client for kArrive/kDepart; ignored
  /// for kWrite (writes happen at the object's home server).
  NodeId client;
  ObjectId obj;
};

/// Stable comparison: by time, then reads before writes, preserving
/// input order within a group (the merge below is stable).
bool eventBefore(const TraceEvent& a, const TraceEvent& b);

/// Merge two time-sorted streams into one time-sorted stream.
std::vector<TraceEvent> mergeEvents(std::vector<TraceEvent> reads,
                                    std::vector<TraceEvent> writes);

/// Sort a stream in place (stable).
void sortEvents(std::vector<TraceEvent>& events);

/// True if time-sorted.
bool isSorted(const std::vector<TraceEvent>& events);

}  // namespace vlease::trace
