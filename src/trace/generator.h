// Synthetic read-trace generator standing in for the Boston University
// Mosaic traces (Cunha et al. 1995) used by the paper, which are not
// redistributable here. See DESIGN.md §5 for the substitution argument.
//
// The generator reproduces the aggregate statistics the paper's effects
// depend on:
//   * ~33 clients issuing ~10^6 reads over ~4 months against the 1000
//     most popular servers (one volume per server);
//   * heavy-tailed (Zipf) server and per-server object popularity;
//   * browser-like structure: a session is a sequence of PAGE VISITS to
//     one server; each visit reads a container page plus its embedded
//     objects with sub-second gaps (the volume-level spatial locality
//     volume leases amortize renewals over), with tens of seconds of
//     think time between pages;
//   * stable page composition: a page embeds the same objects on every
//     visit, so re-reads are frequent;
//   * object re-reads whose gaps range from sub-second (within a page)
//     to minutes (within a session) to hours or days (favorite servers
//     revisited across sessions), matching the paper's observation that
//     repeated accesses spread over minutes or more.
//
// Everything is deterministic in the seed.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/catalog.h"
#include "trace/events.h"
#include "util/rng.h"
#include "util/time.h"

namespace vlease::trace {

struct BuLikeConfig {
  std::uint64_t seed = 1998;

  std::uint32_t numClients = 33;
  std::uint32_t numServers = 1000;
  std::size_t totalObjects = 68'665;
  std::int64_t totalReads = 1'034'077;
  SimDuration duration = days(120);

  /// Popularity skew across servers / across objects within a server.
  double serverZipf = 0.95;
  double objectZipf = 1.0;

  /// Page structure: fraction of a server's objects that are container
  /// pages (the rest are embeddable images/includes), and the mean
  /// number of embedded objects per page (geometric, support >= 0).
  double pageFraction = 0.30;
  double meanEmbedsPerPage = 4.0;

  /// Session shape: page visits per session (geometric, support >= 1),
  /// think time between pages (exponential), and the gap between the
  /// container read and each embedded read (exponential, sub-second).
  double meanPagesPerSession = 6.0;
  SimDuration meanThinkTime = sec(30);
  SimDuration meanEmbedGap = msec(300);

  /// Chance a page visit revisits a page from the client's recent
  /// history for this server (drives medium/long-gap re-reads).
  double revisitProb = 0.4;
  std::size_t historyCapacity = 32;

  /// Per-client server affinity: sessions mostly go to a small pool of
  /// favorite servers (drives cross-session re-reads, hours-to-days
  /// revisit gaps).
  std::size_t affinityServers = 12;
  double affinityProb = 0.7;

  /// Object sizes: lognormal with this median, in bytes.
  double medianObjectBytes = 8 * 1024;
  double objectSizeSigma = 1.2;

  /// Uniform scale knob: multiplies totalObjects and totalReads. Tests
  /// and quick bench runs use scale < 1; results keep their shape.
  double scale = 1.0;
};

struct BuLikeTrace {
  Catalog catalog;
  std::vector<TraceEvent> reads;             // time-sorted
  std::vector<std::int64_t> readsPerObject;  // indexed by raw ObjectId
  std::vector<std::int64_t> readsPerServer;  // indexed by server index
};

BuLikeTrace generateBuLikeTrace(const BuLikeConfig& config);

}  // namespace vlease::trace
