// Readiness backend for the rt layer's event loops.
//
// One interface, two backends:
//   * kEpoll (Linux): one epoll instance per loop; add/mod/del map to
//     epoll_ctl and wait() to epoll_wait. Level-triggered on purpose --
//     the transport drains sockets until EAGAIN anyway, and level
//     triggering keeps the "handler didn't finish the job" case safe by
//     construction (the fd simply reports ready again next wait).
//   * kPoll (portable fallback): the pollfd array the rt layer started
//     with, kept behind the same interface so a kqueue backend can slot
//     in beside epoll later without touching the driver or transport.
//
// The configure-time default is epoll where <sys/epoll.h> exists
// (VLEASE_HAVE_EPOLL, set by src/rt/CMakeLists.txt) and poll elsewhere;
// EventLoop::create(Backend) overrides it at runtime so tests exercise
// both backends on the same machine.
//
// Contract notes:
//   * interest is level-triggered for both read and write;
//   * wait() never returns an fd that was del()ed before the call, but a
//     handler running off one wait() batch may del() an fd that is also
//     in the same batch -- callers (the driver) re-check registration
//     before dispatching each event;
//   * del() on an fd that was never add()ed is a harmless no-op (the
//     transport tears connections down from several paths).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace vlease::rt {

class EventLoop {
 public:
  enum class Backend { kPoll, kEpoll };

  /// One readiness report. `error` covers EPOLLERR/EPOLLHUP (POLLERR/
  /// POLLHUP); callers treat it like readability so the read path
  /// observes the EOF/error and closes the connection.
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  virtual ~EventLoop() = default;

  /// Register `fd` with the given interest set. Registering an fd twice
  /// is a programming error on the epoll backend; use mod().
  virtual void add(int fd, bool read, bool write) = 0;
  /// Change the interest set of a registered fd.
  virtual void mod(int fd, bool read, bool write) = 0;
  /// Remove an fd. No-op if it was never registered.
  virtual void del(int fd) = 0;

  /// Block up to `timeoutMs` (0 = poll, <0 = forever) and append every
  /// ready fd to `out` (cleared first). Returns the number of events,
  /// 0 on timeout; EINTR is treated as a timeout.
  virtual int wait(std::vector<Event>& out, int timeoutMs) = 0;

  virtual Backend backend() const = 0;
  virtual const char* name() const = 0;

  /// The configure-time default backend (epoll when compiled in).
  static Backend defaultBackend();
  static std::unique_ptr<EventLoop> create(Backend backend);
  static std::unique_ptr<EventLoop> create() {
    return create(defaultBackend());
  }
};

}  // namespace vlease::rt
