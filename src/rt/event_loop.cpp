#include "rt/event_loop.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>

#include "util/check.h"

#if defined(VLEASE_HAVE_EPOLL)
#include <sys/epoll.h>
#include <unistd.h>
#endif

namespace vlease::rt {

namespace {

// ---------------------------------------------------------------------
// poll(2) backend: a dense pollfd array, O(fds) per wait. This is the
// seed implementation's data structure, kept as the portable fallback
// and as the differential reference for the epoll backend's tests.
// ---------------------------------------------------------------------
class PollBackend final : public EventLoop {
 public:
  void add(int fd, bool read, bool write) override {
    VL_CHECK(fd >= 0);
    VL_CHECK(indexOf(fd) == kNone);
    pfds_.push_back(pollfd{fd, eventsFor(read, write), 0});
  }

  void mod(int fd, bool read, bool write) override {
    const std::size_t i = indexOf(fd);
    VL_CHECK(i != kNone);
    pfds_[i].events = eventsFor(read, write);
  }

  void del(int fd) override {
    const std::size_t i = indexOf(fd);
    if (i == kNone) return;
    pfds_[i] = pfds_.back();
    pfds_.pop_back();
  }

  int wait(std::vector<Event>& out, int timeoutMs) override {
    out.clear();
    const int ready = ::poll(pfds_.data(), pfds_.size(), timeoutMs);
    if (ready <= 0) return 0;  // timeout or EINTR
    for (const pollfd& p : pfds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      ev.readable = (p.revents & POLLIN) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return static_cast<int>(out.size());
  }

  Backend backend() const override { return Backend::kPoll; }
  const char* name() const override { return "poll"; }

 private:
  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

  static short eventsFor(bool read, bool write) {
    short ev = 0;
    if (read) ev |= POLLIN;
    if (write) ev |= POLLOUT;
    return ev;
  }

  std::size_t indexOf(int fd) const {
    for (std::size_t i = 0; i < pfds_.size(); ++i) {
      if (pfds_[i].fd == fd) return i;
    }
    return kNone;
  }

  std::vector<pollfd> pfds_;
};

#if defined(VLEASE_HAVE_EPOLL)
// ---------------------------------------------------------------------
// epoll backend: O(ready) per wait regardless of watched-set size --
// the population-scaling backend a lease server with tens of thousands
// of client connections needs.
// ---------------------------------------------------------------------
class EpollBackend final : public EventLoop {
 public:
  EpollBackend() : epfd_(::epoll_create1(EPOLL_CLOEXEC)) {
    VL_CHECK_MSG(epfd_ >= 0, "epoll_create1() failed");
  }
  ~EpollBackend() override { ::close(epfd_); }

  void add(int fd, bool read, bool write) override {
    VL_CHECK(fd >= 0);
    epoll_event ev = eventFor(fd, read, write);
    VL_CHECK_MSG(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                 "epoll_ctl(ADD) failed");
  }

  void mod(int fd, bool read, bool write) override {
    epoll_event ev = eventFor(fd, read, write);
    VL_CHECK_MSG(::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0,
                 "epoll_ctl(MOD) failed");
  }

  void del(int fd) override {
    // ENOENT (never added) is the documented no-op; EBADF can happen
    // when a caller closes before deleting -- the kernel already
    // dropped the registration with the fd, so that is a no-op too.
    ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
  }

  int wait(std::vector<Event>& out, int timeoutMs) override {
    out.clear();
    const int ready =
        ::epoll_wait(epfd_, raw_.data(), static_cast<int>(raw_.size()),
                     timeoutMs);
    if (ready <= 0) return 0;  // timeout or EINTR
    out.reserve(static_cast<std::size_t>(ready));
    for (int i = 0; i < ready; ++i) {
      const epoll_event& e = raw_[static_cast<std::size_t>(i)];
      Event ev;
      ev.fd = e.data.fd;
      ev.readable = (e.events & EPOLLIN) != 0;
      ev.writable = (e.events & EPOLLOUT) != 0;
      ev.error = (e.events & (EPOLLERR | EPOLLHUP)) != 0;
      out.push_back(ev);
    }
    // A full batch means more may be pending; grow so one wait keeps
    // draining the whole ready set in a single syscall next time.
    if (static_cast<std::size_t>(ready) == raw_.size()) {
      raw_.resize(raw_.size() * 2);
    }
    return ready;
  }

  Backend backend() const override { return Backend::kEpoll; }
  const char* name() const override { return "epoll"; }

 private:
  static epoll_event eventFor(int fd, bool read, bool write) {
    epoll_event ev{};
    ev.events = 0;  // level-triggered (no EPOLLET; see header comment)
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    ev.data.fd = fd;
    return ev;
  }

  int epfd_;
  std::vector<epoll_event> raw_{64};
};
#endif  // VLEASE_HAVE_EPOLL

}  // namespace

EventLoop::Backend EventLoop::defaultBackend() {
#if defined(VLEASE_HAVE_EPOLL)
  return Backend::kEpoll;
#else
  return Backend::kPoll;
#endif
}

std::unique_ptr<EventLoop> EventLoop::create(Backend backend) {
#if defined(VLEASE_HAVE_EPOLL)
  if (backend == Backend::kEpoll) return std::make_unique<EpollBackend>();
#else
  VL_CHECK_MSG(backend == Backend::kPoll,
               "epoll backend not compiled in (VLEASE_HAVE_EPOLL off)");
#endif
  return std::make_unique<PollBackend>();
}

}  // namespace vlease::rt
