// Sim-vs-real parity: the record format worker processes log, and the
// offline checker that audits a merged real-run log the way
// driver::ConsistencyOracle audits a simulation.
//
// Workers append one line per observable event to a per-node log file
// (fflush'd per line so a SIGKILL loses at most the line being written;
// the parser tolerates a truncated tail):
//
//   E <vol> <epoch>                                  server (re)start,
//                                                    one line per volume
//   w <obj> <issuedAt>                               write issued
//   W <obj> <version> <issuedAt> <completedAt> <delay>   write committed
//   R <client> <obj> <issuedAt> <completedAt> <ok> <usedNet> <version>
//
// Times are microseconds on the shared raw timeline. The checker mirrors
// the oracle's verdict kinds on these records:
//
//   * stale read     -- an ok read returned a version older than a write
//                       that committed at least `allowance` before the
//                       read was issued (allowance = slack + epsilon +
//                       skew budget, covering propagation and boundary
//                       races the oracle handles with exact sim times);
//   * lost write     -- a write was issued, never committed, had time to
//                       finish before the horizon, and no server crash
//                       explains the loss;
//   * write delay    -- a committed write waited longer than
//                       min(t, t_v) + epsilon + msgTimeout + slack, with
//                       crash-recovery intervals exempt (the oracle's
//                       grace);
//   * early-recovery write -- REAL-ONLY: a write committed inside
//                       [recover, recover + t_v + epsilon - slack) after
//                       a server crash, violating the paper's rule that
//                       a rebooted server stays silent for one lease
//                       term; the simulator enforces this structurally,
//                       a real cold restart must prove it on wall clock;
//   * epoch regression -- REAL-ONLY: a server incarnation logged a
//                       volume epoch <= a previous incarnation's for the
//                       SAME volume (stable storage failed to ratchet;
//                       checked per volume so a migrate-away-then-return
//                       or multi-volume server can never regress one
//                       volume behind another's counter).
//
// tools/vlease_rt replays the same (workload, FaultPlan, seed) through
// driver::Simulation and diffs these counts against the oracle's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/fault_plan.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::rt {

struct WriteIssueRecord {
  ObjectId obj = makeObjectId(0);
  SimTime issuedAt = 0;
};

struct WriteRecord {
  ObjectId obj = makeObjectId(0);
  Version version = 0;
  SimTime issuedAt = 0;
  SimTime completedAt = 0;
  SimDuration delay = 0;
};

struct ReadRecord {
  NodeId client = makeNodeId(0);
  ObjectId obj = makeObjectId(0);
  SimTime issuedAt = 0;
  SimTime completedAt = 0;
  bool ok = false;
  bool usedNetwork = false;
  Version version = 0;
};

struct EpochRecord {
  VolumeId vol = makeVolumeId(0);
  Epoch epoch = 0;
};

struct RunLog {
  /// One record per (server (re)start, owned volume), in log order.
  std::vector<EpochRecord> epochs;
  std::vector<WriteIssueRecord> issues;
  std::vector<WriteRecord> writes;
  std::vector<ReadRecord> reads;

  void merge(const RunLog& other);
};

// ---- record formatting (what workers write) ----
std::string formatEpochLine(VolumeId vol, Epoch epoch);
std::string formatWriteIssueLine(ObjectId obj, SimTime issuedAt);
std::string formatWriteLine(const WriteRecord& w);
std::string formatReadLine(const ReadRecord& r);

/// Parse a log body. Malformed or truncated lines are skipped (a
/// SIGKILLed worker's last line may be partial -- that is expected).
RunLog parseRunLog(const std::string& text);

/// Load + parse a log file; a missing file yields an empty log.
RunLog loadRunLog(const std::string& path);

/// Real-run verdict counts, one field per oracle-mirrored kind.
struct ParityCounts {
  std::int64_t staleReads = 0;
  std::int64_t lostWrites = 0;
  std::int64_t writeDelays = 0;
  std::int64_t earlyRecoveryWrites = 0;
  std::int64_t epochRegressions = 0;

  std::int64_t total() const {
    return staleReads + lostWrites + writeDelays + earlyRecoveryWrites +
           epochRegressions;
  }
};

struct CheckerOptions {
  /// min(t, t_v): the base a write may wait for silent lease expiry.
  SimDuration writeWaitBase = 0;
  /// The volume-lease term t_v (recovery silence = t_v + epsilon).
  SimDuration volumeTimeout = 0;
  SimDuration clockEpsilon = 0;
  SimDuration msgTimeout = 0;
  /// Real-scheduling allowance added to every bound.
  SimDuration slack = msec(500);
  SimDuration skewBudget = 0;
  /// End of the run on the shared timeline.
  SimTime horizon = 0;
  /// The plan that ran, for crash-window exemptions.
  net::FaultPlan plan;
  /// Server nodes (their crash windows gate write exemptions).
  std::vector<NodeId> servers;
};

/// Audit a merged real-run log. Appends a human line per violation to
/// `notes` when non-null.
ParityCounts checkRealRun(const RunLog& log, const CheckerOptions& options,
                          std::vector<std::string>* notes = nullptr);

}  // namespace vlease::rt
