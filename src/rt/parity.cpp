#include "rt/parity.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

namespace vlease::rt {

void RunLog::merge(const RunLog& other) {
  epochs.insert(epochs.end(), other.epochs.begin(), other.epochs.end());
  issues.insert(issues.end(), other.issues.begin(), other.issues.end());
  writes.insert(writes.end(), other.writes.begin(), other.writes.end());
  reads.insert(reads.end(), other.reads.begin(), other.reads.end());
}

std::string formatEpochLine(VolumeId vol, Epoch epoch) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "E %" PRIu64 " %" PRId64 "\n",
                static_cast<std::uint64_t>(raw(vol)), epoch);
  return buf;
}

std::string formatWriteIssueLine(ObjectId obj, SimTime issuedAt) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "w %" PRIu64 " %" PRId64 "\n",
                static_cast<std::uint64_t>(raw(obj)), issuedAt);
  return buf;
}

std::string formatWriteLine(const WriteRecord& w) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "W %" PRIu64 " %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64
                "\n",
                static_cast<std::uint64_t>(raw(w.obj)), w.version, w.issuedAt,
                w.completedAt, w.delay);
  return buf;
}

std::string formatReadLine(const ReadRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "R %u %" PRIu64 " %" PRId64 " %" PRId64 " %d %d %" PRId64
                "\n",
                raw(r.client), static_cast<std::uint64_t>(raw(r.obj)),
                r.issuedAt, r.completedAt, r.ok ? 1 : 0,
                r.usedNetwork ? 1 : 0, r.version);
  return buf;
}

RunLog parseRunLog(const std::string& text) {
  RunLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    switch (line[0]) {
      case 'E': {
        std::uint64_t vol = 0;
        Epoch epoch = 0;
        if (std::sscanf(line.c_str(), "E %" SCNu64 " %" SCNd64, &vol,
                        &epoch) == 2) {
          log.epochs.push_back({makeVolumeId(vol), epoch});
        }
        break;
      }
      case 'w': {
        std::uint64_t obj = 0;
        SimTime issuedAt = 0;
        if (std::sscanf(line.c_str(), "w %" SCNu64 " %" SCNd64, &obj,
                        &issuedAt) == 2) {
          log.issues.push_back({makeObjectId(obj), issuedAt});
        }
        break;
      }
      case 'W': {
        std::uint64_t obj = 0;
        WriteRecord w;
        if (std::sscanf(line.c_str(),
                        "W %" SCNu64 " %" SCNd64 " %" SCNd64 " %" SCNd64
                        " %" SCNd64,
                        &obj, &w.version, &w.issuedAt, &w.completedAt,
                        &w.delay) == 5) {
          w.obj = makeObjectId(obj);
          log.writes.push_back(w);
        }
        break;
      }
      case 'R': {
        std::uint32_t client = 0;
        std::uint64_t obj = 0;
        int ok = 0;
        int usedNet = 0;
        ReadRecord r;
        if (std::sscanf(line.c_str(),
                        "R %u %" SCNu64 " %" SCNd64 " %" SCNd64 " %d %d %" SCNd64,
                        &client, &obj, &r.issuedAt, &r.completedAt, &ok,
                        &usedNet, &r.version) == 7) {
          r.client = makeNodeId(client);
          r.obj = makeObjectId(obj);
          r.ok = ok != 0;
          r.usedNetwork = usedNet != 0;
          log.reads.push_back(r);
        }
        break;
      }
      default:
        break;  // unknown / truncated line: skip
    }
  }
  return log;
}

RunLog loadRunLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream body;
  body << in.rdbuf();
  return parseRunLog(body.str());
}

ParityCounts checkRealRun(const RunLog& log, const CheckerOptions& options,
                          std::vector<std::string>* notes) {
  ParityCounts counts;
  const auto note = [&](const std::string& s) {
    if (notes != nullptr) notes->push_back(s);
  };

  // Crash windows across all servers, merged. The harness runs
  // single-server deployments, so a window explains any write.
  std::vector<std::pair<SimTime, SimTime>> crashes;
  for (const NodeId s : options.servers) {
    const auto windows = options.plan.crashWindows(s);
    crashes.insert(crashes.end(), windows.begin(), windows.end());
  }
  const SimDuration recoverySilence =
      options.volumeTimeout + options.clockEpsilon;
  const SimDuration allowedDelay = options.writeWaitBase +
                                   options.clockEpsilon + options.msgTimeout +
                                   options.slack;

  // Does a crash window (down time or the post-recovery silence) overlap
  // the write's [issuedAt, completedAt] lifetime?
  const auto crashExplains = [&](SimTime issuedAt, SimTime completedAt) {
    for (const auto& [crashAt, recoverAt] : crashes) {
      const SimTime end =
          recoverAt == kNever
              ? kNever
              : addSat(recoverAt, recoverySilence + options.slack);
      if (issuedAt <= end && completedAt >= crashAt - options.slack) {
        return true;
      }
    }
    return false;
  };

  // ---- stale reads ----
  // Per-object commit history sorted by commit time with a prefix-max
  // version: the freshest version guaranteed visible to a read issued at
  // T is the prefix max at T - allowance.
  std::unordered_map<std::uint64_t, std::vector<std::pair<SimTime, Version>>>
      history;
  for (const WriteRecord& w : log.writes) {
    history[raw(w.obj)].emplace_back(w.completedAt, w.version);
  }
  for (auto& [obj, commits] : history) {
    std::sort(commits.begin(), commits.end());
    Version prefixMax = 0;
    for (auto& [at, version] : commits) {
      prefixMax = std::max(prefixMax, version);
      version = prefixMax;
    }
  }
  const SimDuration allowance =
      options.slack + options.clockEpsilon + options.skewBudget;
  for (const ReadRecord& r : log.reads) {
    if (!r.ok) continue;
    auto it = history.find(raw(r.obj));
    if (it == history.end()) continue;
    const auto& commits = it->second;
    const SimTime cutoff = r.issuedAt - allowance;
    auto upper = std::upper_bound(
        commits.begin(), commits.end(), cutoff,
        [](SimTime t, const auto& c) { return t < c.first; });
    if (upper == commits.begin()) continue;
    const Version mustSee = std::prev(upper)->second;
    if (r.version < mustSee) {
      ++counts.staleReads;
      note("stale read: client " + std::to_string(raw(r.client)) + " obj " +
           std::to_string(raw(r.obj)) + " at " + formatSimTime(r.issuedAt) +
           " saw v" + std::to_string(r.version) + " < committed v" +
           std::to_string(mustSee));
    }
  }

  // ---- lost writes ----
  std::map<std::pair<std::uint64_t, SimTime>, int> committed;
  for (const WriteRecord& w : log.writes) {
    ++committed[{raw(w.obj), w.issuedAt}];
  }
  for (const WriteIssueRecord& issue : log.issues) {
    auto it = committed.find({raw(issue.obj), issue.issuedAt});
    if (it != committed.end() && it->second > 0) {
      --it->second;
      continue;
    }
    // Writes issued too close to the horizon never had time to finish.
    if (addSat(issue.issuedAt, allowedDelay + options.slack) >=
        options.horizon) {
      continue;
    }
    // The crash must overlap the interval the write was plausibly in
    // flight; a crash long after the write should have committed does
    // not excuse the loss.
    if (crashExplains(issue.issuedAt,
                      addSat(issue.issuedAt, allowedDelay + options.slack))) {
      continue;
    }
    ++counts.lostWrites;
    note("lost write: obj " + std::to_string(raw(issue.obj)) + " issued " +
         formatSimTime(issue.issuedAt) + " never committed");
  }

  // ---- write-delay bound ----
  for (const WriteRecord& w : log.writes) {
    if (w.delay <= allowedDelay) continue;
    if (crashExplains(w.issuedAt, w.completedAt)) continue;
    ++counts.writeDelays;
    note("write delay: obj " + std::to_string(raw(w.obj)) + " waited " +
         formatSimTime(w.delay) + " > bound " + formatSimTime(allowedDelay));
  }

  // ---- early-recovery writes (real-only) ----
  // A rebooted server must stay write-silent for one volume-lease term +
  // epsilon measured from its restart; its process cannot have started
  // before the plan's recover instant, so any commit in the silence
  // window (minus slack for the restart latency) breaks the paper's
  // recovery rule.
  for (const auto& [crashAt, recoverAt] : crashes) {
    if (recoverAt == kNever) continue;
    const SimTime silentUntil =
        addSat(recoverAt, recoverySilence - options.slack);
    for (const WriteRecord& w : log.writes) {
      if (w.completedAt >= recoverAt && w.completedAt < silentUntil) {
        ++counts.earlyRecoveryWrites;
        note("early-recovery write: obj " + std::to_string(raw(w.obj)) +
             " committed " + formatSimTime(w.completedAt) +
             " inside silence window ending " + formatSimTime(silentUntil));
      }
    }
  }

  // ---- epoch ratchet (real-only), per volume ----
  // Each volume's successive incarnation records must strictly
  // increase. Grouping by volume (instead of flattening every record
  // into one sequence) is what makes the check correct for multi-volume
  // servers and for a volume that migrates away and returns: another
  // volume's independent counter must never mask -- or fake -- a
  // regression of this one.
  std::unordered_map<std::uint64_t, Epoch> lastEpoch;
  for (const EpochRecord& rec : log.epochs) {
    auto [it, inserted] = lastEpoch.try_emplace(raw(rec.vol), rec.epoch);
    if (!inserted) {
      if (rec.epoch <= it->second) {
        ++counts.epochRegressions;
        note("epoch regression: volume " + std::to_string(raw(rec.vol)) +
             " logged epoch " + std::to_string(rec.epoch) + " <= " +
             std::to_string(it->second));
      }
      it->second = rec.epoch;
    }
  }

  return counts;
}

}  // namespace vlease::rt
