// Per-thread protocol shards behind one I/O thread.
//
// The paper's server is a single logical node, but nothing in the
// protocol requires its volumes to share a thread: every message and
// every piece of server state is keyed by (volume, object), so the
// state partitions mechanically. ShardedNode runs that partition:
//
//             (sockets)              SPSC inbound              timers
//   I/O thread: epoll loop  ---->  shard 0 thread: protocol endpoint
//     TcpTransport             \->  shard 1 thread: protocol endpoint
//         ^                              |
//         +------ SPSC outbound  <-------+
//
//   * The I/O thread owns every socket. ShardedNode is the MessageSink
//     the TcpTransport delivers to; deliver() routes each message to
//     shardOf(msg) through that shard's single-producer/single-consumer
//     inbound queue (lock-free; the I/O thread is the only producer).
//   * Each shard thread runs its own RealTimeDriver -- real timers for
//     lease expiry and ack timeouts -- and drains its inbound queue in
//     a before-wait hook. The shard's protocol endpoints send through a
//     bridge net::Transport that pushes onto the shard's outbound SPSC
//     queue; the I/O thread drains those in ITS before-wait hook and
//     hands the messages to the real transport on the loop thread, so
//     shard replies ride the writev-coalesced send path.
//   * Wakeups are batched: the I/O thread wakes a shard's eventfd once
//     per loop iteration if it queued anything (not per message), and a
//     shard wakes the I/O loop once per iteration likewise.
//   * Back-pressure is loss, counted: a full queue drops the message
//     (inboundDropped / outboundDropped), exactly like the best-effort
//     transport underneath -- the protocols already tolerate it.
//   * Each shard accumulates into its own stats::Metrics with no
//     synchronization; mergeMetricsInto() folds them into the run-wide
//     view after stop().
//   * Injected clock skew propagates: every I/O iteration mirrors the
//     I/O driver's clock offset into the shard drivers (atomic), so a
//     FaultPlan kSkew window skews the whole node coherently.
//
// The shard application (protocol endpoints, logs, schedules) is built
// by a factory ON the shard thread and destroyed there too, so all
// protocol state stays thread-affine; the rt layer never learns what a
// lease is.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "rt/real_time.h"
#include "stats/metrics.h"
#include "util/spsc_queue.h"

namespace vlease::rt {

/// What a shard hosts: the factory returns one of these, built on the
/// shard thread. sink() receives the shard's routed inbound messages.
class ShardApp {
 public:
  virtual ~ShardApp() = default;
  virtual net::MessageSink& sink() = 0;
};

class ShardedNode final : public net::MessageSink {
 public:
  struct Options {
    /// Per-shard queue bounds (rounded up to powers of two).
    std::size_t inboundCapacity = 8192;
    std::size_t outboundCapacity = 8192;
    /// Readiness backend for the shard drivers.
    EventLoop::Backend backend = EventLoop::defaultBackend();
    /// Shared steady-clock zero instant for the shard drivers (worker
    /// processes align all timelines); -1 = anchor at construction.
    std::int64_t alignT0Micros = -1;
  };

  /// Everything a factory needs to build a shard's endpoints.
  struct ShardContext {
    RealTimeDriver& driver;        // shard-local timers + scheduler
    net::Transport& transport;     // bridge: sends leave via the I/O thread
    stats::Metrics& metrics;       // shard-local, merged on report
    std::size_t index = 0;
    std::size_t numShards = 1;
  };

  using ShardOf = std::function<std::size_t(const net::Message&)>;
  using AppFactory = std::function<std::unique_ptr<ShardApp>(ShardContext&)>;

  /// `io` is the I/O thread's driver (the one the `egress` transport is
  /// registered on). `shardOf` maps a message to a shard index (modulo
  /// is applied defensively); it runs on the I/O thread and must be
  /// cheap -- the canonical map is "volume id mod numShards".
  ShardedNode(RealTimeDriver& io, net::Transport& egress,
              std::size_t numShards, ShardOf shardOf);
  ShardedNode(RealTimeDriver& io, net::Transport& egress,
              std::size_t numShards, ShardOf shardOf, const Options& options);
  ~ShardedNode() override;

  ShardedNode(const ShardedNode&) = delete;
  ShardedNode& operator=(const ShardedNode&) = delete;

  /// Spawn the shard threads; `factory` runs on each shard thread.
  void start(AppFactory factory);
  /// Stop the shard loops and join the threads (apps are destroyed on
  /// their own threads). Idempotent. Call after the I/O loop is done.
  void stop();

  /// net::MessageSink -- attach this as the hosted node's sink on the
  /// I/O transport. I/O loop thread only.
  void deliver(const net::Message& msg) override;

  std::size_t numShards() const { return shards_.size(); }
  /// Fold every shard's metrics into `out`. Call after stop().
  void mergeMetricsInto(stats::Metrics& out) const;
  /// Messages lost to a full inbound / outbound queue.
  std::int64_t inboundDropped() const { return inboundDropped_; }
  std::int64_t outboundDropped() const;

 private:
  struct Shard;

  /// Bridge transport handed to shard endpoints: local sinks deliver
  /// through the shard scheduler (same asynchrony as TcpTransport's
  /// local lane); everything else queues for the I/O thread.
  class BridgeTransport final : public net::Transport {
   public:
    explicit BridgeTransport(Shard& shard) : shard_(shard) {}
    void attach(NodeId node, net::MessageSink* sink) override;
    void detach(NodeId node) override;
    void send(net::Message msg) override;

   private:
    Shard& shard_;
    std::unordered_map<NodeId, net::MessageSink*> sinks_;
  };

  struct Shard {
    Shard(ShardedNode& owner, std::size_t index, const Options& options);

    ShardedNode& owner;
    std::size_t index;
    RealTimeDriver driver;
    stats::Metrics metrics;
    SpscQueue<net::Message> inbound;
    SpscQueue<net::Message> outbound;
    BridgeTransport bridge;
    std::unique_ptr<ShardApp> app;  // shard-thread lifetime
    std::thread thread;
    // Shard thread only: outbound pushes since the last I/O wake.
    bool outboundSinceWake = false;
    // I/O thread only: inbound pushes since the last shard wake.
    bool wakePending = false;
    // Shard thread writes, read after join().
    std::int64_t outboundDropped = 0;
  };

  void shardMain(Shard& shard, AppFactory& factory);
  /// I/O-side before-wait hook: mirror clock offset, drain outbound
  /// queues into the egress transport, flush pending shard wakes.
  void ioHook();

  RealTimeDriver& io_;
  net::Transport& egress_;
  ShardOf shardOf_;
  std::vector<std::unique_ptr<Shard>> shards_;
  bool started_ = false;
  bool stopped_ = false;
  std::int64_t inboundDropped_ = 0;  // I/O thread only
};

}  // namespace vlease::rt
