#include "rt/fault_injector.h"

#include <algorithm>

namespace vlease::rt {

namespace {

using net::FaultEvent;

bool isCrashLane(FaultEvent::Kind kind) {
  return kind == FaultEvent::Kind::kCrash ||
         kind == FaultEvent::Kind::kRecover;
}

}  // namespace

// ---------------------------------------------------------------------
// FaultInjector (parent side)
// ---------------------------------------------------------------------

FaultInjector::FaultInjector(const net::FaultPlan& plan, Callbacks callbacks)
    : callbacks_(std::move(callbacks)) {
  for (const FaultEvent& e : plan.events()) {
    if (isCrashLane(e.kind)) events_.push_back(e);
  }
}

void FaultInjector::advance(SimTime now) {
  while (next_ < events_.size() && events_[next_].at <= now) {
    const FaultEvent& e = events_[next_];
    if (e.kind == FaultEvent::Kind::kCrash) {
      if (callbacks_.kill) callbacks_.kill(e.a, e.at);
    } else {
      if (callbacks_.respawn) callbacks_.respawn(e.a, e.at);
    }
    ++next_;
  }
}

// ---------------------------------------------------------------------
// FaultShim (child side)
// ---------------------------------------------------------------------

FaultShim::FaultShim(const net::FaultPlan& plan, NodeId self,
                     RealTimeDriver* driver, std::uint64_t seed)
    : self_(self), driver_(driver), rng_(seed) {
  for (const FaultEvent& e : plan.events()) {
    if (!isCrashLane(e.kind)) events_.push_back(e);
  }
}

bool FaultShim::isIsolated(NodeId node) const {
  const std::uint32_t i = raw(node);
  return i < isolated_.size() && isolated_[i] != 0;
}

bool FaultShim::isPartitioned(NodeId a, NodeId b) const {
  for (const auto& [x, y] : cutLinks_) {
    if ((x == a && y == b) || (x == b && y == a)) return true;
  }
  return false;
}

void FaultShim::applyClock(SimTime rawNow) {
  if (driver_ == nullptr) return;
  const double drifted = driftPpm_ *
                         static_cast<double>(rawNow - driftAnchor_) / 1e6;
  driver_->setClockOffset(skewOffset_ +
                          static_cast<SimDuration>(drifted));
}

void FaultShim::advance(SimTime rawNow) {
  bool clockDirty = driftPpm_ != 0.0;  // drift accrues continuously
  while (next_ < events_.size() && events_[next_].at <= rawNow) {
    const FaultEvent& e = events_[next_];
    ++next_;
    switch (e.kind) {
      case FaultEvent::Kind::kIsolate:
      case FaultEvent::Kind::kDeisolate: {
        const std::uint32_t i = raw(e.a);
        if (i >= isolated_.size()) isolated_.resize(i + 1, 0);
        isolated_[i] = e.kind == FaultEvent::Kind::kIsolate ? 1 : 0;
        break;
      }
      case FaultEvent::Kind::kPartition:
        cutLinks_.emplace_back(e.a, e.b);
        break;
      case FaultEvent::Kind::kHeal: {
        auto it = std::find_if(cutLinks_.begin(), cutLinks_.end(),
                               [&](const auto& link) {
                                 return (link.first == e.a &&
                                         link.second == e.b) ||
                                        (link.first == e.b &&
                                         link.second == e.a);
                               });
        if (it != cutLinks_.end()) cutLinks_.erase(it);
        break;
      }
      case FaultEvent::Kind::kSetLoss:
        lossProb_ = e.lossProb;
        break;
      case FaultEvent::Kind::kSkew:
        if (e.a == self_) {
          // A step sets the TOTAL skew; fold accrued drift into the
          // anchor so the drift lane keeps accruing from here.
          skewOffset_ = e.offset;
          driftAnchor_ = e.at;
          clockDirty = true;
        }
        break;
      case FaultEvent::Kind::kDrift:
        if (e.a == self_) {
          driftPpm_ = e.ppm;
          driftAnchor_ = e.at;
          clockDirty = true;
        }
        break;
      case FaultEvent::Kind::kCrash:
      case FaultEvent::Kind::kRecover:
        break;  // parent lane; filtered out in the constructor
    }
  }
  if (clockDirty) applyClock(rawNow);
}

SendFault FaultShim::onSend(NodeId from, NodeId to, std::size_t frameBytes) {
  SendFault fault;
  if (isIsolated(from) || isIsolated(to) || isPartitioned(from, to)) {
    fault.kind = SendFault::Kind::kDrop;
    return fault;
  }
  if (lossProb_ > 0.0 && rng_.nextDouble() < lossProb_) {
    // A lost frame usually just vanishes; some of the time it dies
    // mid-flight instead, exercising the receiver's partial-frame
    // rejection and the CRC seal at every byte offset.
    if (rng_.nextDouble() < 0.3 && frameBytes > 0) {
      fault.kind = SendFault::Kind::kTruncate;
      fault.truncateAt =
          static_cast<std::size_t>(rng_.nextBelow(frameBytes));
      fault.halfClose = rng_.nextBool(0.5);
    } else {
      fault.kind = SendFault::Kind::kDrop;
    }
  }
  return fault;
}

bool FaultShim::dropInbound(NodeId from, NodeId to) {
  // Reachability windows apply to frames already in flight when the
  // window opened; probabilistic loss is charged once, at the sender.
  return isIsolated(from) || isIsolated(to) || isPartitioned(from, to);
}

}  // namespace vlease::rt
