#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>

#include "net/wire.h"
#include "util/check.h"
#include "util/log.h"

namespace vlease::rt {

namespace {

/// Per-recv() chunk; large enough that one drain pass under load moves
/// dozens of frames per syscall.
constexpr std::size_t kReadChunk = 64 * 1024;
/// Parsed-prefix bytes worth an erase-from-front compaction.
constexpr std::size_t kCompactThreshold = 64 * 1024;
/// Frames gathered per writev (IOV_MAX is >= 1024 everywhere; 64 keeps
/// the stack frame small and one syscall already amortizes fine).
constexpr int kMaxIov = 64;

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void setNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::vector<std::uint8_t> frameOf(const net::Message& msg) {
  std::vector<std::uint8_t> payload = net::encodeMessage(msg);
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back((len >> (8 * i)) & 0xff);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

TcpTransport::TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
                           std::uint16_t port)
    : TcpTransport(driver, metrics, port, Options{}) {}

TcpTransport::TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
                           std::uint16_t port, const Options& options)
    : driver_(driver),
      metrics_(metrics),
      options_(options),
      jitterState_(options.jitterSeed | 1) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  VL_CHECK_MSG(listenFd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  VL_CHECK_MSG(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind() failed");
  // Full backlog: a flash crowd's connect storm queues instead of
  // eating RSTs (refusals that do happen are counted and healed by the
  // sender's bounded retry).
  VL_CHECK_MSG(::listen(listenFd_, SOMAXCONN) == 0, "listen() failed");
  setNonBlocking(listenFd_);

  socklen_t len = sizeof(addr);
  VL_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                         &len) == 0);
  listenPort_ = ntohs(addr.sin_port);

  driver_.watchFd(listenFd_, [this]() { acceptReady(); });
  driver_.addBeforeWaitHook([this]() { flushDirty(); });
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, conn] : connections_) {
    driver_.unwatchFd(fd);
    ::close(fd);
  }
  for (auto& [node, peer] : peers_) {
    if (peer.fd >= 0 && connections_.count(peer.fd) == 0) ::close(peer.fd);
  }
  if (listenFd_ >= 0) {
    driver_.unwatchFd(listenFd_);
    ::close(listenFd_);
  }
}

void TcpTransport::addPeer(NodeId node, const std::string& host,
                           std::uint16_t port) {
  peers_[node] = Peer{host, port, -1, false};
}

void TcpTransport::attach(NodeId node, net::MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  sinks_[node] = sink;
}

void TcpTransport::detach(NodeId node) { sinks_.erase(node); }

void TcpTransport::acceptReady() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN etc.: drained (listen fd is nonblocking)
    setNoDelay(fd);
    setNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    connections_.emplace(fd, std::move(conn));
    driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  }
}

void TcpTransport::closeConnection(int fd) {
  auto it = connections_.find(fd);
  if (it != connections_.end()) {
    Connection& conn = it->second;
    // Frames still queued die with the connection (read-path EOF races
    // the flush); account them so every admitted frame ends up in
    // framesSent or sendFailures.
    if (conn.pendingHead > 0) {
      ++partialFrameAborts_;
      metrics_.onTransportFrameAbort();
    }
    sendFailures_ += static_cast<std::int64_t>(conn.pending.size());
    connections_.erase(it);
  }
  driver_.unwatchFd(fd);
  for (auto& [node, peer] : peers_) {
    if (peer.fd == fd) peer.fd = -1;
  }
  ::close(fd);
}

std::deque<std::vector<std::uint8_t>> TcpTransport::abortConnection(int fd) {
  std::deque<std::vector<std::uint8_t>> salvaged;
  auto it = connections_.find(fd);
  if (it != connections_.end()) {
    Connection& conn = it->second;
    if (conn.pendingHead > 0) {
      ++partialFrameAborts_;
      metrics_.onTransportFrameAbort();
    }
    salvaged = std::move(conn.pending);
    conn.pending.clear();
    conn.pendingHead = 0;
    conn.pendingBytes = 0;
  }
  closeConnection(fd);
  return salvaged;
}

void TcpTransport::readReady(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  // Drain until EAGAIN (level-triggered backends report again if the
  // peer keeps writing; a short read means the socket is empty now).
  bool dead = false;
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
    if (n > 0) {
      conn.buffer.insert(conn.buffer.end(), chunk, chunk + n);
      if (static_cast<std::size_t>(n) == sizeof(chunk)) continue;
      break;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    dead = true;  // EOF or hard error
    break;
  }

  // Peel every complete frame into a batch. Delivery is deferred until
  // the connection bookkeeping is done: a delivered handler may re-enter
  // the transport (send, injected truncation) and tear this very
  // connection down, so nothing below the batch loop may touch `conn`.
  std::vector<net::Message> batch;
  std::size_t offset = conn.head;
  bool corrupt = false;
  while (conn.buffer.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(conn.buffer[offset + i]) << (8 * i);
    }
    if (len > (1u << 24)) {  // corrupt length: drop the connection
      corrupt = true;
      break;
    }
    if (conn.buffer.size() - offset - 4 < len) break;  // incomplete
    auto msg = net::decodeMessage(conn.buffer.data() + offset + 4, len);
    offset += 4 + len;
    if (!msg.has_value()) {
      ++framesRejected_;
      metrics_.onTransportFrameRejected();
      VL_LOG_WARN << "tcp: undecodable frame dropped";
      continue;
    }
    batch.push_back(std::move(*msg));
  }

  if (corrupt || dead) {
    // Unconsumed bytes are a frame that can now never complete -- the
    // sender aborted mid-write (or was killed), or the length prefix is
    // garbage: reject the prefix so the loss is visible.
    if (conn.buffer.size() - offset > 0) {
      ++framesRejected_;
      metrics_.onTransportFrameRejected();
      if (dead) {
        VL_LOG_WARN << "tcp: connection died mid-frame, "
                    << (conn.buffer.size() - offset)
                    << " byte prefix rejected";
      }
    }
    closeConnection(fd);
  } else if (offset == conn.buffer.size()) {
    conn.buffer.clear();
    conn.head = 0;
  } else if (offset >= kCompactThreshold) {
    conn.buffer.erase(
        conn.buffer.begin(),
        conn.buffer.begin() + static_cast<std::ptrdiff_t>(offset));
    conn.head = 0;
  } else {
    conn.head = offset;
  }

  for (net::Message& msg : batch) {
    if (faultHook_ != nullptr && faultHook_->dropInbound(msg.from, msg.to)) {
      ++injectedDrops_;
      continue;
    }
    ++framesReceived_;
    deliverLocal(msg);
  }
}

void TcpTransport::deliverLocal(const net::Message& msg) {
  auto it = sinks_.find(msg.to);
  if (it == sinks_.end()) {
    VL_LOG_WARN << "tcp: frame for unknown node " << raw(msg.to);
    return;
  }
  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  it->second->deliver(msg);
}

int TcpTransport::connectPeer(NodeId node, Peer& peer) {
  if (peer.fd >= 0) return peer.fd;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // Nonblocking connect with a bounded deadline: a blocked-off or
  // blackholed peer must not stall the event loop for the kernel's
  // default SYN-retry minutes.
  setNonBlocking(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, options_.connectTimeoutMs) <= 0) {
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 ||
        soerr != 0) {
      if (soerr == ECONNREFUSED) {
        ++connectRefusals_;
        metrics_.onTransportConnectRefused();
      }
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    if (errno == ECONNREFUSED) {
      ++connectRefusals_;
      metrics_.onTransportConnectRefused();
    }
    ::close(fd);
    return -1;
  }
  setNoDelay(fd);
  if (peer.everConnected) {
    ++reconnects_;
    metrics_.onTransportReconnect();
  }
  peer.everConnected = true;
  peer.fd = fd;
  // Watch for replies arriving on the outbound connection too, and
  // install the flush continuation for EPOLLOUT re-arms.
  Connection conn;
  conn.fd = fd;
  conn.outbound = true;
  conn.peerNode = node;
  connections_.emplace(fd, std::move(conn));
  driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  driver_.setWriteHandler(fd, [this, fd]() { onWritable(fd); });
  return fd;
}

void TcpTransport::armWrite(Connection& conn, bool enabled) {
  if (conn.writeArmed == enabled) return;
  conn.writeArmed = enabled;
  driver_.setWriteInterest(conn.fd, enabled);
}

void TcpTransport::markDirty(Connection& conn) {
  if (conn.dirty) return;
  conn.dirty = true;
  dirty_.push_back(conn.fd);
}

TcpTransport::FlushResult TcpTransport::flushOnce(Connection& conn) {
  while (!conn.pending.empty()) {
    iovec iov[kMaxIov];
    int iovCount = 0;
    std::size_t head = conn.pendingHead;
    for (const auto& f : conn.pending) {
      if (iovCount == kMaxIov) break;
      iov[iovCount].iov_base = const_cast<std::uint8_t*>(f.data() + head);
      iov[iovCount].iov_len = f.size() - head;
      head = 0;
      ++iovCount;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = static_cast<std::size_t>(iovCount);
    ssize_t n = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return FlushResult::kBlocked;
      return FlushResult::kDead;
    }
    std::size_t left = static_cast<std::size_t>(n);
    while (left > 0) {
      std::vector<std::uint8_t>& front = conn.pending.front();
      const std::size_t avail = front.size() - conn.pendingHead;
      if (left >= avail) {
        left -= avail;
        conn.pendingBytes -= front.size();
        conn.pendingHead = 0;
        conn.pending.pop_front();
        ++framesSent_;
      } else {
        conn.pendingHead += left;
        left = 0;
      }
    }
  }
  return FlushResult::kDrained;
}

bool TcpTransport::syncDrain(Connection& conn) {
  for (;;) {
    const FlushResult r = flushOnce(conn);
    if (r == FlushResult::kDrained) {
      armWrite(conn, false);
      return true;
    }
    if (r == FlushResult::kDead) return false;
    // Nonblocking socket with a full buffer: wait for space, bounded.
    // Frames are small (tens of bytes to a few KB) and peers drain
    // continuously, so the configured stall timeout covers any
    // scheduling hiccup on a loaded host without letting a truly
    // wedged peer block the sender forever; on timeout the frame is
    // dropped (Transport is best-effort).
    pollfd p{conn.fd, POLLOUT, 0};
    if (::poll(&p, 1, options_.writeStallTimeoutMs) <= 0) return false;
  }
}

void TcpTransport::flushAsync(Connection& conn) {
  const FlushResult r = flushOnce(conn);
  if (r == FlushResult::kDrained) {
    armWrite(conn, false);
    return;
  }
  if (r == FlushResult::kBlocked) {
    armWrite(conn, true);  // EPOLLOUT re-arm: the remainder flushes when
    return;                // the socket drains
  }
  // The peer vanished with frames queued: salvage whole frames and
  // retry them once on a fresh connection (mirrors the off-loop path's
  // reconnect-and-resend).
  const int fd = conn.fd;
  const NodeId node = conn.peerNode;
  retryFrames(node, abortConnection(fd));
}

void TcpTransport::flushDirty() {
  if (dirty_.empty()) return;
  std::vector<int> batch;
  batch.swap(dirty_);  // flushing may re-dirty (retry path re-queues)
  for (const int fd : batch) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) continue;
    it->second.dirty = false;
    if (it->second.pending.empty() || it->second.writeArmed) continue;
    flushAsync(it->second);
  }
}

void TcpTransport::onWritable(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  flushAsync(it->second);
}

void TcpTransport::retryFrames(NodeId node,
                               std::deque<std::vector<std::uint8_t>> frames) {
  auto peerIt = peers_.find(node);
  if (frames.empty()) return;
  if (peerIt == peers_.end()) {
    sendFailures_ += static_cast<std::int64_t>(frames.size());
    return;
  }
  Peer& peer = peerIt->second;
  for (int attempt = 1; attempt <= options_.maxRetries; ++attempt) {
    ++sendRetries_;
    metrics_.onTransportRetry();
    backoffSleep(attempt);
    const int fd = connectPeer(node, peer);
    if (fd < 0) continue;
    Connection& conn = connections_.at(fd);
    for (auto& f : frames) {
      conn.pendingBytes += f.size();
      conn.pending.push_back(std::move(f));
    }
    frames.clear();
    const FlushResult r = flushOnce(conn);
    if (r == FlushResult::kDrained) {
      armWrite(conn, false);
      return;
    }
    if (r == FlushResult::kBlocked) {
      armWrite(conn, true);  // queued on a live connection: in flight
      return;
    }
    frames = abortConnection(fd);  // died again; next attempt
  }
  sendFailures_ += static_cast<std::int64_t>(frames.size());
}

bool TcpTransport::trySendFrame(NodeId node, Peer& peer,
                                const std::vector<std::uint8_t>& frame,
                                bool async) {
  const int fd = connectPeer(node, peer);
  if (fd < 0) return false;
  Connection& conn = connections_.at(fd);
  if (async && !conn.pending.empty() &&
      conn.pendingBytes + frame.size() > options_.maxPendingWriteBytes) {
    // Back-pressure wedge: the peer stopped draining and the queue hit
    // its bound. Abort the connection (prefix dies with it), charge the
    // backlog as failures, and let the caller's bounded retry reconnect
    // fresh with just the new frame.
    auto dropped = abortConnection(fd);
    sendFailures_ += static_cast<std::int64_t>(dropped.size());
    return false;
  }
  conn.pendingBytes += frame.size();
  conn.pending.push_back(frame);  // copy: the caller retries from `frame`
  if (async) {
    // Coalesce: the frame leaves in the driver's next before-wait flush
    // (same loop iteration), gathered with everything else this
    // dispatch batch queued. If EPOLLOUT is armed the socket is full;
    // the flush continuation picks the frame up instead.
    if (!conn.writeArmed) markDirty(conn);
    return true;
  }
  if (syncDrain(conn)) return true;
  // Stall or death mid-drain. Close before retrying (exactly-once: the
  // written prefix can never complete on the peer); older frames that
  // were still queued are charged as failures, the caller retries THIS
  // frame whole on a fresh connection.
  auto salvaged = abortConnection(fd);
  if (!salvaged.empty()) salvaged.pop_back();  // the caller's copy retries
  sendFailures_ += static_cast<std::int64_t>(salvaged.size());
  return false;
}

bool TcpTransport::writeBytes(int fd, const std::uint8_t* data,
                              std::size_t size, std::size_t* writtenOut) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, options_.writeStallTimeoutMs) > 0) continue;
      if (writtenOut != nullptr) *writtenOut = written;
      return false;
    }
    if (n <= 0) {
      if (writtenOut != nullptr) *writtenOut = written;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (writtenOut != nullptr) *writtenOut = written;
  return true;
}

void TcpTransport::backoffSleep(int attempt) {
  std::int64_t delayMs = options_.retryBackoffBaseMs;
  for (int i = 1; i < attempt && delayMs < options_.retryBackoffCapMs; ++i) {
    delayMs *= 2;
  }
  delayMs = std::min<std::int64_t>(delayMs, options_.retryBackoffCapMs);
  // xorshift jitter in [0.5, 1.5): decorrelates retry storms when many
  // senders lose the same peer at once.
  jitterState_ ^= jitterState_ << 13;
  jitterState_ ^= jitterState_ >> 7;
  jitterState_ ^= jitterState_ << 17;
  const double jitter =
      0.5 + static_cast<double>(jitterState_ >> 11) /
                static_cast<double>(1ull << 53);
  delayMs = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(delayMs) * jitter));
  // Absolute-deadline sleep: an injected signal gets EINTR and re-enters
  // for the remainder instead of silently shortening the backoff (the
  // old ::poll(nullptr, 0, ms) idiom returned early on any signal).
  timespec deadline;
  ::clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += delayMs / 1000;
  deadline.tv_nsec += (delayMs % 1000) * 1000000L;
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_nsec -= 1000000000L;
    ++deadline.tv_sec;
  }
  while (::clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline,
                           nullptr) == EINTR) {
  }
}

void TcpTransport::injectTruncation(NodeId node, Peer& peer,
                                    const std::vector<std::uint8_t>& frame,
                                    const SendFault& fault) {
  const int fd = connectPeer(node, peer);
  if (fd < 0) return;  // peer unreachable anyway; the frame is lost
  Connection& conn = connections_.at(fd);
  // Drain the coalesced backlog first so the injected prefix lands at a
  // frame boundary; if the backlog will not drain the connection dies
  // here, which is a blunter version of the same injected fault.
  if (!conn.pending.empty() && !syncDrain(conn)) {
    auto dropped = abortConnection(fd);
    sendFailures_ += static_cast<std::int64_t>(dropped.size());
    return;
  }
  const std::size_t prefix = std::min(fault.truncateAt, frame.size());
  std::size_t written = 0;
  writeBytes(fd, frame.data(), prefix, &written);
  if (written > 0 && written < frame.size()) {
    ++partialFrameAborts_;
    metrics_.onTransportFrameAbort();
  }
  if (fault.halfClose) ::shutdown(fd, SHUT_WR);
  closeConnection(fd);
}

void TcpTransport::send(net::Message msg) {
  // Local recipient: bypass the socket but keep asynchrony (scheduler
  // hop) so delivery order matches the simulator's semantics. Exact
  // lane on purpose: this hop IS message ordering.
  if (sinks_.count(msg.to) > 0) {
    driver_.scheduler().scheduleAfter(0, [this, m = std::move(msg)]() {
      deliverLocal(m);
    });
    return;
  }
  auto peerIt = peers_.find(msg.to);
  if (peerIt == peers_.end()) {
    ++sendFailures_;
    VL_LOG_WARN << "tcp: no route to node " << raw(msg.to);
    return;
  }
  const std::vector<std::uint8_t> frame = frameOf(msg);

  if (faultHook_ != nullptr) {
    const SendFault fault = faultHook_->onSend(msg.from, msg.to, frame.size());
    if (fault.kind == SendFault::Kind::kDrop) {
      ++injectedDrops_;
      metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                         net::wireBytes(msg.payload), driver_.elapsed(),
                         /*delivered=*/false);
      return;
    }
    if (fault.kind == SendFault::Kind::kTruncate) {
      ++injectedTruncations_;
      metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                         net::wireBytes(msg.payload), driver_.elapsed(),
                         /*delivered=*/false);
      // Injected mid-write death. No retry: the injected fault IS the
      // loss, and the protocols must recover from it.
      injectTruncation(msg.to, peerIt->second, frame, fault);
      return;
    }
  }

  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  // Loop-thread sends coalesce (queue now, writev at the flush hook);
  // off-loop sends keep the historical inline blocking semantics.
  const bool async = driver_.onLoopThread();
  bool sent = trySendFrame(msg.to, peerIt->second, frame, async);
  // Reconnect-and-resend under capped jittered exponential backoff. The
  // common transient failures -- a restarted peer answering a stale fd
  // with RST, or a connect racing the peer's listen() -- heal on
  // reconnect; anything still failing after maxRetries attempts is
  // treated as loss (Transport is best-effort and the protocols
  // tolerate drops).
  for (int attempt = 1; !sent && attempt <= options_.maxRetries; ++attempt) {
    ++sendRetries_;
    metrics_.onTransportRetry();
    backoffSleep(attempt);
    sent = trySendFrame(msg.to, peerIt->second, frame, async);
  }
  if (!sent) ++sendFailures_;
}

}  // namespace vlease::rt
