#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/wire.h"
#include "util/check.h"
#include "util/log.h"

namespace vlease::rt {

namespace {

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void setNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::vector<std::uint8_t> frameOf(const net::Message& msg) {
  std::vector<std::uint8_t> payload = net::encodeMessage(msg);
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back((len >> (8 * i)) & 0xff);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

TcpTransport::TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
                           std::uint16_t port)
    : driver_(driver), metrics_(metrics) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  VL_CHECK_MSG(listenFd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  VL_CHECK_MSG(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind() failed");
  VL_CHECK_MSG(::listen(listenFd_, 16) == 0, "listen() failed");
  setNonBlocking(listenFd_);

  socklen_t len = sizeof(addr);
  VL_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                         &len) == 0);
  listenPort_ = ntohs(addr.sin_port);

  driver_.watchFd(listenFd_, [this]() { acceptReady(); });
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, conn] : connections_) {
    driver_.unwatchFd(fd);
    ::close(fd);
  }
  for (auto& [node, peer] : peers_) {
    if (peer.fd >= 0 && connections_.count(peer.fd) == 0) ::close(peer.fd);
  }
  if (listenFd_ >= 0) {
    driver_.unwatchFd(listenFd_);
    ::close(listenFd_);
  }
}

void TcpTransport::addPeer(NodeId node, const std::string& host,
                           std::uint16_t port) {
  peers_[node] = Peer{host, port, -1};
}

void TcpTransport::attach(NodeId node, net::MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  sinks_[node] = sink;
}

void TcpTransport::detach(NodeId node) { sinks_.erase(node); }

void TcpTransport::acceptReady() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN etc.: drained (listen fd is nonblocking)
    setNoDelay(fd);
    setNonBlocking(fd);
    connections_.emplace(fd, Connection{fd, {}});
    driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  }
}

void TcpTransport::closeConnection(int fd) {
  driver_.unwatchFd(fd);
  connections_.erase(fd);
  for (auto& [node, peer] : peers_) {
    if (peer.fd == fd) peer.fd = -1;
  }
  ::close(fd);
}

void TcpTransport::readReady(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  std::uint8_t chunk[4096];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
    closeConnection(fd);
    return;
  }
  if (n < 0) return;
  conn.buffer.insert(conn.buffer.end(), chunk, chunk + n);

  // Peel complete frames off the front.
  std::size_t offset = 0;
  while (conn.buffer.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(conn.buffer[offset + i]) << (8 * i);
    }
    if (len > (1u << 24)) {  // corrupt length: drop the connection
      ++framesRejected_;
      closeConnection(fd);
      return;
    }
    if (conn.buffer.size() - offset - 4 < len) break;  // incomplete
    auto msg = net::decodeMessage(conn.buffer.data() + offset + 4, len);
    offset += 4 + len;
    if (!msg.has_value()) {
      ++framesRejected_;
      VL_LOG_WARN << "tcp: undecodable frame dropped";
      continue;
    }
    ++framesReceived_;
    deliverLocal(*msg);
  }
  conn.buffer.erase(conn.buffer.begin(),
                    conn.buffer.begin() + static_cast<std::ptrdiff_t>(offset));
}

void TcpTransport::deliverLocal(const net::Message& msg) {
  auto it = sinks_.find(msg.to);
  if (it == sinks_.end()) {
    VL_LOG_WARN << "tcp: frame for unknown node " << raw(msg.to);
    return;
  }
  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  it->second->deliver(msg);
}

int TcpTransport::connectPeer(Peer& peer) {
  if (peer.fd >= 0) return peer.fd;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  setNoDelay(fd);
  setNonBlocking(fd);  // connect() completed while still blocking
  peer.fd = fd;
  // Watch for replies arriving on the outbound connection too.
  connections_.emplace(fd, Connection{fd, {}});
  driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  return fd;
}

bool TcpTransport::writeFrame(int fd, const std::vector<std::uint8_t>& frame) {
  std::size_t written = 0;
  // On ANY failure return path the caller closes the connection, which
  // is what makes a retry safe: bytes already written (written > 0 --
  // counted as a partial-frame abort) form a strict prefix of the frame
  // on a connection the peer will tear down, so they can never combine
  // with the retried copy into a duplicate delivery.
  while (written < frame.size()) {
    ssize_t n = ::send(fd, frame.data() + written, frame.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking socket with a full buffer: wait for space, bounded.
      // Frames are small (tens of bytes to a few KB) and peers drain
      // continuously, so a second covers any scheduling hiccup on a
      // loaded host without letting a truly wedged peer block the
      // sender forever; on timeout the frame is dropped (Transport is
      // best-effort).
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, /*timeout_ms=*/1000) > 0) continue;
      if (written > 0) ++partialFrameAborts_;
      return false;
    }
    if (n <= 0) {
      if (written > 0) ++partialFrameAborts_;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

bool TcpTransport::trySendFrame(Peer& peer,
                                const std::vector<std::uint8_t>& frame) {
  int fd = connectPeer(peer);
  if (fd < 0) return false;
  if (!writeFrame(fd, frame)) {
    closeConnection(fd);  // forget the dead fd; a retry reconnects fresh
    return false;
  }
  return true;
}

void TcpTransport::send(net::Message msg) {
  // Local recipient: bypass the socket but keep asynchrony (scheduler
  // hop) so delivery order matches the simulator's semantics. Exact
  // lane on purpose: this hop IS message ordering.
  if (sinks_.count(msg.to) > 0) {
    driver_.scheduler().scheduleAfter(0, [this, m = std::move(msg)]() {
      deliverLocal(m);
    });
    return;
  }
  auto peerIt = peers_.find(msg.to);
  if (peerIt == peers_.end()) {
    ++sendFailures_;
    VL_LOG_WARN << "tcp: no route to node " << raw(msg.to);
    return;
  }
  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  const std::vector<std::uint8_t> frame = frameOf(msg);
  bool sent = trySendFrame(peerIt->second, frame);
  if (!sent) {
    // Retry once on a fresh connection after a short backoff. The
    // common transient failures -- a restarted peer answering a stale
    // fd with RST, or a connect racing the peer's listen() -- heal on
    // reconnect; anything still failing after that is treated as loss
    // (Transport is best-effort and the protocols tolerate drops).
    ++sendRetries_;
    ::poll(nullptr, 0, /*timeout_ms=*/2);
    sent = trySendFrame(peerIt->second, frame);
  }
  if (!sent) {
    ++sendFailures_;
    return;
  }
  ++framesSent_;
}

}  // namespace vlease::rt
