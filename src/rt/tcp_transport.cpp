#include "rt/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/wire.h"
#include "util/check.h"
#include "util/log.h"

namespace vlease::rt {

namespace {

void setNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void setNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::vector<std::uint8_t> frameOf(const net::Message& msg) {
  std::vector<std::uint8_t> payload = net::encodeMessage(msg);
  std::vector<std::uint8_t> frame;
  frame.reserve(4 + payload.size());
  auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back((len >> (8 * i)) & 0xff);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

}  // namespace

TcpTransport::TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
                           std::uint16_t port)
    : TcpTransport(driver, metrics, port, Options{}) {}

TcpTransport::TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
                           std::uint16_t port, const Options& options)
    : driver_(driver),
      metrics_(metrics),
      options_(options),
      jitterState_(options.jitterSeed | 1) {
  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  VL_CHECK_MSG(listenFd_ >= 0, "socket() failed");
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  VL_CHECK_MSG(::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0,
               "bind() failed");
  VL_CHECK_MSG(::listen(listenFd_, 16) == 0, "listen() failed");
  setNonBlocking(listenFd_);

  socklen_t len = sizeof(addr);
  VL_CHECK(::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&addr),
                         &len) == 0);
  listenPort_ = ntohs(addr.sin_port);

  driver_.watchFd(listenFd_, [this]() { acceptReady(); });
}

TcpTransport::~TcpTransport() {
  for (auto& [fd, conn] : connections_) {
    driver_.unwatchFd(fd);
    ::close(fd);
  }
  for (auto& [node, peer] : peers_) {
    if (peer.fd >= 0 && connections_.count(peer.fd) == 0) ::close(peer.fd);
  }
  if (listenFd_ >= 0) {
    driver_.unwatchFd(listenFd_);
    ::close(listenFd_);
  }
}

void TcpTransport::addPeer(NodeId node, const std::string& host,
                           std::uint16_t port) {
  peers_[node] = Peer{host, port, -1, false};
}

void TcpTransport::attach(NodeId node, net::MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  sinks_[node] = sink;
}

void TcpTransport::detach(NodeId node) { sinks_.erase(node); }

void TcpTransport::acceptReady() {
  for (;;) {
    int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN etc.: drained (listen fd is nonblocking)
    setNoDelay(fd);
    setNonBlocking(fd);
    connections_.emplace(fd, Connection{fd, {}});
    driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  }
}

void TcpTransport::closeConnection(int fd) {
  driver_.unwatchFd(fd);
  connections_.erase(fd);
  for (auto& [node, peer] : peers_) {
    if (peer.fd == fd) peer.fd = -1;
  }
  ::close(fd);
}

void TcpTransport::readReady(int fd) {
  auto it = connections_.find(fd);
  if (it == connections_.end()) return;
  Connection& conn = it->second;

  std::uint8_t chunk[4096];
  ssize_t n = ::recv(fd, chunk, sizeof(chunk), MSG_DONTWAIT);
  if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
    // Connection died. A non-empty accumulator is a frame that can now
    // never complete -- the sender aborted mid-write (or was killed):
    // reject it so the loss is visible.
    if (!conn.buffer.empty()) {
      ++framesRejected_;
      metrics_.onTransportFrameRejected();
      VL_LOG_WARN << "tcp: connection died mid-frame, "
                  << conn.buffer.size() << " byte prefix rejected";
    }
    closeConnection(fd);
    return;
  }
  if (n < 0) return;
  conn.buffer.insert(conn.buffer.end(), chunk, chunk + n);

  // Peel complete frames off the front.
  std::size_t offset = 0;
  while (conn.buffer.size() - offset >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(conn.buffer[offset + i]) << (8 * i);
    }
    if (len > (1u << 24)) {  // corrupt length: drop the connection
      ++framesRejected_;
      metrics_.onTransportFrameRejected();
      closeConnection(fd);
      return;
    }
    if (conn.buffer.size() - offset - 4 < len) break;  // incomplete
    auto msg = net::decodeMessage(conn.buffer.data() + offset + 4, len);
    offset += 4 + len;
    if (!msg.has_value()) {
      ++framesRejected_;
      metrics_.onTransportFrameRejected();
      VL_LOG_WARN << "tcp: undecodable frame dropped";
      continue;
    }
    if (faultHook_ != nullptr && faultHook_->dropInbound(msg->from, msg->to)) {
      ++injectedDrops_;
      continue;
    }
    ++framesReceived_;
    deliverLocal(*msg);
  }
  conn.buffer.erase(conn.buffer.begin(),
                    conn.buffer.begin() + static_cast<std::ptrdiff_t>(offset));
}

void TcpTransport::deliverLocal(const net::Message& msg) {
  auto it = sinks_.find(msg.to);
  if (it == sinks_.end()) {
    VL_LOG_WARN << "tcp: frame for unknown node " << raw(msg.to);
    return;
  }
  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  it->second->deliver(msg);
}

int TcpTransport::connectPeer(Peer& peer) {
  if (peer.fd >= 0) return peer.fd;
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(peer.port);
  if (::inet_pton(AF_INET, peer.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  // Nonblocking connect with a bounded deadline: a blocked-off or
  // blackholed peer must not stall the event loop for the kernel's
  // default SYN-retry minutes.
  setNonBlocking(fd);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd p{fd, POLLOUT, 0};
    if (::poll(&p, 1, options_.connectTimeoutMs) <= 0) {
      ::close(fd);
      return -1;
    }
    int soerr = 0;
    socklen_t slen = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &slen) != 0 ||
        soerr != 0) {
      ::close(fd);
      return -1;
    }
  } else if (rc != 0) {
    ::close(fd);
    return -1;
  }
  setNoDelay(fd);
  if (peer.everConnected) {
    ++reconnects_;
    metrics_.onTransportReconnect();
  }
  peer.everConnected = true;
  peer.fd = fd;
  // Watch for replies arriving on the outbound connection too.
  connections_.emplace(fd, Connection{fd, {}});
  driver_.watchFd(fd, [this, fd]() { readReady(fd); });
  return fd;
}

bool TcpTransport::writeBytes(int fd, const std::uint8_t* data,
                              std::size_t size, std::size_t* writtenOut) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Nonblocking socket with a full buffer: wait for space, bounded.
      // Frames are small (tens of bytes to a few KB) and peers drain
      // continuously, so the configured stall timeout covers any
      // scheduling hiccup on a loaded host without letting a truly
      // wedged peer block the sender forever; on timeout the frame is
      // dropped (Transport is best-effort).
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, options_.writeStallTimeoutMs) > 0) continue;
      if (writtenOut != nullptr) *writtenOut = written;
      return false;
    }
    if (n <= 0) {
      if (writtenOut != nullptr) *writtenOut = written;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  if (writtenOut != nullptr) *writtenOut = written;
  return true;
}

bool TcpTransport::writeFrame(int fd, const std::vector<std::uint8_t>& frame) {
  // On ANY failure return path the caller closes the connection, which
  // is what makes a retry safe: bytes already written (written > 0 --
  // counted as a partial-frame abort) form a strict prefix of the frame
  // on a connection the peer will tear down, so they can never combine
  // with the retried copy into a duplicate delivery.
  std::size_t written = 0;
  if (!writeBytes(fd, frame.data(), frame.size(), &written)) {
    if (written > 0) {
      ++partialFrameAborts_;
      metrics_.onTransportFrameAbort();
    }
    return false;
  }
  return true;
}

bool TcpTransport::trySendFrame(Peer& peer,
                                const std::vector<std::uint8_t>& frame) {
  int fd = connectPeer(peer);
  if (fd < 0) return false;
  if (!writeFrame(fd, frame)) {
    closeConnection(fd);  // forget the dead fd; a retry reconnects fresh
    return false;
  }
  return true;
}

void TcpTransport::backoffSleep(int attempt) {
  std::int64_t delayMs = options_.retryBackoffBaseMs;
  for (int i = 1; i < attempt && delayMs < options_.retryBackoffCapMs; ++i) {
    delayMs *= 2;
  }
  delayMs = std::min<std::int64_t>(delayMs, options_.retryBackoffCapMs);
  // xorshift jitter in [0.5, 1.5): decorrelates retry storms when many
  // senders lose the same peer at once.
  jitterState_ ^= jitterState_ << 13;
  jitterState_ ^= jitterState_ >> 7;
  jitterState_ ^= jitterState_ << 17;
  const double jitter =
      0.5 + static_cast<double>(jitterState_ >> 11) /
                static_cast<double>(1ull << 53);
  delayMs = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(static_cast<double>(delayMs) * jitter));
  ::poll(nullptr, 0, static_cast<int>(delayMs));
}

void TcpTransport::injectTruncation(Peer& peer,
                                    const std::vector<std::uint8_t>& frame,
                                    const SendFault& fault) {
  int fd = connectPeer(peer);
  if (fd < 0) return;  // peer unreachable anyway; the frame is lost
  const std::size_t prefix = std::min(fault.truncateAt, frame.size());
  std::size_t written = 0;
  writeBytes(fd, frame.data(), prefix, &written);
  if (written > 0 && written < frame.size()) {
    ++partialFrameAborts_;
    metrics_.onTransportFrameAbort();
  }
  if (fault.halfClose) ::shutdown(fd, SHUT_WR);
  closeConnection(fd);
}

void TcpTransport::send(net::Message msg) {
  // Local recipient: bypass the socket but keep asynchrony (scheduler
  // hop) so delivery order matches the simulator's semantics. Exact
  // lane on purpose: this hop IS message ordering.
  if (sinks_.count(msg.to) > 0) {
    driver_.scheduler().scheduleAfter(0, [this, m = std::move(msg)]() {
      deliverLocal(m);
    });
    return;
  }
  auto peerIt = peers_.find(msg.to);
  if (peerIt == peers_.end()) {
    ++sendFailures_;
    VL_LOG_WARN << "tcp: no route to node " << raw(msg.to);
    return;
  }
  const std::vector<std::uint8_t> frame = frameOf(msg);

  if (faultHook_ != nullptr) {
    const SendFault fault = faultHook_->onSend(msg.from, msg.to, frame.size());
    if (fault.kind == SendFault::Kind::kDrop) {
      ++injectedDrops_;
      metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                         net::wireBytes(msg.payload), driver_.elapsed(),
                         /*delivered=*/false);
      return;
    }
    if (fault.kind == SendFault::Kind::kTruncate) {
      ++injectedTruncations_;
      metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                         net::wireBytes(msg.payload), driver_.elapsed(),
                         /*delivered=*/false);
      // Injected mid-write death. No retry: the injected fault IS the
      // loss, and the protocols must recover from it.
      injectTruncation(peerIt->second, frame, fault);
      return;
    }
  }

  metrics_.onMessage(msg.from, msg.to, net::payloadTypeIndex(msg.payload),
                     net::wireBytes(msg.payload), driver_.elapsed(),
                     /*delivered=*/true);
  bool sent = trySendFrame(peerIt->second, frame);
  // Reconnect-and-resend under capped jittered exponential backoff. The
  // common transient failures -- a restarted peer answering a stale fd
  // with RST, or a connect racing the peer's listen() -- heal on
  // reconnect; anything still failing after maxRetries attempts is
  // treated as loss (Transport is best-effort and the protocols
  // tolerate drops).
  for (int attempt = 1; !sent && attempt <= options_.maxRetries; ++attempt) {
    ++sendRetries_;
    metrics_.onTransportRetry();
    backoffSleep(attempt);
    sent = trySendFrame(peerIt->second, frame);
  }
  if (!sent) {
    ++sendFailures_;
    return;
  }
  ++framesSent_;
}

}  // namespace vlease::rt
