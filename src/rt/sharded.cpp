#include "rt/sharded.h"

#include "util/check.h"
#include "util/log.h"

namespace vlease::rt {

// ---------------------------------------------------------------------
// BridgeTransport
// ---------------------------------------------------------------------

void ShardedNode::BridgeTransport::attach(NodeId node,
                                          net::MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  sinks_[node] = sink;
}

void ShardedNode::BridgeTransport::detach(NodeId node) { sinks_.erase(node); }

void ShardedNode::BridgeTransport::send(net::Message msg) {
  // Local recipient on this shard: scheduler hop, matching the
  // TcpTransport local lane's asynchrony.
  auto it = sinks_.find(msg.to);
  if (it != sinks_.end()) {
    net::MessageSink* sink = it->second;
    shard_.driver.scheduler().scheduleAfter(
        0, [sink, m = std::move(msg)]() { sink->deliver(m); });
    return;
  }
  if (!shard_.outbound.tryPush(std::move(msg))) {
    // Full queue = the I/O thread is saturated. Loss, counted -- same
    // contract as the best-effort transport underneath.
    ++shard_.outboundDropped;
    return;
  }
  shard_.outboundSinceWake = true;
}

// ---------------------------------------------------------------------
// ShardedNode
// ---------------------------------------------------------------------

ShardedNode::Shard::Shard(ShardedNode& owner_, std::size_t index_,
                          const Options& options)
    : owner(owner_),
      index(index_),
      driver(options.backend),
      inbound(options.inboundCapacity),
      outbound(options.outboundCapacity),
      bridge(*this) {
  if (options.alignT0Micros >= 0) driver.alignStart(options.alignT0Micros);
}

ShardedNode::ShardedNode(RealTimeDriver& io, net::Transport& egress,
                         std::size_t numShards, ShardOf shardOf)
    : ShardedNode(io, egress, numShards, std::move(shardOf), Options{}) {}

ShardedNode::ShardedNode(RealTimeDriver& io, net::Transport& egress,
                         std::size_t numShards, ShardOf shardOf,
                         const Options& options)
    : io_(io), egress_(egress), shardOf_(std::move(shardOf)) {
  VL_CHECK(numShards >= 1);
  VL_CHECK(shardOf_ != nullptr);
  shards_.reserve(numShards);
  for (std::size_t i = 0; i < numShards; ++i) {
    shards_.push_back(std::make_unique<Shard>(*this, i, options));
  }
  io_.addBeforeWaitHook([this]() { ioHook(); });
}

ShardedNode::~ShardedNode() { stop(); }

void ShardedNode::start(AppFactory factory) {
  VL_CHECK(!started_);
  started_ = true;
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->thread = std::thread(
        [this, s, factory]() mutable { shardMain(*s, factory); });
  }
}

void ShardedNode::stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  for (auto& shard : shards_) shard->driver.stop();
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

void ShardedNode::shardMain(Shard& shard, AppFactory& factory) {
  ShardContext ctx{shard.driver, shard.bridge, shard.metrics, shard.index,
                   shards_.size()};
  shard.app = factory(ctx);
  VL_CHECK(shard.app != nullptr);
  shard.driver.addBeforeWaitHook([this, &shard]() {
    net::Message msg;
    while (shard.inbound.tryPop(msg)) {
      shard.app->sink().deliver(msg);
    }
    // One wake per iteration covers every outbound push it made.
    if (shard.outboundSinceWake) {
      shard.outboundSinceWake = false;
      io_.wake();
    }
  });
  shard.driver.run();
  // Destroy protocol state on the thread that owned it.
  shard.app.reset();
}

void ShardedNode::deliver(const net::Message& msg) {
  const std::size_t i = shardOf_(msg) % shards_.size();
  Shard& shard = *shards_[i];
  net::Message copy = msg;
  if (!shard.inbound.tryPush(std::move(copy))) {
    ++inboundDropped_;
    return;
  }
  shard.wakePending = true;
}

void ShardedNode::ioHook() {
  const SimDuration offset = io_.clockOffset();
  for (auto& shardPtr : shards_) {
    Shard& shard = *shardPtr;
    // Mirror injected clock skew so shard-side lease timers see the
    // same (virtual) clock as the I/O side's fault shim.
    shard.driver.setClockOffset(offset);
    net::Message msg;
    bool drained = false;
    while (shard.outbound.tryPop(msg)) {
      drained = true;
      egress_.send(std::move(msg));  // loop thread: coalesced writev path
    }
    (void)drained;
    if (shard.wakePending) {
      shard.wakePending = false;
      shard.driver.wake();
    }
  }
}

void ShardedNode::mergeMetricsInto(stats::Metrics& out) const {
  for (const auto& shard : shards_) out.mergeFrom(shard->metrics);
}

std::int64_t ShardedNode::outboundDropped() const {
  std::int64_t total = 0;
  for (const auto& shard : shards_) total += shard->outboundDropped;
  return total;
}

}  // namespace vlease::rt
