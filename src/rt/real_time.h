// Real-time binding of the simulation kernel.
//
// Protocol endpoints take their timers from sim::Scheduler, whose
// virtual clock the simulator drives from trace timestamps. To run the
// SAME endpoint code against a real network, RealTimeDriver drives that
// virtual clock from the wall clock instead: each loop iteration
//   1. advances the scheduler to "microseconds since start" (firing any
//      due lease-expiry / ack-wait timers),
//   2. polls the registered file descriptors (the TCP transport's
//      sockets) with a short timeout,
//   3. drains the thread-safe post() queue (how other threads inject
//      reads/writes into the loop thread).
//
// One RealTimeDriver == one protocol node's event loop thread. Nothing
// in the endpoint code knows whether time is virtual or real.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/scheduler.h"

namespace vlease::rt {

/// Callback invoked when a watched fd is readable.
using FdHandler = std::function<void()>;

class RealTimeDriver {
 public:
  RealTimeDriver();

  sim::Scheduler& scheduler() { return scheduler_; }

  /// Microseconds of wall time since the driver was constructed (the
  /// value the scheduler's virtual clock tracks).
  SimTime elapsed() const;

  /// Watch a file descriptor for readability.
  void watchFd(int fd, FdHandler onReadable);
  void unwatchFd(int fd);

  /// Thread-safe: run `fn` on the loop thread at the next iteration.
  void post(std::function<void()> fn);

  /// Run the loop until stop() is called (from any thread) or
  /// `forMicros` of wall time elapse (0 = no bound).
  void run(SimDuration forMicros = 0);
  void stop() { stopped_.store(true); }

  /// Single iteration (poll + timers + posts); exposed for tests.
  void step(int pollTimeoutMs = 1);

 private:
  void drainPosts();

  std::chrono::steady_clock::time_point start_;
  sim::Scheduler scheduler_;
  std::vector<std::pair<int, FdHandler>> fds_;
  std::mutex postMutex_;
  std::vector<std::function<void()>> posts_;
  std::atomic<bool> stopped_{false};
};

}  // namespace vlease::rt
