// Real-time binding of the simulation kernel.
//
// Protocol endpoints take their timers from sim::Scheduler, whose
// virtual clock the simulator drives from trace timestamps. To run the
// SAME endpoint code against a real network, RealTimeDriver drives that
// virtual clock from the wall clock instead: each loop iteration
//   1. advances the scheduler to "microseconds since start" (firing any
//      due lease-expiry / ack-wait timers),
//   2. polls the registered file descriptors (the TCP transport's
//      sockets) with a short timeout,
//   3. drains the thread-safe post() queue (how other threads inject
//      reads/writes into the loop thread).
//
// One RealTimeDriver == one protocol node's event loop thread. Nothing
// in the endpoint code knows whether time is virtual or real.
//
// Multi-process deployments (tools/vlease_rt) need two extras:
//   * alignStart() re-anchors the zero point to a steady-clock instant
//     shared by every worker process (CLOCK_MONOTONIC is machine-wide
//     on Linux), so all nodes agree on what "t = 0" means;
//   * setClockOffset() skews THIS node's view of elapsed time -- the
//     real-deployment analogue of sim::LocalClock, used to execute
//     FaultPlan kSkew/kDrift events against live endpoints. elapsed()
//     is clamped monotone so an offset step can never run time
//     backwards under the scheduler.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/scheduler.h"

namespace vlease::rt {

/// Callback invoked when a watched fd is readable.
using FdHandler = std::function<void()>;

class RealTimeDriver {
 public:
  RealTimeDriver();

  sim::Scheduler& scheduler() { return scheduler_; }

  /// Microseconds of wall time since the start anchor, plus the clock
  /// offset, clamped monotone (the value the scheduler's virtual clock
  /// tracks). Loop thread only.
  SimTime elapsed() const;

  /// Unskewed microseconds since the start anchor. May be negative if
  /// the anchor was aligned into the future and it has not arrived yet.
  SimTime rawElapsed() const;

  /// Re-anchor "t = 0" to an absolute steady-clock instant, expressed
  /// as microseconds since the steady clock's epoch. A parent process
  /// picks one instant slightly in the future and passes it to every
  /// worker so their timelines coincide. Call before running the loop.
  void alignStart(std::int64_t steadyEpochMicros);

  /// Skew this node's clock by `offset` (positive = clock runs ahead).
  /// Loop thread only; elapsed() never moves backwards -- a negative
  /// step freezes the clock until raw time catches up.
  void setClockOffset(SimDuration offset) { clockOffset_ = offset; }
  SimDuration clockOffset() const { return clockOffset_; }

  /// Hook invoked once per loop iteration with the raw (unskewed)
  /// elapsed time, before timers fire. The chaos shim uses this to
  /// apply FaultPlan windows on the real timeline. Loop thread only.
  void setStepHook(std::function<void(SimTime rawNow)> hook) {
    stepHook_ = std::move(hook);
  }

  /// Watch a file descriptor for readability.
  void watchFd(int fd, FdHandler onReadable);
  void unwatchFd(int fd);

  /// Thread-safe: run `fn` on the loop thread at the next iteration.
  void post(std::function<void()> fn);

  /// Run the loop until stop() is called (from any thread) or
  /// `forMicros` of wall time elapse (0 = no bound).
  void run(SimDuration forMicros = 0);

  /// Request the loop to exit. Acts as a drain barrier: once observed,
  /// no further post() callbacks are invoked -- anything still queued
  /// (including the rest of the batch being drained) is held until the
  /// next run(). This makes "post stop-and-teardown, then more work"
  /// safe: the work after the teardown callback never runs against the
  /// half-torn-down node.
  void stop() { stopped_.store(true); }

  /// Single iteration (poll + timers + posts); exposed for tests.
  void step(int pollTimeoutMs = 1);

 private:
  void drainPosts();

  std::chrono::steady_clock::time_point start_;
  sim::Scheduler scheduler_;
  std::vector<std::pair<int, FdHandler>> fds_;
  std::mutex postMutex_;
  std::vector<std::function<void()>> posts_;
  std::atomic<bool> stopped_{false};
  SimDuration clockOffset_ = 0;
  mutable SimTime lastElapsed_ = 0;  // monotone clamp floor
  std::function<void(SimTime)> stepHook_;
};

}  // namespace vlease::rt
