// Real-process execution of a net::FaultPlan.
//
// The simulator applies FaultPlan events to a FailureModel; the rt layer
// executes the SAME timeline against live processes and sockets. The
// interpretation splits across the process boundary:
//
//   FaultPlan event      real-process action
//   -------------------  ------------------------------------------------
//   kCrash node          parent SIGKILLs the node's worker process
//   kRecover node        parent re-execs the worker (--cold-restart for
//                        servers: resume from logged stable storage and
//                        refuse writes for one lease term + epsilon)
//   kPartition a<->b     both endpoints' FaultShims drop frames between
//                        a and b (outbound suppressed, in-flight frames
//                        dropped after decode)
//   kIsolate node        every FaultShim drops frames to/from the node
//   kSetLoss p           each outbound frame independently lost with
//                        probability p: dropped outright, or truncated
//                        mid-write at a random byte offset (half the
//                        time with a half-close so the peer reads the
//                        prefix then clean EOF)
//   kSkew / kDrift node  the node's RealTimeDriver clock is offset /
//                        drifts, exactly like sim::LocalClock
//
// FaultInjector is the PARENT side: it walks the crash/recover lane and
// invokes kill/respawn callbacks (SIGKILL + re-exec in vlease_rt;
// injectable lambdas in tests). FaultShim is the CHILD side: installed
// as the TcpTransport's FaultHook and stepped from the driver's step
// hook, it applies partition/isolate/loss windows at the socket and
// skew/drift at the clock. Both advance on the RAW shared timeline
// (unskewed microseconds since the common t0), so every process applies
// each window at the same wall-clock instant regardless of its own
// injected skew.
//
// Determinism caveat: the loss draws are per-(shim, frame) from a seeded
// stream, so a run's injected faults are reproducible given the same
// frame sequence; the frame sequence itself is real-scheduling-
// dependent, which is exactly the nondeterminism the parity harness is
// designed to tolerate (it compares oracle verdicts, not traces).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "net/fault_plan.h"
#include "rt/real_time.h"
#include "rt/tcp_transport.h"
#include "util/rng.h"

namespace vlease::rt {

/// Parent-side crash/recover executor (see header comment).
class FaultInjector {
 public:
  struct Callbacks {
    /// SIGKILL the node's process. `at` is the plan time of the event.
    std::function<void(NodeId node, SimTime at)> kill;
    /// Re-exec the node's process (cold restart).
    std::function<void(NodeId node, SimTime at)> respawn;
  };

  FaultInjector(const net::FaultPlan& plan, Callbacks callbacks);

  /// Fire every crash/recover event with at <= now (raw timeline).
  void advance(SimTime now);
  bool done() const { return next_ >= events_.size(); }
  std::size_t fired() const { return next_; }

 private:
  std::vector<net::FaultEvent> events_;  // crash/recover lane, time-sorted
  std::size_t next_ = 0;
  Callbacks callbacks_;
};

/// Child-side socket/clock shim (see header comment). Install with
/// transport.setFaultHook(&shim) and driver.setStepHook(...advance...).
class FaultShim final : public FaultHook {
 public:
  /// `self` is the node this process hosts; `driver` receives skew /
  /// drift (may be null in tests). The seed decorrelates loss draws
  /// across processes (callers pass seed ^ raw(self)).
  FaultShim(const net::FaultPlan& plan, NodeId self, RealTimeDriver* driver,
            std::uint64_t seed);

  /// Apply every window event with at <= rawNow. Call from the driver's
  /// step hook.
  void advance(SimTime rawNow);

  // FaultHook
  SendFault onSend(NodeId from, NodeId to, std::size_t frameBytes) override;
  bool dropInbound(NodeId from, NodeId to) override;

  // ---- introspection (tests) ----
  bool isIsolated(NodeId node) const;
  bool isPartitioned(NodeId a, NodeId b) const;
  double lossProbability() const { return lossProb_; }

 private:
  void applyClock(SimTime rawNow);

  std::vector<net::FaultEvent> events_;  // window lane, time-sorted
  std::size_t next_ = 0;
  NodeId self_;
  RealTimeDriver* driver_;
  Rng rng_;

  std::vector<std::uint8_t> isolated_;              // by raw node id
  std::vector<std::pair<NodeId, NodeId>> cutLinks_;  // unordered pairs
  double lossProb_ = 0.0;

  // Clock lane (self only): step offset + drift accrued from an anchor.
  SimDuration skewOffset_ = 0;
  double driftPpm_ = 0.0;
  SimTime driftAnchor_ = 0;
};

}  // namespace vlease::rt
