// TCP binding of net::Transport: the same client/server state machines
// that run under the simulator exchange real length-prefixed frames over
// real sockets.
//
// Deployment model: one TcpTransport per process/event-loop, hosting the
// local node(s). Remote nodes are registered with addPeer(); outbound
// connections are opened lazily on first send and kept alive. Inbound
// connections are accepted on the listen port; frames carry the sender
// and recipient node ids, so one socket can serve any node pair.
//
// Framing: [u32 length][encodeMessage() bytes, CRC-sealed]. Partial
// reads are buffered per connection; writes loop until complete (sockets
// stay blocking for writes -- messages are small and peers drain
// promptly; reads are level-triggered through the driver's poll loop).
// A frame that fails decodeMessage() (truncated or corrupted beyond its
// checksum) is dropped and counted in framesRejected(), never delivered;
// a connection that dies mid-frame (EOF or hard error with a partial
// frame buffered) counts the abandoned prefix as a rejected frame too.
//
// Exactly-once per frame under the bounded-retry send path: a failed
// write always closes its connection before the retry, so the peer
// discards any half-received prefix with the connection; the retry
// resends the WHOLE frame on a fresh connection -- i.e. transmission
// restarts from the unacknowledged frame boundary, and no interleaving
// can make the peer parse the same frame twice.
//
// Failure semantics match Transport's contract: best effort. A peer
// that cannot be reached (connect/write failure after Options::maxRetries
// reconnect attempts under capped jittered exponential backoff) drops
// the message; the protocols already tolerate loss (leases expire, reads
// time out, the reconnection path repairs state).
//
// Chaos shim: setFaultHook() interposes a FaultHook on the socket path.
// The hook can drop an outbound frame, truncate it mid-write at an
// injected byte offset (optionally half-closing so the peer reads the
// prefix then EOF), or drop an inbound frame after decode -- this is how
// tools/vlease_rt executes FaultPlan partition/isolate/loss windows
// against live deployments. Injected faults are counted separately from
// organic failures and are never retried (an injected drop IS the loss).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "rt/real_time.h"
#include "stats/metrics.h"

namespace vlease::rt {

/// What a FaultHook tells the transport to do with one outbound frame.
struct SendFault {
  enum class Kind : std::uint8_t {
    kDeliver,   // send normally
    kDrop,      // do not send at all
    kTruncate,  // write `truncateAt` bytes, then kill the connection
  };
  Kind kind = Kind::kDeliver;
  /// For kTruncate: bytes of the frame to emit before dying. Clamped to
  /// the frame size; a value >= frame size degrades to a full write
  /// followed by a connection kill (the peer still gets the frame).
  std::size_t truncateAt = 0;
  /// For kTruncate: shutdown(SHUT_WR) first so the peer reads the
  /// prefix then a clean EOF (vs. an abortive close).
  bool halfClose = false;
};

/// Socket-level fault shim (see header comment). Implementations must
/// be cheap; called on the loop thread for every remote frame.
class FaultHook {
 public:
  virtual ~FaultHook() = default;
  /// Decide the fate of an outbound frame of `frameBytes` total bytes.
  virtual SendFault onSend(NodeId from, NodeId to, std::size_t frameBytes) = 0;
  /// Drop a decoded inbound frame before delivery (models frames that
  /// were already in flight when a partition window opened).
  virtual bool dropInbound(NodeId from, NodeId to) = 0;
};

class TcpTransport final : public net::Transport {
 public:
  /// Socket-path policy. Defaults preserve the historical behavior:
  /// retry once after ~2 ms, give a stalled write a second to drain.
  struct Options {
    /// Deadline for establishing an outbound connection.
    int connectTimeoutMs = 1000;
    /// First retry backoff; attempt k sleeps
    /// min(cap, base << (k-1)) * jitter, jitter uniform in [0.5, 1.5).
    int retryBackoffBaseMs = 2;
    int retryBackoffCapMs = 64;
    /// Reconnect-and-resend attempts after the first failed send.
    int maxRetries = 1;
    /// How long a mid-frame write waits for POLLOUT before aborting the
    /// frame (the old hard-coded 1000 ms).
    int writeStallTimeoutMs = 1000;
    /// Seed for the backoff jitter stream (deterministic per transport).
    std::uint64_t jitterSeed = 0x9e3779b97f4a7c15ull;
  };

  /// Listens on 127.0.0.1:`port` (port 0 picks a free port; see
  /// listenPort()). Registers with the driver's poll loop.
  TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
               std::uint16_t port);
  TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
               std::uint16_t port, const Options& options);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::uint16_t listenPort() const { return listenPort_; }
  const Options& options() const { return options_; }

  /// Declare where a remote node lives.
  void addPeer(NodeId node, const std::string& host, std::uint16_t port);

  /// Install / clear the chaos shim (nullptr = none). Not owned.
  void setFaultHook(FaultHook* hook) { faultHook_ = hook; }

  // net::Transport
  void attach(NodeId node, net::MessageSink* sink) override;
  void detach(NodeId node) override;
  void send(net::Message msg) override;

  std::int64_t framesSent() const { return framesSent_; }
  std::int64_t framesReceived() const { return framesReceived_; }
  std::int64_t sendFailures() const { return sendFailures_; }
  /// Sends that failed once and were re-attempted on a fresh
  /// connection (successful or not; failures also bump sendFailures()).
  std::int64_t sendRetries() const { return sendRetries_; }
  /// Inbound frames dropped because they failed to decode (corrupt
  /// length prefix, checksum/parse failure, or a connection that died
  /// leaving a partial frame). Never delivered.
  std::int64_t framesRejected() const { return framesRejected_; }
  /// Write attempts abandoned after some -- but not all -- of a frame's
  /// bytes entered the socket; the connection is closed so the prefix
  /// can never complete into a deliverable frame on the peer.
  std::int64_t partialFrameAborts() const { return partialFrameAborts_; }
  /// Successful connects to a peer that had connected before (i.e. the
  /// previous connection died and was reopened).
  std::int64_t reconnects() const { return reconnects_; }
  /// Frames suppressed by the fault hook (outbound + inbound drops).
  std::int64_t injectedDrops() const { return injectedDrops_; }
  /// Frames killed mid-write by the fault hook.
  std::int64_t injectedTruncations() const { return injectedTruncations_; }

 private:
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
    bool everConnected = false;
  };
  struct Connection {
    int fd;
    std::vector<std::uint8_t> buffer;  // partial-frame accumulator
  };

  void acceptReady();
  void readReady(int fd);
  void closeConnection(int fd);
  bool writeBytes(int fd, const std::uint8_t* data, std::size_t size,
                  std::size_t* writtenOut);
  bool writeFrame(int fd, const std::vector<std::uint8_t>& frame);
  int connectPeer(Peer& peer);
  /// One connect+write attempt; on write failure the connection is
  /// closed and the peer's fd forgotten so the next attempt reconnects.
  bool trySendFrame(Peer& peer, const std::vector<std::uint8_t>& frame);
  void deliverLocal(const net::Message& msg);
  /// Sleep out the capped jittered exponential backoff before retry
  /// attempt `attempt` (1-based).
  void backoffSleep(int attempt);
  /// Execute an injected truncation: write the prefix, kill the
  /// connection. Returns after the connection is gone.
  void injectTruncation(Peer& peer, const std::vector<std::uint8_t>& frame,
                        const SendFault& fault);

  RealTimeDriver& driver_;
  stats::Metrics& metrics_;
  Options options_;
  std::uint64_t jitterState_;
  FaultHook* faultHook_ = nullptr;
  int listenFd_ = -1;
  std::uint16_t listenPort_ = 0;
  std::unordered_map<NodeId, net::MessageSink*> sinks_;
  std::unordered_map<NodeId, Peer> peers_;
  std::unordered_map<int, Connection> connections_;
  std::int64_t framesSent_ = 0;
  std::int64_t framesReceived_ = 0;
  std::int64_t sendFailures_ = 0;
  std::int64_t sendRetries_ = 0;
  std::int64_t framesRejected_ = 0;
  std::int64_t partialFrameAborts_ = 0;
  std::int64_t reconnects_ = 0;
  std::int64_t injectedDrops_ = 0;
  std::int64_t injectedTruncations_ = 0;
};

}  // namespace vlease::rt
