// TCP binding of net::Transport: the same client/server state machines
// that run under the simulator exchange real length-prefixed frames over
// real sockets.
//
// Deployment model: one TcpTransport per process/event-loop, hosting the
// local node(s). Remote nodes are registered with addPeer(); outbound
// connections are opened lazily on first send and kept alive. Inbound
// connections are accepted on the listen port; frames carry the sender
// and recipient node ids, so one socket can serve any node pair.
//
// Framing: [u32 length][encodeMessage() bytes, CRC-sealed]. Partial
// reads are buffered per connection; writes loop until complete (sockets
// stay blocking for writes -- messages are small and peers drain
// promptly; reads are level-triggered through the driver's poll loop).
// A frame that fails decodeMessage() (truncated or corrupted beyond its
// checksum) is dropped and counted in framesRejected(), never delivered.
//
// Exactly-once per frame under the single-retry send path: a failed
// write always closes its connection before the retry, so the peer
// discards any half-received prefix with the connection; the retry
// resends the WHOLE frame on a fresh connection -- i.e. transmission
// restarts from the unacknowledged frame boundary, and no interleaving
// can make the peer parse the same frame twice.
//
// Failure semantics match Transport's contract: best effort. A peer
// that cannot be reached (connect/write failure) drops the message; the
// protocols already tolerate loss (leases expire, reads time out, the
// reconnection path repairs state).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/transport.h"
#include "rt/real_time.h"
#include "stats/metrics.h"

namespace vlease::rt {

class TcpTransport final : public net::Transport {
 public:
  /// Listens on 127.0.0.1:`port` (port 0 picks a free port; see
  /// listenPort()). Registers with the driver's poll loop.
  TcpTransport(RealTimeDriver& driver, stats::Metrics& metrics,
               std::uint16_t port);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  std::uint16_t listenPort() const { return listenPort_; }

  /// Declare where a remote node lives.
  void addPeer(NodeId node, const std::string& host, std::uint16_t port);

  // net::Transport
  void attach(NodeId node, net::MessageSink* sink) override;
  void detach(NodeId node) override;
  void send(net::Message msg) override;

  std::int64_t framesSent() const { return framesSent_; }
  std::int64_t framesReceived() const { return framesReceived_; }
  std::int64_t sendFailures() const { return sendFailures_; }
  /// Sends that failed once and were re-attempted on a fresh
  /// connection (successful or not; failures also bump sendFailures()).
  std::int64_t sendRetries() const { return sendRetries_; }
  /// Inbound frames dropped because they failed to decode (corrupt
  /// length prefix or checksum/parse failure). Never delivered.
  std::int64_t framesRejected() const { return framesRejected_; }
  /// Write attempts abandoned after some -- but not all -- of a frame's
  /// bytes entered the socket; the connection is closed so the prefix
  /// can never complete into a deliverable frame on the peer.
  std::int64_t partialFrameAborts() const { return partialFrameAborts_; }

 private:
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
  };
  struct Connection {
    int fd;
    std::vector<std::uint8_t> buffer;  // partial-frame accumulator
  };

  void acceptReady();
  void readReady(int fd);
  void closeConnection(int fd);
  bool writeFrame(int fd, const std::vector<std::uint8_t>& frame);
  int connectPeer(Peer& peer);
  /// One connect+write attempt; on write failure the connection is
  /// closed and the peer's fd forgotten so the next attempt reconnects.
  bool trySendFrame(Peer& peer, const std::vector<std::uint8_t>& frame);
  void deliverLocal(const net::Message& msg);

  RealTimeDriver& driver_;
  stats::Metrics& metrics_;
  int listenFd_ = -1;
  std::uint16_t listenPort_ = 0;
  std::unordered_map<NodeId, net::MessageSink*> sinks_;
  std::unordered_map<NodeId, Peer> peers_;
  std::unordered_map<int, Connection> connections_;
  std::int64_t framesSent_ = 0;
  std::int64_t framesReceived_ = 0;
  std::int64_t sendFailures_ = 0;
  std::int64_t sendRetries_ = 0;
  std::int64_t framesRejected_ = 0;
  std::int64_t partialFrameAborts_ = 0;
};

}  // namespace vlease::rt
