#include "rt/real_time.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <iterator>

#include "util/check.h"

#if defined(__linux__)
#include <sys/eventfd.h>
#endif

namespace vlease::rt {

RealTimeDriver::RealTimeDriver() : RealTimeDriver(EventLoop::defaultBackend()) {}

RealTimeDriver::RealTimeDriver(EventLoop::Backend backend)
    : start_(std::chrono::steady_clock::now()),
      loop_(EventLoop::create(backend)) {
#if defined(__linux__)
  wakeFd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  VL_CHECK_MSG(wakeFd_ >= 0, "eventfd() failed");
  wakeWriteFd_ = wakeFd_;
#else
  int fds[2];
  VL_CHECK_MSG(::pipe(fds) == 0, "pipe() failed");
  for (const int fd : fds) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  wakeFd_ = fds[0];
  wakeWriteFd_ = fds[1];
#endif
  // The wake fd is registered like any other watched fd; its handler
  // just drains the counter. Its presence also means the readiness wait
  // is never a bare sleep: a cross-thread post() interrupts it.
  watchFd(wakeFd_, [this]() { drainWakeFd(); });
}

RealTimeDriver::~RealTimeDriver() {
  ::close(wakeFd_);
  if (wakeWriteFd_ != wakeFd_) ::close(wakeWriteFd_);
}

SimTime RealTimeDriver::rawElapsed() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

SimTime RealTimeDriver::elapsed() const {
  SimTime v = rawElapsed() + clockOffset_.load(std::memory_order_relaxed);
  if (v < lastElapsed_) return lastElapsed_;
  lastElapsed_ = v;
  return v;
}

void RealTimeDriver::alignStart(std::int64_t steadyEpochMicros) {
  start_ = std::chrono::steady_clock::time_point(
      std::chrono::microseconds(steadyEpochMicros));
  lastElapsed_ = 0;
}

void RealTimeDriver::watchFd(int fd, FdHandler onReadable) {
  VL_CHECK(fd >= 0);
  VL_CHECK(fds_.count(fd) == 0);
  fds_.emplace(fd, FdHandlers{std::move(onReadable), nullptr, false});
  loop_->add(fd, /*read=*/true, /*write=*/false);
}

void RealTimeDriver::unwatchFd(int fd) {
  if (fds_.erase(fd) == 0) return;
  loop_->del(fd);
}

void RealTimeDriver::setWriteHandler(int fd, FdHandler onWritable) {
  auto it = fds_.find(fd);
  VL_CHECK(it != fds_.end());
  it->second.onWritable = std::move(onWritable);
}

void RealTimeDriver::setWriteInterest(int fd, bool enabled) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;  // connection already torn down
  if (it->second.wantWrite == enabled) return;
  it->second.wantWrite = enabled;
  loop_->mod(fd, /*read=*/true, /*write=*/enabled);
}

void RealTimeDriver::addBeforeWaitHook(std::function<void()> hook) {
  beforeWaitHooks_.push_back(std::move(hook));
}

void RealTimeDriver::runBeforeWaitHooks() {
  for (const auto& hook : beforeWaitHooks_) hook();
}

void RealTimeDriver::wake() {
  if (wakeWriteFd_ < 0) return;
  const std::uint64_t one = 1;
  // A full pipe / saturated counter already guarantees a pending wake.
  [[maybe_unused]] ssize_t n =
      ::write(wakeWriteFd_, &one, sizeof(one));
}

void RealTimeDriver::drainWakeFd() {
  std::uint64_t buf[16];
  while (::read(wakeFd_, buf, sizeof(buf)) > 0) {
  }
}

void RealTimeDriver::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(postMutex_);
    posts_.push_back(std::move(fn));
  }
  wake();
}

void RealTimeDriver::drainPosts() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(postMutex_);
    batch.swap(posts_);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (stopped_.load()) {
      // Drain barrier: stop() was requested (possibly by batch[i-1]
      // itself tearing the node down). Re-queue the remaining
      // callbacks, in order and ahead of anything posted since, so
      // they run on the next run() instead of against a half-torn-down
      // node.
      std::lock_guard<std::mutex> lock(postMutex_);
      posts_.insert(posts_.begin(),
                    std::make_move_iterator(batch.begin() +
                                            static_cast<std::ptrdiff_t>(i)),
                    std::make_move_iterator(batch.end()));
      return;
    }
    batch[i]();
  }
}

void RealTimeDriver::step(int waitTimeoutMs) {
  const std::thread::id prevLoopThread =
      loopThread_.load(std::memory_order_relaxed);
  loopThread_.store(std::this_thread::get_id(), std::memory_order_relaxed);

  drainPosts();
  if (stepHook_) stepHook_(rawElapsed());
  scheduler_.runUntil(elapsed());

  // Anything the posts or timers queued on the transport leaves now, so
  // the wait below blocks with empty output buffers.
  runBeforeWaitHooks();

  const int ready = loop_->wait(ready_, waitTimeoutMs);
  if (ready > 0) {
    // Handlers may mutate the watch set (accept adds, close removes, a
    // handler may even close a LATER fd of this same batch): re-check
    // registration per event and copy the handler before invoking.
    for (const EventLoop::Event& ev : ready_) {
      if (ev.readable || ev.error) {
        auto it = fds_.find(ev.fd);
        if (it == fds_.end()) continue;
        FdHandler handler = it->second.onReadable;
        if (handler) handler();
      }
      if (ev.writable) {
        auto it = fds_.find(ev.fd);
        if (it == fds_.end()) continue;  // closed by its own read handler
        FdHandler handler = it->second.onWritable;
        if (handler) handler();
      }
    }
  }
  scheduler_.runUntil(elapsed());

  // Replies generated by the dispatched handlers leave in this same
  // iteration -- one gathered writev per connection, not one write per
  // send() call.
  runBeforeWaitHooks();

  loopThread_.store(prevLoopThread, std::memory_order_relaxed);
}

void RealTimeDriver::run(SimDuration forMicros) {
  stopped_.store(false);
  const SimTime deadline = forMicros > 0 ? elapsed() + forMicros : kNever;
  while (!stopped_.load() && elapsed() < deadline) {
    step();
  }
}

}  // namespace vlease::rt
