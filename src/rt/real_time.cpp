#include "rt/real_time.h"

#include <poll.h>

#include <algorithm>
#include <iterator>

#include "util/check.h"

namespace vlease::rt {

RealTimeDriver::RealTimeDriver()
    : start_(std::chrono::steady_clock::now()) {}

SimTime RealTimeDriver::rawElapsed() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

SimTime RealTimeDriver::elapsed() const {
  SimTime v = rawElapsed() + clockOffset_;
  if (v < lastElapsed_) return lastElapsed_;
  lastElapsed_ = v;
  return v;
}

void RealTimeDriver::alignStart(std::int64_t steadyEpochMicros) {
  start_ = std::chrono::steady_clock::time_point(
      std::chrono::microseconds(steadyEpochMicros));
  lastElapsed_ = 0;
}

void RealTimeDriver::watchFd(int fd, FdHandler onReadable) {
  VL_CHECK(fd >= 0);
  fds_.emplace_back(fd, std::move(onReadable));
}

void RealTimeDriver::unwatchFd(int fd) {
  fds_.erase(std::remove_if(fds_.begin(), fds_.end(),
                            [fd](const auto& p) { return p.first == fd; }),
             fds_.end());
}

void RealTimeDriver::post(std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(postMutex_);
  posts_.push_back(std::move(fn));
}

void RealTimeDriver::drainPosts() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(postMutex_);
    batch.swap(posts_);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (stopped_.load()) {
      // Drain barrier: stop() was requested (possibly by batch[i-1]
      // itself tearing the node down). Re-queue the remaining
      // callbacks, in order and ahead of anything posted since, so
      // they run on the next run() instead of against a half-torn-down
      // node.
      std::lock_guard<std::mutex> lock(postMutex_);
      posts_.insert(posts_.begin(),
                    std::make_move_iterator(batch.begin() +
                                            static_cast<std::ptrdiff_t>(i)),
                    std::make_move_iterator(batch.end()));
      return;
    }
    batch[i]();
  }
}

void RealTimeDriver::step(int pollTimeoutMs) {
  drainPosts();
  if (stepHook_) stepHook_(rawElapsed());
  scheduler_.runUntil(elapsed());

  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size());
  for (const auto& [fd, handler] : fds_) {
    pfds.push_back(pollfd{fd, POLLIN, 0});
  }
  if (pfds.empty()) {
    // Nothing to poll; sleep out the timeout so the loop does not spin.
    ::poll(nullptr, 0, pollTimeoutMs);
  } else {
    int ready = ::poll(pfds.data(), pfds.size(), pollTimeoutMs);
    if (ready > 0) {
      // Handlers may mutate fds_ (accept adds, close removes): snapshot
      // the handlers for fds that are actually ready first.
      std::vector<FdHandler> toRun;
      for (const pollfd& p : pfds) {
        if ((p.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        for (const auto& [fd, handler] : fds_) {
          if (fd == p.fd) {
            toRun.push_back(handler);
            break;
          }
        }
      }
      for (auto& handler : toRun) handler();
    }
  }
  scheduler_.runUntil(elapsed());
}

void RealTimeDriver::run(SimDuration forMicros) {
  stopped_.store(false);
  const SimTime deadline = forMicros > 0 ? elapsed() + forMicros : kNever;
  while (!stopped_.load() && elapsed() < deadline) {
    step();
  }
}

}  // namespace vlease::rt
