#include "proto/poll.h"

#include <algorithm>

#include "util/check.h"

namespace vlease::proto {

// ---- server ----

PollServer::ObjState& PollServer::state(ObjectId obj) {
  auto [it, inserted] = objects_.try_emplace(obj);
  (void)inserted;
  return it->second;
}

void PollServer::write(ObjectId obj, WriteCallback cb) {
  ObjState& st = state(obj);
  ++st.version;
  st.modifiedAt = ctx_.scheduler.now();
  ctx_.metrics.onWrite(/*delay=*/0, /*blocked=*/false);
  if (cb) cb(WriteResult{0, false, st.version});
}

Version PollServer::currentVersion(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? 1 : it->second.version;
}

void PollServer::deliver(const net::Message& msg) {
  const auto* req = std::get_if<net::PollRequest>(&msg.payload);
  VL_CHECK_MSG(req != nullptr, "PollServer: unexpected message type");
  const ObjState& st = state(req->obj);
  const bool changed = st.version != req->haveVersion;
  ctx_.transport.send(net::Message{
      id(), msg.from,
      net::PollReply{req->obj, st.version, changed,
                     changed ? ctx_.catalog.object(req->obj).sizeBytes : 0,
                     st.modifiedAt}});
}

// ---- client ----

void PollClient::read(ObjectId obj, ReadCallback cb) {
  const SimTime now = ctx_.scheduler.now();
  const CacheEntry* entry = cache_.find(obj);
  if (entry != nullptr && entry->valid(now)) {
    // Within the validity window: serve locally. This is where Poll can
    // return stale data; the driver's oracle counts it.
    cache_.touch(obj);
    ReadResult result;
    result.ok = true;
    result.usedNetwork = false;
    result.fetchedData = false;
    result.version = entry->version;
    cb(result);
    return;
  }
  const bool alreadyAsking = pending_.waitingOn(obj);
  pending_.add(obj, config_.readTimeout, std::move(cb));
  if (!alreadyAsking) {
    const Version have = entry != nullptr && entry->hasData ? entry->version
                                                            : kNoVersion;
    ctx_.transport.send(net::Message{id(), ctx_.serverOf(obj),
                                     net::PollRequest{obj, have}});
  }
}

void PollClient::deliver(const net::Message& msg) {
  const auto* reply = std::get_if<net::PollReply>(&msg.payload);
  VL_CHECK_MSG(reply != nullptr, "PollClient: unexpected message type");
  const SimTime now = ctx_.scheduler.now();
  CacheEntry& entry = cache_.entry(reply->obj);
  entry.version = reply->version;
  entry.hasData = true;
  entry.lastValidated = now;
  if (config_.algorithm == Algorithm::kPollAdaptive) {
    // Adaptive TTL: window proportional to the object's age.
    const auto age = static_cast<double>(now - reply->modifiedAt);
    const auto ttl = static_cast<SimDuration>(
        std::clamp(static_cast<double>(config_.adaptiveFactor) * age,
                   static_cast<double>(config_.adaptiveMinTtl),
                   static_cast<double>(config_.adaptiveMaxTtl)));
    entry.validUntil = addSat(now, ttl);
  } else {
    entry.validUntil = addSat(now, config_.objectTimeout);
  }

  ReadResult result;
  result.ok = true;
  result.usedNetwork = true;
  result.fetchedData = reply->carriesData;
  result.version = reply->version;
  pending_.resolveAll(reply->obj, result);
}

}  // namespace vlease::proto
