// Consistency-protocol framework: the interfaces every algorithm
// implements, the shared configuration, and the result types the driver
// consumes.
//
// An algorithm is a (ClientNode, ServerNode) pair of message-driven state
// machines. They communicate only through net::Transport and take time
// only from sim::Scheduler, so the same code runs under the trace driver,
// the failure tests, and the examples.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/transport.h"
#include "proto/routing.h"
#include "sim/local_clock.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "trace/catalog.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::proto {

/// Everything an endpoint needs from its environment.
struct ProtocolContext {
  sim::Scheduler& scheduler;
  net::Transport& transport;
  stats::Metrics& metrics;
  const trace::Catalog& catalog;
  /// Per-node clock views for skew experiments; null (the default) means
  /// every node reads the scheduler's global clock exactly.
  const sim::ClockMap* clocks = nullptr;
  /// Volume -> server routing table for federation; null (the default)
  /// means the catalog's static home-server assignment is authoritative
  /// (single-server bindings, rt workers). The driver that performs
  /// online migration owns the table and installs a pointer here.
  const Routing* routing = nullptr;

  /// Current owner of a volume / of an object's volume.
  NodeId serverOf(VolumeId vol) const {
    return routing != nullptr ? routing->serverOf(vol)
                              : catalog.volume(vol).server;
  }
  NodeId serverOf(ObjectId obj) const {
    return serverOf(catalog.object(obj).volume);
  }
};

/// Outcome of a client read.
struct ReadResult {
  /// False when the server was unreachable and the read could not be
  /// served with its consistency guarantee. The paper leaves the
  /// reaction application-specific (error, or stale data + warning); we
  /// surface the failure and let callers decide.
  bool ok = false;
  /// True when satisfying the read required at least one message (the
  /// "read cost" figure of merit in Table 1 is the fraction of reads
  /// with usedNetwork == true).
  bool usedNetwork = false;
  /// True when the read pulled a fresh copy of the data (as opposed to
  /// validating or reusing the cached copy).
  bool fetchedData = false;
  /// The version the client believes it read; the driver compares this
  /// against the server's authoritative version to count stale reads.
  Version version = kNoVersion;
};
using ReadCallback = std::function<void(const ReadResult&)>;

/// Outcome of a server write.
struct WriteResult {
  /// Time the write spent waiting for invalidation acks or lease expiry
  /// (the "ack wait delay" column of Table 1).
  SimDuration delay = 0;
  /// Callback only: the write wanted to wait indefinitely for an
  /// unreachable client. The simulator force-completes it after the
  /// ack-wait bound so the trace can continue, but flags the violation.
  bool blocked = false;
  Version newVersion = kNoVersion;
};
using WriteCallback = std::function<void(const WriteResult&)>;

/// Algorithm selector (Table 1 rows).
enum class Algorithm {
  kPollEachRead,
  kPoll,
  kPollAdaptive,
  kCallback,
  kLease,
  kBestEffortLease,
  kVolumeLease,
  kVolumeDelayedInval,
};

const char* algorithmName(Algorithm algorithm);

struct ProtocolConfig {
  Algorithm algorithm = Algorithm::kVolumeLease;

  /// Object-lease length t (Poll reuses it as the poll timeout).
  SimDuration objectTimeout = sec(100'000);
  /// Volume-lease length t_v (volume algorithms only).
  SimDuration volumeTimeout = sec(100);
  /// Delayed Invalidations' d: how long a client may stay Inactive
  /// (pending list retained) before being moved to Unreachable and its
  /// pending list discarded. kNever = keep forever (the paper's d = inf).
  SimDuration inactiveDiscard = kNever;

  /// Floor on how long a server waits for invalidation acks before
  /// declaring a client unreachable (paper's msgTimeout).
  SimDuration msgTimeout = sec(10);
  /// Client-side give-up bound on a read whose server never answers.
  SimDuration readTimeout = sec(30);

  /// Clock-skew safety margin epsilon. The paper's write-after-
  /// min(t, t_v) rule implicitly assumes client and server clocks
  /// agree; with per-node skew injected (sim::ClockMap) the rule only
  /// holds if both sides back off by epsilon:
  ///   * client-conservative: a client treats a lease as dead once its
  ///     local clock reads expiry - epsilon;
  ///   * server-conservative: a server treats a holder's lease as
  ///     possibly live until expiry + epsilon before writing.
  /// A commit then never precedes a serve-from-cache under any per-node
  /// |skew| <= epsilon (relative skew <= 2*epsilon). Zero (the default)
  /// reproduces the paper's exact arithmetic.
  SimDuration clockEpsilon = 0;

  /// Client cache capacity in objects; 0 = infinite (the paper's §4.1
  /// simplifying assumption). Nonzero enables LRU eviction, which adds
  /// capacity misses and re-fetches the paper's setup factors out.
  std::size_t clientCacheCapacity = 0;

  /// Adaptive Poll (Gwertzman-Seltzer's adaptive TTL, paper §2.2): the
  /// validity window is adaptiveFactor x (object age at validation),
  /// clamped to [adaptiveMinTtl, adaptiveMaxTtl]. Stable objects are
  /// polled rarely, fresh ones often.
  double adaptiveFactor = 0.2;
  SimDuration adaptiveMinTtl = sec(10);
  SimDuration adaptiveMaxTtl = days(7);

  /// Ablation: when true, an object-lease request implicitly renews the
  /// volume lease and the grant carries both (single round trip). The
  /// paper's protocol uses separate volume/object messages.
  bool piggybackVolumeLease = false;

  /// FAULT INJECTION (testing only): clients acknowledge invalidations
  /// without applying them to their caches. This deliberately breaks
  /// every server-invalidation algorithm's consistency guarantee; it
  /// exists so chaos runs can prove the ConsistencyOracle actually
  /// detects violations (a watchdog that never barks is untested).
  bool faultInjectIgnoreInvalidations = false;

  /// Liu & Cao's retransmission scheme (paper §6): BestEffortLease only.
  /// When bestEffortRetries > 0, clients acknowledge invalidations and
  /// the server retransmits unacknowledged ones every retryInterval, up
  /// to the retry budget. Writes still never wait -- retransmission
  /// shrinks the staleness window but (as the paper notes of Liu & Cao)
  /// cannot guarantee strong consistency under partitions.
  int bestEffortRetries = 0;
  SimDuration retryInterval = sec(30);

  /// Batch lease-expiry sweep period for VolumeServer: every period the
  /// server scans its dense per-volume/per-object holder tables and
  /// drops (accruing) records whose grace-extended expiry has passed,
  /// instead of keeping expired soft state around until the next write
  /// or crash walks over it. 0 (the default) disables the sweep; any
  /// period is observationally equivalent -- every consumer of a holder
  /// record already checks graceExpire(expire) > now first, so removing
  /// a drained record can never change protocol behavior, only trim the
  /// tables writes iterate. Driven by the scheduler's deadline lane
  /// (one timer per server, not one per lease).
  SimDuration leaseSweepPeriod = 0;

  /// Extension (paper §2.4's unexplored option): instead of sending
  /// invalidation messages, the server simply waits for all outstanding
  /// leases on the object (and, for volume algorithms, the volume) to
  /// expire before writing. Zero invalidation traffic, but every write
  /// to a leased object waits out the full remaining lease. Honored by
  /// Lease and the volume algorithms; Callback has no lease to wait out
  /// and BestEffort's point is not waiting, so both ignore it.
  bool writeByLeaseExpiry = false;
};

/// Everything a server hands over when a volume migrates to another
/// server. Holder/lease soft state deliberately stays behind: the
/// epoch bump forces every old holder through the MUST_RENEW_ALL
/// reconnection exchange at the new owner, and `volLeaseBound` tells
/// the new owner how long it must treat unknown pre-migration holders
/// as possibly live before committing a write (the same conservatism
/// the paper's crash recovery applies server-wide).
struct VolumeHandoff {
  VolumeId vol{};
  /// Source's epoch for the volume at handoff (pre-bump; the adopter
  /// ratchets against its own durable memory and applies the bump).
  Epoch epoch = 0;
  /// Upper bound on every pre-migration holder's volume-lease expiry
  /// (grace NOT applied; the adopter applies its own epsilon).
  SimTime volLeaseBound = kSimTimeMin;
  struct ObjectEntry {
    ObjectId obj{};
    Version version = kNoVersion;
  };
  std::vector<ObjectEntry> objects;
};

/// Server endpoint: owns the authoritative copies of the objects in its
/// volumes and drives invalidations.
class ServerNode : public net::MessageSink {
 public:
  ServerNode(ProtocolContext& ctx, NodeId id) : ctx_(ctx), id_(id) {
    ctx_.transport.attach(id_, this);
  }
  ~ServerNode() override { ctx_.transport.detach(id_); }

  ServerNode(const ServerNode&) = delete;
  ServerNode& operator=(const ServerNode&) = delete;

  NodeId id() const { return id_; }

  /// Apply a write to an object this server owns. `cb` fires when the
  /// write commits (possibly after waiting for acks / lease expiry);
  /// it may fire synchronously. cb may be null.
  virtual void write(ObjectId obj, WriteCallback cb) = 0;

  /// Authoritative current version (the staleness oracle; not a message).
  virtual Version currentVersion(ObjectId obj) const = 0;

  /// Simulate a crash+reboot losing all in-memory consistency state.
  /// Volume servers implement the paper's epoch-based recovery; the
  /// default (for baselines that keep no recoverable guarantee) clears
  /// nothing and is overridden per algorithm as appropriate.
  virtual void crashAndReboot() {}

  /// Flush time-weighted state accounting up to `now` (end of run).
  virtual void finalizeAccounting(SimTime now) { (void)now; }

  /// Stop self-rearming maintenance timers (e.g. the lease-expiry
  /// sweep) so the driver can drain the scheduler at end of run without
  /// housekeeping extending the horizon. Irreversible for this node.
  virtual void quiesce() {}

  // ---- online volume migration (federation) ----
  // Only the volume-lease server implements these; the baselines have
  // no epoch machinery to hand off safely, so the driver restricts
  // migration to algorithms that advertise support.

  virtual bool supportsMigration() const { return false; }

  /// True when `vol` can be handed off right now: no write is pending
  /// or deferred against it. The driver polls and retries until quiet.
  virtual bool volumeQuiescent(VolumeId vol) const {
    (void)vol;
    return true;
  }

  /// Release ownership of `vol`: discard its lease soft state (accruing
  /// the state integral, like a crash would) and return the durable
  /// facts the new owner needs. Requires volumeQuiescent(vol).
  virtual VolumeHandoff migrateOut(VolumeId vol) {
    (void)vol;
    VL_CHECK_MSG(false, "this server type does not support migration");
    return {};
  }

  /// Take ownership of a migrated volume. The epoch ratchets to
  /// max(local durable epoch, handoff epoch) and -- unless `bumpEpoch`
  /// is false (negative-control hook) -- is bumped past both, so every
  /// pre-migration holder fails the epoch check and reconnects.
  virtual void adoptVolume(const VolumeHandoff& handoff, bool bumpEpoch) {
    (void)handoff;
    (void)bumpEpoch;
    VL_CHECK_MSG(false, "this server type does not support migration");
  }

 protected:
  ProtocolContext& ctx_;

 private:
  NodeId id_;
};

/// Client endpoint: per-client cache plus the algorithm's validation /
/// lease logic.
class ClientNode : public net::MessageSink {
 public:
  ClientNode(ProtocolContext& ctx, NodeId id) : ctx_(ctx), id_(id) {
    ctx_.transport.attach(id_, this);
  }
  ~ClientNode() override { ctx_.transport.detach(id_); }

  ClientNode(const ClientNode&) = delete;
  ClientNode& operator=(const ClientNode&) = delete;

  NodeId id() const { return id_; }

  /// Read an object with the algorithm's consistency guarantee. `cb`
  /// may fire synchronously (cache hit / zero-latency exchange).
  virtual void read(ObjectId obj, ReadCallback cb) = 0;

  /// Drop all cached data and leases (simulates a client restart).
  virtual void dropCache() = 0;

  /// Graceful departure (client churn): like dropCache(), but the
  /// client is expected to stay cold for a while, so implementations
  /// should also return lazily grown storage. Distinct from a crash --
  /// nothing is abrupt, no fault is injected, and the server simply
  /// lets the departed client's leases expire.
  virtual void retire() { dropCache(); }

  /// What a read of `obj` issued at `now` would return without any
  /// messages: {true, version} when the client would serve it straight
  /// from cache, {false, kNoVersion} otherwise. Pure inspection -- must
  /// not touch LRU state or issue requests. The ConsistencyOracle
  /// audits this against the server's authoritative version; the
  /// default ("never serves locally") opts a client type out of audits.
  struct CacheView {
    bool wouldServe = false;
    Version version = kNoVersion;
  };
  virtual CacheView cacheView(ObjectId obj, SimTime now) const {
    (void)obj;
    (void)now;
    return {};
  }

 protected:
  /// This client's own reading of global instant `globalNow` (identity
  /// when no ClockMap is installed). Lease-validity checks go through
  /// this; timers and retransmission bookkeeping stay on the global
  /// scheduler clock, which keeps replays deterministic.
  SimTime localTime(SimTime globalNow) const {
    return ctx_.clocks ? ctx_.clocks->localNow(id_, globalNow) : globalNow;
  }
  SimTime localNow() const { return localTime(ctx_.scheduler.now()); }

  ProtocolContext& ctx_;

 private:
  NodeId id_;
};

/// A fully wired protocol deployment: one server endpoint per catalog
/// server, one client endpoint per catalog client.
struct ProtocolInstance {
  ProtocolConfig config;
  /// Stable home of the effective (post-ablation) config: client
  /// endpoints hold pointers into it instead of per-client copies, so
  /// it must outlive them -- shared_ptr keeps the storage put even when
  /// the instance itself is moved.
  std::shared_ptr<const ProtocolConfig> sharedConfig;
  std::vector<std::unique_ptr<ServerNode>> servers;  // by server index
  std::vector<std::unique_ptr<ClientNode>> clients;  // by client index

  /// Static (catalog home-server) lookup; correct whenever no routing
  /// table is installed or no migration has happened.
  ServerNode& serverFor(const trace::Catalog& catalog, ObjectId obj) {
    return *servers[raw(catalog.object(obj).server)];
  }
  /// Routing-aware lookup: the current owner of the object's volume.
  ServerNode& serverFor(const ProtocolContext& ctx, ObjectId obj) {
    return *servers[raw(ctx.serverOf(obj))];
  }
  ServerNode& serverAt(NodeId node) { return *servers[raw(node)]; }
  ClientNode& client(const trace::Catalog& catalog, NodeId node) {
    return *clients[raw(node) - catalog.numServers()];
  }

  void finalizeAccounting(SimTime now) {
    for (auto& s : servers) s->finalizeAccounting(now);
  }

  void quiesce() {
    for (auto& s : servers) s->quiesce();
  }
};

}  // namespace vlease::proto
