#include "proto/client_cache.h"

#include <algorithm>

namespace vlease::proto {

void ClientCache::unlink(std::uint32_t s) {
  Slot& slot = pool_[s];
  if (slot.prev != kNil) pool_[slot.prev].next = slot.next;
  if (slot.next != kNil) pool_[slot.next].prev = slot.prev;
  if (lruHead_ == s) lruHead_ = slot.next;
  if (lruTail_ == s) lruTail_ = slot.prev;
  slot.prev = kNil;
  slot.next = kNil;
}

void ClientCache::linkFront(std::uint32_t s) {
  Slot& slot = pool_[s];
  slot.prev = kNil;
  slot.next = lruHead_;
  if (lruHead_ != kNil) pool_[lruHead_].prev = s;
  lruHead_ = s;
  if (lruTail_ == kNil) lruTail_ = s;
}

CacheEntry& ClientCache::entry(ObjectId obj) {
  auto it = map_.find(obj);
  if (it != map_.end()) {
    moveToFront(it->second);
    return pool_[it->second].entry;
  }
  std::uint32_t s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
    pool_[s].entry = CacheEntry{};
  } else {
    s = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  pool_[s].obj = obj;
  linkFront(s);
  map_.emplace(obj, s);
  if (capacity_ > 0 && map_.size() > capacity_) {
    // Evict the least recently used entry (never the one just added:
    // it sits at the front and capacity_ >= 1).
    const std::uint32_t victim = lruTail_;
    unlink(victim);
    map_.erase(pool_[victim].obj);
    free_.push_back(victim);
    ++evictions_;
  }
  return pool_[s].entry;
}

void ClientCache::touch(ObjectId obj) {
  auto it = map_.find(obj);
  if (it != map_.end()) moveToFront(it->second);
}

PendingReads::Token PendingReads::add(ObjectId obj, SimDuration timeout,
                                      ReadCallback onResolve) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Op& op = pool_[slot];
  op.obj = obj;
  op.cb = std::move(onResolve);
  op.prev = kNil;
  op.next = kNil;
  op.inLive = true;
  op.active = true;
  const Token token = makeToken(slot, op.gen);
  // Deadline lane: the timeout is a give-up bound that the response
  // almost always cancels first.
  op.timer = scheduler_.scheduleDeadlineAfter(timeout, [this, token]() {
    ReadResult failed;
    failed.ok = false;
    resolveOne(token, failed);
  });

  if (liveTail_ == kNil) {
    liveHead_ = slot;
  } else {
    pool_[liveTail_].next = slot;
    op.prev = liveTail_;
  }
  liveTail_ = slot;
  ++size_;
  return token;
}

PendingReads::Op* PendingReads::lookup(Token token) {
  const std::uint32_t slot = static_cast<std::uint32_t>(token);
  const std::uint32_t gen = static_cast<std::uint32_t>(token >> 32);
  if (slot >= pool_.size()) return nullptr;
  Op& op = pool_[slot];
  if (!op.active || op.gen != gen) return nullptr;
  return &op;
}

void PendingReads::finish(std::uint32_t slot, const ReadResult& result) {
  Op& op = pool_[slot];
  if (op.inLive) {
    unlink(slot);
    op.inLive = false;
  }
  op.timer.cancel();
  ReadCallback cb = std::move(op.cb);
  op.cb = nullptr;
  op.active = false;
  ++op.gen;
  free_.push_back(slot);
  --size_;
  cb(result);
}

void PendingReads::unlink(std::uint32_t slot) {
  Op& op = pool_[slot];
  if (op.prev != kNil) pool_[op.prev].next = op.next;
  if (op.next != kNil) pool_[op.next].prev = op.prev;
  if (liveHead_ == slot) liveHead_ = op.next;
  if (liveTail_ == slot) liveTail_ = op.prev;
  op.prev = kNil;
  op.next = kNil;
}

void PendingReads::resolveAll(ObjectId obj, const ReadResult& result) {
  // Detach first: callbacks may issue new reads on the same object,
  // which join the live list fresh (and are not visited: the snapshot
  // below is taken before any callback runs). Snapshot tokens (not
  // slots) so an op resolved out from under us mid-loop -- and its
  // possibly recycled slot -- is skipped by the generation check.
  std::vector<Token> tokens = std::move(resolveScratch_);
  tokens.clear();
  for (std::uint32_t s = liveHead_; s != kNil;) {
    const std::uint32_t next = pool_[s].next;
    if (pool_[s].obj == obj) {
      tokens.push_back(makeToken(s, pool_[s].gen));
      unlink(s);
      pool_[s].inLive = false;
    }
    s = next;
  }
  for (Token token : tokens) {
    Op* op = lookup(token);
    if (op == nullptr) continue;
    finish(static_cast<std::uint32_t>(token), result);
  }
  tokens.clear();
  resolveScratch_ = std::move(tokens);
}

std::vector<PendingReads::Token> PendingReads::tokensFor(ObjectId obj) const {
  std::vector<Token> out;
  for (std::uint32_t s = liveHead_; s != kNil; s = pool_[s].next) {
    if (pool_[s].obj == obj) out.push_back(makeToken(s, pool_[s].gen));
  }
  return out;
}

void PendingReads::resolveOne(Token token, const ReadResult& result) {
  if (lookup(token) == nullptr) return;
  finish(static_cast<std::uint32_t>(token), result);
}

}  // namespace vlease::proto
