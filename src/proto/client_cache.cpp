#include "proto/client_cache.h"

#include <algorithm>

namespace vlease::proto {

void ClientCache::moveToFront(Slot& slot, ObjectId obj) {
  lru_.erase(slot.lruIt);
  lru_.push_front(obj);
  slot.lruIt = lru_.begin();
}

CacheEntry& ClientCache::entry(ObjectId obj) {
  auto it = map_.find(obj);
  if (it != map_.end()) {
    moveToFront(it->second, obj);
    return it->second.entry;
  }
  lru_.push_front(obj);
  auto [newIt, inserted] = map_.emplace(obj, Slot{CacheEntry{}, lru_.begin()});
  VL_DCHECK(inserted);
  if (capacity_ > 0 && map_.size() > capacity_) {
    // Evict the least recently used entry (never the one just added:
    // it sits at the front and capacity_ >= 1).
    const ObjectId victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++evictions_;
  }
  return newIt->second.entry;
}

void ClientCache::touch(ObjectId obj) {
  auto it = map_.find(obj);
  if (it != map_.end()) moveToFront(it->second, obj);
}

PendingReads::Token PendingReads::add(ObjectId obj, SimDuration timeout,
                                      ReadCallback onResolve) {
  Token token = nextToken_++;
  Op op;
  op.obj = obj;
  op.cb = std::move(onResolve);
  op.timer = scheduler_.scheduleAfter(timeout, [this, token]() {
    ReadResult failed;
    failed.ok = false;
    resolveOne(token, failed);
  });
  ops_.emplace(token, std::move(op));
  byObject_[obj].push_back(token);
  return token;
}

void PendingReads::resolveAll(ObjectId obj, const ReadResult& result) {
  auto it = byObject_.find(obj);
  if (it == byObject_.end()) return;
  // Detach first: callbacks may issue new reads on the same object.
  std::vector<Token> tokens = std::move(it->second);
  byObject_.erase(it);
  for (Token token : tokens) {
    auto opIt = ops_.find(token);
    if (opIt == ops_.end()) continue;
    Op op = std::move(opIt->second);
    ops_.erase(opIt);
    op.timer.cancel();
    op.cb(result);
  }
}

std::vector<PendingReads::Token> PendingReads::tokensFor(ObjectId obj) const {
  auto it = byObject_.find(obj);
  return it == byObject_.end() ? std::vector<Token>{} : it->second;
}

void PendingReads::resolveOne(Token token, const ReadResult& result) {
  auto opIt = ops_.find(token);
  if (opIt == ops_.end()) return;
  Op op = std::move(opIt->second);
  ops_.erase(opIt);
  auto listIt = byObject_.find(op.obj);
  if (listIt != byObject_.end()) {
    auto& list = listIt->second;
    list.erase(std::remove(list.begin(), list.end(), token), list.end());
    if (list.empty()) byObject_.erase(listIt);
  }
  op.timer.cancel();
  op.cb(result);
}

}  // namespace vlease::proto
