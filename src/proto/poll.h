// Client-driven baselines (paper §2.1-2.2).
//
// Poll(t): before using a cached object the client checks whether it
// validated it within the last t seconds; if so it reads locally
// (possibly serving stale data -- the weak-consistency cost the paper
// quantifies), otherwise it sends an if-modified-since PollRequest.
// Poll Each Read is Poll(0): every read validates.
//
// PollAdaptive is Gwertzman-Seltzer's adaptive TTL (paper §2.2): the
// validity window scales with the object's age at validation time
// (adaptiveFactor x age, clamped), so stable objects are polled rarely
// and recently changed ones often.
//
// The server is stateless and writes never wait or send messages.
#pragma once

#include <unordered_map>

#include "proto/client_cache.h"
#include "proto/protocol.h"

namespace vlease::proto {

class PollServer final : public ServerNode {
 public:
  PollServer(ProtocolContext& ctx, NodeId id, const ProtocolConfig& config)
      : ServerNode(ctx, id), config_(config) {}

  void write(ObjectId obj, WriteCallback cb) override;
  Version currentVersion(ObjectId obj) const override;
  void deliver(const net::Message& msg) override;

 private:
  struct ObjState {
    Version version = 1;
    SimTime modifiedAt = 0;  // last-write time (HTTP Last-Modified)
  };
  ObjState& state(ObjectId obj);

  const ProtocolConfig config_;
  std::unordered_map<ObjectId, ObjState> objects_;
};

class PollClient final : public ClientNode {
 public:
  PollClient(ProtocolContext& ctx, NodeId id, const ProtocolConfig& config)
      : ClientNode(ctx, id),
        config_(config),
        cache_(config.clientCacheCapacity),
        pending_(ctx.scheduler) {}

  void read(ObjectId obj, ReadCallback cb) override;
  void dropCache() override { cache_.clear(); }
  void deliver(const net::Message& msg) override;
  CacheView cacheView(ObjectId obj, SimTime now) const override {
    const CacheEntry* entry = cache_.find(obj);
    if (entry == nullptr || !entry->valid(now)) return {};
    return {true, entry->version};
  }

 private:
  const ProtocolConfig config_;
  ClientCache cache_;
  PendingReads pending_;
};

}  // namespace vlease::proto
