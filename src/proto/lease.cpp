#include "proto/lease.h"

#include <algorithm>

#include "util/check.h"

namespace vlease::proto {

// ---- server ----

LeaseServer::ObjState& LeaseServer::state(ObjectId obj) {
  return objects_[obj];
}

Version LeaseServer::currentVersion(ObjectId obj) const {
  auto it = objects_.find(obj);
  return it == objects_.end() ? 1 : it->second.version;
}

std::size_t LeaseServer::validHolderCount(ObjectId obj) const {
  auto it = objects_.find(obj);
  if (it == objects_.end()) return 0;
  const SimTime now = ctx_.scheduler.now();
  std::size_t n = 0;
  for (const auto& [client, record] : it->second.holders) {
    if (record.expire > now) ++n;
  }
  return n;
}

void LeaseServer::removeHolder(ObjState& st, NodeId client) {
  auto it = st.holders.find(client);
  if (it == st.holders.end()) return;
  stats::accrueRecord(ctx_.metrics, id(), it->second.lastAccounted,
                      it->second.expire, ctx_.scheduler.now());
  st.holders.erase(it);
}

void LeaseServer::handleLeaseRequest(const net::Message& msg) {
  const auto& req = std::get<net::ReqObjLease>(msg.payload);
  auto pendingIt = pendingWrites_.find(req.obj);
  if (pendingIt != pendingWrites_.end()) {
    // A write is in flight: defer the grant until it commits so we never
    // lease out a version that is about to change.
    pendingIt->second.deferredRequests.push_back(msg);
    return;
  }
  const SimTime now = ctx_.scheduler.now();
  ObjState& st = state(req.obj);
  auto [it, inserted] = st.holders.try_emplace(
      msg.from, LeaseRecord{kSimTimeMin, now});
  if (!inserted) {
    // Renewal: settle the old record's accounting first.
    stats::accrueRecord(ctx_.metrics, id(), it->second.lastAccounted,
                        it->second.expire, now);
  }
  it->second.expire = addSat(now, leaseLength());
  it->second.lastAccounted = now;
  st.expire = std::max(st.expire, it->second.expire);

  const bool changed = st.version != req.haveVersion;
  ctx_.transport.send(net::Message{
      id(), msg.from,
      net::ObjLeaseGrant{req.obj, st.version, it->second.expire, changed,
                         changed ? ctx_.catalog.object(req.obj).sizeBytes
                                 : 0}});
}

void LeaseServer::write(ObjectId obj, WriteCallback cb) {
  writeInternal(obj, std::move(cb), ctx_.scheduler.now());
}

void LeaseServer::writeInternal(ObjectId obj, WriteCallback cb,
                                SimTime requestedAt) {
  const SimTime now = ctx_.scheduler.now();
  if (now < recoveryUntil_) {
    // Post-crash: all lease state was lost, so wait until any lease we
    // might have granted has provably expired before mutating data.
    // Re-checked every time the delayed write fires -- a second crash
    // during recovery pushes the write out again.
    ctx_.scheduler.scheduleDeadline(
        recoveryUntil_, [this, obj, cb = std::move(cb), requestedAt]() mutable {
          writeInternal(obj, std::move(cb), requestedAt);
        });
    return;
  }
  auto pendingIt = pendingWrites_.find(obj);
  if (pendingIt != pendingWrites_.end()) {
    // Serialize writes to one object: run after the in-flight one.
    pendingIt->second.queuedWrites.push_back(std::move(cb));
    (void)requestedAt;  // queued writes restart their clock at dequeue
    return;
  }
  startWrite(obj, std::move(cb), requestedAt);
}

void LeaseServer::startWrite(ObjectId obj, WriteCallback cb,
                             SimTime requestedAt) {
  const SimTime now = ctx_.scheduler.now();
  ObjState& st = state(obj);

  std::vector<NodeId> targets;
  for (const auto& [client, record] : st.holders) {
    if (graceExpire(record.expire) > now) targets.push_back(client);
  }

  if (mode_ == LeaseMode::kBestEffort) {
    // Fire-and-forget: notify everyone, drop their records (the server
    // assumes delivery), commit immediately. A client that missed the
    // invalidation can read stale data until its lease expires. With
    // Liu-Cao retries configured, keep retransmitting until the client
    // acknowledges or the budget runs out.
    for (NodeId c : targets) {
      ctx_.transport.send(net::Message{id(), c, net::Invalidate{obj}});
      removeHolder(st, c);
      if (config_.bestEffortRetries > 0) {
        scheduleRetry(obj, c, config_.bestEffortRetries);
      }
    }
    ++st.version;
    ctx_.metrics.onWrite(now - requestedAt, false);
    if (cb) cb(WriteResult{now - requestedAt, false, st.version});
    return;
  }

  if (targets.empty()) {
    ++st.version;
    ctx_.metrics.onWrite(now - requestedAt, false);
    if (cb) cb(WriteResult{now - requestedAt, false, st.version});
    return;
  }

  if (mode_ == LeaseMode::kLease && config_.writeByLeaseExpiry) {
    // Invalidate-by-waiting: send nothing; commit when every lease on
    // the object has drained. Still strongly consistent -- clients keep
    // reading the OLD version until the write commits.
    PendingWrite pw;
    pw.cb = std::move(cb);
    pw.startedAt = requestedAt;
    auto [it, inserted] = pendingWrites_.emplace(obj, std::move(pw));
    VL_CHECK(inserted);
    it->second.timer = ctx_.scheduler.scheduleDeadline(
        std::max(graceExpire(st.expire), now),
        [this, obj]() { commitWrite(obj, /*viaTimeout=*/true); });
    return;
  }

  PendingWrite pw;
  pw.cb = std::move(cb);
  pw.startedAt = requestedAt;
  pw.waiting.insert(targets.begin(), targets.end());
  for (NodeId c : targets) {
    ctx_.transport.send(net::Message{id(), c, net::Invalidate{obj}});
  }
  // Ack-wait bound T_f: lease expiry (Lease) with the msgTimeout floor;
  // Callback has no lease to wait out, so msgTimeout is the simulator's
  // force-complete bound for what the paper treats as an infinite wait.
  SimTime deadline =
      mode_ == LeaseMode::kCallback
          ? addSat(now, config_.msgTimeout)
          : std::max(graceExpire(st.expire), addSat(now, config_.msgTimeout));
  auto [it, inserted] = pendingWrites_.emplace(obj, std::move(pw));
  VL_CHECK(inserted);
  it->second.timer = ctx_.scheduler.scheduleDeadline(
      deadline, [this, obj]() { commitWrite(obj, /*viaTimeout=*/true); });
  // Zero-latency acks may already have arrived -- they cannot have,
  // actually: deliveries happen after this handler returns. The commit
  // always goes through deliver() or the timer.
}

void LeaseServer::commitWrite(ObjectId obj, bool viaTimeout) {
  auto it = pendingWrites_.find(obj);
  VL_CHECK(it != pendingWrites_.end());
  const SimTime now = ctx_.scheduler.now();
  PendingWrite& pw = it->second;
  pw.timer.cancel();

  ObjState& st = state(obj);
  const bool blocked =
      viaTimeout && mode_ == LeaseMode::kCallback && !pw.waiting.empty();
  if (mode_ == LeaseMode::kLease) {
    // Any client that never acked has, by construction of T_f, an
    // expired lease; drop its record.
    for (NodeId c : pw.waiting) removeHolder(st, c);
  }
  ++st.version;
  ctx_.metrics.onWrite(now - pw.startedAt, blocked);
  if (pw.cb) pw.cb(WriteResult{now - pw.startedAt, blocked, st.version});

  // Release deferred work. Move the queues out first: re-delivered
  // requests and queued writes mutate pendingWrites_.
  std::deque<net::Message> deferred = std::move(pw.deferredRequests);
  std::deque<WriteCallback> queued = std::move(pw.queuedWrites);
  pendingWrites_.erase(it);
  for (net::Message& m : deferred) handleLeaseRequest(m);
  if (!queued.empty()) {
    WriteCallback next = std::move(queued.front());
    queued.pop_front();
    startWrite(obj, std::move(next), now);
    if (!queued.empty()) {
      auto again = pendingWrites_.find(obj);
      if (again != pendingWrites_.end()) {
        for (auto& w : queued) again->second.queuedWrites.push_back(std::move(w));
      } else {
        // The next write committed synchronously (no valid holders);
        // drain the rest the same way.
        for (auto& w : queued) writeInternal(obj, std::move(w), now);
      }
    }
  }
}

void LeaseServer::scheduleRetry(ObjectId obj, NodeId client, int remaining) {
  auto key = std::make_pair(obj, client);
  auto existing = retries_.find(key);
  if (existing != retries_.end()) {
    // A newer write supersedes the outstanding retransmission chain;
    // reset its budget.
    existing->second.timer.cancel();
    retries_.erase(existing);
  }
  if (remaining <= 0) return;
  RetryState state;
  state.remaining = remaining;
  state.timer = ctx_.scheduler.scheduleDeadlineAfter(
      config_.retryInterval, [this, obj, client, remaining]() {
        retries_.erase(std::make_pair(obj, client));
        ctx_.transport.send(net::Message{id(), client, net::Invalidate{obj}});
        scheduleRetry(obj, client, remaining - 1);
      });
  retries_.emplace(key, std::move(state));
}

void LeaseServer::deliver(const net::Message& msg) {
  if (std::holds_alternative<net::ReqObjLease>(msg.payload)) {
    handleLeaseRequest(msg);
    return;
  }
  const auto* ack = std::get_if<net::AckInvalidate>(&msg.payload);
  VL_CHECK_MSG(ack != nullptr, "LeaseServer: unexpected message type");
  if (mode_ == LeaseMode::kBestEffort) {
    // Liu-Cao ack: stop retransmitting to this client.
    auto retryIt = retries_.find(std::make_pair(ack->obj, msg.from));
    if (retryIt != retries_.end()) {
      retryIt->second.timer.cancel();
      retries_.erase(retryIt);
    }
    return;
  }
  auto it = pendingWrites_.find(ack->obj);
  if (it == pendingWrites_.end()) return;  // late/duplicate ack
  PendingWrite& pw = it->second;
  if (pw.waiting.erase(msg.from) == 0) return;
  ObjState& st = state(ack->obj);
  removeHolder(st, msg.from);  // the client dropped its copy
  if (pw.waiting.empty()) commitWrite(ack->obj, /*viaTimeout=*/false);
}

void LeaseServer::crashAndReboot() {
  // A reboot loses all lease state; versions live with the data on
  // stable storage. Lease (and BestEffort) then delay writes for one
  // full lease length (Gray & Cheriton's recovery rule). Callback has no
  // such bound: its consistency is genuinely broken by a crash.
  const SimTime now = ctx_.scheduler.now();
  if (mode_ != LeaseMode::kCallback) {
    recoveryUntil_ = graceExpire(addSat(now, config_.objectTimeout));
  }
  for (auto& [obj, st] : objects_) {
    for (auto& [client, record] : st.holders) {
      stats::accrueRecord(ctx_.metrics, id(), record.lastAccounted,
                          record.expire, now);
    }
    st.holders.clear();
    st.expire = kSimTimeMin;
  }
  for (auto& [obj, pw] : pendingWrites_) {
    pw.timer.cancel();
    ctx_.metrics.onWrite(now - pw.startedAt, /*blocked=*/true);
    if (pw.cb) pw.cb(WriteResult{now - pw.startedAt, true, state(obj).version});
  }
  pendingWrites_.clear();
  for (auto& [key, retry] : retries_) retry.timer.cancel();
  retries_.clear();
}

void LeaseServer::finalizeAccounting(SimTime now) {
  for (auto& [obj, st] : objects_) {
    for (auto& [client, record] : st.holders) {
      stats::accrueRecord(ctx_.metrics, id(), record.lastAccounted,
                          record.expire, now);
    }
  }
}

// ---- client ----

void LeaseClient::read(ObjectId obj, ReadCallback cb) {
  const SimTime now = ctx_.scheduler.now();
  const CacheEntry* entry = cache_.find(obj);
  if (entry != nullptr && entry->valid(leaseGuard(now))) {
    cache_.touch(obj);
    ReadResult result;
    result.ok = true;
    result.usedNetwork = false;
    result.fetchedData = false;
    result.version = entry->version;
    cb(result);
    return;
  }
  const bool alreadyAsking = pending_.waitingOn(obj);
  pending_.add(obj, config_.readTimeout, std::move(cb));
  if (!alreadyAsking) {
    const Version have = entry != nullptr && entry->hasData ? entry->version
                                                            : kNoVersion;
    ctx_.transport.send(net::Message{id(), ctx_.serverOf(obj),
                                     net::ReqObjLease{obj, have}});
  }
}

void LeaseClient::deliver(const net::Message& msg) {
  if (const auto* grant = std::get_if<net::ObjLeaseGrant>(&msg.payload)) {
    CacheEntry& entry = cache_.entry(grant->obj);
    entry.version = grant->version;
    if (grant->carriesData) entry.hasData = true;
    entry.validUntil = grant->expire;
    entry.lastValidated = ctx_.scheduler.now();

    ReadResult result;
    result.ok = entry.hasData;
    result.usedNetwork = true;
    result.fetchedData = grant->carriesData;
    result.version = grant->version;
    pending_.resolveAll(grant->obj, result);
    return;
  }
  const auto* inval = std::get_if<net::Invalidate>(&msg.payload);
  VL_CHECK_MSG(inval != nullptr, "LeaseClient: unexpected message type");
  if (!config_.faultInjectIgnoreInvalidations) {
    cache_.entry(inval->obj).invalidate();
  }
  if (mode_ != LeaseMode::kBestEffort || config_.bestEffortRetries > 0) {
    ctx_.transport.send(
        net::Message{id(), msg.from, net::AckInvalidate{inval->obj}});
  }
}

}  // namespace vlease::proto
