// Server-driven baselines (paper §2.3-2.4): Callback, Lease, and the
// conclusion's Best Effort Lease, as one parameterized implementation.
//
//   * Lease(t): clients hold object leases of length t; before writing,
//     the server invalidates every valid lease holder and waits for acks
//     or lease expiry (Gray & Cheriton).
//   * Callback: the degenerate never-expiring lease. Writes want to wait
//     indefinitely for unreachable clients; the simulator force-commits
//     after msgTimeout and flags the write as blocked (see
//     WriteResult::blocked) so traces can continue.
//   * BestEffortLease(t): invalidations are fire-and-forget -- writes
//     never wait and clients do not ack. An unreachable client can read
//     stale data until its lease expires (staleness bounded by t).
//
// Grant requests arriving while a write to the same object is in flight
// are deferred until the write commits, so a lease is never granted on a
// version about to be replaced.
#pragma once

#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "proto/client_cache.h"
#include "proto/protocol.h"

namespace vlease::proto {

enum class LeaseMode { kLease, kCallback, kBestEffort };

class LeaseServer final : public ServerNode {
 public:
  LeaseServer(ProtocolContext& ctx, NodeId id, const ProtocolConfig& config,
              LeaseMode mode)
      : ServerNode(ctx, id), config_(config), mode_(mode) {}

  void write(ObjectId obj, WriteCallback cb) override;
  Version currentVersion(ObjectId obj) const override;
  void deliver(const net::Message& msg) override;
  void crashAndReboot() override;
  void finalizeAccounting(SimTime now) override;

  /// Valid lease holders right now (test hook).
  std::size_t validHolderCount(ObjectId obj) const;

 private:
  struct LeaseRecord {
    SimTime expire;
    SimTime lastAccounted;
  };
  struct ObjState {
    Version version = 1;
    /// Aggregate "time by which all current leases will have expired".
    SimTime expire = kSimTimeMin;
    std::unordered_map<NodeId, LeaseRecord> holders;
  };
  struct PendingWrite {
    WriteCallback cb;
    SimTime startedAt = 0;
    std::unordered_set<NodeId> waiting;
    sim::TimerHandle timer;
    std::deque<net::Message> deferredRequests;
    std::deque<WriteCallback> queuedWrites;
  };

  ObjState& state(ObjectId obj);
  SimTime leaseLength() const {
    return mode_ == LeaseMode::kCallback ? kNever : config_.objectTimeout;
  }
  /// Server-conservative expiry: for write-blocking decisions a lease
  /// counts as possibly live until expire + epsilon, covering holders
  /// whose clocks run up to epsilon slow (ProtocolConfig::clockEpsilon).
  SimTime graceExpire(SimTime expire) const {
    return addSat(expire, config_.clockEpsilon);
  }
  void handleLeaseRequest(const net::Message& msg);
  void writeInternal(ObjectId obj, WriteCallback cb, SimTime requestedAt);
  void startWrite(ObjectId obj, WriteCallback cb, SimTime requestedAt);
  void commitWrite(ObjectId obj, bool viaTimeout);
  void removeHolder(ObjState& st, NodeId client);

  /// Liu-Cao retransmission state (BestEffort with retries): one entry
  /// per unacknowledged invalidation.
  struct RetryState {
    int remaining;
    sim::TimerHandle timer;
  };
  void scheduleRetry(ObjectId obj, NodeId client, int remaining);

  const ProtocolConfig config_;
  const LeaseMode mode_;
  std::unordered_map<ObjectId, ObjState> objects_;
  std::unordered_map<ObjectId, PendingWrite> pendingWrites_;
  std::map<std::pair<ObjectId, NodeId>, RetryState> retries_;
  /// Gray & Cheriton's recovery rule: after a reboot (lease state lost)
  /// the server must not write until every lease it could have granted
  /// has expired. Callback has no such bound -- a crash genuinely breaks
  /// its consistency, which the paper counts against it.
  SimTime recoveryUntil_ = kSimTimeMin;
};

class LeaseClient final : public ClientNode {
 public:
  LeaseClient(ProtocolContext& ctx, NodeId id, const ProtocolConfig& config,
              LeaseMode mode)
      : ClientNode(ctx, id),
        config_(config),
        mode_(mode),
        cache_(config.clientCacheCapacity),
        pending_(ctx.scheduler) {}

  void read(ObjectId obj, ReadCallback cb) override;
  void dropCache() override { cache_.clear(); }
  void deliver(const net::Message& msg) override;
  CacheView cacheView(ObjectId obj, SimTime now) const override {
    const CacheEntry* entry = cache_.find(obj);
    if (entry == nullptr || !entry->valid(leaseGuard(now))) return {};
    return {true, entry->version};
  }

  const ClientCache& cache() const { return cache_; }

 private:
  /// Client-conservative expiry clock: validity is evaluated against
  /// this client's own (possibly skewed) reading of `globalNow` plus
  /// epsilon, so a lease dies epsilon early on the local clock.
  SimTime leaseGuard(SimTime globalNow) const {
    return addSat(localTime(globalNow), config_.clockEpsilon);
  }

  const ProtocolConfig config_;
  const LeaseMode mode_;
  ClientCache cache_;
  PendingReads pending_;
};

}  // namespace vlease::proto
