#include "proto/protocol.h"

namespace vlease::proto {

const char* algorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPollEachRead:
      return "PollEachRead";
    case Algorithm::kPoll:
      return "Poll";
    case Algorithm::kPollAdaptive:
      return "PollAdaptive";
    case Algorithm::kCallback:
      return "Callback";
    case Algorithm::kLease:
      return "Lease";
    case Algorithm::kBestEffortLease:
      return "BestEffortLease";
    case Algorithm::kVolumeLease:
      return "VolumeLease";
    case Algorithm::kVolumeDelayedInval:
      return "VolumeDelayedInval";
  }
  return "?";
}

}  // namespace vlease::proto
