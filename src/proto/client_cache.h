// Client-side cache bookkeeping shared by all algorithms, plus the
// pending-read table that matches asynchronous replies (and timeouts)
// back to outstanding read() calls.
//
// The paper assumes infinitely large client caches (§4.1); we do the
// same -- entries are only removed by invalidation or dropCache().
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "proto/protocol.h"
#include "sim/scheduler.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::proto {

struct CacheEntry {
  Version version = kNoVersion;  // kNoVersion: no copy cached
  bool hasData = false;
  /// Whether the most recent object-lease grant for this entry carried
  /// data (vs. a version-check-only renewal). The volume client clears
  /// it when a read starts missing and reports it in the read result;
  /// keeping it in the entry bounds its lifetime to the cache's
  /// (a side table keyed by object would grow without bound).
  /// invalidate() leaves it alone: it describes the last grant, not the
  /// current copy.
  bool lastGrantCarriedData = false;
  /// Lease/validity horizon: object lease expiry (lease algorithms),
  /// lastValidated + t (Poll), kNever (Callback registration).
  SimTime validUntil = kSimTimeMin;
  /// When the entry was last validated against the server.
  SimTime lastValidated = kSimTimeMin;

  bool valid(SimTime now) const { return hasData && validUntil > now; }

  void invalidate() {
    hasData = false;
    version = kNoVersion;
    validUntil = kSimTimeMin;
  }
};

/// Per-client object cache. capacity == 0 reproduces the paper's
/// infinitely large caches (§4.1); a nonzero capacity bounds the number
/// of entries with LRU eviction -- entry() and touch() refresh recency,
/// and inserting beyond capacity evicts the least recently used entry
/// (leases on evicted objects are simply forgotten; the server's record
/// expires or is acked away on the next invalidation).
///
/// Entries live in a recycled slot pool with the LRU list threaded
/// intrusively through the slots, so the hit path (find + touch) never
/// touches the heap. The key index stays a std::unordered_map: its
/// iteration order is what forEach exposes, and the reconnection
/// exchange (-> message order -> loss-roll consumption) makes that
/// order observable, so it must not change.
class ClientCache {
 public:
  explicit ClientCache(std::size_t capacity = 0) : capacity_(capacity) {}

  CacheEntry& entry(ObjectId obj);

  const CacheEntry* find(ObjectId obj) const {
    auto it = map_.find(obj);
    return it == map_.end() ? nullptr : &pool_[it->second].entry;
  }

  /// Like find(), but mutable and WITHOUT refreshing LRU recency (for
  /// bookkeeping writes such as clearing lastGrantCarriedData that must
  /// not count as a use of the entry).
  CacheEntry* findMutable(ObjectId obj) {
    auto it = map_.find(obj);
    return it == map_.end() ? nullptr : &pool_[it->second].entry;
  }

  /// Refresh LRU recency (cache-hit path).
  void touch(ObjectId obj);

  void clear() {
    map_.clear();
    pool_.clear();
    free_.clear();
    lruHead_ = kNil;
    lruTail_ = kNil;
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t evictions() const { return evictions_; }

  /// Visit every (id, entry) pair (reconnection enumerates the cache).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [obj, slot] : map_) fn(obj, pool_[slot].entry);
  }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    CacheEntry entry;
    ObjectId obj{};
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void unlink(std::uint32_t s);
  void linkFront(std::uint32_t s);
  void moveToFront(std::uint32_t s) {
    if (lruHead_ == s) return;
    unlink(s);
    linkFront(s);
  }

  std::size_t capacity_;
  std::int64_t evictions_ = 0;
  std::unordered_map<ObjectId, std::uint32_t> map_;
  std::vector<Slot> pool_;
  std::vector<std::uint32_t> free_;
  std::uint32_t lruHead_ = kNil;  // most recently used
  std::uint32_t lruTail_ = kNil;  // least recently used
};

/// Table of outstanding read() operations. Replies resolve every op
/// waiting on the object; a per-op timer resolves stragglers as failed.
/// Reentrancy-safe: callbacks may issue new reads.
///
/// Storage is a recycled slot pool: each op lives in a stable slot,
/// tokens are (generation << 32) | slot so a recycled slot invalidates
/// outstanding tokens, and live ops form ONE intrusive FIFO list in
/// arrival order -- per-object lookups filter it, which is O(live ops)
/// but live ops per client are a handful, and dropping the old dense
/// per-object head/tail arrays (2 x 4 bytes x catalog objects PER
/// CLIENT) is what the million-client RSS budget needs. Per-object
/// FIFO order is unchanged: a filtered scan of a global FIFO preserves
/// relative order. Steady-state add/resolve cycles never touch the
/// heap.
class PendingReads {
 public:
  using Token = std::uint64_t;

  explicit PendingReads(sim::Scheduler& scheduler) : scheduler_(scheduler) {}

  /// Register an op waiting on `obj`; fails it after `timeout`.
  /// `onResolve(result)` runs exactly once.
  Token add(ObjectId obj, SimDuration timeout, ReadCallback onResolve);

  /// Is anything waiting on this object?
  bool waitingOn(ObjectId obj) const {
    for (std::uint32_t s = liveHead_; s != kNil; s = pool_[s].next) {
      if (pool_[s].obj == obj) return true;
    }
    return false;
  }

  /// Resolve every op waiting on `obj` with `result`, oldest first.
  void resolveAll(ObjectId obj, const ReadResult& result);

  /// Tokens waiting on `obj` (for callers that must re-examine each op
  /// individually), oldest first.
  std::vector<Token> tokensFor(ObjectId obj) const;

  /// Resolve a specific op (no-op if already resolved).
  void resolveOne(Token token, const ReadResult& result);

  std::size_t size() const { return size_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Op {
    ReadCallback cb;
    sim::TimerHandle timer;
    ObjectId obj{};
    std::uint32_t gen = 0;  // bumped on release; stale tokens miss
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    /// On the object's live list (false once resolveAll detaches it).
    bool inLive = false;
    bool active = false;
  };

  static Token makeToken(std::uint32_t slot, std::uint32_t gen) {
    return (static_cast<Token>(gen) << 32) | slot;
  }
  Op* lookup(Token token);
  /// Remove a slot from the global live list.
  void unlink(std::uint32_t slot);
  /// Unlink (if live), release the slot, cancel the timer, run the
  /// callback. The slot is recycled BEFORE the callback runs, so
  /// reentrant add() calls can reuse it (mirrors the erase-then-call
  /// order of the original map-based table).
  void finish(std::uint32_t slot, const ReadResult& result);

  sim::Scheduler& scheduler_;
  std::vector<Op> pool_;
  std::vector<std::uint32_t> free_;
  /// Global live-op FIFO (arrival order), filtered by object on lookup.
  std::uint32_t liveHead_ = kNil;
  std::uint32_t liveTail_ = kNil;
  std::vector<Token> resolveScratch_;
  std::size_t size_ = 0;
};

}  // namespace vlease::proto
