// Client-side cache bookkeeping shared by all algorithms, plus the
// pending-read table that matches asynchronous replies (and timeouts)
// back to outstanding read() calls.
//
// The paper assumes infinitely large client caches (§4.1); we do the
// same -- entries are only removed by invalidation or dropCache().
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "proto/protocol.h"
#include "sim/scheduler.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::proto {

struct CacheEntry {
  Version version = kNoVersion;  // kNoVersion: no copy cached
  bool hasData = false;
  /// Lease/validity horizon: object lease expiry (lease algorithms),
  /// lastValidated + t (Poll), kNever (Callback registration).
  SimTime validUntil = kSimTimeMin;
  /// When the entry was last validated against the server.
  SimTime lastValidated = kSimTimeMin;

  bool valid(SimTime now) const { return hasData && validUntil > now; }

  void invalidate() {
    hasData = false;
    version = kNoVersion;
    validUntil = kSimTimeMin;
  }
};

/// Per-client object cache. capacity == 0 reproduces the paper's
/// infinitely large caches (§4.1); a nonzero capacity bounds the number
/// of entries with LRU eviction -- entry() and touch() refresh recency,
/// and inserting beyond capacity evicts the least recently used entry
/// (leases on evicted objects are simply forgotten; the server's record
/// expires or is acked away on the next invalidation).
class ClientCache {
 public:
  explicit ClientCache(std::size_t capacity = 0) : capacity_(capacity) {}

  CacheEntry& entry(ObjectId obj);

  const CacheEntry* find(ObjectId obj) const {
    auto it = map_.find(obj);
    return it == map_.end() ? nullptr : &it->second.entry;
  }

  /// Refresh LRU recency (cache-hit path).
  void touch(ObjectId obj);

  void clear() {
    map_.clear();
    lru_.clear();
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::int64_t evictions() const { return evictions_; }

  /// Visit every (id, entry) pair (reconnection enumerates the cache).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (const auto& [obj, slot] : map_) fn(obj, slot.entry);
  }

 private:
  struct Slot {
    CacheEntry entry;
    std::list<ObjectId>::iterator lruIt;
  };
  void moveToFront(Slot& slot, ObjectId obj);

  std::size_t capacity_;
  std::int64_t evictions_ = 0;
  std::unordered_map<ObjectId, Slot> map_;
  std::list<ObjectId> lru_;  // front = most recently used
};

/// Table of outstanding read() operations. Replies resolve every op
/// waiting on the object; a per-op timer resolves stragglers as failed.
/// Reentrancy-safe: callbacks may issue new reads.
class PendingReads {
 public:
  using Token = std::uint64_t;

  explicit PendingReads(sim::Scheduler& scheduler) : scheduler_(scheduler) {}

  /// Register an op waiting on `obj`; fails it after `timeout`.
  /// `onResolve(result)` runs exactly once.
  Token add(ObjectId obj, SimDuration timeout, ReadCallback onResolve);

  /// Is anything waiting on this object?
  bool waitingOn(ObjectId obj) const {
    auto it = byObject_.find(obj);
    return it != byObject_.end() && !it->second.empty();
  }

  /// Resolve every op waiting on `obj` with `result`.
  void resolveAll(ObjectId obj, const ReadResult& result);

  /// Tokens waiting on `obj` (for callers that must re-examine each op
  /// individually, e.g. the volume client's two-lease pump).
  std::vector<Token> tokensFor(ObjectId obj) const;

  /// Resolve a specific op (no-op if already resolved).
  void resolveOne(Token token, const ReadResult& result);

  std::size_t size() const { return ops_.size(); }

 private:
  struct Op {
    ObjectId obj;
    ReadCallback cb;
    sim::TimerHandle timer;
  };

  sim::Scheduler& scheduler_;
  Token nextToken_ = 1;
  std::unordered_map<Token, Op> ops_;
  std::unordered_map<ObjectId, std::vector<Token>> byObject_;
};

}  // namespace vlease::proto
