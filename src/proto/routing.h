// Volume -> server routing table (the federation layer's map).
//
// The catalog records each volume's *home* server -- a static fact of
// the workload. Online migration makes ownership dynamic: a Routing
// instance starts as a copy of the catalog assignment and is updated by
// the driver when a volume moves, so clients (and the oracle) always
// address the current owner instead of the home server. Endpoints reach
// it through ProtocolContext::serverOf(); a null routing pointer (the
// default, and what every single-server binding uses) falls back to the
// catalog assignment, byte-identical to the pre-federation behavior.
#pragma once

#include <vector>

#include "trace/catalog.h"
#include "util/check.h"
#include "util/ids.h"

namespace vlease::proto {

class Routing {
 public:
  explicit Routing(const trace::Catalog& catalog) { reset(catalog); }

  /// Re-derive the table from the catalog's static assignment (also
  /// picks up volumes added to the catalog after construction).
  void reset(const trace::Catalog& catalog) {
    table_.clear();
    table_.reserve(catalog.numVolumes());
    for (const auto& info : catalog.volumes()) table_.push_back(info.server);
  }

  NodeId serverOf(VolumeId vol) const {
    VL_DCHECK(raw(vol) < table_.size());
    return table_[raw(vol)];
  }

  void setServerOf(VolumeId vol, NodeId server) {
    VL_DCHECK(raw(vol) < table_.size());
    table_[raw(vol)] = server;
  }

  std::size_t numVolumes() const { return table_.size(); }

 private:
  std::vector<NodeId> table_;  // by raw(VolumeId)
};

}  // namespace vlease::proto
