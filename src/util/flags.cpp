#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace vlease {

void Flags::addString(const std::string& name, std::string defaultValue,
                      const std::string& help) {
  specs_[name] = Spec{Type::kString, std::move(defaultValue), help};
}

void Flags::addInt(const std::string& name, std::int64_t defaultValue,
                   const std::string& help) {
  specs_[name] = Spec{Type::kInt, std::to_string(defaultValue), help};
}

void Flags::addDouble(const std::string& name, double defaultValue,
                      const std::string& help) {
  std::ostringstream os;
  os << defaultValue;
  specs_[name] = Spec{Type::kDouble, os.str(), help};
}

void Flags::addBool(const std::string& name, bool defaultValue,
                    const std::string& help) {
  specs_[name] = Spec{Type::kBool, defaultValue ? "true" : "false", help};
}

bool Flags::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name, value;
    bool haveValue = false;
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(2, eq - 2);
      value = arg.substr(eq + 1);
      haveValue = true;
    } else {
      name = arg.substr(2);
    }
    auto it = specs_.find(name);
    if (it == specs_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    if (!haveValue) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag --%s requires a value\n", name.c_str());
        return false;
      }
    }
    it->second.value = value;
  }
  return true;
}

const Flags::Spec* Flags::find(const std::string& name, Type type) const {
  auto it = specs_.find(name);
  VL_CHECK_MSG(it != specs_.end(), name.c_str());
  VL_CHECK_MSG(it->second.type == type, "flag accessed with wrong type");
  return &it->second;
}

std::string Flags::getString(const std::string& name) const {
  return find(name, Type::kString)->value;
}

std::int64_t Flags::getInt(const std::string& name) const {
  return std::strtoll(find(name, Type::kInt)->value.c_str(), nullptr, 10);
}

double Flags::getDouble(const std::string& name) const {
  return std::strtod(find(name, Type::kDouble)->value.c_str(), nullptr);
}

bool Flags::getBool(const std::string& name) const {
  const std::string& v = find(name, Type::kBool)->value;
  return v == "true" || v == "1" || v == "yes";
}

std::string Flags::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name << " (default: " << spec.value << ")  " << spec.help
       << "\n";
  }
  return os.str();
}

}  // namespace vlease
