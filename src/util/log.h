// Leveled logging. Off by default above kWarn so simulation hot paths
// stay quiet; examples turn on kInfo to narrate protocol activity.
//
// Thread safety: the level is atomic and each line is emitted under a
// mutex, so interleaved parallel sweep runs never tear lines. A worker
// running one sweep point installs a LogContext; every line it logs is
// then prefixed with the point's label so parallel output stays
// attributable.
#pragma once

#include <sstream>
#include <string>

namespace vlease {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Scoped, thread-local log label. While alive, every log line emitted
/// from this thread carries "[label]" after the level. Nested contexts
/// restore the enclosing label on destruction.
class LogContext {
 public:
  explicit LogContext(std::string label);
  ~LogContext();

  LogContext(const LogContext&) = delete;
  LogContext& operator=(const LogContext&) = delete;

  /// The calling thread's current label ("" when none is installed).
  static const std::string& current();

 private:
  std::string previous_;
};

namespace detail {
void logLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogMessage() {
    if (enabled_) logLine(level_, stream_.str());
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogMessage logAt(LogLevel level) {
  return detail::LogMessage(level, level >= logLevel());
}

#define VL_LOG_DEBUG ::vlease::logAt(::vlease::LogLevel::kDebug)
#define VL_LOG_INFO ::vlease::logAt(::vlease::LogLevel::kInfo)
#define VL_LOG_WARN ::vlease::logAt(::vlease::LogLevel::kWarn)
#define VL_LOG_ERROR ::vlease::logAt(::vlease::LogLevel::kError)

}  // namespace vlease
