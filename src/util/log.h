// Leveled logging. Off by default above kWarn so simulation hot paths
// stay quiet; examples turn on kInfo to narrate protocol activity.
//
// Thread safety: the level is atomic and each line is emitted under a
// mutex, so interleaved parallel sweep runs never tear lines. A worker
// running one sweep point installs a LogContext; every line it logs is
// then prefixed with the point's label so parallel output stays
// attributable.
#pragma once

#include <sstream>
#include <string>

namespace vlease {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Scoped, thread-local log label. While alive, every log line emitted
/// from this thread carries "[label]" after the level. Nested contexts
/// restore the enclosing label on destruction.
class LogContext {
 public:
  explicit LogContext(std::string label);
  ~LogContext();

  LogContext(const LogContext&) = delete;
  LogContext& operator=(const LogContext&) = delete;

  /// The calling thread's current label ("" when none is installed).
  static const std::string& current();

 private:
  std::string previous_;
};

namespace detail {
void logLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogMessage() {
    if (enabled_) logLine(level_, stream_.str());
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogMessage logAt(LogLevel level) {
  return detail::LogMessage(level, level >= logLevel());
}

namespace detail {
/// Swallows a finished stream chain; operator& binds looser than <<.
struct LogVoidify {
  void operator&(const LogMessage&) {}
};
}  // namespace detail

// Disabled levels short-circuit before the LogMessage (and, crucially,
// before the streamed operands) are even constructed: hot paths can log
// formatted state without paying a string allocation when the level is
// off. The ternary keeps the macro a single expression, safe in
// unbraced if/else.
#define VL_LOG_AT(level)                     \
  ((level) < ::vlease::logLevel())           \
      ? (void)0                              \
      : ::vlease::detail::LogVoidify() &     \
            ::vlease::detail::LogMessage(level, true)

#define VL_LOG_DEBUG VL_LOG_AT(::vlease::LogLevel::kDebug)
#define VL_LOG_INFO VL_LOG_AT(::vlease::LogLevel::kInfo)
#define VL_LOG_WARN VL_LOG_AT(::vlease::LogLevel::kWarn)
#define VL_LOG_ERROR VL_LOG_AT(::vlease::LogLevel::kError)

}  // namespace vlease
