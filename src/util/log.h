// Leveled logging. Off by default above kWarn so simulation hot paths
// stay quiet; examples turn on kInfo to narrate protocol activity.
#pragma once

#include <sstream>
#include <string>

namespace vlease {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {
void logLine(LogLevel level, const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, bool enabled) : level_(level), enabled_(enabled) {}
  ~LogMessage() {
    if (enabled_) logLine(level_, stream_.str());
  }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogMessage logAt(LogLevel level) {
  return detail::LogMessage(level, level >= logLevel());
}

#define VL_LOG_DEBUG ::vlease::logAt(::vlease::LogLevel::kDebug)
#define VL_LOG_INFO ::vlease::logAt(::vlease::LogLevel::kInfo)
#define VL_LOG_WARN ::vlease::logAt(::vlease::LogLevel::kWarn)
#define VL_LOG_ERROR ::vlease::logAt(::vlease::LogLevel::kError)

}  // namespace vlease
