// Small open-addressing hash map keyed by 64-bit integers.
//
// The protocol layer keys per-(client, volume) state by a packed
// uint64; node-based std::map/unordered_map spend most of their time in
// allocation and pointer chasing for what is a handful of live entries.
// FlatMap stores everything in two parallel vectors (control bytes +
// slots), probes linearly from a mixed hash, and reuses tombstones on
// insert, so steady-state insert/erase cycles never touch the heap.
//
// Iteration (forEach) walks the table in slot order: deterministic for
// a given operation history, but NOT insertion order -- callers that
// need an observable order (e.g. the server's holder fan-out) use
// LifoIndexMap instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace vlease::util {

template <typename V>
class FlatMap {
 public:
  using Key = std::uint64_t;

  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V* find(Key key) {
    if (size_ == 0) return nullptr;
    const std::size_t slot = findSlot(key);
    return slot == kNotFound ? nullptr : &slots_[slot].value;
  }
  const V* find(Key key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Insert a default-constructed value if absent. Returns the value
  /// and whether it was inserted.
  std::pair<V*, bool> tryEmplace(Key key) {
    if ((size_ + tombstones_ + 1) * 8 > capacity() * 7) {
      rehash(capacity() == 0 ? 8 : capacity() * 2);
    }
    const std::uint64_t h = mix(key);
    const std::size_t mask = capacity() - 1;
    std::size_t i = static_cast<std::size_t>(h) & mask;
    std::size_t firstTombstone = kNotFound;
    for (;;) {
      const std::uint8_t c = control_[i];
      if (c == kEmpty) {
        std::size_t target = i;
        if (firstTombstone != kNotFound) {
          target = firstTombstone;
          --tombstones_;
        }
        control_[target] = kFull;
        slots_[target].key = key;
        slots_[target].value = V{};
        ++size_;
        return {&slots_[target].value, true};
      }
      if (c == kTombstone) {
        if (firstTombstone == kNotFound) firstTombstone = i;
      } else if (slots_[i].key == key) {
        return {&slots_[i].value, false};
      }
      i = (i + 1) & mask;
    }
  }

  V& operator[](Key key) { return *tryEmplace(key).first; }

  bool erase(Key key) {
    if (size_ == 0) return false;
    const std::size_t slot = findSlot(key);
    if (slot == kNotFound) return false;
    control_[slot] = kTombstone;
    slots_[slot].value = V{};  // drop resources; slot stays reusable
    --size_;
    ++tombstones_;
    return true;
  }

  /// Visit every (key, value) pair in slot order.
  template <typename Fn>
  void forEach(Fn&& fn) {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (control_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (control_[i] == kFull) fn(slots_[i].key, slots_[i].value);
    }
  }

  /// Drop every entry; keeps the table's capacity.
  void clear() {
    if (capacity() == 0) return;
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (control_[i] == kFull) slots_[i].value = V{};
      control_[i] = kEmpty;
    }
    size_ = 0;
    tombstones_ = 0;
  }

  std::size_t capacity() const { return control_.size(); }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;
  static constexpr std::size_t kNotFound = ~static_cast<std::size_t>(0);

  struct Slot {
    Key key = 0;
    V value{};
  };

  /// splitmix64 finalizer: packed keys are highly regular (small client
  /// index << 32 | small volume id), so linear probing needs real
  /// avalanche to avoid clustering.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }

  std::size_t findSlot(Key key) const {
    const std::size_t mask = capacity() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    for (;;) {
      const std::uint8_t c = control_[i];
      if (c == kEmpty) return kNotFound;
      if (c == kFull && slots_[i].key == key) return i;
      i = (i + 1) & mask;
    }
  }

  void rehash(std::size_t newCapacity) {
    VL_CHECK((newCapacity & (newCapacity - 1)) == 0);
    std::vector<std::uint8_t> oldControl = std::move(control_);
    std::vector<Slot> oldSlots = std::move(slots_);
    control_.assign(newCapacity, kEmpty);
    slots_.assign(newCapacity, Slot{});
    tombstones_ = 0;
    const std::size_t mask = newCapacity - 1;
    for (std::size_t i = 0; i < oldControl.size(); ++i) {
      if (oldControl[i] != kFull) continue;
      std::size_t j = static_cast<std::size_t>(mix(oldSlots[i].key)) & mask;
      while (control_[j] == kFull) j = (j + 1) & mask;
      control_[j] = kFull;
      slots_[j].key = oldSlots[i].key;
      slots_[j].value = std::move(oldSlots[i].value);
    }
  }

  std::vector<std::uint8_t> control_;
  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
};

}  // namespace vlease::util
