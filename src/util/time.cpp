#include "util/time.h"

#include <cinttypes>
#include <cstdio>

namespace vlease {

std::string formatSimTime(SimTime t) {
  if (t == kNever) return "never";
  char buf[48];
  std::int64_t whole = t / 1'000'000;
  std::int64_t frac = t % 1'000'000;
  if (frac < 0) {
    frac += 1'000'000;
    whole -= 1;
  }
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%06" PRId64 "s", whole, frac);
  return buf;
}

}  // namespace vlease
