// Fixed-size worker pool for embarrassingly parallel work (the sweep
// runner's independent simulation runs).
//
// Guarantees:
//   * tasks are dispatched FIFO (a single-worker pool runs them in
//     submission order);
//   * submit() returns a future carrying the task's result or its
//     exception, so workers never swallow failures;
//   * the destructor drains every queued task before joining (pools are
//     scoped to one batch of work; nothing is dropped on shutdown).
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/check.h"

namespace vlease::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(unsigned threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Queue `fn` for execution. The returned future resolves with fn's
  /// return value, or rethrows whatever fn threw.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      VL_CHECK_MSG(!stopping_, "submit() on a stopping ThreadPool");
      queue_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Number of hardware threads, with a sane fallback when the runtime
  /// cannot tell (hardware_concurrency() may return 0).
  static unsigned defaultThreads() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

 private:
  void workerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace vlease::util
