#include "util/thread_pool.h"

namespace vlease::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace vlease::util
