#include "util/histogram.h"

#include <algorithm>

namespace vlease {

std::int64_t SparseCounter::at(std::int64_t bucket) const {
  auto it = counts_.find(bucket);
  return it == counts_.end() ? 0 : it->second;
}

std::int64_t SparseCounter::totalCount() const {
  std::int64_t total = 0;
  for (const auto& [bucket, n] : counts_) total += n;
  return total;
}

std::int64_t SparseCounter::maxValue() const {
  std::int64_t best = 0;
  for (const auto& [bucket, n] : counts_) best = std::max(best, n);
  return best;
}

std::vector<std::int64_t> SparseCounter::cumulativeAtLeast() const {
  std::int64_t top = maxValue();
  std::vector<std::int64_t> atLeast(static_cast<std::size_t>(top), 0);
  if (top == 0) return atLeast;
  // Count buckets with exactly v, then suffix-sum.
  for (const auto& [bucket, n] : counts_) {
    if (n >= 1) atLeast[static_cast<std::size_t>(n) - 1] += 1;
  }
  for (std::size_t i = atLeast.size(); i-- > 1;) {
    atLeast[i - 1] += atLeast[i];
  }
  return atLeast;
}

void SparseCounter::merge(const SparseCounter& other) {
  for (const auto& [bucket, n] : other.counts_) counts_[bucket] += n;
}

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

void Summary::merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

}  // namespace vlease
