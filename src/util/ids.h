// Strongly-typed identifiers shared across the protocol stack.
//
// Clients and servers live in one NodeId space (a node is "whoever can
// send and receive messages"); the convention -- enforced by
// proto::Directory -- is servers first, then clients. Objects and volumes
// are global identifiers; the directory maps each object to its volume
// and home server.
#pragma once

#include <cstdint>
#include <functional>

namespace vlease {

enum class NodeId : std::uint32_t {};
enum class ObjectId : std::uint64_t {};
enum class VolumeId : std::uint64_t {};

inline constexpr std::uint32_t raw(NodeId id) {
  return static_cast<std::uint32_t>(id);
}
inline constexpr std::uint64_t raw(ObjectId id) {
  return static_cast<std::uint64_t>(id);
}
inline constexpr std::uint64_t raw(VolumeId id) {
  return static_cast<std::uint64_t>(id);
}

inline constexpr NodeId makeNodeId(std::uint32_t v) {
  return static_cast<NodeId>(v);
}
inline constexpr ObjectId makeObjectId(std::uint64_t v) {
  return static_cast<ObjectId>(v);
}
inline constexpr VolumeId makeVolumeId(std::uint64_t v) {
  return static_cast<VolumeId>(v);
}

inline constexpr bool operator==(NodeId a, NodeId b) { return raw(a) == raw(b); }
inline constexpr bool operator!=(NodeId a, NodeId b) { return raw(a) != raw(b); }
inline constexpr bool operator<(NodeId a, NodeId b) { return raw(a) < raw(b); }
inline constexpr bool operator==(ObjectId a, ObjectId b) {
  return raw(a) == raw(b);
}
inline constexpr bool operator!=(ObjectId a, ObjectId b) {
  return raw(a) != raw(b);
}
inline constexpr bool operator<(ObjectId a, ObjectId b) {
  return raw(a) < raw(b);
}
inline constexpr bool operator==(VolumeId a, VolumeId b) {
  return raw(a) == raw(b);
}
inline constexpr bool operator!=(VolumeId a, VolumeId b) {
  return raw(a) != raw(b);
}
inline constexpr bool operator<(VolumeId a, VolumeId b) {
  return raw(a) < raw(b);
}

/// Object version numbers; -1 means "client has no copy" (paper's vnum).
using Version = std::int64_t;
inline constexpr Version kNoVersion = -1;

/// Volume epoch numbers; bumped on server reboot (paper's epoch).
using Epoch = std::int64_t;

}  // namespace vlease

namespace std {
template <>
struct hash<vlease::NodeId> {
  size_t operator()(vlease::NodeId id) const noexcept {
    return std::hash<std::uint32_t>()(vlease::raw(id));
  }
};
template <>
struct hash<vlease::ObjectId> {
  size_t operator()(vlease::ObjectId id) const noexcept {
    return std::hash<std::uint64_t>()(vlease::raw(id));
  }
};
template <>
struct hash<vlease::VolumeId> {
  size_t operator()(vlease::VolumeId id) const noexcept {
    return std::hash<std::uint64_t>()(vlease::raw(id));
  }
};
}  // namespace std
