// Lightweight runtime checks used across the library.
//
// VL_CHECK is always on (it guards protocol invariants whose violation
// would silently corrupt results); VL_DCHECK compiles out in NDEBUG
// builds and is for hot-path sanity checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace vlease::detail {

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "VL_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " -- " : "", msg);
  std::abort();
}

}  // namespace vlease::detail

#define VL_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::vlease::detail::checkFailed(#expr, __FILE__, __LINE__, "");   \
  } while (0)

#define VL_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::vlease::detail::checkFailed(#expr, __FILE__, __LINE__, msg);  \
  } while (0)

#ifdef NDEBUG
#define VL_DCHECK(expr) \
  do {                  \
  } while (0)
#else
#define VL_DCHECK(expr) VL_CHECK(expr)
#endif
