// Small-buffer, move-only callable: the allocation-free replacement for
// std::function on the simulation hot path.
//
// A closure is stored inline in a fixed-size buffer -- there is no heap
// fallback. A callable that does not fit (or is not nothrow-movable) is
// rejected at compile time by static_assert, so the event-closure size
// contract of sim::Scheduler is enforced where the closure is written,
// not discovered as a runtime regression. Dispatch is two raw function
// pointers (invoke + relocate); no virtual tables, no RTTI.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"

namespace vlease::util {

template <typename Signature, std::size_t Capacity,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction;  // undefined; only the R(Args...) partial below

template <typename R, typename... Args, std::size_t Capacity,
          std::size_t Align>
class InplaceFunction<R(Args...), Capacity, Align> {
 public:
  InplaceFunction() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, InplaceFunction>>>
  InplaceFunction(F&& f) {  // NOLINT: implicit, like std::function
    emplace(std::forward<F>(f));
  }

  /// Destroy the current callable (if any) and construct `f` directly in
  /// the inline buffer -- no temporary, no relocation.
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(!std::is_same_v<Fn, InplaceFunction>);
    static_assert(std::is_invocable_r_v<R, Fn&, Args...>,
                  "callable signature mismatch");
    static_assert(sizeof(Fn) <= Capacity,
                  "closure exceeds the inline capacity; capture less or "
                  "raise the buffer size at the owning call site");
    static_assert(alignof(Fn) <= Align, "closure over-aligned for buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "closure must be nothrow-movable (it relocates inline)");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* b, Args&&... args) -> R {
      return (*static_cast<Fn*>(b))(std::forward<Args>(args)...);
    };
    if constexpr (std::is_trivially_destructible_v<Fn> &&
                  std::is_trivially_copyable_v<Fn>) {
      // Fast path for POD-capture closures (the common case on the event
      // hot path): no relocate thunk means destruction is a no-op and
      // moves are a raw buffer copy -- no indirect call either way.
      relocate_ = nullptr;
    } else {
      relocate_ = [](void* from, void* to) noexcept {
        Fn* f = static_cast<Fn*>(from);
        if (to) ::new (to) Fn(std::move(*f));
        f->~Fn();
      };
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept { moveFrom(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) {
    VL_CHECK(invoke_ != nullptr);
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }

  /// Destroy the held callable (if any); *this becomes empty.
  void reset() {
    if (relocate_) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  using Invoke = R (*)(void*, Args&&...);
  /// Move-construct the callable at `to` (destroying the source), or
  /// just destroy it when `to` is null.
  using Relocate = void (*)(void* from, void* to) noexcept;

  void moveFrom(InplaceFunction& other) noexcept {
    if (other.relocate_) {
      other.relocate_(other.buf_, buf_);
    } else if (other.invoke_) {
      std::memcpy(buf_, other.buf_, Capacity);  // trivially-copyable fast path
    }
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    other.invoke_ = nullptr;
    other.relocate_ = nullptr;
  }

  alignas(Align) unsigned char buf_[Capacity];
  Invoke invoke_ = nullptr;
  Relocate relocate_ = nullptr;
};

}  // namespace vlease::util
