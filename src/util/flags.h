// Minimal command-line flag parser for the bench and example binaries.
//
// Supports "--name=value", "--name value", and bare "--name" for booleans.
// Unknown flags are an error (catches typos in experiment scripts).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlease {

class Flags {
 public:
  /// Parse argv. On error prints a message + usage to stderr and returns
  /// false. Registered flags must be declared before parse().
  bool parse(int argc, char** argv);

  void addString(const std::string& name, std::string defaultValue,
                 const std::string& help);
  void addInt(const std::string& name, std::int64_t defaultValue,
              const std::string& help);
  void addDouble(const std::string& name, double defaultValue,
                 const std::string& help);
  void addBool(const std::string& name, bool defaultValue,
               const std::string& help);

  std::string getString(const std::string& name) const;
  std::int64_t getInt(const std::string& name) const;
  double getDouble(const std::string& name) const;
  bool getBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Spec {
    Type type;
    std::string value;  // canonical text form
    std::string help;
  };
  const Spec* find(const std::string& name, Type type) const;

  std::map<std::string, Spec> specs_;
  std::vector<std::string> positional_;
};

}  // namespace vlease
