#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace vlease {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // xoshiro must not be seeded with all zeros; splitmix64 guarantees a
  // well-mixed nonzero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::nextBelow(std::uint64_t n) {
  VL_DCHECK(n > 0);
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::nextInt(std::int64_t lo, std::int64_t hi) {
  VL_DCHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  nextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::nextDouble() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::nextBool(double pTrue) { return nextDouble() < pTrue; }

double Rng::nextExponential(double mean) {
  VL_DCHECK(mean > 0);
  double u;
  do {
    u = nextDouble();
  } while (u <= 0.0);  // nextDouble() can return exactly 0
  return -mean * std::log(u);
}

std::int64_t Rng::nextPoisson(double mean) {
  VL_DCHECK(mean >= 0);
  if (mean == 0) return 0;
  if (mean < 30.0) {
    // Knuth inversion.
    const double limit = std::exp(-mean);
    double prod = nextDouble();
    std::int64_t n = 0;
    while (prod > limit) {
      ++n;
      prod *= nextDouble();
    }
    return n;
  }
  // For large means a normal approximation with continuity correction is
  // accurate to far better than our workload model needs (means here
  // rarely exceed a few thousand).
  double x;
  do {
    x = mean + std::sqrt(mean) * nextNormal() + 0.5;
  } while (x < 0.0);
  return static_cast<std::int64_t>(x);
}

double Rng::nextLogNormal(double mu, double sigma) {
  return std::exp(mu + sigma * nextNormal());
}

double Rng::nextNormal() {
  double u1;
  do {
    u1 = nextDouble();
  } while (u1 <= 0.0);
  double u2 = nextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

Rng Rng::fork() { return Rng(next()); }

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  VL_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = sum;
  }
  for (auto& v : cdf_) v /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  double u = rng.nextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::pmf(std::size_t k) const {
  VL_CHECK(k < cdf_.size());
  return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

// ---------------------------------------------------------------------
// ZipfianRng: Hormann-Derflinger rejection-inversion
// ---------------------------------------------------------------------

double ZipfianRng::h(double x) const {
  // Antiderivative of t^-s evaluated at x, shifted so both branches are
  // continuous in s: (x^(1-s) - 1)/(1-s), with the s -> 1 limit ln(x).
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfianRng::hInv(double u) const {
  if (s_ == 1.0) return std::exp(u);
  return std::pow(1.0 + u * (1.0 - s_), 1.0 / (1.0 - s_));
}

ZipfianRng::ZipfianRng(std::uint64_t n, double s) : n_(n), s_(s) {
  VL_CHECK(n >= 1);
  VL_CHECK(s >= 0.0);
  // The u range for rank 1 starts at h(1.5) - f(1), not h(0.5): the hat
  // integral over [0.5, 1.5] overshoots f(1) (x^-s explodes toward the
  // left edge), and truncating the range assigns rank 1 exactly f(1) of
  // u measure -- rank 1 is then sampled without rejection and the
  // fast-accept branch below (whose bound is derived from rank 2) can
  // never over-accept it.
  hx0_ = h(1.5) - 1.0;
  hxn_ = h(static_cast<double>(n) + 0.5);
  // Accept-without-h() distance, valid for every rank >= 2 (the bound
  // is tightest at rank 2 and monotone beyond).
  threshold_ = 2.0 - hInv(h(2.5) - std::pow(2.0, -s_));
}

std::uint64_t ZipfianRng::operator()(Rng& rng) const {
  for (;;) {
    const double u = hxn_ + rng.nextDouble() * (hx0_ - hxn_);
    const double x = hInv(u);
    // Candidate rank in [1, n] (clamped; x can graze the open edges).
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= threshold_ ||
        u >= h(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<std::uint64_t>(k) - 1;  // back to 0-based
    }
  }
}

double ZipfianRng::pmf(std::uint64_t k) const {
  VL_CHECK(k < n_);
  if (norm_ == 0) {
    double sum = 0;
    for (std::uint64_t i = 0; i < n_; ++i) {
      sum += std::pow(static_cast<double>(i + 1), -s_);
    }
    norm_ = sum;
  }
  return std::pow(static_cast<double>(k + 1), -s_) / norm_;
}

}  // namespace vlease
