// Histogram utilities used by the metrics layer and the figure benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vlease {

/// Sparse integer-keyed counter: maps a bucket index (e.g. a whole-second
/// timestamp) to a count. Used for the per-second server-load series
/// behind Figs. 8 and 9 -- traces span ~10^7 seconds but most buckets are
/// empty, so a dense array would be wasteful.
class SparseCounter {
 public:
  SparseCounter() = default;
  // The hot-bucket memo points into counts_; it must not follow a copy
  // or move to a different map.
  SparseCounter(const SparseCounter& other) : counts_(other.counts_) {}
  SparseCounter(SparseCounter&& other) noexcept
      : counts_(std::move(other.counts_)) {
    other.hot_ = nullptr;
  }
  SparseCounter& operator=(const SparseCounter& other) {
    counts_ = other.counts_;
    hot_ = nullptr;
    return *this;
  }
  SparseCounter& operator=(SparseCounter&& other) noexcept {
    counts_ = std::move(other.counts_);
    hot_ = nullptr;
    other.hot_ = nullptr;
    return *this;
  }

  void add(std::int64_t bucket, std::int64_t n = 1) {
    // Samples arrive in bursts against one bucket (virtual time moves
    // forward slowly relative to message rate), so memoize the node last
    // touched -- std::map nodes are address-stable.
    if (hot_ != nullptr && hot_->first == bucket) {
      hot_->second += n;
      return;
    }
    auto [it, inserted] = counts_.try_emplace(bucket, 0);
    it->second += n;
    hot_ = &*it;
  }

  std::int64_t at(std::int64_t bucket) const;
  std::int64_t totalCount() const;
  std::size_t nonEmptyBuckets() const { return counts_.size(); }
  std::int64_t maxValue() const;

  const std::map<std::int64_t, std::int64_t>& buckets() const {
    return counts_;
  }

  /// Cumulative histogram in the paper's Fig. 8 form: for each load level
  /// x in [1, maxValue], how many buckets held a value >= x. Returned as
  /// result[x-1] = #buckets with value >= x.
  std::vector<std::int64_t> cumulativeAtLeast() const;

  void merge(const SparseCounter& other);
  void clear() {
    counts_.clear();
    hot_ = nullptr;
  }

 private:
  std::map<std::int64_t, std::int64_t> counts_;
  std::pair<const std::int64_t, std::int64_t>* hot_ = nullptr;
};

/// Simple streaming summary: count / mean / min / max / sum.
class Summary {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  void merge(const Summary& other);

 private:
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace vlease
