// Histogram utilities used by the metrics layer and the figure benches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vlease {

/// Sparse integer-keyed counter: maps a bucket index (e.g. a whole-second
/// timestamp) to a count. Used for the per-second server-load series
/// behind Figs. 8 and 9 -- traces span ~10^7 seconds but most buckets are
/// empty, so a dense array would be wasteful.
class SparseCounter {
 public:
  void add(std::int64_t bucket, std::int64_t n = 1) { counts_[bucket] += n; }

  std::int64_t at(std::int64_t bucket) const;
  std::int64_t totalCount() const;
  std::size_t nonEmptyBuckets() const { return counts_.size(); }
  std::int64_t maxValue() const;

  const std::map<std::int64_t, std::int64_t>& buckets() const {
    return counts_;
  }

  /// Cumulative histogram in the paper's Fig. 8 form: for each load level
  /// x in [1, maxValue], how many buckets held a value >= x. Returned as
  /// result[x-1] = #buckets with value >= x.
  std::vector<std::int64_t> cumulativeAtLeast() const;

  void merge(const SparseCounter& other);
  void clear() { counts_.clear(); }

 private:
  std::map<std::int64_t, std::int64_t> counts_;
};

/// Simple streaming summary: count / mean / min / max / sum.
class Summary {
 public:
  void add(double x);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  double min() const { return count_ ? min_ : 0; }
  double max() const { return count_ ? max_ : 0; }

  void merge(const Summary& other);

 private:
  std::int64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace vlease
