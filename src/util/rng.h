// Deterministic random-number generation and the samplers the workload
// generators need (uniform, exponential, Poisson, bounded Zipf,
// log-normal).
//
// We use xoshiro256** seeded through splitmix64: fast, high quality, and
// -- unlike std::mt19937 + std::*_distribution -- bit-for-bit reproducible
// across standard libraries, which keeps traces and experiments stable.
#pragma once

#include <cstdint>
#include <vector>

namespace vlease {

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** PRNG. Copyable; copies diverge independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform in [0, n). n must be > 0. Unbiased (rejection sampling).
  std::uint64_t nextBelow(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t nextInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double nextDouble();

  /// Bernoulli trial.
  bool nextBool(double pTrue);

  /// Exponential with the given mean (mean = 1/lambda). mean must be > 0.
  double nextExponential(double mean);

  /// Poisson with the given mean. Uses inversion for small means and
  /// the PTRS transformed-rejection method for large means.
  std::int64_t nextPoisson(double mean);

  /// Log-normal: exp(N(mu, sigma^2)).
  double nextLogNormal(double mu, double sigma);

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double nextNormal();

  /// Derive an independent child generator (stable given call order).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Bounded Zipf(s) sampler over ranks {0, 1, ..., n-1}: P(rank k) is
/// proportional to 1/(k+1)^s. Precomputes the CDF once (O(n)) and samples
/// by binary search (O(log n)); n in this project is at most a few
/// hundred thousand, so the table is cheap and exact.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t operator()(Rng& rng) const;

  std::size_t size() const { return cdf_.size(); }

  /// P(rank k), exposed for statistical tests.
  double pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k)
};

/// O(1)-memory bounded Zipf(s) sampler over ranks {0, ..., n-1} with
/// P(rank k) proportional to 1/(k+1)^s, by Hormann-Derflinger
/// rejection-inversion (the scheme Gray et al.'s "Quickly generating
/// billion-record synthetic databases" popularized). Unlike ZipfSampler
/// there is no CDF table, so a streaming generator can hold one per
/// workload regardless of catalog size; construction is O(1) and each
/// sample draws an expected O(1) uniforms. s = 0 degenerates to uniform.
/// Bit-for-bit deterministic given the Rng stream (pinned by a golden in
/// rng_test.cpp).
class ZipfianRng {
 public:
  /// n >= 1, s >= 0. s != 1 and s == 1 use the matching H integrals.
  ZipfianRng(std::uint64_t n, double s);

  std::uint64_t operator()(Rng& rng) const;

  std::uint64_t size() const { return n_; }
  double skew() const { return s_; }

  /// P(rank k). The generalized-harmonic normalizer is computed (O(n))
  /// on first use and cached; sampling never needs it.
  double pmf(std::uint64_t k) const;

 private:
  double h(double x) const;     // integral of x^-s (shifted antiderivative)
  double hInv(double u) const;  // inverse of h

  std::uint64_t n_;
  double s_;
  double hx0_;        // h(1.5) - 1: lower edge of the inversion range
  double hxn_;        // h(n + 0.5): upper edge
  double threshold_;  // fast-accept distance bound, valid for ranks >= 2
  mutable double norm_ = 0;  // lazily computed pmf normalizer
};

}  // namespace vlease
