// Virtual-time representation shared by the simulator and the protocols.
//
// The paper works in whole seconds (trace timestamps, lease timeouts,
// 1-second load buckets). We keep virtual time in integer microseconds so
// that (a) sub-second network latencies are representable in failure
// experiments and (b) arithmetic is exact -- no floating-point drift in
// lease-expiry comparisons.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace vlease {

/// Virtual time in microseconds since the start of a run.
using SimTime = std::int64_t;

/// Durations share the representation of time points.
using SimDuration = std::int64_t;

inline constexpr SimTime kSimTimeMax = std::numeric_limits<SimTime>::max();
inline constexpr SimTime kSimTimeMin = std::numeric_limits<SimTime>::min();

/// A sentinel for "never expires" / "not set".
inline constexpr SimTime kNever = kSimTimeMax;

inline constexpr SimDuration usec(std::int64_t n) { return n; }
inline constexpr SimDuration msec(std::int64_t n) { return n * 1'000; }
inline constexpr SimDuration sec(std::int64_t n) { return n * 1'000'000; }
inline constexpr SimDuration minutes(std::int64_t n) { return sec(n * 60); }
inline constexpr SimDuration hours(std::int64_t n) { return sec(n * 3600); }
inline constexpr SimDuration days(std::int64_t n) { return sec(n * 86400); }

/// Fractional-second helper used by workload generators.
inline constexpr SimDuration secondsToSim(double s) {
  return static_cast<SimDuration>(s * 1e6);
}

inline constexpr double toSeconds(SimDuration d) {
  return static_cast<double>(d) / 1e6;
}

/// Whole-second bucket index (used by the per-second load histograms).
inline constexpr std::int64_t secondBucket(SimTime t) { return t / 1'000'000; }

/// Saturating addition: adding any duration to kNever stays kNever, and
/// overflow clamps instead of wrapping. Lease code adds timeouts to "now"
/// and compares against kNever-initialized expiries, so this must be safe.
inline constexpr SimTime addSat(SimTime t, SimDuration d) {
  if (t == kNever) return kNever;
  if (d > 0 && t > kSimTimeMax - d) return kSimTimeMax;
  if (d < 0 && t < kSimTimeMin - d) return kSimTimeMin;
  return t + d;
}

/// Render a time as "NNNN.NNNNNNs" for logs and reports.
std::string formatSimTime(SimTime t);

}  // namespace vlease
