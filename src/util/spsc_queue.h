// Single-producer single-consumer lock-free ring queue.
//
// The rt layer's sharded server moves messages between its I/O thread
// and the protocol-shard threads through these: exactly one producer
// (the I/O thread for inbound, the shard for outbound) and exactly one
// consumer per queue, so a bounded ring with one release/acquire pair
// per operation is enough -- no CAS loops, no locks, no allocation
// after construction.
//
// Memory ordering: the producer writes the slot, then publishes with a
// release store of tail_; the consumer observes tail_ with an acquire
// load, so the slot write happens-before the read. Symmetrically the
// consumer's release store of head_ is what licenses the producer to
// reuse a slot. Capacity is rounded up to a power of two so the
// index wrap is a mask.
//
// tryPush/tryPop never block: a full queue rejects the push (callers
// count the drop -- the transport layer is best-effort and protocols
// tolerate loss) and an empty queue rejects the pop (consumers wait on
// their event loop's wake fd, not on the queue).
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace vlease {

template <typename T>
class SpscQueue {
 public:
  /// `capacity` is rounded up to the next power of two (minimum 2).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. False if the queue is full (the value is untouched).
  bool tryPush(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False if the queue is empty.
  bool tryPop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate (racy by nature); exact when called by the consumer
  /// with the producer quiesced or vice versa.
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Producer and consumer cursors on separate cache lines so the two
  // threads don't false-share.
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push
};

}  // namespace vlease
