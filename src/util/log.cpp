#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <utility>

namespace vlease {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_sinkMutex;
thread_local std::string t_context;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

LogContext::LogContext(std::string label) : previous_(std::move(t_context)) {
  t_context = std::move(label);
}

LogContext::~LogContext() { t_context = std::move(previous_); }

const std::string& LogContext::current() { return t_context; }

namespace detail {
void logLine(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_sinkMutex);
  if (t_context.empty()) {
    std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
  } else {
    std::fprintf(stderr, "[%s] [%s] %s\n", levelName(level),
                 t_context.c_str(), msg.c_str());
  }
}
}  // namespace detail

}  // namespace vlease
