#include "util/log.h"

#include <cstdio>

namespace vlease {

namespace {
LogLevel g_level = LogLevel::kWarn;
const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

namespace detail {
void logLine(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", levelName(level), msg.c_str());
}
}  // namespace detail

}  // namespace vlease
