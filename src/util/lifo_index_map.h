// Dense, insertion-ordered map keyed by small dense indices.
//
// Replaces the per-lease unordered_map<NodeId, ...> holder tables of
// the volume server. Three pieces:
//
//   * a slab of nodes with stable slots and an intrusive free list
//     (erase never moves surviving nodes, so no index fixups);
//   * a per-key slot index (`slotOf_`) giving O(1) find/insert/erase
//     with zero hashing and zero rehash;
//   * an intrusive doubly-linked list threading the live nodes in
//     most-recently-inserted-first (LIFO) order.
//
// The LIFO iteration order is a compatibility contract, not an
// accident: the simulator's per-send loss draws make the server's
// invalidation fan-out order observable in the chaos goldens, and the
// pre-refactor unordered_map iterated exactly LIFO in the regimes those
// goldens exercise (libstdc++ prepends each insert that lands in an
// empty bucket to its global element list; the golden runs stay under
// the first rehash threshold with collision-free keys). Encoding the
// order in the structure itself makes it platform-independent instead
// of an artifact of one standard library. Erase preserves the relative
// order of survivors; re-inserting an erased key moves it to the front,
// both matching the hash map's observable behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "util/check.h"

namespace vlease::util {

inline constexpr std::uint32_t kNilIdx = 0xffffffffu;

template <typename V>
class LifoIndexMap {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  V* find(std::uint32_t key) {
    if (key >= slotOf_.size() || slotOf_[key] == kNilIdx) return nullptr;
    return &slab_[slotOf_[key]].value;
  }
  const V* find(std::uint32_t key) const {
    return const_cast<LifoIndexMap*>(this)->find(key);
  }
  bool contains(std::uint32_t key) const { return find(key) != nullptr; }

  /// Insert a value for `key` at the FRONT of the iteration order if
  /// absent; returns the value and whether it was inserted. An existing
  /// key keeps its position (try_emplace semantics).
  std::pair<V*, bool> tryEmplace(std::uint32_t key) {
    if (key >= slotOf_.size()) slotOf_.resize(key + 1, kNilIdx);
    std::uint32_t slot = slotOf_[key];
    if (slot != kNilIdx) return {&slab_[slot].value, false};
    if (freeHead_ != kNilIdx) {
      slot = freeHead_;
      freeHead_ = slab_[slot].next;
      slab_[slot].value = V{};  // reused slot: reset to a fresh value
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
    }
    Node& node = slab_[slot];
    node.key = key;
    node.prev = kNilIdx;
    node.next = head_;
    if (head_ != kNilIdx) slab_[head_].prev = slot;
    head_ = slot;
    slotOf_[key] = slot;
    ++size_;
    return {&node.value, true};
  }

  bool erase(std::uint32_t key) {
    if (key >= slotOf_.size() || slotOf_[key] == kNilIdx) return false;
    const std::uint32_t slot = slotOf_[key];
    Node& node = slab_[slot];
    if (node.prev != kNilIdx) slab_[node.prev].next = node.next;
    if (node.next != kNilIdx) slab_[node.next].prev = node.prev;
    if (head_ == slot) head_ = node.next;
    slotOf_[key] = kNilIdx;
    node.next = freeHead_;  // free list reuses the link field
    freeHead_ = slot;
    --size_;
    return true;
  }

  /// Visit (key, value) pairs newest-insertion-first. The visited
  /// node may be erased by `fn`; other mutations of the map during
  /// iteration are not supported.
  template <typename Fn>
  void forEach(Fn&& fn) {
    std::uint32_t i = head_;
    while (i != kNilIdx) {
      const std::uint32_t next = slab_[i].next;
      fn(slab_[i].key, slab_[i].value);
      i = next;
    }
  }
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint32_t i = head_; i != kNilIdx; i = slab_[i].next) {
      fn(slab_[i].key, slab_[i].value);
    }
  }

  /// Drop every entry; keeps slab and index capacity (no frees of the
  /// backbone, though entry values release their own resources).
  void clear() {
    for (std::uint32_t i = head_; i != kNilIdx;) {
      const std::uint32_t next = slab_[i].next;
      slotOf_[slab_[i].key] = kNilIdx;
      slab_[i].value = V{};
      slab_[i].next = freeHead_;
      freeHead_ = i;
      i = next;
    }
    head_ = kNilIdx;
    size_ = 0;
  }

 private:
  struct Node {
    V value{};
    std::uint32_t key = 0;
    std::uint32_t prev = kNilIdx;
    std::uint32_t next = kNilIdx;
  };

  std::vector<Node> slab_;
  std::vector<std::uint32_t> slotOf_;
  std::uint32_t head_ = kNilIdx;
  std::uint32_t freeHead_ = kNilIdx;
  std::size_t size_ = 0;
};

}  // namespace vlease::util
