#include "sim/scheduler.h"

namespace vlease::sim {

TimerHandle Scheduler::scheduleAt(SimTime at, Action action) {
  VL_CHECK_MSG(at >= now_, "cannot schedule in the past");
  auto state = std::make_shared<detail::EventState>();
  state->liveCount = liveCount_;
  queue_.push(Entry{at, nextSeq_++, std::move(action), state});
  ++(*liveCount_);
  return TimerHandle(std::move(state));
}

bool Scheduler::popLive(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast, which is
    // safe because we pop immediately after.
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (e.state->alive) {
      out = std::move(e);
      return true;
    }
  }
  return false;
}

std::int64_t Scheduler::run() {
  std::int64_t n = 0;
  Entry e;
  while (popLive(e)) {
    now_ = e.at;
    e.state->alive = false;
    --(*liveCount_);
    e.action();
    ++n;
    ++fired_;
  }
  return n;
}

std::int64_t Scheduler::runUntil(SimTime until) {
  std::int64_t n = 0;
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (!top.state->alive) {
      queue_.pop();
      continue;
    }
    if (top.at > until) break;
    Entry e;
    if (!popLive(e)) break;
    now_ = e.at;
    e.state->alive = false;
    --(*liveCount_);
    e.action();
    ++n;
    ++fired_;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::step() {
  Entry e;
  if (!popLive(e)) return false;
  now_ = e.at;
  e.state->alive = false;
  --(*liveCount_);
  e.action();
  ++fired_;
  return true;
}

}  // namespace vlease::sim
