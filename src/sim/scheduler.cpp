#include "sim/scheduler.h"

#include <algorithm>
#include <bit>

namespace vlease::sim {

namespace detail {

SchedulerStoragePool& schedulerStoragePool() {
  static thread_local SchedulerStoragePool pool;
  return pool;
}

namespace {

/// Pool caps, per thread: enough to recycle one large scheduler's worth
/// of storage; anything beyond is released to the allocator normally.
constexpr std::size_t kMaxPooledChunks = 512;  // ~512 * 512 slots
constexpr std::size_t kMaxPooledBufs = 8;

template <typename T>
void takeBuf(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
  if (!pool.empty()) {
    buf = std::move(pool.back());
    pool.pop_back();
    buf.clear();  // capacity is retained
  }
}

template <typename T>
void giveBuf(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
  if (pool.size() < kMaxPooledBufs && buf.capacity() > 0) {
    buf.clear();
    pool.push_back(std::move(buf));
  }
}

}  // namespace
}  // namespace detail

Scheduler::Scheduler() : ref_(new detail::SchedulerRef{this, 1}) {
  auto& pool = detail::schedulerStoragePool();
  detail::takeBuf(pool.nodeBufs, heap_);
  detail::takeBuf(pool.nodeBufs, sorted_);
  detail::takeBuf(pool.nodeBufs, fifo_);
  detail::takeBuf(pool.wordBufs, gens_);
  detail::takeBuf(pool.wordBufs, next_);
  detail::takeBuf(pool.wordBufs, prev_);
  detail::takeBuf(pool.wordBufs, wheelSeq_);
  detail::takeBuf(pool.timeBufs, wheelAt_);
}

Scheduler::~Scheduler() {
  // Pending (never-fired) closures still hold their captures; destroy
  // them before the chunks are recycled. The parity scan covers both
  // lanes -- wheel-resident slots are armed (odd) like heap ones.
  for (std::uint32_t i = 0; i < numSlots_; ++i) {
    if (gens_[i] & 1u) slot(i).action.reset();
  }
  auto& pool = detail::schedulerStoragePool();
  while (!chunks_.empty() && pool.chunks.size() < detail::kMaxPooledChunks) {
    pool.chunks.push_back(std::move(chunks_.back()));
    chunks_.pop_back();
  }
  detail::giveBuf(pool.nodeBufs, heap_);
  detail::giveBuf(pool.nodeBufs, sorted_);
  detail::giveBuf(pool.nodeBufs, fifo_);
  detail::giveBuf(pool.wordBufs, gens_);
  detail::giveBuf(pool.wordBufs, next_);
  detail::giveBuf(pool.wordBufs, prev_);
  detail::giveBuf(pool.wordBufs, wheelSeq_);
  detail::giveBuf(pool.timeBufs, wheelAt_);
  ref_->scheduler = nullptr;
  if (--ref_->refs == 0) delete ref_;
}

void Scheduler::heapPush(Node node) {
  std::size_t i = heap_.size();
  // Sortedness tracking: appending a key >= the current maximum keeps
  // the array in ascending order, which is itself a valid min-heap
  // (parent index < child index), so no sift is needed at all. Bulk
  // schedule-then-drain workloads push monotone keys, so the whole heap
  // stays a sorted run ready for O(1) promotion (rebuildSortedRun).
  if (heapSorted_) {
    if (i == 0 || !nodeBefore(node, heap_[i - 1])) {
      heap_.push_back(node);
      return;
    }
    heapSorted_ = false;
  }
  heap_.push_back(node);
  Node* h = heap_.data();
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!nodeBefore(h[i], h[parent])) break;
    std::swap(h[i], h[parent]);
    i = parent;
  }
}

void Scheduler::heapPopTop() {
  const std::size_t n = heap_.size() - 1;
  Node* h = heap_.data();
  const Node moved = h[n];  // displaced leaf to re-insert
  heap_.pop_back();
  if (n == 0) {
    heapSorted_ = true;  // empty again; start a fresh monotone run
    return;
  }
  heapSorted_ = false;  // the displaced leaf breaks array order
  // Hole-based sift-down: slide the min child up into the hole at each
  // level instead of swapping, halving the stores per level.
  std::size_t i = 0;
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (nodeBefore(h[c], h[best])) best = c;
    }
    if (!nodeBefore(h[best], moved)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = moved;
}

void Scheduler::siftDown(std::size_t i) {
  Node* h = heap_.data();
  const std::size_t n = heap_.size();
  const Node v = h[i];
  while (true) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (nodeBefore(h[c], h[best])) best = c;
    }
    if (!nodeBefore(h[best], v)) break;
    h[i] = h[best];
    i = best;
  }
  h[i] = v;
}

void Scheduler::compact() {
  // The run and the FIFO are cursor-drained in array order: filtering
  // preserves the relative order of the survivors, which is all their
  // pop order depends on. (The wheel holds no dead nodes -- deadline
  // cancels unlink eagerly -- so only the exact-lane queues are swept.)
  const auto dropDead = [this](std::vector<Node>& v, std::size_t& cur) {
    std::size_t w = 0;
    for (std::size_t r = cur; r < v.size(); ++r) {
      const std::uint32_t s = v[r].slot;
      if (gens_[s] & 1u) {
        v[w++] = v[r];
      } else {
        freeSlot(s);
      }
    }
    v.resize(w);
    cur = 0;
  };
  dropDead(sorted_, sortedCur_);
  dropDead(fifo_, fifoCur_);
  // The heap pops by key, and keys are unique, so any valid heap over
  // the surviving nodes fires in the identical order. Filter in place,
  // then Floyd-heapify. A previously sorted array stays sorted (a
  // subsequence of an ascending run is ascending) and thus stays a
  // valid heap without any sifting.
  std::size_t w = 0;
  for (std::size_t r = 0; r < heap_.size(); ++r) {
    const std::uint32_t s = heap_[r].slot;
    if (gens_[s] & 1u) {
      heap_[w++] = heap_[r];
    } else {
      freeSlot(s);
    }
  }
  heap_.resize(w);
  if (!heapSorted_ && w > 1) {
    for (std::size_t i = (w - 2) / 4 + 1; i-- > 0;) siftDown(i);
  } else if (w <= 1) {
    heapSorted_ = true;  // trivially ascending; start a fresh run
  }
  dead_ = 0;
}

void Scheduler::promoteDueBucket() {
  // Drain the earliest-due bucket into the heap in one pass. Promotion
  // happens strictly before anything at/after the bucket's boundary
  // fires (peekArmed's sync condition), and the boundary never trails a
  // resident deadline by more than one bucket granularity, so every
  // promoted node re-enters the global (time, seq) order in time to
  // fire exactly at its key -- bucket layout never shows through.
  const std::uint32_t bucket = wheelNextBucket_;
  std::uint32_t index = bucketHead_[bucket];
  while (index != kNoSlot) {
    const std::uint32_t n = next_[index];
    prev_[index] = kNoSlot;  // restore the not-on-wheel invariant
    heapPush(Node{wheelAt_[index], wheelSeq_[index], index});
    --wheelCount_;
    index = n;
  }
  wheelOcc_[bucket >> kWheelSlotBits] &=
      ~(1ull << (bucket & (kWheelSlots - 1)));
  recomputeWheelNext();
}

void Scheduler::recomputeWheelNext() {
  // Scan the occupancy bitmaps for the new earliest-due bucket. Bounded
  // by the number of occupied buckets (<= 1280, usually a handful);
  // runs only when the minimum bucket empties, never per event.
  if (wheelCount_ == 0) {
    wheelNextDue_ = kNever;
    wheelNextBucket_ = 0;
    return;
  }
  SimTime best = kNever;
  std::uint32_t bestBucket = 0;
  for (std::uint32_t level = 0; level < kWheelLevels; ++level) {
    std::uint64_t occ = wheelOcc_[level];
    while (occ != 0) {
      const std::uint32_t bucket =
          level * kWheelSlots +
          static_cast<std::uint32_t>(std::countr_zero(occ));
      occ &= occ - 1;
      if (bucketDue_[bucket] < best) {
        best = bucketDue_[bucket];
        bestBucket = bucket;
      }
    }
  }
  wheelNextDue_ = best;
  wheelNextBucket_ = bestBucket;
}

void Scheduler::rebuildSortedRun() {
  // Only called when the run is empty and the heap array is known to be
  // in ascending key order, so this is a buffer swap -- nothing is
  // copied, nothing is sorted. The heap inherits the run's old capacity,
  // which is what makes steady-state drains allocation-free: the two
  // buffers just alternate roles.
  sorted_.clear();
  sortedCur_ = 0;
  std::swap(sorted_, heap_);
  heapSorted_ = true;
}

std::int64_t Scheduler::run() {
  maybeRebuildSortedRun();
  std::int64_t n = 0;
  while (peekArmed(kNever)) {
    fireTop();
    ++n;
  }
  return n;
}

std::int64_t Scheduler::runUntil(SimTime until) {
  maybeRebuildSortedRun();
  std::int64_t n = 0;
  // promoteLimit = until: buckets due past the horizon stay parked on
  // the wheel (a trace replay calls runUntil per injected event -- far
  // lease deadlines must not be shoveled into the heap every time).
  while (peekArmed(until) && topNode()->at <= until) {
    fireTop();
    ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

bool Scheduler::step() {
  if (!peekArmed(kNever)) return false;
  fireTop();
  return true;
}

}  // namespace vlease::sim
