// Discrete-event simulation kernel: a virtual clock plus two timer
// lanes over one slab-allocated event arena --
//
//   * an EXACT lane (implicit 4-ary min-heap of (time, sequence) keys)
//     for events whose precise instant and ordering are part of the
//     protocol's observable behavior, and
//   * a DEADLINE lane (hierarchical timing wheel) for timers that mark
//     "this period has provably drained" and are almost always
//     cancelled before they fire -- lease expiries, ack-wait bounds,
//     session timeouts, retransmission budgets.
//
// ---- Which lane does a new call site belong on? ----
// Use scheduleAt/scheduleAfter (exact lane) when the event's firing
// instant is itself protocol- or measurement-visible: message
// deliveries, fault injections, audit sampling -- anything whose time
// stamps a metric or orders against other events by design contract.
// Use scheduleDeadline/scheduleDeadlineAfter (deadline lane) when the
// timer expresses a deadline that is expected to be cancelled or whose
// consumer only needs "not before the deadline, and not much after":
// lease/grace expiry waits, per-request timeouts, inactivity bounds,
// retry pacing. The deadline lane's contract is deliberately coarse --
// a deadline at now+delta may fire up to delta/8 late (one wheel-bucket
// granularity; see below) -- so callers must not encode exact-instant
// semantics in it. The protocols' epsilon margin already pads every
// lease deadline, which is what makes the coarse class safe there.
//
// Ordering guarantees (both lanes):
//   * events fire in nondecreasing virtual time;
//   * events scheduled for the same instant fire in FIFO order (the
//     sequence number breaks ties). This makes the zero-latency network
//     deterministic: a request scheduled "now" is handled before anything
//     scheduled later within the same instant, so a whole request/response
//     exchange completes inside one virtual instant -- exactly the paper's
//     sequential trace-processing model.
//
// Hot-path design (PR 3): scheduleAt performs zero heap allocations in
// steady state. Event closures are constructed directly inside
// fixed-size arena slots (util::InplaceFunction -- a closure that doesn't
// fit fails to compile) and invoked in place; slots live in fixed 512-slot
// chunks with stable addresses, recycled through an intrusive free list.
// The heap orders compact 16-byte nodes, so sift operations move 16
// bytes instead of a closure. Cancellation is generation-counted: a
// TimerHandle remembers (slot, generation); cancelling bumps the slot's
// generation in place -- no atomics, no per-event control block. On the
// exact lane the heap entry stays and is discarded when it reaches the
// top (lazy deletion); on the deadline lane the bucket node is unlinked
// and the slot reclaimed immediately (O(1) eager deletion), so a
// cancelled far-future deadline costs nothing beyond its insert.
//
// Timing-wheel lane (PR 7): kWheelLevels levels of kWheelSlots buckets
// each; level L has bucket granularity 2^(3L) microseconds (8x coarser
// per level, the Linux timer-wheel geometry), and a deadline at
// now+delta lands in the lowest level whose span covers delta, i.e. its
// bucket is never coarser than delta/8. Insert and cancel are O(1) and
// hashless: the level is the position of delta's top bit, the slot is a
// shift-and-mask of the absolute deadline, and the bucket is an
// intrusive doubly-linked list threaded through per-slot side arrays.
// Buckets are cascade-free: a bucket is visited exactly once, when the
// kernel is about to advance past its boundary, and its surviving
// entries are promoted -- in one step, never re-bucketed -- into the
// exact heap keyed by their original (deadline, sequence). Fire order
// is therefore normalized deterministically at expiry: the heap's total
// (time, seq) order decides, bit-for-bit identical to the order the
// exact lane alone would have produced, independent of bucket layout or
// promotion batching. (That is also why enabling the wheel cannot
// perturb the determinism goldens: the coarse buckets bound *bookkeeping*,
// while firing instants stay exact. Callers still must not rely on
// exactness -- the documented contract remains [deadline, deadline +
// granularity) so the representation stays free to coarsen.)
//
// Further accelerations, all invisible to semantics:
//   * Sorted-run drain: the kernel tracks (at O(1) per operation)
//     whether the heap array happens to be in ascending key order --
//     which bulk schedule-then-drain workloads always produce -- and if
//     so promotes it wholesale to a cursor-drained sorted run at drain
//     entry, making each pop O(1) instead of a full-depth sift. The pop
//     order is the same total order either way ((time, seq) keys are
//     unique), so firing order is bit-for-bit identical.
//   * Same-instant FIFO lane: an event scheduled for exactly now() --
//     every message on a zero-latency network -- skips the heap and
//     lands in a flat FIFO ring instead. Sequence numbers are globally
//     increasing, so the ring is seq-ordered by construction, and while
//     it is nonempty nothing later than now() can fire, so all resident
//     ring entries share one timestamp; the pop chooses the (time, seq)
//     minimum across ring, run, and heap, which is the exact total
//     order the heap alone produced. Fan-out bursts become O(1) per
//     event instead of a full-depth sift through resident timers.
//   * Dead-node compaction: exact-lane cancellation is lazy (the heap
//     node stays), which in cancel-heavy runs strands dead nodes that
//     deepen every sift and pin arena slots. When dead nodes outnumber
//     live ones the kernel filters them out and re-heapifies in place.
//     Pop order depends only on the (unique) keys, never on the array
//     layout, so firing order is unchanged.
//   * Per-thread storage recycling: destroyed schedulers donate their
//     slot chunks and vector buffers to a thread-local pool that the
//     next scheduler on that thread reuses (detail::SchedulerStoragePool),
//     so the one-scheduler-per-sweep-point lifecycle stops churning
//     pages through mmap/brk.
//
// Handle lifetime: handles may outlive the scheduler. They share one
// non-atomically refcounted block per scheduler that is nulled on
// destruction, so a late cancel()/pending() is a safe no-op. (The
// scheduler and its handles are single-threaded by design; parallel
// sweeps give every run its own scheduler.)
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/inplace_function.h"
#include "util/time.h"

namespace vlease::sim {

class Scheduler;
struct SchedulerTestPeer;

/// Inline capacity for event closures. Sized by the largest hot-path
/// closure in the tree: SimNetwork's delivery closure captures `this`
/// plus a whole net::Message (80 bytes). A closure that exceeds this --
/// or needs more than 8-byte alignment -- fails to compile at its call
/// site (see util::InplaceFunction).
inline constexpr std::size_t kEventClosureBytes = 88;

namespace detail {
/// One per scheduler, shared by all its handles. `refs` is a plain
/// integer: handles never cross threads, so no atomics on the hot path.
struct SchedulerRef {
  Scheduler* scheduler;
  std::uint32_t refs;
};

using EventAction = util::InplaceFunction<void(), kEventClosureBytes, 8>;

/// 16-byte heap node; the closure lives in the arena, keyed by `slot`.
struct EventNode {
  SimTime at;
  std::uint32_t seq;
  std::uint32_t slot;
};

/// Arena slot: just the closure. Slot metadata (generation counters,
/// free-list links, and wheel-bucket links) lives in dense side arrays
/// so the peek/cancel hot paths walk 4-byte-stride memory instead of
/// pulling a whole closure-sized line per probe.
struct EventSlot {
  EventAction action;
};

/// Per-thread recycling pool for scheduler backing storage. Fresh
/// schedulers are created constantly (one per sweep point, one per
/// benchmark iteration); handing chunks and vector buffers back and
/// forth here keeps those lifecycles off the mmap/brk boundary, where
/// glibc would otherwise fault-in and release the same pages over and
/// over. Buffers return to the pool of the thread that destroys the
/// scheduler; sizes are capped in ~Scheduler so an unusually large run
/// doesn't pin memory forever.
struct SchedulerStoragePool {
  std::vector<std::unique_ptr<EventSlot[]>> chunks;
  std::vector<std::vector<EventNode>> nodeBufs;
  std::vector<std::vector<std::uint32_t>> wordBufs;
  std::vector<std::vector<SimTime>> timeBufs;
};
SchedulerStoragePool& schedulerStoragePool();
}  // namespace detail

/// Cancellation token for a scheduled event. Default-constructed handles
/// are inert; cancel() after the event fired -- or after the scheduler
/// itself was destroyed -- is a harmless no-op. Copyable; copies refer
/// to the same event.
class TimerHandle {
 public:
  TimerHandle() = default;
  TimerHandle(const TimerHandle& other)
      : ref_(other.ref_), slot_(other.slot_), gen_(other.gen_) {
    if (ref_) ++ref_->refs;
  }
  TimerHandle(TimerHandle&& other) noexcept
      : ref_(other.ref_), slot_(other.slot_), gen_(other.gen_) {
    other.ref_ = nullptr;
  }
  TimerHandle& operator=(const TimerHandle& other) {
    if (this != &other) {
      release();
      ref_ = other.ref_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      if (ref_) ++ref_->refs;
    }
    return *this;
  }
  TimerHandle& operator=(TimerHandle&& other) noexcept {
    if (this != &other) {
      release();
      ref_ = other.ref_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      other.ref_ = nullptr;
    }
    return *this;
  }
  ~TimerHandle() { release(); }

  void cancel();
  bool pending() const;

 private:
  friend class Scheduler;
  friend struct SchedulerTestPeer;
  TimerHandle(detail::SchedulerRef* ref, std::uint32_t slot,
              std::uint32_t gen)
      : ref_(ref), slot_(slot), gen_(gen) {
    ++ref_->refs;
  }

  void release() {
    if (ref_ && --ref_->refs == 0) delete ref_;
    ref_ = nullptr;
  }

  detail::SchedulerRef* ref_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  using Action = detail::EventAction;

  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// EXACT lane: schedule a callable at absolute virtual time `at`
  /// (>= now). The event fires at exactly `at`, ordered against every
  /// other event by the global (time, sequence) total order. Use this
  /// for events whose instant is protocol- or measurement-visible (see
  /// the lane-selection rule in the file comment). The closure is
  /// constructed directly in its arena slot.
  template <typename F>
  TimerHandle scheduleAt(SimTime at, F&& action) {
    VL_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const std::uint32_t index = allocSlot();
    this->slot(index).action.emplace(std::forward<F>(action));
    const std::uint32_t gen = ++gens_[index];  // even -> odd: armed
    if (at == now_) {
      fifo_.push_back(Node{at, nextSeq_++, index});
    } else {
      heapPush(Node{at, nextSeq_++, index});
    }
    ++live_;
    return TimerHandle(ref_, index, gen);
  }

  /// EXACT lane: schedule a callable after `delay` (>= 0).
  template <typename F>
  TimerHandle scheduleAfter(SimDuration delay, F&& action) {
    VL_CHECK(delay >= 0);
    return scheduleAt(addSat(now_, delay), std::forward<F>(action));
  }

  /// DEADLINE lane: schedule a callable for deadline `at` (>= now) on
  /// the timing wheel. Contract: the callable fires no earlier than
  /// `at` and no later than one wheel-bucket granularity past it --
  /// strictly less than (at - now)/8 late -- at a deterministic instant
  /// (the current implementation normalizes to exactly `at`; callers
  /// must not rely on that). Insert is O(1); cancel is O(1) and
  /// reclaims the slot immediately, so the expected-case
  /// schedule-then-cancel lifecycle of lease and timeout timers never
  /// touches the heap. Deadlines at the current instant take the
  /// same-instant FIFO lane, exactly like scheduleAt.
  template <typename F>
  TimerHandle scheduleDeadline(SimTime at, F&& action) {
    VL_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const std::uint32_t index = allocSlot();
    this->slot(index).action.emplace(std::forward<F>(action));
    const std::uint32_t gen = ++gens_[index];  // even -> odd: armed
    const std::uint32_t seq = nextSeq_++;
    if (at == now_) {
      fifo_.push_back(Node{at, seq, index});
    } else {
      wheelLink(index, at, seq);
    }
    ++live_;
    return TimerHandle(ref_, index, gen);
  }

  /// DEADLINE lane: schedule a callable for deadline now + `delay`.
  template <typename F>
  TimerHandle scheduleDeadlineAfter(SimDuration delay, F&& action) {
    VL_CHECK(delay >= 0);
    return scheduleDeadline(addSat(now_, delay), std::forward<F>(action));
  }

  /// Run until the queue drains. Returns the number of events fired
  /// (cancelled entries not counted).
  std::int64_t run();

  /// Run events with time <= `until`; afterwards now() == max(now, until).
  /// Events scheduled exactly at `until` do fire.
  std::int64_t runUntil(SimTime until);

  /// Fire exactly one pending event (skipping cancelled ones).
  /// Returns false if the queue is empty.
  bool step();

  bool empty() const { return live_ == 0; }
  std::size_t pendingCount() const { return live_; }

  /// Total events fired over the scheduler's lifetime.
  std::int64_t firedCount() const { return fired_; }

 private:
  friend class TimerHandle;
  friend struct SchedulerTestPeer;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Below this many heap nodes a drain just pops the heap directly.
  static constexpr std::size_t kSortedRunThreshold = 64;
  /// Compaction never triggers below this many dead nodes (small runs
  /// recycle dead entries through peekArmed fast enough).
  static constexpr std::size_t kCompactMinDead = 1024;
  /// Generation-wraparound guard: once a slot's generation counter gets
  /// within one lifecycle of wrapping 2^32, freeSlot() retires the slot
  /// instead of recycling it, so a TimerHandle from ~2^31 lifecycles
  /// ago can never alias a newly armed event with the same (slot, gen).
  /// Reaching this takes ~2^31 schedule/finish cycles through ONE slot;
  /// retiring (leaking) the rare slot that does is far cheaper than
  /// widening every generation word.
  static constexpr std::uint32_t kGenRetire = 0xfffffff0u;

  // ---- timing-wheel geometry ----
  /// 64 buckets per level, 8x coarser per level: level L has bucket
  /// granularity 2^(3L) us, and a deadline delta lands on the lowest
  /// level whose 64-bucket span still covers it, i.e. 2^(3L+3) <= delta
  /// < 2^(3L+6) (level 0 takes everything below 64 us). 20 levels cover
  /// the whole positive SimTime range.
  static constexpr std::uint32_t kWheelSlotBits = 6;
  static constexpr std::uint32_t kWheelSlots = 1u << kWheelSlotBits;
  static constexpr std::uint32_t kWheelLevelShift = 3;  // 8x per level
  static constexpr std::uint32_t kWheelLevels = 20;
  static constexpr std::uint32_t kWheelBuckets = kWheelLevels * kWheelSlots;
  /// prev_-link tag marking a node as the head of bucket (prev_ & ~flag).
  static constexpr std::uint32_t kBucketFlag = 0x80000000u;

  using Node = detail::EventNode;
  using Slot = detail::EventSlot;

  /// FIFO-within-a-tick ordering. seq is a truncated rolling counter;
  /// the wrap-aware subtraction is exact as long as co-resident
  /// same-instant events span < 2^31 sequence numbers (they always do:
  /// each costs an arena slot).
  static bool nodeBefore(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t allocSlot() {
    if (freeHead_ != kNoSlot) {
      const std::uint32_t index = freeHead_;
      freeHead_ = next_[index];
      return index;
    }
    if ((numSlots_ & (kChunkSize - 1)) == 0) {
      VL_CHECK_MSG(numSlots_ < kNoSlot - kChunkSize, "event arena exhausted");
      auto& pool = detail::schedulerStoragePool();
      if (!pool.chunks.empty()) {
        chunks_.push_back(std::move(pool.chunks.back()));
        pool.chunks.pop_back();
      } else {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      gens_.resize(numSlots_ + kChunkSize, 0);
      next_.resize(numSlots_ + kChunkSize, kNoSlot);
      prev_.resize(numSlots_ + kChunkSize, kNoSlot);
      wheelAt_.resize(numSlots_ + kChunkSize, 0);
      wheelSeq_.resize(numSlots_ + kChunkSize, 0);
    }
    return numSlots_++;
  }

  void freeSlot(std::uint32_t index) {
    if (gens_[index] >= kGenRetire) return;  // wraparound guard: retire
    next_[index] = freeHead_;
    freeHead_ = index;
  }

  void heapPush(Node node);
  void heapPopTop();
  void siftDown(std::size_t i);
  /// Drop every disarmed node from all three exact-lane queues,
  /// recycling their slots, then restore the heap invariant in place.
  /// (Wheel buckets hold no dead nodes: deadline cancels unlink
  /// eagerly.)
  void compact();

  // ---- timing-wheel internals ----
  /// Level for a strictly positive delta: lowest L whose 64-bucket span
  /// (2^(3L+6) us) still covers it.
  static std::uint32_t wheelLevelFor(SimDuration delta) {
    const int top = 63 - std::countl_zero(static_cast<std::uint64_t>(delta));
    return top < static_cast<int>(kWheelSlotBits)
               ? 0u
               : (static_cast<std::uint32_t>(top) - kWheelSlotBits + 3) /
                     kWheelLevelShift;
  }

  /// O(1) hashless insert: the bucket index is a shift-and-mask of the
  /// absolute deadline; the node is pushed at the list head (intra-
  /// bucket order is irrelevant -- promotion re-keys through the heap).
  /// bucketDue_ tracks the earliest boundary of any resident entry, so
  /// a level-miscast wrap collision merely promotes a far entry early
  /// (harmless: it still fires at its exact key via the heap).
  void wheelLink(std::uint32_t index, SimTime at, std::uint32_t seq) {
    wheelAt_[index] = at;
    wheelSeq_[index] = seq;
    const std::uint32_t level = wheelLevelFor(at - now_);
    const std::uint32_t shift = level * kWheelLevelShift;
    const SimTime boundary = (at >> shift) << shift;
    const std::uint32_t bucket =
        level * kWheelSlots +
        (static_cast<std::uint32_t>(at >> shift) & (kWheelSlots - 1));
    const std::uint64_t bit = 1ull << (bucket & (kWheelSlots - 1));
    if (wheelOcc_[level] & bit) {
      const std::uint32_t head = bucketHead_[bucket];
      next_[index] = head;
      prev_[head] = index;
      if (boundary < bucketDue_[bucket]) bucketDue_[bucket] = boundary;
    } else {
      wheelOcc_[level] |= bit;
      next_[index] = kNoSlot;
      bucketDue_[bucket] = boundary;
    }
    bucketHead_[bucket] = index;
    prev_[index] = kBucketFlag | bucket;
    if (wheelCount_ == 0 || bucketDue_[bucket] < wheelNextDue_) {
      wheelNextDue_ = bucketDue_[bucket];
      wheelNextBucket_ = bucket;
    }
    ++wheelCount_;
  }

  /// O(1) cancel: unlink the node from its bucket list. The caller
  /// reclaims the slot; no lazy-deletion debt is created.
  void wheelUnlink(std::uint32_t index) {
    const std::uint32_t p = prev_[index];
    const std::uint32_t n = next_[index];
    if (n != kNoSlot) prev_[n] = p;
    if (p & kBucketFlag) {
      const std::uint32_t bucket = p & ~kBucketFlag;
      bucketHead_[bucket] = n;
      if (n == kNoSlot) {
        wheelOcc_[bucket >> kWheelSlotBits] &=
            ~(1ull << (bucket & (kWheelSlots - 1)));
        --wheelCount_;
        if (bucket == wheelNextBucket_) recomputeWheelNext();
        prev_[index] = kNoSlot;
        return;
      }
    } else {
      next_[p] = n;
    }
    prev_[index] = kNoSlot;
    --wheelCount_;
  }

  bool slotOnWheel(std::uint32_t index) const {
    return prev_[index] != kNoSlot;
  }

  /// Move every entry of the earliest-due bucket into the exact heap,
  /// keyed by its original (deadline, insertion sequence). Called only
  /// when the kernel is about to fire an event at or past the bucket's
  /// boundary, so no promoted entry can be late -- and because the heap
  /// then applies the global total order, firing is bit-for-bit what
  /// the exact lane alone would have produced.
  void promoteDueBucket();
  /// Rescan the occupancy bitmaps for the new earliest-due bucket.
  void recomputeWheelNext();

  /// Nodes already consumed from the sorted run.
  bool haveSorted() const { return sortedCur_ < sorted_.size(); }
  std::size_t sortedRemaining() const { return sorted_.size() - sortedCur_; }
  bool haveFifo() const { return fifoCur_ < fifo_.size(); }

  /// Nodes resident in any of the three exact-lane queues, dead or
  /// alive (compaction-ratio denominator; wheel entries are never dead).
  std::size_t residentNodes() const {
    return heap_.size() + sortedRemaining() + (fifo_.size() - fifoCur_);
  }

  /// Current minimum across the same-instant FIFO, the sorted-run
  /// cursor, and the heap, or null when all are empty. Keys are unique,
  /// so the choice is total.
  const Node* topNode() const {
    const Node* best = haveFifo() ? &fifo_[fifoCur_] : nullptr;
    if (haveSorted()) {
      const Node* s = &sorted_[sortedCur_];
      if (best == nullptr || nodeBefore(*s, *best)) best = s;
    }
    if (!heap_.empty()) {
      const Node* h = heap_.data();
      if (best == nullptr || nodeBefore(*h, *best)) best = h;
    }
    return best;
  }

  /// Pop the node `topNode()` just returned (pointer identifies which
  /// structure it lives in).
  void popTop(const Node* top) {
    if (haveFifo() && top == &fifo_[fifoCur_]) {
      ++fifoCur_;
      if (!haveFifo()) {
        fifo_.clear();
        fifoCur_ = 0;
      }
    } else if (haveSorted() && top == &sorted_[sortedCur_]) {
      ++sortedCur_;
      if (!haveSorted()) {
        sorted_.clear();
        sortedCur_ = 0;
      }
    } else {
      heapPopTop();
    }
  }

  void rebuildSortedRun();

  /// Promote the heap to the sorted run -- called at drain entry points.
  /// Fires only when the run is empty and the heap array is known to be
  /// in ascending order (`heapSorted_`, tracked incrementally at O(1)
  /// per push/pop), so the promotion is a pure buffer swap and draining
  /// then costs O(1) per event instead of a full-depth sift. The bulk
  /// schedule-then-drain pattern (trace replay, benchmarks) always
  /// qualifies; a heap with interleaved pops stays a plain heap --
  /// nothing is ever sorted or copied.
  void maybeRebuildSortedRun() {
    if (heapSorted_ && !haveSorted() &&
        heap_.size() >= kSortedRunThreshold) {
      rebuildSortedRun();
    }
  }

  /// Drop cancelled nodes (and promote due wheel buckets) until the
  /// queues' top is armed. Returns false when everything fireable is
  /// exhausted. `promoteLimit` bounds which wheel buckets may be
  /// promoted while the exact queues are empty: run()/step() pass
  /// kNever (drain the wheel too); runUntil(t) passes t so far-future
  /// buckets stay untouched on the wheel. A bucket whose boundary is at
  /// or before the current top key is always promoted -- it may hold
  /// deadlines that precede (or tie) that key in the global order.
  bool peekArmed(SimTime promoteLimit) {
    while (true) {
      const Node* top = topNode();
      if (wheelCount_ != 0 &&
          (top == nullptr ? wheelNextDue_ <= promoteLimit
                          : wheelNextDue_ <= top->at)) {
        promoteDueBucket();
        continue;
      }
      if (top == nullptr) return false;
      const std::uint32_t index = top->slot;
      if (gens_[index] & 1u) return true;
      popTop(top);
      freeSlot(index);
      --dead_;
    }
  }

  /// Fire the (armed) top node: advance the clock, disarm the slot, pop
  /// the node, then invoke the closure in place -- slot addresses are
  /// stable, and the slot is recycled only after the callback returns,
  /// so reentrant schedule/cancel/drain calls are safe.
  void fireTop() {
    const Node* tp = topNode();
    const Node top = *tp;  // copy: callbacks may reallocate the vectors
    Slot& s = slot(top.slot);
    now_ = top.at;
    ++gens_[top.slot];  // odd -> even: disarmed; handles go stale here
    --live_;
    popTop(tp);
    ++fired_;
    s.action();  // slot addresses are stable; reentrancy-safe
    s.action.reset();
    freeSlot(top.slot);
  }

  void cancelSlot(std::uint32_t index, std::uint32_t gen) {
    if (gens_[index] != gen) return;  // already fired/cancelled/recycled
    slot(index).action.reset();       // release captures eagerly
    ++gens_[index];                   // odd -> even: disarmed
    --live_;
    if (slotOnWheel(index)) {
      // Deadline lane: unlink and reclaim immediately -- the whole
      // point of the wheel is that the common cancelled-before-expiry
      // lease timer costs O(1) and leaves nothing behind.
      wheelUnlink(index);
      freeSlot(index);
      return;
    }
    ++dead_;
    // The queue node stays; peekArmed() recycles the slot when it
    // surfaces -- unless dead nodes come to dominate, in which case
    // compact() sweeps them out eagerly (far-future timers that get
    // cancelled would otherwise never surface).
    if (dead_ >= kCompactMinDead && dead_ * 2 > residentNodes()) compact();
  }

  bool slotPending(std::uint32_t index, std::uint32_t gen) const {
    return gens_[index] == gen;  // handles only ever hold odd gens
  }

  SimTime now_ = 0;
  std::uint32_t nextSeq_ = 0;
  std::int64_t fired_ = 0;
  std::size_t live_ = 0;
  std::vector<Node> heap_;
  /// True while `heap_`'s array happens to be in ascending key order
  /// (maintained incrementally; trivially true when empty).
  bool heapSorted_ = true;
  /// Drain accelerator: nodes promoted out of the heap, ascending by
  /// key, consumed front-to-back via `sortedCur_`
  /// (see rebuildSortedRun).
  std::vector<Node> sorted_;
  std::size_t sortedCur_ = 0;
  /// Same-instant lane: events scheduled for exactly now(), seq-ordered
  /// by construction, consumed front-to-back via `fifoCur_`.
  std::vector<Node> fifo_;
  std::size_t fifoCur_ = 0;
  /// Disarmed nodes still resident in an exact-lane queue (lazy
  /// deletion debt).
  std::size_t dead_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  /// Per-slot generation counters; odd == armed. Slots whose counter
  /// nears 2^32 are retired by freeSlot (kGenRetire), so a stale handle
  /// can never alias a recycled slot across a generation wrap.
  std::vector<std::uint32_t> gens_;
  /// Per-slot links. For a free slot, next_ is the free-list link
  /// (kNoSlot terminated). For a slot armed on the wheel, next_/prev_
  /// are its bucket's doubly-linked list (prev_ of the head carries
  /// kBucketFlag | bucket). prev_ == kNoSlot marks a slot as NOT on the
  /// wheel -- the invariant every wheel exit path (unlink, promotion)
  /// restores, so cancelSlot can dispatch lanes with one load.
  std::vector<std::uint32_t> next_;
  std::vector<std::uint32_t> prev_;
  /// Per-slot deadline key, valid while the slot is linked on the wheel
  /// (promotion re-keys the heap node from these).
  std::vector<SimTime> wheelAt_;
  std::vector<std::uint32_t> wheelSeq_;
  std::uint32_t numSlots_ = 0;
  std::uint32_t freeHead_ = kNoSlot;

  // ---- timing-wheel state ----
  /// Per-level occupancy bitmaps are the source of truth: bucketHead_ /
  /// bucketDue_ are read only for buckets whose bit is set, so none of
  /// these arrays needs initialization.
  std::uint64_t wheelOcc_[kWheelLevels] = {};
  std::array<std::uint32_t, kWheelBuckets> bucketHead_;
  std::array<SimTime, kWheelBuckets> bucketDue_;
  /// Entries resident on the wheel, and the earliest due bucket
  /// (wheelNextDue_ == kNever iff wheelCount_ == 0).
  std::size_t wheelCount_ = 0;
  SimTime wheelNextDue_ = kNever;
  std::uint32_t wheelNextBucket_ = 0;

  detail::SchedulerRef* ref_;
};

inline void TimerHandle::cancel() {
  if (ref_ && ref_->scheduler) ref_->scheduler->cancelSlot(slot_, gen_);
  release();
}

inline bool TimerHandle::pending() const {
  return ref_ && ref_->scheduler && ref_->scheduler->slotPending(slot_, gen_);
}

}  // namespace vlease::sim
