// Discrete-event simulation kernel: a virtual clock plus a priority queue
// of (time, sequence, closure) events.
//
// Ordering guarantees:
//   * events fire in nondecreasing virtual time;
//   * events scheduled for the same instant fire in FIFO order (the
//     sequence number breaks ties). This makes the zero-latency network
//     deterministic: a request scheduled "now" is handled before anything
//     scheduled later within the same instant, so a whole request/response
//     exchange completes inside one virtual instant -- exactly the paper's
//     sequential trace-processing model.
//
// Timers are cancellable via TimerHandle (lazy deletion: the heap entry
// stays but fires as a no-op).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/check.h"
#include "util/time.h"

namespace vlease::sim {

namespace detail {
struct EventState {
  bool alive = true;
  // Owned by the scheduler; shared so that cancelling after the scheduler
  // is gone is still safe.
  std::shared_ptr<std::size_t> liveCount;
};
}  // namespace detail

/// Cancellation token for a scheduled event. Default-constructed handles
/// are inert; cancel() after the event fired is a harmless no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  void cancel() {
    if (state_ && state_->alive) {
      state_->alive = false;
      --(*state_->liveCount);
    }
  }
  bool pending() const { return state_ && state_->alive; }

 private:
  friend class Scheduler;
  explicit TimerHandle(std::shared_ptr<detail::EventState> state)
      : state_(std::move(state)) {}
  std::shared_ptr<detail::EventState> state_;
};

class Scheduler {
 public:
  using Action = std::function<void()>;

  Scheduler() : liveCount_(std::make_shared<std::size_t>(0)) {}

  SimTime now() const { return now_; }

  /// Schedule `action` at absolute virtual time `at` (>= now).
  TimerHandle scheduleAt(SimTime at, Action action);

  /// Schedule `action` after `delay` (>= 0).
  TimerHandle scheduleAfter(SimDuration delay, Action action) {
    VL_CHECK(delay >= 0);
    return scheduleAt(addSat(now_, delay), std::move(action));
  }

  /// Run until the queue drains. Returns the number of events fired
  /// (cancelled entries not counted).
  std::int64_t run();

  /// Run events with time <= `until`; afterwards now() == max(now, until).
  /// Events scheduled exactly at `until` do fire.
  std::int64_t runUntil(SimTime until);

  /// Fire exactly one pending event (skipping cancelled ones).
  /// Returns false if the queue is empty.
  bool step();

  bool empty() const { return *liveCount_ == 0; }
  std::size_t pendingCount() const { return *liveCount_; }

  /// Total events fired over the scheduler's lifetime.
  std::int64_t firedCount() const { return fired_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Action action;
    std::shared_ptr<detail::EventState> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pop the next live entry, or return false.
  bool popLive(Entry& out);

  SimTime now_ = 0;
  std::uint64_t nextSeq_ = 0;
  std::int64_t fired_ = 0;
  std::shared_ptr<std::size_t> liveCount_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace vlease::sim
