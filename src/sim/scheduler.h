// Discrete-event simulation kernel: a virtual clock plus an implicit
// 4-ary min-heap of (time, sequence) keys over a slab-allocated event
// arena.
//
// Ordering guarantees:
//   * events fire in nondecreasing virtual time;
//   * events scheduled for the same instant fire in FIFO order (the
//     sequence number breaks ties). This makes the zero-latency network
//     deterministic: a request scheduled "now" is handled before anything
//     scheduled later within the same instant, so a whole request/response
//     exchange completes inside one virtual instant -- exactly the paper's
//     sequential trace-processing model.
//
// Hot-path design (PR 3): scheduleAt performs zero heap allocations in
// steady state. Event closures are constructed directly inside
// fixed-size arena slots (util::InplaceFunction -- a closure that doesn't
// fit fails to compile) and invoked in place; slots live in fixed 512-slot
// chunks with stable addresses, recycled through an intrusive free list.
// The heap orders compact 16-byte nodes, so sift operations move 16
// bytes instead of a closure. Cancellation is generation-counted: a
// TimerHandle remembers (slot, generation); cancelling bumps the slot's
// generation in place -- no atomics, no per-event control block. The
// heap entry stays and is discarded when it reaches the top (lazy
// deletion, same as the previous kernel).
//
// Further accelerations, all invisible to semantics:
//   * Sorted-run drain: the kernel tracks (at O(1) per operation)
//     whether the heap array happens to be in ascending key order --
//     which bulk schedule-then-drain workloads always produce -- and if
//     so promotes it wholesale to a cursor-drained sorted run at drain
//     entry, making each pop O(1) instead of a full-depth sift. The pop
//     order is the same total order either way ((time, seq) keys are
//     unique), so firing order is bit-for-bit identical.
//   * Same-instant FIFO lane: an event scheduled for exactly now() --
//     every message on a zero-latency network -- skips the heap and
//     lands in a flat FIFO ring instead. Sequence numbers are globally
//     increasing, so the ring is seq-ordered by construction, and while
//     it is nonempty nothing later than now() can fire, so all resident
//     ring entries share one timestamp; the pop chooses the (time, seq)
//     minimum across ring, run, and heap, which is the exact total
//     order the heap alone produced. Fan-out bursts become O(1) per
//     event instead of a full-depth sift through resident timers.
//   * Dead-node compaction: cancellation is lazy (the heap node stays),
//     which in cancel-heavy runs strands dead nodes that deepen every
//     sift and pin arena slots. When dead nodes outnumber live ones the
//     kernel filters them out and re-heapifies in place. Pop order
//     depends only on the (unique) keys, never on the array layout, so
//     firing order is unchanged.
//   * Per-thread storage recycling: destroyed schedulers donate their
//     slot chunks and vector buffers to a thread-local pool that the
//     next scheduler on that thread reuses (detail::SchedulerStoragePool),
//     so the one-scheduler-per-sweep-point lifecycle stops churning
//     pages through mmap/brk.
//
// Handle lifetime: handles may outlive the scheduler. They share one
// non-atomically refcounted block per scheduler that is nulled on
// destruction, so a late cancel()/pending() is a safe no-op. (The
// scheduler and its handles are single-threaded by design; parallel
// sweeps give every run its own scheduler.)
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/inplace_function.h"
#include "util/time.h"

namespace vlease::sim {

class Scheduler;

/// Inline capacity for event closures. Sized by the largest hot-path
/// closure in the tree: SimNetwork's delivery closure captures `this`
/// plus a whole net::Message (80 bytes). A closure that exceeds this --
/// or needs more than 8-byte alignment -- fails to compile at its call
/// site (see util::InplaceFunction).
inline constexpr std::size_t kEventClosureBytes = 88;

namespace detail {
/// One per scheduler, shared by all its handles. `refs` is a plain
/// integer: handles never cross threads, so no atomics on the hot path.
struct SchedulerRef {
  Scheduler* scheduler;
  std::uint32_t refs;
};

using EventAction = util::InplaceFunction<void(), kEventClosureBytes, 8>;

/// 16-byte heap node; the closure lives in the arena, keyed by `slot`.
struct EventNode {
  SimTime at;
  std::uint32_t seq;
  std::uint32_t slot;
};

/// Arena slot: just the closure. Slot metadata (generation counters
/// and free-list links) lives in dense side arrays so the peek/cancel
/// hot paths walk 4-byte-stride memory instead of pulling a whole
/// closure-sized line per probe.
struct EventSlot {
  EventAction action;
};

/// Per-thread recycling pool for scheduler backing storage. Fresh
/// schedulers are created constantly (one per sweep point, one per
/// benchmark iteration); handing chunks and vector buffers back and
/// forth here keeps those lifecycles off the mmap/brk boundary, where
/// glibc would otherwise fault-in and release the same pages over and
/// over. Buffers return to the pool of the thread that destroys the
/// scheduler; sizes are capped in ~Scheduler so an unusually large run
/// doesn't pin memory forever.
struct SchedulerStoragePool {
  std::vector<std::unique_ptr<EventSlot[]>> chunks;
  std::vector<std::vector<EventNode>> nodeBufs;
  std::vector<std::vector<std::uint32_t>> wordBufs;
};
SchedulerStoragePool& schedulerStoragePool();
}  // namespace detail

/// Cancellation token for a scheduled event. Default-constructed handles
/// are inert; cancel() after the event fired -- or after the scheduler
/// itself was destroyed -- is a harmless no-op. Copyable; copies refer
/// to the same event.
class TimerHandle {
 public:
  TimerHandle() = default;
  TimerHandle(const TimerHandle& other)
      : ref_(other.ref_), slot_(other.slot_), gen_(other.gen_) {
    if (ref_) ++ref_->refs;
  }
  TimerHandle(TimerHandle&& other) noexcept
      : ref_(other.ref_), slot_(other.slot_), gen_(other.gen_) {
    other.ref_ = nullptr;
  }
  TimerHandle& operator=(const TimerHandle& other) {
    if (this != &other) {
      release();
      ref_ = other.ref_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      if (ref_) ++ref_->refs;
    }
    return *this;
  }
  TimerHandle& operator=(TimerHandle&& other) noexcept {
    if (this != &other) {
      release();
      ref_ = other.ref_;
      slot_ = other.slot_;
      gen_ = other.gen_;
      other.ref_ = nullptr;
    }
    return *this;
  }
  ~TimerHandle() { release(); }

  void cancel();
  bool pending() const;

 private:
  friend class Scheduler;
  TimerHandle(detail::SchedulerRef* ref, std::uint32_t slot,
              std::uint32_t gen)
      : ref_(ref), slot_(slot), gen_(gen) {
    ++ref_->refs;
  }

  void release() {
    if (ref_ && --ref_->refs == 0) delete ref_;
    ref_ = nullptr;
  }

  detail::SchedulerRef* ref_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  using Action = detail::EventAction;

  Scheduler();
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Schedule a callable at absolute virtual time `at` (>= now). The
  /// closure is constructed directly in its arena slot.
  template <typename F>
  TimerHandle scheduleAt(SimTime at, F&& action) {
    VL_CHECK_MSG(at >= now_, "cannot schedule in the past");
    const std::uint32_t index = allocSlot();
    this->slot(index).action.emplace(std::forward<F>(action));
    const std::uint32_t gen = ++gens_[index];  // even -> odd: armed
    if (at == now_) {
      fifo_.push_back(Node{at, nextSeq_++, index});
    } else {
      heapPush(Node{at, nextSeq_++, index});
    }
    ++live_;
    return TimerHandle(ref_, index, gen);
  }

  /// Schedule a callable after `delay` (>= 0).
  template <typename F>
  TimerHandle scheduleAfter(SimDuration delay, F&& action) {
    VL_CHECK(delay >= 0);
    return scheduleAt(addSat(now_, delay), std::forward<F>(action));
  }

  /// Run until the queue drains. Returns the number of events fired
  /// (cancelled entries not counted).
  std::int64_t run();

  /// Run events with time <= `until`; afterwards now() == max(now, until).
  /// Events scheduled exactly at `until` do fire.
  std::int64_t runUntil(SimTime until);

  /// Fire exactly one pending event (skipping cancelled ones).
  /// Returns false if the queue is empty.
  bool step();

  bool empty() const { return live_ == 0; }
  std::size_t pendingCount() const { return live_; }

  /// Total events fired over the scheduler's lifetime.
  std::int64_t firedCount() const { return fired_; }

 private:
  friend class TimerHandle;

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;
  static constexpr std::uint32_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  /// Below this many heap nodes a drain just pops the heap directly.
  static constexpr std::size_t kSortedRunThreshold = 64;
  /// Compaction never triggers below this many dead nodes (small runs
  /// recycle dead entries through peekArmed fast enough).
  static constexpr std::size_t kCompactMinDead = 1024;

  using Node = detail::EventNode;
  using Slot = detail::EventSlot;

  /// FIFO-within-a-tick ordering. seq is a truncated rolling counter;
  /// the wrap-aware subtraction is exact as long as co-resident
  /// same-instant events span < 2^31 sequence numbers (they always do:
  /// each costs an arena slot).
  static bool nodeBefore(const Node& a, const Node& b) {
    if (a.at != b.at) return a.at < b.at;
    return static_cast<std::int32_t>(a.seq - b.seq) < 0;
  }

  Slot& slot(std::uint32_t index) {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t index) const {
    return chunks_[index >> kChunkShift][index & (kChunkSize - 1)];
  }

  std::uint32_t allocSlot() {
    if (freeHead_ != kNoSlot) {
      const std::uint32_t index = freeHead_;
      freeHead_ = next_[index];
      return index;
    }
    if ((numSlots_ & (kChunkSize - 1)) == 0) {
      VL_CHECK_MSG(numSlots_ < kNoSlot - kChunkSize, "event arena exhausted");
      auto& pool = detail::schedulerStoragePool();
      if (!pool.chunks.empty()) {
        chunks_.push_back(std::move(pool.chunks.back()));
        pool.chunks.pop_back();
      } else {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
      gens_.resize(numSlots_ + kChunkSize, 0);
      next_.resize(numSlots_ + kChunkSize, kNoSlot);
    }
    return numSlots_++;
  }

  void freeSlot(std::uint32_t index) {
    next_[index] = freeHead_;
    freeHead_ = index;
  }

  void heapPush(Node node);
  void heapPopTop();
  void siftDown(std::size_t i);
  /// Drop every disarmed node from all three queues, recycling their
  /// slots, then restore the heap invariant in place.
  void compact();

  /// Nodes already consumed from the sorted run.
  bool haveSorted() const { return sortedCur_ < sorted_.size(); }
  std::size_t sortedRemaining() const { return sorted_.size() - sortedCur_; }
  bool haveFifo() const { return fifoCur_ < fifo_.size(); }

  /// Nodes resident in any of the three queues, dead or alive.
  std::size_t residentNodes() const {
    return heap_.size() + sortedRemaining() + (fifo_.size() - fifoCur_);
  }

  /// Current minimum across the same-instant FIFO, the sorted-run
  /// cursor, and the heap, or null when all are empty. Keys are unique,
  /// so the choice is total.
  const Node* topNode() const {
    const Node* best = haveFifo() ? &fifo_[fifoCur_] : nullptr;
    if (haveSorted()) {
      const Node* s = &sorted_[sortedCur_];
      if (best == nullptr || nodeBefore(*s, *best)) best = s;
    }
    if (!heap_.empty()) {
      const Node* h = heap_.data();
      if (best == nullptr || nodeBefore(*h, *best)) best = h;
    }
    return best;
  }

  /// Pop the node `topNode()` just returned (pointer identifies which
  /// structure it lives in).
  void popTop(const Node* top) {
    if (haveFifo() && top == &fifo_[fifoCur_]) {
      ++fifoCur_;
      if (!haveFifo()) {
        fifo_.clear();
        fifoCur_ = 0;
      }
    } else if (haveSorted() && top == &sorted_[sortedCur_]) {
      ++sortedCur_;
      if (!haveSorted()) {
        sorted_.clear();
        sortedCur_ = 0;
      }
    } else {
      heapPopTop();
    }
  }

  void rebuildSortedRun();

  /// Promote the heap to the sorted run -- called at drain entry points.
  /// Fires only when the run is empty and the heap array is known to be
  /// in ascending order (`heapSorted_`, tracked incrementally at O(1)
  /// per push/pop), so the promotion is a pure buffer swap and draining
  /// then costs O(1) per event instead of a full-depth sift. The bulk
  /// schedule-then-drain pattern (trace replay, benchmarks) always
  /// qualifies; a heap with interleaved pops stays a plain heap --
  /// nothing is ever sorted or copied.
  void maybeRebuildSortedRun() {
    if (heapSorted_ && !haveSorted() &&
        heap_.size() >= kSortedRunThreshold) {
      rebuildSortedRun();
    }
  }

  /// Drop cancelled nodes until the queue's top is armed. Returns false
  /// when the queue is exhausted. The single dead-entry-skipping
  /// primitive shared by run/runUntil/step.
  bool peekArmed() {
    while (const Node* top = topNode()) {
      const std::uint32_t index = top->slot;
      if (gens_[index] & 1u) return true;
      popTop(top);
      freeSlot(index);
      --dead_;
    }
    return false;
  }

  /// Fire the (armed) top node: advance the clock, disarm the slot, pop
  /// the node, then invoke the closure in place -- slot addresses are
  /// stable, and the slot is recycled only after the callback returns,
  /// so reentrant schedule/cancel/drain calls are safe.
  void fireTop() {
    const Node* tp = topNode();
    const Node top = *tp;  // copy: callbacks may reallocate the vectors
    Slot& s = slot(top.slot);
    now_ = top.at;
    ++gens_[top.slot];  // odd -> even: disarmed; handles go stale here
    --live_;
    popTop(tp);
    ++fired_;
    s.action();  // slot addresses are stable; reentrancy-safe
    s.action.reset();
    freeSlot(top.slot);
  }

  void cancelSlot(std::uint32_t index, std::uint32_t gen) {
    if (gens_[index] != gen) return;  // already fired/cancelled/recycled
    slot(index).action.reset();       // release captures eagerly
    ++gens_[index];                   // odd -> even: disarmed
    --live_;
    ++dead_;
    // The queue node stays; peekArmed() recycles the slot when it
    // surfaces -- unless dead nodes come to dominate, in which case
    // compact() sweeps them out eagerly (far-future timers that get
    // cancelled would otherwise never surface).
    if (dead_ >= kCompactMinDead && dead_ * 2 > residentNodes()) compact();
  }

  bool slotPending(std::uint32_t index, std::uint32_t gen) const {
    return gens_[index] == gen;  // handles only ever hold odd gens
  }

  SimTime now_ = 0;
  std::uint32_t nextSeq_ = 0;
  std::int64_t fired_ = 0;
  std::size_t live_ = 0;
  std::vector<Node> heap_;
  /// True while `heap_`'s array happens to be in ascending key order
  /// (maintained incrementally; trivially true when empty).
  bool heapSorted_ = true;
  /// Drain accelerator: nodes promoted out of the heap, ascending by
  /// key, consumed front-to-back via `sortedCur_`
  /// (see rebuildSortedRun).
  std::vector<Node> sorted_;
  std::size_t sortedCur_ = 0;
  /// Same-instant lane: events scheduled for exactly now(), seq-ordered
  /// by construction, consumed front-to-back via `fifoCur_`.
  std::vector<Node> fifo_;
  std::size_t fifoCur_ = 0;
  /// Disarmed nodes still resident in a queue (lazy deletion debt).
  std::size_t dead_ = 0;
  std::vector<std::unique_ptr<Slot[]>> chunks_;
  /// Per-slot generation counters; odd == armed. A stale handle could
  /// only alias after 2^32 bumps of one slot -- accepted.
  std::vector<std::uint32_t> gens_;
  /// Per-slot free-list links (kNoSlot terminated).
  std::vector<std::uint32_t> next_;
  std::uint32_t numSlots_ = 0;
  std::uint32_t freeHead_ = kNoSlot;
  detail::SchedulerRef* ref_;
};

inline void TimerHandle::cancel() {
  if (ref_ && ref_->scheduler) ref_->scheduler->cancelSlot(slot_, gen_);
  release();
}

inline bool TimerHandle::pending() const {
  return ref_ && ref_->scheduler && ref_->scheduler->slotPending(slot_, gen_);
}

}  // namespace vlease::sim
