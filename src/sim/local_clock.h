// Per-node clock views over the single global virtual clock.
//
// The scheduler keeps exactly one virtual clock (determinism: every
// event fires at a global instant, in FIFO order). Clock skew is a
// *read-side* transform: a node with a LocalClock reads the global
// instant `g` as `g + offset + drift`, where drift accrues linearly at
// `driftPpm` parts-per-million from the anchor instant. Nothing about
// event ordering changes -- only what a node *believes* the time is
// when it compares `now` against a lease expiry.
//
// Skew semantics (matching net::FaultPlan's skew/drift events):
//   * setOffset(node, g, d): the node's total skew at instant g becomes
//     exactly `d` (a step); any configured drift keeps accruing from g.
//   * setDrift(node, g, ppm): the drift rate becomes `ppm`, preserving
//     the total skew already accrued at g (no step).
//
// All arithmetic is integer-exact except the drift term, which rounds a
// double product the same way on every run -- replays are bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace vlease::sim {

struct LocalClock {
  SimDuration offset = 0;  // skew at the anchor instant
  double driftPpm = 0.0;   // rate error, microseconds per second
  SimTime anchor = 0;      // global instant offset/drift were last set

  /// Total skew (local minus global) at global instant `g`.
  SimDuration skewAt(SimTime g) const {
    if (driftPpm == 0.0) return offset;
    const double accrued =
        static_cast<double>(g - anchor) * driftPpm / 1'000'000.0;
    return offset + static_cast<SimDuration>(accrued);
  }

  /// The node's reading of global instant `g`.
  SimTime localNow(SimTime g) const { return addSat(g, skewAt(g)); }
};

/// Dense per-node clock table. Nodes without an entry (or never touched)
/// read the global clock exactly -- the zero-skew default costs nothing
/// and perturbs nothing.
class ClockMap {
 public:
  /// Local reading of global instant `g` for `node`.
  SimTime localNow(NodeId node, SimTime g) const {
    const LocalClock* c = find(node);
    return c ? c->localNow(g) : g;
  }

  /// Total skew (local minus global) of `node` at global instant `g`.
  SimDuration skewOf(NodeId node, SimTime g) const {
    const LocalClock* c = find(node);
    return c ? c->skewAt(g) : 0;
  }

  /// Step the node's total skew to exactly `offset` at instant `g`.
  void setOffset(NodeId node, SimTime g, SimDuration offset) {
    LocalClock& c = clockFor(node);
    c.offset = offset;
    c.anchor = g;
  }

  /// Change the drift rate at instant `g`, preserving accrued skew.
  void setDrift(NodeId node, SimTime g, double ppm) {
    LocalClock& c = clockFor(node);
    c.offset = c.skewAt(g);
    c.anchor = g;
    c.driftPpm = ppm;
  }

  bool empty() const { return clocks_.empty(); }

 private:
  const LocalClock* find(NodeId node) const {
    const std::uint32_t i = raw(node);
    return i < clocks_.size() ? &clocks_[i] : nullptr;
  }
  LocalClock& clockFor(NodeId node) {
    const std::uint32_t i = raw(node);
    if (i >= clocks_.size()) clocks_.resize(i + 1);
    return clocks_[i];
  }

  std::vector<LocalClock> clocks_;  // dense, indexed by raw(NodeId)
};

}  // namespace vlease::sim
