// Fixed-width table / CSV emitters for the bench binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace vlease::driver {

/// Accumulates rows of strings and prints an aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void addRow(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void printCsv(std::ostream& os) const;
  /// JSON array of {header: cell} objects, one per row.
  void printJson(std::ostream& os) const;

  static std::string num(double v, int precision = 3);
  static std::string num(std::int64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vlease::driver
