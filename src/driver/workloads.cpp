#include "driver/workloads.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace vlease::driver {

Workload buildWorkload(const WorkloadOptions& options) {
  trace::BuLikeConfig readConfig;
  readConfig.seed = options.seed;
  readConfig.scale = options.scale;
  readConfig.numClients = options.numClients;
  readConfig.numServers = options.numServers;
  readConfig.duration = options.duration;
  trace::BuLikeTrace trace = trace::generateBuLikeTrace(readConfig);

  trace::WriteModelConfig writeConfig;
  writeConfig.seed = options.seed ^ 0x9e3779b97f4a7c15ull;
  writeConfig.duration = options.duration;
  trace::WriteWorkload writes =
      trace::synthesizeWrites(trace.catalog, trace.readsPerObject, writeConfig);

  std::vector<trace::TraceEvent> writeEvents = std::move(writes.writes);
  if (options.burstyWrites) {
    trace::BurstyWriteConfig bursty;
    bursty.seed = options.seed ^ 0x5bf03635ull;
    writeEvents = trace::makeWritesBursty(trace.catalog, writeEvents, bursty);
  }

  Workload out{std::move(trace.catalog), {}, 0, 0, {}};
  out.readCount = static_cast<std::int64_t>(trace.reads.size());
  out.writeCount = static_cast<std::int64_t>(writeEvents.size());
  out.readsPerServer = std::move(trace.readsPerServer);
  out.events =
      trace::mergeEvents(std::move(trace.reads), std::move(writeEvents));
  return out;
}

Workload buildChaosWorkload(const ChaosWorkloadOptions& options) {
  VL_CHECK(options.numClients > 0 && options.numServers > 0);
  VL_CHECK(options.objectsPerServer > 0 && options.duration > 0);
  VL_CHECK(options.volumesPerServer > 0);
  trace::Catalog catalog(options.numServers, options.numClients);
  for (std::uint32_t s = 0; s < options.numServers; ++s) {
    std::vector<VolumeId> vols;
    vols.reserve(options.volumesPerServer);
    for (std::uint32_t k = 0; k < options.volumesPerServer; ++k) {
      vols.push_back(catalog.addVolume(catalog.serverNode(s)));
    }
    for (std::uint32_t o = 0; o < options.objectsPerServer; ++o) {
      catalog.addObject(vols[o % vols.size()], /*sizeBytes=*/4096);
    }
  }

  Rng rng(options.seed);
  const ZipfSampler pick(catalog.numObjects(), /*s=*/0.8);
  const double horizonSec = toSeconds(options.duration);

  std::vector<trace::TraceEvent> reads;
  for (std::uint32_t c = 0; c < options.numClients; ++c) {
    const NodeId client = catalog.clientNode(c);
    double t = rng.nextExponential(1.0 / options.readsPerClientPerSec);
    while (t < horizonSec) {
      const ObjectId obj = makeObjectId(pick(rng));
      reads.push_back(trace::TraceEvent{secondsToSim(t),
                                        trace::EventKind::kRead, client, obj});
      t += rng.nextExponential(1.0 / options.readsPerClientPerSec);
    }
  }
  trace::sortEvents(reads);

  std::vector<trace::TraceEvent> writes;
  const double writeRate =
      options.writesPerObjectPerSec * static_cast<double>(catalog.numObjects());
  double t = rng.nextExponential(1.0 / writeRate);
  while (t < horizonSec) {
    const ObjectId obj = makeObjectId(pick(rng));
    writes.push_back(trace::TraceEvent{secondsToSim(t),
                                       trace::EventKind::kWrite,
                                       catalog.object(obj).server, obj});
    t += rng.nextExponential(1.0 / writeRate);
  }

  // Flash crowd: distinct clients storm the coldest object (the last
  // catalog id, bottom of the Zipf ranking) over a short burst. Appended
  // after the base draws with no rng use, so the base trace above stays
  // bit-identical whether or not the storm is enabled.
  if (options.flashClients > 0) {
    VL_CHECK(options.flashClients <= options.numClients);
    const ObjectId coldest = makeObjectId(catalog.numObjects() - 1);
    const SimDuration spacing =
        options.flashDuration /
        std::max<std::uint32_t>(1, options.flashClients);
    for (std::uint32_t i = 0; i < options.flashClients; ++i) {
      reads.push_back(trace::TraceEvent{
          options.flashAt + static_cast<SimTime>(i) * spacing,
          trace::EventKind::kRead, catalog.clientNode(i), coldest});
    }
    trace::sortEvents(reads);
  }

  // Churn: a rotating client departs every churnPeriod and re-arrives
  // churnDowntime later. While down it keeps its scheduled reads -- a
  // departed client that reads again simply comes back cold, which is
  // exactly the lazy re-growth path the churn knob is meant to stress.
  std::vector<trace::TraceEvent> churn;
  if (options.churnPeriod > 0) {
    std::uint32_t k = 0;
    for (SimTime t = options.churnPeriod; t < options.duration;
         t += options.churnPeriod, ++k) {
      const NodeId client = catalog.clientNode(k % options.numClients);
      churn.push_back(trace::TraceEvent{t, trace::EventKind::kDepart,
                                        client, makeObjectId(0)});
      churn.push_back(trace::TraceEvent{t + options.churnDowntime,
                                        trace::EventKind::kArrive, client,
                                        makeObjectId(0)});
    }
    trace::sortEvents(churn);
  }

  Workload out{std::move(catalog), {}, 0, 0, {}};
  out.readCount = static_cast<std::int64_t>(reads.size());
  out.writeCount = static_cast<std::int64_t>(writes.size());
  out.readsPerServer.assign(options.numServers, 0);
  for (const trace::TraceEvent& e : reads) {
    ++out.readsPerServer[raw(out.catalog.object(e.obj).server)];
  }
  out.events = trace::mergeEvents(std::move(reads), std::move(writes));
  if (!churn.empty()) {
    out.events.insert(out.events.end(), churn.begin(), churn.end());
    trace::sortEvents(out.events);
  }
  return out;
}

std::uint32_t nthBusiestServer(const Workload& workload, std::size_t k) {
  VL_CHECK(k < workload.readsPerServer.size());
  std::vector<std::uint32_t> order(workload.readsPerServer.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (workload.readsPerServer[a] != workload.readsPerServer[b])
      return workload.readsPerServer[a] > workload.readsPerServer[b];
    return a < b;
  });
  return order[k];
}

}  // namespace vlease::driver
