#include "driver/workloads.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace vlease::driver {

Workload buildWorkload(const WorkloadOptions& options) {
  trace::BuLikeConfig readConfig;
  readConfig.seed = options.seed;
  readConfig.scale = options.scale;
  readConfig.numClients = options.numClients;
  readConfig.numServers = options.numServers;
  readConfig.duration = options.duration;
  trace::BuLikeTrace trace = trace::generateBuLikeTrace(readConfig);

  trace::WriteModelConfig writeConfig;
  writeConfig.seed = options.seed ^ 0x9e3779b97f4a7c15ull;
  writeConfig.duration = options.duration;
  trace::WriteWorkload writes =
      trace::synthesizeWrites(trace.catalog, trace.readsPerObject, writeConfig);

  std::vector<trace::TraceEvent> writeEvents = std::move(writes.writes);
  if (options.burstyWrites) {
    trace::BurstyWriteConfig bursty;
    bursty.seed = options.seed ^ 0x5bf03635ull;
    writeEvents = trace::makeWritesBursty(trace.catalog, writeEvents, bursty);
  }

  Workload out{std::move(trace.catalog), {}, 0, 0, {}};
  out.readCount = static_cast<std::int64_t>(trace.reads.size());
  out.writeCount = static_cast<std::int64_t>(writeEvents.size());
  out.readsPerServer = std::move(trace.readsPerServer);
  out.events =
      trace::mergeEvents(std::move(trace.reads), std::move(writeEvents));
  return out;
}

std::uint32_t nthBusiestServer(const Workload& workload, std::size_t k) {
  VL_CHECK(k < workload.readsPerServer.size());
  std::vector<std::uint32_t> order(workload.readsPerServer.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    if (workload.readsPerServer[a] != workload.readsPerServer[b])
      return workload.readsPerServer[a] > workload.readsPerServer[b];
    return a < b;
  });
  return order[k];
}

}  // namespace vlease::driver
