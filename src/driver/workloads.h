// Canonical experiment workloads: the BU-like read trace plus the
// paper's synthetic write model, merged into the single stream every
// figure runs on. All benches and integration tests share these so the
// algorithms are compared on identical inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/catalog.h"
#include "trace/events.h"
#include "trace/generator.h"
#include "trace/write_synth.h"

namespace vlease::driver {

struct WorkloadOptions {
  std::uint64_t seed = 1998;
  /// Scales object and read counts; 1.0 reproduces the paper's volumes
  /// (~69k objects, ~1.03M reads, ~210k writes over 120 days).
  double scale = 1.0;
  std::uint32_t numClients = 33;
  std::uint32_t numServers = 1000;
  SimDuration duration = days(120);
  /// Fig. 9: each write drags k ~ Exp(10) same-volume writes.
  bool burstyWrites = false;
};

struct Workload {
  trace::Catalog catalog;
  std::vector<trace::TraceEvent> events;  // reads + writes, merged
  std::int64_t readCount = 0;
  std::int64_t writeCount = 0;
  std::vector<std::int64_t> readsPerServer;  // by server index
};

Workload buildWorkload(const WorkloadOptions& options);

/// Small, dense workload for chaos runs: a handful of clients hammering
/// a couple of servers with short think times, so the fault windows of a
/// net::FaultPlan overlap plenty of protocol activity. Objects are
/// picked Zipf-style (shared hot objects make stale reads detectable).
/// Deterministic from the seed.
struct ChaosWorkloadOptions {
  std::uint64_t seed = 7;
  std::uint32_t numClients = 4;
  std::uint32_t numServers = 2;
  std::uint32_t objectsPerServer = 6;
  /// Volumes per server; objects spread round-robin across a server's
  /// volumes, so >= 2 makes traffic exercise cross-volume dispatch
  /// (per-thread shards, per-volume epochs) instead of keying every
  /// message to each server's volume 0. Default 1 keeps the original
  /// single-volume catalogs (and their goldens) bit-identical.
  std::uint32_t volumesPerServer = 1;
  SimDuration duration = minutes(30);
  double readsPerClientPerSec = 0.5;
  double writesPerObjectPerSec = 0.02;
  /// Flash crowd: this many distinct clients read the coldest object
  /// (the last catalog id, the bottom Zipf rank) in a burst spread over
  /// flashDuration from flashAt. 0 = off. Flash reads are appended
  /// after the base draws and consume no base randomness, so enabling
  /// them leaves the base trace -- and every pre-existing golden --
  /// bit-identical.
  std::uint32_t flashClients = 0;
  SimTime flashAt = minutes(10);
  SimDuration flashDuration = sec(5);
  /// Client churn: every churnPeriod one client departs gracefully
  /// (EventKind::kDepart -> ClientNode::retire(), distinct from a
  /// FaultPlan crash) and re-arrives churnDowntime later. 0 = off.
  SimDuration churnPeriod = 0;
  SimDuration churnDowntime = minutes(2);
};

Workload buildChaosWorkload(const ChaosWorkloadOptions& options);

/// Index (into catalog server numbering) of the k-th busiest server by
/// read count (k = 0 is the most popular).
std::uint32_t nthBusiestServer(const Workload& workload, std::size_t k);

}  // namespace vlease::driver
