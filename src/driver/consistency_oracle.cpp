#include "driver/consistency_oracle.h"

#include <algorithm>

#include "util/log.h"

namespace vlease::driver {

namespace {

bool isStrongAlgorithm(proto::Algorithm a) {
  switch (a) {
    case proto::Algorithm::kCallback:
    case proto::Algorithm::kLease:
    case proto::Algorithm::kVolumeLease:
    case proto::Algorithm::kVolumeDelayedInval:
      return true;
    default:
      return false;
  }
}

std::uint64_t pairKey(NodeId client, ObjectId obj) {
  return (static_cast<std::uint64_t>(raw(client)) << 32) | raw(obj);
}

std::uint64_t versionKey(ObjectId obj, Version version) {
  return (raw(obj) << 32) | static_cast<std::uint64_t>(version);
}

SimDuration pollWindowFor(const proto::ProtocolConfig& config) {
  switch (config.algorithm) {
    case proto::Algorithm::kPollEachRead:
      return 0;  // every read validates; only in-flight staleness is legal
    case proto::Algorithm::kPoll:
      return config.objectTimeout;
    case proto::Algorithm::kPollAdaptive:
      return config.adaptiveMaxTtl;  // the adaptive window's clamp
    default:
      return -1;  // not a Poll algorithm; no bounded-staleness contract
  }
}

}  // namespace

const char* violationKindName(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kStaleRead:
      return "stale-read";
    case ViolationKind::kCacheInconsistency:
      return "cache-inconsistency";
    case ViolationKind::kWriteDelayBound:
      return "write-delay-bound";
    case ViolationKind::kBlockedWrite:
      return "blocked-write";
    case ViolationKind::kLostWrite:
      return "lost-write";
  }
  return "?";
}

ConsistencyOracle::ConsistencyOracle(const trace::Catalog& catalog,
                                     const proto::ProtocolConfig& config,
                                     stats::Metrics& metrics, Options options)
    : catalog_(catalog),
      config_(config),
      metrics_(metrics),
      options_(options),
      strong_(isStrongAlgorithm(config.algorithm)),
      pollWindow_(pollWindowFor(config)) {
  ring_.resize(std::max<std::size_t>(options_.ringCapacity, 1));
}

SimDuration ConsistencyOracle::writeWaitBase() const {
  switch (config_.algorithm) {
    case proto::Algorithm::kLease:
    case proto::Algorithm::kBestEffortLease:
      return config_.objectTimeout;
    case proto::Algorithm::kVolumeLease:
    case proto::Algorithm::kVolumeDelayedInval:
      return std::min(config_.objectTimeout, config_.volumeTimeout);
    default:
      // Callback commits at the msgTimeout floor; Poll never waits.
      return 0;
  }
}

SimDuration ConsistencyOracle::recoveryBound() const {
  switch (config_.algorithm) {
    case proto::Algorithm::kLease:
    case proto::Algorithm::kBestEffortLease:
      // Gray & Cheriton: no writes until every possible lease expired
      // (epsilon-extended under the server-conservative rule).
      return addSat(config_.objectTimeout, config_.clockEpsilon);
    case proto::Algorithm::kVolumeLease:
    case proto::Algorithm::kVolumeDelayedInval:
      // recoveryUntil = max volume expiry granted + epsilon
      //              <= crash + t_v + epsilon.
      return addSat(config_.volumeTimeout, config_.clockEpsilon);
    default:
      return 0;  // Callback recovers immediately (and is tainted)
  }
}

bool ConsistencyOracle::callbackExempt(ObjectId obj) const {
  if (config_.algorithm != proto::Algorithm::kCallback) return false;
  if (taintedObjects_.count(obj) > 0) return true;
  return taintedServers_.count(serverOf(obj)) > 0;
}

bool ConsistencyOracle::skewExempt(NodeId client, SimTime now) const {
  if (options_.clocks == nullptr) return false;
  const SimDuration skew = options_.clocks->skewOf(client, now);
  const SimDuration mag = skew < 0 ? -skew : skew;
  return mag > options_.skewBound;
}

SimTime ConsistencyOracle::pollServeDeadline(ObjectId obj,
                                             Version served) const {
  const auto it = supersededAt_.find(versionKey(obj, served));
  if (it == supersededAt_.end()) return kNever;
  // A within-budget slow clock legitimately stretches the client's
  // validity window by up to skewBound (Poll has no epsilon rule to
  // absorb it), so the budget is part of the allowance.
  return addSat(it->second,
                addSat(pollWindow_ + options_.validationLatency,
                       options_.skewBound + options_.slack));
}

// ---------------------------------------------------------------------
// hooks
// ---------------------------------------------------------------------

void ConsistencyOracle::onRead(NodeId client, ObjectId obj,
                               const proto::ReadResult& result,
                               Version authoritative, SimTime now) {
  if (!result.ok) {
    record(now, "read FAILED client=" + std::to_string(raw(client)) +
                    " obj=" + std::to_string(raw(obj)));
    return;
  }
  const bool stale = result.version != authoritative;
  record(now, "read client=" + std::to_string(raw(client)) + " obj=" +
                  std::to_string(raw(obj)) + " v=" +
                  std::to_string(result.version) +
                  (stale ? " STALE (server v=" +
                               std::to_string(authoritative) + ")"
                         : ""));
  if (!stale) return;
  if (!strong_) {
    // Poll family: staleness inside the validity window is the
    // documented behavior; beyond it the contract is broken.
    // BestEffortLease: unbounded staleness by design, never flagged.
    if (!pollBounded()) return;
    const SimTime deadline = pollServeDeadline(obj, result.version);
    if (now <= deadline) return;
    if (skewExempt(client, now)) {
      record(now, "skew-exempt stale poll read client=" +
                      std::to_string(raw(client)) +
                      " (|skew| exceeds the configured bound)");
      return;
    }
    reportViolation(
        ViolationKind::kStaleRead, now,
        "client " + std::to_string(raw(client)) + " read obj " +
            std::to_string(raw(obj)) + " at version " +
            std::to_string(result.version) + " superseded " +
            formatSimTime(now - deadline) +
            " past the poll-window allowance (server is at " +
            std::to_string(authoritative) + ")");
    return;
  }
  if (callbackExempt(obj)) return;  // expected Callback breakage
  if (skewExempt(client, now)) {
    record(now, "skew-exempt stale read client=" +
                    std::to_string(raw(client)) +
                    " (|skew| exceeds the configured bound)");
    return;
  }
  reportViolation(
      ViolationKind::kStaleRead, now,
      "client " + std::to_string(raw(client)) + " read obj " +
          std::to_string(raw(obj)) + " at version " +
          std::to_string(result.version) + " but the server is at " +
          std::to_string(authoritative));
}

void ConsistencyOracle::onWriteIssued(ObjectId obj, SimTime now) {
  writes_[obj].outstanding.push_back(now);
  record(now, "write issued obj=" + std::to_string(raw(obj)));
}

void ConsistencyOracle::onWriteComplete(ObjectId obj,
                                        const proto::WriteResult& result,
                                        SimTime now) {
  WriteTrack& track = writes_[obj];
  SimTime issuedAt = now;
  if (!track.outstanding.empty()) {
    issuedAt = track.outstanding.front();
    track.outstanding.pop_front();
  }
  record(now, "write done obj=" + std::to_string(raw(obj)) + " v=" +
                  std::to_string(result.newVersion) +
                  (result.blocked ? " BLOCKED" : ""));
  if (pollBounded() && result.newVersion != kNoVersion) {
    // The previous version is superseded NOW; the poll-window clock on
    // serving it starts here.
    supersededAt_.try_emplace(versionKey(obj, result.newVersion - 1), now);
  }

  const NodeId server = serverOf(obj);
  const ServerFaults* faults = nullptr;
  auto fIt = serverFaults_.find(server);
  if (fIt != serverFaults_.end()) faults = &fIt->second;

  // Writes to one object serialize FIFO; a queued write's wait clock
  // effectively restarts when its predecessor commits, so the window we
  // bound starts at max(issue, previous completion).
  const SimTime windowStart = std::max(issuedAt, track.lastCompletion);
  track.lastCompletion = now;

  if (result.blocked) {
    if (config_.algorithm == proto::Algorithm::kCallback) {
      // The simulator force-completed a write Callback wanted to block
      // on forever: holders may now serve stale data. Expected breakage;
      // taint instead of flagging.
      taintedObjects_.insert(obj);
      record(now, "callback taint obj=" + std::to_string(raw(obj)) +
                      " (blocked write)");
      return;
    }
    // The only legitimate source of a blocked result elsewhere is a
    // crash force-completing in-flight writes at the crash instant.
    if (faults != nullptr && faults->lastCrashAt == now) {
      record(now, "write killed by crash of server " +
                      std::to_string(raw(server)));
      return;
    }
    reportViolation(ViolationKind::kBlockedWrite, now,
                    "write to obj " + std::to_string(raw(obj)) +
                        " reported blocked under " +
                        proto::algorithmName(config_.algorithm) +
                        " with no crash at completion time");
    return;
  }

  const SimDuration grace =
      faults == nullptr
          ? 0
          : std::max<SimDuration>(0, faults->graceEnd - windowStart);
  // clockEpsilon: the server-conservative rule legitimately waits
  // epsilon past nominal expiry before committing.
  const SimDuration allowed =
      addSat(addSat(addSat(writeWaitBase(), config_.clockEpsilon),
                    config_.msgTimeout + options_.slack),
             grace);
  const SimDuration waited = now - windowStart;
  if (waited > allowed) {
    reportViolation(
        ViolationKind::kWriteDelayBound, now,
        "write to obj " + std::to_string(raw(obj)) + " waited " +
            formatSimTime(waited) + " > allowed " + formatSimTime(allowed) +
            " (bound " + formatSimTime(writeWaitBase()) + " + msgTimeout " +
            formatSimTime(config_.msgTimeout) + " + crash grace " +
            formatSimTime(grace) + ")");
  }
}

void ConsistencyOracle::onFault(const net::FaultEvent& event, SimTime now) {
  record(now, "fault: " + formatFaultEvent(event));
  switch (event.kind) {
    case net::FaultEvent::Kind::kCrash:
      crashedNow_.insert(event.a);
      if (catalog_.isServer(event.a)) {
        ServerFaults& f = serverFaults_[event.a];
        f.everCrashed = true;
        f.lastCrashAt = now;
        f.graceEnd = std::max(f.graceEnd, addSat(now, recoveryBound()));
        if (config_.algorithm == proto::Algorithm::kCallback) {
          // Callback loses its callback lists with no recovery rule:
          // every object on this server may now go stale silently.
          taintedServers_.insert(event.a);
        }
        // A crash kills the server's in-flight and queued writes (some
        // complete as blocked at this very instant, some die without a
        // callback). Drop their issue records: pairing a later write's
        // completion with a pre-crash issue time would inflate its
        // apparent wait into a false delay-bound violation.
        for (auto& [obj, track] : writes_) {
          if (serverOf(obj) != event.a) continue;
          if (track.outstanding.empty()) continue;
          record(now, "write tracking reset obj=" +
                          std::to_string(raw(obj)) + " dropped=" +
                          std::to_string(track.outstanding.size()) +
                          " (server crash)");
          track.outstanding.clear();
        }
      }
      break;
    case net::FaultEvent::Kind::kRecover:
      crashedNow_.erase(event.a);
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------
// audits
// ---------------------------------------------------------------------

void ConsistencyOracle::audit(proto::ProtocolInstance& protocol, SimTime now) {
  if (!strong_ && !pollBounded()) return;
  for (std::uint32_t ci = 0; ci < catalog_.numClients(); ++ci) {
    const NodeId clientId = catalog_.clientNode(ci);
    if (crashedNow_.count(clientId) > 0) continue;  // RAM is gone anyway
    const proto::ClientNode& client = *protocol.clients[ci];
    for (const trace::ObjectInfo& info : catalog_.objects()) {
      const auto view = client.cacheView(info.id, now);
      if (!view.wouldServe) continue;
      const Version actual =
          protocol.serverAt(serverOf(info.id)).currentVersion(info.id);
      if (view.version == actual) continue;
      if (!strong_ && now <= pollServeDeadline(info.id, view.version)) {
        continue;  // stale but inside the Poll window: contractual
      }
      if (callbackExempt(info.id)) continue;
      if (skewExempt(clientId, now)) continue;
      if (!auditFlagged_.insert(pairKey(clientId, info.id)).second) continue;
      reportViolation(
          ViolationKind::kCacheInconsistency, now,
          "client " + std::to_string(raw(clientId)) +
              " would serve obj " + std::to_string(raw(info.id)) +
              " at version " + std::to_string(view.version) +
              " under valid leases but the server is at " +
              std::to_string(actual));
    }
  }
}

void ConsistencyOracle::finalAudit(proto::ProtocolInstance& protocol,
                                   SimTime now) {
  audit(protocol, now);
  for (const auto& [obj, track] : writes_) {
    if (track.outstanding.empty()) continue;
    const NodeId server = serverOf(obj);
    auto fIt = serverFaults_.find(server);
    if (fIt != serverFaults_.end() && fIt->second.everCrashed) {
      // Crashes kill in-flight and queued writes; that is modeled
      // behavior, not a bug.
      record(now, "writes lost to crash obj=" + std::to_string(raw(obj)) +
                      " count=" + std::to_string(track.outstanding.size()));
      continue;
    }
    reportViolation(ViolationKind::kLostWrite, now,
                    std::to_string(track.outstanding.size()) +
                        " write(s) to obj " + std::to_string(raw(obj)) +
                        " never completed and server " +
                        std::to_string(raw(server)) + " never crashed");
  }
}

// ---------------------------------------------------------------------
// reporting
// ---------------------------------------------------------------------

void ConsistencyOracle::record(SimTime at, std::string text) {
  ring_[ringNext_] = formatSimTime(at) + " " + std::move(text);
  ringNext_ = (ringNext_ + 1) % ring_.size();
  if (ringNext_ == 0) ringWrapped_ = true;
}

std::string ConsistencyOracle::dumpRing() const {
  std::string out;
  const std::size_t n = ringWrapped_ ? ring_.size() : ringNext_;
  const std::size_t start = ringWrapped_ ? ringNext_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out += "\n    ";
    out += ring_[(start + i) % ring_.size()];
  }
  return out;
}

void ConsistencyOracle::reportViolation(ViolationKind kind, SimTime now,
                                        const std::string& detail) {
  ++counts_[static_cast<std::size_t>(kind)];
  ++total_;
  metrics_.onOracleViolation();
  record(now, std::string("VIOLATION ") + violationKindName(kind) + ": " +
                  detail);
  if (dumpsEmitted_ >= options_.maxDumps) return;
  ++dumpsEmitted_;
  VL_LOG_WARN << "consistency violation [" << violationKindName(kind)
              << "] at " << formatSimTime(now) << " under "
              << proto::algorithmName(config_.algorithm) << ": " << detail
              << "\n  last " << (ringWrapped_ ? ring_.size() : ringNext_)
              << " events:" << dumpRing();
}

std::string ConsistencyOracle::summary() const {
  if (total_ == 0) return "ok";
  std::string out;
  for (std::size_t k = 0; k < kNumViolationKinds; ++k) {
    if (counts_[k] == 0) continue;
    if (!out.empty()) out += " ";
    out += violationKindName(static_cast<ViolationKind>(k));
    out += ":";
    out += std::to_string(counts_[k]);
  }
  return out;
}

}  // namespace vlease::driver
