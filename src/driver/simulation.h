// Trace-driven simulation binder: wires scheduler + network + metrics +
// protocol endpoints, feeds a merged trace through them, and returns the
// collected metrics.
//
// Event model (paper §4.1): each trace event is injected only after all
// activity at earlier or equal virtual times has drained, reproducing
// the paper's "completely process each trace event before the next"
// semantics while remaining a genuinely event-driven system (timers and
// delayed messages interleave correctly when latency or failures are
// configured).
//
// Chaos support: SimOptions can carry a net::FaultPlan -- every event of
// the plan becomes a cancellable timer that mutates the network's
// FailureModel (and crashes/reboots the protocol endpoint itself: a
// server loses its volatile lease state at the crash instant, a client
// comes back with a cold cache) -- and can enable the online
// ConsistencyOracle, which audits reads, writes, and cached state
// against ground truth while the faults play out.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/factory.h"
#include "net/fault_plan.h"
#include "net/sim_network.h"
#include "proto/protocol.h"
#include "proto/routing.h"
#include "sim/local_clock.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "trace/catalog.h"
#include "trace/events.h"

namespace vlease::driver {

class ConsistencyOracle;

/// One online volume migration. At `at` the current owner drains the
/// volume (the driver retries deterministically while writes are
/// pending or either endpoint is crashed), hands off its durable facts,
/// and the destination adopts it with an epoch bump that forces every
/// pre-migration holder through the MUST_RENEW_ALL reconnection.
struct MigrationEvent {
  SimTime at = 0;
  VolumeId vol{};
  NodeId dstServer{};
  /// Negative-control hook: false skips the adopter's epoch bump, so
  /// stale pre-migration leases survive and the oracle must fire.
  bool bumpEpoch = true;
};

struct SimOptions {
  /// One-way message latency (0 = the paper's sequential model).
  SimDuration networkLatency = 0;
  /// Independent per-message drop probability (0 = reliable network).
  double lossProbability = 0;
  /// Collect per-second load series for every server (Figs. 8-9).
  bool trackServerLoad = false;
  /// Accounting horizon; 0 = time of the last trace event.
  SimTime horizon = 0;
  /// Declarative fault timeline scheduled against the sim clock (null =
  /// no injected faults). Shared const so sweep points copy cheaply.
  std::shared_ptr<const net::FaultPlan> faultPlan;
  /// Run the online ConsistencyOracle alongside the workload.
  bool enableOracle = false;
  /// Period of the oracle's whole-cache audit.
  SimDuration oracleAuditPeriod = sec(30);
  /// Skew budget handed to the oracle's skew-aware mode: staleness from
  /// a client whose |skew| exceeds this bound is out-of-contract and
  /// not flagged. Set it to the fault plan's maxClockSkew.
  SimDuration oracleSkewBound = 0;
  /// Online volume migrations applied against the sim clock. Only the
  /// volume-lease algorithms support them (the driver CHECKs).
  std::vector<MigrationEvent> migrations;
};

class Simulation {
 public:
  Simulation(const trace::Catalog& catalog,
             const proto::ProtocolConfig& config, SimOptions options = {});
  ~Simulation();

  /// Feed an entire time-sorted trace and drain; returns final metrics.
  /// CHECK-fails on a second call (the first run's finish() freezes the
  /// metrics; use inject()/drainTo() for incremental control).
  stats::Metrics& run(const std::vector<trace::TraceEvent>& events);

  /// Incremental interface for tests and examples.
  void inject(const trace::TraceEvent& event);
  void drainTo(SimTime t);
  void finish();

  sim::Scheduler& scheduler() { return scheduler_; }
  net::SimNetwork& network() { return *network_; }
  const sim::ClockMap& clocks() const { return clocks_; }
  stats::Metrics& metrics() { return metrics_; }
  proto::ProtocolInstance& protocol() { return protocol_; }
  const trace::Catalog& catalog() const { return catalog_; }

  /// Null unless SimOptions::enableOracle was set.
  const ConsistencyOracle* oracle() const { return oracle_.get(); }
  /// Fault-plan timers not yet fired (introspection for tests).
  std::size_t pendingFaultEvents() const;

  /// Current volume -> server ownership (updated by migrations).
  const proto::Routing& routing() const { return routing_; }
  /// Migrations applied so far / dropped as unappliable at finish.
  std::size_t migrationsApplied() const { return migrationsApplied_; }
  std::size_t migrationsDropped() const { return migrationsDropped_; }

  /// Issue a read from `client` right now, with the staleness oracle
  /// applied to the result (also used internally for trace reads).
  void issueRead(NodeId client, ObjectId obj,
                 proto::ReadCallback extra = nullptr);
  /// Issue a write right now.
  void issueWrite(ObjectId obj, proto::WriteCallback extra = nullptr);

 private:
  /// Completion half of issueRead: ground-truth version check, metrics,
  /// oracle. Split out so the no-extra-callback fast path can capture
  /// (this, client, obj) packed into 16 bytes -- inside std::function's
  /// inline buffer, keeping the per-event hot path allocation-free.
  void onReadComplete(NodeId client, ObjectId obj,
                      const proto::ReadResult& result);

  void installFaultPlan(const net::FaultPlan& plan);
  void applyFault(const net::FaultEvent& event);
  void installMigrations();
  void applyMigration(const MigrationEvent& event);
  void scheduleAudit();

  const trace::Catalog& catalog_;
  sim::Scheduler scheduler_;
  stats::Metrics metrics_;
  std::unique_ptr<net::SimNetwork> network_;
  /// Per-node clock views mutated by kSkew/kDrift fault events; the
  /// scheduler's global clock stays the single source of event order.
  sim::ClockMap clocks_;
  /// Dynamic volume ownership; starts as the catalog assignment and is
  /// updated by applyMigration. Declared before ctx_, which points at
  /// it.
  proto::Routing routing_;
  proto::ProtocolContext ctx_;
  proto::ProtocolInstance protocol_;
  SimOptions options_;
  std::unique_ptr<ConsistencyOracle> oracle_;
  std::vector<sim::TimerHandle> faultTimers_;
  std::vector<sim::TimerHandle> migrationTimers_;
  sim::TimerHandle auditTimer_;
  SimTime lastEventTime_ = 0;
  std::size_t migrationsApplied_ = 0;
  std::size_t migrationsDropped_ = 0;
  bool ran_ = false;
  bool finished_ = false;
};

}  // namespace vlease::driver
