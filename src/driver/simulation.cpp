#include "driver/simulation.h"

#include <algorithm>

#include "util/check.h"

namespace vlease::driver {

Simulation::Simulation(const trace::Catalog& catalog,
                       const proto::ProtocolConfig& config,
                       SimOptions options)
    : catalog_(catalog),
      network_(std::make_unique<net::SimNetwork>(scheduler_, metrics_)),
      ctx_{scheduler_, *network_, metrics_, catalog_},
      protocol_(core::makeProtocol(config, ctx_)),
      options_(options) {
  network_->setLatency(options_.networkLatency);
  network_->failures().setLossProbability(options_.lossProbability);
  if (options_.trackServerLoad) {
    for (std::uint32_t s = 0; s < catalog_.numServers(); ++s) {
      metrics_.trackLoad(catalog_.serverNode(s));
    }
  }
}

Simulation::~Simulation() = default;

void Simulation::issueRead(NodeId client, ObjectId obj,
                           proto::ReadCallback extra) {
  proto::ClientNode& node = protocol_.client(catalog_, client);
  proto::ServerNode& server = protocol_.serverFor(catalog_, obj);
  node.read(obj, [this, &server, obj, extra = std::move(extra)](
                     const proto::ReadResult& result) {
    if (result.ok) {
      const Version actual = server.currentVersion(obj);
      metrics_.onRead(result.usedNetwork, result.version != actual);
    } else {
      metrics_.onReadFailed();
    }
    if (extra) extra(result);
  });
}

void Simulation::issueWrite(ObjectId obj, proto::WriteCallback extra) {
  protocol_.serverFor(catalog_, obj).write(obj, std::move(extra));
}

void Simulation::inject(const trace::TraceEvent& event) {
  VL_CHECK_MSG(!finished_,
               "Simulation::inject() after finish() would corrupt the "
               "frozen metrics");
  lastEventTime_ = std::max(lastEventTime_, event.at);
  if (event.kind == trace::EventKind::kRead) {
    issueRead(event.client, event.obj);
  } else {
    issueWrite(event.obj);
  }
}

void Simulation::drainTo(SimTime t) { scheduler_.runUntil(t); }

void Simulation::finish() {
  VL_CHECK_MSG(!finished_, "Simulation::finish() called twice");
  finished_ = true;
  scheduler_.run();  // drain in-flight writes/timers
  const SimTime horizon =
      options_.horizon > 0
          ? options_.horizon
          : std::max(lastEventTime_, scheduler_.now());
  metrics_.setHorizon(horizon);
  protocol_.finalizeAccounting(horizon);
}

stats::Metrics& Simulation::run(const std::vector<trace::TraceEvent>& events) {
  VL_CHECK_MSG(!ran_ && !finished_,
               "Simulation::run() is single-shot; construct a fresh "
               "Simulation per run");
  ran_ = true;
  VL_DCHECK(trace::isSorted(events));
  for (const trace::TraceEvent& event : events) {
    // Drain everything scheduled before this event, inject, then drain
    // the same-instant activity it kicked off (paper's sequential
    // processing in the zero-latency configuration).
    scheduler_.runUntil(event.at);
    inject(event);
    scheduler_.runUntil(event.at);
  }
  finish();
  return metrics_;
}

}  // namespace vlease::driver
