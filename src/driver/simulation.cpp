#include "driver/simulation.h"

#include <algorithm>

#include "driver/consistency_oracle.h"
#include "util/check.h"

namespace vlease::driver {

Simulation::Simulation(const trace::Catalog& catalog,
                       const proto::ProtocolConfig& config,
                       SimOptions options)
    : catalog_(catalog),
      network_(std::make_unique<net::SimNetwork>(scheduler_, metrics_)),
      routing_(catalog),
      ctx_{scheduler_, *network_, metrics_, catalog_, &clocks_, &routing_},
      protocol_(core::makeProtocol(config, ctx_)),
      options_(std::move(options)) {
  network_->setLatency(options_.networkLatency);
  network_->failures().setLossProbability(options_.lossProbability);
  if (options_.trackServerLoad) {
    for (std::uint32_t s = 0; s < catalog_.numServers(); ++s) {
      metrics_.trackLoad(catalog_.serverNode(s));
    }
  }
  if (options_.enableOracle) {
    ConsistencyOracle::Options oracleOptions;
    oracleOptions.auditPeriod = options_.oracleAuditPeriod;
    oracleOptions.clocks = &clocks_;
    oracleOptions.skewBound = options_.oracleSkewBound;
    // A Poll validation's answer is already a round trip old when it
    // lands; the Poll staleness bound must allow for it.
    oracleOptions.validationLatency = 2 * options_.networkLatency;
    oracleOptions.routing = &routing_;
    oracle_ = std::make_unique<ConsistencyOracle>(catalog_, config, metrics_,
                                                  oracleOptions);
    scheduleAudit();
  }
  if (options_.faultPlan != nullptr) installFaultPlan(*options_.faultPlan);
  if (!options_.migrations.empty()) installMigrations();
}

Simulation::~Simulation() = default;

void Simulation::installFaultPlan(const net::FaultPlan& plan) {
  faultTimers_.reserve(plan.size());
  for (const net::FaultEvent& event : plan.events()) {
    // Exact lane on purpose: fault plans are replayed bit-for-bit, so
    // injection instants must order precisely against protocol events.
    faultTimers_.push_back(scheduler_.scheduleAt(
        event.at, [this, event]() { applyFault(event); }));
  }
}

void Simulation::applyFault(const net::FaultEvent& event) {
  if (oracle_) oracle_->onFault(event, scheduler_.now());
  net::FailureModel& failures = network_->failures();
  using Kind = net::FaultEvent::Kind;
  switch (event.kind) {
    case Kind::kCrash:
      failures.crash(event.a);
      if (catalog_.isServer(event.a)) {
        // Volatile lease state dies with the process; the recovery
        // bookkeeping (recoveryUntil, epoch bump) is anchored at the
        // crash instant, matching the paper's stable-storage scheme.
        protocol_.servers[raw(event.a)]->crashAndReboot();
      }
      break;
    case Kind::kRecover:
      failures.recover(event.a);
      if (catalog_.isClient(event.a)) {
        // A rebooted client comes back with a cold cache.
        protocol_.client(catalog_, event.a).dropCache();
      }
      break;
    case Kind::kPartition:
      failures.partition(event.a, event.b);
      break;
    case Kind::kHeal:
      failures.heal(event.a, event.b);
      break;
    case Kind::kIsolate:
      failures.isolate(event.a);
      break;
    case Kind::kDeisolate:
      failures.deisolate(event.a);
      break;
    case Kind::kSetLoss:
      failures.setLossProbability(event.lossProb);
      break;
    case Kind::kSkew:
      clocks_.setOffset(event.a, scheduler_.now(), event.offset);
      break;
    case Kind::kDrift:
      clocks_.setDrift(event.a, scheduler_.now(), event.ppm);
      break;
  }
}

void Simulation::installMigrations() {
  migrationTimers_.reserve(options_.migrations.size());
  for (const MigrationEvent& event : options_.migrations) {
    // Exact lane, like fault events: migration instants must order
    // precisely against protocol activity for replays to be bit-exact.
    migrationTimers_.push_back(scheduler_.scheduleAt(
        event.at, [this, event]() { applyMigration(event); }));
  }
}

void Simulation::applyMigration(const MigrationEvent& event) {
  const NodeId src = routing_.serverOf(event.vol);
  const NodeId dst = event.dstServer;
  if (src == dst) {
    ++migrationsApplied_;  // already there; nothing to move
    return;
  }
  proto::ServerNode& srcServer = protocol_.serverAt(src);
  proto::ServerNode& dstServer = protocol_.serverAt(dst);
  VL_CHECK_MSG(
      srcServer.supportsMigration() && dstServer.supportsMigration(),
      "online migration requires servers with epoch handoff support");
  // The handoff needs both endpoints alive (the source to drain and
  // serialize, the destination to adopt) and the volume write-quiet at
  // the source. Otherwise retry on a short deterministic cadence -- a
  // migration scheduled inside a crash window simply slides past it.
  const net::FailureModel& failures = network_->failures();
  if (failures.isCrashed(src) || failures.isCrashed(dst) ||
      !srcServer.volumeQuiescent(event.vol)) {
    if (finished_) {
      // End of run and still blocked (e.g. a crash window the plan
      // never closed): drop it, or the drain would never terminate.
      ++migrationsDropped_;
      return;
    }
    migrationTimers_.push_back(scheduler_.scheduleAfter(
        msec(100), [this, event]() { applyMigration(event); }));
    return;
  }
  proto::VolumeHandoff handoff = srcServer.migrateOut(event.vol);
  routing_.setServerOf(event.vol, dst);
  dstServer.adoptVolume(handoff, event.bumpEpoch);
  ++migrationsApplied_;
}

void Simulation::scheduleAudit() {
  // Rescheduling is gated on finished_: finish() must be able to drain
  // the scheduler, and a timer that always re-arms itself would keep
  // the queue nonempty forever. Exact lane on purpose: the audit is a
  // measurement cadence, sampled at precise instants.
  auditTimer_ =
      scheduler_.scheduleAfter(options_.oracleAuditPeriod, [this]() {
        oracle_->audit(protocol_, scheduler_.now());
        if (!finished_) scheduleAudit();
      });
}

std::size_t Simulation::pendingFaultEvents() const {
  std::size_t n = 0;
  for (const sim::TimerHandle& timer : faultTimers_) {
    if (timer.pending()) ++n;
  }
  return n;
}

void Simulation::onReadComplete(NodeId client, ObjectId obj,
                                const proto::ReadResult& result) {
  // The owner is resolved at completion time, not capture time: a
  // migration may move the volume while the read is in flight, and the
  // authoritative version then lives at the new owner.
  if (result.ok) {
    const Version actual = protocol_.serverFor(ctx_, obj).currentVersion(obj);
    metrics_.onRead(result.usedNetwork, result.version != actual);
    if (oracle_) {
      oracle_->onRead(client, obj, result, actual, scheduler_.now());
    }
  } else {
    metrics_.onReadFailed();
    if (oracle_) {
      oracle_->onRead(client, obj, result, kNoVersion, scheduler_.now());
    }
  }
}

void Simulation::issueRead(NodeId client, ObjectId obj,
                           proto::ReadCallback extra) {
  if (options_.faultPlan != nullptr &&
      network_->failures().isCrashed(client)) {
    // A crashed client issues nothing; the trace event is a dead read.
    metrics_.onReadFailed();
    if (extra) extra(proto::ReadResult{});
    return;
  }
  proto::ClientNode& node = protocol_.client(catalog_, client);
  if (!extra) {
    // Trace-replay fast path: pack (client, obj) into one word so the
    // closure is 16 bytes and std::function stores it inline -- no heap
    // allocation per injected read.
    VL_DCHECK(raw(obj) <= 0xffffffffull);
    const std::uint64_t packed = (static_cast<std::uint64_t>(raw(client))
                                  << 32) |
                                 static_cast<std::uint32_t>(raw(obj));
    node.read(obj, [this, packed](const proto::ReadResult& result) {
      onReadComplete(makeNodeId(static_cast<std::uint32_t>(packed >> 32)),
                     makeObjectId(packed & 0xffffffffull), result);
    });
    return;
  }
  node.read(obj, [this, client, obj, extra = std::move(extra)](
                     const proto::ReadResult& result) {
    onReadComplete(client, obj, result);
    extra(result);
  });
}

void Simulation::issueWrite(ObjectId obj, proto::WriteCallback extra) {
  if (options_.faultPlan != nullptr &&
      network_->failures().isCrashed(ctx_.serverOf(obj))) {
    // The owning server is down; the write never happens.
    return;
  }
  if (!oracle_) {
    protocol_.serverFor(ctx_, obj).write(obj, std::move(extra));
    return;
  }
  oracle_->onWriteIssued(obj, scheduler_.now());
  protocol_.serverFor(ctx_, obj)
      .write(obj, [this, obj, extra = std::move(extra)](
                      const proto::WriteResult& result) {
        oracle_->onWriteComplete(obj, result, scheduler_.now());
        if (extra) extra(result);
      });
}

void Simulation::inject(const trace::TraceEvent& event) {
  VL_CHECK_MSG(!finished_,
               "Simulation::inject() after finish() would corrupt the "
               "frozen metrics");
  lastEventTime_ = std::max(lastEventTime_, event.at);
  switch (event.kind) {
    case trace::EventKind::kRead:
      issueRead(event.client, event.obj);
      break;
    case trace::EventKind::kWrite:
      issueWrite(event.obj);
      break;
    case trace::EventKind::kArrive:
      // A new client starts cold and lazily; nothing to do until its
      // first read. The event exists so generators, logs, and oracles
      // see churn explicitly.
      break;
    case trace::EventKind::kDepart:
      // Graceful departure, distinct from a crash: no fault is
      // injected, the client just forgets its leases and returns its
      // storage; the server lets the holder records expire.
      protocol_.client(catalog_, event.client).retire();
      break;
  }
}

void Simulation::drainTo(SimTime t) { scheduler_.runUntil(t); }

void Simulation::finish() {
  VL_CHECK_MSG(!finished_, "Simulation::finish() called twice");
  finished_ = true;
  // The audit timer re-arms itself; cancel it or run() never drains.
  // Fault timers are left in place: random plans close every window by
  // their horizon, so draining them ends the run with a healed network
  // (and applies recoveries, whose cache drops the oracle relies on).
  auditTimer_.cancel();
  // Like the audit timer, servers' self-rearming maintenance timers
  // (the lease-expiry sweep) must stop or the drain never terminates;
  // quiescing also keeps them from stretching now() past the last
  // protocol event.
  protocol_.quiesce();
  scheduler_.run();  // drain in-flight writes/timers/fault events
  const SimTime horizon =
      options_.horizon > 0
          ? options_.horizon
          : std::max(lastEventTime_, scheduler_.now());
  metrics_.setHorizon(horizon);
  protocol_.finalizeAccounting(horizon);
  if (oracle_) oracle_->finalAudit(protocol_, scheduler_.now());
}

stats::Metrics& Simulation::run(const std::vector<trace::TraceEvent>& events) {
  VL_CHECK_MSG(!ran_ && !finished_,
               "Simulation::run() is single-shot; construct a fresh "
               "Simulation per run");
  ran_ = true;
  VL_DCHECK(trace::isSorted(events));
  for (const trace::TraceEvent& event : events) {
    // Drain everything scheduled before this event, inject, then drain
    // the same-instant activity it kicked off (paper's sequential
    // processing in the zero-latency configuration).
    scheduler_.runUntil(event.at);
    inject(event);
    scheduler_.runUntil(event.at);
  }
  finish();
  return metrics_;
}

}  // namespace vlease::driver
