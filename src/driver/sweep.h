// Declarative experiment grids ("sweeps") and the parallel runner every
// bench binary is built on.
//
// A SweepSpec names a workload, the list of (label, ProtocolConfig,
// SimOptions) points to run on it, and the metrics to extract from each
// run. runSweep() executes the points on a util::ThreadPool -- each run
// owns its Scheduler / SimNetwork / Metrics, the workload is built once
// and shared read-only -- and returns the results in spec order.
//
// Determinism: a simulation run touches no global mutable state, so the
// per-point metrics are bit-for-bit identical no matter how many
// threads execute the sweep (tests/sweep_test.cpp asserts this against
// the serial path). Parallelism changes wall-clock time, never numbers.
//
// Typical bench binary:
//
//   Flags flags;
//   driver::addSweepFlags(flags);
//   if (!flags.parse(argc, argv)) return 1;
//
//   driver::SweepSpec spec;
//   spec.name = "fig5";
//   spec.workload = driver::workloadFromFlags(flags);
//   spec.points = driver::timeoutGrid(lines, timeoutsSec);
//   spec.gridCell = [](const stats::Metrics& m) {
//     return driver::Table::num(m.totalMessages());
//   };
//   auto results = driver::runSweep(spec, driver::parallelFromFlags(flags));
//   driver::emitTable(driver::toTable(spec, results), flags);
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "driver/report.h"
#include "driver/simulation.h"
#include "driver/workloads.h"
#include "stats/metrics.h"
#include "util/flags.h"

namespace vlease::driver {

/// One experiment in a sweep: a protocol configuration (plus simulator
/// options) to run over the spec's workload.
struct SweepPoint {
  /// Unique name; prefixes parallel log lines and keys resultFor().
  std::string label;
  proto::ProtocolConfig config;
  SimOptions sim;
  /// Pivot coordinates for grid-shaped tables (Figs. 5-7): results with
  /// the same `row` share a table row; `col` picks the column. An empty
  /// `row` defaults to the label; col == "*" means the single run's
  /// value spans every column (flat lines such as Callback, which the
  /// timeout sweep cannot affect). Point tables ignore both.
  std::string row;
  std::string col;
  /// Optional catalog override (e.g. regrouped volumes); the workload's
  /// events are replayed against it. Null = the workload's own catalog.
  std::shared_ptr<const trace::Catalog> catalog;
};

/// One completed run, in spec order.
struct SweepResult {
  std::size_t index = 0;  // position in SweepSpec::points
  std::string label;
  std::string row;
  std::string col;
  stats::Metrics metrics;
};

/// A named metric column for row-per-point tables. The extractor sees
/// the full result list so relative columns ("vs baseline") stay
/// declarative.
struct MetricColumn {
  std::string name;
  std::function<std::string(const SweepResult&,
                            const std::vector<SweepResult>&)>
      value;
};

struct SweepSpec {
  /// Experiment name; prefixes worker log lines ("fig5/Lease(t) t=100").
  std::string name;
  /// Workload to build when runSweep() is not handed one explicitly.
  WorkloadOptions workload;
  std::vector<SweepPoint> points;

  // -- metrics to extract (toTable uses whichever is set) --
  /// Row-per-point tables: one table row per point, one column per
  /// MetricColumn.
  std::vector<MetricColumn> columns;
  /// Grid tables: one value per run, pivoted by SweepPoint::row/col.
  std::function<std::string(const stats::Metrics&)> gridCell;
  /// Header of the grid's label column.
  std::string gridRowHeader = "algorithm";
  /// Header of the point table's label column.
  std::string labelHeader = "algorithm";
};

struct ParallelOptions {
  /// Worker threads; 0 = hardware concurrency.
  unsigned threads = 0;
};

/// Run every point of `spec` against a shared, read-only `workload` and
/// return the per-point metrics in spec order. Bit-for-bit deterministic
/// regardless of `parallel.threads`.
std::vector<SweepResult> runSweep(const SweepSpec& spec,
                                  const Workload& workload,
                                  const ParallelOptions& parallel = {});

/// Convenience: builds spec.workload first (still shared across points).
std::vector<SweepResult> runSweep(const SweepSpec& spec,
                                  const ParallelOptions& parallel = {});

/// Result lookup by label (CHECK-fails if absent: a typo in a bench is
/// a bug, not a condition to handle).
const SweepResult& resultFor(const std::vector<SweepResult>& results,
                             const std::string& label);

// ---- combinators ----

/// A line of a timeout-sweep figure: one algorithm configuration whose
/// objectTimeout the grid varies. sweepsTimeout = false marks lines the
/// timeout cannot affect (Callback): they run once and span all columns.
struct SweepLine {
  std::string name;
  proto::ProtocolConfig config;
  bool sweepsTimeout = true;
};

/// The paper's algorithm x object-timeout grid (Figs. 5-7): for each
/// line and each timeout t emits a point labeled "<name> t=<t>" at grid
/// position (name, "t=<t>"), with config.objectTimeout = sec(t).
std::vector<SweepPoint> timeoutGrid(const std::vector<SweepLine>& lines,
                                    const std::vector<std::int64_t>& timeoutsSec,
                                    SimOptions sim = {});

/// Render results into the spec's declared table shape: a row/col pivot
/// when spec.gridCell is set, otherwise a row-per-point table over
/// spec.columns.
Table toTable(const SweepSpec& spec, const std::vector<SweepResult>& results);

// ---- shared bench flags ----

/// Registers the flags every sweep binary shares: --scale, --seed,
/// --threads (default 0 = hardware concurrency), --csv, --json.
void addSweepFlags(Flags& flags, double defaultScale = 0.1);

/// Just the runner/output flags (--threads, --csv, --json) for benches
/// with a fixed, controlled workload (no --scale/--seed).
void addRunnerFlags(Flags& flags);

WorkloadOptions workloadFromFlags(const Flags& flags);
ParallelOptions parallelFromFlags(const Flags& flags);

/// Print `table` to stdout honoring --csv / --json.
void emitTable(const Table& table, const Flags& flags);

}  // namespace vlease::driver
