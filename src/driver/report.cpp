#include "driver/report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace vlease::driver {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i)
    widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size())
        os << std::string(widths[i] - row[i].size() + 2, ' ');
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
}

void Table::printCsv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << row[i];
      if (i + 1 < row.size()) os << ",";
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

namespace {
void jsonEscaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}
}  // namespace

void Table::printJson(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t i = 0; i < header_.size(); ++i) {
      jsonEscaped(os, header_[i]);
      os << ": ";
      jsonEscaped(os, rows_[r][i]);
      if (i + 1 < header_.size()) os << ", ";
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string Table::num(double v, int precision) {
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::int64_t v) { return std::to_string(v); }

}  // namespace vlease::driver
