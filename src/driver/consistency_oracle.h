// Online consistency oracle for chaos runs.
//
// The oracle shadows a simulation with ground truth and checks, while
// the run is still going, that the algorithm under test delivers the
// consistency it promises *under the faults actually injected*:
//
//   * kStaleRead -- a server-invalidation algorithm (Callback, Lease,
//     Volume, VolumeDelay) served a read whose version differs from the
//     server's authoritative version at completion time.
//   * kCacheInconsistency -- the periodic whole-cache audit found a
//     client that WOULD serve an object locally (valid lease(s)) with a
//     version different from the server's. This is the invariant the
//     lease protocols maintain at every instant: a server only commits
//     a write after every holder acked or every covering lease drained,
//     so a valid-lease cache entry must always match. It also catches a
//     reconnection exchange that left the cache inconsistent.
//   * kWriteDelayBound -- a write waited longer than the paper's ack
//     bound min(t, t_v) (t for Lease) plus msgTimeout, plus a crash-
//     recovery allowance when the owning server rebooted.
//   * kBlockedWrite -- a non-Callback write reported blocked (only a
//     crash, which force-completes in-flight writes, may do that).
//   * kLostWrite -- a write was issued but never completed and the
//     owning server never crashed (crashes legitimately kill in-flight
//     writes; anything else losing one is a protocol bug).
//
// Expected-breakage exemptions (so a clean protocol yields ZERO
// violations even under heavy chaos): Callback is genuinely broken by
// crashes and by force-completed blocked writes -- the paper counts
// that against it -- so the oracle taints the affected objects instead
// of flagging them. The fault-injection flag
// ProtocolConfig::faultInjectIgnoreInvalidations gets NO exemption:
// it exists precisely to prove the oracle fires.
//
// The Poll family is NOT exempt from staleness checks; it is *bounded*:
// Poll's contract (paper §2.2) is that a read never serves data more
// than one validity window stale. The oracle tracks when each version
// was superseded and flags a Poll read/cache entry only when its
// version was superseded more than
//   window + validationLatency + skewBound + slack
// ago, where window is 0 (Poll Each Read), t (Poll), or adaptiveMaxTtl
// (Adaptive Poll's clamp), and validationLatency covers the round trip
// a validation needs to observe a new version. BestEffortLease keeps a
// full exemption: its staleness under partitions is unbounded by
// design (the paper's point), so there is no contract to check.
//
// On each violation the oracle dumps the last-K events (reads, writes,
// faults) from a ring buffer via VL_LOG_WARN, capped so a pathological
// run cannot flood the log. The total lands in
// stats::Metrics::oracleViolations(), which sweeps and tools export.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/fault_plan.h"
#include "proto/protocol.h"
#include "sim/local_clock.h"
#include "stats/metrics.h"
#include "trace/catalog.h"
#include "util/time.h"

namespace vlease::driver {

enum class ViolationKind {
  kStaleRead = 0,
  kCacheInconsistency,
  kWriteDelayBound,
  kBlockedWrite,
  kLostWrite,
};
inline constexpr std::size_t kNumViolationKinds = 5;

const char* violationKindName(ViolationKind kind);

class ConsistencyOracle {
 public:
  struct Options {
    /// Period of the whole-cache audit (Simulation schedules it).
    SimDuration auditPeriod = sec(30);
    /// Events kept for post-mortem dumps.
    std::size_t ringCapacity = 64;
    /// Tolerance added to the write-delay bound (timer granularity and
    /// same-instant scheduling are exact here, but keep the check
    /// honest rather than knife-edge).
    SimDuration slack = sec(1);
    /// Full ring dumps emitted per run before going quiet.
    int maxDumps = 4;
    /// Skew-aware mode: the simulation's per-node clock views (null =
    /// nobody is skewed) plus the deployment's skew budget. A stale
    /// read or cache mismatch by a client whose |skew| is WITHIN the
    /// budget is a hard violation -- the configured epsilon margin was
    /// supposed to cover it; a client skewed beyond the budget is out
    /// of contract, so its staleness is recorded but not flagged.
    const sim::ClockMap* clocks = nullptr;
    SimDuration skewBound = 0;
    /// Poll family only: how long a validation's answer may already be
    /// stale when it arrives (a reply reports the version the server
    /// held when it sent it). Simulation sets this to a full round
    /// trip, 2 x networkLatency; 0 reproduces the sequential model.
    SimDuration validationLatency = 0;
    /// Federation: the driver's live volume -> server table, so the
    /// oracle asks the *current* owner for authoritative versions after
    /// an online migration. Null = the catalog home assignment.
    const proto::Routing* routing = nullptr;
  };

  ConsistencyOracle(const trace::Catalog& catalog,
                    const proto::ProtocolConfig& config,
                    stats::Metrics& metrics, Options options);
  ConsistencyOracle(const trace::Catalog& catalog,
                    const proto::ProtocolConfig& config,
                    stats::Metrics& metrics)
      : ConsistencyOracle(catalog, config, metrics, Options{}) {}

  /// Staleness/cache checks apply only to the server-invalidation
  /// algorithms; write-delay and lost-write checks always apply.
  bool checksStaleness() const { return strong_; }

  // ---- hooks (driver::Simulation calls these) ----

  /// A read completed. `authoritative` is the server's version at
  /// completion (ignored when !result.ok).
  void onRead(NodeId client, ObjectId obj, const proto::ReadResult& result,
              Version authoritative, SimTime now);
  void onWriteIssued(ObjectId obj, SimTime now);
  void onWriteComplete(ObjectId obj, const proto::WriteResult& result,
                       SimTime now);
  /// A fault-plan event fired (called before it is applied).
  void onFault(const net::FaultEvent& event, SimTime now);

  /// Instant-by-instant invariant: every client cache entry that would
  /// be served under valid leases matches the server's version.
  void audit(proto::ProtocolInstance& protocol, SimTime now);
  /// End of run: one last audit plus the lost-write sweep.
  void finalAudit(proto::ProtocolInstance& protocol, SimTime now);

  // ---- verdict ----

  std::int64_t violations() const { return total_; }
  std::int64_t violations(ViolationKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }
  /// "ok" or a per-kind breakdown ("stale-read:3 lost-write:1").
  std::string summary() const;

  const Options& options() const { return options_; }

 private:
  struct WriteTrack {
    std::deque<SimTime> outstanding;  // issue times, FIFO
    SimTime lastCompletion = kSimTimeMin;
  };
  struct ServerFaults {
    bool everCrashed = false;
    SimTime lastCrashAt = kSimTimeMin;
    /// Latest instant by which post-crash recovery waits must be over:
    /// max over crashes of (crashAt + recovery bound).
    SimTime graceEnd = kSimTimeMin;
  };

  /// Longest a write may legitimately wait before the msgTimeout floor
  /// (paper Fig. 3 / §2.3): min(t, t_v) for volume algorithms, t for
  /// Lease and BestEffort, 0 for Callback and the Poll family.
  SimDuration writeWaitBase() const;
  /// How long after a crash the server may keep delaying writes.
  SimDuration recoveryBound() const;
  /// Callback-only: staleness of `obj` is expected breakage (blocked
  /// write tainted it, or its server crashed).
  bool callbackExempt(ObjectId obj) const;
  /// Skew-aware mode: true when `client`'s clock is skewed beyond the
  /// configured budget at `now` (its staleness is out of contract).
  bool skewExempt(NodeId client, SimTime now) const;
  /// Poll family: staleness is bounded rather than forbidden.
  bool pollBounded() const { return pollWindow_ >= 0; }
  /// Latest instant at which serving `served` of `obj` is still within
  /// the Poll contract; kNever when the superseding write was never
  /// observed (nothing to anchor the bound on).
  SimTime pollServeDeadline(ObjectId obj, Version served) const;
  /// Current owner of `obj`'s volume (routing-aware; falls back to the
  /// catalog home server when no table is installed).
  NodeId serverOf(ObjectId obj) const {
    const trace::ObjectInfo& info = catalog_.object(obj);
    return options_.routing != nullptr ? options_.routing->serverOf(info.volume)
                                       : info.server;
  }

  void record(SimTime at, std::string text);
  void reportViolation(ViolationKind kind, SimTime now,
                       const std::string& detail);
  std::string dumpRing() const;

  const trace::Catalog& catalog_;
  const proto::ProtocolConfig config_;
  stats::Metrics& metrics_;
  const Options options_;
  const bool strong_;
  /// Poll family's validity window (-1 = not a Poll algorithm): 0 for
  /// Poll Each Read, t for Poll, the adaptiveMaxTtl clamp for Adaptive.
  const SimDuration pollWindow_;

  std::unordered_map<ObjectId, WriteTrack> writes_;
  /// When each (obj, version) was superseded by the next write commit;
  /// anchors the Poll staleness bound. Keyed (raw(obj) << 32) | version.
  std::unordered_map<std::uint64_t, SimTime> supersededAt_;
  std::unordered_map<NodeId, ServerFaults> serverFaults_;
  std::unordered_set<NodeId> crashedNow_;

  // Callback expected-breakage taints.
  std::unordered_set<ObjectId> taintedObjects_;
  std::unordered_set<NodeId> taintedServers_;

  /// (client, obj) pairs already flagged by the audit, so a persistent
  /// mismatch counts once instead of once per audit tick.
  std::unordered_set<std::uint64_t> auditFlagged_;

  // Ring buffer of recent events.
  std::vector<std::string> ring_;
  std::size_t ringNext_ = 0;
  bool ringWrapped_ = false;

  std::array<std::int64_t, kNumViolationKinds> counts_{};
  std::int64_t total_ = 0;
  int dumpsEmitted_ = 0;
};

}  // namespace vlease::driver
