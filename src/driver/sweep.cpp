#include "driver/sweep.h"

#include <algorithm>
#include <future>
#include <iostream>

#include "util/check.h"
#include "util/log.h"
#include "util/thread_pool.h"

namespace vlease::driver {

namespace {

SweepResult runPoint(const SweepSpec& spec, const Workload& workload,
                     std::size_t index) {
  const SweepPoint& point = spec.points[index];
  LogContext logContext(spec.name.empty() ? point.label
                                          : spec.name + "/" + point.label);
  const trace::Catalog& catalog =
      point.catalog ? *point.catalog : workload.catalog;
  Simulation sim(catalog, point.config, point.sim);
  sim.run(workload.events);
  SweepResult result;
  result.index = index;
  result.label = point.label;
  result.row = point.row.empty() ? point.label : point.row;
  result.col = point.col;
  result.metrics = std::move(sim.metrics());
  return result;
}

}  // namespace

std::vector<SweepResult> runSweep(const SweepSpec& spec,
                                  const Workload& workload,
                                  const ParallelOptions& parallel) {
  unsigned threads = parallel.threads > 0 ? parallel.threads
                                          : util::ThreadPool::defaultThreads();
  threads = std::min(
      threads,
      static_cast<unsigned>(std::max<std::size_t>(spec.points.size(), 1)));

  std::vector<SweepResult> results(spec.points.size());
  if (threads <= 1) {
    for (std::size_t i = 0; i < spec.points.size(); ++i) {
      results[i] = runPoint(spec, workload, i);
    }
    return results;
  }

  util::ThreadPool pool(threads);
  std::vector<std::future<SweepResult>> futures;
  futures.reserve(spec.points.size());
  for (std::size_t i = 0; i < spec.points.size(); ++i) {
    futures.push_back(
        pool.submit([&spec, &workload, i] { return runPoint(spec, workload, i); }));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    results[i] = futures[i].get();  // rethrows a worker's exception
  }
  return results;
}

std::vector<SweepResult> runSweep(const SweepSpec& spec,
                                  const ParallelOptions& parallel) {
  const Workload workload = buildWorkload(spec.workload);
  return runSweep(spec, workload, parallel);
}

const SweepResult& resultFor(const std::vector<SweepResult>& results,
                             const std::string& label) {
  for (const SweepResult& r : results) {
    if (r.label == label) return r;
  }
  VL_CHECK_MSG(false, ("no sweep result labeled '" + label + "'").c_str());
  __builtin_unreachable();
}

std::vector<SweepPoint> timeoutGrid(const std::vector<SweepLine>& lines,
                                    const std::vector<std::int64_t>& timeoutsSec,
                                    SimOptions sim) {
  std::vector<SweepPoint> points;
  for (const SweepLine& line : lines) {
    if (!line.sweepsTimeout) {
      SweepPoint p;
      p.label = line.name;
      p.config = line.config;
      p.sim = sim;
      p.row = line.name;
      p.col = "*";
      points.push_back(std::move(p));
      continue;
    }
    for (std::int64_t t : timeoutsSec) {
      SweepPoint p;
      p.label = line.name + " t=" + std::to_string(t);
      p.config = line.config;
      p.config.objectTimeout = sec(t);
      p.sim = sim;
      p.row = line.name;
      p.col = "t=" + std::to_string(t);
      points.push_back(std::move(p));
    }
  }
  return points;
}

Table toTable(const SweepSpec& spec, const std::vector<SweepResult>& results) {
  if (spec.gridCell) {
    // Column order: first appearance among non-spanning points.
    std::vector<std::string> cols;
    for (const SweepResult& r : results) {
      if (r.col.empty() || r.col == "*") continue;
      if (std::find(cols.begin(), cols.end(), r.col) == cols.end()) {
        cols.push_back(r.col);
      }
    }
    std::vector<std::string> rows;
    for (const SweepResult& r : results) {
      if (std::find(rows.begin(), rows.end(), r.row) == rows.end()) {
        rows.push_back(r.row);
      }
    }

    std::vector<std::string> header{spec.gridRowHeader};
    header.insert(header.end(), cols.begin(), cols.end());
    Table table(std::move(header));
    for (const std::string& row : rows) {
      std::vector<std::string> cells{row};
      for (const std::string& col : cols) {
        const SweepResult* hit = nullptr;
        for (const SweepResult& r : results) {
          if (r.row == row && (r.col == col || r.col == "*")) {
            hit = &r;
            break;
          }
        }
        cells.push_back(hit ? spec.gridCell(hit->metrics) : "");
      }
      table.addRow(std::move(cells));
    }
    return table;
  }

  std::vector<std::string> header{spec.labelHeader};
  for (const MetricColumn& column : spec.columns) header.push_back(column.name);
  Table table(std::move(header));
  for (const SweepResult& r : results) {
    std::vector<std::string> cells{r.label};
    for (const MetricColumn& column : spec.columns) {
      cells.push_back(column.value(r, results));
    }
    table.addRow(std::move(cells));
  }
  return table;
}

void addSweepFlags(Flags& flags, double defaultScale) {
  flags.addDouble("scale", defaultScale,
                  "workload scale (1.0 = paper-size trace)");
  flags.addInt("seed", 1998, "workload seed");
  addRunnerFlags(flags);
}

void addRunnerFlags(Flags& flags) {
  flags.addInt("threads", 0,
               "sweep worker threads (0 = hardware concurrency)");
  flags.addBool("csv", false, "emit CSV instead of an aligned table");
  flags.addBool("json", false, "emit JSON instead of an aligned table");
}

WorkloadOptions workloadFromFlags(const Flags& flags) {
  WorkloadOptions options;
  options.scale = flags.getDouble("scale");
  options.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  return options;
}

ParallelOptions parallelFromFlags(const Flags& flags) {
  ParallelOptions options;
  options.threads = static_cast<unsigned>(flags.getInt("threads"));
  return options;
}

void emitTable(const Table& table, const Flags& flags) {
  if (flags.getBool("json")) {
    table.printJson(std::cout);
  } else if (flags.getBool("csv")) {
    table.printCsv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace vlease::driver
