// Run-wide measurement sink.
//
// Everything the paper's figures need is collected here:
//   * message and byte counts, total / per node / per message type
//     (Fig. 5 and the "network bytes" discussion in §5.1);
//   * per-second load series for tracked nodes (Figs. 8 and 9);
//   * time-weighted server consistency-state bytes (Figs. 6 and 7; the
//     paper charges 16 bytes per lease / callback / queued-message
//     record and reports the average over the run);
//   * stale-read accounting (Poll's weak consistency, §5.1);
//   * write-delay accounting (the "ack wait" column of Table 1).
//
// The network meters messages; protocol endpoints account state and
// write delays; the driver accounts reads and staleness.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/histogram.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::stats {

/// Bytes the paper charges per consistency record (object lease, volume
/// lease, callback entry, or queued pending message).
inline constexpr std::int64_t kBytesPerRecord = 16;

/// Server CPU model (paper §5.1 reports a CPU-load metric alongside
/// messages and bytes): a fixed cost per message handled plus a
/// per-kilobyte processing cost. Units are arbitrary "cost units"; only
/// relative comparisons across algorithms are meaningful.
inline constexpr double kCpuPerMessage = 1.0;
inline constexpr double kCpuPerKilobyte = 0.05;

/// Per-node message counters.
struct NodeCounters {
  std::int64_t sent = 0;
  std::int64_t received = 0;
  std::int64_t bytesSent = 0;
  std::int64_t bytesReceived = 0;
  /// Accumulated message-processing cost (see kCpuPerMessage).
  double cpuUnits = 0;

  std::int64_t messages() const { return sent + received; }
};

class Metrics {
 public:
  static constexpr std::size_t kMaxMsgTypes = 64;

  // ---- message accounting (called by the network) ----

  /// Record a message leaving `from` toward `to`. `delivered` is false
  /// when the network drops it (partition / loss); the send still costs
  /// the sender, and the paper's counts include messages to unreachable
  /// clients, so dropped messages are counted at the sender but not the
  /// receiver.
  void onMessage(NodeId from, NodeId to, std::size_t typeIndex,
                 std::int64_t bytes, SimTime now, bool delivered);

  /// Enable the per-second load series for a node (servers, typically).
  void trackLoad(NodeId node) {
    const std::uint32_t i = raw(node);
    if (i >= trackLoad_.size()) trackLoad_.resize(i + 1, 0);
    trackLoad_[i] = 1;
  }

  // ---- state accounting (called by protocol endpoints) ----

  /// Add byte-microseconds of consistency state at a server.
  void addStateIntegral(NodeId server, double byteMicros) {
    const std::uint32_t i = raw(server);
    if (i >= stateIntegral_.size()) stateIntegral_.resize(i + 1, 0.0);
    stateIntegral_[i] += byteMicros;
  }

  // ---- read / write accounting ----

  void onRead(bool requiredNetwork, bool stale) {
    ++reads_;
    if (!requiredNetwork) ++cacheLocalReads_;
    if (stale) ++staleReads_;
  }
  void onReadFailed() { ++failedReads_; }

  /// `delay` is how long the write waited for acks / lease expiry;
  /// `blocked` marks a Callback write stuck behind an unreachable client
  /// (the paper's "infinite" ack wait).
  void onWrite(SimDuration delay, bool blocked);

  /// Consistency-oracle verdicts (chaos runs): each call records one
  /// detected violation of the algorithm's consistency guarantee.
  void onOracleViolation() { ++oracleViolations_; }

  // ---- transport health (rt::TcpTransport) ----
  // Socket-layer recovery events on real deployments: how often the
  // transport had to retry a send, reopen a dead connection, abandon a
  // frame mid-write, or reject an undecodable inbound frame. Zero in
  // pure simulation; chaos runs read these to separate injected damage
  // from protocol-level symptoms.

  void onTransportRetry() { ++transportRetries_; }
  void onTransportReconnect() { ++transportReconnects_; }
  void onTransportFrameAbort() { ++transportFrameAborts_; }
  void onTransportFrameRejected() { ++transportFramesRejected_; }
  void onTransportConnectRefused() { ++transportConnectRefused_; }

  std::int64_t transportRetries() const { return transportRetries_; }
  std::int64_t transportReconnects() const { return transportReconnects_; }
  std::int64_t transportFrameAborts() const { return transportFrameAborts_; }
  std::int64_t transportFramesRejected() const {
    return transportFramesRejected_;
  }
  std::int64_t transportConnectRefused() const {
    return transportConnectRefused_;
  }

  /// Fold another Metrics into this one (sharded serving: each protocol
  /// shard accumulates into its own instance with no synchronization;
  /// the report path merges them into one run-wide view). Counters and
  /// integrals add; per-node/per-type tables add elementwise; load
  /// series merge bucketwise; the horizon takes the max.
  void mergeFrom(const Metrics& other);

  /// Set once the run finishes; state averages divide by this.
  void setHorizon(SimTime end) { horizon_ = end; }

  // ---- accessors ----

  std::int64_t totalMessages() const { return totalMessages_; }
  std::int64_t totalBytes() const { return totalBytes_; }
  double totalCpuUnits() const { return totalCpu_; }
  std::int64_t droppedMessages() const { return droppedMessages_; }
  std::int64_t messagesOfType(std::size_t typeIndex) const {
    return byType_.at(typeIndex);
  }
  const NodeCounters& node(NodeId id) const;

  std::int64_t reads() const { return reads_; }
  std::int64_t cacheLocalReads() const { return cacheLocalReads_; }
  std::int64_t staleReads() const { return staleReads_; }
  std::int64_t failedReads() const { return failedReads_; }
  double staleFraction() const {
    return reads_ ? static_cast<double>(staleReads_) / reads_ : 0.0;
  }

  std::int64_t writes() const { return writes_; }
  std::int64_t delayedWrites() const { return delayedWrites_; }
  std::int64_t blockedWrites() const { return blockedWrites_; }
  const Summary& writeDelay() const { return writeDelay_; }

  std::int64_t oracleViolations() const { return oracleViolations_; }

  SimTime horizon() const { return horizon_; }

  /// Average consistency-state bytes at `server` over the run.
  double avgStateBytes(NodeId server) const;

  /// Per-second load series of a tracked node.
  const SparseCounter& loadSeries(NodeId node) const;
  bool hasLoadSeries(NodeId node) const {
    const std::uint32_t i = raw(node);
    return i < hasLoad_.size() && hasLoad_[i] != 0;
  }

  /// Nodes ordered by total message traffic, busiest first.
  std::vector<NodeId> nodesByTraffic() const;

 private:
  NodeCounters& nodeMut(NodeId id);
  SparseCounter& loadMut(NodeId id);
  bool isTracked(NodeId id) const {
    const std::uint32_t i = raw(id);
    return i < trackLoad_.size() && trackLoad_[i] != 0;
  }

  std::int64_t totalMessages_ = 0;
  std::int64_t totalBytes_ = 0;
  double totalCpu_ = 0;
  std::int64_t droppedMessages_ = 0;
  std::array<std::int64_t, kMaxMsgTypes> byType_{};
  std::vector<NodeCounters> perNode_;

  /// Load tracking, all flat by raw node id: whether a node is tracked,
  /// whether its series ever received a sample, and the series proper.
  std::vector<std::uint8_t> trackLoad_;
  std::vector<std::uint8_t> hasLoad_;
  std::vector<SparseCounter> load_;

  std::vector<double> stateIntegral_;  // by raw node id

  std::int64_t reads_ = 0;
  std::int64_t cacheLocalReads_ = 0;
  std::int64_t staleReads_ = 0;
  std::int64_t failedReads_ = 0;

  std::int64_t writes_ = 0;
  std::int64_t delayedWrites_ = 0;
  std::int64_t blockedWrites_ = 0;
  Summary writeDelay_;

  std::int64_t oracleViolations_ = 0;

  std::int64_t transportRetries_ = 0;
  std::int64_t transportReconnects_ = 0;
  std::int64_t transportFrameAborts_ = 0;
  std::int64_t transportFramesRejected_ = 0;
  std::int64_t transportConnectRefused_ = 0;

  SimTime horizon_ = 0;
};

/// Time-weighted state accounting for one record (see DESIGN.md §4).
/// A record contributes kBytesPerRecord bytes from its last accounting
/// point until it expires or is touched again. accrueRecord() is called
/// whenever the record is created, renewed, or removed, and once more in
/// the protocol's end-of-run sweep.
///
/// Usage: keep `lastAccounted` alongside each record; call
///   accrueRecord(metrics, server, lastAccounted, expiry, now [, bytes])
/// *before* changing the record's expiry.
void accrueRecord(Metrics& metrics, NodeId server, SimTime& lastAccounted,
                  SimTime expiry, SimTime now,
                  std::int64_t bytes = kBytesPerRecord);

}  // namespace vlease::stats
