#include "stats/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace vlease::stats {

void Metrics::onMessage(NodeId from, NodeId to, std::size_t typeIndex,
                        std::int64_t bytes, SimTime now, bool delivered) {
  VL_DCHECK(typeIndex < kMaxMsgTypes);
  ++totalMessages_;
  totalBytes_ += bytes;
  ++byType_[typeIndex];

  const double cpu =
      kCpuPerMessage + kCpuPerKilobyte * static_cast<double>(bytes) / 1024.0;

  NodeCounters& src = nodeMut(from);
  ++src.sent;
  src.bytesSent += bytes;
  src.cpuUnits += cpu;
  totalCpu_ += cpu;
  if (isTracked(from)) loadMut(from).add(secondBucket(now));

  if (delivered) {
    NodeCounters& dst = nodeMut(to);
    ++dst.received;
    dst.bytesReceived += bytes;
    dst.cpuUnits += cpu;
    totalCpu_ += cpu;
    if (isTracked(to)) loadMut(to).add(secondBucket(now));
  } else {
    ++droppedMessages_;
  }
}

SparseCounter& Metrics::loadMut(NodeId id) {
  const std::uint32_t i = raw(id);
  if (i >= load_.size()) {
    load_.resize(i + 1);
    hasLoad_.resize(i + 1, 0);
  }
  hasLoad_[i] = 1;
  return load_[i];
}

void Metrics::onWrite(SimDuration delay, bool blocked) {
  ++writes_;
  if (blocked) {
    ++blockedWrites_;
    return;  // delay is unbounded; excluded from the delay summary
  }
  if (delay > 0) ++delayedWrites_;
  writeDelay_.add(toSeconds(delay));
}

NodeCounters& Metrics::nodeMut(NodeId id) {
  std::size_t idx = raw(id);
  if (idx >= perNode_.size()) perNode_.resize(idx + 1);
  return perNode_[idx];
}

const NodeCounters& Metrics::node(NodeId id) const {
  static const NodeCounters kEmpty;
  std::size_t idx = raw(id);
  return idx < perNode_.size() ? perNode_[idx] : kEmpty;
}

double Metrics::avgStateBytes(NodeId server) const {
  if (horizon_ <= 0) return 0.0;
  const std::uint32_t i = raw(server);
  if (i >= stateIntegral_.size()) return 0.0;
  return stateIntegral_[i] / static_cast<double>(horizon_);
}

const SparseCounter& Metrics::loadSeries(NodeId node) const {
  static const SparseCounter kEmpty;
  const std::uint32_t i = raw(node);
  return hasLoadSeries(node) ? load_[i] : kEmpty;
}

std::vector<NodeId> Metrics::nodesByTraffic() const {
  std::vector<NodeId> nodes;
  nodes.reserve(perNode_.size());
  for (std::size_t i = 0; i < perNode_.size(); ++i) {
    if (perNode_[i].messages() > 0)
      nodes.push_back(makeNodeId(static_cast<std::uint32_t>(i)));
  }
  std::stable_sort(nodes.begin(), nodes.end(), [this](NodeId a, NodeId b) {
    return node(a).messages() > node(b).messages();
  });
  return nodes;
}

void Metrics::mergeFrom(const Metrics& other) {
  totalMessages_ += other.totalMessages_;
  totalBytes_ += other.totalBytes_;
  totalCpu_ += other.totalCpu_;
  droppedMessages_ += other.droppedMessages_;
  for (std::size_t i = 0; i < kMaxMsgTypes; ++i) byType_[i] += other.byType_[i];

  if (other.perNode_.size() > perNode_.size()) {
    perNode_.resize(other.perNode_.size());
  }
  for (std::size_t i = 0; i < other.perNode_.size(); ++i) {
    const NodeCounters& src = other.perNode_[i];
    NodeCounters& dst = perNode_[i];
    dst.sent += src.sent;
    dst.received += src.received;
    dst.bytesSent += src.bytesSent;
    dst.bytesReceived += src.bytesReceived;
    dst.cpuUnits += src.cpuUnits;
  }

  for (std::size_t i = 0; i < other.trackLoad_.size(); ++i) {
    if (other.trackLoad_[i] != 0) {
      trackLoad(makeNodeId(static_cast<std::uint32_t>(i)));
    }
  }
  for (std::size_t i = 0; i < other.load_.size(); ++i) {
    if (i >= other.hasLoad_.size() || other.hasLoad_[i] == 0) continue;
    loadMut(makeNodeId(static_cast<std::uint32_t>(i))).merge(other.load_[i]);
  }

  if (other.stateIntegral_.size() > stateIntegral_.size()) {
    stateIntegral_.resize(other.stateIntegral_.size(), 0.0);
  }
  for (std::size_t i = 0; i < other.stateIntegral_.size(); ++i) {
    stateIntegral_[i] += other.stateIntegral_[i];
  }

  reads_ += other.reads_;
  cacheLocalReads_ += other.cacheLocalReads_;
  staleReads_ += other.staleReads_;
  failedReads_ += other.failedReads_;

  writes_ += other.writes_;
  delayedWrites_ += other.delayedWrites_;
  blockedWrites_ += other.blockedWrites_;
  writeDelay_.merge(other.writeDelay_);

  oracleViolations_ += other.oracleViolations_;

  transportRetries_ += other.transportRetries_;
  transportReconnects_ += other.transportReconnects_;
  transportFrameAborts_ += other.transportFrameAborts_;
  transportFramesRejected_ += other.transportFramesRejected_;
  transportConnectRefused_ += other.transportConnectRefused_;

  horizon_ = std::max(horizon_, other.horizon_);
}

void accrueRecord(Metrics& metrics, NodeId server, SimTime& lastAccounted,
                  SimTime expiry, SimTime now, std::int64_t bytes) {
  // A record's expiry can predate its last accounting point (a renewal
  // may SHORTEN expiry, e.g. a volume re-grant under clock skew): the
  // live window [lastAccounted, min(expiry, now)) is then empty, not
  // negative. Clamp instead of accruing a negative integral.
  const SimTime liveUntil = std::max(std::min(expiry, now), lastAccounted);
  if (liveUntil > lastAccounted) {
    metrics.addStateIntegral(
        server, static_cast<double>(bytes) *
                    static_cast<double>(liveUntil - lastAccounted));
  }
  lastAccounted = std::max(lastAccounted, now);
}

}  // namespace vlease::stats
