// Binary wire format for protocol messages.
//
// The simulator never serializes (payloads move as C++ objects and only
// their modeled size is charged), but the TCP transport binding sends
// real bytes. Encoding: little-endian fixed-width integers, length-
// prefixed lists, one type byte selecting the Payload alternative, and
// a trailing CRC-32 over everything before it:
//
//   [u32 from][u32 to][u8 typeIndex][fields...][u32 crc32]
//
// Piggybacked object data is represented by its byte count only (the
// simulator's object "contents" are synthetic); a production deployment
// would append the blob after the header.
//
// decodeMessage() is safe on untrusted input: the checksum is verified
// before any field is parsed, every read is bounds-checked, and list
// lengths are validated against the remaining buffer. A truncated or
// bit-flipped frame is rejected (nullopt), never misparsed into a
// valid-looking message.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.h"

namespace vlease::net {

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder. After any failed read, ok()
/// turns false and every subsequent read returns zero.
class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  bool ok() const { return ok_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  bool need(std::size_t n);

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// CRC-32 (IEEE 802.3, reflected) over `size` bytes. Exposed so tests
/// and tools can seal hand-crafted frames.
std::uint32_t wireChecksum(const std::uint8_t* data, std::size_t size);

/// Serialize a message (header + payload + trailing checksum).
std::vector<std::uint8_t> encodeMessage(const Message& msg);

/// Parse; nullopt on any malformed input (truncation, checksum
/// mismatch, bad type byte, oversized list).
std::optional<Message> decodeMessage(const std::uint8_t* data,
                                     std::size_t size);

}  // namespace vlease::net
