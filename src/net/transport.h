// Transport abstraction the protocol endpoints are written against.
//
// Endpoints never talk to the simulator directly for messaging; they see
// only this interface, so the same client/server state machines could be
// bound to a real socket transport. net::SimNetwork is the simulation
// binding.
#pragma once

#include "net/message.h"

namespace vlease::net {

/// Receiving side of a node.
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void deliver(const Message& msg) = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Register the sink for a node id. A node must be attached before any
  /// message addressed to it is delivered.
  virtual void attach(NodeId node, MessageSink* sink) = 0;
  virtual void detach(NodeId node) = 0;

  /// Fire-and-forget send. Delivery is asynchronous and may silently
  /// fail (loss, partition, crashed peer) -- protocols must tolerate it.
  virtual void send(Message msg) = 0;
};

}  // namespace vlease::net
