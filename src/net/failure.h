// Failure injection: node crashes, bidirectional link partitions, and
// probabilistic message loss. The simulated network consults this on
// every send.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <utility>

#include "util/ids.h"
#include "util/rng.h"

namespace vlease::net {

class FailureModel {
 public:
  /// A crashed node neither sends nor receives; messages to it vanish.
  void crash(NodeId node) { crashed_.insert(node); }
  void recover(NodeId node) { crashed_.erase(node); }
  bool isCrashed(NodeId node) const { return crashed_.count(node) > 0; }

  /// Cut / heal the (bidirectional) link between two nodes.
  void partition(NodeId a, NodeId b) { cutLinks_.insert(key(a, b)); }
  void heal(NodeId a, NodeId b) { cutLinks_.erase(key(a, b)); }
  bool isPartitioned(NodeId a, NodeId b) const {
    return cutLinks_.count(key(a, b)) > 0;
  }

  /// Isolate a node from everyone (convenience wrapper used in tests:
  /// models an unreachable-but-alive client).
  void isolate(NodeId node) { isolated_.insert(node); }
  void deisolate(NodeId node) { isolated_.erase(node); }
  bool isIsolated(NodeId node) const { return isolated_.count(node) > 0; }

  /// Independent per-message drop probability (0 = reliable).
  void setLossProbability(double p) { lossProb_ = p; }
  double lossProbability() const { return lossProb_; }

  /// Would a message from `a` reach `b` (ignoring random loss)?
  bool isReachable(NodeId a, NodeId b) const {
    return !isCrashed(a) && !isCrashed(b) && !isIsolated(a) &&
           !isIsolated(b) && !isPartitioned(a, b);
  }

  /// Full verdict for one message, including a loss coin-flip.
  bool allowsDelivery(NodeId a, NodeId b, Rng& rng) const {
    if (!isReachable(a, b)) return false;
    return lossProb_ <= 0.0 || !rng.nextBool(lossProb_);
  }

  /// Verdict for a message already in flight from `a`, re-checked at
  /// delivery time. A sender crash does not destroy packets already on
  /// the wire, but a partition or an isolation of either endpoint cuts
  /// the link they are crossing, and a crashed destination cannot
  /// receive.
  bool allowsInFlightDelivery(NodeId a, NodeId b) const {
    return !isCrashed(b) && !isIsolated(a) && !isIsolated(b) &&
           !isPartitioned(a, b);
  }

  bool anyFailures() const {
    return !crashed_.empty() || !cutLinks_.empty() || !isolated_.empty() ||
           lossProb_ > 0.0;
  }

  /// Number of distinct faults currently active (crashed nodes +
  /// isolated nodes + cut links + a nonzero loss probability).
  /// Introspection for FaultPlan teardown and tests.
  std::size_t activeFaultCount() const {
    return crashed_.size() + isolated_.size() + cutLinks_.size() +
           (lossProb_ > 0.0 ? 1 : 0);
  }

  /// Heal everything: no crashes, no isolations, no partitions, no loss.
  void clear() {
    crashed_.clear();
    isolated_.clear();
    cutLinks_.clear();
    lossProb_ = 0.0;
  }

 private:
  static std::uint64_t key(NodeId a, NodeId b) {
    std::uint32_t lo = raw(a), hi = raw(b);
    if (lo > hi) std::swap(lo, hi);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }

  std::unordered_set<NodeId> crashed_;
  std::unordered_set<NodeId> isolated_;
  std::unordered_set<std::uint64_t> cutLinks_;
  double lossProb_ = 0.0;
};

}  // namespace vlease::net
