// Failure injection: node crashes, bidirectional link partitions, and
// probabilistic message loss. The simulated network consults this on
// every send, so the node-fault predicates are flat per-node flag
// arrays (indexed by raw node id) behind a single everything-healthy
// fast path, not hash sets probed five times per message.
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"

namespace vlease::net {

class FailureModel {
 public:
  /// A crashed node neither sends nor receives; messages to it vanish.
  void crash(NodeId node) { setFlag(node, kCrashed, crashedCount_); }
  void recover(NodeId node) { clearFlag(node, kCrashed, crashedCount_); }
  bool isCrashed(NodeId node) const { return hasFlag(node, kCrashed); }

  /// Cut / heal the (bidirectional) link between two nodes.
  void partition(NodeId a, NodeId b) { cutLinks_.insert(key(a, b)); }
  void heal(NodeId a, NodeId b) { cutLinks_.erase(key(a, b)); }
  bool isPartitioned(NodeId a, NodeId b) const {
    return !cutLinks_.empty() && cutLinks_.count(key(a, b)) > 0;
  }

  /// Isolate a node from everyone (convenience wrapper used in tests:
  /// models an unreachable-but-alive client).
  void isolate(NodeId node) { setFlag(node, kIsolated, isolatedCount_); }
  void deisolate(NodeId node) { clearFlag(node, kIsolated, isolatedCount_); }
  bool isIsolated(NodeId node) const { return hasFlag(node, kIsolated); }

  /// Independent per-message drop probability (0 = reliable).
  void setLossProbability(double p) { lossProb_ = p; }
  double lossProbability() const { return lossProb_; }

  /// Would a message from `a` reach `b` (ignoring random loss)?
  bool isReachable(NodeId a, NodeId b) const {
    if (allHealthy()) return true;
    return !isCrashed(a) && !isCrashed(b) && !isIsolated(a) &&
           !isIsolated(b) && !isPartitioned(a, b);
  }

  /// Full verdict for one message, including a loss coin-flip.
  bool allowsDelivery(NodeId a, NodeId b, Rng& rng) const {
    if (!isReachable(a, b)) return false;
    return lossProb_ <= 0.0 || !rng.nextBool(lossProb_);
  }

  /// Verdict for a message already in flight from `a`, re-checked at
  /// delivery time. A sender crash does not destroy packets already on
  /// the wire, but a partition or an isolation of either endpoint cuts
  /// the link they are crossing, and a crashed destination cannot
  /// receive.
  bool allowsInFlightDelivery(NodeId a, NodeId b) const {
    if (allHealthy()) return true;
    return !isCrashed(b) && !isIsolated(a) && !isIsolated(b) &&
           !isPartitioned(a, b);
  }

  bool anyFailures() const { return !allHealthy() || lossProb_ > 0.0; }

  /// Number of distinct faults currently active (crashed nodes +
  /// isolated nodes + cut links + a nonzero loss probability).
  /// Introspection for FaultPlan teardown and tests.
  std::size_t activeFaultCount() const {
    return crashedCount_ + isolatedCount_ + cutLinks_.size() +
           (lossProb_ > 0.0 ? 1 : 0);
  }

  /// Heal everything: no crashes, no isolations, no partitions, no loss.
  void clear() {
    std::fill(flags_.begin(), flags_.end(), std::uint8_t{0});
    crashedCount_ = 0;
    isolatedCount_ = 0;
    cutLinks_.clear();
    lossProb_ = 0.0;
  }

 private:
  static constexpr std::uint8_t kCrashed = 1u << 0;
  static constexpr std::uint8_t kIsolated = 1u << 1;

  static std::uint64_t key(NodeId a, NodeId b) {
    std::uint32_t lo = raw(a), hi = raw(b);
    if (lo > hi) std::swap(lo, hi);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
  }

  bool allHealthy() const {
    return crashedCount_ == 0 && isolatedCount_ == 0 && cutLinks_.empty();
  }

  bool hasFlag(NodeId node, std::uint8_t bit) const {
    const std::uint32_t i = raw(node);
    return i < flags_.size() && (flags_[i] & bit) != 0;
  }
  void setFlag(NodeId node, std::uint8_t bit, std::size_t& count) {
    const std::uint32_t i = raw(node);
    if (i >= flags_.size()) flags_.resize(i + 1, 0);
    if ((flags_[i] & bit) == 0) {
      flags_[i] |= bit;
      ++count;
    }
  }
  void clearFlag(NodeId node, std::uint8_t bit, std::size_t& count) {
    const std::uint32_t i = raw(node);
    if (i < flags_.size() && (flags_[i] & bit) != 0) {
      flags_[i] &= static_cast<std::uint8_t>(~bit);
      --count;
    }
  }

  std::vector<std::uint8_t> flags_;  // by raw node id
  std::size_t crashedCount_ = 0;
  std::size_t isolatedCount_ = 0;
  std::unordered_set<std::uint64_t> cutLinks_;
  double lossProb_ = 0.0;
};

}  // namespace vlease::net
