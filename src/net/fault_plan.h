// Declarative fault timelines: a FaultPlan is a time-sorted list of
// fault events (crashes, recoveries, partitions, isolations, loss
// windows) that a driver schedules against the sim clock and applies to
// a FailureModel. The plan itself is passive data -- building one has no
// side effects, so plans can be constructed, inspected, serialized into
// logs, and replayed bit-for-bit.
//
// driver::Simulation installs a plan at construction (SimOptions::
// faultPlan): every event becomes a cancellable scheduler timer that
// mutates the network's FailureModel (and, for crash/recover of
// protocol endpoints, loses the endpoint's volatile state -- see
// Simulation for those semantics). FaultPlan::random() derives an
// entire chaos schedule from one (seed, intensity) pair, which is what
// makes a chaos run reproducible from two numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/time.h"

namespace vlease::net {

struct FaultEvent {
  enum class Kind {
    kCrash,      // node `a` goes down (state lost; messages vanish)
    kRecover,    // node `a` reboots (server: epoch recovery; client: cold cache)
    kPartition,  // cut the (a, b) link
    kHeal,       // restore the (a, b) link
    kIsolate,    // node `a` unreachable-but-alive
    kDeisolate,  // node `a` reachable again
    kSetLoss,    // global per-message loss probability := lossProb
    kSkew,       // node `a`'s clock steps to total skew `offset`
    kDrift,      // node `a`'s clock drifts at `ppm` from this instant
  };

  SimTime at = 0;
  Kind kind = Kind::kCrash;
  NodeId a = makeNodeId(0);
  NodeId b = makeNodeId(0);  // partition/heal only
  double lossProb = 0.0;     // kSetLoss only
  SimDuration offset = 0;    // kSkew only: local minus global
  double ppm = 0.0;          // kDrift only: microseconds per second
};

const char* faultKindName(FaultEvent::Kind kind);

/// One-line human rendering ("12.5s crash node 3") for logs and dumps.
std::string formatFaultEvent(const FaultEvent& event);

class FaultPlan {
 public:
  // ---- builders (chainable; times need not be added in order) ----
  FaultPlan& crashAt(SimTime at, NodeId node);
  FaultPlan& recoverAt(SimTime at, NodeId node);
  FaultPlan& partitionAt(SimTime at, NodeId a, NodeId b);
  FaultPlan& healAt(SimTime at, NodeId a, NodeId b);
  FaultPlan& isolateAt(SimTime at, NodeId node);
  FaultPlan& deisolateAt(SimTime at, NodeId node);
  FaultPlan& setLossAt(SimTime at, double p);
  /// Step node's clock to a total skew of `offset` (local minus global).
  FaultPlan& skewAt(SimTime at, NodeId node, SimDuration offset);
  /// Start node's clock drifting at `ppm` microseconds per second.
  FaultPlan& driftAt(SimTime at, NodeId node, double ppm);
  /// Convenience: raise loss to `p` over [from, to), then back to 0.
  FaultPlan& lossWindow(SimTime from, SimTime to, double p);
  /// Convenience: node down over [from, to).
  FaultPlan& crashWindow(SimTime from, SimTime to, NodeId node);
  /// Convenience: node isolated over [from, to).
  FaultPlan& isolationWindow(SimTime from, SimTime to, NodeId node);
  /// Convenience: (a, b) link cut over [from, to).
  FaultPlan& partitionWindow(SimTime from, SimTime to, NodeId a, NodeId b);

  /// Events sorted by time; ties keep insertion order (stable), so
  /// "crash then recover at t" applies in the order it was declared.
  const std::vector<FaultEvent>& events() const;

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Do any events crash node kinds that match `isServer`? (Used by the
  /// oracle to widen its write-delay bound with a recovery allowance.)
  bool hasCrashes() const;

  /// The [crash, recover) windows of `node`, in time order. A crash with
  /// no matching recover yields a window closing at kNever. Used by the
  /// real-run parity checker to excuse losses that a crash explains.
  std::vector<std::pair<SimTime, SimTime>> crashWindows(NodeId node) const;

  /// Seeded chaos-schedule generator: everything is derived from `rng`,
  /// so the same (seed, intensity) pair reproduces the same plan.
  ///
  /// `intensity` in [0, 1] scales how many fault windows of each kind
  /// are generated over `horizon`:
  ///   * client isolation windows (transient partitions, the paper's
  ///     "unreachable client"),
  ///   * client crash+reboot windows (cache lost on recovery),
  ///   * server crash+reboot windows (lease state lost, epoch bump),
  ///   * client<->server link partitions,
  ///   * global message-loss windows.
  /// Windows may overlap; all of them open and close inside [0, horizon]
  /// so a drained run ends with every fault healed.
  struct RandomOptions {
    double intensity = 0.5;     // 0 = no faults, 1 = heavy chaos
    SimTime horizon = 0;        // latest instant any fault may remain active
    bool serverCrashes = true;  // allow server crash/reboot windows
    bool clientCrashes = true;  // allow client crash/reboot windows
    double maxLossProbability = 0.2;
    /// Clock-skew budget B: when nonzero, clients get skew steps in
    /// [-B/2, +B/2] and drift rates bounded so accrued drift over the
    /// whole horizon stays within B/2 -- every node's |skew| <= B at all
    /// times, which is the bound the epsilon margin must cover. Zero
    /// (the default) generates no skew events and leaves the rng stream
    /// identical to pre-skew plans.
    SimDuration maxClockSkew = 0;
    /// Scale factor on fault-window lengths. Simulated chaos runs use
    /// minutes-long horizons; real-process runs (tools/vlease_rt) last
    /// seconds, so they shrink the windows to fit. 1.0 (the default)
    /// reproduces historical plans byte-for-byte: the scale multiplies
    /// the mean of the SAME exponential draw, so the rng stream is
    /// untouched.
    double windowScale = 1.0;
    /// Floor on a fault window's length after scaling.
    SimDuration minWindow = sec(1);
  };
  static FaultPlan random(Rng& rng, const RandomOptions& options,
                          const std::vector<NodeId>& clients,
                          const std::vector<NodeId>& servers);

 private:
  FaultPlan& add(FaultEvent event);

  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace vlease::net
