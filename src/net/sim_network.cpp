#include "net/sim_network.h"

#include "util/check.h"
#include "util/log.h"

namespace vlease::net {

void SimNetwork::attach(NodeId node, MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  sinks_[node] = sink;
}

void SimNetwork::detach(NodeId node) { sinks_.erase(node); }

void SimNetwork::send(Message msg) {
  ++sent_;
  const std::int64_t bytes = wireBytes(msg.payload);
  const bool deliverable =
      failures_.allowsDelivery(msg.from, msg.to, lossRng_) &&
      sinks_.count(msg.to) > 0;
  metrics_.onMessage(msg.from, msg.to, payloadTypeIndex(msg.payload), bytes,
                     scheduler_.now(), deliverable);
  VL_LOG_DEBUG << "[" << formatSimTime(scheduler_.now()) << "] "
               << (deliverable ? "send " : "DROP ")
               << payloadTypeName(payloadTypeIndex(msg.payload)) << " "
               << raw(msg.from) << "->" << raw(msg.to);
  if (!deliverable) return;
  const SimDuration delay = latency_ ? latency_(msg.from, msg.to) : 0;
  VL_CHECK(delay >= 0);
  scheduler_.scheduleAfter(delay, [this, m = std::move(msg)]() {
    // Re-check the failure model at delivery time, not only at send: a
    // node isolated or partitioned away while the message was in flight
    // loses it too (only possible with nonzero latency). Sender crashes
    // are deliberately exempt -- the packet already left the host.
    if (!failures_.allowsInFlightDelivery(m.from, m.to)) return;
    auto it = sinks_.find(m.to);
    if (it == sinks_.end()) return;
    ++delivered_;
    it->second->deliver(m);
  });
}

}  // namespace vlease::net
