#include "net/sim_network.h"

#include <utility>

#include "util/check.h"
#include "util/log.h"

namespace vlease::net {

void SimNetwork::attach(NodeId node, MessageSink* sink) {
  VL_CHECK(sink != nullptr);
  const std::uint32_t i = raw(node);
  if (i >= sinks_.size()) sinks_.resize(i + 1, nullptr);
  sinks_[i] = sink;
}

void SimNetwork::detach(NodeId node) {
  const std::uint32_t i = raw(node);
  if (i < sinks_.size()) sinks_[i] = nullptr;
}

void SimNetwork::send(Message msg) {
  ++sent_;
  const std::size_t type = payloadTypeIndex(msg.payload);
  const std::int64_t bytes = wireBytes(msg.payload);
  // allowsDelivery first: it draws from lossRng_, and the draw sequence
  // is part of the bit-for-bit reproducibility contract (a message to a
  // detached node must still consume its loss roll, as it always has).
  const bool deliverable =
      failures_.allowsDelivery(msg.from, msg.to, lossRng_) &&
      sinkFor(msg.to) != nullptr;
  metrics_.onMessage(msg.from, msg.to, type, bytes, scheduler_.now(),
                     deliverable);
  VL_LOG_DEBUG << "[" << formatSimTime(scheduler_.now()) << "] "
               << (deliverable ? "send " : "DROP ") << payloadTypeName(type)
               << " " << raw(msg.from) << "->" << raw(msg.to);
  if (!deliverable) return;
  const SimDuration delay = latency_ ? latency_(msg.from, msg.to) : 0;
  VL_CHECK(delay >= 0);
  // Exact lane on purpose: message delivery order IS the protocol's
  // observable behavior -- never the coarse deadline lane.
  scheduler_.scheduleAfter(delay, [this, m = std::move(msg)]() {
    // Re-check the failure model at delivery time, not only at send: a
    // node isolated or partitioned away while the message was in flight
    // loses it too (only possible with nonzero latency). Sender crashes
    // are deliberately exempt -- the packet already left the host.
    if (!failures_.allowsInFlightDelivery(m.from, m.to)) return;
    MessageSink* sink = sinkFor(m.to);
    if (sink == nullptr) return;
    ++delivered_;
    sink->deliver(m);
  });
}

}  // namespace vlease::net
