#include "net/fault_plan.h"

#include <algorithm>

#include "util/check.h"
#include "util/time.h"

namespace vlease::net {

const char* faultKindName(FaultEvent::Kind kind) {
  switch (kind) {
    case FaultEvent::Kind::kCrash:
      return "crash";
    case FaultEvent::Kind::kRecover:
      return "recover";
    case FaultEvent::Kind::kPartition:
      return "partition";
    case FaultEvent::Kind::kHeal:
      return "heal";
    case FaultEvent::Kind::kIsolate:
      return "isolate";
    case FaultEvent::Kind::kDeisolate:
      return "deisolate";
    case FaultEvent::Kind::kSetLoss:
      return "set-loss";
    case FaultEvent::Kind::kSkew:
      return "skew";
    case FaultEvent::Kind::kDrift:
      return "drift";
  }
  return "?";
}

std::string formatFaultEvent(const FaultEvent& event) {
  std::string s = formatSimTime(event.at);
  s += " ";
  s += faultKindName(event.kind);
  switch (event.kind) {
    case FaultEvent::Kind::kPartition:
    case FaultEvent::Kind::kHeal:
      s += " link " + std::to_string(raw(event.a)) + "<->" +
           std::to_string(raw(event.b));
      break;
    case FaultEvent::Kind::kSetLoss:
      s += " p=" + std::to_string(event.lossProb);
      break;
    case FaultEvent::Kind::kSkew:
      s += " node " + std::to_string(raw(event.a)) +
           " offset=" + formatSimTime(event.offset);
      break;
    case FaultEvent::Kind::kDrift:
      s += " node " + std::to_string(raw(event.a)) +
           " ppm=" + std::to_string(event.ppm);
      break;
    default:
      s += " node " + std::to_string(raw(event.a));
      break;
  }
  return s;
}

FaultPlan& FaultPlan::add(FaultEvent event) {
  VL_CHECK(event.at >= 0);
  if (!events_.empty() && event.at < events_.back().at) sorted_ = false;
  events_.push_back(event);
  return *this;
}

FaultPlan& FaultPlan::crashAt(SimTime at, NodeId node) {
  return add({at, FaultEvent::Kind::kCrash, node, node, 0.0});
}
FaultPlan& FaultPlan::recoverAt(SimTime at, NodeId node) {
  return add({at, FaultEvent::Kind::kRecover, node, node, 0.0});
}
FaultPlan& FaultPlan::partitionAt(SimTime at, NodeId a, NodeId b) {
  return add({at, FaultEvent::Kind::kPartition, a, b, 0.0});
}
FaultPlan& FaultPlan::healAt(SimTime at, NodeId a, NodeId b) {
  return add({at, FaultEvent::Kind::kHeal, a, b, 0.0});
}
FaultPlan& FaultPlan::isolateAt(SimTime at, NodeId node) {
  return add({at, FaultEvent::Kind::kIsolate, node, node, 0.0});
}
FaultPlan& FaultPlan::deisolateAt(SimTime at, NodeId node) {
  return add({at, FaultEvent::Kind::kDeisolate, node, node, 0.0});
}
FaultPlan& FaultPlan::setLossAt(SimTime at, double p) {
  VL_CHECK(p >= 0.0 && p <= 1.0);
  return add({at, FaultEvent::Kind::kSetLoss, makeNodeId(0), makeNodeId(0), p});
}
FaultPlan& FaultPlan::skewAt(SimTime at, NodeId node, SimDuration offset) {
  FaultEvent event{at, FaultEvent::Kind::kSkew, node, node, 0.0};
  event.offset = offset;
  return add(event);
}
FaultPlan& FaultPlan::driftAt(SimTime at, NodeId node, double ppm) {
  FaultEvent event{at, FaultEvent::Kind::kDrift, node, node, 0.0};
  event.ppm = ppm;
  return add(event);
}

FaultPlan& FaultPlan::lossWindow(SimTime from, SimTime to, double p) {
  VL_CHECK(from <= to);
  setLossAt(from, p);
  return setLossAt(to, 0.0);
}
FaultPlan& FaultPlan::crashWindow(SimTime from, SimTime to, NodeId node) {
  VL_CHECK(from <= to);
  crashAt(from, node);
  return recoverAt(to, node);
}
FaultPlan& FaultPlan::isolationWindow(SimTime from, SimTime to, NodeId node) {
  VL_CHECK(from <= to);
  isolateAt(from, node);
  return deisolateAt(to, node);
}
FaultPlan& FaultPlan::partitionWindow(SimTime from, SimTime to, NodeId a,
                                      NodeId b) {
  VL_CHECK(from <= to);
  partitionAt(from, a, b);
  return healAt(to, a, b);
}

const std::vector<FaultEvent>& FaultPlan::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& x, const FaultEvent& y) {
                       return x.at < y.at;
                     });
    sorted_ = true;
  }
  return events_;
}

bool FaultPlan::hasCrashes() const {
  return std::any_of(events_.begin(), events_.end(), [](const FaultEvent& e) {
    return e.kind == FaultEvent::Kind::kCrash;
  });
}

std::vector<std::pair<SimTime, SimTime>> FaultPlan::crashWindows(
    NodeId node) const {
  std::vector<std::pair<SimTime, SimTime>> windows;
  for (const FaultEvent& e : events()) {
    if (e.a != node) continue;
    if (e.kind == FaultEvent::Kind::kCrash) {
      windows.emplace_back(e.at, kNever);
    } else if (e.kind == FaultEvent::Kind::kRecover && !windows.empty() &&
               windows.back().second == kNever) {
      windows.back().second = e.at;
    }
  }
  return windows;
}

namespace {

/// Window start uniform in [0, horizon), length exponential with the
/// given mean (scaled by options.windowScale, floored at
/// options.minWindow), clipped so the window closes by `horizon`. The
/// scale multiplies the value of one fixed exponential draw, so the rng
/// stream is independent of the scale.
std::pair<SimTime, SimTime> randomWindow(Rng& rng, SimTime horizon,
                                         double meanLenSeconds,
                                         const FaultPlan::RandomOptions& o) {
  const SimTime from = static_cast<SimTime>(
      rng.nextBelow(static_cast<std::uint64_t>(std::max<SimTime>(horizon, 1))));
  SimDuration len =
      secondsToSim(rng.nextExponential(meanLenSeconds) * o.windowScale);
  if (len < o.minWindow) len = o.minWindow;
  const SimTime to = std::min<SimTime>(addSat(from, len), horizon);
  return {from, to};
}

}  // namespace

FaultPlan FaultPlan::random(Rng& rng, const RandomOptions& options,
                            const std::vector<NodeId>& clients,
                            const std::vector<NodeId>& servers) {
  VL_CHECK(options.horizon > 0);
  VL_CHECK(options.intensity >= 0.0 && options.intensity <= 1.0);
  FaultPlan plan;
  const double intensity = options.intensity;
  const SimTime horizon = options.horizon;

  // Expected window counts scale linearly with intensity; the Poisson
  // draws keep plans varied across seeds at the same intensity.
  const auto drawCount = [&rng](double mean) {
    return static_cast<int>(rng.nextPoisson(mean));
  };

  // Client isolation windows: the bread-and-butter fault of the paper
  // (unreachable-but-alive clients). Roughly one window per client at
  // full intensity, tens-of-seconds long.
  if (!clients.empty()) {
    const int n = drawCount(intensity * static_cast<double>(clients.size()));
    for (int i = 0; i < n; ++i) {
      const NodeId c = clients[rng.nextBelow(clients.size())];
      auto [from, to] = randomWindow(rng, horizon, /*meanLenSeconds=*/45.0, options);
      plan.isolationWindow(from, to, c);
    }
  }

  // Client crash+reboot: cache lost on recovery.
  if (options.clientCrashes && !clients.empty()) {
    const int n =
        drawCount(intensity * 0.5 * static_cast<double>(clients.size()));
    for (int i = 0; i < n; ++i) {
      const NodeId c = clients[rng.nextBelow(clients.size())];
      auto [from, to] = randomWindow(rng, horizon, /*meanLenSeconds=*/30.0, options);
      plan.crashWindow(from, to, c);
    }
  }

  // Server crash+reboot: lease state lost, epoch bumped, recovery wait.
  if (options.serverCrashes && !servers.empty()) {
    const int n =
        drawCount(intensity * 0.75 * static_cast<double>(servers.size()));
    for (int i = 0; i < n; ++i) {
      const NodeId s = servers[rng.nextBelow(servers.size())];
      auto [from, to] = randomWindow(rng, horizon, /*meanLenSeconds=*/20.0, options);
      plan.crashWindow(from, to, s);
    }
  }

  // Point-to-point partitions between a client and a server.
  if (!clients.empty() && !servers.empty()) {
    const int n = drawCount(intensity * 2.0);
    for (int i = 0; i < n; ++i) {
      const NodeId c = clients[rng.nextBelow(clients.size())];
      const NodeId s = servers[rng.nextBelow(servers.size())];
      auto [from, to] = randomWindow(rng, horizon, /*meanLenSeconds=*/60.0, options);
      plan.partitionWindow(from, to, c, s);
    }
  }

  // Global loss windows. Windows may overlap; the latest kSetLoss event
  // to fire wins, and every window closes by `horizon`, so the plan
  // always ends at p = 0.
  {
    const int n = drawCount(intensity * 2.0);
    for (int i = 0; i < n; ++i) {
      const double p = options.maxLossProbability * rng.nextDouble();
      auto [from, to] = randomWindow(rng, horizon, /*meanLenSeconds=*/90.0, options);
      plan.lossWindow(from, to, p);
    }
  }

  // Per-client clock skew. Steps set a node's *total* skew to a value in
  // [-B/2, +B/2]; drift rates (at most one per client, from t = 0) are
  // bounded so accrued drift over any span of the horizon stays within
  // B/2 -- together |skew| <= maxClockSkew for every node at every
  // instant, the bound the protocol's epsilon margin must cover. Servers
  // keep reference time: lease timestamps originate at the server, so
  // only a client's skew relative to its server is protocol-visible.
  // Gated on the budget so zero-skew plans consume an rng stream
  // identical to pre-skew builds.
  if (options.maxClockSkew > 0 && !clients.empty()) {
    const double half = static_cast<double>(options.maxClockSkew) / 2.0;
    const int n = drawCount(intensity * static_cast<double>(clients.size()));
    for (int i = 0; i < n; ++i) {
      const NodeId c = clients[rng.nextBelow(clients.size())];
      const SimTime at = static_cast<SimTime>(rng.nextBelow(
          static_cast<std::uint64_t>(std::max<SimTime>(horizon, 1))));
      const SimDuration off =
          static_cast<SimDuration>((2.0 * rng.nextDouble() - 1.0) * half);
      plan.skewAt(at, c, off);
    }
    const double maxPpm = half * 1'000'000.0 / static_cast<double>(horizon);
    for (const NodeId c : clients) {
      if (rng.nextDouble() < intensity * 0.5) {
        const double ppm = (2.0 * rng.nextDouble() - 1.0) * maxPpm;
        plan.driftAt(0, c, ppm);
      }
    }
  }

  return plan;
}

}  // namespace vlease::net
