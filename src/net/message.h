// Typed protocol messages.
//
// One message vocabulary covers every algorithm in the paper:
//   * Poll / Poll Each Read use PollRequest / PollReply
//     (if-modified-since semantics);
//   * Callback and Lease use the object-lease pair (Callback is the
//     degenerate case of a never-expiring lease);
//   * Volume Leases adds the volume-lease pair, invalidations and the
//     reconnection exchange (MUST_RENEW_ALL / RENEW_OBJ_LEASES /
//     BatchInvalRenew / AckBatch) from the paper's Figs. 3-4;
//   * Delayed Invalidations reuses BatchInvalRenew to flush a client's
//     pending list when it renews a volume.
//
// Wire sizes are modeled, not serialized: wireBytes() charges a fixed
// header plus 8 bytes per field/element plus the object payload when data
// rides along. The byte totals feed the "network bytes" metric the paper
// discusses alongside Fig. 5.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace vlease::net {

/// Fixed per-message overhead (transport headers etc.).
inline constexpr std::int64_t kHeaderBytes = 40;
/// Modeled size of one id / version / timestamp field on the wire.
inline constexpr std::int64_t kFieldBytes = 8;

// ---- client -> server ----

/// Paper: REQ_OBJ_LEASE(objId, version). haveVersion == kNoVersion means
/// the client holds no copy; the grant then piggybacks the data.
/// wantVolume/haveEpoch implement the piggyback ablation (one round trip
/// renews both leases); the paper's protocol leaves them off.
struct ReqObjLease {
  ObjectId obj;
  Version haveVersion;
  bool wantVolume = false;
  Epoch haveEpoch = 0;
};

/// Paper: REQ_VOL_LEASE(volId, volEpoch).
struct ReqVolLease {
  VolumeId vol;
  Epoch haveEpoch;
};

/// Paper: RENEW_OBJ_LEASES(volId, leaseSet) -- the reconnection reply
/// listing the client's cached objects of this volume with versions.
struct RenewObjLeases {
  VolumeId vol;
  struct Entry {
    ObjectId obj;
    Version version;
  };
  std::vector<Entry> leases;
};

/// Paper: ACK_INVALIDATE(objId) for a single-object invalidation.
struct AckInvalidate {
  ObjectId obj;
};

/// Ack for a BatchInvalRenew (paper: ACK_INVALIDATE(volId)).
struct AckBatch {
  VolumeId vol;
};

/// If-modified-since validation request (Poll family; also the plain
/// fetch path of Callback).
struct PollRequest {
  ObjectId obj;
  Version haveVersion;
};

// ---- server -> client ----

/// Paper: OBJ_LEASE(objId, version, expire [, data]).
/// grantsVolume/volExpire/epoch carry the piggybacked volume lease when
/// the piggyback ablation is enabled.
struct ObjLeaseGrant {
  ObjectId obj;
  Version version;
  SimTime expire;     // kNever encodes a Callback registration
  bool carriesData;   // true when the client's copy was stale/absent
  std::int64_t dataBytes;
  bool grantsVolume = false;
  SimTime volExpire = 0;
  Epoch epoch = 0;
};

/// Paper: VOL_LEASE(volId, expire, epoch).
struct VolLeaseGrant {
  VolumeId vol;
  SimTime expire;
  Epoch epoch;
};

/// Paper: INVALIDATE(objId).
struct Invalidate {
  ObjectId obj;
};

/// Paper: MUST_RENEW_ALL(volId) -- start of the reconnection exchange.
struct MustRenewAll {
  VolumeId vol;
};

/// Paper: the combined "INVALIDATE(invalList), RENEW(renewList)" reply of
/// the reconnection protocol; also delivers Delayed Invalidations'
/// pending lists on volume renewal.
struct BatchInvalRenew {
  VolumeId vol;
  std::vector<ObjectId> invalidate;
  struct Renewal {
    ObjectId obj;
    Version version;
    SimTime expire;
  };
  std::vector<Renewal> renew;
};

/// Reply to PollRequest: current version; data when the client was
/// stale. modifiedAt (the object's last-write time) feeds the adaptive-
/// TTL Poll variant, mirroring HTTP's Last-Modified header.
struct PollReply {
  ObjectId obj;
  Version version;
  bool carriesData;
  std::int64_t dataBytes;
  SimTime modifiedAt = 0;
};

using Payload =
    std::variant<ReqObjLease, ReqVolLease, RenewObjLeases, AckInvalidate,
                 AckBatch, PollRequest, ObjLeaseGrant, VolLeaseGrant,
                 Invalidate, MustRenewAll, BatchInvalRenew, PollReply>;

/// Stable index of a payload alternative (metrics breakdown key).
inline std::size_t payloadTypeIndex(const Payload& p) { return p.index(); }

/// Compile-time index of alternative `T` in Payload, for switch-based
/// dispatch on payload.index() (one indirect-free jump instead of a
/// holds_alternative chain).
template <typename T>
constexpr std::size_t payloadIndex() {
  return Payload(std::in_place_type<T>).index();
}
const char* payloadTypeName(std::size_t index);
constexpr std::size_t kNumPayloadTypes = std::variant_size_v<Payload>;

/// Modeled wire size of a payload (header + fields + piggybacked data).
std::int64_t wireBytes(const Payload& p);

struct Message {
  NodeId from;
  NodeId to;
  Payload payload;
};

}  // namespace vlease::net
