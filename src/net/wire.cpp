#include "net/wire.h"

#include <array>

#include "util/check.h"

namespace vlease::net {

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back((v >> (8 * i)) & 0xff);
}

bool WireReader::need(std::size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t WireReader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint32_t WireReader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

namespace {

/// Lists are length-prefixed; cap entries so a hostile length prefix
/// cannot trigger a huge allocation before the bounds check trips.
constexpr std::uint32_t kMaxListEntries = 1u << 20;

struct EncodeVisitor {
  WireWriter& w;

  void operator()(const ReqObjLease& m) const {
    w.u64(raw(m.obj));
    w.i64(m.haveVersion);
    w.boolean(m.wantVolume);
    w.i64(m.haveEpoch);
  }
  void operator()(const ReqVolLease& m) const {
    w.u64(raw(m.vol));
    w.i64(m.haveEpoch);
  }
  void operator()(const RenewObjLeases& m) const {
    w.u64(raw(m.vol));
    w.u32(static_cast<std::uint32_t>(m.leases.size()));
    for (const auto& entry : m.leases) {
      w.u64(raw(entry.obj));
      w.i64(entry.version);
    }
  }
  void operator()(const AckInvalidate& m) const { w.u64(raw(m.obj)); }
  void operator()(const AckBatch& m) const { w.u64(raw(m.vol)); }
  void operator()(const PollRequest& m) const {
    w.u64(raw(m.obj));
    w.i64(m.haveVersion);
  }
  void operator()(const ObjLeaseGrant& m) const {
    w.u64(raw(m.obj));
    w.i64(m.version);
    w.i64(m.expire);
    w.boolean(m.carriesData);
    w.i64(m.dataBytes);
    w.boolean(m.grantsVolume);
    w.i64(m.volExpire);
    w.i64(m.epoch);
  }
  void operator()(const VolLeaseGrant& m) const {
    w.u64(raw(m.vol));
    w.i64(m.expire);
    w.i64(m.epoch);
  }
  void operator()(const Invalidate& m) const { w.u64(raw(m.obj)); }
  void operator()(const MustRenewAll& m) const { w.u64(raw(m.vol)); }
  void operator()(const BatchInvalRenew& m) const {
    w.u64(raw(m.vol));
    w.u32(static_cast<std::uint32_t>(m.invalidate.size()));
    for (ObjectId obj : m.invalidate) w.u64(raw(obj));
    w.u32(static_cast<std::uint32_t>(m.renew.size()));
    for (const auto& renewal : m.renew) {
      w.u64(raw(renewal.obj));
      w.i64(renewal.version);
      w.i64(renewal.expire);
    }
  }
  void operator()(const PollReply& m) const {
    w.u64(raw(m.obj));
    w.i64(m.version);
    w.boolean(m.carriesData);
    w.i64(m.dataBytes);
    w.i64(m.modifiedAt);
  }
};

template <std::size_t I>
Payload decodeAlternative(WireReader& r) {
  using T = std::variant_alternative_t<I, Payload>;
  if constexpr (std::is_same_v<T, ReqObjLease>) {
    ReqObjLease m{};
    m.obj = makeObjectId(r.u64());
    m.haveVersion = r.i64();
    m.wantVolume = r.boolean();
    m.haveEpoch = r.i64();
    return m;
  } else if constexpr (std::is_same_v<T, ReqVolLease>) {
    ReqVolLease m{};
    m.vol = makeVolumeId(r.u64());
    m.haveEpoch = r.i64();
    return m;
  } else if constexpr (std::is_same_v<T, RenewObjLeases>) {
    RenewObjLeases m{};
    m.vol = makeVolumeId(r.u64());
    std::uint32_t n = r.u32();
    if (n > kMaxListEntries) n = kMaxListEntries + 1;  // forces !ok below
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      RenewObjLeases::Entry entry{};
      entry.obj = makeObjectId(r.u64());
      entry.version = r.i64();
      if (r.ok()) m.leases.push_back(entry);
    }
    return m;
  } else if constexpr (std::is_same_v<T, AckInvalidate>) {
    return AckInvalidate{makeObjectId(r.u64())};
  } else if constexpr (std::is_same_v<T, AckBatch>) {
    return AckBatch{makeVolumeId(r.u64())};
  } else if constexpr (std::is_same_v<T, PollRequest>) {
    PollRequest m{};
    m.obj = makeObjectId(r.u64());
    m.haveVersion = r.i64();
    return m;
  } else if constexpr (std::is_same_v<T, ObjLeaseGrant>) {
    ObjLeaseGrant m{};
    m.obj = makeObjectId(r.u64());
    m.version = r.i64();
    m.expire = r.i64();
    m.carriesData = r.boolean();
    m.dataBytes = r.i64();
    m.grantsVolume = r.boolean();
    m.volExpire = r.i64();
    m.epoch = r.i64();
    return m;
  } else if constexpr (std::is_same_v<T, VolLeaseGrant>) {
    VolLeaseGrant m{};
    m.vol = makeVolumeId(r.u64());
    m.expire = r.i64();
    m.epoch = r.i64();
    return m;
  } else if constexpr (std::is_same_v<T, Invalidate>) {
    return Invalidate{makeObjectId(r.u64())};
  } else if constexpr (std::is_same_v<T, MustRenewAll>) {
    return MustRenewAll{makeVolumeId(r.u64())};
  } else if constexpr (std::is_same_v<T, BatchInvalRenew>) {
    BatchInvalRenew m{};
    m.vol = makeVolumeId(r.u64());
    std::uint32_t nInval = r.u32();
    if (nInval > kMaxListEntries) nInval = kMaxListEntries + 1;
    for (std::uint32_t i = 0; i < nInval && r.ok(); ++i) {
      ObjectId obj = makeObjectId(r.u64());
      if (r.ok()) m.invalidate.push_back(obj);
    }
    std::uint32_t nRenew = r.u32();
    if (nRenew > kMaxListEntries) nRenew = kMaxListEntries + 1;
    for (std::uint32_t i = 0; i < nRenew && r.ok(); ++i) {
      BatchInvalRenew::Renewal renewal{};
      renewal.obj = makeObjectId(r.u64());
      renewal.version = r.i64();
      renewal.expire = r.i64();
      if (r.ok()) m.renew.push_back(renewal);
    }
    return m;
  } else {
    static_assert(std::is_same_v<T, PollReply>);
    PollReply m{};
    m.obj = makeObjectId(r.u64());
    m.version = r.i64();
    m.carriesData = r.boolean();
    m.dataBytes = r.i64();
    m.modifiedAt = r.i64();
    return m;
  }
}

template <std::size_t... Is>
std::optional<Payload> decodePayloadImpl(std::size_t typeIndex, WireReader& r,
                                         std::index_sequence<Is...>) {
  std::optional<Payload> out;
  // Expand a dispatch over all alternatives; exactly one matches.
  (void)((Is == typeIndex ? (out = decodeAlternative<Is>(r), true) : false) ||
         ...);
  return out;
}

/// Frame layout constants: [u32 from][u32 to][u8 type] header and the
/// trailing [u32 crc32].
constexpr std::size_t kFrameHeaderBytes = 9;
constexpr std::size_t kFrameChecksumBytes = 4;

}  // namespace

std::uint32_t wireChecksum(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  for (std::size_t i = 0; i < size; ++i)
    crc = kTable[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
  return crc ^ 0xffffffffu;
}

std::vector<std::uint8_t> encodeMessage(const Message& msg) {
  WireWriter w;
  w.u32(raw(msg.from));
  w.u32(raw(msg.to));
  w.u8(static_cast<std::uint8_t>(payloadTypeIndex(msg.payload)));
  std::visit(EncodeVisitor{w}, msg.payload);
  w.u32(wireChecksum(w.bytes().data(), w.bytes().size()));
  return w.take();
}

std::optional<Message> decodeMessage(const std::uint8_t* data,
                                     std::size_t size) {
  if (size < kFrameHeaderBytes + kFrameChecksumBytes) return std::nullopt;
  // Verify the trailing checksum before parsing anything: a corrupted
  // frame must never be misparsed into a valid-looking message.
  const std::size_t bodySize = size - kFrameChecksumBytes;
  std::uint32_t stored = 0;
  for (int i = 0; i < 4; ++i)
    stored |= static_cast<std::uint32_t>(data[bodySize + i]) << (8 * i);
  if (wireChecksum(data, bodySize) != stored) return std::nullopt;

  WireReader r(data, bodySize);
  Message msg{};
  msg.from = makeNodeId(r.u32());
  msg.to = makeNodeId(r.u32());
  const std::uint8_t typeIndex = r.u8();
  if (!r.ok() || typeIndex >= kNumPayloadTypes) return std::nullopt;
  auto payload = decodePayloadImpl(
      typeIndex, r, std::make_index_sequence<kNumPayloadTypes>{});
  if (!payload.has_value() || !r.ok() || r.remaining() != 0)
    return std::nullopt;
  msg.payload = std::move(*payload);
  return msg;
}

}  // namespace vlease::net
