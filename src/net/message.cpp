#include "net/message.h"

namespace vlease::net {

namespace {

struct WireBytesVisitor {
  std::int64_t operator()(const ReqObjLease& m) const {
    return kHeaderBytes + 2 * kFieldBytes + (m.wantVolume ? kFieldBytes : 0);
  }
  std::int64_t operator()(const ReqVolLease&) const {
    return kHeaderBytes + 2 * kFieldBytes;
  }
  std::int64_t operator()(const RenewObjLeases& m) const {
    return kHeaderBytes + kFieldBytes +
           static_cast<std::int64_t>(m.leases.size()) * 2 * kFieldBytes;
  }
  std::int64_t operator()(const AckInvalidate&) const {
    return kHeaderBytes + kFieldBytes;
  }
  std::int64_t operator()(const AckBatch&) const {
    return kHeaderBytes + kFieldBytes;
  }
  std::int64_t operator()(const PollRequest&) const {
    return kHeaderBytes + 2 * kFieldBytes;
  }
  std::int64_t operator()(const ObjLeaseGrant& m) const {
    return kHeaderBytes + 3 * kFieldBytes + (m.carriesData ? m.dataBytes : 0) +
           (m.grantsVolume ? 2 * kFieldBytes : 0);
  }
  std::int64_t operator()(const VolLeaseGrant&) const {
    return kHeaderBytes + 3 * kFieldBytes;
  }
  std::int64_t operator()(const Invalidate&) const {
    return kHeaderBytes + kFieldBytes;
  }
  std::int64_t operator()(const MustRenewAll&) const {
    return kHeaderBytes + kFieldBytes;
  }
  std::int64_t operator()(const BatchInvalRenew& m) const {
    return kHeaderBytes + kFieldBytes +
           static_cast<std::int64_t>(m.invalidate.size()) * kFieldBytes +
           static_cast<std::int64_t>(m.renew.size()) * 3 * kFieldBytes;
  }
  std::int64_t operator()(const PollReply& m) const {
    return kHeaderBytes + 3 * kFieldBytes + (m.carriesData ? m.dataBytes : 0);
  }
};

constexpr const char* kTypeNames[] = {
    "REQ_OBJ_LEASE", "REQ_VOL_LEASE", "RENEW_OBJ_LEASES", "ACK_INVALIDATE",
    "ACK_BATCH",     "POLL_REQUEST",  "OBJ_LEASE",        "VOL_LEASE",
    "INVALIDATE",    "MUST_RENEW_ALL", "BATCH_INVAL_RENEW", "POLL_REPLY"};
static_assert(sizeof(kTypeNames) / sizeof(kTypeNames[0]) == kNumPayloadTypes,
              "type-name table out of sync with Payload variant");

}  // namespace

const char* payloadTypeName(std::size_t index) {
  return index < kNumPayloadTypes ? kTypeNames[index] : "?";
}

std::int64_t wireBytes(const Payload& p) {
  return std::visit(WireBytesVisitor{}, p);
}

}  // namespace vlease::net
