// Simulated wide-area network: delivers messages through the event
// scheduler with a configurable latency model, applies the failure
// model, and meters every message into stats::Metrics.
//
// With the default zero latency, a request scheduled "now" is delivered
// within the same virtual instant (FIFO tick ordering), so request /
// response exchanges complete instantaneously in virtual time -- the
// paper's sequential trace-processing model. Failure experiments set a
// real latency.
//
// Hot-path design (PR 3): sinks are a dense vector indexed by
// raw(NodeId) -- node ids are small and dense by construction
// (proto::Directory numbers servers then clients) -- so routing a
// message is one bounds check + one load instead of a hash lookup, and
// the payload is moved (never copied) into the delivery closure, which
// lives inline in the scheduler's slot arena. send() performs zero heap
// allocations in steady state (tests/alloc_free_test.cpp).
#pragma once

#include <functional>
#include <vector>

#include "net/failure.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "stats/metrics.h"
#include "util/rng.h"

namespace vlease::net {

class SimNetwork final : public Transport {
 public:
  /// Latency of a (from, to) link; returning 0 keeps the exchange inside
  /// one virtual instant.
  using LatencyFn = std::function<SimDuration(NodeId, NodeId)>;

  SimNetwork(sim::Scheduler& scheduler, stats::Metrics& metrics,
             std::uint64_t lossSeed = 0x6e657477ull)
      : scheduler_(scheduler), metrics_(metrics), lossRng_(lossSeed) {}

  void attach(NodeId node, MessageSink* sink) override;
  void detach(NodeId node) override;
  void send(Message msg) override;

  void setLatency(SimDuration fixed) {
    latency_ = [fixed](NodeId, NodeId) { return fixed; };
  }
  void setLatencyFn(LatencyFn fn) { latency_ = std::move(fn); }

  FailureModel& failures() { return failures_; }
  const FailureModel& failures() const { return failures_; }

  sim::Scheduler& scheduler() { return scheduler_; }
  stats::Metrics& metrics() { return metrics_; }

  std::int64_t sentCount() const { return sent_; }
  std::int64_t deliveredCount() const { return delivered_; }

 private:
  /// The sink for `node`, or null when detached / never attached.
  MessageSink* sinkFor(NodeId node) const {
    const std::uint32_t i = raw(node);
    return i < sinks_.size() ? sinks_[i] : nullptr;
  }

  sim::Scheduler& scheduler_;
  stats::Metrics& metrics_;
  Rng lossRng_;
  FailureModel failures_;
  LatencyFn latency_;
  std::vector<MessageSink*> sinks_;  // dense, indexed by raw(NodeId)
  std::int64_t sent_ = 0;
  std::int64_t delivered_ = 0;
};

}  // namespace vlease::net
