// Wires up a full protocol deployment (one server endpoint per catalog
// server, one client endpoint per catalog client) for any of the seven
// algorithms in Table 1.
#pragma once

#include "proto/protocol.h"

namespace vlease::core {

/// Builds endpoints and attaches them to the context's transport.
/// The returned instance owns them; it must not outlive `ctx`'s
/// scheduler/transport/metrics/catalog.
proto::ProtocolInstance makeProtocol(const proto::ProtocolConfig& config,
                                     proto::ProtocolContext& ctx);

}  // namespace vlease::core
