#include "core/factory.h"

#include <memory>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "proto/lease.h"
#include "proto/poll.h"
#include "util/check.h"

namespace vlease::core {

using proto::Algorithm;
using proto::ProtocolConfig;
using proto::ProtocolContext;
using proto::ProtocolInstance;

ProtocolInstance makeProtocol(const ProtocolConfig& config,
                              ProtocolContext& ctx) {
  ProtocolInstance instance;
  instance.config = config;
  // Poll Each Read is Poll with a zero window. The effective config
  // lives on the instance (shared, immutable): clients reference it
  // instead of each holding a copy.
  auto effectivePtr = std::make_shared<ProtocolConfig>(config);
  if (config.algorithm == Algorithm::kPollEachRead) {
    effectivePtr->objectTimeout = 0;
  }
  instance.sharedConfig = effectivePtr;
  const ProtocolConfig& effective = *instance.sharedConfig;

  const auto& catalog = ctx.catalog;
  instance.servers.reserve(catalog.numServers());
  instance.clients.reserve(catalog.numClients());

  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    const NodeId id = catalog.serverNode(s);
    switch (config.algorithm) {
      case Algorithm::kPollEachRead:
      case Algorithm::kPoll:
      case Algorithm::kPollAdaptive:
        instance.servers.push_back(
            std::make_unique<proto::PollServer>(ctx, id, effective));
        break;
      case Algorithm::kCallback:
        instance.servers.push_back(std::make_unique<proto::LeaseServer>(
            ctx, id, effective, proto::LeaseMode::kCallback));
        break;
      case Algorithm::kLease:
        instance.servers.push_back(std::make_unique<proto::LeaseServer>(
            ctx, id, effective, proto::LeaseMode::kLease));
        break;
      case Algorithm::kBestEffortLease:
        instance.servers.push_back(std::make_unique<proto::LeaseServer>(
            ctx, id, effective, proto::LeaseMode::kBestEffort));
        break;
      case Algorithm::kVolumeLease:
        instance.servers.push_back(std::make_unique<VolumeServer>(
            ctx, id, effective, InvalidationMode::kImmediate));
        break;
      case Algorithm::kVolumeDelayedInval:
        instance.servers.push_back(std::make_unique<VolumeServer>(
            ctx, id, effective, InvalidationMode::kDelayed));
        break;
    }
  }

  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    const NodeId id = catalog.clientNode(c);
    switch (config.algorithm) {
      case Algorithm::kPollEachRead:
      case Algorithm::kPoll:
      case Algorithm::kPollAdaptive:
        instance.clients.push_back(
            std::make_unique<proto::PollClient>(ctx, id, effective));
        break;
      case Algorithm::kCallback:
        instance.clients.push_back(std::make_unique<proto::LeaseClient>(
            ctx, id, effective, proto::LeaseMode::kCallback));
        break;
      case Algorithm::kLease:
        instance.clients.push_back(std::make_unique<proto::LeaseClient>(
            ctx, id, effective, proto::LeaseMode::kLease));
        break;
      case Algorithm::kBestEffortLease:
        instance.clients.push_back(std::make_unique<proto::LeaseClient>(
            ctx, id, effective, proto::LeaseMode::kBestEffort));
        break;
      case Algorithm::kVolumeLease:
      case Algorithm::kVolumeDelayedInval:
        instance.clients.push_back(
            std::make_unique<VolumeClient>(ctx, id, effective));
        break;
    }
  }
  VL_CHECK(instance.servers.size() == catalog.numServers());
  VL_CHECK(instance.clients.size() == catalog.numClients());
  return instance;
}

}  // namespace vlease::core
