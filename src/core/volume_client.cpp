#include "core/volume_client.h"

#include "util/check.h"

namespace vlease::core {

using proto::CacheEntry;
using proto::ReadCallback;
using proto::ReadResult;

bool VolumeClient::volumeValid(VolumeId vol, SimTime now) const {
  const std::size_t i = raw(vol);
  return i < volumes_.size() && volumes_[i].expire > leaseGuard(now);
}

bool VolumeClient::hasValidVolumeLease(VolumeId vol) const {
  return volumeValid(vol, ctx_.scheduler.now());
}

bool VolumeClient::hasValidObjectLease(ObjectId obj) const {
  const CacheEntry* e = cache_.find(obj);
  return e != nullptr && e->valid(leaseGuard(ctx_.scheduler.now()));
}

Epoch VolumeClient::knownEpoch(VolumeId vol) const {
  const std::size_t i = raw(vol);
  return i < volumes_.size() ? volumes_[i].epoch : 0;
}

proto::ClientNode::CacheView VolumeClient::cacheView(ObjectId obj,
                                                     SimTime now) const {
  // Mirrors read(): a local hit needs BOTH a valid object lease and a
  // valid lease on the enclosing volume.
  if (!volumeValid(ctx_.catalog.object(obj).volume, now)) return {};
  const CacheEntry* entry = cache_.find(obj);
  if (entry == nullptr || !entry->valid(leaseGuard(now))) return {};
  return {true, entry->version};
}

void VolumeClient::dropCache() {
  cache_.clear();  // also forgets the per-entry lastGrantCarriedData bits
  std::fill(volumes_.begin(), volumes_.end(), VolLease{});
  // Outstanding request markers refer to replies that may still arrive;
  // clearing them lets the restarted client issue fresh requests.
  std::fill(volReqOutstanding_.begin(), volReqOutstanding_.end(), kSimTimeMin);
  std::fill(objReqOutstanding_.begin(), objReqOutstanding_.end(), kSimTimeMin);
}

// ---------------------------------------------------------------------
// the "reads waiting" per-volume index
// ---------------------------------------------------------------------

void VolumeClient::pendingInsert(VolumeId vol, ObjectId obj) {
  const std::size_t v = raw(vol);
  const std::uint32_t o = raw(obj);
  ensureVolSlot(v);
  ensureObjSlot(o);
  if (pendingIn_[o] != 0) return;
  pendingIn_[o] = 1;
  pendingPrev_[o] = util::kNilIdx;
  pendingNext_[o] = pendingHead_[v];
  if (pendingHead_[v] != util::kNilIdx) pendingPrev_[pendingHead_[v]] = o;
  pendingHead_[v] = o;
}

void VolumeClient::pendingErase(VolumeId vol, ObjectId obj) {
  const std::size_t v = raw(vol);
  const std::uint32_t o = raw(obj);
  if (v >= pendingHead_.size() || o >= pendingIn_.size()) return;
  if (pendingIn_[o] == 0) return;
  pendingIn_[o] = 0;
  if (pendingPrev_[o] != util::kNilIdx) {
    pendingNext_[pendingPrev_[o]] = pendingNext_[o];
  }
  if (pendingNext_[o] != util::kNilIdx) {
    pendingPrev_[pendingNext_[o]] = pendingPrev_[o];
  }
  if (pendingHead_[v] == o) pendingHead_[v] = pendingNext_[o];
  pendingNext_[o] = util::kNilIdx;
  pendingPrev_[o] = util::kNilIdx;
}

// ---------------------------------------------------------------------
// read path (paper Fig. 4 "Client reads object o")
// ---------------------------------------------------------------------

void VolumeClient::read(ObjectId obj, ReadCallback cb) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const CacheEntry* entry = cache_.find(obj);
  if (volumeValid(vol, now) && entry != nullptr &&
      entry->valid(leaseGuard(now))) {
    cache_.touch(obj);
    ReadResult result;
    result.ok = true;
    result.usedNetwork = false;
    result.fetchedData = false;
    result.version = entry->version;
    cb(result);
    return;
  }
  // Track fetches for this op only: the flag rides on the cache entry
  // (if any) and is set again by the next grant.
  if (CacheEntry* e = cache_.findMutable(obj)) e->lastGrantCarriedData = false;
  pending_.add(obj, config_.readTimeout, std::move(cb));
  pendingInsert(vol, obj);
  pump(obj);
}

void VolumeClient::pump(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const CacheEntry* entry = cache_.find(obj);
  const bool volOk = volumeValid(vol, now);
  const bool objOk = entry != nullptr && entry->valid(leaseGuard(now));

  if (volOk && objOk) {
    ReadResult result;
    result.ok = true;
    result.usedNetwork = true;
    result.fetchedData = entry->lastGrantCarriedData;
    result.version = entry->version;
    pending_.resolveAll(obj, result);
    pendingErase(vol, obj);
    return;
  }
  if (!pending_.waitingOn(obj)) return;  // nothing to drive
  if (!volOk) ensureVolume(vol);
  if (!objOk) ensureObject(obj);
}

void VolumeClient::pumpVolume(VolumeId vol) {
  const std::size_t v = raw(vol);
  if (v >= pendingHead_.size() || pendingHead_[v] == util::kNilIdx) return;
  // pump() mutates the list; iterate a snapshot (newest-first, the same
  // order the old unordered_set produced).
  std::vector<ObjectId> objs = std::move(pumpScratch_);
  objs.clear();
  for (std::uint32_t o = pendingHead_[v]; o != util::kNilIdx;
       o = pendingNext_[o]) {
    objs.push_back(makeObjectId(o));
  }
  for (ObjectId obj : objs) pump(obj);
  objs.clear();
  pumpScratch_ = std::move(objs);
}

void VolumeClient::ensureVolume(VolumeId vol) {
  const SimTime now = ctx_.scheduler.now();
  const std::size_t v = raw(vol);
  ensureVolSlot(v);
  if (volReqOutstanding_[v] != kSimTimeMin &&
      now < addSat(volReqOutstanding_[v], config_.msgTimeout)) {
    return;  // a request is in flight
  }
  if (config_.piggybackVolumeLease) {
    // The object request carries the volume renewal; only send a bare
    // volume request if no object request is going out (pure volume
    // refresh, e.g. during reconnection retry).
    for (std::uint32_t o = pendingHead_[v]; o != util::kNilIdx;
         o = pendingNext_[o]) {
      const CacheEntry* e = cache_.find(makeObjectId(o));
      if (e == nullptr || !e->valid(leaseGuard(ctx_.scheduler.now()))) {
        return;
      }
    }
  }
  volReqOutstanding_[v] = now;
  ctx_.transport.send(net::Message{id(), ctx_.serverOf(vol),
                                   net::ReqVolLease{vol, knownEpoch(vol)}});
}

void VolumeClient::ensureObject(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  const std::size_t o = raw(obj);
  ensureObjSlot(o);
  if (objReqOutstanding_[o] != kSimTimeMin &&
      now < addSat(objReqOutstanding_[o], config_.msgTimeout)) {
    return;  // a request is in flight
  }
  objReqOutstanding_[o] = now;
  const CacheEntry* entry = cache_.find(obj);
  net::ReqObjLease req{};
  req.obj = obj;
  req.haveVersion =
      entry != nullptr && entry->hasData ? entry->version : kNoVersion;
  if (config_.piggybackVolumeLease) {
    req.wantVolume = true;
    req.haveEpoch = knownEpoch(ctx_.catalog.object(obj).volume);
  }
  ctx_.transport.send(net::Message{id(), ctx_.serverOf(obj), req});
}

// ---------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------

void VolumeClient::deliver(const net::Message& msg) {
  switch (msg.payload.index()) {
    case net::payloadIndex<net::VolLeaseGrant>():
      return handleVolGrant(msg);
    case net::payloadIndex<net::ObjLeaseGrant>():
      return handleObjGrant(msg);
    case net::payloadIndex<net::Invalidate>():
      return handleInvalidate(msg);
    case net::payloadIndex<net::MustRenewAll>():
      return handleMustRenewAll(msg);
    case net::payloadIndex<net::BatchInvalRenew>():
      return handleBatch(msg);
    default:
      VL_CHECK_MSG(false, "VolumeClient: unexpected message type");
  }
}

void VolumeClient::handleVolGrant(const net::Message& msg) {
  const auto& grant = std::get<net::VolLeaseGrant>(msg.payload);
  const std::size_t v = raw(grant.vol);
  ensureVolSlot(v);
  volumes_[v].expire = grant.expire;
  volumes_[v].epoch = grant.epoch;
  volReqOutstanding_[v] = kSimTimeMin;
  pumpVolume(grant.vol);
}

void VolumeClient::handleObjGrant(const net::Message& msg) {
  const auto& grant = std::get<net::ObjLeaseGrant>(msg.payload);
  CacheEntry& entry = cache_.entry(grant.obj);
  entry.version = grant.version;
  if (grant.carriesData) entry.hasData = true;
  entry.validUntil = grant.expire;
  entry.lastValidated = ctx_.scheduler.now();
  entry.lastGrantCarriedData = grant.carriesData;
  const std::size_t o = raw(grant.obj);
  ensureObjSlot(o);
  objReqOutstanding_[o] = kSimTimeMin;
  if (grant.grantsVolume) {
    const VolumeId vol = ctx_.catalog.object(grant.obj).volume;
    const std::size_t v = raw(vol);
    ensureVolSlot(v);
    volumes_[v].expire = grant.volExpire;
    volumes_[v].epoch = grant.epoch;
    volReqOutstanding_[v] = kSimTimeMin;
    pumpVolume(vol);
  } else {
    pump(grant.obj);
  }
}

void VolumeClient::handleInvalidate(const net::Message& msg) {
  const auto& inval = std::get<net::Invalidate>(msg.payload);
  if (!config_.faultInjectIgnoreInvalidations) {
    cache_.entry(inval.obj).invalidate();
  }
  ctx_.transport.send(
      net::Message{id(), msg.from, net::AckInvalidate{inval.obj}});
  // A read that was waiting on this object must now re-fetch it.
  pump(inval.obj);
}

void VolumeClient::handleMustRenewAll(const net::Message& msg) {
  const auto& mra = std::get<net::MustRenewAll>(msg.payload);
  net::RenewObjLeases renew{};
  renew.vol = mra.vol;
  // Paper §3.1.1 (prose): the client reports every cached object of the
  // volume with its version number so the server can renew the
  // unmodified ones and invalidate the rest. (Fig. 4's pseudocode says
  // "expired leases only", which contradicts the prose and the safety
  // argument; see DESIGN.md §6.)
  cache_.forEach([&](ObjectId obj, const CacheEntry& entry) {
    if (!entry.hasData) return;
    if (ctx_.catalog.object(obj).volume != mra.vol) return;
    renew.leases.push_back(net::RenewObjLeases::Entry{obj, entry.version});
  });
  ctx_.transport.send(net::Message{id(), msg.from, std::move(renew)});
}

void VolumeClient::handleBatch(const net::Message& msg) {
  const auto& batch = std::get<net::BatchInvalRenew>(msg.payload);
  if (!config_.faultInjectIgnoreInvalidations) {
    for (ObjectId obj : batch.invalidate) {
      cache_.entry(obj).invalidate();
    }
  }
  const SimTime now = ctx_.scheduler.now();
  for (const auto& renewal : batch.renew) {
    CacheEntry& entry = cache_.entry(renewal.obj);
    VL_DCHECK(entry.version == renewal.version);
    entry.validUntil = renewal.expire;
    entry.lastValidated = now;
  }
  ctx_.transport.send(net::Message{id(), msg.from, net::AckBatch{batch.vol}});
  // Reads blocked on invalidated objects must re-request them; the
  // volume grant (arriving next) pumps the rest.
  for (ObjectId obj : batch.invalidate) pump(obj);
  for (const auto& renewal : batch.renew) pump(renewal.obj);
}

}  // namespace vlease::core
