#include "core/volume_client.h"

#include "util/check.h"

namespace vlease::core {

using proto::CacheEntry;
using proto::ReadCallback;
using proto::ReadResult;

bool VolumeClient::volumeValid(VolumeId vol, SimTime now) const {
  auto it = volumes_.find(vol);
  return it != volumes_.end() && it->second.expire > leaseGuard(now);
}

bool VolumeClient::hasValidVolumeLease(VolumeId vol) const {
  return volumeValid(vol, ctx_.scheduler.now());
}

bool VolumeClient::hasValidObjectLease(ObjectId obj) const {
  const CacheEntry* e = cache_.find(obj);
  return e != nullptr && e->valid(leaseGuard(ctx_.scheduler.now()));
}

Epoch VolumeClient::knownEpoch(VolumeId vol) const {
  auto it = volumes_.find(vol);
  return it == volumes_.end() ? 0 : it->second.epoch;
}

proto::ClientNode::CacheView VolumeClient::cacheView(ObjectId obj,
                                                     SimTime now) const {
  // Mirrors read(): a local hit needs BOTH a valid object lease and a
  // valid lease on the enclosing volume.
  if (!volumeValid(ctx_.catalog.object(obj).volume, now)) return {};
  const CacheEntry* entry = cache_.find(obj);
  if (entry == nullptr || !entry->valid(leaseGuard(now))) return {};
  return {true, entry->version};
}

void VolumeClient::dropCache() {
  cache_.clear();
  volumes_.clear();
  // Outstanding request markers refer to replies that may still arrive;
  // clearing them lets the restarted client issue fresh requests.
  volReqOutstanding_.clear();
  objReqOutstanding_.clear();
  lastGrantCarriedData_.clear();
}

// ---------------------------------------------------------------------
// read path (paper Fig. 4 "Client reads object o")
// ---------------------------------------------------------------------

void VolumeClient::read(ObjectId obj, ReadCallback cb) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const CacheEntry* entry = cache_.find(obj);
  if (volumeValid(vol, now) && entry != nullptr &&
      entry->valid(leaseGuard(now))) {
    cache_.touch(obj);
    ReadResult result;
    result.ok = true;
    result.usedNetwork = false;
    result.fetchedData = false;
    result.version = entry->version;
    cb(result);
    return;
  }
  lastGrantCarriedData_.erase(obj);  // track fetches for this op only
  pending_.add(obj, config_.readTimeout, std::move(cb));
  pendingByVol_[vol].insert(obj);
  pump(obj);
}

void VolumeClient::pump(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const CacheEntry* entry = cache_.find(obj);
  const bool volOk = volumeValid(vol, now);
  const bool objOk = entry != nullptr && entry->valid(leaseGuard(now));

  if (volOk && objOk) {
    ReadResult result;
    result.ok = true;
    result.usedNetwork = true;
    result.fetchedData = lastGrantCarriedData_.count(obj) > 0 &&
                         lastGrantCarriedData_[obj];
    result.version = entry->version;
    pending_.resolveAll(obj, result);
    auto byVolIt = pendingByVol_.find(vol);
    if (byVolIt != pendingByVol_.end()) {
      byVolIt->second.erase(obj);
      if (byVolIt->second.empty()) pendingByVol_.erase(byVolIt);
    }
    return;
  }
  if (!pending_.waitingOn(obj)) return;  // nothing to drive
  if (!volOk) ensureVolume(vol);
  if (!objOk) ensureObject(obj);
}

void VolumeClient::pumpVolume(VolumeId vol) {
  auto it = pendingByVol_.find(vol);
  if (it == pendingByVol_.end()) return;
  // pump() mutates the set; iterate a snapshot.
  std::vector<ObjectId> objs(it->second.begin(), it->second.end());
  for (ObjectId obj : objs) pump(obj);
}

void VolumeClient::ensureVolume(VolumeId vol) {
  const SimTime now = ctx_.scheduler.now();
  auto outIt = volReqOutstanding_.find(vol);
  if (outIt != volReqOutstanding_.end() &&
      now < addSat(outIt->second, config_.msgTimeout)) {
    return;  // a request is in flight
  }
  if (config_.piggybackVolumeLease) {
    // The object request carries the volume renewal; only send a bare
    // volume request if no object request is going out (pure volume
    // refresh, e.g. during reconnection retry).
    const auto it = pendingByVol_.find(vol);
    if (it != pendingByVol_.end()) {
      for (ObjectId obj : it->second) {
        const CacheEntry* e = cache_.find(obj);
        if (e == nullptr || !e->valid(leaseGuard(ctx_.scheduler.now()))) {
          return;
        }
      }
    }
  }
  volReqOutstanding_[vol] = now;
  ctx_.transport.send(
      net::Message{id(), ctx_.catalog.volume(vol).server,
                   net::ReqVolLease{vol, knownEpoch(vol)}});
}

void VolumeClient::ensureObject(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  auto outIt = objReqOutstanding_.find(obj);
  if (outIt != objReqOutstanding_.end() &&
      now < addSat(outIt->second, config_.msgTimeout)) {
    return;  // a request is in flight
  }
  objReqOutstanding_[obj] = now;
  const CacheEntry* entry = cache_.find(obj);
  net::ReqObjLease req{};
  req.obj = obj;
  req.haveVersion =
      entry != nullptr && entry->hasData ? entry->version : kNoVersion;
  if (config_.piggybackVolumeLease) {
    req.wantVolume = true;
    req.haveEpoch = knownEpoch(ctx_.catalog.object(obj).volume);
  }
  ctx_.transport.send(
      net::Message{id(), ctx_.catalog.object(obj).server, req});
}

// ---------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------

void VolumeClient::deliver(const net::Message& msg) {
  if (std::holds_alternative<net::VolLeaseGrant>(msg.payload)) {
    handleVolGrant(msg);
  } else if (std::holds_alternative<net::ObjLeaseGrant>(msg.payload)) {
    handleObjGrant(msg);
  } else if (std::holds_alternative<net::Invalidate>(msg.payload)) {
    handleInvalidate(msg);
  } else if (std::holds_alternative<net::MustRenewAll>(msg.payload)) {
    handleMustRenewAll(msg);
  } else if (std::holds_alternative<net::BatchInvalRenew>(msg.payload)) {
    handleBatch(msg);
  } else {
    VL_CHECK_MSG(false, "VolumeClient: unexpected message type");
  }
}

void VolumeClient::handleVolGrant(const net::Message& msg) {
  const auto& grant = std::get<net::VolLeaseGrant>(msg.payload);
  VolLease& lease = volumes_[grant.vol];
  lease.expire = grant.expire;
  lease.epoch = grant.epoch;
  volReqOutstanding_.erase(grant.vol);
  pumpVolume(grant.vol);
}

void VolumeClient::handleObjGrant(const net::Message& msg) {
  const auto& grant = std::get<net::ObjLeaseGrant>(msg.payload);
  CacheEntry& entry = cache_.entry(grant.obj);
  entry.version = grant.version;
  if (grant.carriesData) entry.hasData = true;
  entry.validUntil = grant.expire;
  entry.lastValidated = ctx_.scheduler.now();
  lastGrantCarriedData_[grant.obj] = grant.carriesData;
  objReqOutstanding_.erase(grant.obj);
  if (grant.grantsVolume) {
    const VolumeId vol = ctx_.catalog.object(grant.obj).volume;
    VolLease& lease = volumes_[vol];
    lease.expire = grant.volExpire;
    lease.epoch = grant.epoch;
    volReqOutstanding_.erase(vol);
    pumpVolume(vol);
  } else {
    pump(grant.obj);
  }
}

void VolumeClient::handleInvalidate(const net::Message& msg) {
  const auto& inval = std::get<net::Invalidate>(msg.payload);
  if (!config_.faultInjectIgnoreInvalidations) {
    cache_.entry(inval.obj).invalidate();
  }
  ctx_.transport.send(
      net::Message{id(), msg.from, net::AckInvalidate{inval.obj}});
  // A read that was waiting on this object must now re-fetch it.
  pump(inval.obj);
}

void VolumeClient::handleMustRenewAll(const net::Message& msg) {
  const auto& mra = std::get<net::MustRenewAll>(msg.payload);
  net::RenewObjLeases renew{};
  renew.vol = mra.vol;
  // Paper §3.1.1 (prose): the client reports every cached object of the
  // volume with its version number so the server can renew the
  // unmodified ones and invalidate the rest. (Fig. 4's pseudocode says
  // "expired leases only", which contradicts the prose and the safety
  // argument; see DESIGN.md §6.)
  cache_.forEach([&](ObjectId obj, const CacheEntry& entry) {
    if (!entry.hasData) return;
    if (ctx_.catalog.object(obj).volume != mra.vol) return;
    renew.leases.push_back(net::RenewObjLeases::Entry{obj, entry.version});
  });
  ctx_.transport.send(net::Message{id(), msg.from, std::move(renew)});
}

void VolumeClient::handleBatch(const net::Message& msg) {
  const auto& batch = std::get<net::BatchInvalRenew>(msg.payload);
  if (!config_.faultInjectIgnoreInvalidations) {
    for (ObjectId obj : batch.invalidate) {
      cache_.entry(obj).invalidate();
    }
  }
  const SimTime now = ctx_.scheduler.now();
  for (const auto& renewal : batch.renew) {
    CacheEntry& entry = cache_.entry(renewal.obj);
    VL_DCHECK(entry.version == renewal.version);
    entry.validUntil = renewal.expire;
    entry.lastValidated = now;
  }
  ctx_.transport.send(net::Message{id(), msg.from, net::AckBatch{batch.vol}});
  // Reads blocked on invalidated objects must re-request them; the
  // volume grant (arriving next) pumps the rest.
  for (ObjectId obj : batch.invalidate) pump(obj);
  for (const auto& renewal : batch.renew) pump(renewal.obj);
}

}  // namespace vlease::core
