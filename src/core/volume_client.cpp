#include "core/volume_client.h"

#include "util/check.h"

namespace vlease::core {

using proto::ReadCallback;
using proto::ReadResult;

bool VolumeClient::volumeValid(VolumeId vol, SimTime now) const {
  const std::size_t i = raw(vol);
  return i < volumes_.size() && volumes_[i].expire > leaseGuard(now);
}

bool VolumeClient::hasValidVolumeLease(VolumeId vol) const {
  return volumeValid(vol, ctx_.scheduler.now());
}

bool VolumeClient::hasValidObjectLease(ObjectId obj) const {
  const LeaseCache::Entry* e = cache_.find(obj);
  return e != nullptr && e->valid(leaseGuard(ctx_.scheduler.now()));
}

Epoch VolumeClient::knownEpoch(VolumeId vol) const {
  const std::size_t i = raw(vol);
  return i < volumes_.size() ? volumes_[i].epoch : 0;
}

proto::ClientNode::CacheView VolumeClient::cacheView(ObjectId obj,
                                                     SimTime now) const {
  // Mirrors read(): a local hit needs BOTH a valid object lease and a
  // valid lease on the enclosing volume.
  if (!volumeValid(ctx_.catalog.object(obj).volume, now)) return {};
  const LeaseCache::Entry* entry = cache_.find(obj);
  if (entry == nullptr || !entry->valid(leaseGuard(now))) return {};
  return {true, entry->version()};
}

void VolumeClient::dropCache() {
  cache_.clear();  // also forgets the per-entry lastGrantCarriedData bits
  std::fill(volumes_.begin(), volumes_.end(), VolLease{});
  // Outstanding request markers refer to replies that may still arrive;
  // clearing them lets the restarted client issue fresh requests.
  std::fill(volReqOutstanding_.begin(), volReqOutstanding_.end(), kSimTimeMin);
  objReq_.clear();
}

void VolumeClient::retire() {
  // Graceful departure (distinct from a crash, which is abrupt and
  // leaves memory in place for the reboot): forget all lease state AND
  // return the storage. The server is not told; its holder records
  // simply expire and the sweep reclaims them. waiting_ is kept -- reads
  // still in flight resolve or time out through the normal machinery.
  dropCache();
  cache_.releaseMemory();
  std::vector<VolLease>().swap(volumes_);
  std::vector<SimTime>().swap(volReqOutstanding_);
  std::vector<ObjReq>().swap(objReq_);
}

// ---------------------------------------------------------------------
// the "reads waiting" per-volume index
// ---------------------------------------------------------------------

void VolumeClient::pendingInsert(VolumeId vol, ObjectId obj) {
  VL_DCHECK(raw(vol) <= 0xffffffffull && raw(obj) <= 0xffffffffull);
  const std::uint32_t o = static_cast<std::uint32_t>(raw(obj));
  for (const Waiting& w : waiting_) {
    if (w.obj == o) return;
  }
  waiting_.push_back(Waiting{static_cast<std::uint32_t>(raw(vol)), o});
}

void VolumeClient::pendingErase(VolumeId vol, ObjectId obj) {
  (void)vol;
  const std::uint32_t o = static_cast<std::uint32_t>(raw(obj));
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].obj == o) {
      waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

// ---------------------------------------------------------------------
// read path (paper Fig. 4 "Client reads object o")
// ---------------------------------------------------------------------

void VolumeClient::read(ObjectId obj, ReadCallback cb) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const LeaseCache::Entry* entry = cache_.find(obj);
  if (entry != nullptr && entry->valid(leaseGuard(now)) &&
      volumeValid(vol, now)) {
    cache_.touch(obj);
    ReadResult result;
    result.ok = true;
    result.usedNetwork = false;
    result.fetchedData = false;
    result.version = entry->version();
    cb(result);
    return;
  }
  // Track fetches for this op only: the flag rides on the cache entry
  // (if any) and is set again by the next grant.
  if (LeaseCache::Entry* e = cache_.findMutable(obj)) {
    e->lastGrantCarriedData = false;
  }
  pending_.add(obj, config_->readTimeout, std::move(cb));
  pendingInsert(vol, obj);
  pump(obj);
}

void VolumeClient::pump(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  const VolumeId vol = ctx_.catalog.object(obj).volume;
  const LeaseCache::Entry* entry = cache_.find(obj);
  const bool volOk = volumeValid(vol, now);
  const bool objOk = entry != nullptr && entry->valid(leaseGuard(now));

  if (volOk && objOk) {
    ReadResult result;
    result.ok = true;
    result.usedNetwork = true;
    result.fetchedData = entry->lastGrantCarriedData;
    result.version = entry->version();
    pending_.resolveAll(obj, result);
    pendingErase(vol, obj);
    return;
  }
  if (!pending_.waitingOn(obj)) return;  // nothing to drive
  if (!volOk) ensureVolume(vol);
  if (!objOk) ensureObject(obj);
}

void VolumeClient::pumpVolume(VolumeId vol) {
  const std::uint32_t v = static_cast<std::uint32_t>(raw(vol));
  // pump() mutates the index; iterate a snapshot (newest-first, the
  // same order the old unordered_set produced).
  std::vector<ObjectId> objs = std::move(pumpScratch_);
  objs.clear();
  for (std::size_t i = waiting_.size(); i-- > 0;) {
    if (waiting_[i].vol == v) objs.push_back(makeObjectId(waiting_[i].obj));
  }
  for (ObjectId obj : objs) pump(obj);
  objs.clear();
  pumpScratch_ = std::move(objs);
}

void VolumeClient::ensureVolume(VolumeId vol) {
  const SimTime now = ctx_.scheduler.now();
  const std::size_t v = raw(vol);
  ensureVolSlot(v);
  if (volReqOutstanding_[v] != kSimTimeMin &&
      now < addSat(volReqOutstanding_[v], config_->msgTimeout)) {
    return;  // a request is in flight
  }
  if (config_->piggybackVolumeLease) {
    // The object request carries the volume renewal; only send a bare
    // volume request if no object request is going out (pure volume
    // refresh, e.g. during reconnection retry).
    for (std::size_t i = waiting_.size(); i-- > 0;) {
      if (waiting_[i].vol != v) continue;
      const LeaseCache::Entry* e = cache_.find(makeObjectId(waiting_[i].obj));
      if (e == nullptr || !e->valid(leaseGuard(ctx_.scheduler.now()))) {
        return;
      }
    }
  }
  volReqOutstanding_[v] = now;
  ctx_.transport.send(net::Message{id(), ctx_.serverOf(vol),
                                   net::ReqVolLease{vol, knownEpoch(vol)}});
}

void VolumeClient::ensureObject(ObjectId obj) {
  const SimTime now = ctx_.scheduler.now();
  VL_DCHECK(raw(obj) <= 0xffffffffull);
  const std::uint32_t o = static_cast<std::uint32_t>(raw(obj));
  if (ObjReq* req = findObjReq(o)) {
    if (now < addSat(req->sent, config_->msgTimeout)) {
      return;  // a request is in flight
    }
    req->sent = now;
  } else {
    objReq_.push_back(ObjReq{o, now});
  }
  const LeaseCache::Entry* entry = cache_.find(obj);
  net::ReqObjLease req{};
  req.obj = obj;
  req.haveVersion =
      entry != nullptr && entry->hasData ? entry->version() : kNoVersion;
  if (config_->piggybackVolumeLease) {
    req.wantVolume = true;
    req.haveEpoch = knownEpoch(ctx_.catalog.object(obj).volume);
  }
  ctx_.transport.send(net::Message{id(), ctx_.serverOf(obj), req});
}

// ---------------------------------------------------------------------
// message handling
// ---------------------------------------------------------------------

void VolumeClient::deliver(const net::Message& msg) {
  switch (msg.payload.index()) {
    case net::payloadIndex<net::VolLeaseGrant>():
      return handleVolGrant(msg);
    case net::payloadIndex<net::ObjLeaseGrant>():
      return handleObjGrant(msg);
    case net::payloadIndex<net::Invalidate>():
      return handleInvalidate(msg);
    case net::payloadIndex<net::MustRenewAll>():
      return handleMustRenewAll(msg);
    case net::payloadIndex<net::BatchInvalRenew>():
      return handleBatch(msg);
    default:
      VL_CHECK_MSG(false, "VolumeClient: unexpected message type");
  }
}

void VolumeClient::handleVolGrant(const net::Message& msg) {
  const auto& grant = std::get<net::VolLeaseGrant>(msg.payload);
  const std::size_t v = raw(grant.vol);
  // Same unmatched-reply rule as handleObjGrant: no outstanding request
  // marker means dropCache()/retire() disowned this exchange.
  if (v >= volReqOutstanding_.size() ||
      volReqOutstanding_[v] == kSimTimeMin) {
    return;
  }
  volumes_[v].expire = grant.expire;
  volumes_[v].epoch = grant.epoch;
  volReqOutstanding_[v] = kSimTimeMin;
  pumpVolume(grant.vol);
}

void VolumeClient::handleObjGrant(const net::Message& msg) {
  const auto& grant = std::get<net::ObjLeaseGrant>(msg.payload);
  // A grant installs only while its request is still outstanding. The
  // network is FIFO per node pair, so in steady state every grant finds
  // its marker; the marker is gone exactly when dropCache()/retire()
  // discarded the request context, and such a grant must be dropped --
  // installing it would hand a departed-and-returned client a lease the
  // server believes it already dealt with (see eraseObjReq).
  const bool vtrMatched = eraseObjReq(static_cast<std::uint32_t>(raw(grant.obj)));
  if (!vtrMatched) return;
  LeaseCache::Entry& entry = cache_.entry(grant.obj);
  entry.setVersion(grant.version);
  if (grant.carriesData) entry.hasData = true;
  entry.validUntil = grant.expire;
  entry.lastGrantCarriedData = grant.carriesData;
  if (grant.grantsVolume) {
    const VolumeId vol = ctx_.catalog.object(grant.obj).volume;
    const std::size_t v = raw(vol);
    ensureVolSlot(v);
    volumes_[v].expire = grant.volExpire;
    volumes_[v].epoch = grant.epoch;
    volReqOutstanding_[v] = kSimTimeMin;
    pumpVolume(vol);
  } else {
    // Epoch learning without a volume grant: adopt the grant's epoch,
    // but only from the "never held one" state. A client whose crash
    // or retirement erased its epoch memory repopulates its cache
    // through exactly this path; labeling the entries with the epoch
    // they were granted under preserves the invariant the servers rely
    // on -- haveEpoch == 0 implies nothing cached for the volume -- so
    // the epoch-0 reconnection skip stays sound. A known nonzero epoch
    // is never overwritten here: advancing it must go through the
    // volume-lease path, where a stale epoch triggers MUST_RENEW_ALL
    // and the OTHER cached objects of the volume get reconciled too.
    const VolumeId vol = ctx_.catalog.object(grant.obj).volume;
    const std::size_t v = raw(vol);
    ensureVolSlot(v);
    if (volumes_[v].epoch == 0) volumes_[v].epoch = grant.epoch;
    pump(grant.obj);
  }
}

void VolumeClient::handleInvalidate(const net::Message& msg) {
  const auto& inval = std::get<net::Invalidate>(msg.payload);
  if (!config_->faultInjectIgnoreInvalidations) {
    cache_.entry(inval.obj).invalidate();
  }
  ctx_.transport.send(
      net::Message{id(), msg.from, net::AckInvalidate{inval.obj}});
  // A read that was waiting on this object must now re-fetch it.
  pump(inval.obj);
}

void VolumeClient::handleMustRenewAll(const net::Message& msg) {
  const auto& mra = std::get<net::MustRenewAll>(msg.payload);
  net::RenewObjLeases renew{};
  renew.vol = mra.vol;
  // Paper §3.1.1 (prose): the client reports every cached object of the
  // volume with its version number so the server can renew the
  // unmodified ones and invalidate the rest. (Fig. 4's pseudocode says
  // "expired leases only", which contradicts the prose and the safety
  // argument; see DESIGN.md §6.)
  cache_.forEach([&](ObjectId obj, const LeaseCache::Entry& entry) {
    if (!entry.hasData) return;
    if (ctx_.catalog.object(obj).volume != mra.vol) return;
    renew.leases.push_back(
        net::RenewObjLeases::Entry{obj, entry.version()});
  });
  ctx_.transport.send(net::Message{id(), msg.from, std::move(renew)});
}

void VolumeClient::handleBatch(const net::Message& msg) {
  const auto& batch = std::get<net::BatchInvalRenew>(msg.payload);
  if (!config_->faultInjectIgnoreInvalidations) {
    for (ObjectId obj : batch.invalidate) {
      cache_.entry(obj).invalidate();
    }
  }
  for (const auto& renewal : batch.renew) {
    LeaseCache::Entry& entry = cache_.entry(renewal.obj);
    VL_DCHECK(entry.version() == renewal.version);
    entry.validUntil = renewal.expire;
  }
  ctx_.transport.send(net::Message{id(), msg.from, net::AckBatch{batch.vol}});
  // Reads blocked on invalidated objects must re-request them; the
  // volume grant (arriving next) pumps the rest.
  for (ObjectId obj : batch.invalidate) pump(obj);
  for (const auto& renewal : batch.renew) pump(renewal.obj);
}

}  // namespace vlease::core
