// Volume-lease client (paper §3, Fig. 4).
//
// A read is served from cache only when BOTH the object lease and the
// enclosing volume lease are valid; otherwise the client renews whatever
// is missing (two independent requests, as in the paper's cost model --
// or one combined request under the piggyback ablation) and completes
// the read when both grants are in.
//
// The client also implements its half of the reconnection exchange:
// MUST_RENEW_ALL -> send every cached object of the volume with its
// version -> apply the server's invalidate/renew batch -> ack.
//
// State layout (see DESIGN.md "Dense protocol state" and "Workload
// engine"): the cache is a dense-by-object-id LeaseCache; per-volume
// lease state lives in lazily grown vectors indexed by raw volume id;
// the outstanding-request dedup table and the "reads waiting" index are
// small flat vectors sized by what is actually in flight (a handful of
// entries), not by the catalog. A freshly constructed client allocates
// nothing -- at a million clients, cold clients are (nearly) free, and
// retire() returns a departed client's storage.
#pragma once

#include <vector>

#include "core/lease_cache.h"
#include "proto/client_cache.h"
#include "proto/protocol.h"

namespace vlease::core {

class VolumeClient final : public proto::ClientNode {
 public:
  /// `config` is captured by reference and must outlive the client (the
  /// factory parks the effective config on ProtocolInstance; direct
  /// constructions keep it in an enclosing scope).
  VolumeClient(proto::ProtocolContext& ctx, NodeId id,
               const proto::ProtocolConfig& config)
      : ClientNode(ctx, id),
        config_(&config),
        cache_(config.clientCacheCapacity, ctx.catalog.numObjects()),
        pending_(ctx.scheduler) {}

  void read(ObjectId obj, proto::ReadCallback cb) override;
  void dropCache() override;
  void retire() override;
  void deliver(const net::Message& msg) override;
  CacheView cacheView(ObjectId obj, SimTime now) const override;

  // ---- test hooks ----
  bool hasValidVolumeLease(VolumeId vol) const;
  bool hasValidObjectLease(ObjectId obj) const;
  Epoch knownEpoch(VolumeId vol) const;
  const LeaseCache& cache() const { return cache_; }

 private:
  struct VolLease {
    SimTime expire = kSimTimeMin;
    Epoch epoch = 0;  // 0 = never held one (server skips epoch check)
  };
  /// One outstanding object-lease renewal (dedup: at most one per
  /// object; a request older than msgTimeout is considered lost and may
  /// be reissued).
  struct ObjReq {
    std::uint32_t obj;
    SimTime sent;
  };
  /// One object with reads waiting, tagged with its volume so a volume
  /// grant can pump it. Append-only order; pumps iterate newest-first
  /// (the order the old head-inserted intrusive list produced, which
  /// the determinism goldens pin).
  struct Waiting {
    std::uint32_t vol;
    std::uint32_t obj;
  };

  /// Client-conservative expiry clock: lease-validity comparisons happen
  /// against this client's own (possibly skewed) reading of `globalNow`
  /// advanced by epsilon, so a lease is treated as dead epsilon before
  /// its nominal expiry on the local clock. See ProtocolConfig::
  /// clockEpsilon for the safety argument.
  SimTime leaseGuard(SimTime globalNow) const {
    return addSat(localTime(globalNow), config_->clockEpsilon);
  }

  bool volumeValid(VolumeId vol, SimTime now) const;

  // Catalogs can in principle grow after the protocol is built (the
  // harness tests do); the dense per-volume tables grow lazily to match
  // -- and a cold client that never reads allocates nothing at all.
  void ensureVolSlot(std::size_t i) {
    if (i < volumes_.size()) return;
    volumes_.resize(i + 1);
    volReqOutstanding_.resize(i + 1, kSimTimeMin);
  }

  ObjReq* findObjReq(std::uint32_t o) {
    for (ObjReq& r : objReq_) {
      if (r.obj == o) return &r;
    }
    return nullptr;
  }
  /// False if no request for `o` was outstanding -- the caller must then
  /// DROP the grant it is handling: an unmatched grant is a reply whose
  /// request context was discarded by dropCache()/retire(), and
  /// installing it would resurrect lease state the client deliberately
  /// forgot (a departed client's in-flight grant landing after retire()
  /// is exactly the race that turns into an uninvalidatable stale read).
  bool eraseObjReq(std::uint32_t o) {
    for (ObjReq& r : objReq_) {
      if (r.obj == o) {
        r = objReq_.back();  // lookup table: order is not observable
        objReq_.pop_back();
        return true;
      }
    }
    return false;
  }

  /// "Reads waiting" index; an object waits at most once (in its own
  /// volume's set). Erase preserves relative order: pumps walk the
  /// vector backwards and their newest-first order is observable.
  void pendingInsert(VolumeId vol, ObjectId obj);
  void pendingErase(VolumeId vol, ObjectId obj);

  /// Re-evaluate the reads waiting on `obj`: resolve the ones whose two
  /// leases are now valid, (re)issue requests for whatever is missing.
  void pump(ObjectId obj);
  void pumpVolume(VolumeId vol);
  void ensureVolume(VolumeId vol);
  void ensureObject(ObjectId obj);

  void handleVolGrant(const net::Message& msg);
  void handleObjGrant(const net::Message& msg);
  void handleInvalidate(const net::Message& msg);
  void handleMustRenewAll(const net::Message& msg);
  void handleBatch(const net::Message& msg);

  const proto::ProtocolConfig* config_;
  LeaseCache cache_;
  proto::PendingReads pending_;
  std::vector<VolLease> volumes_;  // by raw(VolumeId), lazily grown

  /// Request dedup: at most one outstanding renewal per volume (dense
  /// by raw volume id; kSimTimeMin = none outstanding) / per object
  /// (flat ObjReq vector: only what is actually in flight).
  std::vector<SimTime> volReqOutstanding_;  // by raw(VolumeId)
  std::vector<ObjReq> objReq_;

  std::vector<Waiting> waiting_;       // oldest first; iterated backwards
  std::vector<ObjectId> pumpScratch_;  // recycled pumpVolume snapshot
};

}  // namespace vlease::core
