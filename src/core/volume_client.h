// Volume-lease client (paper §3, Fig. 4).
//
// A read is served from cache only when BOTH the object lease and the
// enclosing volume lease are valid; otherwise the client renews whatever
// is missing (two independent requests, as in the paper's cost model --
// or one combined request under the piggyback ablation) and completes
// the read when both grants are in.
//
// The client also implements its half of the reconnection exchange:
// MUST_RENEW_ALL -> send every cached object of the volume with its
// version -> apply the server's invalidate/renew batch -> ack.
//
// State layout (see DESIGN.md "Dense protocol state"): per-volume lease
// and request-dedup state live in vectors indexed by raw volume id,
// per-object dedup state by raw object id, and the "objects with reads
// waiting, by volume" index is an intrusive LIFO list threaded through
// per-object link arrays -- the same newest-first order the old
// unordered_set produced in the regimes the determinism goldens pin.
#pragma once

#include <vector>

#include "proto/client_cache.h"
#include "proto/protocol.h"
#include "util/lifo_index_map.h"

namespace vlease::core {

class VolumeClient final : public proto::ClientNode {
 public:
  VolumeClient(proto::ProtocolContext& ctx, NodeId id,
               const proto::ProtocolConfig& config)
      : ClientNode(ctx, id),
        config_(config),
        cache_(config.clientCacheCapacity),
        pending_(ctx.scheduler),
        volumes_(ctx.catalog.numVolumes()),
        volReqOutstanding_(ctx.catalog.numVolumes(), kSimTimeMin),
        objReqOutstanding_(ctx.catalog.numObjects(), kSimTimeMin),
        pendingHead_(ctx.catalog.numVolumes(), util::kNilIdx),
        pendingNext_(ctx.catalog.numObjects(), util::kNilIdx),
        pendingPrev_(ctx.catalog.numObjects(), util::kNilIdx),
        pendingIn_(ctx.catalog.numObjects(), 0) {}

  void read(ObjectId obj, proto::ReadCallback cb) override;
  void dropCache() override;
  void deliver(const net::Message& msg) override;
  CacheView cacheView(ObjectId obj, SimTime now) const override;

  // ---- test hooks ----
  bool hasValidVolumeLease(VolumeId vol) const;
  bool hasValidObjectLease(ObjectId obj) const;
  Epoch knownEpoch(VolumeId vol) const;
  const proto::ClientCache& cache() const { return cache_; }

 private:
  struct VolLease {
    SimTime expire = kSimTimeMin;
    Epoch epoch = 0;  // 0 = never held one (server skips epoch check)
  };

  /// Client-conservative expiry clock: lease-validity comparisons happen
  /// against this client's own (possibly skewed) reading of `globalNow`
  /// advanced by epsilon, so a lease is treated as dead epsilon before
  /// its nominal expiry on the local clock. See ProtocolConfig::
  /// clockEpsilon for the safety argument.
  SimTime leaseGuard(SimTime globalNow) const {
    return addSat(localTime(globalNow), config_.clockEpsilon);
  }

  bool volumeValid(VolumeId vol, SimTime now) const;

  // Catalogs can in principle grow after the protocol is built (the
  // harness tests do); the dense tables grow lazily to match.
  void ensureVolSlot(std::size_t i) {
    if (i < volumes_.size()) return;
    volumes_.resize(i + 1);
    volReqOutstanding_.resize(i + 1, kSimTimeMin);
    pendingHead_.resize(i + 1, util::kNilIdx);
  }
  void ensureObjSlot(std::size_t i) {
    if (i < objReqOutstanding_.size()) return;
    objReqOutstanding_.resize(i + 1, kSimTimeMin);
    pendingNext_.resize(i + 1, util::kNilIdx);
    pendingPrev_.resize(i + 1, util::kNilIdx);
    pendingIn_.resize(i + 1, 0);
  }

  /// LIFO "reads waiting" index: pendingHead_[vol] heads a doubly
  /// linked list whose links are stored per object (an object waits in
  /// at most one volume's list -- its own volume's).
  void pendingInsert(VolumeId vol, ObjectId obj);
  void pendingErase(VolumeId vol, ObjectId obj);

  /// Re-evaluate the reads waiting on `obj`: resolve the ones whose two
  /// leases are now valid, (re)issue requests for whatever is missing.
  void pump(ObjectId obj);
  void pumpVolume(VolumeId vol);
  void ensureVolume(VolumeId vol);
  void ensureObject(ObjectId obj);

  void handleVolGrant(const net::Message& msg);
  void handleObjGrant(const net::Message& msg);
  void handleInvalidate(const net::Message& msg);
  void handleMustRenewAll(const net::Message& msg);
  void handleBatch(const net::Message& msg);

  const proto::ProtocolConfig config_;
  proto::ClientCache cache_;
  proto::PendingReads pending_;
  std::vector<VolLease> volumes_;  // by raw(VolumeId)

  /// Request dedup: at most one outstanding renewal per volume / object.
  /// Slots hold the send time (kSimTimeMin = none outstanding); a
  /// request older than msgTimeout is considered lost and may be
  /// reissued (otherwise a dropped request would permanently suppress
  /// renewals for that volume/object).
  std::vector<SimTime> volReqOutstanding_;  // by raw(VolumeId)
  std::vector<SimTime> objReqOutstanding_;  // by raw(ObjectId)

  /// Objects with reads waiting, indexed by volume (so a volume grant
  /// can pump them); see pendingInsert/pendingErase.
  std::vector<std::uint32_t> pendingHead_;  // by raw(VolumeId)
  std::vector<std::uint32_t> pendingNext_;  // by raw(ObjectId)
  std::vector<std::uint32_t> pendingPrev_;  // by raw(ObjectId)
  std::vector<std::uint8_t> pendingIn_;     // by raw(ObjectId)

  std::vector<ObjectId> pumpScratch_;  // recycled pumpVolume snapshot
};

}  // namespace vlease::core
