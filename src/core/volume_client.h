// Volume-lease client (paper §3, Fig. 4).
//
// A read is served from cache only when BOTH the object lease and the
// enclosing volume lease are valid; otherwise the client renews whatever
// is missing (two independent requests, as in the paper's cost model --
// or one combined request under the piggyback ablation) and completes
// the read when both grants are in.
//
// The client also implements its half of the reconnection exchange:
// MUST_RENEW_ALL -> send every cached object of the volume with its
// version -> apply the server's invalidate/renew batch -> ack.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "proto/client_cache.h"
#include "proto/protocol.h"

namespace vlease::core {

class VolumeClient final : public proto::ClientNode {
 public:
  VolumeClient(proto::ProtocolContext& ctx, NodeId id,
               const proto::ProtocolConfig& config)
      : ClientNode(ctx, id),
        config_(config),
        cache_(config.clientCacheCapacity),
        pending_(ctx.scheduler) {}

  void read(ObjectId obj, proto::ReadCallback cb) override;
  void dropCache() override;
  void deliver(const net::Message& msg) override;
  CacheView cacheView(ObjectId obj, SimTime now) const override;

  // ---- test hooks ----
  bool hasValidVolumeLease(VolumeId vol) const;
  bool hasValidObjectLease(ObjectId obj) const;
  Epoch knownEpoch(VolumeId vol) const;
  const proto::ClientCache& cache() const { return cache_; }

 private:
  struct VolLease {
    SimTime expire = kSimTimeMin;
    Epoch epoch = 0;  // 0 = never held one (server skips epoch check)
  };

  /// Client-conservative expiry clock: lease-validity comparisons happen
  /// against this client's own (possibly skewed) reading of `globalNow`
  /// advanced by epsilon, so a lease is treated as dead epsilon before
  /// its nominal expiry on the local clock. See ProtocolConfig::
  /// clockEpsilon for the safety argument.
  SimTime leaseGuard(SimTime globalNow) const {
    return addSat(localTime(globalNow), config_.clockEpsilon);
  }

  bool volumeValid(VolumeId vol, SimTime now) const;

  /// Re-evaluate the reads waiting on `obj`: resolve the ones whose two
  /// leases are now valid, (re)issue requests for whatever is missing.
  void pump(ObjectId obj);
  void pumpVolume(VolumeId vol);
  void ensureVolume(VolumeId vol);
  void ensureObject(ObjectId obj);

  void handleVolGrant(const net::Message& msg);
  void handleObjGrant(const net::Message& msg);
  void handleInvalidate(const net::Message& msg);
  void handleMustRenewAll(const net::Message& msg);
  void handleBatch(const net::Message& msg);

  const proto::ProtocolConfig config_;
  proto::ClientCache cache_;
  proto::PendingReads pending_;
  std::unordered_map<VolumeId, VolLease> volumes_;

  /// Request dedup: at most one outstanding renewal per volume / object.
  /// Entries hold the send time; a request older than msgTimeout is
  /// considered lost and may be reissued (otherwise a dropped request
  /// would permanently suppress renewals for that volume/object).
  std::unordered_map<VolumeId, SimTime> volReqOutstanding_;
  std::unordered_map<ObjectId, SimTime> objReqOutstanding_;

  /// Objects with reads waiting, indexed by volume (so a volume grant
  /// can pump them).
  std::unordered_map<VolumeId, std::unordered_set<ObjectId>> pendingByVol_;

  /// Whether the last object grant carried data (read-result detail).
  std::unordered_map<ObjectId, bool> lastGrantCarriedData_;
};

}  // namespace vlease::core
