#include "core/volume_server.h"

#include <algorithm>

#include "util/check.h"
#include "util/log.h"

namespace vlease::core {

using proto::WriteCallback;
using proto::WriteResult;

VolumeServer::VolumeServer(proto::ProtocolContext& ctx, NodeId id,
                           const proto::ProtocolConfig& config,
                           InvalidationMode mode)
    : ServerNode(ctx, id),
      config_(config),
      mode_(mode),
      numServers_(ctx.catalog.numServers()),
      numClients_(ctx.catalog.numClients()),
      volumes_(ctx.catalog.volumesOnServer(id)),
      objects_(ctx.catalog.objectsOnServer(id)),
      volOwnedNative_(volumes_.size(), 1),
      objOwnedNative_(objects_.size(), 1) {}

// ---------------------------------------------------------------------
// small helpers
// ---------------------------------------------------------------------

const VolumeServer::VolState* VolumeServer::volFind(VolumeId volId) const {
  const trace::VolumeInfo& info = ctx_.catalog.volume(volId);
  if (info.server == id()) return &volumes_[info.localIndex];
  const std::uint32_t* slot = adoptedVolSlot_.find(raw(volId));
  return slot == nullptr ? nullptr : &adoptedVols_[*slot];
}

const VolumeServer::ObjState* VolumeServer::objFind(ObjectId obj) const {
  const trace::ObjectInfo& info = ctx_.catalog.object(obj);
  if (info.server == id()) return &objects_[info.localIndex];
  const std::uint32_t* slot = adoptedObjSlot_.find(raw(obj));
  return slot == nullptr ? nullptr : &adoptedObjs_[*slot];
}

Version VolumeServer::currentVersion(ObjectId obj) const {
  const ObjState* st = objFind(obj);
  return st == nullptr ? 1 : st->version;
}

bool VolumeServer::isUnreachable(NodeId client, VolumeId volId) const {
  const VolState* v = volFind(volId);
  return v != nullptr && isUnreach(*v, clientIdx(client));
}

bool VolumeServer::isInactive(NodeId client, VolumeId volId) const {
  const VolState* v = volFind(volId);
  return v != nullptr && v->inactive.contains(clientIdx(client));
}

std::size_t VolumeServer::pendingMessageCount(NodeId client,
                                              VolumeId volId) const {
  const VolState* v = volFind(volId);
  if (v == nullptr) return 0;
  const InactiveClient* in = v->inactive.find(clientIdx(client));
  return in == nullptr ? 0 : in->pending.size();
}

Epoch VolumeServer::volumeEpoch(VolumeId volId) const {
  const VolState* v = volFind(volId);
  return v == nullptr ? 1 : v->epoch;
}

std::size_t VolumeServer::validObjectHolders(ObjectId obj) const {
  const ObjState* st = objFind(obj);
  if (st == nullptr) return 0;
  const SimTime now = ctx_.scheduler.now();
  std::size_t n = 0;
  st->holders.forEach([&](std::uint32_t, const LeaseRecord& r) {
    if (r.expire > now) ++n;
  });
  return n;
}

std::size_t VolumeServer::validVolumeHolders(VolumeId volId) const {
  const VolState* v = volFind(volId);
  if (v == nullptr) return 0;
  const SimTime now = ctx_.scheduler.now();
  std::size_t n = 0;
  v->holders.forEach([&](std::uint32_t, const LeaseRecord& r) {
    if (r.expire > now) ++n;
  });
  return n;
}

void VolumeServer::removeObjHolder(ObjState& st, std::uint32_t ci) {
  LeaseRecord* rec = st.holders.find(ci);
  if (rec == nullptr) return;
  stats::accrueRecord(ctx_.metrics, id(), rec->lastAccounted, rec->expire,
                      ctx_.scheduler.now());
  st.holders.erase(ci);
}

void VolumeServer::removeVolHolder(VolState& st, std::uint32_t ci) {
  LeaseRecord* rec = st.holders.find(ci);
  if (rec == nullptr) return;
  stats::accrueRecord(ctx_.metrics, id(), rec->lastAccounted, rec->expire,
                      ctx_.scheduler.now());
  st.holders.erase(ci);
}

void VolumeServer::releaseInactive(VolState& st, std::uint32_t ci) {
  InactiveClient* in = st.inactive.find(ci);
  if (in == nullptr) return;
  in->pending.clear();
  if (in->pending.capacity() > 0) {
    pendingMsgPool_.push_back(std::move(in->pending));
  }
  st.inactive.erase(ci);
}

void VolumeServer::discardPending(VolState& st, std::uint32_t ci) {
  InactiveClient* in = st.inactive.find(ci);
  if (in == nullptr) return;
  const SimTime now = ctx_.scheduler.now();
  for (PendingMsg& pm : in->pending) {
    stats::accrueRecord(ctx_.metrics, id(), pm.lastAccounted, pm.discardAt,
                        now);
  }
  releaseInactive(st, ci);
}

void VolumeServer::demoteIfExpired(VolState& st, std::uint32_t ci,
                                   SimTime now) {
  if (config_.inactiveDiscard == kNever) return;
  const InactiveClient* in = st.inactive.find(ci);
  if (in == nullptr) return;
  if (now <= addSat(in->volExpiredAt, config_.inactiveDiscard)) return;
  discardPending(st, ci);
  setUnreach(st, ci);
}

VolumeServer::Session* VolumeServer::findSession(std::uint32_t ci,
                                                 VolumeId volId) {
  return sessions_.find(sessionKey(ci, volId));
}

void VolumeServer::endSession(std::uint32_t ci, VolumeId volId) {
  Session* session = sessions_.find(sessionKey(ci, volId));
  if (session == nullptr) return;
  session->timer.cancel();
  sessions_.erase(sessionKey(ci, volId));
}

std::uint32_t VolumeServer::acquirePendingWrite() {
  std::uint32_t slot;
  if (!pwFree_.empty()) {
    slot = pwFree_.back();
    pwFree_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(pwPool_.size());
    pwPool_.emplace_back();
  }
  PendingWrite& pw = pwPool_[slot];
  pw.requestedAt = 0;
  pw.waitingCount = 0;
  pw.byExpiry = false;
  pw.skipBound = kSimTimeMin;
  pw.active = true;
  if (pw.waiting.size() < numClients_) pw.waiting.resize(numClients_, 0);
  // commitWrite steals the deferred/queued vectors; restock the slot
  // from the capacity pools so their storage keeps cycling.
  if (pw.deferredObjRequests.capacity() == 0 && !msgVecPool_.empty()) {
    pw.deferredObjRequests = std::move(msgVecPool_.back());
    msgVecPool_.pop_back();
  }
  if (pw.queuedWrites.capacity() == 0 && !cbVecPool_.empty()) {
    pw.queuedWrites = std::move(cbVecPool_.back());
    cbVecPool_.pop_back();
  }
  return slot;
}

void VolumeServer::releasePendingWrite(std::uint32_t slot) {
  PendingWrite& pw = pwPool_[slot];
  pw.cb = nullptr;
  pw.active = false;
  pwFree_.push_back(slot);
}

void VolumeServer::pushDeferred(VolState& v, DeferredFn fn) {
  if (v.deferred.empty() && v.deferred.head != 0) {
    v.deferred.items.clear();  // reclaim the consumed prefix
    v.deferred.head = 0;
  }
  v.deferred.items.push_back(std::move(fn));
}

// ---------------------------------------------------------------------
// dispatch
// ---------------------------------------------------------------------

VolumeId VolumeServer::payloadVolume(const net::Message& msg) const {
  switch (msg.payload.index()) {
    case net::payloadIndex<net::ReqVolLease>():
      return std::get<net::ReqVolLease>(msg.payload).vol;
    case net::payloadIndex<net::ReqObjLease>():
      return volumeOf(std::get<net::ReqObjLease>(msg.payload).obj);
    case net::payloadIndex<net::RenewObjLeases>():
      return std::get<net::RenewObjLeases>(msg.payload).vol;
    case net::payloadIndex<net::AckInvalidate>():
      return volumeOf(std::get<net::AckInvalidate>(msg.payload).obj);
    case net::payloadIndex<net::AckBatch>():
      return std::get<net::AckBatch>(msg.payload).vol;
    default:
      VL_CHECK_MSG(false, "VolumeServer: unexpected message type");
      return VolumeId{};
  }
}

void VolumeServer::deliver(const net::Message& msg) {
  // Federation: a message for a volume this server no longer owns is a
  // straggler that was in flight when the volume migrated out (or a
  // client still routing via a stale table entry). Drop it; the sender's
  // request times out and re-issues against the current routing table.
  if (volLookup(payloadVolume(msg)) == nullptr) return;
  switch (msg.payload.index()) {
    case net::payloadIndex<net::ReqVolLease>():
      return handleReqVolLease(msg);
    case net::payloadIndex<net::ReqObjLease>():
      return handleReqObjLease(msg);
    case net::payloadIndex<net::RenewObjLeases>():
      return handleRenewObjLeases(msg);
    case net::payloadIndex<net::AckInvalidate>():
      return handleAckInvalidate(msg);
    case net::payloadIndex<net::AckBatch>():
      return handleAckBatch(msg);
    default:
      VL_CHECK_MSG(false, "VolumeServer: unexpected message type");
  }
}

// ---------------------------------------------------------------------
// volume leases
// ---------------------------------------------------------------------

void VolumeServer::handleReqVolLease(const net::Message& msg) {
  const auto& req = std::get<net::ReqVolLease>(msg.payload);
  VolState& v = vol(req.vol);
  if (v.pendingWrites > 0) {
    // A write in this volume is mid-flight; do not extend or repair
    // volume state until it commits.
    pushDeferred(v, [this, msg = msg]() { handleReqVolLease(msg); });
    return;
  }
  const NodeId client = msg.from;

  // Paper, Fig. 3 "Server grants lease for volume v": reconnection when
  // the client is unreachable or presents a stale epoch. haveEpoch == 0
  // means "fresh client, nothing cached" and skips the epoch check.
  const bool staleEpoch = req.haveEpoch != 0 && req.haveEpoch < v.epoch;
  if (staleEpoch) setUnreach(v, clientIdx(client));
  maybeGrantVolume(client, req.vol);
}

void VolumeServer::grantVolume(NodeId client, VolumeId volId) {
  VolState& v = vol(volId);
  const SimTime now = ctx_.scheduler.now();
  auto [rec, inserted] = v.holders.tryEmplace(clientIdx(client));
  if (!inserted) {
    stats::accrueRecord(ctx_.metrics, id(), rec->lastAccounted, rec->expire,
                        now);
  }
  rec->expire = addSat(now, config_.volumeTimeout);
  rec->lastAccounted = now;
  v.expire = std::max(v.expire, rec->expire);
  v.sweepFloor = std::min(v.sweepFloor, rec->expire);
  maxVolExpireGranted_ = std::max(maxVolExpireGranted_, rec->expire);
  clearSwept(v, clientIdx(client));
  maybeArmSweep();

  ctx_.transport.send(net::Message{
      id(), client, net::VolLeaseGrant{volId, rec->expire, v.epoch}});
}

// ---------------------------------------------------------------------
// object leases
// ---------------------------------------------------------------------

void VolumeServer::handleReqObjLease(const net::Message& msg) {
  const auto& req = std::get<net::ReqObjLease>(msg.payload);
  ObjState& st = objState(req.obj);
  if (st.pendingWrite != util::kNilIdx) {
    pwPool_[st.pendingWrite].deferredObjRequests.push_back(msg);
    return;
  }
  grantObject(msg);
}

void VolumeServer::grantObject(const net::Message& msg) {
  const auto& req = std::get<net::ReqObjLease>(msg.payload);
  const NodeId client = msg.from;
  const std::uint32_t ci = clientIdx(client);
  const SimTime now = ctx_.scheduler.now();
  ObjState& st = objState(req.obj);

  auto [rec, inserted] = st.holders.tryEmplace(ci);
  if (!inserted) {
    stats::accrueRecord(ctx_.metrics, id(), rec->lastAccounted, rec->expire,
                        now);
  }
  rec->expire = addSat(now, config_.objectTimeout);
  rec->lastAccounted = now;
  st.expire = std::max(st.expire, rec->expire);
  st.sweepFloor = std::min(st.sweepFloor, rec->expire);
  maybeArmSweep();

  net::ObjLeaseGrant grant{};
  grant.obj = req.obj;
  grant.version = st.version;
  grant.expire = rec->expire;
  grant.carriesData = st.version != req.haveVersion;
  grant.dataBytes =
      grant.carriesData ? ctx_.catalog.object(req.obj).sizeBytes : 0;
  // Every grant is stamped with the volume's current epoch, volume
  // lease or not: a client whose crash or departure erased its epoch
  // memory relearns it together with the data it is caching. Without
  // this, such a client holds real entries while still presenting the
  // "fresh client" epoch 0 -- and haveEpoch == 0 skips the staleness
  // check, so a later epoch bump (migration, server crash) would hand
  // it a volume lease without the reconnection exchange that is the
  // only thing standing between its un-invalidated entries and a stale
  // read. (volLookup, not vol(): stamping must not flip `touched` for
  // configs whose grants never otherwise reach the volume state.)
  const VolState* volForEpoch = volLookup(volumeOf(req.obj));
  VL_DCHECK(volForEpoch != nullptr);  // deliver() gates on ownership
  grant.epoch = volForEpoch->epoch;

  if (req.wantVolume && config_.piggybackVolumeLease) {
    // Piggyback ablation: renew the volume in the same reply iff it is
    // safe -- the client must not be unreachable and must not present a
    // stale epoch (otherwise its separate volume request will run the
    // reconnection exchange).
    const VolumeId volId = volumeOf(req.obj);
    VolState& v = vol(volId);
    demoteIfExpired(v, ci, now);
    const bool staleEpoch = req.haveEpoch != 0 && req.haveEpoch < v.epoch;
    const InactiveClient* in = v.inactive.find(ci);
    const bool hasPendingFlush = mode_ == InvalidationMode::kDelayed &&
                                 in != nullptr && !in->pending.empty();
    if (!isUnreach(v, ci) && !staleEpoch && !hasPendingFlush &&
        v.pendingWrites == 0) {
      if (mode_ == InvalidationMode::kDelayed) releaseInactive(v, ci);
      auto [vRec, vInserted] = v.holders.tryEmplace(ci);
      if (!vInserted) {
        stats::accrueRecord(ctx_.metrics, id(), vRec->lastAccounted,
                            vRec->expire, now);
      }
      vRec->expire = addSat(now, config_.volumeTimeout);
      vRec->lastAccounted = now;
      v.expire = std::max(v.expire, vRec->expire);
      v.sweepFloor = std::min(v.sweepFloor, vRec->expire);
      maxVolExpireGranted_ = std::max(maxVolExpireGranted_, vRec->expire);
      clearSwept(v, ci);
      grant.grantsVolume = true;
      grant.volExpire = vRec->expire;
      grant.epoch = v.epoch;
    }
  }
  ctx_.transport.send(net::Message{id(), client, grant});
}

// ---------------------------------------------------------------------
// reconnection (paper §3.1.1) and pending-list flush (§3.2)
// ---------------------------------------------------------------------

void VolumeServer::startReconnect(NodeId client, VolumeId volId) {
  // Whatever we queued for this client is superseded: the reconnection
  // exchange recomputes lease state from version numbers.
  VolState& v = vol(volId);
  const std::uint32_t ci = clientIdx(client);
  discardPending(v, ci);
  setUnreach(v, ci);  // stale-epoch clients enter here too

  Session session{Session::Kind::kReconnect, false, ctx_.scheduler.now(), {}};
  session.timer = ctx_.scheduler.scheduleDeadlineAfter(
      config_.msgTimeout, [this, ci, volId]() {
        // Client vanished mid-exchange; it stays unreachable.
        endSession(ci, volId);
      });
  sessions_[sessionKey(ci, volId)] = std::move(session);
  ctx_.transport.send(net::Message{id(), client, net::MustRenewAll{volId}});
}

void VolumeServer::handleRenewObjLeases(const net::Message& msg) {
  processRenewObjLeases(msg, ctx_.scheduler.now());
}

void VolumeServer::processRenewObjLeases(const net::Message& msg,
                                         SimTime arrivedAt) {
  const auto& req = std::get<net::RenewObjLeases>(msg.payload);
  const NodeId client = msg.from;
  const std::uint32_t ci = clientIdx(client);
  VolState& v = vol(req.vol);
  if (v.pendingWrites > 0) {
    // Recompute against committed versions only. Keep the original
    // arrival time: by the time the deferral drains, the session this
    // reply answered may have timed out and a NEW one begun.
    pushDeferred(v, [this, msg = msg, arrivedAt]() {
      processRenewObjLeases(msg, arrivedAt);
    });
    return;
  }
  Session* session = findSession(ci, req.vol);
  if (session == nullptr || session->kind != Session::Kind::kReconnect ||
      session->awaitingAck || arrivedAt < session->startedAt) {
    return;  // stale, duplicate, or answers an earlier exchange; drop
  }
  const SimTime now = ctx_.scheduler.now();

  net::BatchInvalRenew batch{};
  batch.vol = req.vol;
  for (const auto& entry : req.leases) {
    ObjState& st = objState(entry.obj);
    if (st.version > entry.version) {
      batch.invalidate.push_back(entry.obj);
      removeObjHolder(st, ci);
    } else {
      auto [rec, inserted] = st.holders.tryEmplace(ci);
      if (!inserted) {
        stats::accrueRecord(ctx_.metrics, id(), rec->lastAccounted,
                            rec->expire, now);
      }
      rec->expire = addSat(now, config_.objectTimeout);
      rec->lastAccounted = now;
      st.expire = std::max(st.expire, rec->expire);
      st.sweepFloor = std::min(st.sweepFloor, rec->expire);
      maybeArmSweep();
      batch.renew.push_back(
          net::BatchInvalRenew::Renewal{entry.obj, st.version, rec->expire});
    }
  }
  session->awaitingAck = true;
  session->timer.cancel();
  session->timer = ctx_.scheduler.scheduleDeadlineAfter(
      config_.msgTimeout,
      [this, ci, volId = req.vol]() { endSession(ci, volId); });
  ctx_.transport.send(net::Message{id(), client, std::move(batch)});
}

void VolumeServer::startFlush(NodeId client, VolumeId volId) {
  VolState& v = vol(volId);
  const std::uint32_t ci = clientIdx(client);
  InactiveClient* in = v.inactive.find(ci);
  VL_CHECK(in != nullptr);
  const SimTime now = ctx_.scheduler.now();

  net::BatchInvalRenew batch{};
  batch.vol = volId;
  for (PendingMsg& pm : in->pending) {
    stats::accrueRecord(ctx_.metrics, id(), pm.lastAccounted, pm.discardAt,
                        now);
    batch.invalidate.push_back(pm.obj);
  }
  in->pending.clear();

  Session session{Session::Kind::kFlush, true, now, {}};
  session.timer = ctx_.scheduler.scheduleDeadlineAfter(
      config_.msgTimeout, [this, ci, volId]() {
        // No ack: the client may have missed invalidations. Safe exit:
        // it becomes unreachable and must reconnect.
        VolState& vv = vol(volId);
        discardPending(vv, ci);
        releaseInactive(vv, ci);
        setUnreach(vv, ci);
        endSession(ci, volId);
      });
  sessions_[sessionKey(ci, volId)] = std::move(session);
  ctx_.transport.send(net::Message{id(), client, std::move(batch)});
}

void VolumeServer::handleAckBatch(const net::Message& msg) {
  const auto& ack = std::get<net::AckBatch>(msg.payload);
  const NodeId client = msg.from;
  const std::uint32_t ci = clientIdx(client);
  Session* session = findSession(ci, ack.vol);
  if (session == nullptr || !session->awaitingAck) return;
  VolState& v = vol(ack.vol);
  endSession(ci, ack.vol);
  if (ci < v.unreachable.size()) v.unreachable[ci] = 0;
  releaseInactive(v, ci);
  maybeGrantVolume(client, ack.vol);
}

void VolumeServer::maybeGrantVolume(NodeId client, VolumeId volId) {
  // Full re-validation before handing out a volume lease. This runs both
  // on the direct path and when a grant was deferred behind a pending
  // write -- by the time the deferral drains, the client may have been
  // moved (back) to Unreachable by the committing write, or new pending
  // invalidations may have queued; granting blindly would let it read
  // stale data under a "valid" volume lease.
  VolState& v = vol(volId);
  if (v.pendingWrites > 0) {
    pushDeferred(v,
                 [this, client, volId]() { maybeGrantVolume(client, volId); });
    return;
  }
  const std::uint32_t ci = clientIdx(client);
  if (findSession(ci, volId) != nullptr) {
    // An exchange (reconnection or flush) is already in flight -- its
    // pending list has been moved into an unacknowledged batch, so
    // granting now could hand the client a volume lease while it still
    // holds leases the batch was meant to invalidate. Duplicate volume
    // requests are dropped; the session completes or times out into the
    // Unreachable set, and the client's retry takes the repair path.
    return;
  }
  demoteIfExpired(v, ci, ctx_.scheduler.now());
  if (isUnreach(v, ci)) {
    if (findSession(ci, volId) == nullptr) startReconnect(client, volId);
    return;
  }
  if (mode_ == InvalidationMode::kDelayed) {
    InactiveClient* in = v.inactive.find(ci);
    if (in != nullptr) {
      if (!in->pending.empty()) {
        if (findSession(ci, volId) == nullptr) startFlush(client, volId);
        return;
      }
      releaseInactive(v, ci);
    }
  }
  grantVolume(client, volId);
}

// ---------------------------------------------------------------------
// writes (paper Fig. 3 "Server writes object o")
// ---------------------------------------------------------------------

void VolumeServer::write(ObjectId obj, WriteCallback cb) {
  writeInternal(obj, std::move(cb), ctx_.scheduler.now());
}

void VolumeServer::writeInternal(ObjectId obj, WriteCallback cb,
                                 SimTime requestedAt) {
  const SimTime now = ctx_.scheduler.now();
  if (now < recoveryUntil_) {
    // Post-crash recovery: delay every write until all volume leases
    // granted before the crash have provably expired. Re-checked every
    // time the delayed write fires -- a second crash during recovery
    // pushes the write out again. The parked write is counted on its
    // volume so a migration cannot strand it (volumeQuiescent waits);
    // volLookup (not vol()) keeps the volume's `touched` bit unchanged
    // until the write actually starts.
    VolState* vp = volLookup(volumeOf(obj));
    VL_CHECK_MSG(vp != nullptr, "VolumeServer: write for un-owned volume");
    ++vp->recoveryWrites;
    ctx_.scheduler.scheduleDeadline(
        recoveryUntil_, [this, obj, cb = std::move(cb), requestedAt]() mutable {
          VolState* v = volLookup(volumeOf(obj));
          VL_CHECK_MSG(v != nullptr, "VolumeServer: write for un-owned volume");
          --v->recoveryWrites;
          writeInternal(obj, std::move(cb), requestedAt);
        });
    return;
  }
  ObjState& st = objState(obj);
  if (st.pendingWrite != util::kNilIdx) {
    pwPool_[st.pendingWrite].queuedWrites.push_back(std::move(cb));
    return;
  }
  startWrite(obj, std::move(cb), requestedAt);
}

void VolumeServer::startWrite(ObjectId obj, WriteCallback cb,
                              SimTime requestedAt) {
  const SimTime now = ctx_.scheduler.now();
  ObjState& st = objState(obj);
  const VolumeId volId = volumeOf(obj);
  VolState& v = vol(volId);

  if (config_.writeByLeaseExpiry) {
    // Invalidate-by-waiting: send nothing; commit once min(volume
    // expiry, object expiry) has passed for everyone. Holders whose
    // object leases outlive that point are reconciled at commit (their
    // volume leases have necessarily drained).
    bool anyValid = false;
    st.holders.forEach([&](std::uint32_t, LeaseRecord& record) {
      if (graceExpire(record.expire) > now) anyValid = true;
    });
    // Holders granted by the previous owner before a migration are not
    // in our tables, but their (volume, object) lease pairs stay valid
    // until the handoff bound drains; until then the write must wait.
    if (graceExpire(v.handoffBound) > now) anyValid = true;
    if (!anyValid) {
      ++st.version;
      ctx_.metrics.onWrite(now - requestedAt, false);
      if (cb) cb(WriteResult{now - requestedAt, false, st.version});
      return;
    }
    const std::uint32_t slot = acquirePendingWrite();
    PendingWrite& pw = pwPool_[slot];
    pw.cb = std::move(cb);
    pw.requestedAt = requestedAt;
    pw.byExpiry = true;
    ++v.pendingWrites;
    const SimTime deadline = std::max({graceExpire(std::min(v.expire, st.expire)),
                                       graceExpire(v.handoffBound), now});
    st.pendingWrite = slot;
    pw.timer = ctx_.scheduler.scheduleDeadline(
        deadline, [this, obj]() { commitWrite(obj); });
    return;
  }

  std::vector<NodeId> immediate = std::move(immediateScratch_);
  immediate.clear();
  // Pre-migration holders granted by the previous owner are invisible
  // to our holder tables; treat them as one skipped Unreachable holder
  // whose min(volume, object) expiry is the handoff bound.
  SimTime skipBound = graceExpire(v.handoffBound) > now
                          ? graceExpire(v.handoffBound)
                          : kSimTimeMin;
  st.holders.forEach([&](std::uint32_t ci, LeaseRecord& record) {
    if (graceExpire(record.expire) <= now) return;  // lease expired

    // A client mid-exchange (reconnection or pending-list flush) is
    // provably reachable RIGHT NOW and may have object-lease renewals
    // for the old version already in flight -- it MUST be invalidated
    // even though it is still formally in the Unreachable set, or the
    // renewal + eventual volume grant would let it read stale data.
    const bool midSession = findSession(ci, volId) != nullptr;
    if (!midSession && isUnreach(v, ci)) {
      // Paper: do not contact unreachable clients -- but do not stop
      // waiting for them either. One that still holds a valid volume
      // lease can serve this object until min(volume, object) expiry,
      // so the commit may not happen before that instant.
      const LeaseRecord* vRec = v.holders.find(ci);
      if (vRec != nullptr && graceExpire(vRec->expire) > now) {
        skipBound = std::max(
            skipBound, graceExpire(std::min(vRec->expire, record.expire)));
      }
      return;
    }

    if (mode_ == InvalidationMode::kImmediate || midSession) {
      immediate.push_back(clientNode(ci));
      return;
    }

    // Delayed mode: only clients with valid volume leases are contacted;
    // the rest queue on their pending lists.
    const LeaseRecord* vRec = v.holders.find(ci);
    const bool volValid = vRec != nullptr && graceExpire(vRec->expire) > now;
    if (volValid) {
      immediate.push_back(clientNode(ci));
      return;
    }
    const SimTime volExpiredAt =
        vRec != nullptr ? vRec->expire : sweptVolExpire(v, ci, now);
    if (config_.inactiveDiscard != kNever &&
        now > addSat(volExpiredAt, config_.inactiveDiscard)) {
      discardPending(v, ci);
      setUnreach(v, ci);
      return;
    }
    auto [in, inserted] = v.inactive.tryEmplace(ci);
    if (inserted) {
      in->volExpiredAt = volExpiredAt;
      if (in->pending.capacity() == 0 && !pendingMsgPool_.empty()) {
        in->pending = std::move(pendingMsgPool_.back());
        pendingMsgPool_.pop_back();
      }
    }
    in->pending.push_back(PendingMsg{
        obj, now, addSat(in->volExpiredAt, config_.inactiveDiscard)});
  });

  if (immediate.empty() && skipBound <= now) {
    ++st.version;
    ctx_.metrics.onWrite(now - requestedAt, false);
    immediateScratch_ = std::move(immediate);  // return scratch before cb
    if (cb) cb(WriteResult{now - requestedAt, false, st.version});
    return;
  }

  const std::uint32_t slot = acquirePendingWrite();
  PendingWrite& pw = pwPool_[slot];
  pw.cb = std::move(cb);
  pw.requestedAt = requestedAt;
  pw.skipBound = skipBound;
  for (NodeId c : immediate) pw.waiting[clientIdx(c)] = 1;
  pw.waitingCount = static_cast<std::uint32_t>(immediate.size());
  for (NodeId c : immediate) {
    ctx_.transport.send(net::Message{id(), c, net::Invalidate{obj}});
  }
  ++v.pendingWrites;

  // T_f = min(volume expiry, object expiry) + epsilon, floored by
  // msgTimeout (paper Fig. 3). Whichever lease family drains first
  // unblocks us. For in-table holders skipBound <= leaseBound (each
  // skipped client's expiries are under the aggregate maxima, both
  // epsilon-extended) -- but a freshly adopted volume's handoff bound
  // can exceed the aggregates (its holders are not in the tables), so
  // the deadline takes skipBound explicitly. With nobody to contact,
  // only the skipped clients' drain matters.
  const SimTime leaseBound = graceExpire(std::min(v.expire, st.expire));
  const SimTime deadline =
      immediate.empty()
          ? skipBound
          : std::max({leaseBound, addSat(now, config_.msgTimeout), skipBound});
  st.pendingWrite = slot;
  pw.timer = ctx_.scheduler.scheduleDeadline(
      deadline, [this, obj]() { commitWrite(obj); });
  immediateScratch_ = std::move(immediate);
}

void VolumeServer::commitWrite(ObjectId obj) {
  ObjState& st = objState(obj);
  VL_CHECK(st.pendingWrite != util::kNilIdx);
  const std::uint32_t slot = st.pendingWrite;
  const SimTime now = ctx_.scheduler.now();
  const VolumeId volId = volumeOf(obj);
  VolState& v = vol(volId);
  PendingWrite& pw = pwPool_[slot];
  pw.timer.cancel();

  // Paper: unreachable <- unreachable + To_contact. Their object-lease
  // records stay; the reconnection exchange reconciles them later.
  if (pw.waitingCount > 0) {
    for (std::uint32_t ci = 0; ci < pw.waiting.size(); ++ci) {
      if (pw.waiting[ci] == 0) continue;
      pw.waiting[ci] = 0;
      setUnreach(v, ci);
    }
    pw.waitingCount = 0;
  }

  if (pw.byExpiry) {
    // No invalidations were sent. Anyone whose object lease is still
    // valid missed the update; their volume leases have drained (that
    // is what the commit waited for), so route them through the
    // pending-list (delayed) or reconnection (immediate) machinery.
    st.holders.forEach([&](std::uint32_t ci, LeaseRecord& record) {
      if (graceExpire(record.expire) <= now) return;
      if (isUnreach(v, ci)) return;
      if (mode_ == InvalidationMode::kDelayed) {
        const LeaseRecord* vRec = v.holders.find(ci);
        const SimTime volExpiredAt =
            vRec != nullptr ? std::min(vRec->expire, now)
                            : sweptVolExpire(v, ci, now);
        if (config_.inactiveDiscard != kNever &&
            now > addSat(volExpiredAt, config_.inactiveDiscard)) {
          discardPending(v, ci);
          setUnreach(v, ci);
          return;
        }
        auto [in, inserted] = v.inactive.tryEmplace(ci);
        if (inserted) {
          in->volExpiredAt = volExpiredAt;
          if (in->pending.capacity() == 0 && !pendingMsgPool_.empty()) {
            in->pending = std::move(pendingMsgPool_.back());
            pendingMsgPool_.pop_back();
          }
        }
        in->pending.push_back(PendingMsg{
            obj, now, addSat(in->volExpiredAt, config_.inactiveDiscard)});
      } else {
        setUnreach(v, ci);
      }
    });
  }

  ++st.version;
  ctx_.metrics.onWrite(now - pw.requestedAt, false);
  if (pw.cb) pw.cb(WriteResult{now - pw.requestedAt, false, st.version});

  // The callback may have grown pwPool_ (a reentrant write on another
  // object), so re-index instead of trusting `pw` past this point.
  std::vector<net::Message> deferredObj =
      std::move(pwPool_[slot].deferredObjRequests);
  std::vector<WriteCallback> queued = std::move(pwPool_[slot].queuedWrites);
  st.pendingWrite = util::kNilIdx;
  releasePendingWrite(slot);
  --v.pendingWrites;
  VL_CHECK(v.pendingWrites >= 0);

  for (net::Message& m : deferredObj) handleReqObjLease(m);
  deferredObj.clear();
  if (deferredObj.capacity() > 0) msgVecPool_.push_back(std::move(deferredObj));
  if (v.pendingWrites == 0) drainVolumeDeferred(volId);
  for (auto& w : queued) writeInternal(obj, std::move(w), now);
  queued.clear();
  if (queued.capacity() > 0) cbVecPool_.push_back(std::move(queued));
}

void VolumeServer::drainVolumeDeferred(VolumeId volId) {
  VolState& v = vol(volId);
  while (v.pendingWrites == 0 && !v.deferred.empty()) {
    DeferredFn action = std::move(v.deferred.items[v.deferred.head]);
    ++v.deferred.head;
    action();
  }
  if (v.deferred.empty() && v.deferred.head != 0) {
    v.deferred.items.clear();
    v.deferred.head = 0;
  }
}

void VolumeServer::handleAckInvalidate(const net::Message& msg) {
  const auto& ack = std::get<net::AckInvalidate>(msg.payload);
  ObjState& st = objState(ack.obj);
  if (st.pendingWrite == util::kNilIdx) return;  // duplicate / late ack
  PendingWrite& pw = pwPool_[st.pendingWrite];
  const std::uint32_t ci = clientIdx(msg.from);
  if (ci >= pw.waiting.size() || pw.waiting[ci] == 0) return;
  pw.waiting[ci] = 0;
  --pw.waitingCount;
  removeObjHolder(st, ci);  // client dropped its copy
  if (pw.waitingCount > 0) return;
  const SimTime now = ctx_.scheduler.now();
  if (now >= pw.skipBound) {
    commitWrite(ack.obj);
    return;
  }
  // Every contacted client acked, but a skipped Unreachable holder can
  // still serve the old version until its leases drain; tighten the
  // commit timer from the aggregate deadline down to that instant.
  pw.timer.cancel();
  pw.timer = ctx_.scheduler.scheduleDeadline(
      pw.skipBound, [this, obj = ack.obj]() { commitWrite(obj); });
}

// ---------------------------------------------------------------------
// online volume migration (federation)
// ---------------------------------------------------------------------

VolumeServer::VolState& VolumeServer::migrationVolSlot(
    VolumeId volId, std::uint8_t** ownedFlag) {
  const trace::VolumeInfo& info = ctx_.catalog.volume(volId);
  if (info.server == id()) {
    *ownedFlag = &volOwnedNative_[info.localIndex];
    return volumes_[info.localIndex];
  }
  auto [slot, inserted] = adoptedVolSlot_.tryEmplace(raw(volId));
  if (inserted) {
    *slot = static_cast<std::uint32_t>(adoptedVols_.size());
    adoptedVols_.emplace_back();
    adoptedVolOwned_.push_back(0);
  }
  *ownedFlag = &adoptedVolOwned_[*slot];
  return adoptedVols_[*slot];
}

VolumeServer::ObjState& VolumeServer::migrationObjSlot(
    ObjectId obj, std::uint8_t** ownedFlag) {
  const trace::ObjectInfo& info = ctx_.catalog.object(obj);
  if (info.server == id()) {
    *ownedFlag = &objOwnedNative_[info.localIndex];
    return objects_[info.localIndex];
  }
  auto [slot, inserted] = adoptedObjSlot_.tryEmplace(raw(obj));
  if (inserted) {
    *slot = static_cast<std::uint32_t>(adoptedObjs_.size());
    adoptedObjs_.emplace_back();
    adoptedObjOwned_.push_back(0);
  }
  *ownedFlag = &adoptedObjOwned_[*slot];
  return adoptedObjs_[*slot];
}

bool VolumeServer::volumeQuiescent(VolumeId volId) const {
  const VolState* v = volLookup(volId);
  if (v == nullptr) return false;
  return v->pendingWrites == 0 && v->deferred.empty() &&
         v->recoveryWrites == 0;
}

proto::VolumeHandoff VolumeServer::migrateOut(VolumeId volId) {
  std::uint8_t* owned = nullptr;
  VolState& v = migrationVolSlot(volId, &owned);
  VL_CHECK_MSG(*owned != 0, "migrateOut: volume not owned here");
  VL_CHECK_MSG(
      v.pendingWrites == 0 && v.deferred.empty() && v.recoveryWrites == 0,
      "migrateOut: volume not quiescent");
  const SimTime now = ctx_.scheduler.now();

  proto::VolumeHandoff handoff;
  handoff.vol = volId;
  handoff.epoch = v.epoch;
  // Holders we are about to forget stay bounded by the volume's
  // aggregate lease horizon; after a crash wiped v.expire, the
  // stable-storage high-water mark is the bound that survives. No grace
  // applied here -- the adopter adds epsilon when it compares.
  handoff.volLeaseBound = std::max(v.expire, maxVolExpireGranted_);

  // Accrue and drop every piece of volume soft state: a migration is a
  // controlled crash for this volume's lease bookkeeping. Holders learn
  // of the move when their next request times out and re-routes; the
  // epoch bump at the adopter forces them through MUST_RENEW_ALL.
  v.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
    stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
  });
  v.holders.clear();
  v.inactive.forEach([&](std::uint32_t, InactiveClient& in) {
    for (PendingMsg& pm : in.pending) {
      stats::accrueRecord(ctx_.metrics, id(), pm.lastAccounted, pm.discardAt,
                          now);
    }
    in.pending.clear();
    if (in.pending.capacity() > 0) {
      pendingMsgPool_.push_back(std::move(in.pending));
    }
  });
  v.inactive.clear();
  std::fill(v.unreachable.begin(), v.unreachable.end(), 0);
  std::fill(v.sweptExpire.begin(), v.sweptExpire.end(), kNever);
  v.expire = kSimTimeMin;
  v.sweepFloor = kNever;

  // In-flight reconnection / flush exchanges on this volume die with the
  // handoff; the client's retry re-routes and reconnects at the adopter.
  std::vector<std::uint64_t> staleSessions;
  sessions_.forEach([&](std::uint64_t key, Session& session) {
    if ((key & 0xffffffffull) != raw(volId)) return;
    session.timer.cancel();
    staleSessions.push_back(key);
  });
  for (std::uint64_t key : staleSessions) sessions_.erase(key);

  for (const trace::ObjectInfo& info : ctx_.catalog.objects()) {
    if (info.volume != volId) continue;
    std::uint8_t* objOwned = nullptr;
    ObjState& st = migrationObjSlot(info.id, &objOwned);
    VL_CHECK(st.pendingWrite == util::kNilIdx);
    st.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
      stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
    });
    st.holders.clear();
    st.expire = kSimTimeMin;
    st.sweepFloor = kNever;
    handoff.objects.push_back(
        proto::VolumeHandoff::ObjectEntry{info.id, st.version});
    *objOwned = 0;  // slot stays: durable memory for a possible return
  }

  *owned = 0;  // epoch stays in the slot: the return path ratchets on it
  return handoff;
}

void VolumeServer::adoptVolume(const proto::VolumeHandoff& handoff,
                               bool bumpEpoch) {
  std::uint8_t* owned = nullptr;
  VolState& v = migrationVolSlot(handoff.vol, &owned);
  VL_CHECK_MSG(*owned == 0, "adoptVolume: volume already owned here");

  // Epoch ratchet: this slot may hold durable memory of an earlier stay
  // (migrate-away-then-return); never regress below either side's log.
  // The bump on top forces every pre-migration holder through the
  // MUST_RENEW_ALL reconnection exchange on its next volume renewal.
  v.epoch = std::max(v.epoch, handoff.epoch);
  if (bumpEpoch) v.epoch += 1;
  v.touched = true;

  // Writes here must respect leases the previous owner granted, which
  // are invisible to our holder tables; the handoff bound stands in for
  // them until it drains.
  v.handoffBound = std::max(v.handoffBound, handoff.volLeaseBound);

  for (const auto& entry : handoff.objects) {
    std::uint8_t* objOwned = nullptr;
    ObjState& st = migrationObjSlot(entry.obj, &objOwned);
    st.version = std::max(st.version, entry.version);  // ratchet, never back
    *objOwned = 1;
  }

  // A crash at this server must also stay silent past the handoff
  // bound: fold it into the stable-storage high-water mark that sizes
  // the post-crash recovery window.
  maxVolExpireGranted_ = std::max(maxVolExpireGranted_, handoff.volLeaseBound);
  *owned = 1;
}

// ---------------------------------------------------------------------
// crash recovery (paper §3.1.2)
// ---------------------------------------------------------------------

void VolumeServer::crashAndReboot() {
  const SimTime now = ctx_.scheduler.now();

  // In-flight writes die with the process; their callers never hear back.
  for (PendingWrite& pw : pwPool_) {
    if (!pw.active) continue;
    pw.timer.cancel();
    std::fill(pw.waiting.begin(), pw.waiting.end(), 0);
    pw.waitingCount = 0;
    pw.deferredObjRequests.clear();
    pw.queuedWrites.clear();
    pw.cb = nullptr;
    pw.active = false;
  }
  pwFree_.clear();
  for (std::uint32_t slot = 0; slot < pwPool_.size(); ++slot) {
    pwFree_.push_back(slot);
  }
  sessions_.forEach(
      [](std::uint64_t, Session& session) { session.timer.cancel(); });
  sessions_.clear();
  sweepTimer_.cancel();
  sweepArmed_ = false;  // lease state is gone; the next grant re-arms

  // Owned state only: a migrated-away volume's slot is durable memory of
  // another server's volume now -- its epoch must not advance here.
  forEachOwnedVol([&](VolState& v) {
    v.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
      stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
    });
    v.holders.clear();
    v.inactive.forEach([&](std::uint32_t, InactiveClient& in) {
      for (PendingMsg& pm : in.pending) {
        stats::accrueRecord(ctx_.metrics, id(), pm.lastAccounted, pm.discardAt,
                            now);
      }
      in.pending.clear();
      if (in.pending.capacity() > 0) {
        pendingMsgPool_.push_back(std::move(in.pending));
      }
    });
    v.inactive.clear();
    // the epoch check re-detects stale clients, so Unreachable resets
    std::fill(v.unreachable.begin(), v.unreachable.end(), 0);
    v.deferred.items.clear();
    v.deferred.head = 0;
    v.pendingWrites = 0;
    v.expire = kSimTimeMin;
    v.sweepFloor = kNever;
    std::fill(v.sweptExpire.begin(), v.sweptExpire.end(), kNever);
    if (v.touched) v.epoch += 1;  // persisted with the data
  });
  forEachOwnedObj([&](ObjState& st) {
    st.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
      stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
    });
    st.holders.clear();
    st.expire = kSimTimeMin;
    st.sweepFloor = kNever;
    st.pendingWrite = util::kNilIdx;
  });

  // Delay writes until every volume lease granted before the crash has
  // expired -- epsilon-extended, so slow-clocked holders have stopped
  // serving too (the stable-storage high-water-mark scheme).
  recoveryUntil_ = std::max(now, graceExpire(maxVolExpireGranted_));
}

void VolumeServer::restoreAfterRestart(
    const std::vector<std::pair<ObjectId, Version>>& versions,
    const std::vector<std::pair<VolumeId, Epoch>>& epochs,
    SimTime recoverUntil) {
  for (const auto& [obj, version] : versions) {
    const trace::ObjectInfo& info = ctx_.catalog.object(obj);
    if (info.server != id()) continue;
    ObjState& st = objects_[info.localIndex];
    st.version = std::max(st.version, version);
  }
  for (const auto& [volId, epoch] : epochs) {
    const trace::VolumeInfo& info = ctx_.catalog.volume(volId);
    if (info.server != id()) continue;
    // Per-volume ratchet only: a volume whose durable log holds an
    // older epoch (it migrated away and came back, or the log lagged)
    // must move forward, never regress.
    VolState& v = volumes_[info.localIndex];
    v.epoch = std::max(v.epoch, epoch);
  }
  // Mark every owned volume touched so a later in-process crash keeps
  // bumping epochs past the restored values.
  forEachOwnedVol([](VolState& v) { v.touched = true; });
  // Ratchet only: a second restore with an older recovery point must not
  // shorten a silence window already in force.
  recoveryUntil_ = std::max(recoveryUntil_, recoverUntil);
}

// ---------------------------------------------------------------------
// batch lease-expiry sweep
// ---------------------------------------------------------------------

void VolumeServer::sweepExpiredLeases() {
  // One branch per holder record: drop (accruing) everything whose
  // grace-extended expiry has drained. Every consumer of these records
  // applies the same graceExpire(expire) > now test before reading
  // them, so removal is observationally invisible -- except for the
  // delayed-invalidation paths, which read an EXPIRED volume record's
  // expiry to stamp the Inactive entry; sweptExpire preserves exactly
  // that datum. Accrual totals are unchanged too: accrueRecord clamps
  // at the record's expiry, which is <= now for everything swept.
  // Whole tables are skipped via sweepFloor, a lower bound on every
  // record's expiry: if even the earliest possible expiry is still in
  // the future, the walk would erase nothing, so skipping it changes
  // nothing observable. The bound only goes stale LOW (a renewal lifts
  // a record past it), so a skip is always sound; each full walk
  // re-tightens it to the exact minimum of the survivors.
  const SimTime now = ctx_.scheduler.now();
  std::size_t remaining = 0;
  forEachOwnedVol([&](VolState& v) {
    if (graceExpire(v.sweepFloor) > now) {
      remaining += v.holders.size();
      return;
    }
    SimTime floor = kNever;
    v.holders.forEach([&](std::uint32_t ci, LeaseRecord& rec) {
      if (graceExpire(rec.expire) > now) {
        ++remaining;
        floor = std::min(floor, rec.expire);
        return;
      }
      stats::accrueRecord(ctx_.metrics, id(), rec.lastAccounted, rec.expire,
                          now);
      if (mode_ == InvalidationMode::kDelayed) {
        if (v.sweptExpire.size() < numClients_) {
          v.sweptExpire.resize(numClients_, kNever);
        }
        v.sweptExpire[ci] = rec.expire;
      }
      v.holders.erase(ci);
    });
    v.sweepFloor = floor;
  });
  forEachOwnedObj([&](ObjState& st) {
    if (graceExpire(st.sweepFloor) > now) {
      remaining += st.holders.size();
      return;
    }
    SimTime floor = kNever;
    st.holders.forEach([&](std::uint32_t ci, LeaseRecord& rec) {
      if (graceExpire(rec.expire) > now) {
        ++remaining;
        floor = std::min(floor, rec.expire);
        return;
      }
      stats::accrueRecord(ctx_.metrics, id(), rec.lastAccounted, rec.expire,
                          now);
      st.holders.erase(ci);
    });
    st.sweepFloor = floor;
  });
  if (remaining > 0 && !quiesced_) {
    sweepTimer_ = ctx_.scheduler.scheduleDeadlineAfter(
        config_.leaseSweepPeriod, [this]() { sweepExpiredLeases(); });
  } else {
    sweepArmed_ = false;  // next grant re-arms
  }
}

void VolumeServer::quiesce() {
  quiesced_ = true;
  sweepTimer_.cancel();
  sweepArmed_ = false;
}

void VolumeServer::finalizeAccounting(SimTime now) {
  // Un-owned slots were accrued and emptied when the volume migrated
  // out, so visiting owned state covers everything outstanding.
  forEachOwnedVol([&](VolState& v) {
    v.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
      stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
    });
    v.inactive.forEach([&](std::uint32_t, InactiveClient& in) {
      for (PendingMsg& pm : in.pending) {
        stats::accrueRecord(ctx_.metrics, id(), pm.lastAccounted, pm.discardAt,
                            now);
      }
    });
  });
  forEachOwnedObj([&](ObjState& st) {
    st.holders.forEach([&](std::uint32_t, LeaseRecord& r) {
      stats::accrueRecord(ctx_.metrics, id(), r.lastAccounted, r.expire, now);
    });
  });
}

}  // namespace vlease::core
