// Volume-lease server (paper §3, Figs. 2-3): the paper's primary
// contribution.
//
// The server grants long leases on objects and short leases on volumes;
// a write may proceed as soon as EITHER lease has expired for every
// non-acknowledging client. Two modes:
//
//   * kImmediate (paper's "Volume Leases"): writes invalidate every
//     valid object-lease holder (cost C_o) and wait for acks until
//     min(volume-expiry, object-expiry), with a msgTimeout floor;
//     non-ackers join the volume's Unreachable set.
//
//   * kDelayed ("Volume Leases with Delayed Invalidations"): holders
//     whose volume lease has expired are not contacted (cost C_v).
//     Their invalidations queue on a per-client Pending list; the batch
//     is delivered -- and acknowledged -- when the client next renews
//     the volume. After d seconds of inactivity the client moves to
//     Unreachable and its pending list is discarded.
//
// Fault tolerance follows the paper exactly:
//   * Unreachable clients renewing a volume run the reconnection
//     exchange (MUST_RENEW_ALL -> RENEW_OBJ_LEASES -> batch
//     invalidate/renew -> ack -> volume grant) that repairs their
//     object-lease state (§3.1.1);
//   * crashAndReboot() bumps every volume's epoch, discards all lease
//     state, and delays writes until the longest granted volume lease
//     has drained ("stable storage" keeps only that high-water mark and
//     the epoch counters, §3.1.2); clients presenting a stale epoch are
//     treated as unreachable.
//
// Consistency guards beyond the pseudocode (needed once messages have
// real latency; no-ops in the paper's zero-latency sequential model):
//   * while a write is in flight, object-lease requests for that object
//     and all volume-lease traffic for its volume are deferred until
//     commit, so no lease is granted on a version about to change;
//   * a client mid-flush (pending-list delivery) counts as an immediate
//     invalidation target for concurrent writes.
//
// State layout (see DESIGN.md "Dense protocol state"): everything is
// index-addressed. Objects and volumes map through the catalog's
// per-server localIndex into direct vectors; holder sets, the Inactive
// table, and the Unreachable set are keyed by the dense client index;
// in-flight writes live in a recycled slot pool referenced from the
// object's state; sessions use a packed (client, volume) 64-bit key in
// a util::FlatMap. Steady-state protocol traffic allocates nothing.
#pragma once

#include <vector>

#include "proto/protocol.h"
#include "util/flat_map.h"
#include "util/inplace_function.h"
#include "util/lifo_index_map.h"

namespace vlease::core {

enum class InvalidationMode { kImmediate, kDelayed };

class VolumeServer final : public proto::ServerNode {
 public:
  VolumeServer(proto::ProtocolContext& ctx, NodeId id,
               const proto::ProtocolConfig& config, InvalidationMode mode);

  void write(ObjectId obj, proto::WriteCallback cb) override;
  Version currentVersion(ObjectId obj) const override;
  void deliver(const net::Message& msg) override;
  void crashAndReboot() override;
  void finalizeAccounting(SimTime now) override;
  void quiesce() override;

  // ---- online volume migration (federation) ----
  bool supportsMigration() const override { return true; }
  bool volumeQuiescent(VolumeId vol) const override;
  proto::VolumeHandoff migrateOut(VolumeId vol) override;
  void adoptVolume(const proto::VolumeHandoff& handoff,
                   bool bumpEpoch) override;
  /// Whether this server currently owns `vol` (native or adopted).
  bool ownsVolume(VolumeId vol) const { return volLookup(vol) != nullptr; }

  /// Cold process restart (tools/vlease_rt): a brand-new process resumes
  /// this server from "stable storage" -- durably logged versions and the
  /// per-volume epoch counters. All lease state was volatile and is gone;
  /// the epochs are presented pre-bumped by the caller so reconnecting
  /// clients run MUST_RENEW_ALL, and writes refuse to commit until
  /// `recoverUntil` on the new process's clock. When even the
  /// granted-lease high-water mark died with the old process, the caller
  /// must pass one full volume-lease term + epsilon of silence -- the
  /// paper's §3.1.2 recovery rule executed on real wall-clock time.
  /// Restored versions and epochs only ratchet upward (the constructor's
  /// defaults are the floor; a volume returning to a server whose
  /// durable log holds an older epoch must never regress).
  void restoreAfterRestart(
      const std::vector<std::pair<ObjectId, Version>>& versions,
      const std::vector<std::pair<VolumeId, Epoch>>& epochs,
      SimTime recoverUntil);

  // ---- introspection hooks for tests ----
  bool isUnreachable(NodeId client, VolumeId vol) const;
  bool isInactive(NodeId client, VolumeId vol) const;
  std::size_t pendingMessageCount(NodeId client, VolumeId vol) const;
  Epoch volumeEpoch(VolumeId vol) const;
  std::size_t validObjectHolders(ObjectId obj) const;
  std::size_t validVolumeHolders(VolumeId vol) const;
  SimTime recoveryUntil() const { return recoveryUntil_; }

 private:
  /// Inline capacity for deferred protocol actions: the largest closure
  /// captures [this, net::Message, SimTime] (a deferred RenewObjLeases).
  static constexpr std::size_t kDeferredClosureBytes = 96;
  using DeferredFn = util::InplaceFunction<void(), kDeferredClosureBytes, 8>;

  struct LeaseRecord {
    SimTime expire = kSimTimeMin;
    SimTime lastAccounted = 0;
  };
  struct PendingMsg {
    ObjectId obj;
    SimTime lastAccounted;
    SimTime discardAt;  // volExpiredAt + d (kNever when d = inf)
  };
  struct InactiveClient {
    SimTime volExpiredAt = 0;
    std::vector<PendingMsg> pending;  // capacity recycled via the pool
  };
  /// FIFO queue over a flat vector with a consumed-prefix cursor: the
  /// deque's semantics without its per-chunk allocations. Actions
  /// appended mid-drain land behind the cursor and run in order.
  struct DeferredQueue {
    std::vector<DeferredFn> items;
    std::size_t head = 0;
    bool empty() const { return head == items.size(); }
  };
  struct VolState {
    Epoch epoch = 1;
    SimTime expire = kSimTimeMin;  // aggregate lease horizon
    /// Lower bound on every holder's expiry (lowered on grant, exact
    /// again after each sweep walk): while graceExpire(sweepFloor) is
    /// in the future the sweep can skip the whole table -- nothing in
    /// it could be erased, so skipping is observationally invisible.
    SimTime sweepFloor = kNever;
    util::LifoIndexMap<LeaseRecord> holders;      // by client index
    std::vector<std::uint8_t> unreachable;        // by client index
    util::LifoIndexMap<InactiveClient> inactive;  // by client index
    /// Writes currently in flight on objects of this volume; volume
    /// grant / reconnection traffic defers while > 0.
    int pendingWrites = 0;
    DeferredQueue deferred;
    /// Whether any protocol activity ever reached this volume. The old
    /// hash-map state created entries lazily, and crashAndReboot bumped
    /// the epoch of existing entries only; preserving that distinction
    /// keeps epoch values bit-identical across the representations.
    bool touched = false;
    /// Delayed mode only, maintained while the expiry sweep is active:
    /// the expiry of a client's last volume lease after the sweep
    /// removed its (drained) holder record -- the one datum the
    /// delayed-invalidation paths still read from expired records (the
    /// Inactive entry's volExpiredAt). kNever = no swept record.
    /// Invalidated by a fresh grant, cleared wholesale on crash.
    std::vector<SimTime> sweptExpire;  // by client index
    /// Migration handoff bound: holders granted by the PREVIOUS owner
    /// are invisible to this server's holder tables, but their
    /// min(volume, object) lease pairs all expire by this instant (the
    /// source's aggregate volume-lease horizon at handoff). Until
    /// graceExpire(handoffBound) passes, writes must treat the volume as
    /// if an unreachable holder with that expiry existed. Never reset:
    /// comparisons are against `now`, so it ages out naturally.
    SimTime handoffBound = kSimTimeMin;
    /// Writes parked on the crash-recovery delay timer (not yet in the
    /// pending-write pool). Migration must wait for these too: the
    /// parked closure re-enters writeInternal on this server.
    int recoveryWrites = 0;
  };
  struct ObjState {
    Version version = 1;
    SimTime expire = kSimTimeMin;  // aggregate lease horizon
    SimTime sweepFloor = kNever;   // see VolState::sweepFloor
    util::LifoIndexMap<LeaseRecord> holders;  // by client index
    /// Slot of the in-flight write in pwPool_, kNilIdx when none.
    std::uint32_t pendingWrite = util::kNilIdx;
  };
  /// Pool slot for an in-flight write. Slots are recycled; the byte-per-
  /// client `waiting` mask is all-zero between uses (ack handling and
  /// commit clear the bits they consume).
  struct PendingWrite {
    proto::WriteCallback cb;
    SimTime requestedAt = 0;
    std::vector<std::uint8_t> waiting;  // by client index
    std::uint32_t waitingCount = 0;
    sim::TimerHandle timer;
    std::vector<net::Message> deferredObjRequests;
    std::vector<proto::WriteCallback> queuedWrites;
    /// Invalidate-by-waiting (writeByLeaseExpiry): no messages were
    /// sent; at commit, holders whose object leases are still valid owe
    /// an invalidation via the pending-list / Unreachable machinery.
    bool byExpiry = false;
    /// Holders skipped because they are Unreachable still gate the
    /// commit until min(their volume expiry, their object expiry): an
    /// unreachable client with both leases valid can serve reads, so
    /// committing on acks alone would let it serve the old version.
    SimTime skipBound = kSimTimeMin;
    bool active = false;
  };
  /// In-flight multi-step exchange with one client on one volume:
  /// reconnection (after MUST_RENEW_ALL) or pending-list flush.
  struct Session {
    enum class Kind { kReconnect, kFlush } kind = Kind::kReconnect;
    bool awaitingAck = false;  // batch sent, ack not yet received
    /// When this exchange began. A RenewObjLeases that reached the
    /// server before this instant answers an EARLIER MustRenewAll (it
    /// sat on the volume's deferred queue behind a pending write) and
    /// describes a stale cache snapshot; reconciling against it would
    /// skip objects the client acquired since, leaving them un-renewed
    /// AND un-invalidated -- a stale read once the volume is granted.
    SimTime startedAt = kSimTimeMin;
    sim::TimerHandle timer;
  };

  /// Server-conservative expiry: for write-blocking decisions a
  /// holder's lease counts as possibly live until expire + epsilon, so
  /// a client whose clock runs up to epsilon slow has stopped serving
  /// by the time the write commits. Zero epsilon reproduces the paper's
  /// exact write-after-min(t, t_v) arithmetic.
  SimTime graceExpire(SimTime expire) const {
    return addSat(expire, config_.clockEpsilon);
  }

  // ---- dense id plumbing ----
  std::uint32_t clientIdx(NodeId client) const {
    return raw(client) - numServers_;
  }
  NodeId clientNode(std::uint32_t idx) const {
    return makeNodeId(numServers_ + idx);
  }
  static std::uint64_t sessionKey(std::uint32_t clientIdx, VolumeId vol) {
    return (static_cast<std::uint64_t>(clientIdx) << 32) | raw(vol);
  }
  /// Ownership-aware lookup: the volume's state iff this server
  /// currently owns it (native home volume not migrated away, or an
  /// adopted volume). Null otherwise.
  const VolState* volLookup(VolumeId volId) const {
    const trace::VolumeInfo& info = ctx_.catalog.volume(volId);
    if (info.server == id()) {
      return volOwnedNative_[info.localIndex] != 0 ? &volumes_[info.localIndex]
                                                   : nullptr;
    }
    const std::uint32_t* slot = adoptedVolSlot_.find(raw(volId));
    if (slot == nullptr || adoptedVolOwned_[*slot] == 0) return nullptr;
    return &adoptedVols_[*slot];
  }
  VolState* volLookup(VolumeId volId) {
    return const_cast<VolState*>(
        static_cast<const VolumeServer*>(this)->volLookup(volId));
  }
  VolState& vol(VolumeId volId) {
    VolState* v = volLookup(volId);
    VL_CHECK_MSG(v != nullptr, "VolumeServer: volume not owned here");
    v->touched = true;
    return *v;
  }
  ObjState& objState(ObjectId obj) {
    const trace::ObjectInfo& info = ctx_.catalog.object(obj);
    if (info.server == id()) {
      VL_DCHECK(objOwnedNative_[info.localIndex] != 0);
      return objects_[info.localIndex];
    }
    const std::uint32_t* slot = adoptedObjSlot_.find(raw(obj));
    VL_CHECK_MSG(slot != nullptr, "VolumeServer: object not owned here");
    return adoptedObjs_[*slot];
  }
  VolumeId volumeOf(ObjectId obj) const {
    return ctx_.catalog.object(obj).volume;
  }
  /// Introspection-safe lookups: null for ids this server holds no state
  /// for. A slot that exists but is currently un-owned (the volume
  /// migrated away) IS returned -- it is this server's durable memory of
  /// the volume (epoch, versions) and tests inspect it.
  const VolState* volFind(VolumeId id) const;
  const ObjState* objFind(ObjectId id) const;

  /// The volume a message's payload addresses; used by deliver() to
  /// drop stragglers for volumes this server no longer owns (the client
  /// self-heals: its request times out and re-routes via the table).
  VolumeId payloadVolume(const net::Message& msg) const;

  /// Visit every volume/object state this server currently owns:
  /// native slots not migrated away plus adopted slots. Crash, sweep,
  /// and accounting loops use these so a migrated-away volume's durable
  /// memory is never mutated.
  template <typename Fn>
  void forEachOwnedVol(Fn&& fn) {
    for (std::size_t i = 0; i < volumes_.size(); ++i) {
      if (volOwnedNative_[i] != 0) fn(volumes_[i]);
    }
    for (std::size_t i = 0; i < adoptedVols_.size(); ++i) {
      if (adoptedVolOwned_[i] != 0) fn(adoptedVols_[i]);
    }
  }
  template <typename Fn>
  void forEachOwnedObj(Fn&& fn) {
    for (std::size_t i = 0; i < objects_.size(); ++i) {
      if (objOwnedNative_[i] != 0) fn(objects_[i]);
    }
    for (std::size_t i = 0; i < adoptedObjs_.size(); ++i) {
      if (adoptedObjOwned_[i] != 0) fn(adoptedObjs_[i]);
    }
  }

  bool isUnreach(const VolState& v, std::uint32_t ci) const {
    return ci < v.unreachable.size() && v.unreachable[ci] != 0;
  }
  void setUnreach(VolState& v, std::uint32_t ci) {
    if (v.unreachable.size() < numClients_) {
      v.unreachable.resize(numClients_, 0);
    }
    v.unreachable[ci] = 1;
  }

  // message handlers
  void handleReqVolLease(const net::Message& msg);
  void handleReqObjLease(const net::Message& msg);
  void handleRenewObjLeases(const net::Message& msg);
  /// `arrivedAt`: when the message first reached the server (deferral
  /// behind a pending write preserves it; see Session::startedAt).
  void processRenewObjLeases(const net::Message& msg, SimTime arrivedAt);
  void handleAckInvalidate(const net::Message& msg);
  void handleAckBatch(const net::Message& msg);

  /// Re-validates (unreachable? pending flush? write in flight?) and
  /// then grants, reconnects, or flushes as appropriate.
  void maybeGrantVolume(NodeId client, VolumeId volId);
  void grantVolume(NodeId client, VolumeId volId);
  void grantObject(const net::Message& msg);
  void startReconnect(NodeId client, VolumeId volId);
  void startFlush(NodeId client, VolumeId volId);
  void endSession(std::uint32_t ci, VolumeId volId);
  Session* findSession(std::uint32_t ci, VolumeId volId);

  void writeInternal(ObjectId obj, proto::WriteCallback cb,
                     SimTime requestedAt);
  void startWrite(ObjectId obj, proto::WriteCallback cb, SimTime requestedAt);
  void commitWrite(ObjectId obj);
  void drainVolumeDeferred(VolumeId volId);

  void removeObjHolder(ObjState& st, std::uint32_t ci);
  void removeVolHolder(VolState& st, std::uint32_t ci);
  /// Accrue and drop a client's pending list, recycling its storage.
  void discardPending(VolState& st, std::uint32_t ci);
  /// Drop an (empty-pending) Inactive entry, recycling its storage.
  void releaseInactive(VolState& st, std::uint32_t ci);
  /// Move an inactive-past-d client to Unreachable (lazy d enforcement).
  void demoteIfExpired(VolState& st, std::uint32_t ci, SimTime now);

  std::uint32_t acquirePendingWrite();
  void releasePendingWrite(std::uint32_t slot);
  void pushDeferred(VolState& v, DeferredFn fn);

  // ---- batch lease-expiry sweep (config_.leaseSweepPeriod > 0) ----
  /// Arm the periodic sweep lazily on the first grant, so idle servers
  /// never schedule anything; one branch on the granting fast path.
  void maybeArmSweep() {
    if (sweepArmed_ || quiesced_ || config_.leaseSweepPeriod == 0) return;
    sweepArmed_ = true;
    sweepTimer_ = ctx_.scheduler.scheduleDeadlineAfter(
        config_.leaseSweepPeriod, [this]() { sweepExpiredLeases(); });
  }
  /// Scan every holder table, dropping (and accruing) records whose
  /// grace-extended expiry has passed; re-arms while any records remain.
  void sweepExpiredLeases();
  /// The volume-expiry a delayed-mode path should use for a client with
  /// no holder record: the swept record's expiry if the sweep removed
  /// one, else `now` (the value the record-free baseline path uses).
  SimTime sweptVolExpire(const VolState& v, std::uint32_t ci,
                         SimTime now) const {
    if (ci < v.sweptExpire.size() && v.sweptExpire[ci] != kNever) {
      return v.sweptExpire[ci];
    }
    return now;
  }
  /// A fresh volume grant supersedes any swept-expiry memory.
  static void clearSwept(VolState& v, std::uint32_t ci) {
    if (ci < v.sweptExpire.size()) v.sweptExpire[ci] = kNever;
  }

  const proto::ProtocolConfig config_;
  const InvalidationMode mode_;
  const std::uint32_t numServers_;
  const std::uint32_t numClients_;

  std::vector<VolState> volumes_;  // by catalog localIndex
  std::vector<ObjState> objects_;  // by catalog localIndex

  // ---- federation ownership ----
  // Native slots (above) stay addressed by catalog localIndex so the
  // common no-migration case costs one byte-flag load; volumes adopted
  // from other servers live in overflow stores keyed by raw global id.
  // Un-owned slots of either kind are retained as durable memory: the
  // epoch and versions a returning volume must ratchet against.
  std::vector<std::uint8_t> volOwnedNative_;  // by catalog localIndex
  std::vector<std::uint8_t> objOwnedNative_;  // by catalog localIndex
  util::FlatMap<std::uint32_t> adoptedVolSlot_;  // raw(vol) -> adoptedVols_
  util::FlatMap<std::uint32_t> adoptedObjSlot_;  // raw(obj) -> adoptedObjs_
  std::vector<VolState> adoptedVols_;
  std::vector<ObjState> adoptedObjs_;
  std::vector<std::uint8_t> adoptedVolOwned_;
  std::vector<std::uint8_t> adoptedObjOwned_;
  /// Find-or-create the (possibly un-owned) slot for a volume/object,
  /// native or adopted; also returns whether the caller must flip the
  /// matching owned flag. Used only on migration paths.
  VolState& migrationVolSlot(VolumeId volId, std::uint8_t** ownedFlag);
  ObjState& migrationObjSlot(ObjectId obj, std::uint8_t** ownedFlag);

  std::vector<PendingWrite> pwPool_;
  std::vector<std::uint32_t> pwFree_;
  util::FlatMap<Session> sessions_;  // by sessionKey(client, volume)

  // Recycled storage: scratch for the write fan-out target list and
  // capacity pools for the per-entry vectors of released slots.
  std::vector<NodeId> immediateScratch_;
  std::vector<std::vector<PendingMsg>> pendingMsgPool_;
  std::vector<std::vector<net::Message>> msgVecPool_;
  std::vector<std::vector<proto::WriteCallback>> cbVecPool_;

  /// "Stable storage" (survives crashAndReboot): the high-water mark of
  /// granted volume leases, used to bound the recovery wait. Versions
  /// and epochs live with the data and also survive; only lease state
  /// is lost on a crash.
  SimTime maxVolExpireGranted_ = kSimTimeMin;
  SimTime recoveryUntil_ = kSimTimeMin;

  /// Batch expiry-sweep state: one deadline-lane timer per server
  /// replaces what would otherwise be one expiry timer per lease.
  sim::TimerHandle sweepTimer_;
  bool sweepArmed_ = false;
  bool quiesced_ = false;
};

}  // namespace vlease::core
