// Dense per-client object cache for the volume-lease client.
//
// proto::ClientCache keys entries through a std::unordered_map; at a
// million clients the map nodes, buckets, and slot-pool indirection are
// the single largest slice of per-client RSS (~5 KB/client on the scale
// record config). Catalog object ids are small dense integers, so the
// volume client can index entries directly by raw id instead: one lazily
// grown vector of 24-byte entries, no hashing, no per-entry allocation.
//
// Iteration-order contract: forEach visits entries newest-first in
// insertion order (an intrusive LIFO list threaded through the entries).
// That is the order libstdc++'s unordered_map produces in the regime the
// determinism goldens pin (collision-free keys below the first rehash
// threshold; see util::LifoIndexMap for the precedent and argument), and
// the reconnection exchange (-> RenewObjLeases message order -> loss-roll
// consumption) makes the order observable, so it must not change.
//
// LRU semantics mirror proto::ClientCache exactly when capacity > 0:
// entry() and touch() refresh recency, inserting beyond capacity evicts
// the least recently used entry. The LRU links live in a side table that
// is only allocated for bounded caches, so the capacity == 0 fleet (the
// paper's infinite caches, every large-scale config) never pays for them.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/ids.h"
#include "util/time.h"

namespace vlease::core {

class LeaseCache {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// 24 bytes: the volume client never reads CacheEntry::lastValidated,
  /// and object versions are write counters that fit 32 bits with room
  /// to spare (checked on store).
  struct Entry {
    SimTime validUntil = kSimTimeMin;
    std::int32_t version32 = static_cast<std::int32_t>(kNoVersion);
    std::uint32_t prev = kNil;  // insertion-order links, newest at head
    std::uint32_t next = kNil;
    bool present = false;
    bool hasData = false;
    /// Whether the most recent object-lease grant carried data (vs. a
    /// version-check-only renewal); see proto::CacheEntry.
    bool lastGrantCarriedData = false;

    Version version() const { return version32; }
    void setVersion(Version v) {
      VL_DCHECK(v >= INT32_MIN && v <= INT32_MAX);
      version32 = static_cast<std::int32_t>(v);
    }
    bool valid(SimTime now) const { return hasData && validUntil > now; }
    void invalidate() {
      hasData = false;
      version32 = static_cast<std::int32_t>(kNoVersion);
      validUntil = kSimTimeMin;
    }
  };

  /// `sizeHint`: expected id-space size (catalog object count); the
  /// first growth reserves exactly this much so a million clients don't
  /// each overshoot geometrically.
  explicit LeaseCache(std::size_t capacity = 0, std::size_t sizeHint = 0)
      : capacity_(capacity), sizeHint_(sizeHint) {}

  const Entry* find(ObjectId obj) const {
    const std::size_t i = raw(obj);
    if (i >= entries_.size() || !entries_[i].present) return nullptr;
    return &entries_[i];
  }

  /// Mutable find WITHOUT refreshing LRU recency (bookkeeping writes
  /// such as clearing lastGrantCarriedData must not count as a use).
  Entry* findMutable(ObjectId obj) {
    return const_cast<Entry*>(
        static_cast<const LeaseCache*>(this)->find(obj));
  }

  /// Find-or-insert, refreshing LRU recency; inserting beyond capacity
  /// evicts the least recently used entry (never the one just added).
  Entry& entry(ObjectId obj) {
    const std::size_t i = raw(obj);
    growTo(i);
    Entry& e = entries_[i];
    if (e.present) {
      if (capacity_ > 0) lruMoveToFront(static_cast<std::uint32_t>(i));
      return e;
    }
    e = Entry{};
    e.present = true;
    insLinkFront(static_cast<std::uint32_t>(i));
    ++size_;
    if (capacity_ > 0) {
      lruLinkFront(static_cast<std::uint32_t>(i));
      if (size_ > capacity_) evictLru();
    }
    return e;
  }

  /// Refresh LRU recency (cache-hit path).
  void touch(ObjectId obj) {
    const std::size_t i = raw(obj);
    if (capacity_ == 0 || i >= entries_.size() || !entries_[i].present) return;
    lruMoveToFront(static_cast<std::uint32_t>(i));
  }

  /// Forget every entry; keeps the storage (dropCache happens mid-run).
  void clear() {
    for (std::uint32_t i = insHead_; i != kNil;) {
      const std::uint32_t next = entries_[i].next;
      entries_[i] = Entry{};
      if (capacity_ > 0) lru_[i] = LruLink{};
      i = next;
    }
    insHead_ = kNil;
    lruHead_ = kNil;
    lruTail_ = kNil;
    size_ = 0;
  }

  /// Release the storage too (client churn: a departed client returns
  /// its memory; re-arrival regrows lazily).
  void releaseMemory() {
    std::vector<Entry>().swap(entries_);
    std::vector<LruLink>().swap(lru_);
    insHead_ = kNil;
    lruHead_ = kNil;
    lruTail_ = kNil;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::int64_t evictions() const { return evictions_; }

  /// Visit every (id, entry) pair, newest insertion first (the
  /// reconnection exchange enumerates the cache; order is observable).
  template <typename Fn>
  void forEach(Fn&& fn) const {
    for (std::uint32_t i = insHead_; i != kNil; i = entries_[i].next) {
      fn(makeObjectId(i), entries_[i]);
    }
  }

 private:
  struct LruLink {
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };

  void growTo(std::size_t i) {
    if (i < entries_.size()) return;
    const std::size_t target = std::max(i + 1, sizeHint_);
    entries_.reserve(target);
    entries_.resize(i + 1);
    if (capacity_ > 0) {
      lru_.reserve(target);
      lru_.resize(i + 1);
    }
  }

  void insLinkFront(std::uint32_t i) {
    entries_[i].prev = kNil;
    entries_[i].next = insHead_;
    if (insHead_ != kNil) entries_[insHead_].prev = i;
    insHead_ = i;
  }
  void insUnlink(std::uint32_t i) {
    Entry& e = entries_[i];
    if (e.prev != kNil) entries_[e.prev].next = e.next;
    if (e.next != kNil) entries_[e.next].prev = e.prev;
    if (insHead_ == i) insHead_ = e.next;
    e.prev = kNil;
    e.next = kNil;
  }

  void lruLinkFront(std::uint32_t i) {
    lru_[i].prev = kNil;
    lru_[i].next = lruHead_;
    if (lruHead_ != kNil) lru_[lruHead_].prev = i;
    lruHead_ = i;
    if (lruTail_ == kNil) lruTail_ = i;
  }
  void lruUnlink(std::uint32_t i) {
    LruLink& l = lru_[i];
    if (l.prev != kNil) lru_[l.prev].next = l.next;
    if (l.next != kNil) lru_[l.next].prev = l.prev;
    if (lruHead_ == i) lruHead_ = l.next;
    if (lruTail_ == i) lruTail_ = l.prev;
    l.prev = kNil;
    l.next = kNil;
  }
  void lruMoveToFront(std::uint32_t i) {
    if (lruHead_ == i) return;
    lruUnlink(i);
    lruLinkFront(i);
  }
  void evictLru() {
    const std::uint32_t victim = lruTail_;
    VL_DCHECK(victim != kNil);
    lruUnlink(victim);
    insUnlink(victim);
    entries_[victim].present = false;
    --size_;
    ++evictions_;
  }

  std::size_t capacity_;
  std::size_t sizeHint_;
  std::int64_t evictions_ = 0;
  std::vector<Entry> entries_;  // by raw object id, lazily grown
  std::vector<LruLink> lru_;    // allocated only when capacity_ > 0
  std::uint32_t insHead_ = kNil;
  std::uint32_t lruHead_ = kNil;  // most recently used
  std::uint32_t lruTail_ = kNil;  // least recently used
  std::size_t size_ = 0;
};

}  // namespace vlease::core
