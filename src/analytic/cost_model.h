// Closed-form cost model: the paper's Table 1.
//
// For each algorithm it gives, per object o:
//   * expected / worst-case stale time a client can observe,
//   * read cost (expected fraction of reads needing a message),
//   * write cost (invalidation messages per write),
//   * ack-wait delay bound when a client is unreachable,
//   * server consistency state in bytes.
//
// The same formulas back the validation tests, which check the simulator
// against the model on controlled workloads (the paper validated its
// simulator the same way, §4.1).
#pragma once

#include <limits>

#include "proto/protocol.h"

namespace vlease::analytic {

struct CostParams {
  /// R: reads/second of object o (by one client, as in the paper's
  /// per-client amortization argument).
  double readRate = 0.01;
  /// t: object-lease / poll timeout, seconds.
  double objectTimeout = 100'000;
  /// t_v: volume-lease timeout, seconds.
  double volumeTimeout = 100;
  /// sum over objects o' in o's volume of R_o': aggregate read rate that
  /// amortizes volume renewals.
  double volumeReadRate = 0.1;
  /// C_tot: clients that ever cached o.
  double clientsTotal = 100;
  /// C_o: clients holding valid object leases on o.
  double clientsObjectLease = 10;
  /// C_v: clients holding valid volume leases on o's volume.
  double clientsVolumeLease = 3;
  /// C_d: clients whose volume lease expired < d seconds ago (Delayed
  /// Invalidations' pending-list population).
  double clientsRecentlyExpired = 5;
  /// size(x): bytes of server state per tracked client.
  double bytesPerClient = 16;
};

struct CostRow {
  double expectedStaleSeconds = 0;
  double worstStaleSeconds = 0;
  /// Messages per read (expected fraction of reads that need one
  /// round trip; we count round trips, matching the paper's table).
  double readCost = 0;
  /// Invalidation messages per write.
  double writeCost = 0;
  /// Upper bound on how long a write waits when a client is unreachable
  /// (infinity for Callback).
  double ackWaitSeconds = 0;
  /// Server state bytes attributable to o's consistency metadata.
  double serverStateBytes = 0;
};

inline constexpr double kInfiniteWait = std::numeric_limits<double>::infinity();

CostRow costOf(proto::Algorithm algorithm, const CostParams& params);

/// Expected messages for `reads` reads spread uniformly at `readRate`
/// (helper for the validation tests): reads * readCost, with the renewal
/// count never below 1 when reads > 0.
double expectedRenewals(double reads, double readRate, double timeout);

}  // namespace vlease::analytic
