#include "analytic/cost_model.h"

#include <algorithm>
#include <cmath>

namespace vlease::analytic {

namespace {

/// min(1 / (R * t), 1): fraction of reads that fall outside the renewal
/// window. Degenerates to 1 (every read pays) when t == 0.
double renewalFraction(double readRate, double timeout) {
  if (timeout <= 0 || readRate <= 0) return 1.0;
  return std::min(1.0, 1.0 / (readRate * timeout));
}

}  // namespace

CostRow costOf(proto::Algorithm algorithm, const CostParams& p) {
  CostRow row;
  switch (algorithm) {
    case proto::Algorithm::kPollEachRead:
      row.readCost = 1.0;
      break;

    case proto::Algorithm::kPoll:
      row.expectedStaleSeconds = p.objectTimeout / 2.0;
      row.worstStaleSeconds = p.objectTimeout;
      row.readCost = renewalFraction(p.readRate, p.objectTimeout);
      break;

    case proto::Algorithm::kPollAdaptive:
      // Approximated as Poll with the object's mean adaptive window
      // (objectTimeout stands in for it); the window varies per object.
      row.expectedStaleSeconds = p.objectTimeout / 2.0;
      row.worstStaleSeconds = p.objectTimeout;
      row.readCost = renewalFraction(p.readRate, p.objectTimeout);
      break;

    case proto::Algorithm::kCallback:
      row.writeCost = p.clientsTotal;
      row.ackWaitSeconds = kInfiniteWait;
      row.serverStateBytes = p.bytesPerClient * p.clientsTotal;
      break;

    case proto::Algorithm::kLease:
      row.readCost = renewalFraction(p.readRate, p.objectTimeout);
      row.writeCost = p.clientsObjectLease;
      row.ackWaitSeconds = p.objectTimeout;
      row.serverStateBytes = p.bytesPerClient * p.clientsObjectLease;
      break;

    case proto::Algorithm::kBestEffortLease:
      // Our interpretation of the conclusion's Best Effort Lease: writes
      // never wait; a lost invalidation leaves staleness bounded by the
      // object lease.
      row.worstStaleSeconds = p.objectTimeout;
      row.readCost = renewalFraction(p.readRate, p.objectTimeout);
      row.writeCost = p.clientsObjectLease;
      row.ackWaitSeconds = 0;
      row.serverStateBytes = p.bytesPerClient * p.clientsObjectLease;
      break;

    case proto::Algorithm::kVolumeLease:
      row.readCost = renewalFraction(p.volumeReadRate, p.volumeTimeout) +
                     renewalFraction(p.readRate, p.objectTimeout);
      row.writeCost = p.clientsObjectLease;
      row.ackWaitSeconds = std::min(p.objectTimeout, p.volumeTimeout);
      row.serverStateBytes = p.bytesPerClient * p.clientsObjectLease;
      break;

    case proto::Algorithm::kVolumeDelayedInval:
      row.readCost = renewalFraction(p.volumeReadRate, p.volumeTimeout) +
                     renewalFraction(p.readRate, p.objectTimeout);
      row.writeCost = p.clientsVolumeLease;
      row.ackWaitSeconds = std::min(p.objectTimeout, p.volumeTimeout);
      row.serverStateBytes = p.bytesPerClient * p.clientsRecentlyExpired;
      break;
  }
  return row;
}

double expectedRenewals(double reads, double readRate, double timeout) {
  if (reads <= 0) return 0;
  return std::max(1.0, reads * renewalFraction(readRate, timeout));
}

}  // namespace vlease::analytic
