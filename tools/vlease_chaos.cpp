// vlease_chaos: chaos sweep across seeds x algorithms x fault intensity
// with the online ConsistencyOracle as judge.
//
// Every (seed, intensity) pair deterministically derives a FaultPlan
// (crashes, isolations, partitions, loss windows) that is replayed
// against each server-invalidation algorithm over one shared workload;
// the oracle audits reads, writes, and cached state against ground
// truth while the faults play out. The tool prints a violation grid and
// exits non-zero if ANY violation was found, so it can gate CI.
//
//   $ vlease_chaos --seeds 16 --intensity high
//   $ vlease_chaos --seeds 8 --intensity low --algorithms lease,volume
//   $ vlease_chaos --seeds 4 --break-invalidation   # oracle must bark
//   $ vlease_chaos --seeds 16 --skew high           # |skew| <= epsilon: clean
//   $ vlease_chaos --seeds 16 --skew high --epsilon-ms 0  # must bark
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "driver/consistency_oracle.h"
#include "driver/sweep.h"
#include "net/fault_plan.h"
#include "util/flags.h"

using namespace vlease;

namespace {

std::optional<proto::Algorithm> parseAlgorithm(const std::string& name) {
  if (name == "callback") return proto::Algorithm::kCallback;
  if (name == "lease") return proto::Algorithm::kLease;
  if (name == "volume") return proto::Algorithm::kVolumeLease;
  if (name == "delay" || name == "volume-delay")
    return proto::Algorithm::kVolumeDelayedInval;
  if (name == "best-effort" || name == "besteffort")
    return proto::Algorithm::kBestEffortLease;
  return std::nullopt;
}

std::optional<double> parseIntensity(const std::string& name) {
  if (name == "low") return 0.2;
  if (name == "medium") return 0.5;
  if (name == "high") return 0.9;
  return std::nullopt;
}

/// Clock-skew budget B by named intensity. The budget is the bound on
/// every node's |skew| (FaultPlan::random guarantees it); sized against
/// the tool's volumeTimeout = 30s so high skew is a third of t_v.
std::optional<SimDuration> parseSkew(const std::string& name) {
  if (name == "off") return SimDuration{0};
  if (name == "low") return sec(2);
  if (name == "medium") return sec(5);
  if (name == "high") return sec(10);
  return std::nullopt;
}

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addInt("seeds", 8, "number of fault-plan seeds per algorithm");
  flags.addInt("seed-base", 1, "first seed (plans are seed-deterministic)");
  flags.addString("intensity", "medium", "fault intensity: low|medium|high");
  flags.addString("algorithms", "callback,lease,volume,delay",
                  "comma list: callback|lease|volume|delay|best-effort");
  flags.addInt("duration-sec", 1800, "workload + fault horizon, seconds");
  flags.addString("skew", "off",
                  "clock-skew intensity: off|low|medium|high (per-node "
                  "|skew| budget of 0/2/5/10 seconds)");
  flags.addInt("epsilon-ms", -1,
               "clock-skew safety margin epsilon in milliseconds; -1 = "
               "match the skew budget (safe), 0 = margin disabled "
               "(negative control: the skew-aware oracle must fire)");
  flags.addBool("break-invalidation", false,
                "fault-inject clients that ack invalidations without "
                "applying them (the oracle MUST report violations)");
  flags.addInt("sweep-ms", 0,
               "batch lease-expiry sweep period in milliseconds for the "
               "volume algorithms (0 = off); observationally equivalent, "
               "so the oracle verdict must not change");
  driver::addRunnerFlags(flags);  // --threads --csv --json
  if (!flags.parse(argc, argv)) return 1;

  const auto intensity = parseIntensity(flags.getString("intensity"));
  if (!intensity) {
    std::fprintf(stderr, "unknown intensity '%s' (low|medium|high)\n",
                 flags.getString("intensity").c_str());
    return 1;
  }
  const auto skewBudget = parseSkew(flags.getString("skew"));
  if (!skewBudget) {
    std::fprintf(stderr, "unknown skew '%s' (off|low|medium|high)\n",
                 flags.getString("skew").c_str());
    return 1;
  }
  const std::int64_t epsilonMs = flags.getInt("epsilon-ms");
  const SimDuration epsilon =
      epsilonMs < 0 ? *skewBudget : msec(epsilonMs);
  std::vector<proto::Algorithm> algorithms;
  for (const std::string& name : splitCsv(flags.getString("algorithms"))) {
    const auto algorithm = parseAlgorithm(name);
    if (!algorithm) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
      return 1;
    }
    algorithms.push_back(*algorithm);
  }
  const auto seeds = flags.getInt("seeds");
  const auto seedBase = flags.getInt("seed-base");
  if (algorithms.empty() || seeds <= 0) {
    std::fprintf(stderr, "nothing to run\n");
    return 1;
  }

  // One shared workload: every (algorithm, seed) point replays the same
  // reads and writes, so differences come only from faults + protocol.
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(flags.getInt("duration-sec"));
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  // Short lease timeouts relative to the fault windows, so plenty of
  // lease expiries, renewals, and reconnections happen under fire.
  proto::ProtocolConfig base;
  base.objectTimeout = sec(120);
  base.volumeTimeout = sec(30);
  base.msgTimeout = sec(5);
  base.readTimeout = sec(15);
  base.clockEpsilon = epsilon;
  base.faultInjectIgnoreInvalidations = flags.getBool("break-invalidation");
  base.leaseSweepPeriod = msec(flags.getInt("sweep-ms"));

  driver::SweepSpec spec;
  spec.name = "chaos";
  for (std::int64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(seedBase + s);
    // The plan depends only on (seed, intensity): every algorithm faces
    // the identical fault schedule, and rerunning a pair reproduces the
    // run bit for bit.
    Rng planRng(seed);
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = *intensity;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * *intensity;
    planOptions.maxClockSkew = *skewBudget;
    auto plan = std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));

    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = plan;
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    sim.oracleSkewBound = *skewBudget;

    for (const proto::Algorithm algorithm : algorithms) {
      proto::ProtocolConfig config = base;
      config.algorithm = algorithm;
      driver::SweepPoint point;
      point.label = std::string(proto::algorithmName(algorithm)) +
                    " seed=" + std::to_string(seed);
      point.config = config;
      point.sim = sim;
      point.row = proto::algorithmName(algorithm);
      point.col = "s" + std::to_string(seed);
      spec.points.push_back(std::move(point));
    }
  }
  spec.gridRowHeader = "algorithm";
  spec.gridCell = [](const stats::Metrics& m) {
    return driver::Table::num(m.oracleViolations());
  };

  const auto results =
      driver::runSweep(spec, workload, driver::parallelFromFlags(flags));

  std::int64_t totalViolations = 0;
  std::map<std::string, std::int64_t> byAlgorithm;
  for (const auto& result : results) {
    totalViolations += result.metrics.oracleViolations();
    byAlgorithm[result.row] += result.metrics.oracleViolations();
  }

  driver::emitTable(driver::toTable(spec, results), flags);
  if (!flags.getBool("csv") && !flags.getBool("json")) {
    std::printf("\nintensity=%s skew=%s epsilon=%s seeds=%lld..%lld  "
                "(%zu plans x %zu "
                "algorithms, %lld reads, %lld writes)\n",
                flags.getString("intensity").c_str(),
                flags.getString("skew").c_str(),
                formatSimTime(epsilon).c_str(),
                static_cast<long long>(seedBase),
                static_cast<long long>(seedBase + seeds - 1),
                static_cast<std::size_t>(seeds), algorithms.size(),
                static_cast<long long>(workload.readCount),
                static_cast<long long>(workload.writeCount));
    for (const auto& [name, count] : byAlgorithm) {
      std::printf("  %-12s %s\n", name.c_str(),
                  count == 0 ? "ok"
                             : (std::to_string(count) + " violation(s)")
                                   .c_str());
    }
    std::printf("verdict: %s\n",
                totalViolations == 0 ? "CONSISTENT"
                                     : "VIOLATIONS DETECTED");
  }
  return totalViolations == 0 ? 0 : 1;
}
