// vlease_chaos: chaos sweep across seeds x algorithms x fault intensity
// with the online ConsistencyOracle as judge.
//
// Every (seed, intensity) pair deterministically derives a FaultPlan
// (crashes, isolations, partitions, loss windows) that is replayed
// against each server-invalidation algorithm over one shared workload;
// the oracle audits reads, writes, and cached state against ground
// truth while the faults play out. The tool prints a violation grid and
// exits non-zero if ANY violation was found, so it can gate CI.
//
//   $ vlease_chaos --seeds 16 --intensity high
//   $ vlease_chaos --seeds 8 --intensity low --algorithms lease,volume
//   $ vlease_chaos --seeds 4 --break-invalidation   # oracle must bark
//   $ vlease_chaos --seeds 16 --skew high           # |skew| <= epsilon: clean
//   $ vlease_chaos --seeds 16 --skew high --epsilon-ms 0  # must bark
//   $ vlease_chaos --seeds 8 --migrate              # online handoff: clean
//   $ vlease_chaos --seeds 4 --migrate --break-epoch-handoff  # must bark
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "driver/consistency_oracle.h"
#include "driver/sweep.h"
#include "net/fault_plan.h"
#include "util/check.h"
#include "util/flags.h"

using namespace vlease;

namespace {

std::optional<proto::Algorithm> parseAlgorithm(const std::string& name) {
  if (name == "callback") return proto::Algorithm::kCallback;
  if (name == "lease") return proto::Algorithm::kLease;
  if (name == "volume") return proto::Algorithm::kVolumeLease;
  if (name == "delay" || name == "volume-delay")
    return proto::Algorithm::kVolumeDelayedInval;
  if (name == "best-effort" || name == "besteffort")
    return proto::Algorithm::kBestEffortLease;
  return std::nullopt;
}

std::optional<double> parseIntensity(const std::string& name) {
  if (name == "low") return 0.2;
  if (name == "medium") return 0.5;
  if (name == "high") return 0.9;
  return std::nullopt;
}

/// Clock-skew budget B by named intensity. The budget is the bound on
/// every node's |skew| (FaultPlan::random guarantees it); sized against
/// the tool's volumeTimeout = 30s so high skew is a third of t_v.
std::optional<SimDuration> parseSkew(const std::string& name) {
  if (name == "off") return SimDuration{0};
  if (name == "low") return sec(2);
  if (name == "medium") return sec(5);
  if (name == "high") return sec(10);
  return std::nullopt;
}

std::vector<std::string> splitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addInt("seeds", 8, "number of fault-plan seeds per algorithm");
  flags.addInt("seed-base", 1, "first seed (plans are seed-deterministic)");
  flags.addString("intensity", "medium", "fault intensity: low|medium|high");
  flags.addString("algorithms", "callback,lease,volume,delay",
                  "comma list: callback|lease|volume|delay|best-effort");
  flags.addInt("duration-sec", 1800, "workload + fault horizon, seconds");
  flags.addString("skew", "off",
                  "clock-skew intensity: off|low|medium|high (per-node "
                  "|skew| budget of 0/2/5/10 seconds)");
  flags.addInt("epsilon-ms", -1,
               "clock-skew safety margin epsilon in milliseconds; -1 = "
               "match the skew budget (safe), 0 = margin disabled "
               "(negative control: the skew-aware oracle must fire)");
  flags.addBool("break-invalidation", false,
                "fault-inject clients that ack invalidations without "
                "applying them (the oracle MUST report violations)");
  flags.addInt("servers", 2, "federated volume servers in the workload");
  flags.addInt("volumes-per-server", 2,
               "volumes per server; >= 2 exercises cross-volume dispatch "
               "(objects spread round-robin, so traffic is no longer "
               "keyed to each server's volume 0)");
  flags.addBool("migrate", false,
                "online volume migration: move server 0's first volume "
                "to server 1 a third of the way in and back at two "
                "thirds (volume algorithms only; the oracle must stay "
                "clean through both handoffs)");
  flags.addBool("break-epoch-handoff", false,
                "with --migrate: skip the adopter's epoch bump, so "
                "pre-migration leases survive the handoff (negative "
                "control: the oracle MUST report violations)");
  flags.addInt("sweep-ms", 0,
               "batch lease-expiry sweep period in milliseconds for the "
               "volume algorithms (0 = off); observationally equivalent, "
               "so the oracle verdict must not change");
  flags.addInt("flash-crowd", 0,
               "flash crowd: this many distinct clients storm the "
               "coldest object ten minutes in (0 = off); appended after "
               "the base draws, so the base trace stays bit-identical");
  flags.addInt("churn-sec", 0,
               "client churn period in seconds: one graceful depart + "
               "re-arrive per period (0 = off)");
  driver::addRunnerFlags(flags);  // --threads --csv --json
  if (!flags.parse(argc, argv)) return 1;

  const auto intensity = parseIntensity(flags.getString("intensity"));
  if (!intensity) {
    std::fprintf(stderr, "unknown intensity '%s' (low|medium|high)\n",
                 flags.getString("intensity").c_str());
    return 1;
  }
  const auto skewBudget = parseSkew(flags.getString("skew"));
  if (!skewBudget) {
    std::fprintf(stderr, "unknown skew '%s' (off|low|medium|high)\n",
                 flags.getString("skew").c_str());
    return 1;
  }
  const std::int64_t epsilonMs = flags.getInt("epsilon-ms");
  const SimDuration epsilon =
      epsilonMs < 0 ? *skewBudget : msec(epsilonMs);
  std::vector<proto::Algorithm> algorithms;
  for (const std::string& name : splitCsv(flags.getString("algorithms"))) {
    const auto algorithm = parseAlgorithm(name);
    if (!algorithm) {
      std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
      return 1;
    }
    algorithms.push_back(*algorithm);
  }
  const auto seeds = flags.getInt("seeds");
  const auto seedBase = flags.getInt("seed-base");
  if (algorithms.empty() || seeds <= 0) {
    std::fprintf(stderr, "nothing to run\n");
    return 1;
  }

  const bool migrate = flags.getBool("migrate");
  const bool breakEpochHandoff = flags.getBool("break-epoch-handoff");
  if (breakEpochHandoff && !migrate) {
    std::fprintf(stderr, "--break-epoch-handoff requires --migrate\n");
    return 1;
  }

  // One shared workload: every (algorithm, seed) point replays the same
  // reads and writes, so differences come only from faults + protocol.
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(flags.getInt("duration-sec"));
  workloadOptions.numServers =
      static_cast<std::uint32_t>(flags.getInt("servers"));
  workloadOptions.volumesPerServer =
      static_cast<std::uint32_t>(flags.getInt("volumes-per-server"));
  workloadOptions.flashClients =
      static_cast<std::uint32_t>(flags.getInt("flash-crowd"));
  workloadOptions.churnPeriod = sec(flags.getInt("churn-sec"));
  if (workloadOptions.numServers < 1 ||
      (migrate && workloadOptions.numServers < 2)) {
    std::fprintf(stderr, "--migrate needs at least 2 servers\n");
    return 1;
  }
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  // Regression guard for the old "everything keys to volume 0" bug:
  // with >= 2 volumes per server the merged trace must actually reach
  // at least two distinct volumes.
  if (workloadOptions.volumesPerServer >= 2 &&
      workloadOptions.objectsPerServer >= 2) {
    std::set<std::uint64_t> touched;
    for (const trace::TraceEvent& e : workload.events) {
      touched.insert(raw(catalog.object(e.obj).volume));
    }
    VL_CHECK_MSG(touched.size() >= 2,
                 "vlease_chaos: chaos traffic reached fewer than 2 volumes");
  }

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  // Short lease timeouts relative to the fault windows, so plenty of
  // lease expiries, renewals, and reconnections happen under fire.
  proto::ProtocolConfig base;
  base.objectTimeout = sec(120);
  base.volumeTimeout = sec(30);
  base.msgTimeout = sec(5);
  base.readTimeout = sec(15);
  base.clockEpsilon = epsilon;
  base.faultInjectIgnoreInvalidations = flags.getBool("break-invalidation");
  base.leaseSweepPeriod = msec(flags.getInt("sweep-ms"));

  // Fixed migration schedule shared by every seed (the fault plans
  // vary per seed, so across the sweep the handoffs land inside many
  // different crash/partition/skew windows): server 0's first volume
  // moves out a third of the way in and comes home at two thirds,
  // which also exercises the migrate-away-then-return epoch ratchet.
  std::vector<driver::MigrationEvent> migrations;
  if (migrate) {
    VolumeId migratedVol{};
    bool found = false;
    for (const trace::VolumeInfo& info : catalog.volumes()) {
      if (info.server == catalog.serverNode(0)) {
        migratedVol = info.id;
        found = true;
        break;
      }
    }
    VL_CHECK_MSG(found, "server 0 owns no volume to migrate");
    const SimDuration third = workloadOptions.duration / 3;
    migrations.push_back(
        {third, migratedVol, catalog.serverNode(1), !breakEpochHandoff});
    migrations.push_back(
        {2 * third, migratedVol, catalog.serverNode(0), !breakEpochHandoff});
  }

  driver::SweepSpec spec;
  spec.name = "chaos";
  for (std::int64_t s = 0; s < seeds; ++s) {
    const std::uint64_t seed = static_cast<std::uint64_t>(seedBase + s);
    // The plan depends only on (seed, intensity): every algorithm faces
    // the identical fault schedule, and rerunning a pair reproduces the
    // run bit for bit.
    Rng planRng(seed);
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = *intensity;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * *intensity;
    planOptions.maxClockSkew = *skewBudget;
    auto plan = std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));

    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = plan;
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    sim.oracleSkewBound = *skewBudget;

    for (const proto::Algorithm algorithm : algorithms) {
      proto::ProtocolConfig config = base;
      config.algorithm = algorithm;
      driver::SweepPoint point;
      point.label = std::string(proto::algorithmName(algorithm)) +
                    " seed=" + std::to_string(seed);
      point.config = config;
      point.sim = sim;
      // Migration is a volume-algorithm feature (the baselines have no
      // epoch machinery to hand off); other rows run unmigrated.
      if (!migrations.empty() &&
          (algorithm == proto::Algorithm::kVolumeLease ||
           algorithm == proto::Algorithm::kVolumeDelayedInval)) {
        point.sim.migrations = migrations;
      }
      point.row = proto::algorithmName(algorithm);
      point.col = "s" + std::to_string(seed);
      spec.points.push_back(std::move(point));
    }
  }
  spec.gridRowHeader = "algorithm";
  spec.gridCell = [](const stats::Metrics& m) {
    return driver::Table::num(m.oracleViolations());
  };

  const auto results =
      driver::runSweep(spec, workload, driver::parallelFromFlags(flags));

  std::int64_t totalViolations = 0;
  std::map<std::string, std::int64_t> byAlgorithm;
  for (const auto& result : results) {
    totalViolations += result.metrics.oracleViolations();
    byAlgorithm[result.row] += result.metrics.oracleViolations();
  }

  driver::emitTable(driver::toTable(spec, results), flags);
  if (!flags.getBool("csv") && !flags.getBool("json")) {
    std::printf("\nintensity=%s skew=%s epsilon=%s servers=%lld "
                "volumes/server=%lld migrate=%s seeds=%lld..%lld  "
                "(%zu plans x %zu "
                "algorithms, %lld reads, %lld writes)\n",
                flags.getString("intensity").c_str(),
                flags.getString("skew").c_str(),
                formatSimTime(epsilon).c_str(),
                static_cast<long long>(flags.getInt("servers")),
                static_cast<long long>(flags.getInt("volumes-per-server")),
                migrate ? (breakEpochHandoff ? "broken" : "on") : "off",
                static_cast<long long>(seedBase),
                static_cast<long long>(seedBase + seeds - 1),
                static_cast<std::size_t>(seeds), algorithms.size(),
                static_cast<long long>(workload.readCount),
                static_cast<long long>(workload.writeCount));
    for (const auto& [name, count] : byAlgorithm) {
      std::printf("  %-12s %s\n", name.c_str(),
                  count == 0 ? "ok"
                             : (std::to_string(count) + " violation(s)")
                                   .c_str());
    }
    std::printf("verdict: %s\n",
                totalViolations == 0 ? "CONSISTENT"
                                     : "VIOLATIONS DETECTED");
  }
  return totalViolations == 0 ? 0 : 1;
}
