// vlease_scale: streaming large-population replay that exercises the
// scheduler's deadline lane and the batch lease-expiry sweep at scale.
//
// The point is the timer plane, not the workload: a large client
// population (up to millions) cycles reads against a small shared
// object set, so every read renews volume/object leases, arms a
// read-timeout deadline that the response cancels, and parks session
// timers -- exactly the churn the timing-wheel lane absorbs in O(1).
// Short lease timeouts relative to the inter-visit gap mean most
// holder records are expired soft state, which the periodic sweep
// (one deadline timer per server) trims instead of letting writes
// walk ever-growing tables.
//
// Events come from trace::EventStream, an O(1)-memory generator: they
// are produced and injected one at a time through the incremental
// Simulation interface (inject/drainTo/finish), so --events 100000000
// costs no event memory. Everything is seed-deterministic. On top of
// the fixed-cadence base stream the engine composes Zipfian popularity
// (--zipf), a flash-crowd renewal storm (--flash-crowd), client churn
// (--churn), and a diurnal rate curve (--diurnal); all default off,
// which reproduces the original replay bit for bit.
//
//   $ vlease_scale                                    # smoke config
//   $ vlease_scale --clients 1000000 --events 100000000   # the big run
//   $ vlease_scale --zipf 0.8 --flash-crowd 2000 --track-load
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "driver/simulation.h"
#include "trace/stream.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace vlease;

namespace {

/// Peak resident set in kilobytes from /proc/self/status (0 if the
/// field is unavailable, e.g. on a non-Linux host).
long peakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string word;
  while (status >> word) {
    if (word == "VmHWM:") {
      long kb = 0;
      status >> kb;
      return kb;
    }
  }
  return 0;
}

/// Sum of all tracked servers' per-second load buckets over the window
/// [from, to) (whole-second buckets of sim time).
std::int64_t windowLoad(const stats::Metrics& m, const trace::Catalog& catalog,
                        SimTime from, SimTime to) {
  std::int64_t total = 0;
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    const NodeId node = catalog.serverNode(s);
    if (!m.hasLoadSeries(node)) continue;
    for (const auto& [bucket, count] : m.loadSeries(node).buckets()) {
      if (bucket >= secondBucket(from) && bucket < secondBucket(to)) {
        total += count;
      }
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addInt("clients", 20'000, "client population");
  flags.addInt("events", 2'000'000, "trace events to stream");
  flags.addInt("objects", 64, "shared objects (low ids keep tables small)");
  flags.addInt("servers", 1, "federated volume servers");
  flags.addInt("volumes", 4, "volumes per server");
  flags.addBool("migrate", false,
                "online migration: halfway through, move server 0's "
                "first volume to server 1 (needs --servers >= 2)");
  flags.addInt("write-every", 8192, "one write per this many events");
  flags.addInt("interarrival-us", 100, "fixed event spacing, microseconds");
  flags.addInt("latency-ms", 1, "one-way network latency, milliseconds");
  flags.addInt("sweep-ms", 1000, "lease-expiry sweep period (0 = off)");
  flags.addInt("seed", 1, "event-stream seed");
  flags.addDouble("zipf", 0.0,
                  "Zipf skew for object popularity (0 = uniform)");
  flags.addInt("flash-crowd", 0,
               "flash crowd: this many distinct clients storm the "
               "coldest object (0 = off)");
  flags.addInt("flash-at-sec", -1,
               "flash-crowd start, sim seconds (-1 = run midpoint)");
  flags.addInt("flash-duration-ms", 2000, "flash-crowd spread");
  flags.addInt("churn", 0,
               "client churn: one depart + one arrive every this many "
               "events (0 = off)");
  flags.addDouble("diurnal", 0.0,
                  "diurnal rate-curve amplitude in [0, 1) (0 = flat)");
  flags.addInt("diurnal-period-sec", 3600, "diurnal period, sim seconds");
  flags.addBool("track-load", false,
                "per-second server load series (flash-window reporting)");
  flags.addBool("progress", false, "print progress ticks to stderr");
  if (!flags.parse(argc, argv)) return 1;

  const auto numClients = static_cast<std::uint32_t>(flags.getInt("clients"));
  const auto numEvents = flags.getInt("events");
  const auto numObjects = static_cast<std::uint64_t>(flags.getInt("objects"));
  const auto numServers = static_cast<std::uint32_t>(flags.getInt("servers"));
  const auto numVolumes = static_cast<std::uint32_t>(flags.getInt("volumes"));
  const auto writeEvery = flags.getInt("write-every");
  const SimDuration interarrival = usec(flags.getInt("interarrival-us"));
  const bool migrate = flags.getBool("migrate");
  const bool trackLoad = flags.getBool("track-load");
  if (numServers < 1 || (migrate && numServers < 2)) {
    std::fprintf(stderr, "--migrate needs --servers >= 2\n");
    return 1;
  }

  // Objects spread round-robin across all servers' volumes, so a
  // multi-server run drives the routing table on every read.
  trace::Catalog catalog(numServers, numClients);
  std::vector<ObjectId> objects;
  objects.reserve(numObjects);
  {
    std::vector<VolumeId> volumes;
    for (std::uint32_t s = 0; s < numServers; ++s) {
      for (std::uint32_t v = 0; v < numVolumes; ++v) {
        volumes.push_back(catalog.addVolume(catalog.serverNode(s)));
      }
    }
    for (std::uint64_t o = 0; o < numObjects; ++o) {
      objects.push_back(catalog.addObject(volumes[o % volumes.size()], 8 << 10));
    }
  }

  trace::StreamOptions stream;
  stream.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  stream.events = numEvents;
  stream.numClients = numClients;
  stream.interarrival = interarrival;
  stream.writeEvery = writeEvery;
  stream.zipfSkew = flags.getDouble("zipf");
  stream.flashClients = flags.getInt("flash-crowd");
  const std::int64_t flashAtSec = flags.getInt("flash-at-sec");
  stream.flashAt = flashAtSec >= 0 ? sec(flashAtSec)
                                   : interarrival * (numEvents / 2);
  stream.flashDuration = msec(flags.getInt("flash-duration-ms"));
  stream.churnEvery = flags.getInt("churn");
  stream.diurnalAmplitude = flags.getDouble("diurnal");
  stream.diurnalPeriod = sec(flags.getInt("diurnal-period-sec"));

  // Short leases relative to a client's revisit gap (population x
  // interarrival), so nearly every read is a renewal round trip and the
  // holder tables are dominated by expired records for the sweep.
  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);
  config.piggybackVolumeLease = true;  // one round trip per cold read
  config.leaseSweepPeriod = msec(flags.getInt("sweep-ms"));

  driver::SimOptions sim;
  sim.networkLatency = msec(flags.getInt("latency-ms"));
  // No oracle: this is a throughput/footprint run. The load series is
  // opt-in (--track-load) for the flash-crowd window reporting.
  sim.trackServerLoad = trackLoad;
  if (migrate) {
    driver::MigrationEvent m;
    m.at = interarrival * (numEvents / 2);
    m.vol = catalog.volumes().front().id;  // server 0's first volume
    m.dstServer = catalog.serverNode(1);
    sim.migrations.push_back(m);
  }

  driver::Simulation simulation(catalog, config,
                                std::move(sim));

  trace::EventStream events(stream, catalog, objects);
  const bool progress = flags.getBool("progress");
  const auto t0 = std::chrono::steady_clock::now();
  std::int64_t arrivals = 0, departs = 0;
  trace::TraceEvent event;
  while (events.next(event)) {
    simulation.drainTo(event.at);
    simulation.inject(event);
    simulation.drainTo(event.at);
    if (event.kind == trace::EventKind::kArrive) ++arrivals;
    if (event.kind == trace::EventKind::kDepart) ++departs;
    if (progress && numEvents >= 10 &&
        events.baseEmitted() % (numEvents / 10) == 0 &&
        event.kind == trace::EventKind::kRead) {
      std::fprintf(
          stderr, "  %3lld%%  (%lld events)\n",
          static_cast<long long>(events.baseEmitted() * 100 / numEvents),
          static_cast<long long>(events.baseEmitted()));
    }
  }
  simulation.finish();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(t1 - t0).count();

  const stats::Metrics& m = simulation.metrics();
  // The flash window and a same-width control window immediately before
  // it: a real storm shows up as windowed server load far above the
  // control, and a no-flash run of the same seed shows no such step.
  std::int64_t flashLoad = -1, controlLoad = -1;
  if (trackLoad) {
    const SimDuration width =
        std::max<SimDuration>(stream.flashDuration, sec(1));
    flashLoad = windowLoad(m, catalog, stream.flashAt,
                           stream.flashAt + width);
    controlLoad = windowLoad(m, catalog, stream.flashAt - width,
                             stream.flashAt);
  }
  // items_per_second mirrors the google-benchmark JSON key so
  // scripts/bench.sh can gate on it the same way.
  std::printf(
      "{\n"
      "  \"clients\": %u,\n"
      "  \"events\": %lld,\n"
      "  \"emitted_events\": %lld,\n"
      "  \"arrivals\": %lld,\n"
      "  \"departs\": %lld,\n"
      "  \"objects\": %llu,\n"
      "  \"servers\": %u,\n"
      "  \"migrations\": %zu,\n"
      "  \"volumes\": %u,\n"
      "  \"sweep_ms\": %lld,\n"
      "  \"zipf\": %.2f,\n"
      "  \"flash_crowd\": %lld,\n"
      "  \"flash_window_load\": %lld,\n"
      "  \"control_window_load\": %lld,\n"
      "  \"churn\": %lld,\n"
      "  \"diurnal\": %.2f,\n"
      "  \"sim_horizon_sec\": %.0f,\n"
      "  \"fired_events\": %lld,\n"
      "  \"messages\": %lld,\n"
      "  \"reads\": %lld,\n"
      "  \"cache_local_reads\": %lld,\n"
      "  \"writes\": %lld,\n"
      "  \"failed_reads\": %lld,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"events_per_second\": %.0f,\n"
      "  \"fired_per_second\": %.0f,\n"
      "  \"peak_rss_mb\": %.1f\n"
      "}\n",
      numClients, static_cast<long long>(numEvents),
      static_cast<long long>(events.emitted()),
      static_cast<long long>(arrivals), static_cast<long long>(departs),
      static_cast<unsigned long long>(numObjects), numServers,
      simulation.migrationsApplied(), numVolumes,
      static_cast<long long>(flags.getInt("sweep-ms")),
      stream.zipfSkew, static_cast<long long>(stream.flashClients),
      static_cast<long long>(flashLoad), static_cast<long long>(controlLoad),
      static_cast<long long>(stream.churnEvery), stream.diurnalAmplitude,
      static_cast<double>(simulation.scheduler().now()) / 1e6,
      static_cast<long long>(simulation.scheduler().firedCount()),
      static_cast<long long>(m.totalMessages()),
      static_cast<long long>(m.reads()),
      static_cast<long long>(m.cacheLocalReads()),
      static_cast<long long>(m.writes()),
      static_cast<long long>(m.failedReads()), wall,
      static_cast<double>(numEvents) / wall,
      static_cast<double>(simulation.scheduler().firedCount()) / wall,
      static_cast<double>(peakRssKb()) / 1024.0);
  return 0;
}
