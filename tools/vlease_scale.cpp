// vlease_scale: streaming large-population replay that exercises the
// scheduler's deadline lane and the batch lease-expiry sweep at scale.
//
// The point is the timer plane, not the workload: a large client
// population (up to millions) cycles reads against a small shared
// object set, so every read renews volume/object leases, arms a
// read-timeout deadline that the response cancels, and parks session
// timers -- exactly the churn the timing-wheel lane absorbs in O(1).
// Short lease timeouts relative to the inter-visit gap mean most
// holder records are expired soft state, which the periodic sweep
// (one deadline timer per server) trims instead of letting writes
// walk ever-growing tables.
//
// Events are GENERATED AND INJECTED ONE AT A TIME through the
// incremental Simulation interface (inject/drainTo/finish); the trace
// is never materialized, so --events 100000000 costs no event memory.
// Everything is seed-deterministic.
//
//   $ vlease_scale                                    # smoke config
//   $ vlease_scale --clients 1000000 --events 100000000   # the big run
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>

#include "driver/simulation.h"
#include "util/flags.h"
#include "util/rng.h"

using namespace vlease;

namespace {

/// Peak resident set in kilobytes from /proc/self/status (0 if the
/// field is unavailable, e.g. on a non-Linux host).
long peakRssKb() {
  std::ifstream status("/proc/self/status");
  std::string word;
  while (status >> word) {
    if (word == "VmHWM:") {
      long kb = 0;
      status >> kb;
      return kb;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addInt("clients", 20'000, "client population");
  flags.addInt("events", 2'000'000, "trace events to stream");
  flags.addInt("objects", 64, "shared objects (low ids keep tables small)");
  flags.addInt("servers", 1, "federated volume servers");
  flags.addInt("volumes", 4, "volumes per server");
  flags.addBool("migrate", false,
                "online migration: halfway through, move server 0's "
                "first volume to server 1 (needs --servers >= 2)");
  flags.addInt("write-every", 8192, "one write per this many events");
  flags.addInt("interarrival-us", 100, "fixed event spacing, microseconds");
  flags.addInt("latency-ms", 1, "one-way network latency, milliseconds");
  flags.addInt("sweep-ms", 1000, "lease-expiry sweep period (0 = off)");
  flags.addInt("seed", 1, "event-stream seed");
  flags.addBool("progress", false, "print progress ticks to stderr");
  if (!flags.parse(argc, argv)) return 1;

  const auto numClients = static_cast<std::uint32_t>(flags.getInt("clients"));
  const auto numEvents = flags.getInt("events");
  const auto numObjects = static_cast<std::uint64_t>(flags.getInt("objects"));
  const auto numServers = static_cast<std::uint32_t>(flags.getInt("servers"));
  const auto numVolumes = static_cast<std::uint32_t>(flags.getInt("volumes"));
  const auto writeEvery = flags.getInt("write-every");
  const SimDuration interarrival = usec(flags.getInt("interarrival-us"));
  const bool migrate = flags.getBool("migrate");
  if (numServers < 1 || (migrate && numServers < 2)) {
    std::fprintf(stderr, "--migrate needs --servers >= 2\n");
    return 1;
  }

  // Objects spread round-robin across all servers' volumes, so a
  // multi-server run drives the routing table on every read.
  trace::Catalog catalog(numServers, numClients);
  std::vector<ObjectId> objects;
  objects.reserve(numObjects);
  {
    std::vector<VolumeId> volumes;
    for (std::uint32_t s = 0; s < numServers; ++s) {
      for (std::uint32_t v = 0; v < numVolumes; ++v) {
        volumes.push_back(catalog.addVolume(catalog.serverNode(s)));
      }
    }
    for (std::uint64_t o = 0; o < numObjects; ++o) {
      objects.push_back(catalog.addObject(volumes[o % volumes.size()], 8 << 10));
    }
  }

  // Short leases relative to a client's revisit gap (population x
  // interarrival), so nearly every read is a renewal round trip and the
  // holder tables are dominated by expired records for the sweep.
  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);
  config.piggybackVolumeLease = true;  // one round trip per cold read
  config.leaseSweepPeriod = msec(flags.getInt("sweep-ms"));

  driver::SimOptions sim;
  sim.networkLatency = msec(flags.getInt("latency-ms"));
  // No load series, no oracle: this is a throughput/footprint run and
  // per-second series over millions of sim-seconds would swamp it.
  if (migrate) {
    driver::MigrationEvent m;
    m.at = interarrival * (numEvents / 2);
    m.vol = catalog.volumes().front().id;  // server 0's first volume
    m.dstServer = catalog.serverNode(1);
    sim.migrations.push_back(m);
  }

  driver::Simulation simulation(catalog, config,
                                std::move(sim));

  Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
  const bool progress = flags.getBool("progress");
  const auto t0 = std::chrono::steady_clock::now();
  SimTime at = 0;
  for (std::int64_t i = 0; i < numEvents; ++i) {
    at += interarrival;
    trace::TraceEvent event;
    event.at = at;
    event.obj = objects[rng.nextBelow(numObjects)];
    if (writeEvery > 0 && (i + 1) % writeEvery == 0) {
      event.kind = trace::EventKind::kWrite;
      event.client = catalog.serverNode(0);  // ignored for writes
    } else {
      event.kind = trace::EventKind::kRead;
      event.client = catalog.clientNode(
          static_cast<std::uint32_t>(rng.nextBelow(numClients)));
    }
    simulation.drainTo(at);
    simulation.inject(event);
    simulation.drainTo(at);
    if (progress && numEvents >= 10 && (i + 1) % (numEvents / 10) == 0) {
      std::fprintf(stderr, "  %3lld%%  (%lld events)\n",
                   static_cast<long long>((i + 1) * 100 / numEvents),
                   static_cast<long long>(i + 1));
    }
  }
  simulation.finish();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall =
      std::chrono::duration<double>(t1 - t0).count();

  const stats::Metrics& m = simulation.metrics();
  // items_per_second mirrors the google-benchmark JSON key so
  // scripts/bench.sh can gate on it the same way.
  std::printf(
      "{\n"
      "  \"clients\": %u,\n"
      "  \"events\": %lld,\n"
      "  \"objects\": %llu,\n"
      "  \"servers\": %u,\n"
      "  \"migrations\": %zu,\n"
      "  \"volumes\": %u,\n"
      "  \"sweep_ms\": %lld,\n"
      "  \"sim_horizon_sec\": %.0f,\n"
      "  \"fired_events\": %lld,\n"
      "  \"messages\": %lld,\n"
      "  \"reads\": %lld,\n"
      "  \"cache_local_reads\": %lld,\n"
      "  \"writes\": %lld,\n"
      "  \"failed_reads\": %lld,\n"
      "  \"wall_seconds\": %.3f,\n"
      "  \"events_per_second\": %.0f,\n"
      "  \"fired_per_second\": %.0f,\n"
      "  \"peak_rss_mb\": %.1f\n"
      "}\n",
      numClients, static_cast<long long>(numEvents),
      static_cast<unsigned long long>(numObjects), numServers,
      simulation.migrationsApplied(), numVolumes,
      static_cast<long long>(flags.getInt("sweep-ms")),
      static_cast<double>(simulation.scheduler().now()) / 1e6,
      static_cast<long long>(simulation.scheduler().firedCount()),
      static_cast<long long>(m.totalMessages()),
      static_cast<long long>(m.reads()),
      static_cast<long long>(m.cacheLocalReads()),
      static_cast<long long>(m.writes()),
      static_cast<long long>(m.failedReads()), wall,
      static_cast<double>(numEvents) / wall,
      static_cast<double>(simulation.scheduler().firedCount()) / wall,
      static_cast<double>(peakRssKb()) / 1024.0);
  return 0;
}
