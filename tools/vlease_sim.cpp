// vlease_sim: run any consistency algorithm over a trace (from a VLTRACE
// file or generated on the fly) and print a full metrics report --
// messages, bytes, per-type breakdown, staleness, write delays, and the
// consistency state / load at the busiest servers.
//
// Internally this is a one-point driver::Sweep; the same SweepSpec with
// more points is what the bench binaries run.
//
//   $ vlease_sim --algorithm delay --t 100000 --tv 100
//   $ vlease_sim --trace trace.vlt --algorithm lease --t 100 --csv
//   $ vlease_sim --algorithm volume --latency-ms 40 --loss 0.01
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "driver/sweep.h"
#include "net/message.h"
#include "trace/trace_io.h"
#include "util/flags.h"

using namespace vlease;

namespace {

std::optional<proto::Algorithm> parseAlgorithm(const std::string& name) {
  if (name == "poll-each-read" || name == "per")
    return proto::Algorithm::kPollEachRead;
  if (name == "poll") return proto::Algorithm::kPoll;
  if (name == "poll-adaptive" || name == "adaptive")
    return proto::Algorithm::kPollAdaptive;
  if (name == "callback") return proto::Algorithm::kCallback;
  if (name == "lease") return proto::Algorithm::kLease;
  if (name == "best-effort" || name == "besteffort")
    return proto::Algorithm::kBestEffortLease;
  if (name == "volume") return proto::Algorithm::kVolumeLease;
  if (name == "delay" || name == "delayed")
    return proto::Algorithm::kVolumeDelayedInval;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addString("trace", "", "VLTRACE file (empty: generate a workload)");
  flags.addString("algorithm", "volume",
                  "poll-each-read|poll|poll-adaptive|callback|lease|"
                  "best-effort|volume|delay");
  flags.addInt("t", 100'000, "object lease / poll timeout, seconds");
  flags.addInt("tv", 100, "volume lease timeout, seconds");
  flags.addInt("d", -1, "Delay's inactive-discard d, seconds (-1 = inf)");
  flags.addInt("msg-timeout", 10, "server ack-wait floor, seconds");
  flags.addBool("piggyback", false, "piggyback volume renewals (ablation)");
  flags.addBool("write-by-expiry", false,
                "invalidate-by-waiting writes (no invalidation messages)");
  flags.addInt("cache", 0, "client LRU cache capacity (0 = infinite)");
  flags.addInt("retries", 0, "Liu-Cao invalidation retransmissions "
                             "(best-effort only)");
  flags.addInt("latency-ms", 0, "one-way network latency, milliseconds");
  flags.addDouble("loss", 0.0, "message loss probability");
  flags.addBool("bursty", false, "generated bursty-write workload");
  flags.addInt("top", 3, "report state/load for the top-K servers");
  driver::addSweepFlags(flags);  // --scale --seed --threads --csv --json
  if (!flags.parse(argc, argv)) return 1;

  auto algorithm = parseAlgorithm(flags.getString("algorithm"));
  if (!algorithm) {
    std::fprintf(stderr, "unknown algorithm '%s'\n",
                 flags.getString("algorithm").c_str());
    return 1;
  }

  // ---- load or generate the workload ----
  auto makeWorkload = [&]() -> std::optional<driver::Workload> {
    if (!flags.getString("trace").empty()) {
      std::string error;
      auto loaded = trace::readTraceFromFile(flags.getString("trace"), &error);
      if (!loaded) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return std::nullopt;
      }
      return driver::Workload{std::move(loaded->catalog),
                              std::move(loaded->events), 0, 0, {}};
    }
    driver::WorkloadOptions opts = driver::workloadFromFlags(flags);
    opts.burstyWrites = flags.getBool("bursty");
    return driver::buildWorkload(opts);
  };
  std::optional<driver::Workload> maybeWorkload = makeWorkload();
  if (!maybeWorkload) return 1;
  driver::Workload& workload = *maybeWorkload;
  const trace::Catalog& catalog = workload.catalog;

  // ---- declare the (single-point) sweep and run it ----
  proto::ProtocolConfig config;
  config.algorithm = *algorithm;
  config.objectTimeout = sec(flags.getInt("t"));
  config.volumeTimeout = sec(flags.getInt("tv"));
  config.inactiveDiscard =
      flags.getInt("d") < 0 ? kNever : sec(flags.getInt("d"));
  config.msgTimeout = sec(flags.getInt("msg-timeout"));
  config.piggybackVolumeLease = flags.getBool("piggyback");
  config.writeByLeaseExpiry = flags.getBool("write-by-expiry");
  config.clientCacheCapacity =
      static_cast<std::size_t>(flags.getInt("cache"));
  config.bestEffortRetries = static_cast<int>(flags.getInt("retries"));

  driver::SimOptions simOpts;
  simOpts.networkLatency = msec(flags.getInt("latency-ms"));
  simOpts.lossProbability = flags.getDouble("loss");
  simOpts.trackServerLoad = true;

  driver::SweepSpec spec;
  spec.name = "vlsim";
  spec.points.push_back(
      {proto::algorithmName(*algorithm), config, simOpts, "", "", nullptr});

  const auto results =
      driver::runSweep(spec, workload, driver::parallelFromFlags(flags));
  const stats::Metrics& m = results.front().metrics;

  // ---- report ----
  if (flags.getBool("csv") || flags.getBool("json")) {
    driver::Table summary(
        {"algorithm", "t", "tv", "messages", "bytes", "reads", "cacheLocal",
         "stale", "failed", "writes", "delayed", "blocked", "maxDelaySec"});
    summary.addRow({proto::algorithmName(*algorithm),
                    driver::Table::num(flags.getInt("t")),
                    driver::Table::num(flags.getInt("tv")),
                    driver::Table::num(m.totalMessages()),
                    driver::Table::num(m.totalBytes()),
                    driver::Table::num(m.reads()),
                    driver::Table::num(m.cacheLocalReads()),
                    driver::Table::num(m.staleReads()),
                    driver::Table::num(m.failedReads()),
                    driver::Table::num(m.writes()),
                    driver::Table::num(m.delayedWrites()),
                    driver::Table::num(m.blockedWrites()),
                    driver::Table::num(m.writeDelay().max(), 3)});
    driver::emitTable(summary, flags);
    return 0;
  }

  const std::string dText =
      flags.getInt("d") < 0 ? "inf" : std::to_string(flags.getInt("d"));
  std::printf("algorithm: %s  t=%llds tv=%llds d=%s\n",
              proto::algorithmName(*algorithm),
              static_cast<long long>(flags.getInt("t")),
              static_cast<long long>(flags.getInt("tv")), dText.c_str());
  std::printf("trace: %zu objects / %zu volumes / %u servers / %u clients, "
              "horizon %s\n",
              catalog.numObjects(), catalog.numVolumes(),
              catalog.numServers(), catalog.numClients(),
              formatSimTime(m.horizon()).c_str());
  std::printf("\nmessages: %lld total, %lld bytes, %lld dropped\n",
              static_cast<long long>(m.totalMessages()),
              static_cast<long long>(m.totalBytes()),
              static_cast<long long>(m.droppedMessages()));
  driver::Table byType({"message type", "count"});
  for (std::size_t i = 0; i < net::kNumPayloadTypes; ++i) {
    if (m.messagesOfType(i) > 0) {
      byType.addRow({net::payloadTypeName(i),
                     driver::Table::num(m.messagesOfType(i))});
    }
  }
  byType.print(std::cout);

  std::printf("\nreads: %lld (%lld cache-local, %lld stale, %lld failed)\n",
              static_cast<long long>(m.reads()),
              static_cast<long long>(m.cacheLocalReads()),
              static_cast<long long>(m.staleReads()),
              static_cast<long long>(m.failedReads()));
  std::printf(
      "writes: %lld (%lld waited, %lld blocked, max wait %.3fs, mean "
      "%.4fs)\n",
      static_cast<long long>(m.writes()),
      static_cast<long long>(m.delayedWrites()),
      static_cast<long long>(m.blockedWrites()), m.writeDelay().max(),
      m.writeDelay().mean());

  const auto topK = static_cast<std::size_t>(flags.getInt("top"));
  driver::Table busiest(
      {"server", "messages", "avg state bytes", "peak msgs/s"});
  auto order = m.nodesByTraffic();
  std::size_t shown = 0;
  for (NodeId node : order) {
    if (!catalog.isServer(node)) continue;
    busiest.addRow({std::to_string(raw(node)),
                    driver::Table::num(m.node(node).messages()),
                    driver::Table::num(m.avgStateBytes(node), 1),
                    driver::Table::num(m.loadSeries(node).maxValue())});
    if (++shown >= topK) break;
  }
  std::printf("\nbusiest servers:\n");
  busiest.print(std::cout);
  return 0;
}
