// vlease_rt: real-process chaos parity harness for the rt layer.
//
// Parent mode (default) runs, per seed: spawn one worker PROCESS per
// protocol node (this same binary with --node i), all exchanging real
// TCP frames through rt::TcpTransport on loopback; derive the identical
// (workload, net::FaultPlan) the simulator would use from the seed; then
// execute the plan against the live deployment --
//   * crash/recover  -> rt::FaultInjector SIGKILLs the worker and
//                       re-execs it (servers restart with --cold-restart:
//                       resume epoch/versions from the durable log and
//                       refuse writes for one volume-lease term + epsilon
//                       of real wall-clock silence, paper section 3.1.2);
//   * partition/isolate/loss -> each worker's rt::FaultShim drops or
//                       truncates frames at the socket;
//   * skew/drift     -> each worker's RealTimeDriver clock is offset.
// Workers append their observable events (write issues/commits, read
// completions, epochs) to per-node logs; the parent merges them, audits
// them with rt::checkRealRun (the ConsistencyOracle's verdicts recast
// over wall-clock records), replays the SAME (workload, plan, seed)
// through driver::Simulation with the oracle enabled, and requires both
// sides to be violation-free. --break-invalidation is the negative
// control: it must FAIL the parity check.
//
//   $ vlease_rt --seeds 8 --intensity low
//   $ vlease_rt --seeds 8 --intensity medium --algorithm delay
//   $ vlease_rt --scenario recovery            # deterministic mid-run
//                                              # server SIGKILL + restart
//   $ vlease_rt --break-invalidation           # must exit non-zero
//   $ vlease_rt --bench-loopback               # messages/second JSON
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "driver/consistency_oracle.h"
#include "driver/simulation.h"
#include "driver/workloads.h"
#include "net/fault_plan.h"
#include "rt/fault_injector.h"
#include "rt/parity.h"
#include "rt/real_time.h"
#include "rt/sharded.h"
#include "rt/tcp_transport.h"
#include "util/flags.h"

using namespace vlease;

namespace {

std::int64_t steadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Shard-routing key: every payload is keyed by a volume, directly or
/// through its object (the catalog maps objects to volumes). This is
/// what makes shard-per-thread serving mechanical: no message ever
/// touches two volumes.
VolumeId volumeKeyOf(const net::Payload& p, const trace::Catalog& catalog) {
  return std::visit(
      [&catalog](const auto& m) -> VolumeId {
        if constexpr (requires { m.vol; }) {
          return m.vol;
        } else {
          return catalog.object(m.obj).volume;
        }
      },
      p);
}

// ---------------------------------------------------------------------
// shared run derivation (parent and workers compute the identical thing)
// ---------------------------------------------------------------------

struct HarnessRun {
  explicit HarnessRun(driver::Workload w) : workload(std::move(w)) {}

  std::uint64_t seed = 0;
  SimDuration duration = 0;
  SimDuration drain = 0;
  SimDuration skewBudget = 0;
  driver::Workload workload;
  net::FaultPlan plan;
  proto::ProtocolConfig config;
  std::vector<NodeId> clients;
  std::vector<NodeId> servers;
};

HarnessRun buildRun(std::uint64_t seed, const Flags& flags) {
  const SimDuration duration = msec(flags.getInt("duration-ms"));

  driver::ChaosWorkloadOptions w;
  w.seed = seed;
  w.numClients = static_cast<std::uint32_t>(flags.getInt("clients"));
  w.numServers = 1;
  w.objectsPerServer = static_cast<std::uint32_t>(flags.getInt("objects"));
  w.volumesPerServer =
      static_cast<std::uint32_t>(flags.getInt("volumes-per-server"));
  w.duration = duration;
  // Dense enough that second-scale fault windows overlap plenty of
  // reads, writes, renewals, and reconnections.
  w.readsPerClientPerSec = 8.0;
  w.writesPerObjectPerSec = 0.4;

  HarnessRun run(driver::buildChaosWorkload(w));

  // Regression guard: with a multi-volume server the generated traffic
  // must actually reach >= 2 volumes, or the sharded dispatch and the
  // per-volume epoch machinery run untested (the old harness keyed every
  // message to volume 0).
  if (w.volumesPerServer >= 2 && w.objectsPerServer >= 2) {
    std::vector<std::uint8_t> seen(run.workload.catalog.numVolumes(), 0);
    std::size_t distinct = 0;
    for (const trace::TraceEvent& ev : run.workload.events) {
      std::uint8_t& hit = seen[raw(run.workload.catalog.object(ev.obj).volume)];
      if (hit == 0) {
        hit = 1;
        ++distinct;
      }
    }
    VL_CHECK_MSG(distinct >= 2,
                 "vlease_rt: chaos traffic reached fewer than 2 volumes");
  }
  run.seed = seed;
  run.duration = duration;
  run.skewBudget = msec(flags.getInt("skew-ms"));

  const trace::Catalog& catalog = run.workload.catalog;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    run.clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    run.servers.push_back(catalog.serverNode(s));
  }

  // Second-scale leases so expiry, renewal, and the recovery wait all
  // happen inside a seconds-long real run.
  proto::ProtocolConfig& config = run.config;
  config.algorithm = flags.getString("algorithm") == "delay"
                         ? proto::Algorithm::kVolumeDelayedInval
                         : proto::Algorithm::kVolumeLease;
  config.objectTimeout = msec(3000);
  config.volumeTimeout = msec(800);
  config.msgTimeout = msec(400);
  config.readTimeout = msec(1500);
  config.clockEpsilon = std::max<SimDuration>(run.skewBudget, msec(100));
  config.faultInjectIgnoreInvalidations = flags.getBool("break-invalidation");

  run.drain = config.readTimeout + msec(1000);

  if (flags.getString("scenario") == "recovery") {
    // Deterministic acceptance scenario: SIGKILL the server a third of
    // the way in, restart it after an outage longer than t_v, and let
    // the checker prove no write commits inside the silence window and
    // no read goes stale across the reboot.
    const SimTime crashAt = run.duration / 3;
    const SimDuration outage = std::max<SimDuration>(
        msec(1200), config.volumeTimeout + config.clockEpsilon + msec(300));
    run.plan.crashWindow(crashAt, crashAt + outage, run.servers[0]);
  } else {
    Rng planRng(seed);
    net::FaultPlan::RandomOptions po;
    po.intensity = flags.getString("intensity") == "medium"
                       ? 0.5
                       : (flags.getString("intensity") == "high" ? 0.9 : 0.2);
    po.horizon = run.duration;
    po.maxLossProbability = 0.25 * po.intensity;
    po.maxClockSkew = run.skewBudget;
    // The generator's window means are tuned for half-hour simulated
    // horizons; scale them into this run's seconds-long horizon.
    po.windowScale = toSeconds(run.duration) / 120.0;
    po.minWindow = msec(500);
    run.plan = net::FaultPlan::random(planRng, po, run.clients, run.servers);
  }
  return run;
}

rt::CheckerOptions checkerOptionsFor(const HarnessRun& run) {
  rt::CheckerOptions o;
  o.writeWaitBase =
      std::min(run.config.objectTimeout, run.config.volumeTimeout);
  o.volumeTimeout = run.config.volumeTimeout;
  o.clockEpsilon = run.config.clockEpsilon;
  o.msgTimeout = run.config.msgTimeout;
  o.slack = msec(600);
  o.skewBudget = run.skewBudget;
  o.horizon = run.duration;
  o.plan = run.plan;
  o.servers = run.servers;
  return o;
}

std::string nodeLogPath(const std::string& dir, std::uint32_t node) {
  return dir + "/node" + std::to_string(node) + ".log";
}

// ---------------------------------------------------------------------
// worker mode: host ONE protocol node against real sockets
// ---------------------------------------------------------------------

std::vector<std::uint16_t> parsePorts(const std::string& csv) {
  std::vector<std::uint16_t> ports;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      ports.push_back(static_cast<std::uint16_t>(std::stoul(item)));
    }
  }
  return ports;
}

int workerMain(const Flags& flags) {
  const auto nodeIdx = static_cast<std::uint32_t>(flags.getInt("node"));
  const bool coldRestart = flags.getBool("cold-restart");
  const HarnessRun run =
      buildRun(static_cast<std::uint64_t>(flags.getInt("run-seed")), flags);
  const trace::Catalog& catalog = run.workload.catalog;
  const std::uint32_t numServers = catalog.numServers();
  const NodeId self = makeNodeId(nodeIdx);
  const std::vector<std::uint16_t> ports = parsePorts(flags.getString("ports"));
  if (nodeIdx >= catalog.numNodes() || ports.size() != catalog.numNodes()) {
    std::fprintf(stderr, "vlease_rt worker: bad --node/--ports\n");
    return 2;
  }
  const std::string logPath =
      nodeLogPath(flags.getString("log-dir"), nodeIdx);

  rt::RealTimeDriver driver;
  driver.alignStart(flags.getInt("t0-micros"));
  stats::Metrics metrics;

  rt::TcpTransport::Options topts;
  topts.connectTimeoutMs = 250;
  topts.retryBackoffBaseMs = 2;
  topts.retryBackoffCapMs = 40;
  topts.maxRetries = 2;
  topts.writeStallTimeoutMs = 250;
  topts.jitterSeed = run.seed * 0x9e3779b97f4a7c15ull + nodeIdx;
  rt::TcpTransport transport(driver, metrics, ports[nodeIdx], topts);
  for (std::uint32_t j = 0; j < catalog.numNodes(); ++j) {
    if (j != nodeIdx) transport.addPeer(makeNodeId(j), "127.0.0.1", ports[j]);
  }

  rt::FaultShim shim(run.plan, self, &driver,
                     run.seed ^ (0x517cc1b727220a95ull * (nodeIdx + 1)));
  transport.setFaultHook(&shim);
  driver.setStepHook([&shim](SimTime rawNow) { shim.advance(rawNow); });

  proto::ProtocolContext ctx{driver.scheduler(), transport, metrics, catalog,
                             nullptr};

  std::FILE* log = std::fopen(logPath.c_str(), "a");
  if (log == nullptr) {
    std::fprintf(stderr, "vlease_rt worker: cannot open %s\n",
                 logPath.c_str());
    return 2;
  }
  const auto append = [log](const std::string& line) {
    std::fwrite(line.data(), 1, line.size(), log);
    std::fflush(log);  // a SIGKILL loses at most the current line
  };

  // A respawned worker joins mid-timeline: events from before its birth
  // belong to the dead incarnation and are skipped.
  const SimTime resumeFrom = std::max<SimTime>(driver.elapsed(), 0);
  const SimTime stopAt = run.duration + run.drain;
  int exitCode = 0;

  const int threads =
      std::max<int>(1, static_cast<int>(flags.getInt("threads")));

  if (nodeIdx < numServers) {
    const auto mode =
        run.config.algorithm == proto::Algorithm::kVolumeDelayedInval
            ? core::InvalidationMode::kDelayed
            : core::InvalidationMode::kImmediate;

    // "Stable storage" = the durable log of the previous incarnations:
    // restore versions past anything a client might have seen (+2
    // covers one in-flight bump the crash may have lost) and present
    // a bumped epoch so reconnecting clients run MUST_RENEW_ALL. The
    // recovery rule runs on real wall clock: silent for one volume-
    // lease term + epsilon from THIS process's start. Computed once; a
    // sharded server hands the same snapshot to every shard (each only
    // ever touches the volumes routed to it).
    std::vector<std::pair<ObjectId, Version>> versions;
    std::vector<std::pair<VolumeId, Epoch>> epochs;
    SimTime recoverUntil = 0;
    if (coldRestart) {
      const rt::RunLog prior = rt::loadRunLog(logPath);
      std::vector<std::pair<std::uint64_t, Version>> maxV;
      for (const rt::WriteRecord& w : prior.writes) {
        bool found = false;
        for (auto& [obj, v] : maxV) {
          if (obj == raw(w.obj)) {
            v = std::max(v, w.version);
            found = true;
          }
        }
        if (!found) maxV.emplace_back(raw(w.obj), w.version);
      }
      for (const auto& [obj, v] : maxV) {
        versions.emplace_back(makeObjectId(obj), v + 2);
      }
      // Per-volume epoch resume: each volume continues from ITS last
      // logged value (+1 for the crash), not a server-wide scalar -- a
      // shared counter would let a quiet volume's epoch ride a busy
      // volume's crashes and mask a real regression.
      for (std::size_t v = 0; v < catalog.numVolumes(); ++v) {
        const VolumeId volId = makeVolumeId(v);
        if (catalog.volume(volId).server != self) continue;
        Epoch last = 1;
        for (const rt::EpochRecord& rec : prior.epochs) {
          if (rec.vol == volId) last = rec.epoch;  // log order: latest wins
        }
        epochs.emplace_back(volId, last + 1);
      }
      recoverUntil = addSat(std::max<SimTime>(driver.elapsed(), 0),
                            run.config.volumeTimeout + run.config.clockEpsilon);
    }

    using AppendFn = std::function<void(const std::string&)>;
    // appendFn rides into scheduled closures by value; it must stay a
    // non-const copy so the closures keep their nothrow move.
    const auto scheduleWrites = [&](sim::Scheduler& sched,
                                    core::VolumeServer& server,
                                    AppendFn appendFn, int shardIndex,
                                    int numShards) {
      for (const trace::TraceEvent& ev : run.workload.events) {
        if (ev.kind != trace::EventKind::kWrite) continue;
        if (catalog.object(ev.obj).server != self) continue;
        if (numShards > 1 &&
            raw(catalog.object(ev.obj).volume) %
                    static_cast<std::uint64_t>(numShards) !=
                static_cast<std::uint64_t>(shardIndex)) {
          continue;
        }
        if (ev.at <= resumeFrom) continue;
        const ObjectId obj = ev.obj;
        sched.scheduleAt(ev.at, [&sched, &server, appendFn, obj]() {
          const SimTime issuedAt = sched.now();
          appendFn(rt::formatWriteIssueLine(obj, issuedAt));
          server.write(obj, [&sched, appendFn, obj,
                             issuedAt](const proto::WriteResult& r) {
            rt::WriteRecord w;
            w.obj = obj;
            w.version = r.newVersion;
            w.issuedAt = issuedAt;
            w.completedAt = sched.now();
            w.delay = r.delay;
            appendFn(rt::formatWriteLine(w));
          });
        });
      }
    };

    if (threads > 1) {
      // Shard threads interleave on the log stream; serialize appends.
      std::mutex logMutex;
      const AppendFn appendLocked = [&append,
                                     &logMutex](const std::string& line) {
        std::lock_guard<std::mutex> lock(logMutex);
        append(line);
      };

      // VolumeServer keeps a reference to its ProtocolContext, so each
      // shard app owns the context by value, on the shard thread.
      struct ServerShard final : rt::ShardApp {
        proto::ProtocolContext ctx;
        core::VolumeServer server;
        ServerShard(const proto::ProtocolContext& c, NodeId id,
                    const proto::ProtocolConfig& cfg, core::InvalidationMode m)
            : ctx(c), server(ctx, id, cfg, m) {}
        net::MessageSink& sink() override { return server; }
      };

      rt::ShardedNode::Options sopts;
      sopts.alignT0Micros = flags.getInt("t0-micros");
      rt::ShardedNode sharded(
          driver, transport, static_cast<std::size_t>(threads),
          [&catalog, threads](const net::Message& m) {
            return static_cast<std::size_t>(
                raw(volumeKeyOf(m.payload, catalog)) %
                static_cast<std::uint64_t>(threads));
          },
          sopts);
      transport.attach(self, &sharded);

      sharded.start([&](rt::ShardedNode::ShardContext& sc)
                        -> std::unique_ptr<rt::ShardApp> {
        proto::ProtocolContext sctx{sc.driver.scheduler(), sc.transport,
                                    sc.metrics, catalog, nullptr};
        auto app = std::make_unique<ServerShard>(sctx, self, run.config, mode);
        sc.transport.attach(self, &app->server);
        if (coldRestart) {
          app->server.restoreAfterRestart(versions, epochs, recoverUntil);
        }
        // Each shard reports the epochs of the volumes it owns.
        for (std::size_t v = 0; v < catalog.numVolumes(); ++v) {
          const VolumeId vol = makeVolumeId(v);
          if (catalog.volume(vol).server != self) continue;
          if (v % static_cast<std::size_t>(threads) != sc.index) continue;
          appendLocked(rt::formatEpochLine(vol, app->server.volumeEpoch(vol)));
        }
        scheduleWrites(sc.driver.scheduler(), app->server, appendLocked,
                       static_cast<int>(sc.index), threads);
        return app;
      });
      driver.scheduler().scheduleAt(stopAt, [&driver]() { driver.stop(); });
      driver.run();
      sharded.stop();
      sharded.mergeMetricsInto(metrics);
    } else {
      core::VolumeServer server(ctx, self, run.config, mode);
      transport.attach(self, &server);
      if (coldRestart) {
        server.restoreAfterRestart(versions, epochs, recoverUntil);
      }
      // One epoch line per owned volume (the old harness logged only
      // volume 0, hiding every other volume from the ratchet check).
      for (std::size_t v = 0; v < catalog.numVolumes(); ++v) {
        const VolumeId vol = makeVolumeId(v);
        if (catalog.volume(vol).server != self) continue;
        append(rt::formatEpochLine(vol, server.volumeEpoch(vol)));
      }
      scheduleWrites(driver.scheduler(), server, append, 0, 1);
      driver.scheduler().scheduleAt(stopAt, [&driver]() { driver.stop(); });
      driver.run();
    }
  } else {
    core::VolumeClient client(ctx, self, run.config);
    transport.attach(self, &client);
    for (const trace::TraceEvent& ev : run.workload.events) {
      if (ev.kind != trace::EventKind::kRead) continue;
      if (ev.client != self) continue;
      if (ev.at <= resumeFrom) continue;
      const ObjectId obj = ev.obj;
      driver.scheduler().scheduleAt(
          ev.at, [&driver, &client, &append, obj, self]() {
            const SimTime issuedAt = driver.scheduler().now();
            client.read(obj, [&driver, &append, obj, self,
                              issuedAt](const proto::ReadResult& r) {
              rt::ReadRecord rec;
              rec.client = self;
              rec.obj = obj;
              rec.issuedAt = issuedAt;
              rec.completedAt = driver.scheduler().now();
              rec.ok = r.ok;
              rec.usedNetwork = r.usedNetwork;
              rec.version = r.version;
              append(rt::formatReadLine(rec));
            });
          });
    }
    driver.scheduler().scheduleAt(stopAt, [&driver]() { driver.stop(); });
    driver.run();
  }

  std::fclose(log);
  return exitCode;
}

// ---------------------------------------------------------------------
// parent mode: spawn workers, execute the plan, audit, replay in sim
// ---------------------------------------------------------------------

struct WorkerSpec {
  std::string execPath;
  std::vector<std::string> sharedArgs;  // everything but --node/--cold-restart
};

pid_t spawnWorker(const WorkerSpec& spec, std::uint32_t node,
                  bool coldRestart) {
  std::vector<std::string> args;
  args.push_back(spec.execPath);
  args.insert(args.end(), spec.sharedArgs.begin(), spec.sharedArgs.end());
  args.push_back("--node");
  args.push_back(std::to_string(node));
  if (coldRestart) args.push_back("--cold-restart");

  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(spec.execPath.c_str(), argv.data());
  std::perror("execv");
  ::_exit(127);
}

/// Reserve N distinct free loopback ports (bind 0, record, close). A
/// tiny race with other processes exists; workers that lose it abort
/// and the seed fails loudly rather than silently.
std::vector<std::uint16_t> probePorts(std::size_t n) {
  std::vector<std::uint16_t> ports;
  std::vector<int> fds;
  for (std::size_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      break;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);  // hold until all are picked, so they're distinct
  }
  for (const int fd : fds) ::close(fd);
  return ports;
}

struct SeedVerdict {
  std::uint64_t seed = 0;
  rt::ParityCounts real;
  std::int64_t simStale = 0;
  std::int64_t simLost = 0;
  std::int64_t simDelay = 0;
  std::vector<std::string> notes;
  bool workerTrouble = false;  // a worker exited non-zero unexpectedly

  std::int64_t simTotal() const { return simStale + simLost + simDelay; }
  bool pass() const {
    return !workerTrouble && real.total() == 0 && simTotal() == 0;
  }
};

SeedVerdict runSeed(std::uint64_t seed, const Flags& flags,
                    const std::string& logRoot, const std::string& execPath) {
  SeedVerdict verdict;
  verdict.seed = seed;
  const HarnessRun run = buildRun(seed, flags);
  const trace::Catalog& catalog = run.workload.catalog;
  const std::uint32_t numNodes = catalog.numNodes();
  const std::uint32_t numServers = catalog.numServers();

  const std::string logDir = logRoot + "/seed" + std::to_string(seed);
  ::mkdir(logDir.c_str(), 0755);

  const std::vector<std::uint16_t> ports = probePorts(numNodes);
  if (ports.size() != numNodes) {
    std::fprintf(stderr, "seed %llu: could not reserve %u ports\n",
                 static_cast<unsigned long long>(seed), numNodes);
    verdict.workerTrouble = true;
    return verdict;
  }
  std::string portsCsv;
  for (std::size_t i = 0; i < ports.size(); ++i) {
    if (i > 0) portsCsv += ",";
    portsCsv += std::to_string(ports[i]);
  }

  // Everything workers need to re-derive the identical run. t0 sits
  // slightly in the future so all workers are listening before the
  // shared timeline starts.
  const std::int64_t t0 = steadyNowMicros() + 400'000;
  WorkerSpec spec;
  spec.execPath = execPath;
  spec.sharedArgs = {
      "--run-seed",      std::to_string(seed),
      "--intensity",     flags.getString("intensity"),
      "--algorithm",     flags.getString("algorithm"),
      "--scenario",      flags.getString("scenario"),
      "--duration-ms",   std::to_string(flags.getInt("duration-ms")),
      "--skew-ms",       std::to_string(flags.getInt("skew-ms")),
      "--clients",       std::to_string(flags.getInt("clients")),
      "--objects",       std::to_string(flags.getInt("objects")),
      "--volumes-per-server",
      std::to_string(flags.getInt("volumes-per-server")),
      "--ports",         portsCsv,
      "--t0-micros",     std::to_string(t0),
      "--log-dir",       logDir,
      "--threads",       std::to_string(flags.getInt("threads")),
  };
  if (flags.getBool("break-invalidation")) {
    spec.sharedArgs.push_back("--break-invalidation");
  }

  std::vector<pid_t> pids(numNodes, -1);
  for (std::uint32_t i = 0; i < numNodes; ++i) {
    pids[i] = spawnWorker(spec, i, /*coldRestart=*/false);
  }

  // Execute the crash/recover lane against the live processes on the
  // shared raw timeline.
  rt::FaultInjector::Callbacks callbacks;
  callbacks.kill = [&](NodeId node, SimTime) {
    const std::uint32_t i = raw(node);
    if (i >= numNodes || pids[i] <= 0) return;
    ::kill(pids[i], SIGKILL);
    ::waitpid(pids[i], nullptr, 0);
    pids[i] = -1;
  };
  callbacks.respawn = [&](NodeId node, SimTime) {
    const std::uint32_t i = raw(node);
    if (i >= numNodes || pids[i] > 0) return;
    // Servers resume from their durable log; clients restart cold (a
    // fresh client process IS the cold cache).
    pids[i] = spawnWorker(spec, i, /*coldRestart=*/i < numServers);
  };
  rt::FaultInjector injector(run.plan, callbacks);

  const SimTime horizon = run.duration + run.drain;
  for (;;) {
    const SimTime now = steadyNowMicros() - t0;
    injector.advance(now);
    if (now >= horizon) break;
    ::usleep(5000);
  }

  // Workers self-stop at horizon; give them a moment, then force.
  const std::int64_t reapDeadline = steadyNowMicros() + 3'000'000;
  for (std::uint32_t i = 0; i < numNodes; ++i) {
    if (pids[i] <= 0) continue;
    for (;;) {
      int status = 0;
      const pid_t r = ::waitpid(pids[i], &status, WNOHANG);
      if (r == pids[i]) {
        if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
          std::fprintf(stderr, "seed %llu: worker %u exited abnormally\n",
                       static_cast<unsigned long long>(seed), i);
          verdict.workerTrouble = true;
        }
        break;
      }
      if (r < 0) break;  // already reaped (killed by the injector)
      if (steadyNowMicros() > reapDeadline) {
        ::kill(pids[i], SIGKILL);
        ::waitpid(pids[i], nullptr, 0);
        std::fprintf(stderr, "seed %llu: worker %u hung past drain\n",
                     static_cast<unsigned long long>(seed), i);
        verdict.workerTrouble = true;
        break;
      }
      ::usleep(10'000);
    }
  }

  // ---- audit the real run ----
  rt::RunLog merged;
  for (std::uint32_t i = 0; i < numNodes; ++i) {
    merged.merge(rt::loadRunLog(nodeLogPath(logDir, i)));
  }
  verdict.real = rt::checkRealRun(merged, checkerOptionsFor(run),
                                  &verdict.notes);

  // ---- replay the identical (workload, plan, seed) in the simulator ----
  driver::SimOptions sim;
  sim.networkLatency = msec(5);
  sim.faultPlan = std::make_shared<const net::FaultPlan>(run.plan);
  sim.enableOracle = true;
  sim.oracleAuditPeriod = msec(500);
  sim.oracleSkewBound = run.skewBudget;
  driver::Simulation replay(catalog, run.config, sim);
  replay.run(run.workload.events);
  const driver::ConsistencyOracle* oracle = replay.oracle();
  verdict.simStale =
      oracle->violations(driver::ViolationKind::kStaleRead) +
      oracle->violations(driver::ViolationKind::kCacheInconsistency);
  verdict.simLost = oracle->violations(driver::ViolationKind::kLostWrite);
  verdict.simDelay =
      oracle->violations(driver::ViolationKind::kWriteDelayBound) +
      oracle->violations(driver::ViolationKind::kBlockedWrite);
  return verdict;
}

int parentMain(const Flags& flags, const std::string& execPath) {
  std::string logRoot = flags.getString("log-dir");
  if (logRoot.empty()) {
    char tmpl[] = "/tmp/vlease_rt.XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    if (dir == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    logRoot = dir;
  }

  const std::int64_t seeds = flags.getInt("seeds");
  const std::int64_t seedBase = flags.getInt("seed-base");
  std::printf("vlease_rt: %lld seed(s), intensity=%s, algorithm=%s, "
              "scenario=%s, duration=%lldms, logs in %s\n",
              static_cast<long long>(seeds),
              flags.getString("intensity").c_str(),
              flags.getString("algorithm").c_str(),
              flags.getString("scenario").c_str(),
              static_cast<long long>(flags.getInt("duration-ms")),
              logRoot.c_str());
  std::printf("%-8s %-28s %-28s %s\n", "seed", "real(stale/lost/delay/rec/ep)",
              "sim(stale/lost/delay)", "verdict");

  int failures = 0;
  for (std::int64_t s = 0; s < seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(seedBase + s);
    const SeedVerdict v = runSeed(seed, flags, logRoot, execPath);
    char realCol[64];
    std::snprintf(realCol, sizeof(realCol),
                  "%lld/%lld/%lld/%lld/%lld",
                  static_cast<long long>(v.real.staleReads),
                  static_cast<long long>(v.real.lostWrites),
                  static_cast<long long>(v.real.writeDelays),
                  static_cast<long long>(v.real.earlyRecoveryWrites),
                  static_cast<long long>(v.real.epochRegressions));
    char simCol[64];
    std::snprintf(simCol, sizeof(simCol), "%lld/%lld/%lld",
                  static_cast<long long>(v.simStale),
                  static_cast<long long>(v.simLost),
                  static_cast<long long>(v.simDelay));
    std::printf("%-8llu %-28s %-28s %s%s\n",
                static_cast<unsigned long long>(seed), realCol, simCol,
                v.pass() ? "PASS" : "FAIL",
                v.workerTrouble ? " (worker trouble)" : "");
    for (const std::string& note : v.notes) {
      std::printf("         %s\n", note.c_str());
    }
    if (!v.pass()) ++failures;
  }
  std::printf("parity: %s\n", failures == 0 ? "CONSISTENT" : "DIVERGED");
  return failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------
// loopback benchmark: messages/second through two real TcpTransports
// ---------------------------------------------------------------------

class EchoSink final : public net::MessageSink {
 public:
  EchoSink(net::Transport& transport, NodeId self)
      : transport_(transport), self_(self) {}
  void deliver(const net::Message& msg) override {
    ++received_;
    net::Message reply;
    reply.from = self_;
    reply.to = msg.from;
    reply.payload = msg.payload;
    transport_.send(std::move(reply));
  }
  std::int64_t received() const { return received_; }

 private:
  net::Transport& transport_;
  NodeId self_;
  std::int64_t received_ = 0;
};

int benchLoopback(const Flags& flags) {
  const std::int64_t benchMs = flags.getInt("bench-ms");
  const int threads =
      std::max<int>(1, static_cast<int>(flags.getInt("threads")));
  // Concurrent ping-pong messages in flight, spread across shards by
  // object id so every shard stays busy.
  const int balls = 16 * threads;

  rt::RealTimeDriver driver;
  stats::Metrics metrics;
  rt::TcpTransport a(driver, metrics, 0);
  rt::TcpTransport b(driver, metrics, 0);
  const NodeId nodeA = makeNodeId(0);
  const NodeId nodeB = makeNodeId(1);
  a.addPeer(nodeB, "127.0.0.1", b.listenPort());
  b.addPeer(nodeA, "127.0.0.1", a.listenPort());

  EchoSink sinkA(a, nodeA);
  EchoSink sinkB(b, nodeB);
  a.attach(nodeA, &sinkA);

  // threads > 1: B is a sharded node -- echoes happen on shard threads
  // and ride the SPSC queues both ways, so the bench measures the whole
  // sharded path, not just the sockets.
  struct EchoApp final : rt::ShardApp {
    EchoSink echo;
    std::int64_t* out;  // written on shard-thread destruction, read after join
    EchoApp(net::Transport& t, NodeId self, std::int64_t* o)
        : echo(t, self), out(o) {}
    ~EchoApp() override { *out = echo.received(); }
    net::MessageSink& sink() override { return echo; }
  };
  std::vector<std::int64_t> shardEchoes(static_cast<std::size_t>(threads), 0);
  std::unique_ptr<rt::ShardedNode> sharded;
  if (threads > 1) {
    sharded = std::make_unique<rt::ShardedNode>(
        driver, b, static_cast<std::size_t>(threads),
        [threads](const net::Message& m) {
          const auto* pr = std::get_if<net::PollRequest>(&m.payload);
          const std::uint64_t key = pr ? raw(pr->obj) : 0;
          return static_cast<std::size_t>(
              key % static_cast<std::uint64_t>(threads));
        });
    b.attach(nodeB, sharded.get());
    sharded->start([&](rt::ShardedNode::ShardContext& sc)
                       -> std::unique_ptr<rt::ShardApp> {
      return std::make_unique<EchoApp>(sc.transport, nodeB,
                                       &shardEchoes[sc.index]);
    });
  } else {
    b.attach(nodeB, &sinkB);
  }

  for (int i = 0; i < balls; ++i) {
    net::Message ping;
    ping.from = nodeA;
    ping.to = nodeB;
    ping.payload = net::PollRequest{makeObjectId(static_cast<std::uint64_t>(i)),
                                    1};
    a.send(std::move(ping));
  }

  const SimTime start = driver.elapsed();
  driver.run(/*forMicros=*/benchMs * 1000);
  const double elapsedSec =
      static_cast<double>(driver.elapsed() - start) / 1e6;
  if (sharded) sharded->stop();
  std::int64_t echoedB = sinkB.received();
  for (const std::int64_t e : shardEchoes) echoedB += e;
  const std::int64_t messages = sinkA.received() + echoedB;
  const double perSec =
      elapsedSec > 0 ? static_cast<double>(messages) / elapsedSec : 0.0;

  std::printf("{\"benchmark\": \"RtLoopback\", \"threads\": %d, "
              "\"messages\": %lld, "
              "\"seconds\": %.3f, \"messages_per_second\": %.0f, "
              "\"frames_sent\": %lld, \"frames_received\": %lld}\n",
              threads, static_cast<long long>(messages), elapsedSec, perSec,
              static_cast<long long>(a.framesSent() + b.framesSent()),
              static_cast<long long>(a.framesReceived() +
                                     b.framesReceived()));
  return messages > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.addInt("seeds", 8, "number of fault-plan seeds");
  flags.addInt("seed-base", 1, "first seed");
  flags.addString("intensity", "low", "fault intensity: low|medium|high");
  flags.addString("algorithm", "volume", "volume|delay");
  flags.addString("scenario", "chaos",
                  "chaos (seeded FaultPlan) | recovery (deterministic "
                  "mid-run server SIGKILL + cold restart)");
  flags.addInt("duration-ms", 6000, "workload + fault horizon per seed");
  flags.addInt("skew-ms", 200,
               "per-node clock-skew budget executed by offsetting worker "
               "RealTimeDriver clocks (0 = off)");
  flags.addInt("clients", 3, "client processes per seed");
  flags.addInt("objects", 5, "objects on the server");
  flags.addInt("volumes-per-server", 2,
               "volumes on the server; objects spread round-robin, so the "
               "default exercises cross-volume dispatch and per-volume "
               "epochs (1 = the old single-volume harness)");
  flags.addBool("break-invalidation", false,
                "negative control: clients ack invalidations without "
                "applying them; the parity check MUST fail");
  flags.addString("log-dir", "",
                  "run-log directory (parent: root, default mkdtemp; "
                  "workers: their seed's directory)");
  flags.addInt("threads", 1,
               "server protocol shards (1 = classic single-threaded loop; "
               "N>1 = I/O thread + N shard threads, volumes hashed across "
               "shards); also shards the --bench-loopback echo side");
  // worker mode
  flags.addInt("node", -1, "worker mode: host node index");
  flags.addInt("run-seed", 0, "worker mode: the seed being run");
  flags.addString("ports", "", "worker mode: csv of per-node ports");
  flags.addInt("t0-micros", 0,
               "worker mode: shared steady-clock zero instant");
  flags.addBool("cold-restart", false,
                "worker mode: server resumes from its durable log and "
                "waits out one lease term + epsilon before writing");
  // bench mode
  flags.addBool("bench-loopback", false,
                "run the loopback messages/second benchmark and exit");
  flags.addInt("bench-ms", 2000, "loopback benchmark duration");
  if (!flags.parse(argc, argv)) return 1;

  if (flags.getBool("bench-loopback")) return benchLoopback(flags);
  if (flags.getInt("node") >= 0) return workerMain(flags);

  char exe[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  if (n <= 0) {
    std::fprintf(stderr, "cannot resolve /proc/self/exe\n");
    return 1;
  }
  exe[n] = '\0';
  return parentMain(flags, exe);
}
