// vlease_tracegen: generate a BU-like workload (reads + the paper's
// synthetic writes) and save it in the VLTRACE text format, so
// experiments can be re-run bit-for-bit, diffed, or fed to external
// tools.
//
//   $ vlease_tracegen --out trace.vlt --scale 0.1 --seed 1998
//   $ vlease_tracegen --out bursty.vlt --bursty
#include <cstdio>

#include "driver/workloads.h"
#include "trace/trace_io.h"
#include "util/flags.h"

using namespace vlease;

int main(int argc, char** argv) {
  Flags flags;
  flags.addString("out", "trace.vlt", "output trace file");
  flags.addDouble("scale", 0.1, "workload scale (1.0 = paper-size trace)");
  flags.addInt("seed", 1998, "deterministic seed");
  flags.addInt("servers", 1000, "number of servers (= volumes)");
  flags.addInt("clients", 33, "number of clients");
  flags.addInt("days", 120, "trace duration in days");
  flags.addBool("bursty", false, "bursty-write workload (paper Fig. 9)");
  if (!flags.parse(argc, argv)) return 1;

  driver::WorkloadOptions opts;
  opts.scale = flags.getDouble("scale");
  opts.seed = static_cast<std::uint64_t>(flags.getInt("seed"));
  opts.numServers = static_cast<std::uint32_t>(flags.getInt("servers"));
  opts.numClients = static_cast<std::uint32_t>(flags.getInt("clients"));
  opts.duration = days(flags.getInt("days"));
  opts.burstyWrites = flags.getBool("bursty");

  driver::Workload workload = driver::buildWorkload(opts);
  const std::string out = flags.getString("out");
  if (!trace::writeTraceToFile(out, workload.catalog, workload.events)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf(
      "wrote %s: %zu objects in %zu volumes on %u servers, %u clients, "
      "%lld reads + %lld writes over %lld days\n",
      out.c_str(), workload.catalog.numObjects(),
      workload.catalog.numVolumes(), workload.catalog.numServers(),
      workload.catalog.numClients(),
      static_cast<long long>(workload.readCount),
      static_cast<long long>(workload.writeCount),
      static_cast<long long>(flags.getInt("days")));
  return 0;
}
