// Unit tests for the discrete-event scheduler: ordering, FIFO ties,
// cancellation, runUntil semantics, and reentrant scheduling.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace vlease::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZeroEmpty) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pendingCount(), 0u);
  EXPECT_EQ(s.run(), 0);
}

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(30, [&] { order.push_back(3); });
  s.scheduleAt(10, [&] { order.push_back(1); });
  s.scheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, SameInstantIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.scheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  SimTime seen = -1;
  s.scheduleAt(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
}

TEST(SchedulerTest, ScheduleAfterUsesNow) {
  Scheduler s;
  SimTime seen = -1;
  s.scheduleAt(10, [&] {
    s.scheduleAfter(5, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 15);
}

TEST(SchedulerTest, ReentrantSchedulingSameTickRunsBeforeLaterTick) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(10, [&] {
    order.push_back(1);
    // Same-instant chain: must run before the event at t=11.
    s.scheduleAt(10, [&] { order.push_back(2); });
  });
  s.scheduleAt(11, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  TimerHandle h = s.scheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.run(), 0);
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelAfterFiringIsNoop) {
  Scheduler s;
  TimerHandle h = s.scheduleAt(10, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt counters
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, PendingCountTracksCancellation) {
  Scheduler s;
  TimerHandle a = s.scheduleAt(1, [] {});
  TimerHandle b = s.scheduleAt(2, [] {});
  EXPECT_EQ(s.pendingCount(), 2u);
  a.cancel();
  EXPECT_EQ(s.pendingCount(), 1u);
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
  (void)b;
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<SimTime> fired;
  for (SimTime t : {5, 10, 15, 20}) {
    s.scheduleAt(t, [&fired, t] { fired.push_back(t); });
  }
  s.runUntil(10);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(s.now(), 10);
  s.runUntil(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(s.now(), 100);  // advances even past the last event
}

TEST(SchedulerTest, RunUntilAdvancesClockWithNoEvents) {
  Scheduler s;
  s.runUntil(1234);
  EXPECT_EQ(s.now(), 1234);
}

TEST(SchedulerTest, StepFiresExactlyOne) {
  Scheduler s;
  int count = 0;
  s.scheduleAt(1, [&] { ++count; });
  s.scheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, FiredCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.scheduleAt(i, [] {});
  s.run();
  EXPECT_EQ(s.firedCount(), 7);
}

TEST(SchedulerTest, CancelledEventsSkippedByStep) {
  Scheduler s;
  bool ran = false;
  TimerHandle h = s.scheduleAt(1, [&] { ran = true; });
  s.scheduleAt(2, [] {});
  h.cancel();
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.now(), 2);
}

TEST(SchedulerDeathTest, SchedulingInPastAborts) {
  Scheduler s;
  s.scheduleAt(10, [] {});
  s.run();
  EXPECT_DEATH(s.scheduleAt(5, [] {}), "cannot schedule in the past");
}

}  // namespace
}  // namespace vlease::sim
