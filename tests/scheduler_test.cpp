// Unit tests for the discrete-event scheduler: ordering, FIFO ties,
// cancellation, runUntil semantics, and reentrant scheduling.
#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace vlease::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZeroEmpty) {
  Scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pendingCount(), 0u);
  EXPECT_EQ(s.run(), 0);
}

TEST(SchedulerTest, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(30, [&] { order.push_back(3); });
  s.scheduleAt(10, [&] { order.push_back(1); });
  s.scheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(SchedulerTest, SameInstantIsFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    s.scheduleAt(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(SchedulerTest, ClockAdvancesToEventTime) {
  Scheduler s;
  SimTime seen = -1;
  s.scheduleAt(42, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 42);
}

TEST(SchedulerTest, ScheduleAfterUsesNow) {
  Scheduler s;
  SimTime seen = -1;
  s.scheduleAt(10, [&] {
    s.scheduleAfter(5, [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, 15);
}

TEST(SchedulerTest, ReentrantSchedulingSameTickRunsBeforeLaterTick) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(10, [&] {
    order.push_back(1);
    // Same-instant chain: must run before the event at t=11.
    s.scheduleAt(10, [&] { order.push_back(2); });
  });
  s.scheduleAt(11, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, CancelPreventsFiring) {
  Scheduler s;
  bool fired = false;
  TimerHandle h = s.scheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.run(), 0);
  EXPECT_FALSE(fired);
}

TEST(SchedulerTest, CancelAfterFiringIsNoop) {
  Scheduler s;
  TimerHandle h = s.scheduleAt(10, [] {});
  s.run();
  EXPECT_FALSE(h.pending());
  h.cancel();  // must not crash or corrupt counters
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, PendingCountTracksCancellation) {
  Scheduler s;
  TimerHandle a = s.scheduleAt(1, [] {});
  TimerHandle b = s.scheduleAt(2, [] {});
  EXPECT_EQ(s.pendingCount(), 2u);
  a.cancel();
  EXPECT_EQ(s.pendingCount(), 1u);
  s.run();
  EXPECT_EQ(s.pendingCount(), 0u);
  (void)b;
}

TEST(SchedulerTest, RunUntilStopsAtBoundaryInclusive) {
  Scheduler s;
  std::vector<SimTime> fired;
  for (SimTime t : {5, 10, 15, 20}) {
    s.scheduleAt(t, [&fired, t] { fired.push_back(t); });
  }
  s.runUntil(10);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(s.now(), 10);
  s.runUntil(100);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(s.now(), 100);  // advances even past the last event
}

TEST(SchedulerTest, RunUntilAdvancesClockWithNoEvents) {
  Scheduler s;
  s.runUntil(1234);
  EXPECT_EQ(s.now(), 1234);
}

TEST(SchedulerTest, StepFiresExactlyOne) {
  Scheduler s;
  int count = 0;
  s.scheduleAt(1, [&] { ++count; });
  s.scheduleAt(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(s.step());
}

TEST(SchedulerTest, FiredCountAccumulates) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.scheduleAt(i, [] {});
  s.run();
  EXPECT_EQ(s.firedCount(), 7);
}

TEST(SchedulerTest, CancelledEventsSkippedByStep) {
  Scheduler s;
  bool ran = false;
  TimerHandle h = s.scheduleAt(1, [&] { ran = true; });
  s.scheduleAt(2, [] {});
  h.cancel();
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.now(), 2);
}

TEST(SchedulerDeathTest, SchedulingInPastAborts) {
  Scheduler s;
  s.scheduleAt(10, [] {});
  s.run();
  EXPECT_DEATH(s.scheduleAt(5, [] {}), "cannot schedule in the past");
}

// ---- deadline (timing-wheel) lane ----

TEST(SchedulerDeadlineTest, FiresAtExactDeadline) {
  Scheduler s;
  SimTime seen = -1;
  s.scheduleDeadline(1'000'000, [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, 1'000'000);
  EXPECT_EQ(s.now(), 1'000'000);
}

TEST(SchedulerDeadlineTest, MixedLanesShareOneTotalOrder) {
  Scheduler s;
  std::vector<int> order;
  // Interleave lanes across a range that spans several wheel levels;
  // firing must follow the global (time, seq) order regardless of lane.
  s.scheduleDeadline(70, [&] { order.push_back(4); });
  s.scheduleAt(70, [&] { order.push_back(5); });  // same t, later seq
  s.scheduleAt(10, [&] { order.push_back(1); });
  s.scheduleDeadline(1'000'000, [&] { order.push_back(6); });
  s.scheduleDeadline(20, [&] { order.push_back(2); });
  s.scheduleAt(30, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}

TEST(SchedulerDeadlineTest, SameInstantDeadlineIsFifoWithExactLane) {
  Scheduler s;
  std::vector<int> order;
  s.scheduleAt(5, [&] {
    s.scheduleDeadline(5, [&] { order.push_back(2); });  // == now: FIFO lane
    s.scheduleAt(5, [&] { order.push_back(3); });
    order.push_back(1);
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerDeadlineTest, CancelPreventsFiringAndReclaims) {
  Scheduler s;
  bool fired = false;
  TimerHandle h = s.scheduleDeadline(hours(10), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  EXPECT_EQ(s.pendingCount(), 1u);
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_EQ(s.pendingCount(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.run(), 0);
  EXPECT_FALSE(fired);
}

TEST(SchedulerDeadlineTest, RenewPatternScheduleCancelRepeat) {
  // The lease-renewal lifecycle the wheel exists for: a far deadline is
  // repeatedly cancelled and replaced; only the last one fires.
  Scheduler s;
  int fires = 0;
  TimerHandle h;
  for (int i = 0; i < 10'000; ++i) {
    h.cancel();
    h = s.scheduleDeadlineAfter(sec(30), [&] { ++fires; });
  }
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), sec(30));
}

TEST(SchedulerDeadlineTest, RunUntilLeavesFarDeadlinesParked) {
  Scheduler s;
  bool fired = false;
  s.scheduleDeadline(sec(100), [&] { fired = true; });
  s.runUntil(sec(1));
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.now(), sec(1));
  EXPECT_EQ(s.pendingCount(), 1u);
  s.runUntil(sec(100));
  EXPECT_TRUE(fired);
}

TEST(SchedulerDeadlineTest, CancelInsideCallbackSameInstant) {
  Scheduler s;
  std::vector<int> order;
  TimerHandle b;
  s.scheduleDeadline(5, [&] {
    order.push_back(1);
    b.cancel();
  });
  b = s.scheduleDeadline(5, [&] { order.push_back(2); });
  s.scheduleDeadline(5, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SchedulerDeadlineTest, HandleOutlivesSchedulerWithWheelEntry) {
  TimerHandle kept;
  {
    Scheduler s;
    kept = s.scheduleDeadline(sec(10), [] {});
    EXPECT_TRUE(kept.pending());
  }
  EXPECT_FALSE(kept.pending());
  kept.cancel();  // must be a safe no-op
}

TEST(SchedulerDeadlineDeathTest, SchedulingInPastAborts) {
  Scheduler s;
  s.scheduleAt(10, [] {});
  s.run();
  EXPECT_DEATH(s.scheduleDeadline(5, [] {}), "cannot schedule in the past");
}

}  // namespace

// ---- generation-wraparound guard ----

/// Test-only backdoor: lets the regression test below fast-forward a
/// slot's generation counter to just below the retirement threshold
/// instead of cycling one slot 2^31 times.
struct SchedulerTestPeer {
  static std::uint32_t slotOf(const TimerHandle& h) { return h.slot_; }
  static std::uint32_t gen(const Scheduler& s, std::uint32_t slot) {
    return s.gens_[slot];
  }
  static void setGen(Scheduler& s, std::uint32_t slot, std::uint32_t gen) {
    s.gens_[slot] = gen;
  }
  static constexpr std::uint32_t genRetire() { return Scheduler::kGenRetire; }
};

namespace {

TEST(SchedulerGenerationTest, SlotNearWrapIsRetiredNotRecycled) {
  Scheduler s;
  // Burn one lifecycle to learn which arena slot the scheduler hands out
  // first (slot recycling is LIFO, so the next schedule reuses it).
  TimerHandle h0 = s.scheduleAt(1, [] {});
  const std::uint32_t slot = SchedulerTestPeer::slotOf(h0);
  s.run();
  // Fast-forward the slot to one lifecycle before the wrap guard.
  SchedulerTestPeer::setGen(s, slot, SchedulerTestPeer::genRetire() - 2);
  int fires = 0;
  TimerHandle last = s.scheduleAt(2, [&] { ++fires; });
  ASSERT_EQ(SchedulerTestPeer::slotOf(last), slot);  // recycled as usual
  s.run();
  EXPECT_EQ(fires, 1);
  // The firing pushed the counter to the threshold: the slot is now
  // retired. All later schedules must draw fresh slots, and the stale
  // handle must stay dead forever.
  EXPECT_EQ(SchedulerTestPeer::gen(s, slot), SchedulerTestPeer::genRetire());
  for (int i = 0; i < 100; ++i) {
    TimerHandle h = s.scheduleAt(s.now() + 1, [] {});
    EXPECT_NE(SchedulerTestPeer::slotOf(h), slot);
    s.run();
  }
  EXPECT_EQ(SchedulerTestPeer::gen(s, slot), SchedulerTestPeer::genRetire());
  EXPECT_FALSE(last.pending());
  last.cancel();  // no-op: may not disturb any live event
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerGenerationTest, DeadlineCancelAtWrapRetiresEagerly) {
  Scheduler s;
  TimerHandle h0 = s.scheduleAt(1, [] {});
  const std::uint32_t slot = SchedulerTestPeer::slotOf(h0);
  s.run();
  SchedulerTestPeer::setGen(s, slot, SchedulerTestPeer::genRetire() - 2);
  // Deadline-lane cancel reclaims eagerly; at the threshold it must
  // retire the slot instead of re-listing it.
  TimerHandle h = s.scheduleDeadline(sec(1), [] {});
  ASSERT_EQ(SchedulerTestPeer::slotOf(h), slot);
  h.cancel();
  EXPECT_EQ(SchedulerTestPeer::gen(s, slot), SchedulerTestPeer::genRetire());
  TimerHandle next = s.scheduleDeadline(sec(1), [] {});
  EXPECT_NE(SchedulerTestPeer::slotOf(next), slot);
  next.cancel();
}

}  // namespace
}  // namespace vlease::sim
