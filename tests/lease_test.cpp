// Tests for the server-driven baselines: Callback, Lease(t), and
// BestEffortLease(t).
#include <gtest/gtest.h>

#include "proto/lease.h"
#include "proto_fixture.h"

namespace vlease::proto {
namespace {

using testing::ProtoHarness;

ProtocolConfig leaseConfig(Algorithm algorithm, SimDuration t = sec(100)) {
  ProtocolConfig config;
  config.algorithm = algorithm;
  config.objectTimeout = t;
  config.msgTimeout = sec(10);
  return config;
}

// ---- Lease ----

TEST(LeaseTest, CacheHitWithinLease) {
  ProtoHarness h(leaseConfig(Algorithm::kLease));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);
  h.advanceTo(sec(50));
  EXPECT_FALSE(h.read(0, 0).usedNetwork);
  h.advanceTo(sec(101));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);  // lease expired
}

TEST(LeaseTest, RenewalWithoutDataWhenUnchanged) {
  ProtoHarness h(leaseConfig(Algorithm::kLease));
  EXPECT_TRUE(h.read(0, 0).fetchedData);
  h.advanceTo(sec(200));
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_FALSE(r.fetchedData);  // version unchanged: lease-only renewal
}

TEST(LeaseTest, WriteInvalidatesValidHoldersAndWaitsForAcks) {
  ProtoHarness h(leaseConfig(Algorithm::kLease));
  h.read(0, 0);
  h.read(1, 0);
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);  // both clients acked within the instant
  EXPECT_EQ(w.newVersion, 2);
  // 2 invalidations + 2 acks.
  EXPECT_EQ(h.metrics().totalMessages(), before + 4);
}

TEST(LeaseTest, WriteSkipsExpiredHolders) {
  ProtoHarness h(leaseConfig(Algorithm::kLease));
  h.read(0, 0);
  h.advanceTo(sec(150));  // lease expired
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
  EXPECT_EQ(h.metrics().totalMessages(), before);  // nobody to invalidate
}

TEST(LeaseTest, InvalidatedClientRefetches) {
  ProtoHarness h(leaseConfig(Algorithm::kLease));
  h.read(0, 0);
  h.write(0);
  auto r = h.read(0, 0);  // lease still valid in time, but copy was dropped
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(LeaseTest, WriteBlockedByPartitionCommitsAtLeaseExpiry) {
  ProtoHarness h(leaseConfig(Algorithm::kLease, sec(100)));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.advanceTo(sec(30));
  h.network().failures().isolate(h.client(0));
  auto w = h.write(0);  // runs the scheduler until commit
  EXPECT_FALSE(w.blocked);
  // Committed exactly when the client's lease drained: lease granted at
  // ~t=0.02 for 100s.
  EXPECT_GE(w.delay, sec(69));
  EXPECT_LE(w.delay, sec(71));
  EXPECT_EQ(h.metrics().delayedWrites(), 1);
}

TEST(LeaseTest, AckUnblocksBeforeExpiry) {
  ProtoHarness h(leaseConfig(Algorithm::kLease, sec(1000)));
  h.network().setLatency(sec(1));
  h.read(0, 0);
  auto w = h.write(0);  // invalidation RTT = 2 s
  EXPECT_NEAR(toSeconds(w.delay), 2.0, 0.1);
}

TEST(LeaseTest, GrantDeferredDuringPendingWrite) {
  // With latency, a lease request arriving mid-write must not be granted
  // until the write commits -- and then must carry the new version.
  ProtoHarness h(leaseConfig(Algorithm::kLease, sec(1000)));
  h.network().setLatency(msec(500));
  h.read(0, 0);
  h.sim->issueWrite(makeObjectId(0), nullptr);  // invalidation in flight
  proto::ReadResult result;
  bool done = false;
  h.sim->issueRead(h.client(1), makeObjectId(0),
                   [&](const proto::ReadResult& r) {
                     result = r;
                     done = true;
                   });
  h.advanceTo(h.scheduler().now() + sec(10));
  ASSERT_TRUE(done);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.version, 2);  // never saw the doomed version 1
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(LeaseTest, QueuedWritesSerialize) {
  ProtoHarness h(leaseConfig(Algorithm::kLease, sec(1000)));
  h.network().setLatency(msec(100));
  h.read(0, 0);
  h.sim->issueWrite(makeObjectId(0), nullptr);
  h.sim->issueWrite(makeObjectId(0), nullptr);
  auto w = h.write(0);  // third write
  EXPECT_EQ(w.newVersion, 4);
  EXPECT_EQ(h.metrics().writes(), 3);
}

TEST(LeaseTest, StateAccountingTracksLeaseLifetime) {
  ProtoHarness h(leaseConfig(Algorithm::kLease, sec(100)));
  h.read(0, 0);  // one 16-byte lease record live for 100 s
  h.advanceTo(sec(400));
  h.sim->finish();
  // Average over 400 s horizon: 16 B * 100 s / 400 s = 4 B.
  EXPECT_NEAR(h.metrics().avgStateBytes(h.server()), 4.0, 0.1);
}

// ---- Callback ----

TEST(CallbackTest, RegistrationNeverExpires) {
  ProtoHarness h(leaseConfig(Algorithm::kCallback));
  h.read(0, 0);
  h.advanceTo(days(30));
  EXPECT_FALSE(h.read(0, 0).usedNetwork);  // still registered
}

TEST(CallbackTest, WriteNotifiesAllRegisteredClients) {
  ProtoHarness h(leaseConfig(Algorithm::kCallback));
  h.read(0, 0);
  h.read(1, 0);
  h.advanceTo(days(10));  // leases would long have expired
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  EXPECT_EQ(h.metrics().totalMessages(), before + 4);
}

TEST(CallbackTest, WriteBlockedForeverIsFlagged) {
  ProtoHarness h(leaseConfig(Algorithm::kCallback));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  auto w = h.write(0);  // force-committed after msgTimeout
  EXPECT_TRUE(w.blocked);
  EXPECT_EQ(h.metrics().blockedWrites(), 1);
}

TEST(CallbackTest, BlockedClientRetriedOnNextWrite) {
  ProtoHarness h(leaseConfig(Algorithm::kCallback));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  EXPECT_TRUE(h.write(0).blocked);
  h.network().failures().deisolate(h.client(0));
  auto w = h.write(0);  // the registration survived; this one succeeds
  EXPECT_FALSE(w.blocked);
}

// ---- Best Effort Lease ----

TEST(BestEffortTest, WriteNeverWaits) {
  ProtoHarness h(leaseConfig(Algorithm::kBestEffortLease, sec(100)));
  h.network().setLatency(sec(5));
  h.read(0, 0);
  h.advanceTo(sec(20));
  const SimTime before = h.scheduler().now();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
  EXPECT_EQ(h.scheduler().now(), before);
}

TEST(BestEffortTest, ClientsDoNotAck) {
  ProtoHarness h(leaseConfig(Algorithm::kBestEffortLease, sec(100)));
  h.read(0, 0);
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  h.advanceTo(h.scheduler().now() + sec(1));
  EXPECT_EQ(h.metrics().totalMessages(), before + 1);  // invalidation only
}

TEST(BestEffortTest, LostInvalidationYieldsBoundedStaleness) {
  ProtoHarness h(leaseConfig(Algorithm::kBestEffortLease, sec(100)));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // invalidation dropped; write proceeded anyway
  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);  // lease still valid -> stale local read
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1);
  EXPECT_EQ(h.metrics().staleReads(), 1);

  // ...but bounded: after the lease expires the client revalidates.
  h.advanceTo(sec(101));
  EXPECT_EQ(h.read(0, 0).version, 2);
}

TEST(BestEffortTest, DeliveredInvalidationPreventsStaleness) {
  ProtoHarness h(leaseConfig(Algorithm::kBestEffortLease, sec(100)));
  h.read(0, 0);
  h.write(0);
  auto r = h.read(0, 0);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

// ---- cross-algorithm sanity ----

TEST(LeaseFamilyTest, CallbackEqualsInfiniteLeaseFailureFree) {
  for (std::uint64_t obj : {0ull, 1ull}) {
    ProtoHarness callback(leaseConfig(Algorithm::kCallback));
    ProtoHarness infinite(leaseConfig(Algorithm::kLease, days(365 * 100)));
    for (ProtoHarness* h : {&callback, &infinite}) {
      h->read(0, obj);
      h->read(1, obj);
      h->advanceTo(days(3));
      h->write(obj);
      h->read(0, obj);
      h->advanceTo(days(40));
      h->read(1, obj);
      h->sim->finish();
    }
    EXPECT_EQ(callback.metrics().totalMessages(),
              infinite.metrics().totalMessages());
    EXPECT_EQ(callback.metrics().staleReads(), 0);
    EXPECT_EQ(infinite.metrics().staleReads(), 0);
  }
}

}  // namespace
}  // namespace vlease::proto
