// Tests for the paper's contribution: Volume Leases and Volume Leases
// with Delayed Invalidations -- read paths, write paths, the Unreachable
// set, the reconnection exchange, epochs/crash recovery, pending lists,
// the d discard parameter, and the piggyback ablation.
#include <gtest/gtest.h>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "proto_fixture.h"

namespace vlease::core {
namespace {

using proto::Algorithm;
using proto::ProtocolConfig;
using testing::ProtoHarness;

ProtocolConfig volumeConfig(Algorithm algorithm = Algorithm::kVolumeLease,
                            SimDuration t = sec(1000),
                            SimDuration tv = sec(10)) {
  ProtocolConfig config;
  config.algorithm = algorithm;
  config.objectTimeout = t;
  config.volumeTimeout = tv;
  config.msgTimeout = sec(5);
  return config;
}

VolumeServer& vserver(ProtoHarness& h, std::uint32_t idx = 0) {
  return dynamic_cast<VolumeServer&>(h.serverNode(idx));
}
VolumeClient& vclient(ProtoHarness& h, std::uint32_t idx) {
  return dynamic_cast<VolumeClient&>(h.clientNode(idx));
}
constexpr VolumeId kVol = makeVolumeId(0);

// ---------------------------------------------------------------------
// read path
// ---------------------------------------------------------------------

TEST(VolumeReadTest, FirstReadAcquiresBothLeases) {
  ProtoHarness h(volumeConfig());
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);
  // REQ_VOL + VOL + REQ_OBJ + OBJ.
  EXPECT_EQ(h.metrics().totalMessages(), 4);
  EXPECT_TRUE(vclient(h, 0).hasValidVolumeLease(kVol));
  EXPECT_TRUE(vclient(h, 0).hasValidObjectLease(makeObjectId(0)));
}

TEST(VolumeReadTest, BothLeasesValidMeansZeroMessages) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  h.advanceTo(sec(5));
  auto r = h.read(0, 0);
  EXPECT_FALSE(r.usedNetwork);
  EXPECT_EQ(h.metrics().totalMessages(), 4);
  EXPECT_EQ(h.metrics().cacheLocalReads(), 1);
}

TEST(VolumeReadTest, VolumeRenewalAmortizedAcrossObjects) {
  // A burst of reads to one volume pays ONE volume renewal (the paper's
  // central amortization argument).
  ProtoHarness h(volumeConfig(), 1, 2, /*objectsPerVolume=*/5);
  for (std::uint64_t obj = 0; obj < 5; ++obj) h.read(0, obj);
  // 1 volume round trip + 5 object round trips = 12 messages.
  EXPECT_EQ(h.metrics().totalMessages(), 12);
}

TEST(VolumeReadTest, ExpiredVolumeNeedsOnlyVolumeRenewal) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  h.advanceTo(sec(20));  // t_v = 10 expired; object lease (1000 s) valid
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_FALSE(r.fetchedData);
  EXPECT_EQ(h.metrics().totalMessages(), 6);  // + REQ_VOL/VOL only
}

TEST(VolumeReadTest, ExpiredObjectNeedsOnlyObjectRenewal) {
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, sec(30), sec(1000)));
  h.read(0, 0);
  h.advanceTo(sec(60));  // object lease expired, volume (1000 s) valid
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_EQ(h.metrics().totalMessages(), 6);  // + REQ_OBJ/OBJ only
}

TEST(VolumeReadTest, ConcurrentReadsShareRenewals) {
  // Two reads of the same object inside one instant with latency: only
  // one volume request and one object request go out.
  ProtoHarness h(volumeConfig());
  h.network().setLatency(msec(100));
  int resolved = 0;
  for (int i = 0; i < 2; ++i) {
    h.sim->issueRead(h.client(0), makeObjectId(0),
                     [&](const proto::ReadResult& r) {
                       EXPECT_TRUE(r.ok);
                       ++resolved;
                     });
  }
  h.advanceTo(sec(1));
  EXPECT_EQ(resolved, 2);
  EXPECT_EQ(h.metrics().totalMessages(), 4);
}

TEST(VolumeReadTest, PerClientLeasesAreIndependent) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  EXPECT_FALSE(vclient(h, 1).hasValidVolumeLease(kVol));
  h.read(1, 0);
  EXPECT_EQ(vserver(h).validVolumeHolders(kVol), 2u);
  EXPECT_EQ(vserver(h).validObjectHolders(makeObjectId(0)), 2u);
}

// ---------------------------------------------------------------------
// write path
// ---------------------------------------------------------------------

TEST(VolumeWriteTest, InvalidatesValidObjectLeaseHolders) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  h.read(1, 0);
  h.read(1, 1);  // different object: not invalidated
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
  EXPECT_EQ(w.newVersion, 2);
  EXPECT_EQ(h.metrics().totalMessages(), before + 4);  // 2 inval + 2 ack
}

TEST(VolumeWriteTest, InvalidatesHoldersEvenAfterVolumeExpiry) {
  // Basic Volume Leases (kImmediate): object-lease holders are notified
  // even when their volume lease lapsed (write cost C_o in Table 1).
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  h.advanceTo(sec(50));  // volume lease (10 s) long gone
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  EXPECT_EQ(h.metrics().totalMessages(), before + 2);
}

TEST(VolumeWriteTest, PartitionedClientBoundsWriteByVolumeLease) {
  // The headline fault-tolerance property: the write waits at most
  // min(t, t_v) -- the volume lease here -- not the long object lease.
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  const SimTime start = h.scheduler().now();
  auto w = h.write(0);
  // Volume lease granted ~10 ms after t=0 for 10 s; the msgTimeout floor
  // is 5 s. The commit lands at the volume-lease horizon.
  EXPECT_LE(w.delay, sec(11));
  EXPECT_GT(w.delay, 0);
  EXPECT_LT(h.scheduler().now() - start, sec(12));
  EXPECT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
}

TEST(VolumeWriteTest, UnreachableClientsAreSkippedOnLaterWrites) {
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // moves client 0 to Unreachable
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);  // no one left to contact
  EXPECT_EQ(w.delay, 0);
  EXPECT_EQ(h.metrics().totalMessages(), before);
}

TEST(VolumeWriteTest, AcksRemoveHolderRecords) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  h.write(0);
  EXPECT_EQ(vserver(h).validObjectHolders(makeObjectId(0)), 0u);
}

// ---------------------------------------------------------------------
// reconnection (paper §3.1.1)
// ---------------------------------------------------------------------

TEST(VolumeReconnectTest, RepairsExactlyTheModifiedObjects) {
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)),
                 1, 2, /*objectsPerVolume=*/3);
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.read(0, 1);
  h.read(0, 2);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // -> unreachable; object 0 modified while away
  ASSERT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
  h.network().failures().deisolate(h.client(0));
  h.network().setLatency(0);  // keep the follow-up reads inside t_v

  // First read runs MUST_RENEW_ALL; object 1 and 2 leases are renewed,
  // object 0 invalidated and re-fetched.
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.fetchedData);
  EXPECT_EQ(r.version, 2);
  EXPECT_FALSE(vserver(h).isUnreachable(h.client(0), kVol));
  EXPECT_TRUE(vclient(h, 0).hasValidObjectLease(makeObjectId(1)));
  EXPECT_TRUE(vclient(h, 0).hasValidObjectLease(makeObjectId(2)));

  // The renewed leases are genuinely usable: local reads, no staleness.
  EXPECT_FALSE(h.read(0, 1).usedNetwork);
  EXPECT_FALSE(h.read(0, 2).usedNetwork);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeReconnectTest, CleanClientReconnectsWithoutInvalidation) {
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(1);  // a DIFFERENT object: client 0 has no lease on it...
  // ...but client 0 never acked nothing -- it is not unreachable yet.
  EXPECT_FALSE(vserver(h).isUnreachable(h.client(0), kVol));
  h.network().failures().deisolate(h.client(0));
  h.advanceTo(h.scheduler().now() + sec(60));
  auto r = h.read(0, 0);  // plain volume renewal; object lease intact
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.fetchedData);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeReconnectTest, StaleReadImpossibleDespiteValidObjectLease) {
  // The scenario §3.1.1 is about: valid object lease + missed
  // invalidation. The expired volume lease fences the read.
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);
  // Client 0 still believes its object lease is valid...
  EXPECT_TRUE(vclient(h, 0).hasValidObjectLease(makeObjectId(0)));
  // ...but a read while partitioned fails rather than serving v1.
  auto r = h.read(0, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

// ---------------------------------------------------------------------
// crash recovery (paper §3.1.2)
// ---------------------------------------------------------------------

TEST(VolumeCrashTest, EpochBumpForcesReconnection) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  EXPECT_EQ(vserver(h).volumeEpoch(kVol), 1);
  vserver(h).crashAndReboot();
  EXPECT_EQ(vserver(h).volumeEpoch(kVol), 2);

  h.advanceTo(sec(60));  // past recovery window
  const std::int64_t before = h.metrics().totalMessages();
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  // Reconnection exchange: REQ_VOL, MUST_RENEW_ALL, RENEW_OBJ_LEASES,
  // BATCH, ACK, VOL_LEASE (+ nothing else: object lease was renewed in
  // the batch since the version did not change).
  EXPECT_EQ(h.metrics().totalMessages() - before, 6);
  EXPECT_EQ(vclient(h, 0).knownEpoch(kVol), 2);
}

TEST(VolumeCrashTest, WritesDelayedUntilOldLeasesDrain) {
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, sec(1000), sec(100)));
  h.read(0, 0);  // volume lease until t=100
  h.advanceTo(sec(30));
  vserver(h).crashAndReboot();
  EXPECT_EQ(vserver(h).recoveryUntil(), sec(100));
  auto w = h.write(0);
  EXPECT_EQ(h.scheduler().now(), sec(100));
  EXPECT_NEAR(toSeconds(w.delay), 70.0, 0.1);
}

TEST(VolumeCrashTest, NoStaleReadAcrossCrash) {
  // Client holds long object lease; server crashes losing all lease
  // state; object is then modified; client returns. The epoch check must
  // prevent the client from trusting its old object lease.
  ProtoHarness h(volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10)));
  h.read(0, 0);
  h.advanceTo(sec(30));
  vserver(h).crashAndReboot();
  h.advanceTo(sec(60));  // recovery window (volume leases) drained
  h.write(0);            // no lease records -> instant
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeCrashTest, VersionsSurviveCrash) {
  ProtoHarness h(volumeConfig());
  h.write(0);
  h.write(0);
  vserver(h).crashAndReboot();
  EXPECT_EQ(vserver(h).currentVersion(makeObjectId(0)), 3);
}

// ---------------------------------------------------------------------
// delayed invalidations (paper §3.2)
// ---------------------------------------------------------------------

ProtocolConfig delayConfig(SimDuration d = kNever) {
  ProtocolConfig config = volumeConfig(Algorithm::kVolumeDelayedInval,
                                       sec(100'000), sec(10));
  config.inactiveDiscard = d;
  return config;
}

TEST(DelayedInvalTest, ExpiredVolumeClientsGetPendingNotMessages) {
  ProtoHarness h(delayConfig());
  h.read(0, 0);
  h.advanceTo(sec(60));  // volume lease expired; object lease valid
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
  EXPECT_EQ(h.metrics().totalMessages(), before);  // zero messages!
  EXPECT_TRUE(vserver(h).isInactive(h.client(0), kVol));
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 1u);
}

TEST(DelayedInvalTest, ValidVolumeClientsInvalidatedImmediately) {
  ProtoHarness h(delayConfig());
  h.read(0, 0);
  h.read(1, 0);
  h.advanceTo(sec(60));
  h.read(1, 1);  // client 1 renews its volume lease at t=60
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  // Client 1 (valid volume) gets inval+ack; client 0 goes pending.
  EXPECT_EQ(h.metrics().totalMessages(), before + 2);
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 1u);
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(1), kVol), 0u);
}

TEST(DelayedInvalTest, PendingBatchFlushedOnVolumeRenewal) {
  ProtoHarness h(delayConfig(), 1, 2, /*objectsPerVolume=*/4);
  h.read(0, 0);
  h.read(0, 1);
  h.read(0, 2);
  h.advanceTo(sec(60));
  h.write(0);
  h.write(1);
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 2u);

  // The client comes back and reads object 2 (unmodified): the volume
  // renewal first delivers the pending invalidations as one batch.
  auto r = h.read(0, 2);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.fetchedData);  // object 2 unchanged
  EXPECT_FALSE(vserver(h).isInactive(h.client(0), kVol));
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 0u);

  // Objects 0 and 1 were invalidated by the batch: re-reads fetch fresh.
  auto r0 = h.read(0, 0);
  EXPECT_TRUE(r0.fetchedData);
  EXPECT_EQ(r0.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(DelayedInvalTest, BatchingSavesMessages) {
  // N writes to objects cached by an away client cost ONE batch round
  // trip at renewal instead of N invalidation round trips.
  ProtoHarness h(delayConfig(), 1, 1, /*objectsPerVolume=*/8);
  for (std::uint64_t obj = 0; obj < 8; ++obj) h.read(0, obj);
  h.advanceTo(sec(60));
  const std::int64_t beforeWrites = h.metrics().totalMessages();
  for (std::uint64_t obj = 0; obj < 8; ++obj) h.write(obj);
  EXPECT_EQ(h.metrics().totalMessages(), beforeWrites);  // all pending
  const std::int64_t beforeRenew = h.metrics().totalMessages();
  h.read(0, 7);  // triggers flush (+ re-fetch of object 7)
  // REQ_VOL + BATCH + ACK + VOL_LEASE + REQ_OBJ + OBJ = 6.
  EXPECT_EQ(h.metrics().totalMessages(), beforeRenew + 6);
}

TEST(DelayedInvalTest, DiscardAfterDMovesClientToUnreachable) {
  ProtoHarness h(delayConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(60));
  h.write(0);  // pending (inactive since t=10, within d=100)
  EXPECT_TRUE(vserver(h).isInactive(h.client(0), kVol));
  h.advanceTo(sec(200));  // now > volExpiry(10) + d(100)
  h.write(0);  // lazy demotion runs when a write touches the holder
  EXPECT_FALSE(vserver(h).isInactive(h.client(0), kVol));
  EXPECT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 0u);

  // The returning client is repaired by reconnection, not the batch.
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 3);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(DelayedInvalTest, WriteNeverWaitsForInactiveClients) {
  ProtoHarness h(delayConfig());
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.advanceTo(h.scheduler().now() + sec(60));  // volume lease expired
  h.network().failures().isolate(h.client(0));
  auto w = h.write(0);  // client 0 is inactive: no contact, no wait
  EXPECT_EQ(w.delay, 0);
}

// ---------------------------------------------------------------------
// piggyback ablation
// ---------------------------------------------------------------------

TEST(PiggybackTest, ColdReadIsOneRoundTrip) {
  ProtocolConfig config = volumeConfig();
  config.piggybackVolumeLease = true;
  ProtoHarness h(config);
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.metrics().totalMessages(), 2);  // REQ_OBJ(+vol) / OBJ(+vol)
  EXPECT_TRUE(vclient(h, 0).hasValidVolumeLease(kVol));
}

TEST(PiggybackTest, PureVolumeRefreshStillWorks) {
  ProtocolConfig config = volumeConfig();
  config.piggybackVolumeLease = true;
  ProtoHarness h(config);
  h.read(0, 0);
  h.advanceTo(sec(20));  // volume expired, object lease valid
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.metrics().totalMessages(), 4);  // bare REQ_VOL/VOL
}

TEST(PiggybackTest, UnreachableClientStillForcedThroughReconnect) {
  ProtocolConfig config =
      volumeConfig(Algorithm::kVolumeLease, hours(10), sec(10));
  config.piggybackVolumeLease = true;
  ProtoHarness h(config);
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.read(0, 1);
  h.network().failures().isolate(h.client(0));
  h.write(0);
  ASSERT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);  // object grant must NOT piggyback the volume
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_FALSE(vserver(h).isUnreachable(h.client(0), kVol));
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(PiggybackTest, SameSemanticsFewerMessages) {
  for (bool piggyback : {false, true}) {
    ProtocolConfig config = volumeConfig();
    config.piggybackVolumeLease = piggyback;
    ProtoHarness h(config, 1, 2, 4);
    h.read(0, 0);
    h.read(0, 1);
    h.advanceTo(sec(30));
    h.write(0);
    h.read(0, 0);
    h.read(1, 1);
    h.sim->finish();
    EXPECT_EQ(h.metrics().staleReads(), 0);
    if (piggyback) {
      EXPECT_LT(h.metrics().totalMessages(), 16);
    } else {
      EXPECT_EQ(h.metrics().totalMessages(), 16);
    }
  }
}

// ---------------------------------------------------------------------
// misc
// ---------------------------------------------------------------------

TEST(VolumeMiscTest, DropCacheForcesFullReacquisition) {
  ProtoHarness h(volumeConfig());
  h.read(0, 0);
  vclient(h, 0).dropCache();
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeMiscTest, WritesToDistinctObjectsIndependent) {
  ProtoHarness h(volumeConfig(), 1, 2, 4);
  h.read(0, 0);
  h.read(1, 1);
  auto w0 = h.write(0);
  auto w1 = h.write(1);
  EXPECT_EQ(w0.newVersion, 2);
  EXPECT_EQ(w1.newVersion, 2);
}

TEST(VolumeMiscTest, MultiServerIsolation) {
  // Leases on one server's volume say nothing about another server.
  ProtoHarness h(volumeConfig(), /*numServers=*/2, 1, 2);
  h.read(0, 0);  // server 0's volume
  auto r = h.read(0, 2);  // first object of server 1's volume
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);
  EXPECT_EQ(h.metrics().node(h.server(0)).messages(), 4);
  EXPECT_EQ(h.metrics().node(h.server(1)).messages(), 4);
}

TEST(VolumeMiscTest, ReadFailsCleanlyWhenServerCrashed) {
  ProtoHarness h(volumeConfig());
  h.network().failures().crash(h.server(0));
  auto r = h.read(0, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(h.metrics().failedReads(), 1);
}

}  // namespace
}  // namespace vlease::core
