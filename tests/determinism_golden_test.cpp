// Byte-identical determinism regression: one vlease_chaos-style seed and
// one runSweep point are rendered to a canonical JSON fingerprint and
// compared, byte for byte, against goldens captured before the PR 3
// kernel rewrite (slab scheduler + message fast path). Any divergence in
// event ordering, message accounting, or oracle verdicts shows up here
// as a diff, protecting the bit-for-bit guarantee the parallel sweep
// runner advertises.
//
// Regenerating (only when an intentional semantic change lands):
//   VLEASE_REGOLD=1 ctest -R determinism_golden
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "driver/simulation.h"
#include "driver/sweep.h"
#include "driver/workloads.h"
#include "net/fault_plan.h"
#include "net/message.h"
#include "stats/metrics.h"
#include "trace/regroup.h"
#include "util/rng.h"

#ifndef VLEASE_SOURCE_DIR
#error "VLEASE_SOURCE_DIR must be defined by the build"
#endif

namespace vlease {
namespace {

std::string goldenPath(const std::string& name) {
  return std::string(VLEASE_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

/// Canonical, exhaustive fingerprint of one run's metrics. Every counter
/// that feeds a figure or an oracle verdict is included, so a kernel
/// that reorders or drops even one event cannot produce the same bytes.
void fingerprintMetrics(std::ostringstream& os, const stats::Metrics& m) {
  os << "  \"totalMessages\": " << m.totalMessages() << ",\n"
     << "  \"totalBytes\": " << m.totalBytes() << ",\n"
     << "  \"totalCpuUnits\": " << fmt(m.totalCpuUnits()) << ",\n"
     << "  \"droppedMessages\": " << m.droppedMessages() << ",\n"
     << "  \"byType\": {";
  for (std::size_t t = 0; t < net::kNumPayloadTypes; ++t) {
    os << (t ? ", " : "") << "\"" << net::payloadTypeName(t)
       << "\": " << m.messagesOfType(t);
  }
  os << "},\n"
     << "  \"reads\": " << m.reads() << ",\n"
     << "  \"cacheLocalReads\": " << m.cacheLocalReads() << ",\n"
     << "  \"staleReads\": " << m.staleReads() << ",\n"
     << "  \"failedReads\": " << m.failedReads() << ",\n"
     << "  \"writes\": " << m.writes() << ",\n"
     << "  \"delayedWrites\": " << m.delayedWrites() << ",\n"
     << "  \"blockedWrites\": " << m.blockedWrites() << ",\n"
     << "  \"writeDelaySum\": " << fmt(m.writeDelay().sum()) << ",\n"
     << "  \"writeDelayMax\": " << fmt(m.writeDelay().max()) << ",\n"
     << "  \"oracleViolations\": " << m.oracleViolations() << ",\n"
     << "  \"horizon\": " << m.horizon() << "\n";
}

void compareOrRegold(const std::string& file, const std::string& actual) {
  const bool regold = std::getenv("VLEASE_REGOLD") != nullptr;
  if (regold) {
    std::ofstream out(goldenPath(file), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << goldenPath(file);
    out << actual;
    GTEST_SKIP() << "regenerated " << file;
  }
  std::ifstream in(goldenPath(file), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << goldenPath(file)
                         << " (run with VLEASE_REGOLD=1 to create)";
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), actual)
      << "output diverged from the pre-rewrite golden -- the kernel is no "
         "longer bit-for-bit equivalent";
}

/// One chaos point, exactly as tools/vlease_chaos derives it: the fault
/// plan depends only on (seed, intensity), the workload only on its own
/// seed. Includes kernel-level counters (fired events, sends, deliveries)
/// on top of the metrics fingerprint.
TEST(DeterminismGoldenTest, ChaosSeedByteIdentical) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(900);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  Rng planRng(1);  // seed 1
  net::FaultPlan::RandomOptions planOptions;
  planOptions.intensity = 0.5;  // "medium"
  planOptions.horizon = workloadOptions.duration;
  planOptions.maxLossProbability = 0.25 * 0.5;
  auto plan = std::make_shared<const net::FaultPlan>(
      net::FaultPlan::random(planRng, planOptions, clients, servers));

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);

  driver::SimOptions sim;
  sim.networkLatency = msec(20);
  sim.faultPlan = plan;
  sim.enableOracle = true;
  sim.oracleAuditPeriod = sec(10);

  driver::Simulation simulation(catalog, config, sim);
  const stats::Metrics& metrics = simulation.run(workload.events);

  std::ostringstream os;
  os << "{\n"
     << "  \"firedEvents\": " << simulation.scheduler().firedCount() << ",\n"
     << "  \"finalNow\": " << simulation.scheduler().now() << ",\n"
     << "  \"sent\": " << simulation.network().sentCount() << ",\n"
     << "  \"delivered\": " << simulation.network().deliveredCount() << ",\n";
  fingerprintMetrics(os, metrics);
  os << "}\n";
  compareOrRegold("chaos_seed1_volume.json", os.str());
}

/// The chaos point above with a nonzero clock-skew budget (vlease_chaos
/// --skew medium --epsilon-ms -1): skewed LocalClock reads, the epsilon
/// margin on both lease ends, and the skew-aware oracle must all stay
/// deterministic. The fingerprint is checked three ways -- against the
/// golden, against an in-process rerun, and against the same point run
/// through the parallel sweep runner with threads=3 -- so skew state can
/// neither leak across runs nor depend on worker scheduling.
TEST(DeterminismGoldenTest, ChaosSeedWithSkewByteIdentical) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(900);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  const SimDuration skewBudget = sec(5);  // "medium"

  auto makePlan = [&]() {
    Rng planRng(1);  // seed 1
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = 0.5;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * 0.5;
    planOptions.maxClockSkew = skewBudget;
    return std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));
  };

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);
  config.clockEpsilon = skewBudget;  // epsilon matches the budget: safe

  auto makeSim = [&]() {
    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = makePlan();
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    sim.oracleSkewBound = skewBudget;
    return sim;
  };

  auto runDirect = [&]() {
    driver::Simulation simulation(catalog, config, makeSim());
    const stats::Metrics& metrics = simulation.run(workload.events);
    std::ostringstream os;
    os << "{\n"
       << "  \"firedEvents\": " << simulation.scheduler().firedCount()
       << ",\n"
       << "  \"finalNow\": " << simulation.scheduler().now() << ",\n"
       << "  \"sent\": " << simulation.network().sentCount() << ",\n"
       << "  \"delivered\": " << simulation.network().deliveredCount()
       << ",\n";
    fingerprintMetrics(os, metrics);
    os << "}\n";
    return os.str();
  };

  const std::string first = runDirect();
  EXPECT_EQ(first, runDirect()) << "skew run not reproducible in-process";

  // Same point through the parallel sweep runner: worker threads must
  // not perturb the skewed clocks' event interleaving.
  driver::SweepSpec spec;
  spec.name = "skew_determinism";
  for (proto::Algorithm a :
       {proto::Algorithm::kVolumeLease,
        proto::Algorithm::kVolumeDelayedInval}) {
    driver::SweepPoint point;
    point.label = std::string(proto::algorithmName(a)) + " skew";
    point.config = config;
    point.config.algorithm = a;
    point.sim = makeSim();
    point.row = proto::algorithmName(a);
    point.col = "s1";
    spec.points.push_back(std::move(point));
  }
  spec.gridCell = [](const stats::Metrics& m) {
    return driver::Table::num(m.oracleViolations());
  };
  driver::ParallelOptions parallel;
  parallel.threads = 3;
  const auto results = driver::runSweep(spec, workload, parallel);
  ASSERT_EQ(results.size(), 2u);
  std::ostringstream sweepFp;
  fingerprintMetrics(sweepFp, results.front().metrics);
  std::ostringstream directFp;
  {
    driver::Simulation simulation(catalog, config, makeSim());
    fingerprintMetrics(directFp, simulation.run(workload.events));
  }
  EXPECT_EQ(sweepFp.str(), directFp.str())
      << "sweep-runner skew run diverged from the direct run";
  // With |skew| <= budget and epsilon = budget, the oracle stays quiet.
  for (const auto& result : results) {
    EXPECT_EQ(result.metrics.oracleViolations(), 0);
  }

  compareOrRegold("chaos_seed1_volume_skew.json", first);
}

/// The batch lease-expiry sweep (ProtocolConfig::leaseSweepPeriod) must
/// be observationally invisible: it only drops holder records that every
/// consumer already treats as dead (graceExpire <= now), accruing them
/// with the same clamp later accrual would apply. Run the chaos point --
/// faults, skew, epsilon margins, both volume algorithms -- with the
/// sweep off and at two unrelated periods; every protocol-observable
/// byte (messages, reads, writes, accrual totals, oracle verdicts,
/// horizon) must be identical. firedEvents is deliberately excluded:
/// the sweep timer itself fires.
TEST(DeterminismGoldenTest, ExpirySweepIsObservationallyInvisible) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(900);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  const SimDuration skewBudget = sec(5);
  auto makePlan = [&]() {
    Rng planRng(1);
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = 0.5;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * 0.5;
    planOptions.maxClockSkew = skewBudget;
    return std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));
  };

  auto runFingerprint = [&](proto::Algorithm algorithm,
                            SimDuration sweepPeriod, bool byExpiry) {
    proto::ProtocolConfig config;
    config.algorithm = algorithm;
    config.objectTimeout = sec(120);
    config.volumeTimeout = sec(30);
    config.msgTimeout = sec(5);
    config.readTimeout = sec(15);
    config.clockEpsilon = skewBudget;
    config.leaseSweepPeriod = sweepPeriod;
    config.writeByLeaseExpiry = byExpiry;

    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = makePlan();
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    sim.oracleSkewBound = skewBudget;

    driver::Simulation simulation(catalog, config, sim);
    const stats::Metrics& metrics = simulation.run(workload.events);
    std::ostringstream os;
    os << "{\n"
       << "  \"finalNow\": " << simulation.scheduler().now() << ",\n"
       << "  \"sent\": " << simulation.network().sentCount() << ",\n"
       << "  \"delivered\": " << simulation.network().deliveredCount()
       << ",\n";
    fingerprintMetrics(os, metrics);
    os << "}\n";
    return os.str();
  };

  for (proto::Algorithm algorithm :
       {proto::Algorithm::kVolumeLease,
        proto::Algorithm::kVolumeDelayedInval}) {
    for (bool byExpiry : {false, true}) {
      const std::string base = runFingerprint(algorithm, 0, byExpiry);
      for (SimDuration period : {msec(500), sec(7)}) {
        EXPECT_EQ(base, runFingerprint(algorithm, period, byExpiry))
            << "sweep period " << period << " changed observable behavior ("
            << proto::algorithmName(algorithm)
            << (byExpiry ? ", byExpiry)" : ")");
      }
    }
  }
}

/// Regroup determinism: the same seed must produce the same volume
/// assignment (object ids preserved), and replaying the chaos trace
/// against the regrouped catalog -- with an online migration riding on
/// top -- must be byte-identical run to run. This pins the federation
/// path (routing table + handoff) to a golden the way the single-server
/// chaos seed is pinned.
TEST(DeterminismGoldenTest, RegroupedFederationByteIdentical) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(900);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);

  // Same seed => same assignment; a different seed must differ (the
  // grouping is genuinely seed-driven, not constant).
  const trace::Catalog regrouped = trace::regroupVolumes(
      workload.catalog, 3, trace::GroupingStrategy::kRandom, 42);
  const trace::Catalog again = trace::regroupVolumes(
      workload.catalog, 3, trace::GroupingStrategy::kRandom, 42);
  ASSERT_EQ(regrouped.numObjects(), again.numObjects());
  for (const trace::ObjectInfo& info : regrouped.objects()) {
    EXPECT_EQ(raw(info.volume), raw(again.object(info.id).volume));
    EXPECT_EQ(raw(info.server),
              raw(workload.catalog.object(info.id).server));
  }

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);

  auto runFingerprint = [&]() {
    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    // One online migration mid-run: server 0's first regrouped volume
    // moves to server 1, so the golden covers the handoff machinery.
    sim.migrations.push_back({workloadOptions.duration / 2,
                              regrouped.volumes().front().id,
                              regrouped.serverNode(1), true});
    driver::Simulation simulation(regrouped, config, sim);
    const stats::Metrics& metrics = simulation.run(workload.events);
    EXPECT_EQ(simulation.migrationsApplied(), 1u);
    std::ostringstream os;
    os << "{\n"
       << "  \"firedEvents\": " << simulation.scheduler().firedCount()
       << ",\n"
       << "  \"finalNow\": " << simulation.scheduler().now() << ",\n"
       << "  \"sent\": " << simulation.network().sentCount() << ",\n"
       << "  \"delivered\": " << simulation.network().deliveredCount()
       << ",\n";
    fingerprintMetrics(os, metrics);
    os << "}\n";
    return os.str();
  };

  const std::string first = runFingerprint();
  EXPECT_EQ(first, runFingerprint())
      << "regrouped federation run not reproducible in-process";
  compareOrRegold("chaos_regroup_federation.json", first);
}

/// One sweep grid through the parallel runner (threads=2), rendered with
/// the same Table JSON emitter the bench binaries use, plus the metrics
/// fingerprint of one point.
TEST(DeterminismGoldenTest, SweepPointByteIdentical) {
  driver::WorkloadOptions opts;
  opts.scale = 0.01;
  const driver::Workload workload = driver::buildWorkload(opts);

  driver::SweepSpec spec;
  spec.name = "determinism_golden";
  std::vector<driver::SweepLine> lines;
  for (proto::Algorithm a :
       {proto::Algorithm::kVolumeLease,
        proto::Algorithm::kVolumeDelayedInval}) {
    proto::ProtocolConfig c;
    c.algorithm = a;
    c.volumeTimeout = sec(100);
    lines.push_back({std::string(proto::algorithmName(a)), c});
  }
  spec.points = driver::timeoutGrid(lines, {100, 10'000});
  spec.gridCell = [](const stats::Metrics& m) {
    return driver::Table::num(m.totalMessages());
  };

  driver::ParallelOptions parallel;
  parallel.threads = 2;
  const auto results = driver::runSweep(spec, workload, parallel);

  std::ostringstream os;
  driver::toTable(spec, results).printJson(os);
  os << "{\n";
  fingerprintMetrics(os, results.front().metrics);
  os << "}\n";
  compareOrRegold("sweep_grid.json", os.str());
}

/// Flash crowd + client churn under chaos, pinned to a golden the way
/// the base chaos seed is: the storm's renewal burst, the graceful
/// depart/arrive markers (ClientNode::retire + lazy re-growth), and the
/// fault plan must interleave identically run to run -- checked against
/// the golden, an in-process rerun, and the same point through the
/// parallel sweep runner with threads=3.
TEST(DeterminismGoldenTest, FlashChurnChaosByteIdentical) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(900);
  workloadOptions.flashClients = 4;  // every chaos client joins the storm
  workloadOptions.flashAt = sec(300);
  workloadOptions.flashDuration = sec(5);
  workloadOptions.churnPeriod = sec(90);
  workloadOptions.churnDowntime = sec(30);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  auto makePlan = [&]() {
    Rng planRng(1);
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = 0.5;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * 0.5;
    return std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));
  };

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);

  auto makeSim = [&]() {
    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = makePlan();
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    return sim;
  };

  auto runDirect = [&]() {
    driver::Simulation simulation(catalog, config, makeSim());
    const stats::Metrics& metrics = simulation.run(workload.events);
    std::ostringstream os;
    os << "{\n"
       << "  \"firedEvents\": " << simulation.scheduler().firedCount()
       << ",\n"
       << "  \"finalNow\": " << simulation.scheduler().now() << ",\n"
       << "  \"sent\": " << simulation.network().sentCount() << ",\n"
       << "  \"delivered\": " << simulation.network().deliveredCount()
       << ",\n";
    fingerprintMetrics(os, metrics);
    os << "}\n";
    return os.str();
  };

  const std::string first = runDirect();
  EXPECT_EQ(first, runDirect())
      << "flash+churn run not reproducible in-process";

  // Same point through the parallel sweep runner: churn retirements and
  // the storm must not depend on worker scheduling.
  driver::SweepSpec spec;
  spec.name = "flash_churn_determinism";
  for (proto::Algorithm a :
       {proto::Algorithm::kVolumeLease,
        proto::Algorithm::kVolumeDelayedInval}) {
    driver::SweepPoint point;
    point.label = std::string(proto::algorithmName(a)) + " flash+churn";
    point.config = config;
    point.config.algorithm = a;
    point.sim = makeSim();
    point.row = proto::algorithmName(a);
    point.col = "s1";
    spec.points.push_back(std::move(point));
  }
  spec.gridCell = [](const stats::Metrics& m) {
    return driver::Table::num(m.oracleViolations());
  };
  driver::ParallelOptions parallel;
  parallel.threads = 3;
  const auto results = driver::runSweep(spec, workload, parallel);
  ASSERT_EQ(results.size(), 2u);
  std::ostringstream sweepFp;
  fingerprintMetrics(sweepFp, results.front().metrics);
  std::ostringstream directFp;
  {
    driver::Simulation simulation(catalog, config, makeSim());
    fingerprintMetrics(directFp, simulation.run(workload.events));
  }
  EXPECT_EQ(sweepFp.str(), directFp.str())
      << "sweep-runner flash+churn run diverged from the direct run";

  compareOrRegold("chaos_flash_churn_volume.json", first);
}

/// The full composition -- Zipf-skewed chaos workload, flash-crowd
/// storm, client churn, online migrations there and back, random fault
/// plans -- must stay oracle-clean across at least 8 seeds. Graceful
/// departures (retire) discard leases a departed client might otherwise
/// rely on; the storm piles renewals onto one cold object; migrations
/// bump epochs under both: none of it may ever surface a stale read.
TEST(DeterminismGoldenTest, FlashChurnMigrationOracleCleanAcrossSeeds) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(600);
  workloadOptions.volumesPerServer = 2;
  workloadOptions.flashClients = 4;
  workloadOptions.flashAt = sec(200);
  workloadOptions.flashDuration = sec(5);
  workloadOptions.churnPeriod = sec(60);
  workloadOptions.churnDowntime = sec(20);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);
  const trace::Catalog& catalog = workload.catalog;

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < catalog.numClients(); ++c) {
    clients.push_back(catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < catalog.numServers(); ++s) {
    servers.push_back(catalog.serverNode(s));
  }

  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    // Alternate algorithms so both volume variants see 4 seeds each.
    const proto::Algorithm algorithm = (seed % 2 == 1)
                                           ? proto::Algorithm::kVolumeLease
                                           : proto::Algorithm::kVolumeDelayedInval;
    Rng planRng(seed);
    net::FaultPlan::RandomOptions planOptions;
    planOptions.intensity = 0.5;
    planOptions.horizon = workloadOptions.duration;
    planOptions.maxLossProbability = 0.25 * 0.5;
    auto plan = std::make_shared<const net::FaultPlan>(
        net::FaultPlan::random(planRng, planOptions, clients, servers));

    proto::ProtocolConfig config;
    config.algorithm = algorithm;
    config.objectTimeout = sec(120);
    config.volumeTimeout = sec(30);
    config.msgTimeout = sec(5);
    config.readTimeout = sec(15);

    driver::SimOptions sim;
    sim.networkLatency = msec(20);
    sim.faultPlan = plan;
    sim.enableOracle = true;
    sim.oracleAuditPeriod = sec(10);
    // Server 0's first volume migrates away a third of the way in and
    // comes home at two thirds (the vlease_chaos --migrate shape).
    const VolumeId vol = catalog.volumes().front().id;
    sim.migrations.push_back({workloadOptions.duration / 3, vol,
                              catalog.serverNode(1), true});
    sim.migrations.push_back({2 * workloadOptions.duration / 3, vol,
                              catalog.serverNode(0), true});

    driver::Simulation simulation(catalog, config, sim);
    const stats::Metrics& metrics = simulation.run(workload.events);
    EXPECT_EQ(metrics.oracleViolations(), 0)
        << proto::algorithmName(algorithm) << " seed " << seed;
    EXPECT_EQ(metrics.staleReads(), 0)
        << proto::algorithmName(algorithm) << " seed " << seed;
  }
}

}  // namespace
}  // namespace vlease
