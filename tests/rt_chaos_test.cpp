// Chaos plumbing for the rt layer: FaultPlan interpretation against real
// sockets and processes-in-miniature, the RealTimeDriver stop/post drain
// barrier, mid-frame socket death at every interesting byte offset, the
// crashed-server cold-restart rule, and the sim-vs-real parity checker's
// verdicts on synthetic run logs. The single-process loopback chaos test
// at the end is the suite CI also runs under ASan.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "net/fault_plan.h"
#include "net/wire.h"
#include "rt/fault_injector.h"
#include "rt/parity.h"
#include "rt/real_time.h"
#include "rt/tcp_transport.h"
#include "trace/catalog.h"

namespace vlease::rt {
namespace {

// ---------------------------------------------------------------------
// RealTimeDriver drain barrier
// ---------------------------------------------------------------------

TEST(RealTimeDriverDrain, StopMidBatchHoldsRemainderUntilNextRun) {
  // stop() observed while draining a post batch must hold the REST of
  // the batch (and anything queued later) until the next run() -- the
  // "post teardown, then more work" pattern must never run the work
  // against a half-torn-down node.
  RealTimeDriver driver;
  std::vector<int> order;
  driver.post([&]() {
    order.push_back(1);
    driver.stop();
  });
  driver.post([&]() { order.push_back(2); });
  driver.run();
  EXPECT_EQ(order, (std::vector<int>{1}));

  // The held callback runs at the next run(), in order.
  driver.post([&]() {
    order.push_back(3);
    driver.stop();
  });
  driver.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RealTimeDriverDrain, PostStopRaceNeverRunsWorkAfterTeardown) {
  // Hammer post() and stop() from a second thread: once the teardown
  // callback (which flips `torndown` and stops the loop) has run, no
  // other posted callback may run in the same run() -- with or without
  // the barrier this is a genuine cross-thread race, so iterate.
  for (int round = 0; round < 200; ++round) {
    RealTimeDriver driver;
    std::atomic<bool> torndown{false};
    std::atomic<int> lateRuns{0};
    std::atomic<int> executed{0};
    std::thread poster([&]() {
      for (int i = 0; i < 50; ++i) {
        driver.post([&]() {
          if (torndown.load()) ++lateRuns;
          ++executed;
        });
      }
      driver.post([&]() {
        torndown.store(true);
        driver.stop();
      });
      for (int i = 0; i < 50; ++i) {
        driver.post([&]() {
          if (torndown.load()) ++lateRuns;
          ++executed;
        });
      }
    });
    driver.run();
    poster.join();
    ASSERT_EQ(lateRuns.load(), 0) << "round " << round << " executed "
                                  << executed.load();
  }
}

// ---------------------------------------------------------------------
// mid-frame socket death, receiver side, at every boundary of interest
// ---------------------------------------------------------------------

namespace rawsock {

std::vector<std::uint8_t> frameOf(const net::Message& msg) {
  std::vector<std::uint8_t> payload = net::encodeMessage(msg);
  std::vector<std::uint8_t> frame;
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i)
    frame.push_back(static_cast<std::uint8_t>((len >> (8 * i)) & 0xff));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

int connectTo(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

void writeAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    ssize_t n = ::send(fd, data + off, size - off, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace rawsock

struct CountingSink : net::MessageSink {
  std::atomic<int> received{0};
  void deliver(const net::Message&) override { ++received; }
};

TEST(MidFrameDeath, EveryTruncationOffsetRejectsAndDeliversNothing) {
  // A connection that dies after delivering N bytes of a frame must
  // deliver nothing and count one rejected frame, for N at each
  // structural boundary: inside the length header, exactly at the
  // header boundary, one byte into the payload, mid-payload, and one
  // byte short of the end (i.e. inside the CRC seal at the tail).
  const NodeId from = makeNodeId(1);
  const NodeId to = makeNodeId(7);

  RealTimeDriver driver;
  stats::Metrics metrics;
  TcpTransport transport(driver, metrics, /*port=*/0);
  CountingSink sink;
  transport.attach(to, &sink);
  std::thread loop([&]() { driver.run(); });

  const auto frame =
      rawsock::frameOf(net::Message{from, to, net::Invalidate{makeObjectId(5)}});
  ASSERT_GT(frame.size(), 8u);
  const std::vector<std::size_t> offsets = {
      2,                 // inside the length header
      4,                 // header complete, zero payload bytes
      5,                 // first payload byte
      frame.size() / 2,  // mid-payload
      frame.size() - 1,  // inside the trailing CRC seal
  };

  // The loop thread owns the counters; read them there (a raw read
  // from this thread would race the transport's bookkeeping).
  const auto rejectedOnLoop = [&]() {
    std::promise<std::int64_t> promise;
    auto future = promise.get_future();
    driver.post([&]() { promise.set_value(transport.framesRejected()); });
    return future.get();
  };

  std::int64_t expectRejected = 0;
  for (const std::size_t offset : offsets) {
    int fd = rawsock::connectTo(transport.listenPort());
    rawsock::writeAll(fd, frame.data(), offset);
    ::close(fd);
    ++expectRejected;
    for (int i = 0; i < 2000 && rejectedOnLoop() < expectRejected; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(rejectedOnLoop(), expectRejected) << "offset " << offset;
  }

  driver.stop();
  loop.join();
  EXPECT_EQ(sink.received.load(), 0);
  EXPECT_EQ(transport.framesReceived(), 0);
  EXPECT_EQ(metrics.transportFramesRejected(), expectRejected);
}

// ---------------------------------------------------------------------
// injected truncation (FaultHook) and the no-retry rule for it
// ---------------------------------------------------------------------

/// Hook that truncates the first send at a fixed offset, then delivers.
class TruncateOnceHook final : public FaultHook {
 public:
  explicit TruncateOnceHook(std::size_t at) : at_(at) {}
  SendFault onSend(NodeId, NodeId, std::size_t) override {
    SendFault fault;
    if (!fired_) {
      fired_ = true;
      fault.kind = SendFault::Kind::kTruncate;
      fault.truncateAt = at_;
      fault.halfClose = true;
    }
    return fault;
  }
  bool dropInbound(NodeId, NodeId) override { return false; }

 private:
  std::size_t at_;
  bool fired_ = false;
};

TEST(InjectedFaults, TruncatedSendIsChargedAsLostAndNeverRetried) {
  // An injected kTruncate models a frame dying on the wire: the receiver
  // rejects the partial frame, and the sender must NOT retry (the loss
  // is the point of the injection). A follow-up clean send then proves
  // the connection recovers.
  const NodeId a = makeNodeId(0);
  const NodeId b = makeNodeId(1);

  RealTimeDriver senderDriver;
  RealTimeDriver receiverDriver;
  stats::Metrics senderMetrics;
  stats::Metrics receiverMetrics;
  TcpTransport sender(senderDriver, senderMetrics, 0);
  TcpTransport receiver(receiverDriver, receiverMetrics, 0);
  sender.addPeer(b, "127.0.0.1", receiver.listenPort());
  CountingSink sink;
  receiver.attach(b, &sink);

  TruncateOnceHook hook(/*at=*/6);  // header + 2 payload bytes
  sender.setFaultHook(&hook);

  std::thread receiverLoop([&]() { receiverDriver.run(); });
  std::thread senderLoop([&]() { senderDriver.run(); });

  senderDriver.post([&]() {
    sender.send(net::Message{a, b, net::Invalidate{makeObjectId(1)}});
    sender.send(net::Message{a, b, net::Invalidate{makeObjectId(2)}});
  });
  for (int i = 0; i < 4000 && sink.received.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  senderDriver.stop();
  receiverDriver.stop();
  senderLoop.join();
  receiverLoop.join();

  EXPECT_EQ(sink.received.load(), 1);       // only the clean second send
  EXPECT_EQ(sender.injectedTruncations(), 1);
  EXPECT_EQ(sender.sendRetries(), 0);       // injected loss is not retried
  for (int i = 0; i < 2000 && receiver.framesRejected() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(receiver.framesRejected(), 1);  // the truncated prefix
}

// ---------------------------------------------------------------------
// FaultShim: window events -> socket verdicts and clock offsets
// ---------------------------------------------------------------------

TEST(FaultShim, IsolationAndPartitionWindowsGateSends) {
  const NodeId a = makeNodeId(0);
  const NodeId b = makeNodeId(1);
  const NodeId c = makeNodeId(2);

  net::FaultPlan plan;
  plan.isolateAt(msec(10), c);
  plan.deisolateAt(msec(30), c);
  plan.partitionWindow(msec(20), msec(40), a, b);

  FaultShim shim(plan, a, /*driver=*/nullptr, /*seed=*/1);

  shim.advance(msec(15));
  EXPECT_TRUE(shim.isIsolated(c));
  EXPECT_EQ(shim.onSend(a, c, 64).kind, SendFault::Kind::kDrop);
  EXPECT_TRUE(shim.dropInbound(c, a));
  EXPECT_EQ(shim.onSend(a, b, 64).kind, SendFault::Kind::kDeliver);

  shim.advance(msec(25));
  EXPECT_TRUE(shim.isPartitioned(a, b));
  EXPECT_TRUE(shim.isPartitioned(b, a));  // unordered
  EXPECT_EQ(shim.onSend(a, b, 64).kind, SendFault::Kind::kDrop);

  shim.advance(msec(45));
  EXPECT_FALSE(shim.isIsolated(c));
  EXPECT_FALSE(shim.isPartitioned(a, b));
  EXPECT_EQ(shim.onSend(a, b, 64).kind, SendFault::Kind::kDeliver);
  EXPECT_EQ(shim.onSend(a, c, 64).kind, SendFault::Kind::kDeliver);
}

TEST(FaultShim, CertainLossDropsOrTruncatesEveryFrame) {
  net::FaultPlan plan;
  plan.setLossAt(0, 1.0);
  FaultShim shim(plan, makeNodeId(0), nullptr, /*seed=*/7);
  shim.advance(msec(1));
  EXPECT_DOUBLE_EQ(shim.lossProbability(), 1.0);

  int truncations = 0;
  for (int i = 0; i < 200; ++i) {
    const SendFault fault = shim.onSend(makeNodeId(0), makeNodeId(1), 100);
    ASSERT_NE(fault.kind, SendFault::Kind::kDeliver);
    if (fault.kind == SendFault::Kind::kTruncate) {
      ++truncations;
      EXPECT_LT(fault.truncateAt, 100u);
    }
  }
  // ~30% of losses die mid-write instead of vanishing.
  EXPECT_GT(truncations, 20);
  EXPECT_LT(truncations, 120);
}

TEST(FaultShim, SkewEventsOffsetOnlyThisNodesClock) {
  const NodeId self = makeNodeId(1);
  const NodeId other = makeNodeId(2);

  net::FaultPlan plan;
  plan.skewAt(msec(10), self, msec(150));
  plan.skewAt(msec(10), other, msec(-300));  // someone else's clock

  RealTimeDriver driver;
  FaultShim shim(plan, self, &driver, /*seed=*/3);
  EXPECT_EQ(driver.clockOffset(), 0);
  shim.advance(msec(20));
  EXPECT_EQ(driver.clockOffset(), msec(150));
}

TEST(RealTimeDriverClock, NegativeOffsetStepNeverRunsTimeBackwards) {
  RealTimeDriver driver;
  const SimTime before = driver.elapsed();
  driver.setClockOffset(-sec(10));
  const SimTime after = driver.elapsed();
  EXPECT_GE(after, before);  // clamped, not reversed
}

// ---------------------------------------------------------------------
// FaultInjector: crash lane -> kill/respawn callbacks, in order, once
// ---------------------------------------------------------------------

TEST(FaultInjector, CrashLaneFiresKillThenRespawnExactlyOnce) {
  const NodeId server = makeNodeId(0);
  net::FaultPlan plan;
  plan.crashWindow(msec(100), msec(400), server);

  std::vector<std::string> actions;
  FaultInjector::Callbacks callbacks;
  callbacks.kill = [&](NodeId node, SimTime at) {
    actions.push_back("kill " + std::to_string(raw(node)) + " @" +
                      std::to_string(at));
  };
  callbacks.respawn = [&](NodeId node, SimTime at) {
    actions.push_back("respawn " + std::to_string(raw(node)) + " @" +
                      std::to_string(at));
  };
  FaultInjector injector(plan, callbacks);

  injector.advance(msec(50));
  EXPECT_TRUE(actions.empty());
  injector.advance(msec(150));
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0], "kill 0 @" + std::to_string(msec(100)));
  injector.advance(msec(150));  // idempotent: nothing re-fires
  EXPECT_EQ(actions.size(), 1u);
  injector.advance(msec(500));
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[1], "respawn 0 @" + std::to_string(msec(400)));
  EXPECT_TRUE(injector.done());
}

// ---------------------------------------------------------------------
// cold-restart recovery rule (paper section 3.1.2) on restored state
// ---------------------------------------------------------------------

struct NullTransport : net::Transport {
  void attach(NodeId, net::MessageSink*) override {}
  void detach(NodeId) override {}
  void send(net::Message) override {}
};

TEST(ColdRestart, RestoredServerRefusesWritesUntilSilenceElapses) {
  trace::Catalog catalog(1, 1);
  const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  const ObjectId obj = catalog.addObject(vol, 1024);

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(30);
  config.volumeTimeout = sec(2);
  config.clockEpsilon = msec(500);

  sim::Scheduler scheduler;
  NullTransport transport;
  stats::Metrics metrics;
  proto::ProtocolContext ctx{scheduler, transport, metrics, catalog};
  core::VolumeServer server(ctx, catalog.serverNode(0), config,
                            core::InvalidationMode::kImmediate);

  // Restored stable storage: the pre-crash log said v5 / epoch 3.
  server.restoreAfterRestart({{obj, 5}}, {{vol, 4}},
                             /*recoverUntil=*/sec(3));
  EXPECT_GE(server.currentVersion(obj), 5);
  EXPECT_GE(server.volumeEpoch(vol), 4);

  // A ratchet, not an overwrite: stale restore data cannot regress.
  server.restoreAfterRestart({{obj, 2}}, {{vol, 1}}, /*recoverUntil=*/0);
  EXPECT_GE(server.currentVersion(obj), 5);
  EXPECT_GE(server.volumeEpoch(vol), 4);

  // A write issued during the silence window commits only once the
  // window ends, and its delay accounts for the wait.
  SimTime committedAt = kNever;
  Version committedVersion = kNoVersion;
  server.write(obj, [&](const proto::WriteResult& r) {
    committedAt = scheduler.now();
    committedVersion = r.newVersion;
  });
  scheduler.runUntil(sec(1));
  EXPECT_EQ(committedAt, kNever) << "write committed inside silence window";
  scheduler.runUntil(sec(10));
  ASSERT_NE(committedAt, kNever);
  EXPECT_GE(committedAt, sec(3));
  EXPECT_GT(committedVersion, 5);
}

// ---------------------------------------------------------------------
// parity checker verdicts on synthetic run logs
// ---------------------------------------------------------------------

CheckerOptions basicChecker() {
  CheckerOptions o;
  o.writeWaitBase = msec(800);
  o.volumeTimeout = msec(800);
  o.clockEpsilon = msec(100);
  o.msgTimeout = msec(400);
  o.slack = msec(500);
  o.skewBudget = 0;
  o.horizon = sec(30);
  return o;
}

WriteRecord makeWrite(std::uint64_t obj, Version v, SimTime issuedAt,
                      SimTime completedAt) {
  WriteRecord w;
  w.obj = makeObjectId(obj);
  w.version = v;
  w.issuedAt = issuedAt;
  w.completedAt = completedAt;
  w.delay = completedAt - issuedAt;
  return w;
}

ReadRecord makeRead(std::uint32_t client, std::uint64_t obj, SimTime issuedAt,
                    Version v) {
  ReadRecord r;
  r.client = makeNodeId(client);
  r.obj = makeObjectId(obj);
  r.issuedAt = issuedAt;
  r.completedAt = issuedAt + msec(1);
  r.ok = true;
  r.version = v;
  return r;
}

TEST(ParityChecker, FlagsStaleReadOnlyBeyondTheAllowance) {
  RunLog log;
  log.writes.push_back(makeWrite(1, 2, sec(1), sec(1) + msec(10)));
  // Issued well after v2 committed, saw v1: stale.
  log.reads.push_back(makeRead(5, 1, sec(5), 1));
  // Issued inside the allowance after the commit: boundary race, clean.
  log.reads.push_back(makeRead(5, 1, sec(1) + msec(200), 1));
  // Saw the committed version: clean.
  log.reads.push_back(makeRead(6, 1, sec(10), 2));

  const ParityCounts counts = checkRealRun(log, basicChecker());
  EXPECT_EQ(counts.staleReads, 1);
  EXPECT_EQ(counts.total(), 1);
}

TEST(ParityChecker, FlagsLostWriteUnlessCrashOrHorizonExplainsIt) {
  CheckerOptions options = basicChecker();
  RunLog log;
  log.issues.push_back({makeObjectId(1), sec(2)});   // vanished: lost
  log.issues.push_back({makeObjectId(2), sec(3)});   // committed below
  log.writes.push_back(makeWrite(2, 1, sec(3), sec(3) + msec(50)));
  log.issues.push_back({makeObjectId(3), sec(29)});  // too near horizon
  log.issues.push_back({makeObjectId(4), sec(10)});  // crash-explained

  options.servers.push_back(makeNodeId(0));
  options.plan.crashWindow(sec(9), sec(12), makeNodeId(0));

  const ParityCounts counts = checkRealRun(log, options);
  EXPECT_EQ(counts.lostWrites, 1);
}

TEST(ParityChecker, FlagsWriteDelayBeyondBoundUnlessCrashExplains) {
  CheckerOptions options = basicChecker();
  options.servers.push_back(makeNodeId(0));
  options.plan.crashWindow(sec(20), sec(22), makeNodeId(0));

  RunLog log;
  // bound = 800 + 100 + 400 + 500 = 1800ms; 5s blows it.
  log.writes.push_back(makeWrite(1, 1, sec(2), sec(7)));
  // Same delay overlapping the crash window: exempt.
  log.writes.push_back(makeWrite(2, 1, sec(19), sec(24)));
  // Inside the bound: clean.
  log.writes.push_back(makeWrite(3, 1, sec(2), sec(2) + msec(900)));

  const ParityCounts counts = checkRealRun(log, options);
  EXPECT_EQ(counts.writeDelays, 1);
}

TEST(ParityChecker, FlagsEarlyRecoveryWritesAndEpochRegressions) {
  CheckerOptions options = basicChecker();
  options.servers.push_back(makeNodeId(0));
  options.plan.crashWindow(sec(5), sec(8), makeNodeId(0));
  // silence = volumeTimeout + epsilon = 900ms, minus slack 500 -> writes
  // completing in [8.0s, 8.4s) break the recovery rule.
  RunLog log;
  log.writes.push_back(makeWrite(1, 3, sec(8), sec(8) + msec(200)));
  log.writes.push_back(makeWrite(1, 4, sec(9), sec(9) + msec(100)));  // fine
  // Volume 0's third incarnation failed to ratchet; volume 1's counter
  // interleaves lower values legally (independent per-volume sequences).
  log.epochs = {{makeVolumeId(0), 2}, {makeVolumeId(1), 1},
                {makeVolumeId(0), 3}, {makeVolumeId(1), 2},
                {makeVolumeId(0), 3}};

  const ParityCounts counts = checkRealRun(log, options);
  EXPECT_EQ(counts.earlyRecoveryWrites, 1);
  EXPECT_EQ(counts.epochRegressions, 1);
}

TEST(ParityChecker, EpochRatchetIsPerVolume) {
  // A volume that migrates away and returns resumes from ITS OWN last
  // epoch. A flat cross-volume sequence would flag the interleaving
  // below as regressions (3,1,4,2 non-monotonic) -- per-volume it is
  // clean -- and, conversely, a true regression on one volume must be
  // caught even when a busier volume keeps the flat sequence rising.
  CheckerOptions options = basicChecker();
  RunLog clean;
  clean.epochs = {{makeVolumeId(0), 3}, {makeVolumeId(1), 1},
                  {makeVolumeId(0), 4}, {makeVolumeId(1), 2}};
  EXPECT_EQ(checkRealRun(clean, options).epochRegressions, 0);

  RunLog regressed;
  regressed.epochs = {{makeVolumeId(0), 1}, {makeVolumeId(1), 5},
                      {makeVolumeId(0), 1}, {makeVolumeId(1), 6}};
  EXPECT_EQ(checkRealRun(regressed, options).epochRegressions, 1);
}

TEST(ParityChecker, RunLogRoundTripsAndToleratesTruncatedTail) {
  RunLog log;
  log.epochs.push_back({makeVolumeId(2), 7});
  log.issues.push_back({makeObjectId(3), msec(1500)});
  log.writes.push_back(makeWrite(3, 9, msec(1500), msec(1700)));
  log.reads.push_back(makeRead(4, 3, msec(2000), 9));

  std::string text = formatEpochLine(log.epochs[0].vol, log.epochs[0].epoch);
  text += formatWriteIssueLine(log.issues[0].obj, log.issues[0].issuedAt);
  text += formatWriteLine(log.writes[0]);
  text += formatReadLine(log.reads[0]);
  // A SIGKILL mid-write leaves a partial last line; it must be skipped.
  text += "W 3 10 180";

  const RunLog parsed = parseRunLog(text);
  ASSERT_EQ(parsed.epochs.size(), 1u);
  EXPECT_EQ(raw(parsed.epochs[0].vol), 2u);
  EXPECT_EQ(parsed.epochs[0].epoch, 7);
  ASSERT_EQ(parsed.issues.size(), 1u);
  EXPECT_EQ(parsed.issues[0].issuedAt, msec(1500));
  ASSERT_EQ(parsed.writes.size(), 1u);
  EXPECT_EQ(parsed.writes[0].version, 9);
  EXPECT_EQ(parsed.writes[0].completedAt, msec(1700));
  ASSERT_EQ(parsed.reads.size(), 1u);
  EXPECT_EQ(parsed.reads[0].version, 9);
  EXPECT_TRUE(parsed.reads[0].ok);
}

// ---------------------------------------------------------------------
// single-process loopback chaos: protocol over real sockets with an
// adversarial FaultShim (this is the test CI runs under ASan)
// ---------------------------------------------------------------------

template <typename T>
T getWithin(std::future<T>& future, int seconds = 20) {
  if (future.wait_for(std::chrono::seconds(seconds)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "future not ready within " << seconds << "s";
    std::abort();
  }
  return future.get();
}

TEST(LoopbackChaos, ProtocolSurvivesLossWindowAndReadsFreshAfterHeal) {
  trace::Catalog catalog(1, 1);
  const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  const ObjectId obj = catalog.addObject(vol, 1024);
  (void)vol;
  const NodeId serverId = catalog.serverNode(0);
  const NodeId clientId = catalog.clientNode(0);

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = msec(2000);
  config.volumeTimeout = msec(300);
  config.msgTimeout = msec(150);
  config.readTimeout = msec(800);

  // Loss window over the first 1.2s of the run, 40% per frame, with
  // mid-write truncations included. Both shims see the same plan.
  net::FaultPlan plan;
  plan.setLossAt(0, 0.4);
  plan.setLossAt(msec(1200), 0.0);

  RealTimeDriver serverDriver;
  RealTimeDriver clientDriver;
  stats::Metrics serverMetrics;
  stats::Metrics clientMetrics;
  TcpTransport serverTransport(serverDriver, serverMetrics, 0);
  TcpTransport clientTransport(clientDriver, clientMetrics, 0);
  serverTransport.addPeer(clientId, "127.0.0.1",
                          clientTransport.listenPort());
  clientTransport.addPeer(serverId, "127.0.0.1",
                          serverTransport.listenPort());

  FaultShim serverShim(plan, serverId, &serverDriver, /*seed=*/11);
  FaultShim clientShim(plan, clientId, &clientDriver, /*seed=*/22);
  serverTransport.setFaultHook(&serverShim);
  clientTransport.setFaultHook(&clientShim);
  serverDriver.setStepHook([&](SimTime now) { serverShim.advance(now); });
  clientDriver.setStepHook([&](SimTime now) { clientShim.advance(now); });

  proto::ProtocolContext serverCtx{serverDriver.scheduler(), serverTransport,
                                   serverMetrics, catalog};
  proto::ProtocolContext clientCtx{clientDriver.scheduler(), clientTransport,
                                   clientMetrics, catalog};
  core::VolumeServer server(serverCtx, serverId, config,
                            core::InvalidationMode::kImmediate);
  core::VolumeClient client(clientCtx, clientId, config);
  serverTransport.attach(serverId, &server);
  clientTransport.attach(clientId, &client);

  std::thread serverLoop([&]() { serverDriver.run(); });
  std::thread clientLoop([&]() { clientDriver.run(); });

  const auto readOnce = [&]() {
    std::promise<proto::ReadResult> promise;
    auto future = promise.get_future();
    clientDriver.post([&]() {
      client.read(obj, [&promise](const proto::ReadResult& r) {
        promise.set_value(r);
      });
    });
    return getWithin(future);
  };
  const auto writeOnce = [&]() {
    std::promise<proto::WriteResult> promise;
    auto future = promise.get_future();
    serverDriver.post([&]() {
      server.write(obj, [&promise](const proto::WriteResult& r) {
        promise.set_value(r);
      });
    });
    return getWithin(future);
  };

  // Fire reads and writes INTO the loss window (paced so the rounds
  // actually span it); outcomes may be ok or failed, but nothing may
  // hang, crash, or corrupt.
  Version lastWritten = kNoVersion;
  for (int i = 0; i < 8; ++i) {
    const proto::WriteResult w = writeOnce();
    lastWritten = w.newVersion;
    (void)readOnce();
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Wait out the heal plus one full volume-lease term, then a read MUST
  // succeed and see at least the last committed version.
  std::this_thread::sleep_for(std::chrono::milliseconds(2000));
  proto::ReadResult final{};
  for (int attempt = 0; attempt < 10; ++attempt) {
    final = readOnce();
    if (final.ok && final.version >= lastWritten) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }

  serverDriver.stop();
  clientDriver.stop();
  serverLoop.join();
  clientLoop.join();

  EXPECT_TRUE(final.ok);
  EXPECT_GE(final.version, lastWritten);
  // The loss window must have actually bitten something, or this test
  // exercised nothing: at least one injected drop or truncation across
  // both shims' transports.
  EXPECT_GT(serverTransport.injectedDrops() +
                serverTransport.injectedTruncations() +
                clientTransport.injectedDrops() +
                clientTransport.injectedTruncations(),
            0);
}

}  // namespace
}  // namespace vlease::rt
