// Tests for the experiment driver: the Simulation binder, the canonical
// workload builder, and the report printers.
#include <gtest/gtest.h>

#include <sstream>

#include "driver/report.h"
#include "driver/simulation.h"
#include "driver/workloads.h"

namespace vlease::driver {
namespace {

trace::Catalog tinyCatalog() {
  trace::Catalog catalog(2, 2);
  for (std::uint32_t s = 0; s < 2; ++s) {
    VolumeId vol = catalog.addVolume(catalog.serverNode(s));
    catalog.addObject(vol, 128);
    catalog.addObject(vol, 128);
  }
  return catalog;
}

proto::ProtocolConfig volumeCfg() {
  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(1000);
  config.volumeTimeout = sec(10);
  return config;
}

// ---- Simulation ----

TEST(SimulationTest, RunProcessesAllEvents) {
  auto catalog = tinyCatalog();
  Simulation sim(catalog, volumeCfg());
  std::vector<trace::TraceEvent> events = {
      {sec(1), trace::EventKind::kRead, catalog.clientNode(0), makeObjectId(0)},
      {sec(2), trace::EventKind::kWrite, {}, makeObjectId(0)},
      {sec(3), trace::EventKind::kRead, catalog.clientNode(1), makeObjectId(2)},
  };
  auto& m = sim.run(events);
  EXPECT_EQ(m.reads(), 2);
  EXPECT_EQ(m.writes(), 1);
  EXPECT_EQ(m.staleReads(), 0);
  EXPECT_EQ(m.horizon(), sec(3));
}

TEST(SimulationTest, SameInstantReadThenWriteSeesOldVersion) {
  // The paper's sequential model: a read and write with the same
  // timestamp process read-first, and the read completes (consistently)
  // before the write begins.
  auto catalog = tinyCatalog();
  Simulation sim(catalog, volumeCfg());
  std::vector<trace::TraceEvent> events = {
      {sec(1), trace::EventKind::kRead, catalog.clientNode(0), makeObjectId(0)},
      {sec(1), trace::EventKind::kWrite, {}, makeObjectId(0)},
  };
  auto& m = sim.run(events);
  EXPECT_EQ(m.staleReads(), 0);
  EXPECT_EQ(m.reads(), 1);
}

TEST(SimulationTest, HorizonOverride) {
  auto catalog = tinyCatalog();
  SimOptions options;
  options.horizon = sec(100);
  Simulation sim(catalog, volumeCfg(), options);
  sim.issueRead(catalog.clientNode(0), makeObjectId(0), nullptr);
  sim.finish();
  EXPECT_EQ(sim.metrics().horizon(), sec(100));
  // One object lease (capped at horizon: 100 s of 1000) + one volume
  // lease (10 s): (16*100 + 16*10) / 100 = 17.6 bytes.
  EXPECT_NEAR(sim.metrics().avgStateBytes(catalog.serverNode(0)), 17.6, 0.1);
}

TEST(SimulationTest, TrackServerLoadRecordsAllServers) {
  auto catalog = tinyCatalog();
  SimOptions options;
  options.trackServerLoad = true;
  Simulation sim(catalog, volumeCfg(), options);
  sim.issueRead(catalog.clientNode(0), makeObjectId(0), nullptr);
  sim.issueRead(catalog.clientNode(0), makeObjectId(2), nullptr);
  sim.drainTo(0);
  EXPECT_TRUE(sim.metrics().hasLoadSeries(catalog.serverNode(0)));
  EXPECT_TRUE(sim.metrics().hasLoadSeries(catalog.serverNode(1)));
  EXPECT_EQ(sim.metrics().loadSeries(catalog.serverNode(0)).at(0), 4);
}

TEST(SimulationTest, FinishDrainsPendingWrites) {
  auto catalog = tinyCatalog();
  proto::ProtocolConfig config = volumeCfg();
  config.msgTimeout = sec(5);
  Simulation sim(catalog, config);
  sim.network().setLatency(msec(10));
  sim.issueRead(catalog.clientNode(0), makeObjectId(0), nullptr);
  sim.drainTo(sec(1));
  sim.network().failures().isolate(catalog.clientNode(0));
  bool committed = false;
  sim.issueWrite(makeObjectId(0),
                 [&](const proto::WriteResult&) { committed = true; });
  sim.finish();  // must run the ack-wait timer out
  EXPECT_TRUE(committed);
  EXPECT_EQ(sim.metrics().writes(), 1);
}

TEST(SimulationTest, OracleCountsStaleAgainstCurrentVersion) {
  auto catalog = tinyCatalog();
  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kPoll;
  config.objectTimeout = sec(1000);
  Simulation sim(catalog, config);
  std::vector<trace::TraceEvent> events = {
      {sec(1), trace::EventKind::kRead, catalog.clientNode(0), makeObjectId(0)},
      {sec(2), trace::EventKind::kWrite, {}, makeObjectId(0)},
      {sec(3), trace::EventKind::kWrite, {}, makeObjectId(0)},
      {sec(4), trace::EventKind::kRead, catalog.clientNode(0), makeObjectId(0)},
      {sec(5), trace::EventKind::kRead, catalog.clientNode(0), makeObjectId(1)},
  };
  auto& m = sim.run(events);
  EXPECT_EQ(m.staleReads(), 1);  // only the poll-window read of object 0
}

// ---- workloads ----

TEST(WorkloadsTest, BuildsPaperShapedWorkload) {
  WorkloadOptions options;
  options.scale = 0.01;
  options.numServers = 100;
  Workload workload = buildWorkload(options);
  EXPECT_EQ(workload.catalog.numServers(), 100u);
  EXPECT_EQ(workload.catalog.numClients(), 33u);
  EXPECT_EQ(workload.catalog.numVolumes(), 100u);
  EXPECT_TRUE(trace::isSorted(workload.events));
  EXPECT_EQ(static_cast<std::int64_t>(workload.events.size()),
            workload.readCount + workload.writeCount);
  EXPECT_GT(workload.readCount, 0);
  EXPECT_GT(workload.writeCount, 0);
  // Read/write ratio within a factor ~2 of the paper's 4.9.
  const double ratio = static_cast<double>(workload.readCount) /
                       static_cast<double>(workload.writeCount);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 10.0);
}

TEST(WorkloadsTest, DeterministicForSeed) {
  WorkloadOptions options;
  options.scale = 0.005;
  options.numServers = 50;
  Workload a = buildWorkload(options);
  Workload b = buildWorkload(options);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); i += 101) {
    EXPECT_EQ(a.events[i].at, b.events[i].at);
    EXPECT_EQ(a.events[i].obj, b.events[i].obj);
  }
}

TEST(WorkloadsTest, BurstyOptionInflatesWrites) {
  WorkloadOptions options;
  options.scale = 0.005;
  options.numServers = 50;
  Workload plain = buildWorkload(options);
  options.burstyWrites = true;
  Workload bursty = buildWorkload(options);
  EXPECT_GT(bursty.writeCount, 3 * plain.writeCount);
  EXPECT_EQ(bursty.readCount, plain.readCount);
}

TEST(WorkloadsTest, NthBusiestServerOrdering) {
  WorkloadOptions options;
  options.scale = 0.005;
  options.numServers = 50;
  Workload workload = buildWorkload(options);
  const auto top = nthBusiestServer(workload, 0);
  const auto second = nthBusiestServer(workload, 1);
  EXPECT_GE(workload.readsPerServer[top], workload.readsPerServer[second]);
  for (std::uint32_t s = 0; s < 50; ++s) {
    EXPECT_LE(workload.readsPerServer[s], workload.readsPerServer[top]);
  }
}

// ---- report ----

TEST(ReportTest, AlignedTable) {
  Table table({"name", "value"});
  table.addRow({"alpha", "1"});
  table.addRow({"b", "22222"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Columns align: "value" and "22222" start at the same offset.
  const auto header = out.substr(0, out.find('\n'));
  EXPECT_EQ(header.find("value"), out.find("22222") - out.rfind('\n', out.find("22222")) - 1);
}

TEST(ReportTest, CsvOutput) {
  Table table({"a", "b"});
  table.addRow({"1", "2"});
  std::ostringstream os;
  table.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(ReportTest, ShortRowsPadded) {
  Table table({"a", "b", "c"});
  table.addRow({"only"});
  std::ostringstream os;
  table.printCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(ReportTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(std::int64_t{42}), "42");
  EXPECT_EQ(Table::num(std::numeric_limits<double>::infinity(), 1), "inf");
}

}  // namespace
}  // namespace vlease::driver
