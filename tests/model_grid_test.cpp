// Parameterized simulator-vs-model grid (TEST_P): deterministic periodic
// workloads across a grid of (read gap, object timeout, volume timeout),
// asserting that measured renewal round trips land exactly on the
// closed-form count. This is the dense version of the paper's §4.1
// validation ("simple synthetic workloads for which we could
// analytically compute the expected results").
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "driver/simulation.h"
#include "trace/catalog.h"

namespace vlease {
namespace {

struct GridPoint {
  std::int64_t gapSec;   // read period
  std::int64_t tSec;     // object timeout
  std::int64_t tvSec;    // volume timeout
  int reps;              // number of reads
};

std::string gridName(const ::testing::TestParamInfo<GridPoint>& info) {
  return "gap" + std::to_string(info.param.gapSec) + "_t" +
         std::to_string(info.param.tSec) + "_tv" +
         std::to_string(info.param.tvSec);
}

/// Deterministic periodic reads: renewal happens on the first read at or
/// after the previous renewal + timeout. With reads at k*gap and timeout
/// T, renewals occur every ceil(T/gap) reads.
std::int64_t expectedRenewals(std::int64_t gapSec, std::int64_t timeoutSec,
                              int reps) {
  if (timeoutSec <= 0) return reps;
  const std::int64_t stride = (timeoutSec + gapSec - 1) / gapSec;
  // Renewals at read indices 0, stride, 2*stride, ...
  return (reps + stride - 1) / stride;
}

class ModelGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(ModelGridTest, RenewalCountsMatchClosedForm) {
  const GridPoint& p = GetParam();
  trace::Catalog catalog(1, 1);
  VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  ObjectId obj = catalog.addObject(vol, 100);
  (void)vol;

  std::vector<trace::TraceEvent> events;
  for (int i = 0; i < p.reps; ++i) {
    events.push_back(trace::TraceEvent{sec(p.gapSec) * i,
                                       trace::EventKind::kRead,
                                       catalog.clientNode(0), obj});
  }

  // Lease: object renewals only.
  {
    proto::ProtocolConfig config;
    config.algorithm = proto::Algorithm::kLease;
    config.objectTimeout = sec(p.tSec);
    driver::Simulation sim(catalog, config);
    auto& m = sim.run(events);
    EXPECT_EQ(m.totalMessages(),
              2 * expectedRenewals(p.gapSec, p.tSec, p.reps))
        << "Lease";
  }
  // Volume: object + volume renewals, independent clocks.
  {
    proto::ProtocolConfig config;
    config.algorithm = proto::Algorithm::kVolumeLease;
    config.objectTimeout = sec(p.tSec);
    config.volumeTimeout = sec(p.tvSec);
    driver::Simulation sim(catalog, config);
    auto& m = sim.run(events);
    EXPECT_EQ(m.totalMessages(),
              2 * expectedRenewals(p.gapSec, p.tSec, p.reps) +
                  2 * expectedRenewals(p.gapSec, p.tvSec, p.reps))
        << "Volume";
  }
  // Poll: identical renewal count to Lease on a read-only workload.
  {
    proto::ProtocolConfig config;
    config.algorithm = proto::Algorithm::kPoll;
    config.objectTimeout = sec(p.tSec);
    driver::Simulation sim(catalog, config);
    auto& m = sim.run(events);
    EXPECT_EQ(m.totalMessages(),
              2 * expectedRenewals(p.gapSec, p.tSec, p.reps))
        << "Poll";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelGridTest,
    ::testing::Values(GridPoint{100, 10'000, 100, 400},   // paper's point
                      GridPoint{100, 100, 100, 400},      // t == gap == tv
                      GridPoint{100, 1000, 10, 400},      // t_v < gap
                      GridPoint{30, 90, 300, 300},        // t_v > t
                      GridPoint{7, 100, 50, 500},         // non-divisible
                      GridPoint{1, 3, 2, 100},            // tiny everything
                      GridPoint{500, 100, 100, 200},      // gap > both
                      GridPoint{60, 86'400, 600, 500}),   // day-long leases
    gridName);

/// Write-side grid: C_o clients with valid object leases at write time.
class WriteFanoutGridTest : public ::testing::TestWithParam<int> {};

TEST_P(WriteFanoutGridTest, InvalidationCountEqualsValidHolders) {
  const int validHolders = GetParam();
  constexpr int kTotalClients = 12;
  trace::Catalog catalog(1, kTotalClients);
  VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  ObjectId obj = catalog.addObject(vol, 100);
  (void)vol;

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kLease;
  config.objectTimeout = sec(1000);
  driver::Simulation sim(catalog, config);

  std::vector<trace::TraceEvent> events;
  // Stale clients read at t=0 (leases die at 1000).
  for (int c = validHolders; c < kTotalClients; ++c) {
    events.push_back({sec(c), trace::EventKind::kRead,
                      catalog.clientNode(static_cast<std::uint32_t>(c)), obj});
  }
  // Valid holders read shortly before the write.
  for (int c = 0; c < validHolders; ++c) {
    events.push_back({sec(5000 + c), trace::EventKind::kRead,
                      catalog.clientNode(static_cast<std::uint32_t>(c)), obj});
  }
  events.push_back({sec(5500), trace::EventKind::kWrite, {}, obj});
  trace::sortEvents(events);
  auto& m = sim.run(events);
  // Fetches: 2 per read; write: 2 per valid holder.
  EXPECT_EQ(m.totalMessages(), 2 * kTotalClients + 2 * validHolders);
}

INSTANTIATE_TEST_SUITE_P(Fanout, WriteFanoutGridTest,
                         ::testing::Values(0, 1, 3, 7, 12));

}  // namespace
}  // namespace vlease
