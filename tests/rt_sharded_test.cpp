// ShardedNode: the per-thread protocol shards behind one I/O thread.
// Covers the routing contract (shardOf -> SPSC inbound -> shard app ->
// SPSC outbound -> egress), loss-counted back-pressure on a full
// inbound queue, per-shard metrics merged on report, and the chaos
// smoke the satellite asks for: a live volume-lease exchange against a
// sharded server where a FaultShim truncation lands mid-writev on the
// I/O thread's coalesced send path -- the protocol must retry through
// it and end consistent.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "net/fault_plan.h"
#include "rt/fault_injector.h"
#include "rt/real_time.h"
#include "rt/sharded.h"
#include "rt/tcp_transport.h"
#include "stats/metrics.h"
#include "trace/catalog.h"

namespace vlease::rt {
namespace {

std::size_t shardOfMessage(const net::Message& m,
                           const trace::Catalog& catalog, std::size_t shards) {
  return std::visit(
      [&](const auto& p) -> std::size_t {
        if constexpr (requires { p.vol; }) {
          return static_cast<std::size_t>(raw(p.vol) % shards);
        } else {
          return static_cast<std::size_t>(raw(catalog.object(p.obj).volume) %
                                          shards);
        }
      },
      m.payload);
}

class CountSink final : public net::MessageSink {
 public:
  void deliver(const net::Message&) override { ++count_; }
  std::int64_t count() const { return count_; }

 private:
  std::int64_t count_ = 0;
};

/// Echo app for a shard: replies to every message, counts deliveries,
/// and bumps a shard-local metrics counter so the merge path is
/// observable. The count lands in `out` when the app is destroyed on
/// its shard thread (read after join).
class EchoApp final : public rt::ShardApp {
 public:
  EchoApp(net::Transport& transport, stats::Metrics& metrics, NodeId self,
          std::int64_t* out)
      : sink_(transport, metrics, self), out_(out) {}
  ~EchoApp() override { *out_ = sink_.count; }
  net::MessageSink& sink() override { return sink_; }

 private:
  struct Sink final : net::MessageSink {
    Sink(net::Transport& t, stats::Metrics& m, NodeId s)
        : transport(t), metrics(m), self(s) {}
    void deliver(const net::Message& msg) override {
      ++count;
      metrics.onTransportRetry();  // any counter works; merge must sum it
      net::Message reply;
      reply.from = self;
      reply.to = msg.from;
      reply.payload = msg.payload;
      transport.send(std::move(reply));
    }
    net::Transport& transport;
    stats::Metrics& metrics;
    NodeId self;
    std::int64_t count = 0;
  };
  Sink sink_;
  std::int64_t* out_;
};

TEST(ShardedNode, RoutesAcrossShardsEchoesAndMergesMetrics) {
  trace::Catalog catalog(1, 1);
  // Two volumes on the one server, one object each: messages for obj i
  // key to volume i and therefore to shard i % 2.
  std::vector<ObjectId> objs;
  for (int v = 0; v < 2; ++v) {
    const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
    objs.push_back(catalog.addObject(vol, 1024));
  }

  RealTimeDriver driver;
  stats::Metrics metrics;
  TcpTransport a(driver, metrics, 0);
  TcpTransport b(driver, metrics, 0);
  const NodeId nodeA = catalog.clientNode(0);
  const NodeId nodeB = catalog.serverNode(0);
  a.addPeer(nodeB, "127.0.0.1", b.listenPort());
  b.addPeer(nodeA, "127.0.0.1", a.listenPort());

  CountSink replies;
  a.attach(nodeA, &replies);

  std::array<std::int64_t, 2> perShard{0, 0};
  ShardedNode sharded(driver, b, 2, [&catalog](const net::Message& m) {
    return shardOfMessage(m, catalog, 2);
  });
  b.attach(nodeB, &sharded);
  sharded.start([&](ShardedNode::ShardContext& sc)
                    -> std::unique_ptr<rt::ShardApp> {
    return std::make_unique<EchoApp>(sc.transport, sc.metrics, nodeB,
                                     &perShard[sc.index]);
  });

  // Eight pings, four per shard (object id alternates volumes).
  constexpr std::int64_t kPings = 8;
  driver.post([&]() {
    for (std::int64_t i = 0; i < kPings; ++i) {
      net::Message ping;
      ping.from = nodeA;
      ping.to = nodeB;
      ping.payload = net::PollRequest{objs[static_cast<std::size_t>(i % 2)],
                                      static_cast<Version>(i + 1)};
      a.send(std::move(ping));
    }
  });

  for (int step = 0; step < 20000 && replies.count() < kPings; ++step) {
    driver.step();
  }
  sharded.stop();

  EXPECT_EQ(replies.count(), kPings);
  EXPECT_EQ(perShard[0], kPings / 2);
  EXPECT_EQ(perShard[1], kPings / 2);
  EXPECT_EQ(sharded.inboundDropped(), 0);
  EXPECT_EQ(sharded.outboundDropped(), 0);

  // Per-shard metrics fold into the run-wide view.
  stats::Metrics merged;
  sharded.mergeMetricsInto(merged);
  EXPECT_EQ(merged.transportRetries(), kPings);
}

TEST(ShardedNode, FullInboundQueueDropsAndCounts) {
  trace::Catalog catalog(1, 1);
  const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  const ObjectId obj = catalog.addObject(vol, 64);

  RealTimeDriver driver;
  stats::Metrics metrics;
  TcpTransport egress(driver, metrics, 0);

  ShardedNode::Options options;
  options.inboundCapacity = 2;
  ShardedNode sharded(driver, egress, 1,
                      [](const net::Message&) { return std::size_t{0}; },
                      options);

  // Shards not started: the queue cannot drain, so pushes past the
  // bound are dropped and counted -- back-pressure is loss, counted.
  net::Message msg;
  msg.from = catalog.clientNode(0);
  msg.to = catalog.serverNode(0);
  msg.payload = net::PollRequest{obj, 1};
  for (int i = 0; i < 10; ++i) sharded.deliver(msg);
  EXPECT_EQ(sharded.inboundDropped(), 8);
}

// ---------------------------------------------------------------------
// Threaded chaos smoke: truncation lands mid-writev
// ---------------------------------------------------------------------

/// Delegates to a FaultShim but guarantees the first sizable server
/// frame is truncated mid-write: shard replies leave through the I/O
/// thread's coalesced writev path, so the kill hits a frame sitting in
/// the pending queue -- the exact case the satellite asks to smoke.
class TruncateFirstThenShim final : public FaultHook {
 public:
  explicit TruncateFirstThenShim(FaultShim& inner) : inner_(inner) {}
  SendFault onSend(NodeId from, NodeId to, std::size_t frameBytes) override {
    if (!truncated_ && frameBytes > 8) {
      truncated_ = true;
      SendFault fault;
      fault.kind = SendFault::Kind::kTruncate;
      fault.truncateAt = frameBytes / 2;
      fault.halfClose = true;
      return fault;
    }
    return inner_.onSend(from, to, frameBytes);
  }
  bool dropInbound(NodeId from, NodeId to) override {
    return inner_.dropInbound(from, to);
  }

 private:
  FaultShim& inner_;
  bool truncated_ = false;  // I/O loop thread only
};

template <typename T>
T getWithin(std::future<T>& future, int seconds = 20) {
  if (future.wait_for(std::chrono::seconds(seconds)) !=
      std::future_status::ready) {
    ADD_FAILURE() << "future not ready within " << seconds << "s";
    std::abort();
  }
  return future.get();
}

TEST(ShardedChaos, ServerSurvivesMidWritevTruncationAndLossWindow) {
  trace::Catalog catalog(1, 1);
  std::vector<ObjectId> objs;
  for (int v = 0; v < 2; ++v) {
    const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
    objs.push_back(catalog.addObject(vol, 1024));
  }
  const NodeId serverId = catalog.serverNode(0);
  const NodeId clientId = catalog.clientNode(0);

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = msec(2000);
  config.volumeTimeout = msec(300);
  config.msgTimeout = msec(150);
  config.readTimeout = msec(800);

  // Probabilistic loss over the first 1.2s on top of the deterministic
  // first-frame truncation.
  net::FaultPlan plan;
  plan.setLossAt(0, 0.3);
  plan.setLossAt(msec(1200), 0.0);

  RealTimeDriver serverDriver;  // the sharded server's I/O thread
  RealTimeDriver clientDriver;
  stats::Metrics serverMetrics;
  stats::Metrics clientMetrics;
  TcpTransport serverTransport(serverDriver, serverMetrics, 0);
  TcpTransport clientTransport(clientDriver, clientMetrics, 0);
  serverTransport.addPeer(clientId, "127.0.0.1",
                          clientTransport.listenPort());
  clientTransport.addPeer(serverId, "127.0.0.1",
                          serverTransport.listenPort());

  FaultShim serverShim(plan, serverId, &serverDriver, /*seed=*/11);
  FaultShim clientShim(plan, clientId, &clientDriver, /*seed=*/22);
  TruncateFirstThenShim serverHook(serverShim);
  serverTransport.setFaultHook(&serverHook);
  clientTransport.setFaultHook(&clientShim);
  serverDriver.setStepHook([&](SimTime now) { serverShim.advance(now); });
  clientDriver.setStepHook([&](SimTime now) { clientShim.advance(now); });

  // Last version each shard committed, read by the final asserts.
  std::array<std::atomic<Version>, 2> committed{};

  struct ServerShardApp final : rt::ShardApp {
    proto::ProtocolContext ctx;  // the server holds a reference into this
    core::VolumeServer server;
    ServerShardApp(const proto::ProtocolContext& c, NodeId id,
                   const proto::ProtocolConfig& cfg)
        : ctx(c), server(ctx, id, cfg, core::InvalidationMode::kImmediate) {}
    net::MessageSink& sink() override { return server; }
  };

  ShardedNode sharded(serverDriver, serverTransport, 2,
                      [&catalog](const net::Message& m) {
                        return shardOfMessage(m, catalog, 2);
                      });
  serverTransport.attach(serverId, &sharded);
  sharded.start([&](ShardedNode::ShardContext& sc)
                    -> std::unique_ptr<rt::ShardApp> {
    proto::ProtocolContext sctx{sc.driver.scheduler(), sc.transport,
                                sc.metrics, catalog};
    auto app = std::make_unique<ServerShardApp>(sctx, serverId, config);
    sc.transport.attach(serverId, &app->server);
    // Eight paced writes to this shard's object, spanning the window.
    const ObjectId obj = objs[sc.index];
    std::atomic<Version>* slot = &committed[sc.index];
    core::VolumeServer* server = &app->server;
    for (int round = 0; round < 8; ++round) {
      sc.driver.scheduler().scheduleAt(
          msec(150 * (round + 1)), [server, slot, obj]() {
            server->write(obj, [slot](const proto::WriteResult& r) {
              slot->store(r.newVersion, std::memory_order_relaxed);
            });
          });
    }
    return app;
  });

  proto::ProtocolContext clientCtx{clientDriver.scheduler(), clientTransport,
                                   clientMetrics, catalog};
  core::VolumeClient client(clientCtx, clientId, config);
  clientTransport.attach(clientId, &client);

  std::thread serverLoop([&]() { serverDriver.run(); });
  std::thread clientLoop([&]() { clientDriver.run(); });

  const auto readOnce = [&](ObjectId obj) {
    std::promise<proto::ReadResult> promise;
    auto future = promise.get_future();
    clientDriver.post([&]() {
      client.read(obj, [&promise](const proto::ReadResult& r) {
        promise.set_value(r);
      });
    });
    return getWithin(future);
  };

  // Read both objects through the fault window; outcomes may fail but
  // nothing may hang or crash.
  for (int round = 0; round < 8; ++round) {
    (void)readOnce(objs[0]);
    (void)readOnce(objs[1]);
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  }

  // Past the heal plus a full lease term, reads must succeed and see at
  // least the last committed version on BOTH shards.
  std::this_thread::sleep_for(std::chrono::milliseconds(1500));
  for (std::size_t i = 0; i < 2; ++i) {
    proto::ReadResult final{};
    for (int attempt = 0; attempt < 10; ++attempt) {
      final = readOnce(objs[i]);
      if (final.ok &&
          final.version >= committed[i].load(std::memory_order_relaxed)) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    EXPECT_TRUE(final.ok) << "shard " << i;
    EXPECT_GE(final.version, committed[i].load(std::memory_order_relaxed))
        << "shard " << i;
    EXPECT_GT(committed[i].load(std::memory_order_relaxed), kNoVersion)
        << "shard " << i << " never committed a write";
  }

  clientDriver.stop();
  clientLoop.join();
  serverDriver.stop();
  serverLoop.join();
  sharded.stop();

  // The deterministic mid-writev truncation must have landed, and no
  // message may have been silently lost to the shard queues.
  EXPECT_GE(serverTransport.injectedTruncations(), 1);
  EXPECT_EQ(sharded.inboundDropped(), 0);
  EXPECT_EQ(sharded.outboundDropped(), 0);
}

}  // namespace
}  // namespace vlease::rt
