#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

namespace vlease {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  util::ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SingleWorkerPreservesFifoOrder) {
  util::ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  util::ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> completed{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&completed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++completed;
      });
    }
  }  // destructor must wait for all 64
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(util::ThreadPool::defaultThreads(), 1u);
}

}  // namespace
}  // namespace vlease
