// Tests for finite (LRU) client caches and Liu-Cao invalidation
// retransmission.
#include <gtest/gtest.h>

#include "core/volume_server.h"
#include "driver/simulation.h"
#include "driver/workloads.h"
#include "proto/client_cache.h"
#include "proto_fixture.h"
#include "util/rng.h"

namespace vlease {
namespace {

using proto::Algorithm;
using proto::ClientCache;
using proto::ProtocolConfig;
using testing::ProtoHarness;

// ---------------------------------------------------------------------
// ClientCache LRU mechanics
// ---------------------------------------------------------------------

TEST(LruCacheTest, UnboundedByDefault) {
  ClientCache cache;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.entry(makeObjectId(i)).hasData = true;
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_EQ(cache.evictions(), 0);
}

TEST(LruCacheTest, CapacityEnforced) {
  ClientCache cache(3);
  for (std::uint64_t i = 0; i < 10; ++i) {
    cache.entry(makeObjectId(i)).hasData = true;
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.evictions(), 7);
  // The three most recent survive.
  EXPECT_NE(cache.find(makeObjectId(9)), nullptr);
  EXPECT_NE(cache.find(makeObjectId(8)), nullptr);
  EXPECT_NE(cache.find(makeObjectId(7)), nullptr);
  EXPECT_EQ(cache.find(makeObjectId(6)), nullptr);
}

TEST(LruCacheTest, TouchProtectsFromEviction) {
  ClientCache cache(2);
  cache.entry(makeObjectId(1)).hasData = true;
  cache.entry(makeObjectId(2)).hasData = true;
  cache.touch(makeObjectId(1));        // 1 is now most recent
  cache.entry(makeObjectId(3));        // evicts 2, not 1
  EXPECT_NE(cache.find(makeObjectId(1)), nullptr);
  EXPECT_EQ(cache.find(makeObjectId(2)), nullptr);
}

TEST(LruCacheTest, ReinsertAfterEviction) {
  ClientCache cache(1);
  cache.entry(makeObjectId(1)).version = 5;
  cache.entry(makeObjectId(2)).version = 6;
  EXPECT_EQ(cache.find(makeObjectId(1)), nullptr);
  // Re-inserting 1 starts from a fresh entry, not a stale one.
  EXPECT_EQ(cache.entry(makeObjectId(1)).version, kNoVersion);
}

TEST(LruCacheTest, ClearResetsEverything) {
  ClientCache cache(4);
  for (std::uint64_t i = 0; i < 8; ++i) cache.entry(makeObjectId(i));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    cache.entry(makeObjectId(i));  // must not trip the LRU bookkeeping
  }
  EXPECT_EQ(cache.size(), 4u);
}

TEST(LruCacheTest, ForEachVisitsAllEntries) {
  ClientCache cache(8);
  for (std::uint64_t i = 0; i < 5; ++i) {
    cache.entry(makeObjectId(i)).hasData = true;
  }
  int visited = 0;
  cache.forEach([&](ObjectId, const proto::CacheEntry& e) {
    EXPECT_TRUE(e.hasData);
    ++visited;
  });
  EXPECT_EQ(visited, 5);
}

// ---------------------------------------------------------------------
// finite caches under the protocols
// ---------------------------------------------------------------------

ProtocolConfig volumeCfg(std::size_t capacity) {
  ProtocolConfig config;
  config.algorithm = Algorithm::kVolumeLease;
  config.objectTimeout = sec(100'000);
  config.volumeTimeout = sec(100);
  config.clientCacheCapacity = capacity;
  return config;
}

TEST(FiniteCacheTest, EvictedObjectRefetches) {
  ProtoHarness h(volumeCfg(2), 1, 1, /*objectsPerVolume=*/4);
  h.read(0, 0);
  h.read(0, 1);
  h.read(0, 2);  // evicts object 0
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);  // capacity miss: full refetch
}

TEST(FiniteCacheTest, WorkingSetWithinCapacityStillHits) {
  ProtoHarness h(volumeCfg(4), 1, 1, 4);
  for (std::uint64_t o = 0; o < 4; ++o) h.read(0, o);
  for (std::uint64_t o = 0; o < 4; ++o) {
    EXPECT_FALSE(h.read(0, o).usedNetwork) << o;
  }
}

TEST(FiniteCacheTest, SmallerCachesCostMoreMessages) {
  driver::WorkloadOptions opts;
  opts.scale = 0.01;
  opts.numServers = 50;
  driver::Workload workload = driver::buildWorkload(opts);
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::size_t capacity : {std::size_t{4}, std::size_t{64},
                               std::size_t{0} /* infinite */}) {
    driver::Simulation sim(workload.catalog, volumeCfg(capacity));
    const std::int64_t messages = sim.run(workload.events).totalMessages();
    EXPECT_LE(messages, prev) << "capacity " << capacity;
    prev = messages;
  }
}

TEST(FiniteCacheTest, ConsistencyHoldsUnderEvictionChurn) {
  // Tiny caches force constant eviction/refetch alongside writes and
  // invalidations; nothing may ever be stale.
  for (Algorithm algorithm :
       {Algorithm::kLease, Algorithm::kVolumeLease,
        Algorithm::kVolumeDelayedInval}) {
    ProtocolConfig config = volumeCfg(2);
    config.algorithm = algorithm;
    ProtoHarness h(config, 1, 2, /*objectsPerVolume=*/6);
    Rng rng(31 + static_cast<std::uint64_t>(algorithm));
    SimTime t = 0;
    for (int op = 0; op < 400; ++op) {
      t += static_cast<SimDuration>(
          rng.nextExponential(static_cast<double>(sec(5))));
      h.sim->drainTo(t);
      const auto obj = makeObjectId(rng.nextBelow(6));
      if (rng.nextBool(0.25)) {
        h.sim->issueWrite(obj);
      } else {
        h.sim->issueRead(
            h.client(static_cast<std::uint32_t>(rng.nextBelow(2))), obj);
      }
    }
    h.sim->finish();
    EXPECT_EQ(h.metrics().staleReads(), 0) << proto::algorithmName(algorithm);
    EXPECT_EQ(h.metrics().failedReads(), 0) << proto::algorithmName(algorithm);
  }
}

TEST(FiniteCacheTest, EvictionForgettingLeaseIsSafeOnWrite) {
  // The server still believes the evicted client holds a lease; the
  // invalidation goes out, the client acks an object it no longer has,
  // and the write commits normally.
  ProtoHarness h(volumeCfg(1), 1, 1, 3);
  h.read(0, 0);
  h.read(0, 1);  // evicts object 0 client-side
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);  // ack arrived despite the missing entry
  EXPECT_FALSE(w.blocked);
}

// ---------------------------------------------------------------------
// Liu-Cao retransmission
// ---------------------------------------------------------------------

ProtocolConfig liuCaoCfg(int retries) {
  ProtocolConfig config;
  config.algorithm = Algorithm::kBestEffortLease;
  config.objectTimeout = sec(10'000);
  config.bestEffortRetries = retries;
  config.retryInterval = sec(30);
  return config;
}

TEST(LiuCaoTest, RetransmitRepairsLostInvalidation) {
  ProtoHarness h(liuCaoCfg(3));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // first invalidation dropped
  h.network().failures().deisolate(h.client(0));

  // Before the retry fires: stale.
  h.advanceTo(h.scheduler().now() + sec(10));
  EXPECT_EQ(h.read(0, 0).version, 1);
  EXPECT_EQ(h.metrics().staleReads(), 1);

  // The 30 s retransmission lands and the cache is repaired -- staleness
  // window ~retryInterval instead of the full 10'000 s lease.
  h.advanceTo(h.scheduler().now() + sec(35));
  auto r = h.read(0, 0);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 1);
}

TEST(LiuCaoTest, AckStopsRetransmission) {
  ProtoHarness h(liuCaoCfg(5));
  h.read(0, 0);
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);  // delivered; client acks immediately
  h.advanceTo(h.scheduler().now() + sec(300));  // several retry intervals
  // Exactly one invalidation + one ack -- no retransmissions.
  EXPECT_EQ(h.metrics().totalMessages(), before + 2);
}

TEST(LiuCaoTest, RetryBudgetBounded) {
  ProtoHarness h(liuCaoCfg(3));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  h.advanceTo(h.scheduler().now() + sec(500));  // all retries elapsed
  // 1 original + 3 retransmissions, all counted at the sender.
  EXPECT_EQ(h.metrics().totalMessages(), before + 4);
}

TEST(LiuCaoTest, WithoutRetriesClientsDoNotAck) {
  ProtoHarness h(liuCaoCfg(0));
  h.read(0, 0);
  const std::int64_t before = h.metrics().totalMessages();
  h.write(0);
  h.advanceTo(h.scheduler().now() + sec(300));
  EXPECT_EQ(h.metrics().totalMessages(), before + 1);  // invalidation only
}

TEST(LiuCaoTest, NewWriteSupersedesRetryChain) {
  ProtoHarness h(liuCaoCfg(2));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);
  h.advanceTo(h.scheduler().now() + sec(5));
  h.write(0);  // resets the retry budget for the same (obj, client)
  h.network().failures().deisolate(h.client(0));
  h.advanceTo(h.scheduler().now() + sec(100));
  auto r = h.read(0, 0);  // repaired by the superseding chain
  EXPECT_EQ(r.version, 3);
}

TEST(LiuCaoTest, StillWeakUnderLongPartition) {
  // The paper's §6 point about Liu & Cao: retransmission helps but
  // cannot guarantee strong consistency across a partition.
  ProtoHarness h(liuCaoCfg(2));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);
  // Stay partitioned past the whole retry budget...
  h.advanceTo(h.scheduler().now() + sec(200));
  h.network().failures().deisolate(h.client(0));
  // ...the client still serves the stale copy (lease runs to 10'000 s).
  EXPECT_EQ(h.read(0, 0).version, 1);
  EXPECT_EQ(h.metrics().staleReads(), 1);
}

}  // namespace
}  // namespace vlease
