// End-to-end smoke tests of the CLI tools: vltracegen writes a valid
// VLTRACE file; vlsim consumes it (and generated workloads) and reports
// consistent numbers. Exercises the real binaries via std::system.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/trace_io.h"

namespace vlease {
namespace {

std::string toolPath(const std::string& name) {
  // ctest may run from the build root or from build/tests; probe both.
  for (const char* prefix : {"./tools/", "../tools/", "../../tools/"}) {
    std::string candidate = std::string(prefix) + name;
    if (std::ifstream(candidate).good()) return candidate;
  }
  return "";
}

bool toolsAvailable() { return !toolPath("vlsim").empty(); }

int runTool(const std::string& cmd, std::string* output) {
  const std::string file = ::testing::TempDir() + "/tool_out.txt";
  const int rc = std::system((cmd + " > " + file + " 2>&1").c_str());
  std::ifstream in(file);
  std::stringstream ss;
  ss << in.rdbuf();
  *output = ss.str();
  return rc;
}

TEST(ToolsTest, TracegenProducesLoadableTrace) {
  if (!toolsAvailable()) GTEST_SKIP() << "tools not in ./tools";
  const std::string path = ::testing::TempDir() + "/smoke.vlt";
  std::string out;
  ASSERT_EQ(runTool(toolPath("vltracegen") + " --out " + path +
                        " --scale 0.003 --servers 50 --clients 5 --days 30",
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("wrote"), std::string::npos);

  std::string error;
  auto loaded = trace::readTraceFromFile(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->catalog.numServers(), 50u);
  EXPECT_EQ(loaded->catalog.numClients(), 5u);
  EXPECT_GT(loaded->events.size(), 100u);
}

TEST(ToolsTest, SimConsumesTraceFile) {
  if (!toolsAvailable()) GTEST_SKIP() << "tools not in ./tools";
  const std::string path = ::testing::TempDir() + "/smoke2.vlt";
  std::string out;
  ASSERT_EQ(runTool(toolPath("vltracegen") + " --out " + path +
                        " --scale 0.003 --servers 50 --clients 5 --days 30",
                    &out),
            0);
  ASSERT_EQ(runTool(toolPath("vlsim") + " --trace " + path +
                        " --algorithm delay --t 100000 --tv 100",
                    &out),
            0)
      << out;
  EXPECT_NE(out.find("VolumeDelayedInval"), std::string::npos);
  EXPECT_NE(out.find("stale"), std::string::npos);
  EXPECT_NE(out.find("busiest servers"), std::string::npos);
  // Strong consistency on the tool path too.
  EXPECT_NE(out.find("0 stale"), std::string::npos);
}

TEST(ToolsTest, SimCsvOutputParses) {
  if (!toolsAvailable()) GTEST_SKIP() << "tools not in ./tools";
  std::string out;
  ASSERT_EQ(runTool(toolPath("vlsim") +
                        " --algorithm lease --t 100 --scale 0.003 --csv",
                    &out),
            0)
      << out;
  // Header line + one data row.
  std::istringstream ss(out);
  std::string header, row;
  ASSERT_TRUE(std::getline(ss, header));
  ASSERT_TRUE(std::getline(ss, row));
  EXPECT_NE(header.find("algorithm,t,tv,messages"), std::string::npos);
  EXPECT_EQ(row.rfind("Lease,100,", 0), 0u);
}

TEST(ToolsTest, SimRejectsUnknownAlgorithm) {
  if (!toolsAvailable()) GTEST_SKIP() << "tools not in ./tools";
  std::string out;
  EXPECT_NE(runTool(toolPath("vlsim") + " --algorithm bogus", &out), 0);
  EXPECT_NE(out.find("unknown algorithm"), std::string::npos);
}

TEST(ToolsTest, SimRejectsMissingTraceFile) {
  if (!toolsAvailable()) GTEST_SKIP() << "tools not in ./tools";
  std::string out;
  EXPECT_NE(runTool(toolPath("vlsim") + " --trace /nonexistent.vlt", &out),
            0);
  EXPECT_NE(out.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace vlease
