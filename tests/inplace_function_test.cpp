// Unit tests for util::InplaceFunction, the allocation-free callable the
// event kernel stores in its slot arena.
#include "util/inplace_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>

namespace vlease::util {
namespace {

using Fn = InplaceFunction<int(int), 48>;
using Void = InplaceFunction<void(), 48>;

TEST(InplaceFunctionTest, DefaultIsEmpty) {
  Void f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, InvokesWithArgsAndResult) {
  int base = 10;
  Fn f = [base](int x) { return base + x; };
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(5), 15);
  EXPECT_EQ(f(-10), 0);
}

TEST(InplaceFunctionTest, MutableStateIsRetained) {
  Void f;
  int calls = 0;
  InplaceFunction<int(), 48> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  (void)f;
  (void)calls;
}

TEST(InplaceFunctionTest, MoveTransfersCallable) {
  int hits = 0;
  Void a = [&hits] { ++hits; };
  Void b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT: testing moved-from state
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceFunctionTest, MoveAssignDestroysPrevious) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  Void a = [t = std::move(token)] { (void)t; };
  EXPECT_FALSE(watch.expired());
  a = Void([] {});
  EXPECT_TRUE(watch.expired());  // old capture destroyed on assignment
  ASSERT_TRUE(static_cast<bool>(a));
}

TEST(InplaceFunctionTest, ResetDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  Void f = [t = std::move(token)] { (void)t; };
  EXPECT_FALSE(watch.expired());
  f.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(InplaceFunctionTest, DestructorDestroysCapture) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  {
    Void f = [t = std::move(token)] { (void)t; };
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InplaceFunctionTest, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(41);
  InplaceFunction<int(), 48> f = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
  InplaceFunction<int(), 48> g = std::move(f);
  EXPECT_EQ(g(), 42);
}

TEST(InplaceFunctionTest, SelfMoveAssignIsSafe) {
  int hits = 0;
  Void f = [&hits] { ++hits; };
  Void& alias = f;
  f = std::move(alias);
  if (f) f();
  EXPECT_LE(hits, 1);
}

TEST(InplaceFunctionDeathTest, InvokingEmptyChecks) {
  Void f;
  EXPECT_DEATH(f(), "VL_CHECK");
}

}  // namespace
}  // namespace vlease::util
