// Targeted failure-injection tests for the volume-lease protocol's
// corner paths: lost messages inside multi-step exchanges, crashes at
// awkward moments, session timeouts, and combinations the chaos sweep
// may not hit deterministically. All scenarios assert the core safety
// property (no stale reads) plus the specific repair behaviour.
#include <gtest/gtest.h>

#include <functional>

#include "core/volume_client.h"
#include "core/volume_server.h"
#include "proto_fixture.h"
#include "util/rng.h"

namespace vlease::core {
namespace {

using proto::Algorithm;
using proto::ProtocolConfig;
using testing::ProtoHarness;

ProtocolConfig cfg(Algorithm algorithm = Algorithm::kVolumeLease,
                   SimDuration t = sec(10'000), SimDuration tv = sec(10)) {
  ProtocolConfig config;
  config.algorithm = algorithm;
  config.objectTimeout = t;
  config.volumeTimeout = tv;
  config.msgTimeout = sec(5);
  config.readTimeout = sec(30);
  return config;
}

VolumeServer& vserver(ProtoHarness& h, std::uint32_t idx = 0) {
  return dynamic_cast<VolumeServer&>(h.serverNode(idx));
}
constexpr VolumeId kVol = makeVolumeId(0);

TEST(VolumeFailureTest, LostInvalidationNeverYieldsStaleRead) {
  ProtoHarness h(cfg());
  h.network().setLatency(msec(20));
  h.read(0, 0);
  // Cut the link only long enough to lose the invalidation.
  h.network().failures().isolate(h.client(0));
  auto w = h.write(0);  // commits at lease/volume expiry
  EXPECT_GT(w.delay, 0);
  h.network().failures().deisolate(h.client(0));
  // The client's volume lease has necessarily expired by commit time;
  // the read takes the reconnection path and sees v2.
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, ReconnectionTimesOutIfClientVanishesMidExchange) {
  ProtoHarness h(cfg());
  h.network().setLatency(msec(20));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // client 0 -> Unreachable
  ASSERT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));

  // Client comes back just long enough to send REQ_VOL_LEASE, then
  // drops again before MUST_RENEW_ALL arrives.
  h.network().failures().deisolate(h.client(0));
  h.sim->issueRead(h.client(0), makeObjectId(0), nullptr);
  h.advanceTo(h.scheduler().now() + msec(25));  // request reached server
  h.network().failures().isolate(h.client(0));
  h.advanceTo(h.scheduler().now() + sec(40));   // session + read time out

  // Safety: still unreachable (the exchange never completed).
  EXPECT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
  EXPECT_EQ(h.metrics().staleReads(), 0);

  // Liveness: a later retry completes the repair.
  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_FALSE(vserver(h).isUnreachable(h.client(0), kVol));
}

TEST(VolumeFailureTest, LostBatchDuringFlushDemotesToUnreachable) {
  ProtoHarness h(cfg(Algorithm::kVolumeDelayedInval));
  h.network().setLatency(msec(20));
  h.read(0, 0);
  h.advanceTo(h.scheduler().now() + sec(60));  // volume lease expired
  h.write(0);  // queued on the pending list (client inactive)
  ASSERT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 1u);

  // The client renews its volume, but the flush batch is lost.
  h.sim->issueRead(h.client(0), makeObjectId(1), nullptr);
  h.advanceTo(h.scheduler().now() + msec(25));  // REQ_VOL delivered
  h.network().failures().isolate(h.client(0));  // batch will be dropped
  h.advanceTo(h.scheduler().now() + sec(40));
  // Safe exit: inactive -> unreachable, pending discarded.
  EXPECT_TRUE(vserver(h).isUnreachable(h.client(0), kVol));
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 0u);

  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);  // reconnection repairs: fresh copy of object 0
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, CrashDuringPendingWriteIsSafe) {
  ProtoHarness h(cfg());
  h.network().setLatency(msec(20));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  bool committed = false;
  h.sim->issueWrite(makeObjectId(0),
                    [&](const proto::WriteResult&) { committed = true; });
  h.advanceTo(h.scheduler().now() + sec(1));  // write is waiting on acks
  ASSERT_FALSE(committed);
  vserver(h).crashAndReboot();  // the in-flight write dies with the server
  h.advanceTo(h.scheduler().now() + sec(30));
  EXPECT_FALSE(committed);
  EXPECT_EQ(vserver(h).currentVersion(makeObjectId(0)), 1);  // not applied

  // The returning client reconnects (epoch bump) and sees version 1.
  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, DoubleCrashExtendsRecoveryWindow) {
  ProtoHarness h(cfg(Algorithm::kVolumeLease, sec(10'000), sec(100)));
  h.read(0, 0);  // volume lease until t=100
  h.advanceTo(sec(10));
  vserver(h).crashAndReboot();
  EXPECT_EQ(vserver(h).recoveryUntil(), sec(100));
  // A client gets a fresh lease during recovery...
  h.read(1, 0);  // volume lease until t=110
  h.advanceTo(sec(20));
  vserver(h).crashAndReboot();  // ...and the server crashes AGAIN
  EXPECT_EQ(vserver(h).recoveryUntil(), sec(110));

  auto w = h.write(0);  // must wait for the SECOND crash's horizon
  EXPECT_EQ(h.scheduler().now(), sec(110));
  EXPECT_GE(w.delay, sec(89));
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, EpochBumpsAccumulateAcrossCrashes) {
  ProtoHarness h(cfg());
  h.read(0, 0);
  for (int i = 0; i < 3; ++i) {
    vserver(h).crashAndReboot();
    h.advanceTo(h.scheduler().now() + sec(60));
  }
  EXPECT_EQ(vserver(h).volumeEpoch(kVol), 4);
  auto r = h.read(0, 0);  // single reconnection catches up all epochs
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

// 30% random loss over a read/write mix: reads may fail, writes may
// wait, but nothing is ever stale and everything recovers. This sweep
// found a real protocol race during development (a write racing an
// in-flight reconnection batch), so it runs across seeds and both
// invalidation modes.
class LossStormTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, std::uint64_t>> {
};

TEST_P(LossStormTest, StaysConsistent) {
  const auto [algorithm, seed] = GetParam();
  ProtoHarness h(cfg(algorithm, sec(500), sec(10)));
  h.network().setLatency(msec(20));
  h.network().failures().setLossProbability(0.3);
  Rng rng(seed);
  SimTime t = 0;
  for (int op = 0; op < 200; ++op) {
    t += static_cast<SimDuration>(
        rng.nextExponential(static_cast<double>(sec(3))));
    h.sim->drainTo(t);
    const auto obj = makeObjectId(rng.nextBelow(3));
    if (rng.nextBool(0.3)) {
      h.sim->issueWrite(obj);
    } else {
      h.sim->issueRead(
          h.client(static_cast<std::uint32_t>(rng.nextBelow(2))), obj);
    }
  }
  h.network().failures().setLossProbability(0.0);
  t += sec(600);
  h.sim->drainTo(t);
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  h.sim->finish();
  EXPECT_EQ(h.metrics().staleReads(), 0);
  EXPECT_EQ(h.metrics().blockedWrites(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LossStormTest,
    ::testing::Combine(::testing::Values(Algorithm::kVolumeLease,
                                         Algorithm::kVolumeDelayedInval),
                       ::testing::Values(2024, 7, 13, 99, 1234, 5150)),
    [](const ::testing::TestParamInfo<LossStormTest::ParamType>& info) {
      return std::string(proto::algorithmName(std::get<0>(info.param))) +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

TEST(VolumeFailureTest, WriteDuringReconnectionStaysConsistent) {
  // A write lands while a reconnection exchange is in flight: the
  // server must defer the renewal computation past the commit so the
  // batch reflects the new version.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, sec(10'000), sec(10)), 1, 3,
                 /*objectsPerVolume=*/3);
  h.network().setLatency(msec(50));
  h.read(0, 0);
  h.read(1, 0);  // client 1 also holds object 0 (will carry the write)
  h.network().failures().isolate(h.client(0));
  h.write(0);    // client 0 -> unreachable (commit at volume expiry)
  h.network().failures().deisolate(h.client(0));

  // Start client 0's reconnection, and fire another write mid-exchange.
  h.sim->issueRead(h.client(0), makeObjectId(0), nullptr);
  h.advanceTo(h.scheduler().now() + msec(120));  // RENEW_OBJ_LEASES in flight
  h.sim->issueWrite(makeObjectId(0), nullptr);
  h.advanceTo(h.scheduler().now() + sec(60));

  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, vserver(h).currentVersion(makeObjectId(0)));
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, ClientRestartLosesLeasesButStaysSafe) {
  ProtoHarness h(cfg());
  h.read(0, 0);
  h.clientNode(0).dropCache();
  h.write(0);  // server still thinks client 0 holds a lease; it acks
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_TRUE(r.fetchedData);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, PartitionDuringVolumeRenewalRetriesLater) {
  ProtoHarness h(cfg());
  h.network().setLatency(msec(20));
  h.read(0, 0);
  h.advanceTo(h.scheduler().now() + sec(60));  // volume expired
  h.network().failures().isolate(h.client(0));
  auto failed = h.read(0, 0);  // renewal request dropped -> read times out
  EXPECT_FALSE(failed.ok);
  h.network().failures().deisolate(h.client(0));
  auto r = h.read(0, 0);  // the dedup flag must not suppress the retry
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(VolumeFailureTest, OptionMatrixChaosSweep) {
  // Every protocol-option combination under lossy chaos: the options
  // (piggybacked renewals, invalidate-by-waiting, finite caches, small
  // d) must compose without breaking the safety property.
  struct Option {
    const char* name;
    std::function<void(ProtocolConfig&)> apply;
  };
  const Option options[] = {
      {"plain", [](ProtocolConfig&) {}},
      {"piggyback", [](ProtocolConfig& c) { c.piggybackVolumeLease = true; }},
      {"byExpiry", [](ProtocolConfig& c) { c.writeByLeaseExpiry = true; }},
      {"tinyCache", [](ProtocolConfig& c) { c.clientCacheCapacity = 2; }},
      {"smallD", [](ProtocolConfig& c) { c.inactiveDiscard = sec(40); }},
      {"kitchenSink",
       [](ProtocolConfig& c) {
         c.piggybackVolumeLease = true;
         c.clientCacheCapacity = 3;
         c.inactiveDiscard = sec(60);
       }},
  };
  for (Algorithm algorithm :
       {Algorithm::kVolumeLease, Algorithm::kVolumeDelayedInval}) {
    for (const Option& option : options) {
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        ProtocolConfig config = cfg(algorithm, sec(400), sec(15));
        option.apply(config);
        ProtoHarness h(config, 1, 3, /*objectsPerVolume=*/4);
        h.network().setLatency(msec(15));
        h.network().failures().setLossProbability(0.25);
        Rng rng(seed * 1000 + 17);
        SimTime t = 0;
        for (int op = 0; op < 150; ++op) {
          t += static_cast<SimDuration>(
              rng.nextExponential(static_cast<double>(sec(4))));
          h.sim->drainTo(t);
          const auto obj = makeObjectId(rng.nextBelow(4));
          if (rng.nextBool(0.3)) {
            h.sim->issueWrite(obj);
          } else {
            h.sim->issueRead(
                h.client(static_cast<std::uint32_t>(rng.nextBelow(3))), obj);
          }
        }
        h.sim->finish();
        EXPECT_EQ(h.metrics().staleReads(), 0)
            << proto::algorithmName(algorithm) << "/" << option.name
            << "/seed" << seed;
      }
    }
  }
}

TEST(VolumeFailureTest, DelayedModeCrashDiscardsPendingSafely) {
  ProtoHarness h(cfg(Algorithm::kVolumeDelayedInval));
  h.read(0, 0);
  h.advanceTo(sec(60));
  h.write(0);  // pending for inactive client 0
  ASSERT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 1u);
  vserver(h).crashAndReboot();
  EXPECT_EQ(vserver(h).pendingMessageCount(h.client(0), kVol), 0u);
  h.advanceTo(h.scheduler().now() + sec(60));
  auto r = h.read(0, 0);  // epoch path repairs despite the lost pending list
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

}  // namespace
}  // namespace vlease::core
