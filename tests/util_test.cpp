// Tests for time helpers, histograms, and the flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "util/flags.h"
#include "util/histogram.h"
#include "util/time.h"

namespace vlease {
namespace {

// ---- time ----

TEST(TimeTest, UnitConversions) {
  EXPECT_EQ(usec(5), 5);
  EXPECT_EQ(msec(5), 5'000);
  EXPECT_EQ(sec(5), 5'000'000);
  EXPECT_EQ(minutes(2), sec(120));
  EXPECT_EQ(hours(1), sec(3600));
  EXPECT_EQ(days(1), sec(86'400));
}

TEST(TimeTest, SecondsRoundTrip) {
  EXPECT_DOUBLE_EQ(toSeconds(sec(42)), 42.0);
  EXPECT_EQ(secondsToSim(1.5), msec(1500));
}

TEST(TimeTest, SecondBucket) {
  EXPECT_EQ(secondBucket(0), 0);
  EXPECT_EQ(secondBucket(999'999), 0);
  EXPECT_EQ(secondBucket(1'000'000), 1);
  EXPECT_EQ(secondBucket(sec(100) + 1), 100);
}

TEST(TimeTest, AddSatNeverStaysNever) {
  EXPECT_EQ(addSat(kNever, sec(100)), kNever);
  EXPECT_EQ(addSat(kNever, -sec(100)), kNever);
}

TEST(TimeTest, AddSatClampsOverflow) {
  EXPECT_EQ(addSat(kSimTimeMax - 5, 10), kSimTimeMax);
  EXPECT_EQ(addSat(kSimTimeMin + 5, -10), kSimTimeMin);
  EXPECT_EQ(addSat(100, 23), 123);
}

TEST(TimeTest, Format) {
  EXPECT_EQ(formatSimTime(sec(3) + usec(250)), "3.000250s");
  EXPECT_EQ(formatSimTime(kNever), "never");
  EXPECT_EQ(formatSimTime(0), "0.000000s");
}

// ---- SparseCounter ----

TEST(SparseCounterTest, AddAndQuery) {
  SparseCounter c;
  c.add(5);
  c.add(5, 2);
  c.add(7);
  EXPECT_EQ(c.at(5), 3);
  EXPECT_EQ(c.at(7), 1);
  EXPECT_EQ(c.at(6), 0);
  EXPECT_EQ(c.totalCount(), 4);
  EXPECT_EQ(c.nonEmptyBuckets(), 2u);
  EXPECT_EQ(c.maxValue(), 3);
}

TEST(SparseCounterTest, CumulativeAtLeast) {
  SparseCounter c;
  // Buckets with loads 1, 1, 3, 5.
  c.add(10, 1);
  c.add(11, 1);
  c.add(12, 3);
  c.add(13, 5);
  auto atLeast = c.cumulativeAtLeast();
  ASSERT_EQ(atLeast.size(), 5u);
  EXPECT_EQ(atLeast[0], 4);  // >= 1
  EXPECT_EQ(atLeast[1], 2);  // >= 2
  EXPECT_EQ(atLeast[2], 2);  // >= 3
  EXPECT_EQ(atLeast[3], 1);  // >= 4
  EXPECT_EQ(atLeast[4], 1);  // >= 5
}

TEST(SparseCounterTest, CumulativeEmpty) {
  SparseCounter c;
  EXPECT_TRUE(c.cumulativeAtLeast().empty());
}

TEST(SparseCounterTest, Merge) {
  SparseCounter a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(9, 1);
  a.merge(b);
  EXPECT_EQ(a.at(1), 5);
  EXPECT_EQ(a.at(9), 1);
}

// ---- Summary ----

TEST(SummaryTest, Basics) {
  Summary s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  s.add(2.0);
  s.add(4.0);
  s.add(9.0);
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 15.0);
}

TEST(SummaryTest, Merge) {
  Summary a, b;
  a.add(1.0);
  b.add(3.0);
  b.add(5.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 3);
}

// ---- Flags ----

TEST(FlagsTest, DefaultsAndOverrides) {
  Flags flags;
  flags.addString("name", "abc", "");
  flags.addInt("n", 7, "");
  flags.addDouble("x", 1.5, "");
  flags.addBool("verbose", false, "");

  const char* argv[] = {"prog", "--n=42", "--verbose", "--x", "2.25", "pos1"};
  ASSERT_TRUE(flags.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(flags.getString("name"), "abc");
  EXPECT_EQ(flags.getInt("n"), 42);
  EXPECT_DOUBLE_EQ(flags.getDouble("x"), 2.25);
  EXPECT_TRUE(flags.getBool("verbose"));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(FlagsTest, UnknownFlagFails) {
  Flags flags;
  flags.addInt("n", 1, "");
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, MissingValueFails) {
  Flags flags;
  flags.addInt("n", 1, "");
  const char* argv[] = {"prog", "--n"};
  EXPECT_FALSE(flags.parse(2, const_cast<char**>(argv)));
}

TEST(FlagsTest, UsageListsFlags) {
  Flags flags;
  flags.addInt("count", 3, "how many");
  const std::string usage = flags.usage("prog");
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("how many"), std::string::npos);
}

}  // namespace
}  // namespace vlease
