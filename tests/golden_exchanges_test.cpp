// Golden message-count tests: for each algorithm, canonical scenarios
// with exact expected per-message-type counts. These pin down the wire
// behaviour precisely -- any refactor that changes what goes on the
// network (an extra renewal, a missing ack) fails here with a readable
// diff of the message-type table.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <string>

#include "net/message.h"
#include "proto_fixture.h"

namespace vlease {
namespace {

using proto::Algorithm;
using proto::ProtocolConfig;
using testing::ProtoHarness;

/// Snapshot of per-type message counts, keyed by type name.
std::map<std::string, std::int64_t> typeCounts(stats::Metrics& m) {
  std::map<std::string, std::int64_t> out;
  for (std::size_t i = 0; i < net::kNumPayloadTypes; ++i) {
    if (m.messagesOfType(i) > 0) out[net::payloadTypeName(i)] = m.messagesOfType(i);
  }
  return out;
}

using Golden = std::map<std::string, std::int64_t>;

ProtocolConfig cfg(Algorithm a, std::int64_t tSec, std::int64_t tvSec = 10) {
  ProtocolConfig config;
  config.algorithm = a;
  config.objectTimeout = sec(tSec);
  config.volumeTimeout = sec(tvSec);
  return config;
}

TEST(GoldenExchange, PollColdThenHitThenRevalidate) {
  ProtoHarness h(cfg(Algorithm::kPoll, 100));
  h.read(0, 0);           // cold: request + reply(data)
  h.advanceTo(sec(50));
  h.read(0, 0);           // hit: nothing
  h.advanceTo(sec(150));
  h.read(0, 0);           // revalidate: request + reply(no data)
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"POLL_REQUEST", 2}, {"POLL_REPLY", 2}}));
}

TEST(GoldenExchange, CallbackFetchWriteRefetch) {
  ProtoHarness h(cfg(Algorithm::kCallback, 0));
  h.read(0, 0);  // REQ_OBJ_LEASE + OBJ_LEASE(data, never expires)
  h.read(1, 0);
  h.write(0);    // 2x INVALIDATE + 2x ACK
  h.read(0, 0);  // refetch
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_OBJ_LEASE", 3},
                    {"OBJ_LEASE", 3},
                    {"INVALIDATE", 2},
                    {"ACK_INVALIDATE", 2}}));
}

TEST(GoldenExchange, LeaseRenewalCycle) {
  ProtoHarness h(cfg(Algorithm::kLease, 100));
  h.read(0, 0);            // cold fetch
  h.advanceTo(sec(150));
  h.read(0, 0);            // lease expired: renewal (no data)
  h.advanceTo(sec(200));
  h.read(0, 0);            // hit
  h.write(0);              // one valid holder: INVALIDATE + ACK
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_OBJ_LEASE", 2},
                    {"OBJ_LEASE", 2},
                    {"INVALIDATE", 1},
                    {"ACK_INVALIDATE", 1}}));
}

TEST(GoldenExchange, BestEffortWriteHasNoAcks) {
  ProtoHarness h(cfg(Algorithm::kBestEffortLease, 100));
  h.read(0, 0);
  h.write(0);
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_OBJ_LEASE", 1},
                    {"OBJ_LEASE", 1},
                    {"INVALIDATE", 1}}));
}

TEST(GoldenExchange, VolumeColdReadThenBurst) {
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000), 1, 1,
                 /*objectsPerVolume=*/4);
  for (std::uint64_t o = 0; o < 4; ++o) h.read(0, o);  // one burst
  h.sim->finish();
  // ONE volume round trip amortized over four object round trips.
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_VOL_LEASE", 1},
                    {"VOL_LEASE", 1},
                    {"REQ_OBJ_LEASE", 4},
                    {"OBJ_LEASE", 4}}));
}

TEST(GoldenExchange, VolumeRenewalOnlyAfterVolumeExpiry) {
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000));
  h.read(0, 0);
  h.advanceTo(sec(20));  // t_v = 10 expired; object lease fine
  h.read(0, 0);
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_VOL_LEASE", 2},
                    {"VOL_LEASE", 2},
                    {"REQ_OBJ_LEASE", 1},
                    {"OBJ_LEASE", 1}}));
}

TEST(GoldenExchange, VolumeWriteInvalidation) {
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000));
  h.read(0, 0);
  h.read(1, 0);
  h.write(0);
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_VOL_LEASE", 2},
                    {"VOL_LEASE", 2},
                    {"REQ_OBJ_LEASE", 2},
                    {"OBJ_LEASE", 2},
                    {"INVALIDATE", 2},
                    {"ACK_INVALIDATE", 2}}));
}

TEST(GoldenExchange, ReconnectionIsSixMessages) {
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 36'000));
  h.network().setLatency(msec(10));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.write(0);  // commits at t_v; client 0 -> Unreachable (no messages land)
  h.network().failures().deisolate(h.client(0));
  const auto before = typeCounts(h.metrics());
  h.network().setLatency(0);
  auto r = h.read(0, 0);
  ASSERT_TRUE(r.ok);
  h.sim->finish();
  auto after = typeCounts(h.metrics());
  // Reconnection: REQ_VOL, MUST_RENEW_ALL, RENEW_OBJ_LEASES, BATCH,
  // ACK_BATCH, VOL_LEASE -- then the invalidated object is refetched.
  EXPECT_EQ(after["REQ_VOL_LEASE"] - before.at("REQ_VOL_LEASE"), 1);
  EXPECT_EQ(after["MUST_RENEW_ALL"], 1);
  EXPECT_EQ(after["RENEW_OBJ_LEASES"], 1);
  EXPECT_EQ(after["BATCH_INVAL_RENEW"], 1);
  EXPECT_EQ(after["ACK_BATCH"], 1);
  EXPECT_EQ(after["VOL_LEASE"] - before.at("VOL_LEASE"), 1);
  EXPECT_EQ(after["REQ_OBJ_LEASE"] - before.at("REQ_OBJ_LEASE"), 1);
}

TEST(GoldenExchange, DelayedFlushIsFourPlusRefetch) {
  ProtoHarness h(cfg(Algorithm::kVolumeDelayedInval, 100'000), 1, 1, 3);
  h.read(0, 0);
  h.read(0, 1);
  h.advanceTo(sec(60));  // volume expired -> inactive
  const auto beforeWrites = typeCounts(h.metrics());
  h.write(0);
  h.write(1);  // both queue: ZERO messages
  EXPECT_EQ(typeCounts(h.metrics()), beforeWrites);
  h.read(0, 2);  // volume renewal flushes the batch + fetches object 2
  h.sim->finish();
  auto after = typeCounts(h.metrics());
  EXPECT_EQ(after["BATCH_INVAL_RENEW"], 1);  // 2 invals in ONE batch
  EXPECT_EQ(after["ACK_BATCH"], 1);
  EXPECT_EQ(after["INVALIDATE"], 0);
  EXPECT_EQ(after["MUST_RENEW_ALL"], 0);  // flush, not reconnection
}

TEST(GoldenExchange, PiggybackColdReadIsTwoMessages) {
  ProtocolConfig config = cfg(Algorithm::kVolumeLease, 1000);
  config.piggybackVolumeLease = true;
  ProtoHarness h(config);
  h.read(0, 0);
  h.sim->finish();
  EXPECT_EQ(typeCounts(h.metrics()),
            (Golden{{"REQ_OBJ_LEASE", 1}, {"OBJ_LEASE", 1}}));
}

TEST(GoldenExchange, ByteTotalsMatchWireModel) {
  // The metered byte total must equal the sum of wireBytes() over the
  // exact messages exchanged; reconstruct one known exchange by hand.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000), 1, 1, 1,
                 /*objectBytes=*/5000);
  h.read(0, 0);
  h.sim->finish();
  const std::int64_t expected =
      net::wireBytes(net::Payload{net::ReqVolLease{}}) +
      net::wireBytes(net::Payload{net::VolLeaseGrant{}}) +
      net::wireBytes(net::Payload{net::ReqObjLease{}}) +
      net::wireBytes(net::Payload{
          net::ObjLeaseGrant{makeObjectId(0), 1, 0, true, 5000}});
  EXPECT_EQ(h.metrics().totalBytes(), expected);
}

}  // namespace
}  // namespace vlease
