// Tests for util::FlatMap -- the open-addressing uint64-keyed map behind
// the server's per-(client, volume) session state.
#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace vlease::util {
namespace {

TEST(FlatMapTest, EmptyMapFindsNothing) {
  FlatMap<int> m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(0), nullptr);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.erase(42));
}

TEST(FlatMapTest, InsertFindErase) {
  FlatMap<int> m;
  auto [v, inserted] = m.tryEmplace(7);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*v, 0);  // default-constructed
  *v = 99;

  auto [v2, inserted2] = m.tryEmplace(7);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(v2, v);
  EXPECT_EQ(*v2, 99);
  EXPECT_EQ(m.size(), 1u);

  ASSERT_NE(m.find(7), nullptr);
  EXPECT_EQ(*m.find(7), 99);
  EXPECT_EQ(m.find(8), nullptr);

  EXPECT_TRUE(m.erase(7));
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.erase(7));
}

TEST(FlatMapTest, SubscriptInsertsDefault) {
  FlatMap<std::int64_t> m;
  m[5] += 10;
  m[5] += 10;
  EXPECT_EQ(m[5], 20);
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, RehashPreservesAllEntries) {
  FlatMap<std::uint64_t> m;
  // Packed protocol-style keys: (client << 32) | volume. Regular enough
  // to punish a weak hash; growth forces several rehashes.
  constexpr std::uint64_t kClients = 64, kVols = 16;
  for (std::uint64_t c = 0; c < kClients; ++c) {
    for (std::uint64_t v = 0; v < kVols; ++v) {
      m[(c << 32) | v] = c * 1000 + v;
    }
  }
  EXPECT_EQ(m.size(), kClients * kVols);
  // Power-of-two capacity with load factor <= 7/8.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  EXPECT_GE(m.capacity() * 7, m.size() * 8);
  for (std::uint64_t c = 0; c < kClients; ++c) {
    for (std::uint64_t v = 0; v < kVols; ++v) {
      auto* p = m.find((c << 32) | v);
      ASSERT_NE(p, nullptr) << "key " << ((c << 32) | v);
      EXPECT_EQ(*p, c * 1000 + v);
    }
  }
}

TEST(FlatMapTest, EraseHalfKeepsOthersIntact) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 500; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 500; k += 2) EXPECT_TRUE(m.erase(k));
  EXPECT_EQ(m.size(), 250u);
  for (std::uint64_t k = 0; k < 500; ++k) {
    if (k % 2 == 0) {
      EXPECT_EQ(m.find(k), nullptr) << k;
    } else {
      ASSERT_NE(m.find(k), nullptr) << k;
      EXPECT_EQ(*m.find(k), static_cast<int>(k));
    }
  }
}

TEST(FlatMapTest, SameKeyChurnReusesTombstoneWithoutGrowth) {
  FlatMap<int> m;
  m[1] = 1;
  m[2] = 2;
  const std::size_t cap = m.capacity();
  // Erase + reinsert of the same key lands on its own tombstone (the
  // probe path passes it before any empty slot), so the tombstone count
  // nets to zero and the table never rehashes.
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(m.erase(2));
    auto [v, inserted] = m.tryEmplace(2);
    ASSERT_TRUE(inserted);
    *v = i;
  }
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.find(2), 99'999);
  EXPECT_EQ(*m.find(1), 1);
}

TEST(FlatMapTest, EraseDropsHeldResources) {
  FlatMap<std::vector<int>> m;
  m[3] = std::vector<int>(1000, 7);
  EXPECT_TRUE(m.erase(3));
  // Reinserting finds a default-constructed value, not the old vector.
  auto [v, inserted] = m.tryEmplace(3);
  EXPECT_TRUE(inserted);
  EXPECT_TRUE(v->empty());
}

TEST(FlatMapTest, ClearKeepsCapacity) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  const std::size_t cap = m.capacity();
  m.clear();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.capacity(), cap);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_EQ(m.find(k), nullptr);
  // Table is fully reusable after clear.
  m[5] = 50;
  EXPECT_EQ(*m.find(5), 50);
}

// forEach order is slot order: not insertion order, but a pure function
// of the operation history. Two maps fed the same ops must iterate
// identically -- simulation determinism leans on this.
TEST(FlatMapTest, IterationIsDeterministicForSameHistory) {
  const auto run = [] {
    FlatMap<int> m;
    for (std::uint64_t k = 0; k < 200; ++k) m[k * 31 + 7] = static_cast<int>(k);
    for (std::uint64_t k = 0; k < 200; k += 3) m.erase(k * 31 + 7);
    m[9999] = 1;
    std::vector<std::uint64_t> keys;
    m.forEach([&](std::uint64_t key, int&) { keys.push_back(key); });
    return keys;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

TEST(FlatMapTest, ForEachVisitsExactlyLiveEntries) {
  FlatMap<int> m;
  for (std::uint64_t k = 0; k < 50; ++k) m[k] = static_cast<int>(k * 2);
  m.erase(10);
  m.erase(20);
  std::size_t visited = 0;
  std::int64_t sum = 0;
  m.forEach([&](std::uint64_t key, int& v) {
    ++visited;
    sum += v;
    EXPECT_EQ(v, static_cast<int>(key * 2));
  });
  EXPECT_EQ(visited, 48u);
  EXPECT_EQ(sum, 2 * (49 * 50 / 2 - 10 - 20));
}

TEST(FlatMapTest, ConstFindAndForEach) {
  FlatMap<std::string> m;
  m[1] = "one";
  const FlatMap<std::string>& cm = m;
  ASSERT_NE(cm.find(1), nullptr);
  EXPECT_EQ(*cm.find(1), "one");
  std::size_t n = 0;
  cm.forEach([&](std::uint64_t, const std::string& v) {
    EXPECT_EQ(v, "one");
    ++n;
  });
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace vlease::util
