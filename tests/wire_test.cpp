// Tests for the binary wire format: exact round trips for every payload
// type, randomized fuzz round trips, and rejection of malformed input.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "util/rng.h"

namespace vlease::net {
namespace {

/// Recompute the trailing CRC in place, so a test can mutate frame
/// bytes and still exercise the structural check BEHIND the checksum.
void reseal(std::vector<std::uint8_t>& bytes) {
  ASSERT_GE(bytes.size(), 4u);
  const std::size_t body = bytes.size() - 4;
  const std::uint32_t crc = wireChecksum(bytes.data(), body);
  for (int i = 0; i < 4; ++i)
    bytes[body + i] = static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff);
}

/// Append a valid CRC to a hand-crafted (checksum-less) frame body.
std::vector<std::uint8_t> sealed(std::vector<std::uint8_t> body) {
  const std::uint32_t crc = wireChecksum(body.data(), body.size());
  for (int i = 0; i < 4; ++i)
    body.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff));
  return body;
}

Message roundTrip(const Message& msg) {
  auto bytes = encodeMessage(msg);
  auto decoded = decodeMessage(bytes.data(), bytes.size());
  EXPECT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->from, msg.from);
  EXPECT_EQ(decoded->to, msg.to);
  EXPECT_EQ(payloadTypeIndex(decoded->payload),
            payloadTypeIndex(msg.payload));
  return *decoded;
}

Message wrap(Payload payload) {
  return Message{makeNodeId(3), makeNodeId(1007), std::move(payload)};
}

TEST(WireTest, ReqObjLease) {
  auto m = roundTrip(wrap(ReqObjLease{makeObjectId(42), 17, true, 5}));
  const auto& p = std::get<ReqObjLease>(m.payload);
  EXPECT_EQ(raw(p.obj), 42u);
  EXPECT_EQ(p.haveVersion, 17);
  EXPECT_TRUE(p.wantVolume);
  EXPECT_EQ(p.haveEpoch, 5);
}

TEST(WireTest, ReqObjLeaseNegativeVersion) {
  auto m = roundTrip(wrap(ReqObjLease{makeObjectId(1), kNoVersion}));
  EXPECT_EQ(std::get<ReqObjLease>(m.payload).haveVersion, kNoVersion);
}

TEST(WireTest, ReqVolLease) {
  auto m = roundTrip(wrap(ReqVolLease{makeVolumeId(9), 4}));
  EXPECT_EQ(raw(std::get<ReqVolLease>(m.payload).vol), 9u);
  EXPECT_EQ(std::get<ReqVolLease>(m.payload).haveEpoch, 4);
}

TEST(WireTest, RenewObjLeasesWithEntries) {
  RenewObjLeases renew;
  renew.vol = makeVolumeId(2);
  renew.leases.push_back({makeObjectId(10), 1});
  renew.leases.push_back({makeObjectId(11), -1});
  auto m = roundTrip(wrap(renew));
  const auto& p = std::get<RenewObjLeases>(m.payload);
  ASSERT_EQ(p.leases.size(), 2u);
  EXPECT_EQ(raw(p.leases[1].obj), 11u);
  EXPECT_EQ(p.leases[1].version, -1);
}

TEST(WireTest, EmptyRenewList) {
  RenewObjLeases renew;
  renew.vol = makeVolumeId(0);
  auto m = roundTrip(wrap(renew));
  EXPECT_TRUE(std::get<RenewObjLeases>(m.payload).leases.empty());
}

TEST(WireTest, Acks) {
  roundTrip(wrap(AckInvalidate{makeObjectId(77)}));
  roundTrip(wrap(AckBatch{makeVolumeId(88)}));
}

TEST(WireTest, PollPair) {
  auto req = roundTrip(wrap(PollRequest{makeObjectId(5), 3}));
  EXPECT_EQ(std::get<PollRequest>(req.payload).haveVersion, 3);
  auto rep = roundTrip(wrap(PollReply{makeObjectId(5), 4, true, 9000}));
  EXPECT_TRUE(std::get<PollReply>(rep.payload).carriesData);
  EXPECT_EQ(std::get<PollReply>(rep.payload).dataBytes, 9000);
}

TEST(WireTest, ObjLeaseGrantAllFields) {
  ObjLeaseGrant grant{makeObjectId(6), 12, sec(100), true, 4096,
                      true, sec(50), 2};
  auto m = roundTrip(wrap(grant));
  const auto& p = std::get<ObjLeaseGrant>(m.payload);
  EXPECT_EQ(p.version, 12);
  EXPECT_EQ(p.expire, sec(100));
  EXPECT_TRUE(p.carriesData);
  EXPECT_EQ(p.dataBytes, 4096);
  EXPECT_TRUE(p.grantsVolume);
  EXPECT_EQ(p.volExpire, sec(50));
  EXPECT_EQ(p.epoch, 2);
}

TEST(WireTest, GrantWithNeverExpiry) {
  ObjLeaseGrant grant{makeObjectId(6), 1, kNever, false, 0};
  auto m = roundTrip(wrap(grant));
  EXPECT_EQ(std::get<ObjLeaseGrant>(m.payload).expire, kNever);
}

TEST(WireTest, VolLeaseGrant) {
  auto m = roundTrip(wrap(VolLeaseGrant{makeVolumeId(4), sec(77), 9}));
  EXPECT_EQ(std::get<VolLeaseGrant>(m.payload).epoch, 9);
}

TEST(WireTest, InvalidateAndMustRenewAll) {
  roundTrip(wrap(Invalidate{makeObjectId(123)}));
  roundTrip(wrap(MustRenewAll{makeVolumeId(321)}));
}

TEST(WireTest, BatchInvalRenew) {
  BatchInvalRenew batch;
  batch.vol = makeVolumeId(1);
  batch.invalidate = {makeObjectId(1), makeObjectId(2), makeObjectId(3)};
  batch.renew.push_back({makeObjectId(4), 7, sec(10)});
  auto m = roundTrip(wrap(batch));
  const auto& p = std::get<BatchInvalRenew>(m.payload);
  ASSERT_EQ(p.invalidate.size(), 3u);
  ASSERT_EQ(p.renew.size(), 1u);
  EXPECT_EQ(p.renew[0].version, 7);
  EXPECT_EQ(p.renew[0].expire, sec(10));
}

TEST(WireTest, RejectsTruncation) {
  auto bytes = encodeMessage(
      wrap(ObjLeaseGrant{makeObjectId(6), 12, sec(100), true, 4096}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(decodeMessage(bytes.data(), cut).has_value())
        << "cut at " << cut;
  }
}

TEST(WireTest, RejectsTrailingGarbage) {
  // Reseal after inserting the garbage byte: the frame must be rejected
  // by the leftover-bytes check, not merely the checksum.
  auto bytes = encodeMessage(wrap(Invalidate{makeObjectId(1)}));
  bytes.insert(bytes.end() - 4, 0xab);
  reseal(bytes);
  EXPECT_FALSE(decodeMessage(bytes.data(), bytes.size()).has_value());
}

TEST(WireTest, RejectsBadTypeByte) {
  auto bytes = encodeMessage(wrap(Invalidate{makeObjectId(1)}));
  bytes[8] = 0xff;  // type byte follows the two u32 node ids
  reseal(bytes);    // valid CRC: the type-byte check itself must fire
  EXPECT_FALSE(decodeMessage(bytes.data(), bytes.size()).has_value());
}

TEST(WireTest, RejectsOversizedListLength) {
  // Hand-craft a RenewObjLeases claiming 2^30 entries (valid CRC, so
  // the list-length bound itself does the rejecting).
  WireWriter w;
  w.u32(1);
  w.u32(0);
  w.u8(2);  // RenewObjLeases index
  w.u64(0);
  w.u32(1u << 30);
  auto bytes = sealed(w.take());
  EXPECT_FALSE(decodeMessage(bytes.data(), bytes.size()).has_value());
}

TEST(WireTest, RejectsMissingChecksum) {
  // A frame whose checksum was chopped off (body alone) must not parse,
  // even though the body bytes are exactly a valid pre-checksum frame.
  auto bytes = encodeMessage(wrap(Invalidate{makeObjectId(1)}));
  EXPECT_FALSE(decodeMessage(bytes.data(), bytes.size() - 4).has_value());
}

TEST(WireTest, ChecksumRejectsEveryBitFlip) {
  auto bytes = encodeMessage(
      wrap(ObjLeaseGrant{makeObjectId(6), 12, sec(100), true, 4096}));
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(decodeMessage(bytes.data(), bytes.size()).has_value())
          << "byte " << byte << " bit " << bit;
      bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
    }
  }
}

TEST(WireTest, FuzzRoundTripRandomMessages) {
  Rng rng(424242);
  for (int i = 0; i < 2000; ++i) {
    Message msg;
    msg.from = makeNodeId(static_cast<std::uint32_t>(rng.next()));
    msg.to = makeNodeId(static_cast<std::uint32_t>(rng.next()));
    switch (rng.nextBelow(6)) {
      case 0:
        msg.payload = ReqObjLease{makeObjectId(rng.next()),
                                  static_cast<Version>(rng.next()),
                                  rng.nextBool(0.5),
                                  static_cast<Epoch>(rng.next())};
        break;
      case 1:
        msg.payload = ObjLeaseGrant{makeObjectId(rng.next()),
                                    static_cast<Version>(rng.next()),
                                    static_cast<SimTime>(rng.next()),
                                    rng.nextBool(0.5),
                                    static_cast<std::int64_t>(rng.next()),
                                    rng.nextBool(0.5),
                                    static_cast<SimTime>(rng.next()),
                                    static_cast<Epoch>(rng.next())};
        break;
      case 2: {
        BatchInvalRenew batch;
        batch.vol = makeVolumeId(rng.next());
        const auto nInval = rng.nextBelow(20);
        for (std::uint64_t k = 0; k < nInval; ++k)
          batch.invalidate.push_back(makeObjectId(rng.next()));
        const auto nRenew = rng.nextBelow(20);
        for (std::uint64_t k = 0; k < nRenew; ++k) {
          batch.renew.push_back({makeObjectId(rng.next()),
                                 static_cast<Version>(rng.next()),
                                 static_cast<SimTime>(rng.next())});
        }
        msg.payload = std::move(batch);
        break;
      }
      case 3: {
        RenewObjLeases renew;
        renew.vol = makeVolumeId(rng.next());
        const auto n = rng.nextBelow(30);
        for (std::uint64_t k = 0; k < n; ++k) {
          renew.leases.push_back(
              {makeObjectId(rng.next()), static_cast<Version>(rng.next())});
        }
        msg.payload = std::move(renew);
        break;
      }
      case 4:
        msg.payload = PollReply{makeObjectId(rng.next()),
                                static_cast<Version>(rng.next()),
                                rng.nextBool(0.5),
                                static_cast<std::int64_t>(rng.next())};
        break;
      default:
        msg.payload = VolLeaseGrant{makeVolumeId(rng.next()),
                                    static_cast<SimTime>(rng.next()),
                                    static_cast<Epoch>(rng.next())};
    }
    auto bytes = encodeMessage(msg);
    auto decoded = decodeMessage(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.has_value()) << "iteration " << i;
    // Re-encoding must be byte-identical (canonical form).
    EXPECT_EQ(encodeMessage(*decoded), bytes) << "iteration " << i;
  }
}

TEST(WireTest, FuzzDecodeRandomBytesNeverCrashes) {
  Rng rng(777);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> junk(rng.nextBelow(128));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next());
    (void)decodeMessage(junk.data(), junk.size());  // must not crash/UB
  }
}

Message randomValidMessage(Rng& rng) {
  Message msg;
  msg.from = makeNodeId(static_cast<std::uint32_t>(rng.next()));
  msg.to = makeNodeId(static_cast<std::uint32_t>(rng.next()));
  switch (rng.nextBelow(5)) {
    case 0:
      msg.payload = Invalidate{makeObjectId(rng.next())};
      break;
    case 1:
      msg.payload = ObjLeaseGrant{makeObjectId(rng.next()),
                                  static_cast<Version>(rng.next()),
                                  static_cast<SimTime>(rng.next()),
                                  rng.nextBool(0.5),
                                  static_cast<std::int64_t>(rng.next()),
                                  rng.nextBool(0.5),
                                  static_cast<SimTime>(rng.next()),
                                  static_cast<Epoch>(rng.next())};
      break;
    case 2: {
      BatchInvalRenew batch;
      batch.vol = makeVolumeId(rng.next());
      const auto nInval = rng.nextBelow(8);
      for (std::uint64_t k = 0; k < nInval; ++k)
        batch.invalidate.push_back(makeObjectId(rng.next()));
      const auto nRenew = rng.nextBelow(8);
      for (std::uint64_t k = 0; k < nRenew; ++k) {
        batch.renew.push_back({makeObjectId(rng.next()),
                               static_cast<Version>(rng.next()),
                               static_cast<SimTime>(rng.next())});
      }
      msg.payload = std::move(batch);
      break;
    }
    case 3: {
      RenewObjLeases renew;
      renew.vol = makeVolumeId(rng.next());
      const auto n = rng.nextBelow(10);
      for (std::uint64_t k = 0; k < n; ++k) {
        renew.leases.push_back(
            {makeObjectId(rng.next()), static_cast<Version>(rng.next())});
      }
      msg.payload = std::move(renew);
      break;
    }
    default:
      msg.payload = VolLeaseGrant{makeVolumeId(rng.next()),
                                  static_cast<SimTime>(rng.next()),
                                  static_cast<Epoch>(rng.next())};
  }
  return msg;
}

TEST(WireTest, FuzzCorruptedFramesNeverMisparse) {
  // The hard frame-hardening guarantee: across >= 10^4 randomized
  // corruptions of valid frames -- bit flips, byte overwrites,
  // truncations, extensions, and slice swaps -- decode either rejects
  // the frame or the buffer was not actually changed. A corrupted frame
  // must NEVER come back as a different valid-looking message.
  Rng rng(20260807);
  int corruptions = 0;
  while (corruptions < 12000) {
    const Message msg = randomValidMessage(rng);
    const auto original = encodeMessage(msg);
    for (int variant = 0; variant < 8; ++variant, ++corruptions) {
      auto bytes = original;
      switch (rng.nextBelow(5)) {
        case 0: {  // single bit flip
          const auto pos = rng.nextBelow(bytes.size());
          bytes[pos] ^= static_cast<std::uint8_t>(1u << rng.nextBelow(8));
          break;
        }
        case 1: {  // overwrite 1-4 random bytes
          const auto n = 1 + rng.nextBelow(4);
          for (std::uint64_t k = 0; k < n; ++k)
            bytes[rng.nextBelow(bytes.size())] =
                static_cast<std::uint8_t>(rng.next());
          break;
        }
        case 2:  // truncate
          bytes.resize(rng.nextBelow(bytes.size()));
          break;
        case 3: {  // extend with random bytes
          const auto n = 1 + rng.nextBelow(16);
          for (std::uint64_t k = 0; k < n; ++k)
            bytes.push_back(static_cast<std::uint8_t>(rng.next()));
          break;
        }
        default: {  // swap two bytes
          const auto a = rng.nextBelow(bytes.size());
          const auto b = rng.nextBelow(bytes.size());
          std::swap(bytes[a], bytes[b]);
          break;
        }
      }
      if (bytes == original) continue;  // corruption was a no-op
      auto decoded = decodeMessage(bytes.data(), bytes.size());
      EXPECT_FALSE(decoded.has_value())
          << "corruption " << corruptions << " misparsed";
    }
  }
  EXPECT_GE(corruptions, 10000);
}

}  // namespace
}  // namespace vlease::net
