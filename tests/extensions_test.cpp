// Tests for the extensions beyond the paper's core evaluation:
//   * invalidate-by-waiting writes (paper §2.4's unexplored option),
//   * adaptive-TTL Poll (Gwertzman-Seltzer, §2.2),
//   * volume regrouping (the paper's future work),
//   * the CPU-load metric (§5.1's third metric),
//   * the real-time driver underpinning the TCP binding.
#include <gtest/gtest.h>

#include <unistd.h>

#include "core/volume_server.h"
#include "driver/simulation.h"
#include "driver/workloads.h"
#include "proto_fixture.h"
#include "rt/real_time.h"
#include "trace/regroup.h"
#include "util/rng.h"

namespace vlease {
namespace {

using proto::Algorithm;
using proto::ProtocolConfig;
using testing::ProtoHarness;

// ---------------------------------------------------------------------
// invalidate-by-waiting
// ---------------------------------------------------------------------

ProtocolConfig byExpiryConfig(Algorithm algorithm, SimDuration t,
                              SimDuration tv = sec(10)) {
  ProtocolConfig config;
  config.algorithm = algorithm;
  config.objectTimeout = t;
  config.volumeTimeout = tv;
  config.writeByLeaseExpiry = true;
  return config;
}

TEST(WriteByExpiryTest, LeaseWriteSendsNothingAndWaitsOutTheLease) {
  ProtoHarness h(byExpiryConfig(Algorithm::kLease, sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(30));
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(h.metrics().totalMessages(), before);  // zero invalidations
  EXPECT_NEAR(toSeconds(w.delay), 70.0, 0.01);     // lease remainder
  EXPECT_EQ(h.scheduler().now(), sec(100));
}

TEST(WriteByExpiryTest, LeaseClientNeverReadsStale) {
  ProtoHarness h(byExpiryConfig(Algorithm::kLease, sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(30));
  h.writeAsync(0);  // pending until t=100
  // Reads inside the lease window are LOCAL and CORRECT: the write has
  // not committed yet, so version 1 is the current version.
  h.advanceTo(sec(50));
  auto mid = h.read(0, 0);
  EXPECT_FALSE(mid.usedNetwork);
  EXPECT_EQ(mid.version, 1);
  // After expiry the commit has happened; the renewal fetches v2.
  h.advanceTo(sec(150));
  auto after = h.read(0, 0);
  EXPECT_EQ(after.version, 2);
  h.sim->finish();
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(WriteByExpiryTest, LeaseWriteInstantWhenNoValidLeases) {
  ProtoHarness h(byExpiryConfig(Algorithm::kLease, sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(200));  // lease drained
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
}

TEST(WriteByExpiryTest, VolumeWriteWaitsMinOfLeases) {
  // Object lease 10'000 s, volume lease 10 s: the write commits when
  // the VOLUME lease drains, preserving the paper's min(t, t_v) bound.
  ProtoHarness h(byExpiryConfig(Algorithm::kVolumeLease, sec(10'000)));
  h.read(0, 0);
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(h.metrics().totalMessages(), before);
  EXPECT_NEAR(toSeconds(w.delay), 10.0, 0.01);
}

TEST(WriteByExpiryTest, VolumeClientRepairedThroughReconnection) {
  ProtoHarness h(byExpiryConfig(Algorithm::kVolumeLease, sec(10'000)));
  h.read(0, 0);
  h.write(0);  // commits at volume expiry; client 0 -> Unreachable
  auto& server = dynamic_cast<core::VolumeServer&>(h.serverNode(0));
  EXPECT_TRUE(server.isUnreachable(h.client(0), makeVolumeId(0)));
  auto r = h.read(0, 0);  // reconnection invalidates + refetches
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  h.sim->finish();
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(WriteByExpiryTest, DelayedModeQueuesPendingInsteadOfReconnect) {
  ProtoHarness h(byExpiryConfig(Algorithm::kVolumeDelayedInval, sec(10'000)));
  h.read(0, 0);
  h.write(0);  // commits at volume expiry; invalidation queued
  auto& server = dynamic_cast<core::VolumeServer&>(h.serverNode(0));
  EXPECT_FALSE(server.isUnreachable(h.client(0), makeVolumeId(0)));
  EXPECT_EQ(server.pendingMessageCount(h.client(0), makeVolumeId(0)), 1u);
  auto r = h.read(0, 0);  // flush batch invalidates, then refetch
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 2);
  h.sim->finish();
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(WriteByExpiryTest, RandomMixStaysConsistent) {
  for (Algorithm algorithm :
       {Algorithm::kLease, Algorithm::kVolumeLease,
        Algorithm::kVolumeDelayedInval}) {
    ProtoHarness h(byExpiryConfig(algorithm, sec(300), sec(20)));
    Rng rng(5 + static_cast<std::uint64_t>(algorithm));
    SimTime t = 0;
    for (int op = 0; op < 300; ++op) {
      t += static_cast<SimDuration>(
          rng.nextExponential(static_cast<double>(sec(7))));
      h.sim->drainTo(t);
      const auto obj = makeObjectId(rng.nextBelow(3));
      if (rng.nextBool(0.3)) {
        h.sim->issueWrite(obj);
      } else {
        h.sim->issueRead(
            h.client(static_cast<std::uint32_t>(rng.nextBelow(2))), obj);
      }
    }
    h.sim->finish();
    EXPECT_EQ(h.metrics().staleReads(), 0)
        << proto::algorithmName(algorithm);
    // The whole point: not one invalidation message on the wire.
    std::size_t invalIdx = 8;  // INVALIDATE (checked in net_test)
    EXPECT_EQ(h.metrics().messagesOfType(invalIdx), 0)
        << proto::algorithmName(algorithm);
  }
}

// ---------------------------------------------------------------------
// adaptive poll
// ---------------------------------------------------------------------

ProtocolConfig adaptiveConfig() {
  ProtocolConfig config;
  config.algorithm = Algorithm::kPollAdaptive;
  config.adaptiveFactor = 0.5;
  config.adaptiveMinTtl = sec(10);
  config.adaptiveMaxTtl = sec(100'000);
  return config;
}

TEST(AdaptivePollTest, WindowGrowsWithObjectAge) {
  ProtoHarness h(adaptiveConfig());
  // Object never written: age at t=1000 is 1000 -> TTL 500.
  h.advanceTo(sec(1000));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);
  h.advanceTo(sec(1400));
  EXPECT_FALSE(h.read(0, 0).usedNetwork);  // within 500 s window
  h.advanceTo(sec(1600));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);  // window (500 s) expired
}

TEST(AdaptivePollTest, FreshlyModifiedObjectsPolledOften) {
  ProtoHarness h(adaptiveConfig());
  h.advanceTo(sec(1000));
  h.write(0);  // modifiedAt = 1000
  h.advanceTo(sec(1020));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);  // age 20 -> TTL max(10, 10) = 10
  h.advanceTo(sec(1025));
  EXPECT_FALSE(h.read(0, 0).usedNetwork);  // inside the 10 s floor
  h.advanceTo(sec(1040));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);
}

TEST(AdaptivePollTest, StalenessBoundedByWindow) {
  ProtoHarness h(adaptiveConfig());
  h.advanceTo(sec(10'000));
  h.read(0, 0);  // age 10'000 -> TTL 5'000
  h.advanceTo(sec(11'000));
  h.write(0);
  auto r = h.read(0, 0);  // stale: inside the adaptive window
  EXPECT_EQ(r.version, 1);
  EXPECT_EQ(h.metrics().staleReads(), 1);
  h.advanceTo(sec(16'000));  // window expired
  EXPECT_EQ(h.read(0, 0).version, 2);
}

TEST(AdaptivePollTest, FewerMessagesThanStaticPollAtComparableStaleness) {
  // The Gwertzman-Seltzer observation the paper cites: adaptive TTL
  // beats static timeouts on the messages-vs-staleness frontier for
  // web-like workloads. Compare message counts at similar stale rates.
  driver::WorkloadOptions opts;
  opts.scale = 0.02;
  opts.numServers = 100;
  driver::Workload workload = driver::buildWorkload(opts);

  proto::ProtocolConfig adaptive;
  adaptive.algorithm = Algorithm::kPollAdaptive;
  adaptive.adaptiveFactor = 0.2;
  driver::Simulation simA(workload.catalog, adaptive);
  auto& ma = simA.run(workload.events);

  proto::ProtocolConfig fixed;
  fixed.algorithm = Algorithm::kPoll;
  fixed.objectTimeout = sec(100'000);
  driver::Simulation simF(workload.catalog, fixed);
  auto& mf = simF.run(workload.events);

  // Not a tuned comparison -- just sanity: adaptive achieves a message
  // count in the same regime while adapting per object.
  EXPECT_LT(ma.totalMessages(), 2 * mf.totalMessages());
  EXPECT_GT(ma.reads(), 0);
}

// ---------------------------------------------------------------------
// volume regrouping
// ---------------------------------------------------------------------

TEST(RegroupTest, PreservesObjectsAndServers) {
  driver::WorkloadOptions opts;
  opts.scale = 0.005;
  opts.numServers = 20;
  driver::Workload workload = driver::buildWorkload(opts);
  trace::Catalog regrouped = trace::regroupVolumes(
      workload.catalog, 4, trace::GroupingStrategy::kRandom);

  EXPECT_EQ(regrouped.numObjects(), workload.catalog.numObjects());
  EXPECT_EQ(regrouped.numVolumes(), 20u * 4u);
  for (std::size_t i = 0; i < regrouped.numObjects(); i += 7) {
    const auto& a = workload.catalog.object(makeObjectId(i));
    const auto& b = regrouped.object(makeObjectId(i));
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.sizeBytes, b.sizeBytes);
  }
}

TEST(RegroupTest, OneVolumePerServerIsIdentityForTraffic) {
  driver::WorkloadOptions opts;
  opts.scale = 0.005;
  opts.numServers = 20;
  driver::Workload workload = driver::buildWorkload(opts);
  trace::Catalog regrouped = trace::regroupVolumes(
      workload.catalog, 1, trace::GroupingStrategy::kRandom);

  proto::ProtocolConfig config;
  config.algorithm = Algorithm::kVolumeLease;
  config.objectTimeout = sec(100'000);
  config.volumeTimeout = sec(100);
  driver::Simulation a(workload.catalog, config);
  driver::Simulation b(regrouped, config);
  EXPECT_EQ(a.run(workload.events).totalMessages(),
            b.run(workload.events).totalMessages());
}

TEST(RegroupTest, FinerVolumesCostMoreRenewals) {
  driver::WorkloadOptions opts;
  opts.scale = 0.01;
  opts.numServers = 20;
  driver::Workload workload = driver::buildWorkload(opts);

  proto::ProtocolConfig config;
  config.algorithm = Algorithm::kVolumeLease;
  config.objectTimeout = sec(100'000);
  config.volumeTimeout = sec(100);

  std::int64_t prev = -1;
  for (std::uint32_t k : {1u, 4u, 16u}) {
    trace::Catalog regrouped = trace::regroupVolumes(
        workload.catalog, k, trace::GroupingStrategy::kRandom);
    driver::Simulation sim(regrouped, config);
    const std::int64_t messages = sim.run(workload.events).totalMessages();
    if (prev >= 0) {
      EXPECT_GE(messages, prev) << "k=" << k;
    }
    prev = messages;
  }
}

TEST(RegroupTest, ContiguousGroupingBeatsRandom) {
  // Keeping co-accessed objects in one volume preserves amortization.
  driver::WorkloadOptions opts;
  opts.scale = 0.01;
  opts.numServers = 20;
  driver::Workload workload = driver::buildWorkload(opts);
  proto::ProtocolConfig config;
  config.algorithm = Algorithm::kVolumeLease;
  config.objectTimeout = sec(100'000);
  config.volumeTimeout = sec(100);

  trace::Catalog random = trace::regroupVolumes(
      workload.catalog, 8, trace::GroupingStrategy::kRandom);
  trace::Catalog contiguous = trace::regroupVolumes(
      workload.catalog, 8, trace::GroupingStrategy::kContiguous);
  driver::Simulation a(random, config);
  driver::Simulation b(contiguous, config);
  EXPECT_LT(b.run(workload.events).totalMessages(),
            a.run(workload.events).totalMessages());
}

// ---------------------------------------------------------------------
// CPU metric
// ---------------------------------------------------------------------

TEST(CpuMetricTest, ChargesBothEndsPerMessage) {
  stats::Metrics m;
  m.onMessage(makeNodeId(0), makeNodeId(1), 0, 1024, 0, true);
  const double expected = stats::kCpuPerMessage + stats::kCpuPerKilobyte;
  EXPECT_NEAR(m.node(makeNodeId(0)).cpuUnits, expected, 1e-9);
  EXPECT_NEAR(m.node(makeNodeId(1)).cpuUnits, expected, 1e-9);
  EXPECT_NEAR(m.totalCpuUnits(), 2 * expected, 1e-9);
}

TEST(CpuMetricTest, DroppedMessageChargesSenderOnly) {
  stats::Metrics m;
  m.onMessage(makeNodeId(0), makeNodeId(1), 0, 0, 0, false);
  EXPECT_GT(m.node(makeNodeId(0)).cpuUnits, 0);
  EXPECT_EQ(m.node(makeNodeId(1)).cpuUnits, 0);
}

TEST(CpuMetricTest, CpuDifferencesCompressedVsMessages) {
  // Paper §5.1: by the CPU metric the algorithms differ less than by
  // raw message count (big data transfers dominate processing cost).
  driver::WorkloadOptions opts;
  opts.scale = 0.01;
  opts.numServers = 50;
  driver::Workload workload = driver::buildWorkload(opts);
  auto run = [&](Algorithm a, std::int64_t t, std::int64_t tv) {
    proto::ProtocolConfig config;
    config.algorithm = a;
    config.objectTimeout = sec(t);
    config.volumeTimeout = sec(tv);
    driver::Simulation sim(workload.catalog, config);
    auto& m = sim.run(workload.events);
    return std::pair<double, double>(static_cast<double>(m.totalMessages()),
                                     m.totalCpuUnits());
  };
  auto [lm, lc] = run(Algorithm::kLease, 10, 0);
  auto [vm, vc] = run(Algorithm::kVolumeLease, 100'000, 10);
  const double msgRatio = vm / lm;
  const double cpuRatio = vc / lc;
  EXPECT_GT(std::abs(1 - cpuRatio), 0.0);
  EXPECT_LT(std::abs(1 - cpuRatio), std::abs(1 - msgRatio));
}

// ---------------------------------------------------------------------
// real-time driver
// ---------------------------------------------------------------------

TEST(RealTimeDriverTest, TimersFireAgainstWallClock) {
  rt::RealTimeDriver driver;
  bool fired = false;
  driver.scheduler().scheduleAfter(msec(30), [&] { fired = true; });
  driver.run(msec(15));
  EXPECT_FALSE(fired);
  driver.run(msec(60));
  EXPECT_TRUE(fired);
}

TEST(RealTimeDriverTest, PostRunsOnLoop) {
  rt::RealTimeDriver driver;
  bool ran = false;
  driver.post([&] { ran = true; });
  driver.step(0);
  EXPECT_TRUE(ran);
}

TEST(RealTimeDriverTest, WatchFdDeliversReadableEvents) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  rt::RealTimeDriver driver;
  int events = 0;
  driver.watchFd(fds[0], [&] {
    char buf[16];
    events += static_cast<int>(::read(fds[0], buf, sizeof(buf)));
  });
  ASSERT_EQ(::write(fds[1], "abc", 3), 3);
  driver.step(10);
  EXPECT_EQ(events, 3);
  driver.unwatchFd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(RealTimeDriverTest, StopEndsRun) {
  rt::RealTimeDriver driver;
  driver.scheduler().scheduleAfter(msec(5), [&] { driver.stop(); });
  const auto t0 = std::chrono::steady_clock::now();
  driver.run(sec(10));  // must exit LONG before the 10 s bound
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 2000);
}

}  // namespace
}  // namespace vlease
