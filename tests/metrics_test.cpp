// Tests for the metrics sink, including the exactness of the
// time-weighted state integrator against brute-force sampling.
#include "stats/metrics.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace vlease::stats {
namespace {

constexpr NodeId kA = makeNodeId(0);
constexpr NodeId kB = makeNodeId(1);
constexpr NodeId kC = makeNodeId(2);

TEST(MetricsTest, MessageCountsPerNode) {
  Metrics m;
  m.onMessage(kA, kB, 0, 100, sec(1), true);
  m.onMessage(kB, kA, 1, 50, sec(2), true);
  m.onMessage(kA, kC, 0, 25, sec(3), false);  // dropped

  EXPECT_EQ(m.totalMessages(), 3);
  EXPECT_EQ(m.totalBytes(), 175);
  EXPECT_EQ(m.droppedMessages(), 1);
  EXPECT_EQ(m.messagesOfType(0), 2);
  EXPECT_EQ(m.messagesOfType(1), 1);

  EXPECT_EQ(m.node(kA).sent, 2);
  EXPECT_EQ(m.node(kA).received, 1);
  EXPECT_EQ(m.node(kA).bytesSent, 125);
  EXPECT_EQ(m.node(kB).received, 1);
  // The dropped message never reaches C.
  EXPECT_EQ(m.node(kC).received, 0);
}

TEST(MetricsTest, UnknownNodeIsZero) {
  Metrics m;
  EXPECT_EQ(m.node(makeNodeId(99)).messages(), 0);
}

TEST(MetricsTest, LoadSeriesOnlyForTrackedNodes) {
  Metrics m;
  m.trackLoad(kA);
  m.onMessage(kA, kB, 0, 10, sec(5), true);
  m.onMessage(kB, kA, 0, 10, sec(5) + usec(10), true);
  m.onMessage(kB, kC, 0, 10, sec(5), true);  // untracked pair

  EXPECT_TRUE(m.hasLoadSeries(kA));
  EXPECT_FALSE(m.hasLoadSeries(kB));
  EXPECT_EQ(m.loadSeries(kA).at(5), 2);  // one sent + one received
  EXPECT_EQ(m.loadSeries(kB).totalCount(), 0);
}

TEST(MetricsTest, DroppedMessageStillLoadsSender) {
  Metrics m;
  m.trackLoad(kA);
  m.trackLoad(kB);
  m.onMessage(kA, kB, 0, 10, sec(1), false);
  EXPECT_EQ(m.loadSeries(kA).at(1), 1);
  EXPECT_EQ(m.loadSeries(kB).at(1), 0);
}

TEST(MetricsTest, ReadAccounting) {
  Metrics m;
  m.onRead(true, false);
  m.onRead(false, false);
  m.onRead(false, true);
  m.onReadFailed();
  EXPECT_EQ(m.reads(), 3);
  EXPECT_EQ(m.cacheLocalReads(), 2);
  EXPECT_EQ(m.staleReads(), 1);
  EXPECT_EQ(m.failedReads(), 1);
  EXPECT_NEAR(m.staleFraction(), 1.0 / 3, 1e-12);
}

TEST(MetricsTest, WriteAccounting) {
  Metrics m;
  m.onWrite(0, false);
  m.onWrite(sec(5), false);
  m.onWrite(sec(100), true);  // blocked: excluded from delay summary
  EXPECT_EQ(m.writes(), 3);
  EXPECT_EQ(m.delayedWrites(), 1);
  EXPECT_EQ(m.blockedWrites(), 1);
  EXPECT_EQ(m.writeDelay().count(), 2);
  EXPECT_DOUBLE_EQ(m.writeDelay().max(), 5.0);
}

TEST(MetricsTest, NodesByTrafficOrdersDescending) {
  Metrics m;
  for (int i = 0; i < 5; ++i) m.onMessage(kB, kC, 0, 1, 0, true);
  m.onMessage(kA, kC, 0, 1, 0, true);
  auto order = m.nodesByTraffic();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], kC);  // 6 received
  EXPECT_EQ(order[1], kB);  // 5 sent
  EXPECT_EQ(order[2], kA);  // 1 sent
}

TEST(MetricsTest, AvgStateBytesDividesByHorizon) {
  Metrics m;
  m.addStateIntegral(kA, 16.0 * static_cast<double>(sec(50)));
  m.setHorizon(sec(100));
  EXPECT_NEAR(m.avgStateBytes(kA), 8.0, 1e-9);
  EXPECT_EQ(m.avgStateBytes(kB), 0.0);
}

// ---- accrueRecord ----

TEST(AccrueRecordTest, LiveRecordAccruesToNow) {
  Metrics m;
  SimTime last = sec(10);
  accrueRecord(m, kA, last, /*expiry=*/sec(100), /*now=*/sec(30));
  m.setHorizon(sec(1));  // integral / horizon; horizon=1s => bytes*seconds
  EXPECT_NEAR(m.avgStateBytes(kA), 16.0 * 20.0, 1e-6);
  EXPECT_EQ(last, sec(30));
}

TEST(AccrueRecordTest, ExpiredRecordStopsAtExpiry) {
  Metrics m;
  SimTime last = sec(10);
  accrueRecord(m, kA, last, /*expiry=*/sec(15), /*now=*/sec(30));
  m.setHorizon(sec(1));
  EXPECT_NEAR(m.avgStateBytes(kA), 16.0 * 5.0, 1e-6);
  EXPECT_EQ(last, sec(30));
}

TEST(AccrueRecordTest, SecondAccrualAfterExpiryAddsNothing) {
  Metrics m;
  SimTime last = sec(10);
  accrueRecord(m, kA, last, sec(15), sec(30));
  accrueRecord(m, kA, last, sec(15), sec(40));  // already past expiry
  m.setHorizon(sec(1));
  EXPECT_NEAR(m.avgStateBytes(kA), 16.0 * 5.0, 1e-6);
}

TEST(AccrueRecordTest, RenewalPattern) {
  // Grant at 0 (expiry 10), renew at 8 (expiry 18), final sweep at 30:
  // live during [0, 18] => 18 s of state.
  Metrics m;
  SimTime last = 0;
  SimTime expiry = sec(10);
  accrueRecord(m, kA, last, expiry, sec(8));  // about to renew
  expiry = sec(18);
  accrueRecord(m, kA, last, expiry, sec(30));  // final sweep
  m.setHorizon(sec(1));
  EXPECT_NEAR(m.avgStateBytes(kA), 16.0 * 18.0, 1e-6);
}

/// Property check: random touch sequences == brute-force per-microsecond
/// (well, per-millisecond) sampling of record liveness.
TEST(AccrueRecordTest, MatchesBruteForceSampling) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    Metrics m;
    // One record with random renewal times and lease lengths.
    const SimTime horizon = msec(2000);
    SimTime last = 0;
    SimTime expiry = 0;
    std::vector<std::pair<SimTime, SimTime>> liveIntervals;  // [grant, expiry)
    SimTime t = 0;
    SimTime prevGrant = 0;
    while (t < horizon) {
      // Renew: new expiry between 1 and 300 ms out.
      accrueRecord(m, kA, last, expiry, t);
      prevGrant = t;
      expiry = t + msec(1 + static_cast<std::int64_t>(rng.nextBelow(300)));
      liveIntervals.emplace_back(prevGrant, expiry);
      t += msec(1 + static_cast<std::int64_t>(rng.nextBelow(400)));
    }
    accrueRecord(m, kA, last, expiry, horizon);  // final sweep

    // Brute force: at each millisecond the record is live iff the most
    // recent renewal's expiry lies in the future (a renewal REPLACES the
    // expiry; it does not stack with earlier grants).
    double bruteMicros = 0;
    for (SimTime tick = 0; tick < horizon; tick += msec(1)) {
      SimTime effectiveExpiry = kSimTimeMin;
      for (auto [g, e] : liveIntervals) {
        if (g <= tick) effectiveExpiry = e;  // intervals are in grant order
      }
      if (tick < effectiveExpiry) bruteMicros += static_cast<double>(msec(1));
    }
    m.setHorizon(1);
    EXPECT_NEAR(m.avgStateBytes(kA), 16.0 * bruteMicros,
                16.0 * static_cast<double>(msec(2)))
        << "trial " << trial;
  }
}

TEST(MetricsTest, AccrueRecordClampsExpiryBeforeLastAccounted) {
  // A renewal can shorten a record's expiry below the last accounting
  // point (skewed re-grant). The live window is then empty: the
  // integral must not go negative, and lastAccounted must still
  // advance to now so later accruals start from the right instant.
  Metrics m;
  SimTime last = sec(10);
  accrueRecord(m, kA, last, /*expiry=*/sec(4), /*now=*/sec(12));
  m.setHorizon(1);
  EXPECT_DOUBLE_EQ(m.avgStateBytes(kA), 0.0);
  EXPECT_EQ(last, sec(12));

  // A subsequent well-formed accrual is unaffected by the clamp.
  accrueRecord(m, kA, last, /*expiry=*/sec(20), /*now=*/sec(15), 16);
  EXPECT_DOUBLE_EQ(m.avgStateBytes(kA),
                   16.0 * static_cast<double>(sec(3)));
  EXPECT_EQ(last, sec(15));
}

TEST(MetricsTest, MergeFromSumsCountersAndPerNodeRows) {
  // The sharded server's per-thread Metrics fold into one view: plain
  // counters add, per-node rows add elementwise (resizing as needed),
  // and the horizon takes the max.
  Metrics a;
  Metrics b;
  a.onMessage(kA, kB, 0, 100, sec(1), true);
  b.onMessage(kB, kA, 1, 50, sec(2), true);
  b.onMessage(kA, kC, 0, 25, sec(3), false);  // dropped
  a.onTransportRetry();
  b.onTransportRetry();
  b.onTransportReconnect();
  b.onTransportConnectRefused();

  a.mergeFrom(b);

  EXPECT_EQ(a.totalMessages(), 3);
  EXPECT_EQ(a.totalBytes(), 175);
  EXPECT_EQ(a.droppedMessages(), 1);
  EXPECT_EQ(a.messagesOfType(0), 2);
  EXPECT_EQ(a.messagesOfType(1), 1);
  EXPECT_EQ(a.node(kA).sent, 2);
  EXPECT_EQ(a.node(kA).received, 1);
  EXPECT_EQ(a.node(kB).sent, 1);
  EXPECT_EQ(a.node(kB).received, 1);
  EXPECT_EQ(a.node(kC).received, 0);  // the drop never arrived
  EXPECT_EQ(a.transportRetries(), 2);
  EXPECT_EQ(a.transportReconnects(), 1);
  EXPECT_EQ(a.transportConnectRefused(), 1);
}

}  // namespace
}  // namespace vlease::stats
