// End-to-end integration tests: run the full (scaled) BU-like workload
// under every algorithm and assert the SHAPES the paper's evaluation
// reports -- these are the claims of Figs. 5-9 turned into regression
// tests, so a refactor that silently breaks an experimental result
// fails CI rather than producing a wrong EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <map>

#include "driver/simulation.h"
#include "driver/workloads.h"

namespace vlease {
namespace {

proto::ProtocolConfig configOf(proto::Algorithm algorithm, std::int64_t tSec,
                               std::int64_t tvSec = 100) {
  proto::ProtocolConfig config;
  config.algorithm = algorithm;
  config.objectTimeout = sec(tSec);
  config.volumeTimeout = sec(tvSec);
  return config;
}

/// Shared workload across the whole suite (building it once keeps the
/// suite fast); scale 0.03 preserves every ordering asserted below.
const driver::Workload& sharedWorkload(bool bursty = false) {
  static const driver::Workload* plain = [] {
    driver::WorkloadOptions opts;
    opts.scale = 0.03;
    return new driver::Workload(driver::buildWorkload(opts));
  }();
  static const driver::Workload* burstyW = [] {
    driver::WorkloadOptions opts;
    opts.scale = 0.03;
    opts.burstyWrites = true;
    return new driver::Workload(driver::buildWorkload(opts));
  }();
  return bursty ? *burstyW : *plain;
}

std::int64_t messagesFor(const proto::ProtocolConfig& config,
                         bool bursty = false) {
  const driver::Workload& workload = sharedWorkload(bursty);
  driver::Simulation sim(workload.catalog, config);
  return sim.run(workload.events).totalMessages();
}

// ---- Fig. 5 shapes ----

TEST(Fig5Shape, CallbackIsFlatInT) {
  const std::int64_t a =
      messagesFor(configOf(proto::Algorithm::kCallback, 10));
  const std::int64_t b =
      messagesFor(configOf(proto::Algorithm::kCallback, 1'000'000));
  EXPECT_EQ(a, b);
}

TEST(Fig5Shape, LeaseDecreasesThenFlattens) {
  const std::int64_t t10 = messagesFor(configOf(proto::Algorithm::kLease, 10));
  const std::int64_t t1e4 =
      messagesFor(configOf(proto::Algorithm::kLease, 10'000));
  const std::int64_t t1e7 =
      messagesFor(configOf(proto::Algorithm::kLease, 10'000'000));
  EXPECT_GT(t10, 2 * t1e4);  // renewals dominate at small t
  EXPECT_GE(t1e7, t1e4);     // invalidations push the tail back up
}

TEST(Fig5Shape, LeaseApproachesCallbackAtLargeT) {
  const std::int64_t lease =
      messagesFor(configOf(proto::Algorithm::kLease, 10'000'000));
  const std::int64_t callback =
      messagesFor(configOf(proto::Algorithm::kCallback, 10));
  EXPECT_NEAR(static_cast<double>(lease), static_cast<double>(callback),
              0.05 * static_cast<double>(callback));
}

TEST(Fig5Shape, DelayedInvalidationsDecreaseMonotonically) {
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t t : {100, 10'000, 1'000'000, 10'000'000}) {
    const std::int64_t m =
        messagesFor(configOf(proto::Algorithm::kVolumeDelayedInval, t, 100));
    EXPECT_LE(m, prev) << "t=" << t;
    prev = m;
  }
}

TEST(Fig5Shape, PollDecreasesMonotonically) {
  std::int64_t prev = std::numeric_limits<std::int64_t>::max();
  for (std::int64_t t : {100, 10'000, 1'000'000, 10'000'000}) {
    const std::int64_t m = messagesFor(configOf(proto::Algorithm::kPoll, t));
    EXPECT_LE(m, prev) << "t=" << t;
    prev = m;
  }
}

TEST(Fig5Shape, ShorterVolumeLeasesSitHigher) {
  const std::int64_t tv10 =
      messagesFor(configOf(proto::Algorithm::kVolumeLease, 100'000, 10));
  const std::int64_t tv100 =
      messagesFor(configOf(proto::Algorithm::kVolumeLease, 100'000, 100));
  const std::int64_t lease =
      messagesFor(configOf(proto::Algorithm::kLease, 100'000));
  EXPECT_GT(tv10, tv100);   // Volume(10,t) above Volume(100,t)
  EXPECT_GT(tv100, lease);  // both above Lease (infinite t_v limit)
}

TEST(Fig5Shape, HeadlineResultVolumeBeatsLeaseUnderDelayBound) {
  // The paper's triangles/squares: with the write-delay bound fixed at
  // t_v, the volume algorithms beat Lease(bound) by a wide margin.
  for (std::int64_t bound : {10, 100}) {
    const auto lease = static_cast<double>(
        messagesFor(configOf(proto::Algorithm::kLease, bound)));
    const auto volume = static_cast<double>(messagesFor(
        configOf(proto::Algorithm::kVolumeLease, 100'000, bound)));
    const auto delay = static_cast<double>(messagesFor(
        configOf(proto::Algorithm::kVolumeDelayedInval, 100'000, bound)));
    // The margin grows with workload scale (bench runs at scale 0.1 show
    // ~27-39% savings); at this test's scale 0.03 it is smaller but the
    // ordering is stable for the fixed seed.
    EXPECT_LT(volume, 0.90 * lease) << "bound " << bound;  // paper: ~30-32%
    EXPECT_LT(delay, volume) << "bound " << bound;         // paper: ~39-40%
  }
}

TEST(Fig5Shape, PollStaleFractionGrowsWithTimeout) {
  const driver::Workload& workload = sharedWorkload();
  double prev = -1;
  std::map<std::int64_t, double> staleAt;
  for (std::int64_t t : {10'000, 1'000'000, 10'000'000}) {
    driver::Simulation sim(workload.catalog,
                           configOf(proto::Algorithm::kPoll, t));
    const double stale = sim.run(workload.events).staleFraction();
    EXPECT_GE(stale, prev) << "t=" << t;
    prev = stale;
    staleAt[t] = stale;
  }
  EXPECT_GT(staleAt[10'000'000], 0.05);  // paper: >35% at 10^7; ours >5%
  EXPECT_LT(staleAt[10'000], 0.005);
}

// ---- Fig. 6/7 shapes (server state) ----

TEST(Fig6Shape, LeaseFamilyUsesLessStateThanCallbackAtShortT) {
  const driver::Workload& workload = sharedWorkload();
  const NodeId top =
      workload.catalog.serverNode(driver::nthBusiestServer(workload, 0));
  auto stateOf = [&](proto::ProtocolConfig config) {
    driver::Simulation sim(workload.catalog, config);
    return sim.run(workload.events).avgStateBytes(top);
  };
  const double callback = stateOf(configOf(proto::Algorithm::kCallback, 0));
  const double lease = stateOf(configOf(proto::Algorithm::kLease, 1000));
  const double volume =
      stateOf(configOf(proto::Algorithm::kVolumeLease, 1000, 100));
  EXPECT_LT(lease, 0.05 * callback);
  EXPECT_LT(volume, 0.05 * callback);
  // Volume state is only slightly above Lease (short volume leases).
  EXPECT_LT(volume, 1.5 * lease + 32);
  EXPECT_GE(volume, lease);
}

TEST(Fig6Shape, DelayInfHoardsPendingStateAtLargeT) {
  const driver::Workload& workload = sharedWorkload();
  const NodeId top =
      workload.catalog.serverNode(driver::nthBusiestServer(workload, 0));
  auto stateOf = [&](proto::Algorithm a, SimDuration d) {
    proto::ProtocolConfig config = configOf(a, 10'000'000, 100);
    config.inactiveDiscard = d;
    driver::Simulation sim(workload.catalog, config);
    return sim.run(workload.events).avgStateBytes(top);
  };
  const double volume = stateOf(proto::Algorithm::kVolumeLease, kNever);
  const double delayInf =
      stateOf(proto::Algorithm::kVolumeDelayedInval, kNever);
  const double delayShort =
      stateOf(proto::Algorithm::kVolumeDelayedInval, sec(1000));
  EXPECT_GT(delayInf, volume);        // pending lists pile up
  EXPECT_LT(delayShort, delayInf);    // d caps them
}

// ---- Fig. 8/9 shapes (load bursts) ----

TEST(Fig8Shape, DelaySuppressesPeakLoad) {
  const driver::Workload& workload = sharedWorkload();
  auto peakOf = [&](proto::ProtocolConfig config) {
    driver::SimOptions opts;
    opts.trackServerLoad = true;
    driver::Simulation sim(workload.catalog, config, opts);
    auto& m = sim.run(workload.events);
    std::int64_t peak = 0;
    for (std::uint32_t s = 0; s < workload.catalog.numServers(); ++s) {
      peak = std::max(peak,
                      m.loadSeries(workload.catalog.serverNode(s)).maxValue());
    }
    return peak;
  };
  const std::int64_t callback = peakOf(configOf(proto::Algorithm::kCallback, 0));
  const std::int64_t delay =
      peakOf(configOf(proto::Algorithm::kVolumeDelayedInval, 100'000, 100));
  EXPECT_LE(delay, callback);
}

TEST(Fig9Shape, BurstyWritesInflateInvalidationPeaks) {
  // Under the bursty-write workload, Callback/Volume peaks grow much
  // more than Delay's (the paper's Fig. 8 -> Fig. 9 transition).
  auto peakOf = [&](proto::ProtocolConfig config, bool bursty) {
    const driver::Workload& workload = sharedWorkload(bursty);
    driver::SimOptions opts;
    opts.trackServerLoad = true;
    driver::Simulation sim(workload.catalog, config, opts);
    auto& m = sim.run(workload.events);
    std::int64_t peak = 0;
    for (std::uint32_t s = 0; s < workload.catalog.numServers(); ++s) {
      peak = std::max(peak,
                      m.loadSeries(workload.catalog.serverNode(s)).maxValue());
    }
    return peak;
  };
  const auto volumePlain =
      peakOf(configOf(proto::Algorithm::kVolumeLease, 100'000, 100), false);
  const auto volumeBursty =
      peakOf(configOf(proto::Algorithm::kVolumeLease, 100'000, 100), true);
  EXPECT_GT(volumeBursty, volumePlain);

  const auto callbackPlain =
      peakOf(configOf(proto::Algorithm::kCallback, 0), false);
  const auto callbackBursty =
      peakOf(configOf(proto::Algorithm::kCallback, 0), true);
  EXPECT_GT(callbackBursty, callbackPlain);
}

// ---- cross-metric sanity on the full workload ----

TEST(IntegrationSanity, BytesTrackMessagesLoosely) {
  // The paper notes the byte metric shows smaller relative differences
  // than the message metric (data dominates bytes). Check the ordering
  // still holds but compressed.
  const driver::Workload& workload = sharedWorkload();
  auto run = [&](proto::ProtocolConfig config) {
    driver::Simulation sim(workload.catalog, config);
    auto& m = sim.run(workload.events);
    return std::pair<std::int64_t, std::int64_t>(m.totalMessages(),
                                                 m.totalBytes());
  };
  auto [lm, lb] = run(configOf(proto::Algorithm::kLease, 10));
  auto [vm, vb] = run(configOf(proto::Algorithm::kVolumeLease, 100'000, 10));
  const double msgRatio = static_cast<double>(vm) / static_cast<double>(lm);
  const double byteRatio = static_cast<double>(vb) / static_cast<double>(lb);
  EXPECT_LT(msgRatio, 1.0);
  EXPECT_LT(byteRatio, 1.0);
  EXPECT_GT(byteRatio, msgRatio);  // compressed difference
}

TEST(IntegrationSanity, EveryAlgorithmProcessesTheWholeTrace) {
  const driver::Workload& workload = sharedWorkload();
  for (proto::Algorithm algorithm :
       {proto::Algorithm::kPollEachRead, proto::Algorithm::kPoll,
        proto::Algorithm::kCallback, proto::Algorithm::kLease,
        proto::Algorithm::kBestEffortLease, proto::Algorithm::kVolumeLease,
        proto::Algorithm::kVolumeDelayedInval}) {
    driver::Simulation sim(workload.catalog, configOf(algorithm, 10'000));
    auto& m = sim.run(workload.events);
    EXPECT_EQ(m.reads() + m.failedReads(), workload.readCount)
        << proto::algorithmName(algorithm);
    EXPECT_EQ(m.writes(), workload.writeCount)
        << proto::algorithmName(algorithm);
    EXPECT_EQ(m.failedReads(), 0) << proto::algorithmName(algorithm);
    EXPECT_EQ(m.blockedWrites(), 0) << proto::algorithmName(algorithm);
  }
}

}  // namespace
}  // namespace vlease
