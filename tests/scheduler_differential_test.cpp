// Randomized differential test of the slab/heap event kernel against an
// independently implemented naive reference scheduler (a sorted vector).
//
// Both schedulers receive the identical stream of interleaved
// schedule / cancel / runUntil / step / run operations -- including
// events that cancel other pending events from inside their callback and
// events that schedule children reentrantly -- over ~1e5 events, and the
// firing sequences must match exactly (time order, FIFO within a tick,
// cancelled events skipped). Directed cases cover cancellation during a
// callback at the same instant and handles that outlive the scheduler.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace vlease::sim {
namespace {

/// Naive reference: a vector kept sorted by (at, seq); firing pops the
/// front live entry. Deliberately simple and structurally unlike the
/// production 4-ary-heap + arena kernel.
class NaiveScheduler {
 public:
  using Handle = std::shared_ptr<bool>;  // *handle == still pending

  SimTime now() const { return now_; }

  Handle scheduleAt(SimTime at, std::function<void()> fn) {
    auto alive = std::make_shared<bool>(true);
    Entry e{at, seq_++, std::move(fn), alive};
    auto pos = std::upper_bound(
        queue_.begin(), queue_.end(), e, [](const Entry& a, const Entry& b) {
          if (a.at != b.at) return a.at < b.at;
          return a.seq < b.seq;
        });
    queue_.insert(pos, std::move(e));
    return alive;
  }

  std::int64_t runUntil(SimTime until) {
    std::int64_t n = 0;
    while (true) {
      // The front live entry; reentrant scheduleAt() calls keep the
      // vector sorted, so the front is always the global minimum.
      auto it = std::find_if(queue_.begin(), queue_.end(),
                             [](const Entry& e) { return *e.alive; });
      if (it == queue_.end() || it->at > until) break;
      Entry e = std::move(*it);
      queue_.erase(queue_.begin(), it + 1);  // drop dead prefix + fired
      now_ = e.at;
      *e.alive = false;
      e.fn();
      ++n;
    }
    if (now_ < until) now_ = until;
    return n;
  }

  std::int64_t run() {
    std::int64_t n = 0;
    while (step()) ++n;
    return n;
  }

  bool step() {
    auto it = std::find_if(queue_.begin(), queue_.end(),
                           [](const Entry& e) { return *e.alive; });
    if (it == queue_.end()) return false;
    Entry e = std::move(*it);
    queue_.erase(queue_.begin(), it + 1);
    now_ = e.at;
    *e.alive = false;
    e.fn();
    return true;
  }

  std::size_t pendingCount() const {
    return static_cast<std::size_t>(
        std::count_if(queue_.begin(), queue_.end(),
                      [](const Entry& e) { return *e.alive; }));
  }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    Handle alive;
  };
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<Entry> queue_;
};

/// Shared description of one logical event, so both schedulers run the
/// same side effects with the same pre-drawn parameters.
struct EventSpec {
  enum class Kind { kRecord, kCancelVictim, kSpawnChild };
  int id = 0;
  Kind kind = Kind::kRecord;
  std::size_t victim = 0;       // kCancelVictim: index into handle registry
  SimDuration childDelay = 0;   // kSpawnChild
  int childId = 0;
};

class DifferentialDriver {
 public:
  /// `mixedLanes` routes a random half of the real scheduler's events
  /// through scheduleDeadline (the timing-wheel lane) while the naive
  /// reference keeps exact semantics for everything -- so the test
  /// asserts the wheel's firing is indistinguishable, event for event,
  /// from the exact lane.
  explicit DifferentialDriver(std::uint64_t seed, bool mixedLanes = false)
      : rng_(seed), mixedLanes_(mixedLanes) {}

  void scheduleTopLevel() {
    const SimDuration delay = static_cast<SimDuration>(rng_.nextBelow(50));
    auto spec = std::make_shared<EventSpec>(drawSpec());
    schedule(real_.now() + delay, spec);
    ++scheduled_;
  }

  void cancelRandom() {
    if (realHandles_.empty()) return;
    const std::size_t i = rng_.nextBelow(realHandles_.size());
    realHandles_[i].cancel();
    if (i < naiveHandles_.size()) *naiveHandles_[i] = false;
  }

  void runUntilRandom() {
    const SimTime until =
        real_.now() + static_cast<SimDuration>(rng_.nextBelow(120));
    real_.runUntil(until);
    naive_.runUntil(until);
  }

  void stepBoth() {
    const bool a = real_.step();
    const bool b = naive_.step();
    ASSERT_EQ(a, b);
  }

  void drain() {
    real_.run();
    naive_.run();
  }

  void verify(int op) {
    ASSERT_EQ(firedReal_, firedNaive_) << "diverged by op " << op;
    ASSERT_EQ(real_.pendingCount(), naive_.pendingCount())
        << "pending mismatch by op " << op;
    ASSERT_EQ(real_.now(), naive_.now());
  }

  int scheduled() const { return scheduled_; }
  const std::vector<int>& firedReal() const { return firedReal_; }
  Scheduler& real() { return real_; }

 private:
  EventSpec drawSpec() {
    EventSpec spec;
    spec.id = nextId_++;
    const std::uint64_t roll = rng_.nextBelow(100);
    if (roll < 15 && !realHandles_.empty()) {
      spec.kind = EventSpec::Kind::kCancelVictim;
      spec.victim = rng_.nextBelow(realHandles_.size());
    } else if (roll < 30) {
      spec.kind = EventSpec::Kind::kSpawnChild;
      spec.childDelay = static_cast<SimDuration>(rng_.nextBelow(10));
      spec.childId = nextId_++;
    }
    return spec;
  }

  void schedule(SimTime at, const std::shared_ptr<EventSpec>& spec) {
    const bool viaWheel = mixedLanes_ && rng_.nextBelow(2) == 0;
    auto realFn = [this, spec] { fire(*spec, firedReal_, /*isReal=*/true); };
    realHandles_.push_back(viaWheel ? real_.scheduleDeadline(at, realFn)
                                    : real_.scheduleAt(at, realFn));
    naiveHandles_.push_back(naive_.scheduleAt(
        at, [this, spec] { fire(*spec, firedNaive_, /*isReal=*/false); }));
  }

  void fire(const EventSpec& spec, std::vector<int>& out, bool isReal) {
    out.push_back(spec.id);
    switch (spec.kind) {
      case EventSpec::Kind::kRecord:
        break;
      case EventSpec::Kind::kCancelVictim:
        if (isReal) {
          realHandles_[spec.victim].cancel();
        } else {
          *naiveHandles_[spec.victim] = false;
        }
        break;
      case EventSpec::Kind::kSpawnChild: {
        // Reentrant scheduling: the child lands relative to the firing
        // instant, possibly inside the currently draining tick. The
        // child is a plain recorder; its parameters were drawn when the
        // parent was created, so both sides agree.
        const int childId = spec.childId;
        if (isReal) {
          real_.scheduleAt(real_.now() + spec.childDelay,
                           [this, childId] { firedReal_.push_back(childId); });
        } else {
          naive_.scheduleAt(naive_.now() + spec.childDelay, [this, childId] {
            firedNaive_.push_back(childId);
          });
        }
        break;
      }
    }
  }

  Rng rng_;
  Scheduler real_;
  NaiveScheduler naive_;
  std::vector<TimerHandle> realHandles_;
  std::vector<NaiveScheduler::Handle> naiveHandles_;
  std::vector<int> firedReal_;
  std::vector<int> firedNaive_;
  int nextId_ = 0;
  int scheduled_ = 0;
  bool mixedLanes_ = false;
};

class SchedulerDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerDifferentialTest, MatchesNaiveReferenceOver1e5Events) {
  DifferentialDriver driver(GetParam());
  Rng opRng(GetParam() ^ 0xdeadbeefull);

  int op = 0;
  while (driver.scheduled() < 100'000) {
    ++op;
    const std::uint64_t roll = opRng.nextBelow(100);
    if (roll < 70) {
      // schedule (ties are common; spawns/cancels mixed in)
      driver.scheduleTopLevel();
    } else if (roll < 85) {
      driver.cancelRandom();
    } else if (roll < 95) {
      driver.runUntilRandom();
      driver.verify(op);
    } else {
      driver.stepBoth();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  driver.drain();
  driver.verify(op);
  EXPECT_TRUE(driver.real().empty());
  EXPECT_GE(driver.firedReal().size(), 50'000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDifferentialTest,
                         ::testing::Values(11, 23, 37, 59));

/// Same differential harness, but half the real scheduler's events go
/// through the timing-wheel lane (scheduleDeadline) while the naive
/// reference stays exact. The firing sequences must still match event
/// for event: the wheel normalizes fire order through the global
/// (time, seq) heap at promotion, so coarse bucketing must be invisible.
class SchedulerWheelDifferentialTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerWheelDifferentialTest, WheelLaneMatchesExactReference) {
  DifferentialDriver driver(GetParam(), /*mixedLanes=*/true);
  Rng opRng(GetParam() ^ 0xabad1deaull);

  int op = 0;
  while (driver.scheduled() < 100'000) {
    ++op;
    const std::uint64_t roll = opRng.nextBelow(100);
    if (roll < 70) {
      driver.scheduleTopLevel();
    } else if (roll < 85) {
      driver.cancelRandom();
    } else if (roll < 95) {
      driver.runUntilRandom();
      driver.verify(op);
    } else {
      driver.stepBoth();
    }
    if (::testing::Test::HasFatalFailure()) return;
  }

  driver.drain();
  driver.verify(op);
  EXPECT_TRUE(driver.real().empty());
  EXPECT_GE(driver.firedReal().size(), 50'000u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerWheelDifferentialTest,
                         ::testing::Values(13, 29, 43, 61));

/// Deadline-band contract fuzz: every surviving deadline must fire
/// within [at, at + (at - scheduled)/8) -- one wheel-bucket granularity
/// -- across delays spanning every wheel level (1us .. ~3 days),
/// interleaved with renew-style cancellation churn.
TEST(SchedulerWheelContractTest, DeadlinesFireWithinOneBucketGranularity) {
  Rng rng(0xfeedull);
  Scheduler s;
  std::vector<TimerHandle> handles;
  int checked = 0;
  for (int i = 0; i < 20'000; ++i) {
    // Delay magnitude is log-uniform so far buckets get real coverage.
    const int bits = 1 + static_cast<int>(rng.nextBelow(38));
    const SimDuration delay =
        static_cast<SimDuration>(1 + rng.nextBelow(1ull << bits));
    const SimTime scheduledNow = s.now();
    const SimTime at = scheduledNow + delay;
    handles.push_back(s.scheduleDeadline(at, [&s, &checked, scheduledNow, at] {
      const SimDuration slack = std::max<SimDuration>(1, (at - scheduledNow) / 8);
      EXPECT_GE(s.now(), at);
      EXPECT_LT(s.now(), at + slack);
      ++checked;
    }));
    if (rng.nextBelow(3) == 0 && !handles.empty()) {
      handles[rng.nextBelow(handles.size())].cancel();
    }
    if (rng.nextBelow(8) == 0) {
      s.runUntil(s.now() + static_cast<SimDuration>(rng.nextBelow(1u << 20)));
    }
  }
  s.run();
  EXPECT_TRUE(s.empty());
  EXPECT_GT(checked, 5'000);
}

TEST(SchedulerDirectedTest, CancelDuringCallbackSameInstant) {
  Scheduler s;
  std::vector<int> order;
  TimerHandle b;
  // a fires at t=5 and cancels b, which is due at the same instant with a
  // later sequence number; b must not fire even though it is already in
  // the current drain window.
  s.scheduleAt(5, [&] {
    order.push_back(1);
    b.cancel();
  });
  b = s.scheduleAt(5, [&] { order.push_back(2); });
  s.scheduleAt(5, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(SchedulerDirectedTest, CancelOwnHandleInsideCallbackIsNoop) {
  Scheduler s;
  int fires = 0;
  TimerHandle self;
  self = s.scheduleAt(1, [&] {
    ++fires;
    self.cancel();  // already firing: must not corrupt counters
    EXPECT_FALSE(self.pending());
  });
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pendingCount(), 0u);
}

TEST(SchedulerDirectedTest, HandleOutlivesScheduler) {
  TimerHandle kept;
  TimerHandle copy;
  {
    Scheduler s;
    kept = s.scheduleAt(10, [] {});
    copy = kept;
    EXPECT_TRUE(kept.pending());
  }
  // The scheduler (and its arena) are gone; the handles must stay inert.
  EXPECT_FALSE(kept.pending());
  EXPECT_FALSE(copy.pending());
  kept.cancel();
  copy.cancel();
}

TEST(SchedulerDirectedTest, HandleFromEarlierSlotGenerationStaysDead) {
  Scheduler s;
  int firstFires = 0;
  int secondFires = 0;
  TimerHandle first = s.scheduleAt(1, [&] { ++firstFires; });
  s.run();
  // The arena slot of `first` is recycled for a new event; the stale
  // handle must neither report pending nor cancel the newcomer.
  TimerHandle second = s.scheduleAt(2, [&] { ++secondFires; });
  EXPECT_FALSE(first.pending());
  first.cancel();
  EXPECT_TRUE(second.pending());
  s.run();
  EXPECT_EQ(firstFires, 1);
  EXPECT_EQ(secondFires, 1);
}

TEST(SchedulerDirectedTest, ManyCancelledEntriesDoNotFire) {
  Scheduler s;
  std::vector<TimerHandle> handles;
  int fires = 0;
  for (int i = 0; i < 10'000; ++i) {
    handles.push_back(s.scheduleAt(i % 97, [&] { ++fires; }));
  }
  for (std::size_t i = 0; i < handles.size(); i += 2) handles[i].cancel();
  EXPECT_EQ(s.pendingCount(), 5'000u);
  EXPECT_EQ(s.run(), 5'000);
  EXPECT_EQ(fires, 5'000);
}

}  // namespace
}  // namespace vlease::sim
