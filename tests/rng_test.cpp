// Tests for the deterministic RNG and the workload samplers.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vlease {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) seen[rng.nextBelow(10)] += 1;
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 each
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 10'000; ++i) {
    std::int64_t v = rng.nextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.nextBool(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.nextExponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0, sumSq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<double>(rng.nextPoisson(3.5));
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(sumSq / n - mean * mean, 3.5, 0.15);  // variance == mean
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(23);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.nextPoisson(500));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.nextPoisson(0.0), 0);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(31);
  const int n = 100'001;
  std::vector<double> vals(n);
  for (auto& v : vals) v = rng.nextLogNormal(std::log(8192.0), 1.0);
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
  EXPECT_NEAR(vals[n / 2], 8192.0, 300.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(37);
  double sum = 0, sumSq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    double v = rng.nextNormal();
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(5);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroMostLikely) {
  ZipfSampler zipf(100, 1.2);
  for (std::size_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 0.9);
  Rng rng(41);
  std::vector<int> counts(50, 0);
  const int n = 500'000;
  for (int i = 0; i < n; ++i) counts[zipf(rng)] += 1;
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{10},
                        std::size_t{49}}) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.pmf(k),
                5e-3 + 0.1 * zipf.pmf(k));
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-9);
}

TEST(ZipfianRngTest, PmfSumsToOne) {
  ZipfianRng zipf(1000, 1.0);
  double sum = 0;
  for (std::uint64_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfianRngTest, MatchesTableSamplerPmf) {
  // Rejection-inversion targets exactly the distribution the CDF-table
  // sampler realizes; the two pmfs must agree to rounding.
  for (double s : {0.0, 0.5, 0.8, 1.0, 1.3}) {
    ZipfianRng a(200, s);
    ZipfSampler b(200, s);
    for (std::uint64_t k = 0; k < 200; ++k) {
      EXPECT_NEAR(a.pmf(k), b.pmf(k), 1e-12) << "s=" << s << " k=" << k;
    }
  }
}

TEST(ZipfianRngTest, ChiSquareGoodnessOfFit) {
  // Pearson chi-square against the exact pmf, head ranks individually
  // and the tail pooled. Critical value for alpha = 0.001 at the listed
  // degrees of freedom -- a fixed seed keeps the test deterministic, so
  // this never flakes; it fails only if the sampler is actually wrong.
  struct Case {
    std::uint64_t n;
    double s;
  };
  for (const Case c : {Case{64, 0.8}, Case{1000, 1.0}, Case{50, 1.3}}) {
    ZipfianRng zipf(c.n, c.s);
    Rng rng(97);
    const int kSamples = 400'000;
    const std::uint64_t kHead = std::min<std::uint64_t>(c.n, 20);
    std::vector<double> observed(kHead + 1, 0.0);
    for (int i = 0; i < kSamples; ++i) {
      const std::uint64_t k = zipf(rng);
      ASSERT_LT(k, c.n);
      observed[std::min(k, kHead)] += 1.0;
    }
    double tailP = 1.0;
    double chi2 = 0;
    for (std::uint64_t k = 0; k < kHead; ++k) {
      const double e = zipf.pmf(k) * kSamples;
      tailP -= zipf.pmf(k);
      chi2 += (observed[k] - e) * (observed[k] - e) / e;
    }
    if (tailP > 0) {
      const double e = tailP * kSamples;
      chi2 += (observed[kHead] - e) * (observed[kHead] - e) / e;
    }
    // df = 20 (21 cells - 1); chi2_{0.999,20} = 45.3.
    EXPECT_LT(chi2, 45.3) << "n=" << c.n << " s=" << c.s;
  }
}

TEST(ZipfianRngTest, ZeroExponentIsUniform) {
  ZipfianRng zipf(10, 0.0);
  Rng rng(3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) counts[zipf(rng)] += 1;
  for (int c : counts) EXPECT_NEAR(c / 100'000.0, 0.1, 0.01);
}

TEST(ZipfianRngTest, SingleElement) {
  ZipfianRng zipf(1, 1.2);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfianRngTest, DeterministicAcrossInstances) {
  ZipfianRng a(4096, 0.99), b(4096, 0.99);
  Rng ra(123), rb(123);
  for (int i = 0; i < 10'000; ++i) EXPECT_EQ(a(ra), b(rb));
}

TEST(ZipfianRngTest, DeterminismGolden) {
  // Pinned first samples for a fixed (n, s, seed): the streaming
  // workload goldens depend on this exact draw sequence, so any change
  // to the sampler's arithmetic or uniform consumption shows up here
  // before it silently invalidates the workload goldens.
  ZipfianRng zipf(64, 0.8);
  Rng rng(2026);
  const std::uint64_t expected[] = {6,  24, 1, 0,  1,  1,  1,  1,
                                    0,  28, 0, 21, 0,  2,  10, 2,
                                    30, 34, 2, 15, 49, 26, 3,  31};
  for (std::uint64_t want : expected) {
    EXPECT_EQ(zipf(rng), want);
  }
}

}  // namespace
}  // namespace vlease
