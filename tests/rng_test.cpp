// Tests for the deterministic RNG and the workload samplers.
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vlease {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.nextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10'000; ++i) seen[rng.nextBelow(10)] += 1;
  for (int count : seen) EXPECT_GT(count, 700);  // ~1000 each
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(3);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 10'000; ++i) {
    std::int64_t v = rng.nextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    sawLo |= v == -3;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) {
    double v = rng.nextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 100'000, 0.5, 0.01);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.nextBool(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.nextExponential(25.0);
  EXPECT_NEAR(sum / n, 25.0, 0.5);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(19);
  double sum = 0, sumSq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    auto v = static_cast<double>(rng.nextPoisson(3.5));
    sum += v;
    sumSq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 3.5, 0.05);
  EXPECT_NEAR(sumSq / n - mean * mean, 3.5, 0.15);  // variance == mean
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(23);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.nextPoisson(500));
  EXPECT_NEAR(sum / n, 500.0, 2.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.nextPoisson(0.0), 0);
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(31);
  const int n = 100'001;
  std::vector<double> vals(n);
  for (auto& v : vals) v = rng.nextLogNormal(std::log(8192.0), 1.0);
  std::nth_element(vals.begin(), vals.begin() + n / 2, vals.end());
  EXPECT_NEAR(vals[n / 2], 8192.0, 300.0);
}

TEST(RngTest, NormalMoments) {
  Rng rng(37);
  double sum = 0, sumSq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    double v = rng.nextNormal();
    sum += v;
    sumSq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sumSq / n, 1.0, 0.02);
}

TEST(RngTest, ForkDivergesFromParent) {
  Rng parent(5);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += parent.next() == child.next();
  EXPECT_LT(equal, 3);
}

TEST(ZipfSamplerTest, PmfSumsToOne) {
  ZipfSampler zipf(1000, 1.0);
  double sum = 0;
  for (std::size_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroMostLikely) {
  ZipfSampler zipf(100, 1.2);
  for (std::size_t k = 1; k < 100; ++k) {
    EXPECT_GT(zipf.pmf(0), zipf.pmf(k));
  }
}

TEST(ZipfSamplerTest, EmpiricalMatchesPmf) {
  ZipfSampler zipf(50, 0.9);
  Rng rng(41);
  std::vector<int> counts(50, 0);
  const int n = 500'000;
  for (int i = 0; i < n; ++i) counts[zipf(rng)] += 1;
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{10},
                        std::size_t{49}}) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), zipf.pmf(k),
                5e-3 + 0.1 * zipf.pmf(k));
  }
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(ZipfSamplerTest, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-9);
}

}  // namespace
}  // namespace vlease
