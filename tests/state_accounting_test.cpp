// Hand-computed validations of the Figs. 6-7 metric: time-averaged
// server consistency state (16 B per lease / callback / pending-message
// record) under the volume algorithms, including the delayed-mode
// pending lists and the d-bounded accrual.
#include <gtest/gtest.h>

#include "core/volume_server.h"
#include "proto_fixture.h"

namespace vlease {
namespace {

using proto::Algorithm;
using proto::ProtocolConfig;
using testing::ProtoHarness;

constexpr double kB = 16.0;  // bytes per record

ProtocolConfig cfg(Algorithm a, std::int64_t tSec, std::int64_t tvSec,
                   SimDuration d = kNever) {
  ProtocolConfig config;
  config.algorithm = a;
  config.objectTimeout = sec(tSec);
  config.volumeTimeout = sec(tvSec);
  config.inactiveDiscard = d;
  return config;
}

double avgState(ProtoHarness& h, SimTime horizon) {
  h.sim->protocol().finalizeAccounting(horizon);
  h.metrics().setHorizon(horizon);
  return h.metrics().avgStateBytes(h.server());
}

TEST(StateAccountingTest, SingleReadVolumePlusObjectLease) {
  // One read at t=0: object lease 16 B x 1000 s, volume lease 16 B x
  // 10 s. Average over a 2000 s horizon.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000, 10));
  h.read(0, 0);
  h.advanceTo(sec(2000));
  const double expected = (kB * 1000 + kB * 10) / 2000.0;
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

TEST(StateAccountingTest, AckedInvalidationTruncatesObjectLease) {
  // Lease granted at 0 for 1000 s, but the write at t=100 invalidates
  // and the ack removes the record: only 100 s of object-lease state.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000, 10));
  h.read(0, 0);
  h.advanceTo(sec(100));
  h.write(0);
  h.advanceTo(sec(2000));
  const double expected = (kB * 100 + kB * 10) / 2000.0;
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

TEST(StateAccountingTest, RenewalExtendsNotStacks) {
  // Volume lease renewed at t=600 (object lease still valid): volume
  // state covers [0,10] and [600,610], not double-counted.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000, 10));
  h.read(0, 0);
  h.advanceTo(sec(600));
  h.read(0, 0);  // volume renewal only
  h.advanceTo(sec(2000));
  const double expected = (kB * 1000 + kB * (10 + 10)) / 2000.0;
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

TEST(StateAccountingTest, PendingMessageChargedUntilFlush) {
  // Delayed mode: client reads at 0 (volume dies at 10), write at 100
  // queues one pending message, client returns at 400 -> the pending
  // record lived 300 s. Object lease runs its full 1000 s (renewed at
  // flush? no -- the batch only invalidates; the re-read then takes a
  // fresh 1000 s lease from t=400).
  ProtoHarness h(cfg(Algorithm::kVolumeDelayedInval, 1000, 10));
  h.read(0, 0);
  h.advanceTo(sec(100));
  h.write(0);
  EXPECT_EQ(dynamic_cast<core::VolumeServer&>(h.serverNode(0))
                .pendingMessageCount(h.client(0), makeVolumeId(0)),
            1u);
  h.advanceTo(sec(400));
  h.read(0, 0);  // flush + volume grant + object re-fetch
  h.advanceTo(sec(2000));
  // Object lease: the server keeps ONE record per (client, object); the
  // re-fetch at t=400 RENEWS it, so it is live over [0,400) u [400,1400)
  // = 1400 s (the un-elapsed tail of the first grant is not stacked).
  // Volume leases: [0,10) + [400,410). Pending message: [100,400).
  const double expected = (kB * 1400 + kB * (10 + 10) + kB * 300) / 2000.0;
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

TEST(StateAccountingTest, DiscardedPendingChargedOnlyUntilD) {
  // d = 50: client inactive since t=10 (volume expiry); a write at 100
  // queues a pending message, but the accrual horizon for that record is
  // volExpiredAt + d = 60... the message was created at 100 > 60, so it
  // accrues ZERO state and the client is demoted on the next touch.
  ProtoHarness h(cfg(Algorithm::kVolumeDelayedInval, 1000, 10, sec(50)));
  h.read(0, 0);
  h.advanceTo(sec(100));
  h.write(0);  // t=100 > 10+50: demoted straight to Unreachable
  auto& server = dynamic_cast<core::VolumeServer&>(h.serverNode(0));
  EXPECT_TRUE(server.isUnreachable(h.client(0), makeVolumeId(0)));
  h.advanceTo(sec(2000));
  const double expected = (kB * 1000 + kB * 10) / 2000.0;  // leases only
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

TEST(StateAccountingTest, CallbackRecordsAccrueForever) {
  ProtoHarness h(cfg(Algorithm::kCallback, 0, 0));
  h.read(0, 0);
  h.read(1, 0);
  h.advanceTo(sec(1000));
  // Two callback records, never expiring: 2 x 16 B the whole horizon.
  EXPECT_NEAR(avgState(h, sec(1000)), 2 * kB, 0.01);
}

TEST(StateAccountingTest, CrashZeroesLiveRecords) {
  // Records accrue only until the crash wipes them.
  ProtoHarness h(cfg(Algorithm::kVolumeLease, 1000, 1000));
  h.read(0, 0);
  h.advanceTo(sec(200));
  dynamic_cast<core::VolumeServer&>(h.serverNode(0)).crashAndReboot();
  h.advanceTo(sec(2000));
  const double expected = (kB * 200 + kB * 200) / 2000.0;
  EXPECT_NEAR(avgState(h, sec(2000)), expected, 0.01);
}

}  // namespace
}  // namespace vlease
