// Tests for the Table 1 analytic cost model.
#include "analytic/cost_model.h"


#include <cmath>
#include <gtest/gtest.h>

namespace vlease::analytic {
namespace {

using proto::Algorithm;

CostParams paperPoint() {
  CostParams p;
  p.readRate = 0.01;
  p.objectTimeout = 10'000;
  p.volumeTimeout = 100;
  p.volumeReadRate = 0.2;
  p.clientsTotal = 100;
  p.clientsObjectLease = 10;
  p.clientsVolumeLease = 3;
  p.clientsRecentlyExpired = 5;
  return p;
}

TEST(CostModelTest, PollEachReadRow) {
  CostRow row = costOf(Algorithm::kPollEachRead, paperPoint());
  EXPECT_EQ(row.expectedStaleSeconds, 0);
  EXPECT_EQ(row.worstStaleSeconds, 0);
  EXPECT_EQ(row.readCost, 1.0);
  EXPECT_EQ(row.writeCost, 0);
  EXPECT_EQ(row.ackWaitSeconds, 0);
  EXPECT_EQ(row.serverStateBytes, 0);
}

TEST(CostModelTest, PollRow) {
  CostRow row = costOf(Algorithm::kPoll, paperPoint());
  EXPECT_DOUBLE_EQ(row.expectedStaleSeconds, 5000.0);  // t/2
  EXPECT_DOUBLE_EQ(row.worstStaleSeconds, 10'000.0);   // t
  EXPECT_DOUBLE_EQ(row.readCost, 0.01);                // 1/(R t)
  EXPECT_EQ(row.writeCost, 0);
  EXPECT_EQ(row.serverStateBytes, 0);
}

TEST(CostModelTest, CallbackRow) {
  CostRow row = costOf(Algorithm::kCallback, paperPoint());
  EXPECT_EQ(row.expectedStaleSeconds, 0);
  EXPECT_EQ(row.readCost, 0);
  EXPECT_DOUBLE_EQ(row.writeCost, 100);               // C_tot
  EXPECT_TRUE(std::isinf(row.ackWaitSeconds));
  EXPECT_DOUBLE_EQ(row.serverStateBytes, 1600);       // 16 * C_tot
}

TEST(CostModelTest, LeaseRow) {
  CostRow row = costOf(Algorithm::kLease, paperPoint());
  EXPECT_DOUBLE_EQ(row.readCost, 0.01);
  EXPECT_DOUBLE_EQ(row.writeCost, 10);        // C_o
  EXPECT_DOUBLE_EQ(row.ackWaitSeconds, 10'000);  // t
  EXPECT_DOUBLE_EQ(row.serverStateBytes, 160);
  EXPECT_EQ(row.worstStaleSeconds, 0);
}

TEST(CostModelTest, VolumeLeaseRow) {
  CostRow row = costOf(Algorithm::kVolumeLease, paperPoint());
  // 1/(sumR * t_v) + 1/(R * t) = 1/20 + 1/100.
  EXPECT_NEAR(row.readCost, 0.05 + 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(row.writeCost, 10);                 // C_o
  EXPECT_DOUBLE_EQ(row.ackWaitSeconds, 100);           // min(t, t_v)
  EXPECT_DOUBLE_EQ(row.serverStateBytes, 160);
}

TEST(CostModelTest, DelayedInvalRow) {
  CostRow row = costOf(Algorithm::kVolumeDelayedInval, paperPoint());
  EXPECT_NEAR(row.readCost, 0.06, 1e-12);
  EXPECT_DOUBLE_EQ(row.writeCost, 3);                  // C_v
  EXPECT_DOUBLE_EQ(row.ackWaitSeconds, 100);
  EXPECT_DOUBLE_EQ(row.serverStateBytes, 80);          // 16 * C_d
}

TEST(CostModelTest, BestEffortRow) {
  CostRow row = costOf(Algorithm::kBestEffortLease, paperPoint());
  EXPECT_EQ(row.ackWaitSeconds, 0);
  EXPECT_DOUBLE_EQ(row.worstStaleSeconds, 10'000);  // bounded by t
  EXPECT_DOUBLE_EQ(row.writeCost, 10);
}

TEST(CostModelTest, ReadCostCapsAtOne) {
  CostParams p = paperPoint();
  p.objectTimeout = 1;  // R*t = 0.01: every read renews
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kLease, p).readCost, 1.0);
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kPoll, p).readCost, 1.0);
  p.volumeTimeout = 0.1;
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kVolumeLease, p).readCost, 2.0);
}

TEST(CostModelTest, ZeroTimeoutDegeneratesToPollEachRead) {
  CostParams p = paperPoint();
  p.objectTimeout = 0;
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kPoll, p).readCost, 1.0);
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kPoll, p).expectedStaleSeconds, 0.0);
}

TEST(CostModelTest, AckWaitUsesMinOfLeases) {
  CostParams p = paperPoint();
  p.objectTimeout = 50;  // shorter than t_v = 100
  EXPECT_DOUBLE_EQ(costOf(Algorithm::kVolumeLease, p).ackWaitSeconds, 50);
}

TEST(ExpectedRenewalsTest, Basics) {
  EXPECT_DOUBLE_EQ(expectedRenewals(0, 0.01, 1000), 0);
  EXPECT_DOUBLE_EQ(expectedRenewals(500, 0.01, 10'000), 5.0);
  // At least one round trip for any nonzero read count.
  EXPECT_DOUBLE_EQ(expectedRenewals(3, 1.0, 1e9), 1.0);
}

}  // namespace
}  // namespace vlease::analytic
