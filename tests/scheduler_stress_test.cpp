// Randomized stress test of the event scheduler against a brute-force
// reference model: interleaved schedule / cancel / step / runUntil
// operations must produce exactly the firing sequence the reference
// predicts (time order, FIFO within a tick, cancelled events skipped).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace vlease::sim {
namespace {

/// Reference model: a plain vector of (time, seq, id, cancelled).
struct RefEvent {
  SimTime at;
  std::uint64_t seq;
  int id;
  bool cancelled = false;
  bool fired = false;
};

class SchedulerStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerStressTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  Scheduler scheduler;
  std::vector<RefEvent> ref;
  std::vector<TimerHandle> handles;
  std::vector<int> fired;          // actual firing order (ids)
  std::uint64_t seq = 0;
  int nextId = 0;

  auto refFireUpTo = [&](SimTime until, std::vector<int>* out) {
    // Collect uncancelled, unfired events with at <= until, in
    // (at, seq) order.
    std::vector<RefEvent*> due;
    for (auto& e : ref) {
      if (!e.cancelled && !e.fired && e.at <= until) due.push_back(&e);
    }
    std::sort(due.begin(), due.end(), [](const RefEvent* a, const RefEvent* b) {
      if (a->at != b->at) return a->at < b->at;
      return a->seq < b->seq;
    });
    for (RefEvent* e : due) {
      e->fired = true;
      out->push_back(e->id);
    }
  };

  std::vector<int> expected;
  for (int op = 0; op < 2000; ++op) {
    switch (rng.nextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4: {  // schedule at now + random delay (ties are common)
        const SimDuration delay =
            static_cast<SimDuration>(rng.nextBelow(50));
        const SimTime at = scheduler.now() + delay;
        const int id = nextId++;
        auto fn = [&fired, id]() { fired.push_back(id); };
        // Half the events take the timing-wheel lane; the reference
        // model stays exact, so the wheel must be indistinguishable.
        handles.push_back(rng.nextBelow(2) == 0
                              ? scheduler.scheduleDeadline(at, fn)
                              : scheduler.scheduleAt(at, fn));
        ref.push_back(RefEvent{at, seq++, id});
        break;
      }
      case 5:
      case 6: {  // cancel a random handle
        if (handles.empty()) break;
        const std::size_t i = rng.nextBelow(handles.size());
        handles[i].cancel();
        if (!ref[i].fired) ref[i].cancelled = true;
        break;
      }
      case 7:
      case 8: {  // runUntil a random future time
        const SimTime until =
            scheduler.now() + static_cast<SimDuration>(rng.nextBelow(80));
        refFireUpTo(until, &expected);
        scheduler.runUntil(until);
        EXPECT_GE(scheduler.now(), until);
        break;
      }
      case 9: {  // single step
        std::vector<int> one;
        // Reference: the earliest due event overall.
        refFireUpTo(kSimTimeMax, &one);
        if (!one.empty()) {
          // Only the first fires on step(); un-fire the rest.
          expected.push_back(one.front());
          for (std::size_t i = 1; i < one.size(); ++i) {
            for (auto& e : ref) {
              if (e.id == one[i]) e.fired = false;
            }
          }
          EXPECT_TRUE(scheduler.step());
        } else {
          EXPECT_FALSE(scheduler.step());
        }
        break;
      }
    }
    ASSERT_EQ(fired, expected) << "diverged at op " << op;
  }

  // Drain everything.
  refFireUpTo(kSimTimeMax, &expected);
  scheduler.run();
  EXPECT_EQ(fired, expected);
  EXPECT_TRUE(scheduler.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerStressTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace vlease::sim
