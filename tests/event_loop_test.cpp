// EventLoop backends (poll everywhere, epoll where compiled in) behind
// one contract: level-triggered readiness, mod() switching interest,
// del() as a harmless no-op, and write-interest behaving like EPOLLOUT
// re-arm -- no writable events while the socket buffer is full, events
// as soon as the peer drains. The tail tests drive the TcpTransport's
// batched read path: many frames written in one burst must all be
// parsed and delivered inside a single loop iteration.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "net/message.h"
#include "rt/event_loop.h"
#include "rt/real_time.h"
#include "rt/tcp_transport.h"
#include "stats/metrics.h"

namespace vlease::rt {
namespace {

std::vector<EventLoop::Backend> availableBackends() {
  std::vector<EventLoop::Backend> backends{EventLoop::Backend::kPoll};
#ifdef VLEASE_HAVE_EPOLL
  backends.push_back(EventLoop::Backend::kEpoll);
#endif
  return backends;
}

struct SocketPair {
  int a = -1;
  int b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
    ::fcntl(a, F_SETFL, O_NONBLOCK);
    ::fcntl(b, F_SETFL, O_NONBLOCK);
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
};

/// Fill `fd`'s send buffer until the kernel pushes back.
void fillSendBuffer(int fd) {
  char junk[4096];
  std::memset(junk, 'x', sizeof(junk));
  while (true) {
    const ssize_t n = ::send(fd, junk, sizeof(junk), MSG_NOSIGNAL);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    ASSERT_GT(n, 0);
  }
}

/// Drain everything currently readable on `fd`.
void drainAll(int fd) {
  char junk[65536];
  while (::recv(fd, junk, sizeof(junk), 0) > 0) {
  }
}

TEST(EventLoopContract, DefaultBackendMatchesConfigure) {
#ifdef VLEASE_HAVE_EPOLL
  EXPECT_EQ(EventLoop::defaultBackend(), EventLoop::Backend::kEpoll);
#else
  EXPECT_EQ(EventLoop::defaultBackend(), EventLoop::Backend::kPoll);
#endif
  auto loop = EventLoop::create();
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->backend(), EventLoop::defaultBackend());
}

TEST(EventLoopContract, ReadReadinessIsLevelTriggeredAndDelStopsIt) {
  for (const auto backend : availableBackends()) {
    auto loop = EventLoop::create(backend);
    SCOPED_TRACE(loop->name());
    SocketPair sp;
    loop->add(sp.a, /*read=*/true, /*write=*/false);

    std::vector<EventLoop::Event> events;
    EXPECT_EQ(loop->wait(events, 0), 0);  // nothing pending yet

    ASSERT_EQ(::send(sp.b, "hi", 2, 0), 2);
    ASSERT_EQ(loop->wait(events, 1000), 1);
    EXPECT_EQ(events[0].fd, sp.a);
    EXPECT_TRUE(events[0].readable);

    // Level-triggered: not consuming the bytes re-reports readiness.
    ASSERT_EQ(loop->wait(events, 1000), 1);
    EXPECT_EQ(events[0].fd, sp.a);

    loop->del(sp.a);
    EXPECT_EQ(loop->wait(events, 0), 0);
    loop->del(sp.a);  // double-del: harmless no-op
  }
}

TEST(EventLoopContract, WriteInterestRearmsLikeEpollout) {
  // The transport's short-write path: socket buffer full -> arm write
  // interest -> no spurious events while the peer is slow -> a writable
  // event exactly when space opens -> disarm once drained.
  for (const auto backend : availableBackends()) {
    auto loop = EventLoop::create(backend);
    SCOPED_TRACE(loop->name());
    SocketPair sp;
    fillSendBuffer(sp.a);

    loop->add(sp.a, /*read=*/false, /*write=*/true);
    std::vector<EventLoop::Event> events;
    EXPECT_EQ(loop->wait(events, 0), 0);  // buffer full: not writable

    drainAll(sp.b);  // the peer catches up
    ASSERT_EQ(loop->wait(events, 1000), 1);
    EXPECT_EQ(events[0].fd, sp.a);
    EXPECT_TRUE(events[0].writable);

    // Disarm (backlog drained): writable events stop even though the
    // socket stays writable -- this is what keeps epoll quiet.
    loop->mod(sp.a, /*read=*/true, /*write=*/false);
    EXPECT_EQ(loop->wait(events, 0), 0);
  }
}

TEST(EventLoopContract, ErrorOrHangupReportsOnPeerClose) {
  for (const auto backend : availableBackends()) {
    auto loop = EventLoop::create(backend);
    SCOPED_TRACE(loop->name());
    SocketPair sp;
    loop->add(sp.a, /*read=*/true, /*write=*/false);
    ::close(sp.b);
    sp.b = -1;
    std::vector<EventLoop::Event> events;
    ASSERT_EQ(loop->wait(events, 1000), 1);
    EXPECT_EQ(events[0].fd, sp.a);
    // EOF shows as readable, error, or both depending on the backend;
    // the driver treats either as "call the read handler".
    EXPECT_TRUE(events[0].readable || events[0].error);
  }
}

// ---------------------------------------------------------------------
// Batched frame parse: many frames per wakeup
// ---------------------------------------------------------------------

class CountingSink final : public net::MessageSink {
 public:
  explicit CountingSink(const std::int64_t& iteration)
      : iteration_(iteration) {}
  void deliver(const net::Message&) override {
    arrivals_.push_back(iteration_);
  }
  const std::vector<std::int64_t>& arrivals() const { return arrivals_; }

 private:
  const std::int64_t& iteration_;  // the driver's step counter
  std::vector<std::int64_t> arrivals_;
};

TEST(BatchedReads, CoalescedSendParsesAllFramesInOneIteration) {
  for (const auto backend : availableBackends()) {
    RealTimeDriver driver(backend);
    SCOPED_TRACE(driver.eventLoop().name());
    stats::Metrics metrics;
    TcpTransport a(driver, metrics, 0);
    TcpTransport b(driver, metrics, 0);
    const NodeId nodeA = makeNodeId(0);
    const NodeId nodeB = makeNodeId(1);
    a.addPeer(nodeB, "127.0.0.1", b.listenPort());
    b.addPeer(nodeA, "127.0.0.1", a.listenPort());

    std::int64_t iteration = 0;
    driver.setStepHook([&iteration](SimTime) { ++iteration; });
    CountingSink sink(iteration);
    b.attach(nodeB, &sink);

    // Send from ON the loop thread: the transport's asynchronous path
    // queues all five frames and flushes them as one writev burst, so
    // the receiver sees them in one readable chunk.
    constexpr int kFrames = 5;
    driver.post([&]() {
      for (int i = 0; i < kFrames; ++i) {
        net::Message msg;
        msg.from = nodeA;
        msg.to = nodeB;
        msg.payload =
            net::PollRequest{makeObjectId(static_cast<std::uint64_t>(i)), 1};
        a.send(std::move(msg));
      }
    });

    for (int step = 0;
         step < 2000 &&
         sink.arrivals().size() < static_cast<std::size_t>(kFrames);
         ++step) {
      driver.step();
    }
    ASSERT_EQ(sink.arrivals().size(), static_cast<std::size_t>(kFrames));
    // All five frames were parsed out of the same loop iteration: one
    // wakeup, one recv drain, five deliveries.
    for (int i = 1; i < kFrames; ++i) {
      EXPECT_EQ(sink.arrivals()[static_cast<std::size_t>(i)],
                sink.arrivals()[0]);
    }
    EXPECT_EQ(b.framesReceived(), kFrames);
  }
}

}  // namespace
}  // namespace vlease::rt
