// FaultPlan unit + integration tests:
//   * builder produces a time-sorted timeline, stable on ties;
//   * FaultPlan::random is fully determined by (seed, options) and
//     every window it opens is closed by the horizon;
//   * driver::Simulation applies plan events to the FailureModel at
//     exactly the scheduled sim times, and a finished run leaves no
//     pending fault timers and no active faults;
//   * two identical chaos runs produce identical metrics.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "driver/consistency_oracle.h"
#include "driver/simulation.h"
#include "driver/workloads.h"
#include "net/fault_plan.h"
#include "util/rng.h"

namespace vlease::net {
namespace {

TEST(FaultPlanBuilder, EventsComeBackTimeSorted) {
  FaultPlan plan;
  plan.crashAt(sec(30), makeNodeId(1))
      .setLossAt(sec(5), 0.5)
      .recoverAt(sec(40), makeNodeId(1))
      .isolateAt(sec(10), makeNodeId(2));
  ASSERT_EQ(plan.size(), 4u);
  const auto& events = plan.events();
  EXPECT_EQ(events[0].at, sec(5));
  EXPECT_EQ(events[1].at, sec(10));
  EXPECT_EQ(events[2].at, sec(30));
  EXPECT_EQ(events[3].at, sec(40));
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(events[3].kind, FaultEvent::Kind::kRecover);
}

TEST(FaultPlanBuilder, TiesKeepDeclarationOrder) {
  // "crash then recover at t" must apply in the declared order.
  FaultPlan plan;
  plan.crashAt(sec(10), makeNodeId(3)).recoverAt(sec(10), makeNodeId(3));
  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kRecover);
}

TEST(FaultPlanBuilder, WindowsExpandToPairedEvents) {
  FaultPlan plan;
  plan.crashWindow(sec(10), sec(20), makeNodeId(1))
      .lossWindow(sec(15), sec(25), 0.3);
  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::kCrash);
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kSetLoss);
  EXPECT_DOUBLE_EQ(events[1].lossProb, 0.3);
  EXPECT_EQ(events[2].kind, FaultEvent::Kind::kRecover);
  EXPECT_EQ(events[3].kind, FaultEvent::Kind::kSetLoss);
  EXPECT_DOUBLE_EQ(events[3].lossProb, 0.0);
}

std::vector<NodeId> nodeRange(std::uint32_t from, std::uint32_t count) {
  std::vector<NodeId> out;
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(makeNodeId(from + i));
  return out;
}

TEST(FaultPlanRandom, SameSeedSamePlan) {
  FaultPlan::RandomOptions options;
  options.intensity = 0.8;
  options.horizon = sec(1000);
  const auto clients = nodeRange(2, 4);
  const auto servers = nodeRange(0, 2);

  Rng rngA(99), rngB(99), rngC(100);
  const FaultPlan a = FaultPlan::random(rngA, options, clients, servers);
  const FaultPlan b = FaultPlan::random(rngB, options, clients, servers);
  const FaultPlan c = FaultPlan::random(rngC, options, clients, servers);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(formatFaultEvent(a.events()[i]), formatFaultEvent(b.events()[i]))
        << "event " << i;
  }
  // Different seed: overwhelmingly a different schedule.
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = formatFaultEvent(a.events()[i]) != formatFaultEvent(c.events()[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlanRandom, EveryWindowClosesInsideHorizon) {
  FaultPlan::RandomOptions options;
  options.intensity = 1.0;
  options.horizon = sec(600);
  const auto clients = nodeRange(2, 6);
  const auto servers = nodeRange(0, 2);

  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const FaultPlan plan = FaultPlan::random(rng, options, clients, servers);
    EXPECT_FALSE(plan.empty()) << "seed " << seed;

    // Replay the timeline into a FailureModel: by the horizon every
    // crash must have recovered, every isolation/partition healed, and
    // loss must be back to zero.
    FailureModel model;
    for (const FaultEvent& e : plan.events()) {
      EXPECT_GE(e.at, 0) << formatFaultEvent(e);
      EXPECT_LE(e.at, options.horizon) << formatFaultEvent(e);
      switch (e.kind) {
        case FaultEvent::Kind::kCrash: model.crash(e.a); break;
        case FaultEvent::Kind::kRecover: model.recover(e.a); break;
        case FaultEvent::Kind::kPartition: model.partition(e.a, e.b); break;
        case FaultEvent::Kind::kHeal: model.heal(e.a, e.b); break;
        case FaultEvent::Kind::kIsolate: model.isolate(e.a); break;
        case FaultEvent::Kind::kDeisolate: model.deisolate(e.a); break;
        case FaultEvent::Kind::kSetLoss: model.setLossProbability(e.lossProb);
          break;
        case FaultEvent::Kind::kSkew:
        case FaultEvent::Kind::kDrift:
          break;  // clock faults are not FailureModel state
      }
    }
    EXPECT_EQ(model.activeFaultCount(), 0u) << "seed " << seed;
    EXPECT_DOUBLE_EQ(model.lossProbability(), 0.0) << "seed " << seed;
  }
}

TEST(FaultPlanRandom, ZeroIntensityMeansNoFaults) {
  FaultPlan::RandomOptions options;
  options.intensity = 0.0;
  options.horizon = sec(600);
  Rng rng(5);
  const FaultPlan plan =
      FaultPlan::random(rng, options, nodeRange(1, 3), nodeRange(0, 1));
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlanBuilder, ClockEventsSortAndCarryFields) {
  FaultPlan plan;
  plan.driftAt(sec(20), makeNodeId(4), 150.0)
      .skewAt(sec(5), makeNodeId(3), -sec(2));
  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FaultEvent::Kind::kSkew);
  EXPECT_EQ(events[0].at, sec(5));
  EXPECT_EQ(events[0].a, makeNodeId(3));
  EXPECT_EQ(events[0].offset, -sec(2));
  EXPECT_EQ(events[1].kind, FaultEvent::Kind::kDrift);
  EXPECT_EQ(events[1].a, makeNodeId(4));
  EXPECT_DOUBLE_EQ(events[1].ppm, 150.0);
}

TEST(FaultPlanRandom, SkewBudgetBoundsClientClocksAndSparesServers) {
  // The |skew| <= B contract the epsilon margin relies on: skew steps
  // stay in [-B/2, +B/2], drift accrues at most B/2 over the horizon,
  // and only CLIENTS are skewed (lease timestamps originate at the
  // server, so server skew would be invisible to the protocol anyway).
  FaultPlan::RandomOptions options;
  options.intensity = 1.0;
  options.horizon = sec(600);
  options.maxClockSkew = sec(10);
  const auto clients = nodeRange(2, 6);  // ids 2..7
  const auto servers = nodeRange(0, 2);  // ids 0..1
  const double half = static_cast<double>(options.maxClockSkew) / 2.0;
  const double horizonSeconds =
      static_cast<double>(options.horizon) / 1e6;

  int skewEvents = 0;
  int driftEvents = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const FaultPlan plan = FaultPlan::random(rng, options, clients, servers);
    for (const FaultEvent& e : plan.events()) {
      if (e.kind == FaultEvent::Kind::kSkew) {
        ++skewEvents;
        EXPECT_GE(raw(e.a), 2u) << formatFaultEvent(e);  // never a server
        EXPECT_LE(std::abs(static_cast<double>(e.offset)), half)
            << formatFaultEvent(e);
      } else if (e.kind == FaultEvent::Kind::kDrift) {
        ++driftEvents;
        EXPECT_GE(raw(e.a), 2u) << formatFaultEvent(e);
        EXPECT_EQ(e.at, 0) << formatFaultEvent(e);  // drifts start at t=0
        // Accrued drift over the whole horizon stays within B/2.
        EXPECT_LE(std::abs(e.ppm) * horizonSeconds, half + 1.0)
            << formatFaultEvent(e);
      }
    }
  }
  EXPECT_GT(skewEvents, 0);
  EXPECT_GT(driftEvents, 0);
}

TEST(FaultPlanRandom, ZeroSkewBudgetMeansNoClockEvents) {
  // maxClockSkew = 0 (the default) must generate NO clock events even
  // at full intensity, keeping pre-skew chaos schedules reproducible.
  FaultPlan::RandomOptions options;
  options.intensity = 1.0;
  options.horizon = sec(600);
  options.maxClockSkew = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const FaultPlan plan =
        FaultPlan::random(rng, options, nodeRange(2, 6), nodeRange(0, 2));
    for (const FaultEvent& e : plan.events()) {
      EXPECT_NE(e.kind, FaultEvent::Kind::kSkew) << formatFaultEvent(e);
      EXPECT_NE(e.kind, FaultEvent::Kind::kDrift) << formatFaultEvent(e);
    }
  }
}

TEST(FaultPlanInstall, SimulationAppliesEventsAtScheduledTimes) {
  trace::Catalog catalog(1, 2);
  const VolumeId vol = catalog.addVolume(catalog.serverNode(0));
  catalog.addObject(vol, 512);
  const NodeId server = catalog.serverNode(0);
  const NodeId client = catalog.clientNode(0);

  auto plan = std::make_shared<FaultPlan>();
  plan->crashWindow(sec(10), sec(20), server)
      .isolationWindow(sec(15), sec(30), client)
      .lossWindow(sec(5), sec(25), 0.4);

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  driver::SimOptions options;
  options.faultPlan = plan;
  driver::Simulation sim(catalog, config, options);

  EXPECT_EQ(sim.pendingFaultEvents(), 6u);

  sim.drainTo(sec(4));
  EXPECT_DOUBLE_EQ(sim.network().failures().lossProbability(), 0.0);
  sim.drainTo(sec(12));
  EXPECT_TRUE(sim.network().failures().isCrashed(server));
  EXPECT_FALSE(sim.network().failures().isIsolated(client));
  EXPECT_DOUBLE_EQ(sim.network().failures().lossProbability(), 0.4);
  sim.drainTo(sec(16));
  EXPECT_TRUE(sim.network().failures().isIsolated(client));
  sim.drainTo(sec(22));
  EXPECT_FALSE(sim.network().failures().isCrashed(server));
  EXPECT_TRUE(sim.network().failures().isIsolated(client));
  EXPECT_EQ(sim.pendingFaultEvents(), 2u);

  sim.finish();
  EXPECT_EQ(sim.pendingFaultEvents(), 0u);
  EXPECT_EQ(sim.network().failures().activeFaultCount(), 0u);
  EXPECT_DOUBLE_EQ(sim.network().failures().lossProbability(), 0.0);
}

TEST(FaultPlanInstall, IdenticalChaosRunsProduceIdenticalMetrics) {
  driver::ChaosWorkloadOptions workloadOptions;
  workloadOptions.duration = sec(400);
  const driver::Workload workload =
      driver::buildChaosWorkload(workloadOptions);

  std::vector<NodeId> clients, servers;
  for (std::uint32_t c = 0; c < workload.catalog.numClients(); ++c) {
    clients.push_back(workload.catalog.clientNode(c));
  }
  for (std::uint32_t s = 0; s < workload.catalog.numServers(); ++s) {
    servers.push_back(workload.catalog.serverNode(s));
  }
  Rng planRng(42);
  FaultPlan::RandomOptions planOptions;
  planOptions.intensity = 0.9;
  planOptions.horizon = workloadOptions.duration;
  auto plan = std::make_shared<const FaultPlan>(
      FaultPlan::random(planRng, planOptions, clients, servers));

  proto::ProtocolConfig config;
  config.algorithm = proto::Algorithm::kVolumeLease;
  config.objectTimeout = sec(120);
  config.volumeTimeout = sec(30);
  config.msgTimeout = sec(5);
  config.readTimeout = sec(15);
  driver::SimOptions options;
  options.networkLatency = msec(20);
  options.faultPlan = plan;
  options.enableOracle = true;
  options.oracleAuditPeriod = sec(10);

  auto runOnce = [&](std::int64_t* violations) {
    driver::Simulation sim(workload.catalog, config, options);
    stats::Metrics& m = sim.run(workload.events);
    *violations = m.oracleViolations();
    return std::tuple(m.reads(), m.failedReads(), m.cacheLocalReads(),
                      m.writes(), m.delayedWrites(), m.totalMessages(),
                      m.droppedMessages(), m.totalBytes());
  };
  std::int64_t violationsA = -1, violationsB = -1;
  const auto a = runOnce(&violationsA);
  const auto b = runOnce(&violationsB);
  EXPECT_EQ(a, b);
  EXPECT_EQ(violationsA, violationsB);
}

}  // namespace
}  // namespace vlease::net
