// Tests for the client-driven baselines: Poll Each Read and Poll(t).
#include <gtest/gtest.h>

#include "proto_fixture.h"

namespace vlease::proto {
namespace {

using testing::ProtoHarness;

ProtocolConfig pollConfig(SimDuration timeout) {
  ProtocolConfig config;
  config.algorithm =
      timeout == 0 ? Algorithm::kPollEachRead : Algorithm::kPoll;
  config.objectTimeout = timeout;
  return config;
}

TEST(PollEachReadTest, EveryReadContactsTheServer) {
  ProtoHarness h(pollConfig(0));
  for (int i = 0; i < 5; ++i) {
    auto r = h.read(0, 0);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.usedNetwork);
  }
  // 5 request/reply pairs.
  EXPECT_EQ(h.metrics().totalMessages(), 10);
  EXPECT_EQ(h.metrics().cacheLocalReads(), 0);
}

TEST(PollEachReadTest, DataSentOnlyWhenChanged) {
  ProtoHarness h(pollConfig(0));
  auto first = h.read(0, 0);
  EXPECT_TRUE(first.fetchedData);
  auto second = h.read(0, 0);
  EXPECT_FALSE(second.fetchedData);  // revalidated, not re-fetched
  h.write(0);
  auto third = h.read(0, 0);
  EXPECT_TRUE(third.fetchedData);
  EXPECT_EQ(third.version, 2);
}

TEST(PollEachReadTest, NeverStale) {
  ProtoHarness h(pollConfig(0));
  h.read(0, 0);
  h.write(0);
  h.read(0, 0);
  h.write(0);
  h.write(0);
  h.read(0, 0);
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(PollTest, WithinWindowServesLocally) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(50));
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.usedNetwork);
  EXPECT_EQ(h.metrics().cacheLocalReads(), 1);
  EXPECT_EQ(h.metrics().totalMessages(), 2);
}

TEST(PollTest, RevalidatesAfterWindow) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(101));
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_EQ(h.metrics().totalMessages(), 4);
}

TEST(PollTest, ServesStaleWithinWindow) {
  // The weak-consistency failure mode the paper quantifies: a write
  // lands inside the client's timeout window and the client keeps
  // reading the old copy.
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(10));
  h.write(0);
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.version, 1);  // old version
  EXPECT_EQ(h.metrics().staleReads(), 1);

  // After the window the client revalidates and sees version 2.
  h.advanceTo(sec(101));
  auto fresh = h.read(0, 0);
  EXPECT_EQ(fresh.version, 2);
  EXPECT_EQ(h.metrics().staleReads(), 1);
}

TEST(PollTest, WritesAreFreeAndInstant) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.read(1, 0);
  const std::int64_t before = h.metrics().totalMessages();
  auto w = h.write(0);
  EXPECT_EQ(w.delay, 0);
  EXPECT_FALSE(w.blocked);
  EXPECT_EQ(h.metrics().totalMessages(), before);  // no invalidations
  EXPECT_EQ(h.metrics().writes(), 1);
}

TEST(PollTest, ServerKeepsNoState) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.read(1, 0);
  h.read(0, 1);
  h.sim->finish();
  EXPECT_EQ(h.metrics().avgStateBytes(h.server()), 0.0);
}

TEST(PollTest, UnreachableServerFailsTheRead) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(200));  // window expired
  h.network().failures().isolate(h.client(0));
  auto r = h.read(0, 0);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(h.metrics().failedReads(), 1);
  // The read that failed is not counted as stale or as a read.
  EXPECT_EQ(h.metrics().staleReads(), 0);
}

TEST(PollTest, CachedReadsFineWhilePartitionedInsideWindow) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.network().failures().isolate(h.client(0));
  h.advanceTo(sec(50));
  auto r = h.read(0, 0);  // still in window: no network needed
  EXPECT_TRUE(r.ok);
}

TEST(PollTest, IndependentTimeoutsPerObject) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.advanceTo(sec(80));
  h.read(0, 1);  // validates object 1 at t=80
  h.advanceTo(sec(120));
  EXPECT_TRUE(h.read(0, 0).usedNetwork);    // window from t=0 expired
  EXPECT_FALSE(h.read(0, 1).usedNetwork);   // window from t=80 still open
}

TEST(PollTest, VersionsAdvancePerWrite) {
  ProtoHarness h(pollConfig(0));
  EXPECT_EQ(h.serverNode().currentVersion(makeObjectId(0)), 1);
  h.write(0);
  h.write(0);
  EXPECT_EQ(h.serverNode().currentVersion(makeObjectId(0)), 3);
  EXPECT_EQ(h.serverNode().currentVersion(makeObjectId(1)), 1);
}

TEST(PollTest, DropCacheForcesRefetch) {
  ProtoHarness h(pollConfig(sec(100)));
  h.read(0, 0);
  h.clientNode(0).dropCache();
  auto r = h.read(0, 0);
  EXPECT_TRUE(r.usedNetwork);
  EXPECT_TRUE(r.fetchedData);
}

}  // namespace
}  // namespace vlease::proto
