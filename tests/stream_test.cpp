// trace::EventStream: the streaming workload engine behind
// tools/vlease_scale. Pins the contracts the scale replay depends on:
// the default stream is bit-identical to the original hand-rolled loop,
// every composition (zipf, flash crowd, churn, diurnal) is rerun- and
// seed-deterministic, timestamps never go backwards, churn markers obey
// the sliding-window semantics, and the flash crowd is exactly the
// promised storm (N distinct clients, one cold object, bounded window).
#include "trace/stream.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "trace/catalog.h"
#include "util/rng.h"

namespace vlease::trace {
namespace {

struct Fixture {
  Catalog catalog;
  std::vector<ObjectId> objects;

  explicit Fixture(std::uint32_t numClients = 500,
                   std::uint64_t numObjects = 16,
                   std::uint32_t numServers = 1,
                   std::uint32_t volumesPerServer = 4)
      : catalog(numServers, numClients) {
    std::vector<VolumeId> volumes;
    for (std::uint32_t s = 0; s < numServers; ++s) {
      for (std::uint32_t v = 0; v < volumesPerServer; ++v) {
        volumes.push_back(catalog.addVolume(catalog.serverNode(s)));
      }
    }
    for (std::uint64_t o = 0; o < numObjects; ++o) {
      objects.push_back(catalog.addObject(volumes[o % volumes.size()], 8192));
    }
  }
};

std::vector<TraceEvent> drain(EventStream& stream) {
  std::vector<TraceEvent> out;
  TraceEvent event;
  while (stream.next(event)) out.push_back(event);
  return out;
}

bool sameEvent(const TraceEvent& a, const TraceEvent& b) {
  return a.at == b.at && a.kind == b.kind && a.client == b.client &&
         a.obj == b.obj;
}

TEST(EventStreamTest, DefaultStreamMatchesLegacyLoopBitForBit) {
  Fixture f;
  StreamOptions opt;
  opt.seed = 42;
  opt.events = 20'000;
  opt.numClients = 500;
  opt.interarrival = usec(100);
  opt.writeEvery = 512;
  EventStream stream(opt, f.catalog, f.objects);

  // The original tools/vlease_scale generation loop, verbatim: same rng,
  // same draw order (object, then client for reads only).
  Rng rng(42);
  SimTime at = 0;
  for (std::int64_t i = 0; i < opt.events; ++i) {
    at += opt.interarrival;
    TraceEvent expect;
    expect.at = at;
    expect.obj = f.objects[rng.nextBelow(f.objects.size())];
    if ((i + 1) % opt.writeEvery == 0) {
      expect.kind = EventKind::kWrite;
      expect.client = f.catalog.serverNode(0);
    } else {
      expect.kind = EventKind::kRead;
      expect.client = f.catalog.clientNode(
          static_cast<std::uint32_t>(rng.nextBelow(opt.numClients)));
    }
    TraceEvent got;
    ASSERT_TRUE(stream.next(got)) << "stream ended early at " << i;
    ASSERT_TRUE(sameEvent(expect, got)) << "diverged at event " << i;
  }
  TraceEvent extra;
  EXPECT_FALSE(stream.next(extra));
  EXPECT_EQ(stream.emitted(), opt.events);
  EXPECT_EQ(stream.baseEmitted(), opt.events);
}

TEST(EventStreamTest, FullCompositionIsRerunDeterministic) {
  Fixture f;
  StreamOptions opt;
  opt.seed = 7;
  opt.events = 30'000;
  opt.numClients = 500;
  opt.writeEvery = 1000;
  opt.zipfSkew = 0.8;
  opt.flashClients = 200;
  opt.flashAt = sec(1);
  opt.flashDuration = msec(500);
  opt.churnEvery = 250;
  opt.diurnalAmplitude = 0.5;
  opt.diurnalPeriod = sec(2);

  EventStream a(opt, f.catalog, f.objects);
  EventStream b(opt, f.catalog, f.objects);
  const std::vector<TraceEvent> ea = drain(a);
  const std::vector<TraceEvent> eb = drain(b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_TRUE(sameEvent(ea[i], eb[i])) << "rerun diverged at " << i;
  }
  // A different seed must actually change the stream.
  StreamOptions other = opt;
  other.seed = 8;
  EventStream c(other, f.catalog, f.objects);
  const std::vector<TraceEvent> ec = drain(c);
  bool differs = ec.size() != ea.size();
  for (std::size_t i = 0; !differs && i < ea.size(); ++i) {
    differs = !sameEvent(ea[i], ec[i]);
  }
  EXPECT_TRUE(differs);
}

TEST(EventStreamTest, TimestampsAreMonotoneUnderAllCompositions) {
  Fixture f;
  StreamOptions opt;
  opt.seed = 3;
  opt.events = 30'000;
  opt.numClients = 500;
  opt.writeEvery = 777;
  opt.zipfSkew = 1.1;
  opt.flashClients = 300;
  opt.flashAt = 0;  // storm before the first base event
  opt.flashDuration = msec(100);
  opt.churnEvery = 100;
  opt.diurnalAmplitude = 0.9;
  opt.diurnalPeriod = msec(400);

  EventStream stream(opt, f.catalog, f.objects);
  const std::vector<TraceEvent> events = drain(stream);
  ASSERT_FALSE(events.empty());
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_GE(events[i].at, events[i - 1].at) << "time went backwards at "
                                              << i;
  }
  EXPECT_TRUE(isSorted(events));
}

TEST(EventStreamTest, FlashCrowdIsDistinctClientsOnOneColdObject) {
  Fixture f;
  StreamOptions opt;
  opt.seed = 5;
  opt.events = 50'000;
  opt.numClients = 500;
  opt.flashClients = 400;
  opt.flashAt = sec(2);
  opt.flashDuration = sec(1);
  // flashObject defaults to objects.back(): coldest rank under Zipf.
  opt.zipfSkew = 0.8;

  EventStream stream(opt, f.catalog, f.objects);
  const std::vector<TraceEvent> events = drain(stream);

  // Flash reads are the reads of the cold object inside the window that
  // the base stream would essentially never produce (the cold rank has
  // vanishing mass); identify them by object + window.
  std::set<NodeId> stormClients;
  std::int64_t stormReads = 0;
  for (const TraceEvent& e : events) {
    if (e.kind != EventKind::kRead || e.obj != f.objects.back()) continue;
    if (e.at >= opt.flashAt && e.at <= opt.flashAt + opt.flashDuration) {
      ++stormReads;
      stormClients.insert(e.client);
    }
  }
  EXPECT_GE(stormReads, opt.flashClients);
  // Distinct clients: the storm is N different caches renewing, not one
  // client hammering.
  EXPECT_GE(static_cast<std::int64_t>(stormClients.size()),
            opt.flashClients);
  EXPECT_EQ(stream.emitted(), opt.events + opt.flashClients);
}

TEST(EventStreamTest, ChurnSlidesTheActiveWindow) {
  Fixture f;
  StreamOptions opt;
  opt.seed = 11;
  opt.events = 10'000;
  opt.numClients = 500;
  opt.churnEvery = 100;
  opt.churnActiveFraction = 0.5;

  EventStream stream(opt, f.catalog, f.objects);
  const std::vector<TraceEvent> events = drain(stream);

  std::int64_t arrivals = 0, departs = 0;
  std::set<NodeId> active;
  for (std::uint32_t c = 0; c < 250; ++c) {
    active.insert(f.catalog.clientNode(c));  // initial window [0, 250)
  }
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case EventKind::kDepart:
        ++departs;
        ASSERT_TRUE(active.count(e.client))
            << "departed a client that was not active";
        active.erase(e.client);
        break;
      case EventKind::kArrive:
        ++arrivals;
        ASSERT_FALSE(active.count(e.client))
            << "arrived a client that was already active";
        active.insert(e.client);
        break;
      case EventKind::kRead:
        ASSERT_TRUE(active.count(e.client))
            << "read from a departed client";
        break;
      case EventKind::kWrite:
        break;
    }
  }
  EXPECT_EQ(departs, opt.events / opt.churnEvery);
  EXPECT_EQ(arrivals, departs);
  EXPECT_EQ(stream.emitted(), opt.events + arrivals + departs);
}

TEST(EventStreamTest, DiurnalCurveModulatesTheCadence) {
  Fixture f;
  StreamOptions flat;
  flat.seed = 2;
  flat.events = 5'000;
  flat.numClients = 100;
  StreamOptions wavy = flat;
  wavy.diurnalAmplitude = 0.8;
  wavy.diurnalPeriod = msec(200);

  EventStream a(flat, f.catalog, f.objects);
  EventStream b(wavy, f.catalog, f.objects);
  const std::vector<TraceEvent> fa = drain(a);
  const std::vector<TraceEvent> fb = drain(b);
  ASSERT_EQ(fa.size(), fb.size());

  // Flat cadence: every gap identical. Diurnal: gaps both above and
  // below the nominal interarrival (compressed at the peak, stretched in
  // the trough), same event count.
  std::set<SimDuration> flatGaps, wavyGaps;
  for (std::size_t i = 1; i < fa.size(); ++i) {
    flatGaps.insert(fa[i].at - fa[i - 1].at);
    wavyGaps.insert(fb[i].at - fb[i - 1].at);
  }
  EXPECT_EQ(flatGaps.size(), 1u);
  EXPECT_GT(wavyGaps.size(), 1u);
  EXPECT_LT(*wavyGaps.begin(), flat.interarrival);
  EXPECT_GT(*wavyGaps.rbegin(), flat.interarrival);
}

TEST(EventStreamTest, ZipfSkewConcentratesOnHotRanks) {
  Fixture f(/*numClients=*/200, /*numObjects=*/64);
  StreamOptions opt;
  opt.seed = 13;
  opt.events = 50'000;
  opt.numClients = 200;
  opt.zipfSkew = 1.0;

  EventStream stream(opt, f.catalog, f.objects);
  std::vector<std::int64_t> hits(f.objects.size(), 0);
  TraceEvent event;
  while (stream.next(event)) {
    for (std::size_t r = 0; r < f.objects.size(); ++r) {
      if (f.objects[r] == event.obj) ++hits[r];
    }
  }
  // Rank 0 must dominate the tail decisively (Zipf s=1: ~21% of mass on
  // the head rank vs ~0.3% on rank 63).
  EXPECT_GT(hits[0], 8 * hits[63] + 100);
  EXPECT_GT(hits[0], hits[10]);
}

}  // namespace
}  // namespace vlease::trace
